// Ablation A10: instruction-level validation of the bulk accounting.
//
// The same scatter kernel three ways: (1) the bulk machine on the full
// 3-stream trace (the Vm/model layer's view), (2) a naive vector-code
// loop on the register-level core (in-order pipe, no scheduling), and
// (3) the software-pipelined vector loop (loads hoisted, 2x unrolled).
// Low contention: the naive loop stalls its pipe on every round trip
// and runs ~2x over the model; the pipelined loop closes most of that
// gap — quantifying the "vectorization hides latency" premise the
// paper's model builds on. High contention: the hot bank dominates all
// three and they converge.

#include <iostream>

#include "bench_common.hpp"
#include "sim/machine.hpp"
#include "util/table.hpp"
#include "vpu/core.hpp"
#include "workload/patterns.hpp"

int main(int argc, char** argv) {
  using namespace dxbsp;
  const util::Cli cli(argc, argv);
  const std::uint64_t n = cli.get_int("n", 1 << 15);
  const std::uint64_t seed = cli.get_int("seed", 1995);

  sim::MachineConfig cfg;
  cfg.processors = 1;  // the VPU models one core
  cfg.gap = 1;
  cfg.latency = 30;
  cfg.bank_delay = 14;
  cfg.expansion = 256;
  cfg.slackness = 1 << 20;

  bench::Obs obs(cli, "Ablation A10 (instruction-level validation)",
                "Scatter kernel: bulk model vs naive vs software-pipelined "
                "vector code; n = " + std::to_string(n) +
                    ", one core, d = 14, 256 banks");

  util::Table t({"k", "bulk (3-stream)", "naive vpu", "pipelined vpu",
                 "naive/bulk", "pipelined/bulk"});
  for (const std::uint64_t k :
       {std::uint64_t{1}, std::uint64_t{256}, std::uint64_t{4096}, n / 2,
        n}) {
    const auto idx = workload::k_hot(n, k, n, seed + k);

    sim::Machine machine(cfg);
    obs.attach(machine, k);
    std::vector<std::uint64_t> full;
    full.reserve(3 * n);
    for (std::uint64_t i = 0; i < n; ++i) {
      full.push_back(i);
      full.push_back(n + i);
      full.push_back(3 * n + idx[i]);
    }
    const auto bulk = machine.scatter(full);

    auto run_core = [&](bool pipelined) {
      vpu::Core core(cfg, 8 * n);
      for (std::uint64_t i = 0; i < n; ++i) {
        core.store(i, idx[i]);
        core.store(n + i, i);
      }
      const auto prog = pipelined
                            ? vpu::program_scatter_pipelined(0, n, 3 * n)
                            : vpu::program_scatter(0, n, 3 * n);
      const std::uint64_t trips =
          pipelined ? n / (2 * vpu::kVlen) : n / vpu::kVlen;
      const auto res = core.run(prog, trips);
      // Validate the scatter result against a reference winner-take-last.
      std::vector<std::uint64_t> expect(n, 0);
      for (std::uint64_t i = 0; i < n; ++i) expect[idx[i]] = i;
      for (std::uint64_t c = 0; c < n; ++c) {
        // Only cells written this run are comparable; unwritten stay 0 —
        // the last writer in element order must match.
        if (core.load(3 * n + c) != expect[c]) {
          std::cerr << "vpu scatter validation failed\n";
          std::exit(1);
        }
      }
      return res.cycles;
    };

    const auto naive = run_core(false);
    const auto piped = run_core(true);
    t.add_row(k, bulk.cycles, naive, piped,
              static_cast<double>(naive) / bulk.cycles,
              static_cast<double>(piped) / bulk.cycles);
  }
  bench::emit(cli, t);
  std::cout << "Pipelining recovers the bulk model's assumption at low k;\n"
               "at high k every layer is the hot bank's queue. The model's\n"
               "numbers are the numbers of *well-scheduled* vector code —\n"
               "which is what [ZB91]/[BHZ93] codes were.\n";
  return obs.finish();
}
