// Ablation A1: pipelined issue vs bulk-synchronous delivery.
//
// The simulator issues requests one per gap with bounded outstanding
// window; classic BSP instead assumes the whole h-relation is delivered
// and then served. This ablation quantifies how much the pipelining
// assumption matters across the contention range — i.e. whether the
// (d,x)-BSP's max(g·h_proc, d·h_bank) form (overlapping the two
// pipelines) is the right abstraction of the mechanism.

#include <iostream>

#include "bench_common.hpp"
#include "sim/machine.hpp"
#include "workload/patterns.hpp"

int main(int argc, char** argv) {
  using namespace dxbsp;
  const util::Cli cli(argc, argv);
  const auto cfg = bench::machine_from_cli(cli);
  const std::uint64_t n = cli.get_int("n", 1 << 18);
  const std::uint64_t seed = cli.get_int("seed", 1995);

  bench::Obs obs(cli, "Ablation A1 (pipelining)",
                "Pipelined issue vs bulk-synchronous delivery; n = " +
                    std::to_string(n) + ", machine = " + cfg.name);

  sim::Machine machine(cfg);
  obs.attach(machine);
  util::Table t({"contention k", "pipelined", "bulk delivery",
                 "bulk/pipelined"});
  for (std::uint64_t k = 1; k <= n; k *= 16) {
    const auto addrs = workload::k_hot(n, k, 1ULL << 30, seed + k);
    const auto piped = machine.scatter(addrs);
    const auto bulk = machine.scatter_bulk_delivery(addrs);
    t.add_row(k, piped.cycles, bulk.cycles,
              static_cast<double>(bulk.cycles) / piped.cycles);
  }
  bench::emit(cli, t);
  std::cout << "Bulk delivery drops the issue-pipeline term g·h_proc, so at\n"
               "low contention it understates the time by ~2x (the issue\n"
               "pipeline is the real bottleneck there). At high contention\n"
               "the hot bank's queue dominates and the two mechanisms agree.\n"
               "Both regimes are exactly what max(g·h_proc, d·h_bank)\n"
               "encodes — neither term can be dropped.\n";
  return obs.finish();
}
