// Ablation A2: mapping family vs structured (strided) address patterns.
//
// Why the paper bothers with higher-degree polynomial hashes: interleaved
// mapping collapses on strides sharing factors with the bank count, and
// cheap mappings leave residual structure. We sweep strides (powers of
// two and odd) across interleaved / bit-reversal / linear / quadratic /
// cubic mappings and report max bank load and simulated time.

#include <iostream>

#include "bench_common.hpp"
#include "mem/bank_mapping.hpp"
#include "mem/contention.hpp"
#include "sim/machine.hpp"
#include "util/rng.hpp"
#include "workload/patterns.hpp"

int main(int argc, char** argv) {
  using namespace dxbsp;
  const util::Cli cli(argc, argv);
  const auto cfg = bench::machine_from_cli(cli);
  const std::uint64_t n = cli.get_int("n", 1 << 17);
  const std::uint64_t seed = cli.get_int("seed", 1995);

  bench::Obs obs(cli, "Ablation A2 (hash degree vs stride)",
                "Max bank load and time for strided patterns under each "
                "mapping; banks = " + std::to_string(cfg.banks()) +
                    ", machine = " + cfg.name);

  const char* mapping_names[] = {"interleaved", "bit-reversal", "linear",
                                 "quadratic", "cubic"};
  for (const std::uint64_t stride :
       {std::uint64_t{1}, cfg.banks() / 2, cfg.banks(), 2 * cfg.banks(),
        std::uint64_t{3}, std::uint64_t{257}}) {
    const auto addrs = workload::strided(n, stride);
    util::Table t({"mapping (stride=" + std::to_string(stride) + ")",
                   "max bank load", "cycles", "cyc/elt"});
    for (const char* name : mapping_names) {
      util::Xoshiro256 rng(util::substream(seed, 80));
      auto mapping = mem::make_mapping(name, cfg.banks(), rng);
      const auto loads = mem::analyze_banks(addrs, *mapping);
      sim::Machine machine(cfg, std::move(mapping));
      obs.attach(machine);
      const auto meas = machine.scatter(addrs);
      t.add_row(name, loads.max_load, meas.cycles,
                meas.cycles_per_element());
    }
    bench::emit(cli, t);
  }
  return obs.finish();
}
