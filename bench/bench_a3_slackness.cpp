// Ablation A3: the latency-hiding window (slackness S).
//
// The paper runs all experiments at S = 64K outstanding requests. This
// ablation sweeps S from fully synchronous (S = 1: every request waits
// its round trip) to the paper's setting, showing where latency hiding
// saturates and why S only matters through L once the window covers the
// bandwidth-delay product.

#include <iostream>

#include "bench_common.hpp"
#include "sim/machine.hpp"
#include "workload/patterns.hpp"

int main(int argc, char** argv) {
  using namespace dxbsp;
  const util::Cli cli(argc, argv);
  auto cfg = bench::machine_from_cli(cli);
  const std::uint64_t n = cli.get_int("n", 1 << 17);
  const std::uint64_t seed = cli.get_int("seed", 1995);

  bench::Obs obs(cli, "Ablation A3 (slackness)",
                "Scatter time vs outstanding-request window S; n = " +
                    std::to_string(n) + ", machine = " + cfg.name +
                    ", L = " + std::to_string(cfg.latency));

  const auto addrs = workload::uniform_random(n, 1ULL << 30, seed);
  util::Table t({"S", "cycles", "cyc/elt", "stall cycles",
                 "speedup vs S=1"});
  std::uint64_t base = 0;
  for (std::uint64_t s = 1; s <= 64 * 1024; s *= 8) {
    cfg.slackness = s;
    sim::Machine machine(cfg);
    obs.attach(machine, s);
    const auto meas = machine.scatter(addrs);
    if (base == 0) base = meas.cycles;
    t.add_row(s, meas.cycles, meas.cycles_per_element(), meas.stall_cycles,
              static_cast<double>(base) / meas.cycles);
  }
  bench::emit(cli, t);
  std::cout << "The window stops mattering once S exceeds the bandwidth-"
               "delay product (~2L/g + d requests in flight).\n";
  return obs.finish();
}
