// Ablation A4: the model landscape.
//
// One scatter workload, every cost model in the library: bank-blind BSP
// and LogP, the paper's (d,x)-BSP, the (d,x)-LogP extension (the paper
// notes LogP extends with d and x the same way), and Bailey's
// lightly-loaded analysis — against the simulator across the contention
// range. Shows (a) which models track the mechanism, (b) how the
// overhead parameter o shifts the (d,x)-LogP curve, and (c) that the
// light-load analysis answers a different question entirely.

#include <iostream>

#include "bench_common.hpp"
#include "core/lightly_loaded.hpp"
#include "core/logp.hpp"
#include "core/predictor.hpp"
#include "sim/machine.hpp"
#include "workload/patterns.hpp"

int main(int argc, char** argv) {
  using namespace dxbsp;
  const util::Cli cli(argc, argv);
  const auto cfg = bench::machine_from_cli(cli);
  const std::uint64_t n = cli.get_int("n", 1 << 18);
  const std::uint64_t overhead = cli.get_int("o", 2);
  const std::uint64_t seed = cli.get_int("seed", 1995);

  bench::Obs obs(cli, "Ablation A4 (model landscape)",
                "Simulator vs every cost model; n = " + std::to_string(n) +
                    ", machine = " + cfg.name + ", LogP overhead o = " +
                    std::to_string(overhead));

  sim::Machine machine(cfg);
  obs.attach(machine);
  const auto m = core::DxBspParams::from_config(cfg);
  const auto lp = core::DxLogPParams::from_bsp(m, overhead);

  util::Table t({"k", "simulated", "dxbsp", "dxlogp", "bsp", "logp",
                 "dxbsp/sim", "dxlogp/sim"});
  for (std::uint64_t k = 1; k <= n; k *= 16) {
    const auto addrs = workload::k_hot(n, k, 1ULL << 30, seed + k);
    const auto meas = machine.scatter(addrs);
    const auto pred = core::predict_scatter(addrs, cfg, &machine.mapping());
    const core::StepProfile s{pred.profile.h_proc,
                              pred.profile.h_bank_mapped, n};
    t.add_row(k, meas.cycles, pred.dxbsp_mapped,
              core::dxlogp_roundtrip_time(lp, s), pred.bsp,
              core::logp_step_time(lp, s),
              static_cast<double>(pred.dxbsp_mapped) / meas.cycles,
              static_cast<double>(core::dxlogp_roundtrip_time(lp, s)) /
                  meas.cycles);
  }
  bench::emit(cli, t);

  std::cout << "Bailey light-load view of the same machine (one request per "
               "processor in flight):\n"
            << "  conflict probability = "
            << core::lightly_loaded_conflict_probability(
                   cfg.processors, cfg.banks(), cfg.bank_delay)
            << ", expected access time = "
            << core::lightly_loaded_access_time(cfg.processors, cfg.banks(),
                                                cfg.bank_delay, cfg.latency)
            << " cycles\n"
            << "  banks for <= 5% conflicts at this d: "
            << core::lightly_loaded_banks_needed(cfg.processors,
                                                 cfg.bank_delay, 0.05)
            << " (machine has " << cfg.banks()
            << ") — conflict avoidance asks a different question than\n"
               "  heavy-load throughput, which is the paper's regime.\n";
  return obs.finish();
}
