// Ablation A5: memory-system refinements the (d,x)-BSP deliberately
// omits — bank caching [HS93] and request combining (Ranade) — and what
// they would do to the paper's headline experiment.
//
// The contention sweep of Fig 4 is rerun on three machines: the plain
// J90-like preset, the same machine with per-bank line caches, and the
// same machine with in-network combining. Caching barely moves irregular
// scatters (random addresses rarely hit a line) but combining deletes
// the d·k term outright — on a combining machine the QRQW charge would
// be the wrong model, which is why the paper notes its analysis assumes
// combining is absent.

#include <iostream>

#include "bench_common.hpp"
#include "sim/machine.hpp"
#include "workload/patterns.hpp"

int main(int argc, char** argv) {
  using namespace dxbsp;
  const util::Cli cli(argc, argv);
  auto base = bench::machine_from_cli(cli);
  const std::uint64_t n = cli.get_int("n", 1 << 18);
  const std::uint64_t seed = cli.get_int("seed", 1995);

  bench::Obs obs(cli, "Ablation A5 (bank caching & combining)",
                "Fig-4 contention sweep on plain / cached / combining "
                "variants of " + base.name);

  // Enough lines that one stream per processor fits (p concurrent
  // windows hit each bank); fewer lines thrash the MRU list to 0 hits.
  auto cached = base;
  cached.bank_cache_lines = cli.get_int("cache-lines", 16);
  cached.cache_line_words = cli.get_int("line-words", 8);
  cached.cached_delay = 1;
  auto combining = base;
  combining.combine_requests = true;

  sim::Machine m_plain(base);
  sim::Machine m_cached(cached);
  sim::Machine m_comb(combining);

  util::Table t({"k", "plain", "cached", "combining", "cached hits",
                 "combined reqs", "combining speedup"});
  for (std::uint64_t k = 1; k <= n; k *= 16) {
    const auto addrs = workload::k_hot(n, k, 1ULL << 30, seed + k);
    const auto rp = m_plain.scatter(addrs);
    const auto rc = m_cached.scatter(addrs);
    const auto rb = m_comb.scatter(addrs);
    t.add_row(k, rp.cycles, rc.cycles, rb.cycles, rc.cache_hits, rb.combined,
              static_cast<double>(rp.cycles) / rb.cycles);
  }
  bench::emit(cli, t);

  // Where caching DOES matter: line-local traffic.
  {
    util::Table t2({"pattern", "plain", "cached", "hits"});
    std::vector<std::uint64_t> local(n);
    for (std::uint64_t i = 0; i < n; ++i)
      local[i] = (i / 64) * 8 + (i % 64) % 8;  // revisit 8-word windows
    const auto rp = m_plain.scatter(local);
    const auto rc = m_cached.scatter(local);
    t2.add_row("8-word window walk", rp.cycles, rc.cycles, rc.cache_hits);
    bench::emit(cli, t2);
  }
  std::cout << "Combining removes the d·k term (the QRQW charge) entirely;\n"
               "caching only helps patterns with line reuse. Both justify\n"
               "the paper's choice to model the plain FIFO bank.\n";
  return obs.finish();
}
