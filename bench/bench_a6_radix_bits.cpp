// Ablation A6: radix-sort digit width (the central [ZB91] tuning knob).
//
// Wider digits mean fewer passes but bigger per-processor histograms:
// the histogram region grows as p·2^r, its zero/scan sweeps grow with
// it, while the per-slot counts (the scatter-add contention) shrink.
// The sweet spot on a bank-delay machine balances pass count against
// histogram traffic — this sweep exposes it, plus the skew sensitivity
// on low-entropy keys.

#include <iostream>

#include "algos/radix_sort.hpp"
#include "algos/vm.hpp"
#include "bench_common.hpp"
#include "workload/entropy.hpp"
#include "workload/patterns.hpp"

int main(int argc, char** argv) {
  using namespace dxbsp;
  const util::Cli cli(argc, argv);
  const auto cfg = bench::machine_from_cli(cli);
  const std::uint64_t n = cli.get_int("n", 1 << 17);
  const unsigned key_bits = static_cast<unsigned>(cli.get_int("key-bits", 24));
  const std::uint64_t seed = cli.get_int("seed", 1995);

  bench::Obs obs(cli, "Ablation A6 (radix digit width)",
                "Radix sort cycles vs digit width; n = " + std::to_string(n) +
                    ", " + std::to_string(key_bits) + "-bit keys, machine = " +
                    cfg.name);

  const auto uniform = workload::uniform_random(n, 1ULL << key_bits, seed);
  // Low-entropy keys: two AND rounds collapse most bits.
  const auto skewed_family =
      workload::entropy_family(n, 2, key_bits, 0, seed + 1);
  const auto& skewed = skewed_family.back().keys;

  util::Table t({"radix bits", "passes", "uniform cycles", "uniform cyc/elt",
                 "skewed cycles", "skewed/uniform"});
  for (unsigned r = 2; r <= 16; r += 2) {
    algos::Vm vm_u(cfg);
    (void)algos::radix_sort(vm_u, uniform, key_bits, r);
    algos::Vm vm_s(cfg);
    (void)algos::radix_sort(vm_s, skewed, key_bits, r);
    const unsigned passes = (key_bits + r - 1) / r;
    t.add_row(r, passes, vm_u.cycles(),
              static_cast<double>(vm_u.cycles()) / n, vm_s.cycles(),
              static_cast<double>(vm_s.cycles()) / vm_u.cycles());
  }
  bench::emit(cli, t);
  std::cout << "Few-bit digits pay pass count; many-bit digits pay the\n"
               "histogram sweeps (p*2^r words per pass). Skewed keys also\n"
               "concentrate the histogram scatter (d*(n/p) worst case),\n"
               "which widens the optimum toward smaller digits.\n";
  return obs.finish();
}
