// Ablation A7: block vs cyclic element-to-processor distribution.
//
// The machine assigns a bulk operation's elements to processors either
// block-wise (Cray-style vector chunks) or cyclically. For random
// patterns the two are statistically identical; for *structured* traces
// they differ: a trace whose hot requests cluster in one region lands
// entirely on one processor under the block distribution (h_proc = the
// cluster size) but spreads under the cyclic one. The (d,x)-BSP's
// g·h_proc term prices exactly that imbalance.

#include <iostream>

#include "bench_common.hpp"
#include "sim/machine.hpp"
#include "workload/patterns.hpp"

int main(int argc, char** argv) {
  using namespace dxbsp;
  const util::Cli cli(argc, argv);
  auto cfg = bench::machine_from_cli(cli);
  const std::uint64_t n = cli.get_int("n", 1 << 18);
  const std::uint64_t seed = cli.get_int("seed", 1995);

  bench::Obs obs(cli, "Ablation A7 (element distribution)",
                "Block vs cyclic processor assignment; n = " +
                    std::to_string(n) + ", machine = " + cfg.name);

  // Patterns: uniform random (distribution-insensitive) and a
  // "clustered" trace where the first n/p elements carry all the work
  // (the rest are repeats of one cheap cached... no — they are all
  // distinct too; the imbalance is in *who issues* the contended part).
  const auto random_trace = workload::uniform_random(n, 1ULL << 30, seed);
  // Clustered contention: the hot location's k requests sit contiguously
  // at the front of the trace (e.g. a sorted input), so block assignment
  // gives them all to processor 0's issue pipeline.
  std::vector<std::uint64_t> clustered =
      workload::distinct_random(n, 1ULL << 30, seed + 1);
  const std::uint64_t k = n / cfg.processors;
  for (std::uint64_t i = 0; i < k; ++i) clustered[i] = clustered[0];

  util::Table t({"pattern", "block cycles", "cyclic cycles",
                 "block/cyclic"});
  for (const auto& [name, trace] :
       {std::pair<const char*, const std::vector<std::uint64_t>*>{
            "uniform random", &random_trace},
        {"front-clustered hot location", &clustered}}) {
    cfg.distribution = sim::Distribution::kBlock;
    sim::Machine m_block(cfg);
    cfg.distribution = sim::Distribution::kCyclic;
    sim::Machine m_cyclic(cfg);
    const auto rb = m_block.scatter(*trace);
    const auto rc = m_cyclic.scatter(*trace);
    t.add_row(name, rb.cycles, rc.cycles,
              static_cast<double>(rb.cycles) / rc.cycles);
  }
  bench::emit(cli, t);
  std::cout << "Random traces do not care; structured traces can. Note the\n"
               "hot-location case is bank-bound either way (d*k dominates),\n"
               "so even a pessimal issue imbalance hides behind the bank\n"
               "queue — contention, not distribution, is the lever here.\n";
  return obs.finish();
}
