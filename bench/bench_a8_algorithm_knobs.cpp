// Ablation A8: the QRQW algorithms' own tuning knobs.
//
// (1) Dart-throwing table density rho: a bigger table wins rounds
//     (fewer collisions) but pays a longer pack scan — the memory/time
//     trade of the [GMR94a] permutation algorithm.
// (2) Replicated-tree target contention c: lower c replicates more
//     (more memory, colder replicas), higher c rides the queues. The
//     machine's d decides how much contention is worth buying off.

#include <algorithm>
#include <iostream>
#include <string>

#include "algos/binary_search.hpp"
#include "algos/random_permutation.hpp"
#include "algos/vm.hpp"
#include "bench_common.hpp"
#include "workload/patterns.hpp"

int main(int argc, char** argv) {
  using namespace dxbsp;
  const util::Cli cli(argc, argv);
  const auto cfg = bench::machine_from_cli(cli);
  const std::uint64_t n = cli.get_int("n", 1 << 16);
  const std::uint64_t seed = cli.get_int("seed", 1995);

  bench::Obs obs(cli, "Ablation A8 (algorithm knobs)",
                "Dart table density and tree replication targets; n = " +
                    std::to_string(n) + ", machine = " + cfg.name);

  {
    util::Table t({"rho", "cycles", "rounds", "total darts", "table words"});
    for (const double rho : {1.1, 1.5, 2.0, 4.0, 8.0}) {
      algos::Vm vm(cfg);
      algos::DartStats stats;
      const auto perm =
          algos::random_permutation_qrqw(vm, n, seed, rho, &stats);
      if (!algos::is_permutation_of_iota(perm)) {
        std::cerr << "validation failed at rho = " << rho << "\n";
        return 1;
      }
      t.add_row(rho, vm.cycles(), stats.rounds.size(), stats.total_darts,
                static_cast<std::uint64_t>(rho * static_cast<double>(n)));
    }
    bench::emit(cli, t);
  }
  {
    auto keys = workload::distinct_random((1 << 14) - 1, 1ULL << 40, seed);
    std::sort(keys.begin(), keys.end());
    const auto queries = workload::uniform_random(n, 1ULL << 40, seed + 1);
    const auto reference = algos::reference_lower_bound(keys, queries);

    util::Table t({"target contention c", "search cycles", "tree words",
                   "root replicas", "observed max k"});
    for (const std::uint64_t c :
         {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{4},
          std::uint64_t{16}, std::uint64_t{64}, std::uint64_t{1024}}) {
      algos::Vm vm(cfg);
      const algos::ReplicatedTree tree(vm, keys, n, c);
      const std::uint64_t build = vm.cycles();
      const auto got = tree.lower_bound(vm, queries, seed);
      if (got != reference) {
        std::cerr << "validation failed at c = " << c << "\n";
        return 1;
      }
      t.add_row(c == 0 ? std::string("none (naive)") : std::to_string(c),
                vm.cycles() - build, tree.footprint(), tree.replication(0),
                vm.ledger().max_contention());
    }
    bench::emit(cli, t);
  }
  {
    // Third knob: node fanout of an *unreplicated* wide tree — fewer
    // levels but f-1 separators gathered per level and an uncontended
    // root only if replicated (it is not, so the root block's contention
    // stays ~n and d prices it; wide nodes dilute it across f-1 cells).
    auto keys = workload::distinct_random((1 << 14) - 1, 1ULL << 40,
                                          seed + 2);
    std::sort(keys.begin(), keys.end());
    const auto queries = workload::uniform_random(n, 1ULL << 40, seed + 3);
    const auto reference = algos::reference_lower_bound(keys, queries);
    util::Table t({"fanout f", "levels", "search cycles", "tree words",
                   "observed max k"});
    for (const std::uint64_t f : {std::uint64_t{2}, std::uint64_t{4},
                                  std::uint64_t{8}, std::uint64_t{16},
                                  std::uint64_t{64}}) {
      algos::Vm vm(cfg);
      const algos::FanoutTree tree(vm, keys, f);
      const std::uint64_t build = vm.cycles();
      if (tree.lower_bound(vm, queries) != reference) {
        std::cerr << "fanout validation failed at f = " << f << "\n";
        return 1;
      }
      t.add_row(f, tree.levels(), vm.cycles() - build, tree.footprint(),
                vm.ledger().max_contention());
    }
    bench::emit(cli, t);
  }
  std::cout << "rho ~ 2 and c ~ 4-16 sit at the knees: past them, extra\n"
               "memory (bigger tables, more replicas) buys little time.\n"
               "Fanout trades depth against per-level traffic; without\n"
               "replication the root stays hot at every fanout — width\n"
               "alone cannot buy what the QRQW replication buys.\n";
  return obs.finish();
}
