// Ablation A9: multi-ported banks vs more banks.
//
// A bank with b ports serves b overlapping requests (C90-style dual
// pipes). For balanced traffic, b ports on B banks behave like 1 port on
// b·B banks — but for a hot *location* the two differ: extra banks do
// nothing for a single hot word (it lives in one bank), while extra
// ports drain its queue b-fold faster. Ports are therefore the only
// machine-side mitigation of the d·k term; the (d,x)-BSP conservatively
// models single-ported banks (d_effective = d/b extends it trivially).

#include <iostream>

#include "bench_common.hpp"
#include "sim/machine.hpp"
#include "workload/patterns.hpp"

int main(int argc, char** argv) {
  using namespace dxbsp;
  const util::Cli cli(argc, argv);
  const std::uint64_t n = cli.get_int("n", 1 << 18);
  const std::uint64_t seed = cli.get_int("seed", 1995);

  bench::Obs obs(cli, "Ablation A9 (bank ports vs expansion)",
                "b ports on B banks vs 1 port on b*B banks; n = " +
                    std::to_string(n));

  auto time_for = [&](std::uint64_t x, std::uint64_t ports,
                      const std::vector<std::uint64_t>& addrs) {
    sim::MachineConfig cfg;
    cfg.name = "sweep";
    cfg.processors = 8;
    cfg.gap = 1;
    cfg.latency = 30;
    cfg.bank_delay = 14;
    cfg.expansion = x;
    cfg.bank_ports = ports;
    cfg.slackness = 64 * 1024;
    sim::Machine m(cfg);
    return m.scatter(addrs).cycles;
  };

  {
    const auto addrs = workload::uniform_random(n, 1ULL << 30, seed);
    util::Table t({"config (random pattern)", "cycles"});
    t.add_row("x=4, 1 port", time_for(4, 1, addrs));
    t.add_row("x=4, 2 ports", time_for(4, 2, addrs));
    t.add_row("x=8, 1 port", time_for(8, 1, addrs));
    t.add_row("x=8, 2 ports", time_for(8, 2, addrs));
    t.add_row("x=16, 1 port", time_for(16, 1, addrs));
    bench::emit(cli, t);
  }
  {
    const auto addrs = workload::k_hot(n, n / 8, 1ULL << 30, seed + 1);
    util::Table t({"config (hot location k=n/8)", "cycles"});
    t.add_row("x=32, 1 port", time_for(32, 1, addrs));
    t.add_row("x=64, 1 port (more banks: no help)", time_for(64, 1, addrs));
    t.add_row("x=32, 2 ports (drains 2x)", time_for(32, 2, addrs));
    t.add_row("x=32, 4 ports (drains 4x)", time_for(32, 4, addrs));
    bench::emit(cli, t);
  }
  std::cout << "Balanced traffic: ports == expansion. Hot location: only\n"
               "ports help — the d·k term is a location property, not a\n"
               "bank-count property.\n";
  return obs.finish();
}
