#pragma once
// Shared plumbing for the experiment binaries: every bench prints the
// rows/series of one paper table or figure (ASCII by default, CSV with
// --csv), takes --seed, and sizes down cleanly with --n for smoke runs.
//
// Long-running sweeps additionally take the resilience flags
// (docs/resilience.md):
//   --checkpoint=PATH   crash-atomic snapshot of completed grid points
//   --resume=PATH       skip points already in PATH (sweep_id-checked)
//   --deadline=SECONDS  stop cleanly when the wall-clock budget expires
//   --stall-timeout=S   watchdog: abort if the event loop stops advancing
//   --checkpoint-every=K  flush cadence in completed points (default 1)
//   --threads=T         fan grid points over a thread pool
// An interrupted sweep prints a structured outcome and exits 75
// (EX_TEMPFAIL) so scripts can tell "resume me" from "I failed".

#include <iostream>
#include <string>

#include "resilience/error.hpp"
#include "resilience/sweep.hpp"
#include "sim/machine_config.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace dxbsp::bench {

/// Prints the experiment banner: id, description, machine.
inline void banner(const std::string& id, const std::string& what) {
  std::cout << "=== " << id << " ===\n" << what << "\n\n";
}

/// Emits the table as ASCII or CSV per the --csv flag.
inline void emit(const util::Cli& cli, const util::Table& table) {
  if (cli.has("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << "\n";
}

/// Machine selection: --machine=j90 (default) | c90 | tera.
inline sim::MachineConfig machine_from_cli(const util::Cli& cli) {
  const std::string name = cli.get("machine", "j90");
  if (name == "j90") return sim::MachineConfig::cray_j90();
  if (name == "c90") return sim::MachineConfig::cray_c90();
  if (name == "tera") return sim::MachineConfig::tera_like();
  raise(ErrorCode::kConfig, "unknown --machine '" + name + "'");
}

/// Builds SweepOptions from the shared resilience flags.
inline resilience::SweepOptions sweep_options_from_cli(const util::Cli& cli) {
  resilience::SweepOptions opt;
  opt.checkpoint_path = cli.get("checkpoint", "");
  opt.resume_path = cli.get("resume", "");
  opt.deadline_seconds = cli.get_double("deadline", 0.0);
  opt.stall_seconds = cli.get_double("stall-timeout", 0.0);
  opt.checkpoint_every = cli.get_uint("checkpoint-every", 1);
  opt.threads = cli.get_uint("threads", 0);
  return opt;
}

/// Handles a sweep's outcome: 0 when complete; otherwise prints the
/// structured Interrupted record and returns 75 (EX_TEMPFAIL) so callers
/// know the run is resumable, not failed.
inline int finish_sweep(const resilience::SweepReport& report) {
  if (report.ok()) return 0;
  std::cout << "INTERRUPTED cause=" << resilience::cancel_cause_name(
                                           report.cause)
            << " completed=" << report.completed << "/" << report.total
            << " resumed=" << report.resumed;
  if (!report.checkpoint.empty())
    std::cout << " checkpoint=" << report.checkpoint;
  std::cout << "\n"
            << "resume with --resume=" +
                   (report.checkpoint.empty() ? std::string("<checkpoint>")
                                              : report.checkpoint)
            << "\n";
  return exit_code(ErrorCode::kInterrupted);
}

/// Wraps a bench's main body: dxbsp::Error maps to its structured exit
/// code with a one-line diagnostic instead of std::terminate noise.
template <typename F>
int guarded(F&& body) {
  try {
    return body();
  } catch (const dxbsp::Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return exit_code(e.code());
  }
}

}  // namespace dxbsp::bench
