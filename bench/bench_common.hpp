#pragma once
// Shared plumbing for the experiment binaries: every bench prints the
// rows/series of one paper table or figure (ASCII by default, CSV with
// --csv), takes --seed, and sizes down cleanly with --n for smoke runs.

#include <iostream>
#include <string>

#include "sim/machine_config.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace dxbsp::bench {

/// Prints the experiment banner: id, description, machine.
inline void banner(const std::string& id, const std::string& what) {
  std::cout << "=== " << id << " ===\n" << what << "\n\n";
}

/// Emits the table as ASCII or CSV per the --csv flag.
inline void emit(const util::Cli& cli, const util::Table& table) {
  if (cli.has("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << "\n";
}

/// Machine selection: --machine=j90 (default) | c90 | tera.
inline sim::MachineConfig machine_from_cli(const util::Cli& cli) {
  const std::string name = cli.get("machine", "j90");
  if (name == "j90") return sim::MachineConfig::cray_j90();
  if (name == "c90") return sim::MachineConfig::cray_c90();
  if (name == "tera") return sim::MachineConfig::tera_like();
  throw std::invalid_argument("unknown --machine '" + name + "'");
}

}  // namespace dxbsp::bench
