#pragma once
// Shared plumbing for the experiment binaries: every bench prints the
// rows/series of one paper table or figure (ASCII by default, CSV with
// --csv), takes --seed, and sizes down cleanly with --n for smoke runs.
//
// Long-running sweeps additionally take the resilience flags
// (docs/resilience.md):
//   --checkpoint=PATH   crash-atomic snapshot of completed grid points
//   --resume=PATH       skip points already in PATH (sweep_id-checked)
//   --deadline=SECONDS  stop cleanly when the wall-clock budget expires
//   --stall-timeout=S   watchdog: abort if the event loop stops advancing
//   --checkpoint-every=K  flush cadence in completed points (default 1)
//   --threads=T         fan grid points over a thread pool
// An interrupted sweep prints a structured outcome and exits 75
// (EX_TEMPFAIL) so scripts can tell "resume me" from "I failed".

#include <iostream>
#include <memory>
#include <string>

#include "obs/report.hpp"
#include "resilience/error.hpp"
#include "resilience/shard.hpp"
#include "resilience/sweep.hpp"
#include "sim/machine.hpp"
#include "sim/machine_config.hpp"
#include "svc/worker.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace dxbsp::bench {

/// Prints the experiment banner: id, description, machine.
inline void banner(const std::string& id, const std::string& what) {
  std::cout << "=== " << id << " ===\n" << what << "\n\n";
}

/// Flags that shape execution rather than the workload. They are kept
/// out of run reports so a report is byte-identical across --threads /
/// checkpointing settings (docs/observability.md).
inline bool is_execution_flag(const std::string& name) {
  // --svc-lease is execution-shaping (which shard, where the protocol
  // files live) so a fleet worker's RunInfo matches the serial run's and
  // merged reports stay byte-comparable. --shard is NOT here: a
  // standalone shard run computes a different grid, which must show in
  // its report identity.
  return name == "checkpoint" || name == "resume" || name == "deadline" ||
         name == "stall-timeout" || name == "checkpoint-every" ||
         name == "threads" || name == "trace" || name == "trace-capacity" ||
         name == "report" || name == "report-csv" || name == "metrics" ||
         name == "svc-lease";
}

/// Parses --engine=auto|calendar|reference (docs/performance.md
/// §selector). kAuto is the default; pinning is a workload flag — it can
/// change which code ran and therefore the selector section — so it is
/// NOT in is_execution_flag.
inline sim::Machine::Engine engine_from_cli(const util::Cli& cli) {
  const std::string name = cli.get("engine", "auto");
  if (name == "auto") return sim::Machine::Engine::kAuto;
  if (name == "calendar") return sim::Machine::Engine::kCalendar;
  if (name == "reference") return sim::Machine::Engine::kReference;
  raise(ErrorCode::kConfig,
        "--engine must be auto, calendar or reference (got '" + name + "')");
}

/// Observability wiring shared by every bench (docs/observability.md):
///   --trace=PATH         Chrome trace_event JSON of the simulated runs
///   --trace-capacity=N   retained events per track (default 65536)
///   --report=PATH        versioned JSON run report
///   --report-csv=PATH    the same report as CSV rows
///   --metrics=PATH       full metrics dump (includes host metrics)
///   --drift-band=X       drift-detector relative-error band (default 0.25)
///   --engine=E           pin the execution engine (default: auto)
/// Construct one per invocation (prints the banner), attach() every
/// Machine the bench drives (one track per sweep point), and return
/// through finish() so the files get written — also on the interrupted
/// (exit 75) path, where a partial report is still useful.
///
/// Cost attribution, drift detection and the engine-selection log are
/// always on (deterministic and cheap); their aggregates land in the
/// report's "attribution", "drift" and "selector" sections whenever
/// --report/--report-csv is given.
class Obs {
 public:
  Obs(const util::Cli& cli, const std::string& id, const std::string& what)
      : trace_path_(cli.get("trace", "")),
        report_path_(cli.get("report", "")),
        report_csv_path_(cli.get("report-csv", "")),
        metrics_path_(cli.get("metrics", "")),
        drift_(obs::DriftConfig{cli.get_double("drift-band", 0.25)}),
        engine_(engine_from_cli(cli)) {
    banner(id, what);
    info_.bench = id;
    info_.description = what;
    info_.machine = cli.get("machine", "");
    info_.seed = cli.get_uint("seed", 0);
    for (const auto& [name, value] : cli.flags())
      if (!is_execution_flag(name)) info_.flags.emplace_back(name, value);
    if (!trace_path_.empty())
      tracer_ = std::make_unique<obs::Tracer>(static_cast<std::size_t>(
          cli.get_uint("trace-capacity", std::uint64_t{1} << 16)));
    // A bench invocation reports from zero even if the process (a test
    // harness, say) already ran simulations.
    obs::MetricsRegistry::global().reset();
  }

  /// Routes the machine's trace events into this run's tracer under
  /// `track` (use the sweep-point key), applies the --engine selection,
  /// and wires the machine's cost attribution, drift samples and
  /// selector rows into this run's aggregates. Without --trace, a fleet
  /// worker's flight-recorder tracer (svc/worker.hpp) stands in — in
  /// PASSIVE mode, so engine selection (and thus every deterministic
  /// report section, selector log included) stays byte-identical to an
  /// untraced serial run; the ring sees whatever the chosen engine
  /// emits, at minimum each point's superstep span.
  void attach(sim::Machine& machine, std::uint64_t track = 0) {
    if (tracer_) {
      machine.set_tracer(&tracer_->track(track));
    } else if (flight_tracer_ != nullptr) {
      machine.set_tracer(&flight_tracer_->track(track), /*passive=*/true);
    }
    machine.set_engine(engine_);
    machine.set_attribution(&attribution_);
    machine.set_drift(&drift_, track);
    machine.set_selector(&selector_, track);
  }

  /// Fleet-worker hook (apply_sharding): the flight ring's private
  /// tracer, used only when the run has no --trace tracer of its own.
  void set_flight_tracer(obs::Tracer* t) noexcept { flight_tracer_ = t; }

  [[nodiscard]] obs::Tracer* tracer() noexcept { return tracer_.get(); }
  [[nodiscard]] obs::AttributionAggregate& attribution() noexcept {
    return attribution_;
  }
  [[nodiscard]] obs::DriftDetector& drift() noexcept { return drift_; }
  [[nodiscard]] obs::SelectorLog& selector() noexcept { return selector_; }
  [[nodiscard]] sim::Machine::Engine engine() const noexcept {
    return engine_;
  }
  /// The run identity (fleet workers ship it in their result message).
  [[nodiscard]] const obs::RunInfo& info() const noexcept { return info_; }

  /// Writes the requested artifacts and passes `rc` through.
  int finish(int rc = 0) {
    const auto& reg = obs::MetricsRegistry::global();
    if (!trace_path_.empty())
      obs::write_file(trace_path_, [&](std::ostream& os) {
        tracer_->write_chrome_json(os);
      });
    if (!report_path_.empty())
      obs::write_file(report_path_, [&](std::ostream& os) {
        obs::write_report_json(os, info_, reg, tracer_.get(), &attribution_,
                               &drift_, &selector_);
      });
    if (!report_csv_path_.empty())
      obs::write_file(report_csv_path_, [&](std::ostream& os) {
        obs::write_report_csv(os, info_, reg, tracer_.get(), &attribution_,
                              &drift_, &selector_);
      });
    if (!metrics_path_.empty())
      obs::write_file(metrics_path_, [&](std::ostream& os) {
        reg.write_json(os, /*include_host=*/true);
      });
    return rc;
  }

 private:
  obs::RunInfo info_;
  std::string trace_path_;
  std::string report_path_;
  std::string report_csv_path_;
  std::string metrics_path_;
  std::unique_ptr<obs::Tracer> tracer_;
  obs::Tracer* flight_tracer_ = nullptr;
  obs::AttributionAggregate attribution_;
  obs::DriftDetector drift_;
  obs::SelectorLog selector_;
  sim::Machine::Engine engine_ = sim::Machine::Engine::kAuto;
};

/// Emits the table as ASCII or CSV per the --csv flag.
inline void emit(const util::Cli& cli, const util::Table& table) {
  if (cli.has("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << "\n";
}

/// Machine selection: --machine=j90 (default) | c90 | tera, or any full
/// sim::MachineConfig::parse spec ("j90,cache=1024,cache-write=back").
/// The three bare preset names short-circuit so their banner identity
/// ("cray-j90", not the spec string parse() would stamp) is unchanged.
inline sim::MachineConfig machine_from_cli(const util::Cli& cli) {
  const std::string name = cli.get("machine", "j90");
  if (name == "j90") return sim::MachineConfig::cray_j90();
  if (name == "c90") return sim::MachineConfig::cray_c90();
  if (name == "tera") return sim::MachineConfig::tera_like();
  return sim::MachineConfig::parse(name);
}

/// Builds SweepOptions from the shared resilience flags.
inline resilience::SweepOptions sweep_options_from_cli(const util::Cli& cli) {
  resilience::SweepOptions opt;
  opt.checkpoint_path = cli.get("checkpoint", "");
  opt.resume_path = cli.get("resume", "");
  opt.deadline_seconds = cli.get_double("deadline", 0.0);
  opt.stall_seconds = cli.get_double("stall-timeout", 0.0);
  opt.checkpoint_every = cli.get_uint("checkpoint-every", 1);
  opt.threads = cli.get_uint("threads", 0);
  return opt;
}

/// Handles a sweep's outcome: 0 when complete; otherwise prints the
/// structured Interrupted record and returns 75 (EX_TEMPFAIL) so callers
/// know the run is resumable, not failed.
inline int finish_sweep(const resilience::SweepReport& report) {
  if (report.ok()) return 0;
  std::cout << "INTERRUPTED cause=" << resilience::cancel_cause_name(
                                           report.cause)
            << " completed=" << report.completed << "/" << report.total
            << " resumed=" << report.resumed;
  if (!report.checkpoint.empty())
    std::cout << " checkpoint=" << report.checkpoint;
  std::cout << "\n"
            << "resume with --resume=" +
                   (report.checkpoint.empty() ? std::string("<checkpoint>")
                                              : report.checkpoint)
            << "\n";
  return exit_code(ErrorCode::kInterrupted);
}

/// Applies the shard execution modes to a sweep about to run, returning
/// the (possibly shard-scoped) sweep id:
///   --svc-lease=FILE  fleet worker — follow the coordinator's lease
///                     (slices keys, rewires opt, arms partial-result
///                     publication; docs/resilience.md §fleet mode);
///   --shard=i/S       standalone shard run — same slice and scoped
///                     sweep id, no coordinator (the poisoned-shard
///                     repro path).
/// After runner.run(), worker-mode benches must return through
/// `worker.finish(report, obs.info())` instead of printing tables.
inline std::uint64_t apply_sharding(svc::WorkerContext& worker,
                                    const util::Cli& cli, std::uint64_t id,
                                    std::vector<std::uint64_t>& keys,
                                    resilience::SweepOptions& opt, Obs& obs) {
  const std::string lease = cli.get("svc-lease", "");
  if (!lease.empty()) {
    worker.init(lease);
    // Flight-tail source: an explicit --trace tracer when present,
    // otherwise the worker's own small ring via attach().
    if (obs.tracer() != nullptr) {
      worker.set_trace_source(obs.tracer());
    } else {
      obs.set_flight_tracer(worker.flight_tracer());
    }
    return worker.prepare(id, keys, opt, &obs.attribution(), &obs.drift(),
                          &obs.selector());
  }
  const std::string shard = cli.get("shard", "");
  if (!shard.empty()) {
    const auto spec = resilience::ShardSpec::parse(shard);
    keys = spec.slice(keys);
    return resilience::shard_sweep_id(id, spec);
  }
  return id;
}

/// Wraps a bench's main body: dxbsp::Error maps to its structured exit
/// code with a one-line diagnostic instead of std::terminate noise.
template <typename F>
int guarded(F&& body) {
  try {
    return body();
  } catch (const dxbsp::Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return exit_code(e.code());
  }
}

}  // namespace dxbsp::bench
