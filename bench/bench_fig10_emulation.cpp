// Emulation figure (§5, Theorems 5.1/5.2): slowdown of the QRQW PRAM
// emulation on the (d,x)-BSP as a function of d and x.
//
// For a synthetic QRQW step (fixed ops and contention), we emulate on
// machines sweeping the bank delay d at fixed expansion, and the
// expansion x at fixed delay, reporting the measured slowdown against
// the QRQW charge, the theory bound, and the asymptotic slowdown
// max(g, d/x) — the nonlinear dependence the abstract advertises.

#include <iostream>

#include "bench_common.hpp"
#include "qrqw/emulation.hpp"
#include "qrqw/theory.hpp"

int main(int argc, char** argv) {
  using namespace dxbsp;
  const util::Cli cli(argc, argv);
  const std::uint64_t n = cli.get_int("n", 1 << 17);
  const std::uint64_t k = cli.get_int("k", 64);
  const std::uint64_t p = cli.get_int("p", 8);
  const std::uint64_t seed = cli.get_int("seed", 1995);

  bench::Obs obs(cli, "Fig 10 (QRQW emulation)",
                "Emulation slowdown vs d and x; step of n = " +
                    std::to_string(n) + " ops, contention k = " +
                    std::to_string(k));

  const auto step = qrqw::synthetic_step(n, k, 1ULL << 30, n, seed);

  auto run = [&](std::uint64_t d, std::uint64_t x) {
    sim::MachineConfig cfg;
    cfg.name = "sweep";
    cfg.processors = p;
    cfg.gap = 1;
    cfg.latency = 30;
    cfg.bank_delay = d;
    cfg.expansion = x;
    cfg.slackness = 64 * 1024;
    qrqw::EmulationEngine eng(cfg, seed);
    return std::pair(eng.emulate_step(step), eng.params());
  };

  {
    const std::uint64_t x = cli.get_int("x", 8);
    util::Table t({"d (x=" + std::to_string(x) + ")", "sim cycles",
                   "slowdown/op", "asymptotic max(g,d/x)", "theory bound",
                   "within bound"});
    for (std::uint64_t d = 1; d <= 64; d *= 2) {
      const auto [r, m] = run(d, x);
      t.add_row(d, r.sim_cycles,
                static_cast<double>(r.sim_cycles) /
                    (static_cast<double>(n) / static_cast<double>(p)),
                qrqw::asymptotic_slowdown(m), r.bound,
                static_cast<double>(r.sim_cycles) <= r.bound ? "yes" : "NO");
    }
    bench::emit(cli, t);
  }
  {
    const std::uint64_t d = cli.get_int("d", 14);
    util::Table t({"x (d=" + std::to_string(d) + ")", "sim cycles",
                   "slowdown/op", "asymptotic max(g,d/x)", "theory bound",
                   "regime"});
    for (std::uint64_t x = 1; x <= 128; x *= 2) {
      const auto [r, m] = run(d, x);
      t.add_row(x, r.sim_cycles,
                static_cast<double>(r.sim_cycles) /
                    (static_cast<double>(n) / static_cast<double>(p)),
                qrqw::asymptotic_slowdown(m), r.bound,
                x <= d ? "Thm 5.1 (x<=d)" : "Thm 5.2 (x>=d)");
    }
    bench::emit(cli, t);
    std::cout << "required slackness (ops/processor) for work-preserving "
                 "emulation within 50% of the asymptote:\n";
    for (std::uint64_t x : {std::uint64_t{2}, std::uint64_t{8},
                            std::uint64_t{32}, std::uint64_t{128}}) {
      const core::DxBspParams m{p, 1, 30, d, x};
      std::cout << "  x = " << x << ": " << qrqw::required_slackness(m)
                << "\n";
    }
  }
  return obs.finish();
}
