// Emulation of *real* algorithm programs (§5 meets the experiments).
//
// The Theorem 5.1/5.2 benches use synthetic steps; here the QRQW
// programs are extracted from actual library algorithm runs (random
// permutation, SpMV with a dense column, connected components, list
// ranking) and emulated on the (d,x)-BSP machine. For each program:
// its QRQW cost, the emulated machine time, the slowdown, and whether
// the theory bound held — closing the loop between the paper's model
// half and its algorithm half.

#include <iostream>

#include "bench_common.hpp"
#include "qrqw/emulation.hpp"
#include "qrqw/extract.hpp"
#include "workload/graphs.hpp"
#include "workload/sparse.hpp"

int main(int argc, char** argv) {
  using namespace dxbsp;
  const util::Cli cli(argc, argv);
  const auto cfg = bench::machine_from_cli(cli);
  const std::uint64_t n = cli.get_int("n", 1 << 14);
  const std::uint64_t seed = cli.get_int("seed", 1995);

  bench::Obs obs(cli, "Fig 10b (emulating real programs)",
                "QRQW programs extracted from algorithm runs, emulated on " +
                    cfg.name + "; base size n = " + std::to_string(n));

  const struct {
    const char* name;
    qrqw::QrqwProgram program;
  } programs[] = {
      {"random permutation", qrqw::extract_random_permutation(n, seed)},
      {"spmv (dense column n/4)",
       qrqw::extract_spmv(
           workload::dense_column_csr(n, n, 4, n / 4, seed))},
      {"connected components G(n,2n)",
       qrqw::extract_connected_components(
           workload::random_gnm(n, 2 * n, seed))},
      {"connected components star",
       qrqw::extract_connected_components(workload::star(n))},
      {"list ranking", qrqw::extract_list_ranking(n, seed)},
  };

  util::Table t({"program", "steps", "ops", "max k", "qrqw cost",
                 "emulated cycles", "slowdown", "within bound"});
  for (const auto& p : programs) {
    qrqw::EmulationEngine eng(cfg, seed);
    const auto r = eng.emulate_program(p.program);
    t.add_row(p.name, p.program.size(), p.program.ops(),
              p.program.max_contention(), r.qrqw_cost, r.sim_cycles,
              r.slowdown(),
              static_cast<double>(r.sim_cycles) <= r.bound ? "yes" : "NO");
  }
  bench::emit(cli, t);
  std::cout << "Low-contention programs emulate at slowdown ~= the per-op\n"
               "bandwidth cost; the star graph's contention-n steps emulate\n"
               "at slowdown ~= d·k/cost — in all cases under the bound.\n";
  return obs.finish();
}
