// Figure 11: random permutation generation, QRQW vs EREW.
//
// QRQW: dart throwing into a 2n table, retrying losers (contention per
// round stays logarithmic, rounds geometric). EREW: draw random keys and
// radix-sort (the [ZB91] vectorized sort). The paper's point — repeated
// here across problem sizes — is that the contention-tolerant algorithm
// wins even though every dart round pays bank queueing, because the EREW
// route pays several full sorting passes.

#include <iostream>

#include "algos/random_permutation.hpp"
#include "algos/vm.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace dxbsp;
  const util::Cli cli(argc, argv);
  const auto cfg = bench::machine_from_cli(cli);
  const std::uint64_t n_max = cli.get_int("n", 1 << 19);
  const std::uint64_t seed = cli.get_int("seed", 1995);

  bench::Obs obs(cli, "Fig 11 (random permutation)",
                "QRQW dart-throwing vs EREW radix-sort permutation; "
                "machine = " + cfg.name);

  util::Table t({"n", "qrqw cycles", "erew cycles", "erew/qrqw",
                 "qrqw cyc/elt", "erew cyc/elt", "dart rounds",
                 "max round contention"});
  for (std::uint64_t n = 1 << 10; n <= n_max; n *= 4) {
    algos::Vm vm_q(cfg);
    algos::DartStats stats;
    const auto pq = algos::random_permutation_qrqw(vm_q, n, seed, 2.0, &stats);
    algos::Vm vm_e(cfg);
    const auto pe = algos::random_permutation_erew(vm_e, n, seed);
    if (!algos::is_permutation_of_iota(pq) ||
        !algos::is_permutation_of_iota(pe)) {
      std::cerr << "validation failed at n = " << n << "\n";
      return 1;
    }
    std::uint64_t max_k = 0;
    for (const auto& r : stats.rounds)
      max_k = std::max(max_k, r.max_contention);
    t.add_row(n, vm_q.cycles(), vm_e.cycles(),
              static_cast<double>(vm_e.cycles()) / vm_q.cycles(),
              static_cast<double>(vm_q.cycles()) / n,
              static_cast<double>(vm_e.cycles()) / n, stats.rounds.size(),
              max_k);
  }
  bench::emit(cli, t);

  // Phase breakdown at the largest size.
  algos::Vm vm(cfg);
  (void)algos::random_permutation_qrqw(vm, n_max, seed);
  std::cout << "QRQW phase breakdown at n = " << n_max << ":\n";
  vm.ledger().print(std::cout);
  return obs.finish();
}
