// Binary-search experiment ([GMR94a] via this paper's §5 discussion):
// n keys searched in a balanced tree of m keys.
//
// Three contenders: the QRQW replicated tree (top levels duplicated,
// random replica per level — bounded, well-accounted contention), the
// naive unreplicated tree (the root alone absorbs all n lookups:
// contention n, murdered by d·n bank serialization), and the EREW
// sort-and-merge baseline (contention-free, pays full sorting).

#include <algorithm>
#include <iostream>

#include "algos/binary_search.hpp"
#include "algos/vm.hpp"
#include "bench_common.hpp"
#include "workload/patterns.hpp"

int main(int argc, char** argv) {
  using namespace dxbsp;
  const util::Cli cli(argc, argv);
  const auto cfg = bench::machine_from_cli(cli);
  const std::uint64_t m = cli.get_int("m", (1 << 14) - 1);
  const std::uint64_t n_max = cli.get_int("n", 1 << 18);
  const std::uint64_t seed = cli.get_int("seed", 1995);

  bench::Obs obs(cli, "Fig 11b (binary search)",
                "Search n keys in a tree of m = " + std::to_string(m) +
                    " keys: QRQW replicated tree vs naive vs EREW "
                    "sort-merge; machine = " + cfg.name);

  auto keys = workload::distinct_random(m, 1ULL << 40, seed);
  std::sort(keys.begin(), keys.end());

  util::Table t({"n", "qrqw cycles", "naive cycles", "erew cycles",
                 "naive/qrqw", "erew/qrqw", "qrqw tree words"});
  for (std::uint64_t n = 1 << 12; n <= n_max; n *= 4) {
    const auto queries = workload::uniform_random(n, 1ULL << 40, seed + n);
    const auto reference = algos::reference_lower_bound(keys, queries);

    algos::Vm vm_q(cfg);
    const algos::ReplicatedTree tree(vm_q, keys, n, 4);
    const std::uint64_t build = vm_q.cycles();
    const auto rq = tree.lower_bound(vm_q, queries, seed);

    algos::Vm vm_n(cfg);
    const algos::ReplicatedTree naive(vm_n, keys, n, 0);
    const auto rn = naive.lower_bound(vm_n, queries, seed);

    algos::Vm vm_e(cfg);
    const auto re = algos::erew_lower_bound(vm_e, keys, queries);

    if (rq != reference || rn != reference || re != reference) {
      std::cerr << "validation failed at n = " << n << "\n";
      return 1;
    }
    const std::uint64_t q_cycles = vm_q.cycles() - build;  // search only
    t.add_row(n, q_cycles, vm_n.cycles(), vm_e.cycles(),
              static_cast<double>(vm_n.cycles()) / q_cycles,
              static_cast<double>(vm_e.cycles()) / q_cycles,
              tree.footprint());
  }
  bench::emit(cli, t);
  return obs.finish();
}
