// Figure 12: sparse matrix–vector multiplication with a dense column.
//
// All column indices random except a dense column present in `c` rows;
// the gather of x[col] then carries location contention c. Measured
// total time (simulator), (d,x)-BSP and BSP predictions as a function of
// c. The (d,x)-BSP captures the ramp once d·c passes the bandwidth
// term; BSP stays flat and wrong — the discrepancy that motivated the
// paper.

#include <iostream>

#include "algos/spmv.hpp"
#include "algos/vm.hpp"
#include "bench_common.hpp"
#include "util/rng.hpp"
#include "workload/sparse.hpp"

int main(int argc, char** argv) {
  using namespace dxbsp;
  const util::Cli cli(argc, argv);
  const auto cfg = bench::machine_from_cli(cli);
  const std::uint64_t rows = cli.get_int("rows", 1 << 16);
  const std::uint64_t nnz_per_row = cli.get_int("nnz-per-row", 4);
  const std::uint64_t seed = cli.get_int("seed", 1995);

  bench::Obs obs(cli, "Fig 12 (sparse matvec)",
                "SpMV time vs dense-column length; rows = " +
                    std::to_string(rows) + ", nnz/row = " +
                    std::to_string(nnz_per_row) + ", machine = " + cfg.name);

  util::Table t({"dense col len", "gather contention", "measured", "dxbsp",
                 "bsp", "dxbsp/meas", "bsp/meas"});
  for (std::uint64_t c = 1; c <= rows; c *= 4) {
    algos::Vm vm(cfg);
    const auto a =
        workload::dense_column_csr(rows, rows, nnz_per_row, c, seed + c);
    std::vector<double> x(a.cols);
    util::Xoshiro256 rng(seed);
    for (auto& v : x) v = rng.uniform();

    algos::SpmvStats stats;
    const auto y = algos::spmv(vm, a, x, &stats);
    // Spot-check correctness against the reference on a few entries.
    const auto expect = a.multiply_reference(x);
    for (std::uint64_t i = 0; i < a.rows; i += a.rows / 7 + 1) {
      if (std::abs(y[i] - expect[i]) > 1e-6) {
        std::cerr << "validation failed at c = " << c << "\n";
        return 1;
      }
    }
    const double meas = static_cast<double>(vm.ledger().total_sim());
    const double dx = static_cast<double>(vm.ledger().total_dxbsp());
    const double bsp = static_cast<double>(vm.ledger().total_bsp());
    t.add_row(c, stats.gather_contention, meas, dx, bsp, dx / meas,
              bsp / meas);
  }
  bench::emit(cli, t);

  std::cout << "Phase breakdown at the longest dense column:\n";
  algos::Vm vm(cfg);
  const auto a = workload::dense_column_csr(rows, rows, nnz_per_row, rows,
                                            seed);
  std::vector<double> x(a.cols, 1.0);
  (void)algos::spmv(vm, a, x);
  vm.ledger().print(std::cout);
  return obs.finish();
}
