// Connected-components experiment: contention inside Greiner-style
// hook-and-contract CC, per phase and per iteration, across graph
// families spanning the contention spectrum (uniform random, star
// forest, single star, grid).

#include <iostream>

#include "algos/connected_components.hpp"
#include "algos/vm.hpp"
#include "bench_common.hpp"
#include "workload/graphs.hpp"

int main(int argc, char** argv) {
  using namespace dxbsp;
  const util::Cli cli(argc, argv);
  const auto cfg = bench::machine_from_cli(cli);
  const std::uint64_t n = cli.get_int("n", 1 << 16);
  const std::uint64_t seed = cli.get_int("seed", 1995);

  bench::Obs obs(cli, "Fig 13 (connected components)",
                "Per-iteration contention and cost of hook-and-contract CC; "
                "n = " + std::to_string(n) + " vertices, machine = " +
                    cfg.name);

  const struct {
    const char* name;
    workload::Graph graph;
  } cases[] = {
      {"random G(n, 2n)", workload::random_gnm(n, 2 * n, seed)},
      {"star forest (8 stars)", workload::star_forest(n, 8, seed)},
      {"single star", workload::star(n)},
      {"grid", workload::grid(1 << 8, n >> 8)},
  };

  for (const auto& c : cases) {
    algos::Vm vm(cfg);
    algos::CcStats stats;
    const auto labels = algos::connected_components(vm, c.graph, &stats);
    if (!algos::same_partition(labels,
                               workload::reference_components(c.graph))) {
      std::cerr << "validation failed on " << c.name << "\n";
      return 1;
    }

    util::Table t({"iter", "live edges", "gather k", "hook k",
                   "shortcut rounds", "components left"});
    t.set_caption(std::string(c.name) + "  (m = " +
                  std::to_string(c.graph.m()) + " edges)");
    std::uint64_t iter = 0;
    for (const auto& it : stats.iterations) {
      t.add_row(++iter, it.live_edges, it.gather_contention,
                it.hook_contention, it.shortcut_rounds, it.components);
    }
    bench::emit(cli, t);

    std::cout << "totals: sim = " << vm.ledger().total_sim()
              << " cyc, dxbsp = " << vm.ledger().total_dxbsp()
              << ", bsp = " << vm.ledger().total_bsp() << " (dxbsp/sim = "
              << static_cast<double>(vm.ledger().total_dxbsp()) /
                     static_cast<double>(vm.ledger().total_sim())
              << ", bsp/sim = "
              << static_cast<double>(vm.ledger().total_bsp()) /
                     static_cast<double>(vm.ledger().total_sim())
              << ")\n\n";
  }

  // Algorithm variant comparison (Greiner's paper compares several
  // data-parallel CC algorithms; we carry three): deterministic
  // hook-and-contract with full flattening, the single-shortcut variant
  // (cheaper iterations, more of them), and random mate.
  util::Table cmp({"graph", "hook+flatten", "single-shortcut", "random mate",
                   "ss/hc", "rm/hc", "iters (hc/ss/rm)"});
  for (const auto& c : cases) {
    algos::Vm vm_hc(cfg);
    algos::CcStats s_hc;
    (void)algos::connected_components(vm_hc, c.graph, &s_hc);
    algos::Vm vm_ss(cfg);
    algos::CcStats s_ss;
    (void)algos::connected_components(vm_ss, c.graph, &s_ss,
                                      {.single_shortcut = true});
    algos::Vm vm_rm(cfg);
    algos::CcStats s_rm;
    (void)algos::connected_components_random_mate(vm_rm, c.graph, seed,
                                                  &s_rm);
    cmp.add_row(c.name, vm_hc.cycles(), vm_ss.cycles(), vm_rm.cycles(),
                static_cast<double>(vm_ss.cycles()) / vm_hc.cycles(),
                static_cast<double>(vm_rm.cycles()) / vm_hc.cycles(),
                std::to_string(s_hc.iterations.size()) + "/" +
                    std::to_string(s_ss.iterations.size()) + "/" +
                    std::to_string(s_rm.iterations.size()));
  }
  bench::emit(cli, cmp);
  return obs.finish();
}
