// List ranking (the [RM94] workload the paper's conclusion targets):
// Wyllie pointer jumping on the bank-delay machine.
//
// The contention signature: every round, the set of nodes pointing at
// the terminal doubles, so the gather contention at the tail grows
// 2, 4, 8, ..., n — the early rounds are bandwidth-bound and the late
// rounds bank-bound. The per-round table shows the crossover, and the
// size sweep compares total measured time against the ledger's (d,x)-BSP
// and BSP predictions.

#include <iostream>

#include "algos/list_ranking.hpp"
#include "algos/vm.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace dxbsp;
  const util::Cli cli(argc, argv);
  const auto cfg = bench::machine_from_cli(cli);
  const std::uint64_t n_max = cli.get_int("n", 1 << 17);
  const std::uint64_t seed = cli.get_int("seed", 1995);

  bench::Obs obs(cli, "Fig 14 (list ranking)",
                "Wyllie pointer jumping; machine = " + cfg.name);

  {
    util::Table t({"n", "cycles", "cyc/elt", "rounds", "dxbsp/sim",
                   "bsp/sim"});
    for (std::uint64_t n = 1 << 11; n <= n_max; n *= 4) {
      algos::Vm vm(cfg);
      algos::ListRankStats stats;
      const auto next = algos::random_list(n, seed);
      const auto rank = algos::list_rank(vm, next, &stats);
      if (rank != algos::reference_list_rank(next)) {
        std::cerr << "validation failed at n = " << n << "\n";
        return 1;
      }
      t.add_row(n, vm.cycles(), static_cast<double>(vm.cycles()) / n,
                stats.rounds.size(),
                static_cast<double>(vm.ledger().total_dxbsp()) / vm.cycles(),
                static_cast<double>(vm.ledger().total_bsp()) / vm.cycles());
    }
    bench::emit(cli, t);
  }

  // Per-round contention profile at the largest size.
  algos::Vm vm(cfg);
  algos::ListRankStats stats;
  (void)algos::list_rank(vm, algos::random_list(n_max, seed), &stats);
  util::Table t({"round", "gather contention (tail)", "active nodes"});
  t.set_caption("per-round profile, n = " + std::to_string(n_max));
  std::uint64_t round = 0;
  for (const auto& r : stats.rounds)
    t.add_row(++round, r.gather_contention, r.active);
  bench::emit(cli, t);
  std::cout << "The tail's contention doubles every round: pointer jumping\n"
               "turns an initially contention-free structure into a maximal\n"
               "hot spot — exactly the pattern the (d,x)-BSP prices and\n"
               "BSP/LogP miss.\n";
  return obs.finish();
}
