// Multiprefix ([She93], named in the paper's conclusion): fetch-add
// (QRQW mechanics) vs sort-based (EREW mechanics) across key skew.
//
// Key distribution sweeps from uniform over many counters (fetch-add is
// a single cheap scatter) to all-one-key (fetch-add serializes at d·n).
// The punchline the measurements deliver: the sorted route does NOT
// escape the skew — its processor-private histograms concentrate on the
// hot digit and serialize at d·(n/p) per pass — so "avoid contention by
// sorting" loses across the entire skew range on a bank-delay machine,
// paying both the fixed sorting passes and an inherited skew term.

#include <iostream>

#include "algos/multiprefix.hpp"
#include "algos/vm.hpp"
#include "bench_common.hpp"
#include "workload/patterns.hpp"

int main(int argc, char** argv) {
  using namespace dxbsp;
  const util::Cli cli(argc, argv);
  const auto cfg = bench::machine_from_cli(cli);
  const std::uint64_t n = cli.get_int("n", 1 << 17);
  const std::uint64_t num_keys = cli.get_int("keys", 1 << 12);
  const std::uint64_t seed = cli.get_int("seed", 1995);

  bench::Obs obs(cli, "Fig 15 (multiprefix)",
                "Fetch-add vs sort-based multiprefix vs key skew; n = " +
                    std::to_string(n) + ", " + std::to_string(num_keys) +
                    " keys, machine = " + cfg.name);

  const std::vector<std::uint64_t> values(n, 1);
  util::Table t({"hot-key share", "max key mult", "fetch-add", "sorted",
                 "sorted/fetch-add"});
  for (const double share : {0.0, 0.01, 0.05, 0.25, 0.5, 1.0}) {
    // share of the elements use key 0; the rest are uniform.
    auto keys = workload::uniform_random(n, num_keys, seed);
    const auto hot = static_cast<std::uint64_t>(share * static_cast<double>(n));
    for (std::uint64_t i = 0; i < hot; ++i) keys[i] = 0;
    workload::shuffle(keys, seed + hot);

    algos::Vm vm_fa(cfg);
    const auto fa = algos::multiprefix_fetch_add(vm_fa, keys, values, num_keys);
    algos::Vm vm_so(cfg);
    const auto so = algos::multiprefix_sorted(vm_so, keys, values, num_keys);
    const auto ref = algos::reference_multiprefix(keys, values, num_keys);
    if (fa.prefix != ref.prefix || so.prefix != ref.prefix) {
      std::cerr << "validation failed at share = " << share << "\n";
      return 1;
    }
    t.add_row(share, vm_fa.ledger().max_contention(), vm_fa.cycles(),
              vm_so.cycles(),
              static_cast<double>(vm_so.cycles()) / vm_fa.cycles());
  }
  bench::emit(cli, t);
  std::cout << "Fetch-add degrades linearly with the hottest key (d·k) — and\n"
               "the sort degrades with it, because its private histograms\n"
               "inherit the skew (d·k/p per pass) on top of the fixed sorting\n"
               "passes. Well-accounted contention wins at every skew here.\n";
  return obs.finish();
}
