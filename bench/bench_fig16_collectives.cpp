// Collectives: broadcast and reduction under bank delay.
//
// The cheapest possible demonstration of the paper's thesis: reading one
// word from everywhere costs d·n on a bank-delay machine (CRCW
// intuition says it is free); log-round replication buys it back for
// O(n/p + log n). Reduction mirrors it with fetch-add vs partial sums.
// Sweeps n and reports the crossover constants per machine.

#include <iostream>

#include "algos/collectives.hpp"
#include "algos/vm.hpp"
#include "bench_common.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace dxbsp;
  const util::Cli cli(argc, argv);
  const auto cfg = bench::machine_from_cli(cli);
  const std::uint64_t n_max = cli.get_int("n", 1 << 18);
  const std::uint64_t seed = cli.get_int("seed", 1995);

  bench::Obs obs(cli, "Fig 16 (collectives)",
                "Broadcast and reduction, naive vs contention-aware; "
                "machine = " + cfg.name);

  {
    util::Table t({"n", "naive bcast", "replicated bcast", "naive/repl",
                   "replicas", "read k"});
    for (std::uint64_t n = 1 << 10; n <= n_max; n *= 8) {
      algos::Vm vm_n(cfg);
      (void)algos::broadcast_naive(vm_n, 1, n);
      algos::Vm vm_r(cfg);
      algos::BroadcastStats stats;
      (void)algos::broadcast_replicated(vm_r, 1, n, seed, 4, &stats);
      t.add_row(n, vm_n.cycles(), vm_r.cycles(),
                static_cast<double>(vm_n.cycles()) / vm_r.cycles(),
                stats.copies, stats.read_contention);
    }
    bench::emit(cli, t);
  }
  {
    util::Table t({"n", "naive reduce", "tree reduce", "naive/tree"});
    util::Xoshiro256 rng(seed);
    for (std::uint64_t n = 1 << 10; n <= n_max; n *= 8) {
      std::vector<std::uint64_t> xs(n);
      for (auto& x : xs) x = rng.below(100);
      algos::Vm vm_n(cfg);
      const auto a = algos::reduce_naive(vm_n, xs);
      algos::Vm vm_t(cfg);
      const auto b = algos::reduce_tree(vm_t, xs);
      if (a != b) {
        std::cerr << "reduction mismatch at n = " << n << "\n";
        return 1;
      }
      t.add_row(n, vm_n.cycles(), vm_t.cycles(),
                static_cast<double>(vm_n.cycles()) / vm_t.cycles());
    }
    bench::emit(cli, t);
  }
  std::cout << "Naive collectives cost ~d per element (the single cell's\n"
               "bank serializes); the contention-aware forms cost ~g/p per\n"
               "element plus logarithmic rounds — a factor ~d*p/g.\n";
  return obs.finish();
}
