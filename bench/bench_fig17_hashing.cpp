// Parallel hashing ([KU86] lineage): building and probing a hash table
// with synchronous rounds on the bank-delay machine.
//
// Build rounds shrink geometrically and each round's QRQW charge (the
// max cell contention) stays ~log n / log log n, so construction costs a
// small constant per key. Lookups cost ~1 + alpha probes. The table-
// density sweep shows the classic load-factor tradeoff through the
// memory system's eyes.

#include <iostream>

#include "algos/parallel_hashing.hpp"
#include "algos/vm.hpp"
#include "bench_common.hpp"
#include "workload/patterns.hpp"

int main(int argc, char** argv) {
  using namespace dxbsp;
  const util::Cli cli(argc, argv);
  const auto cfg = bench::machine_from_cli(cli);
  const std::uint64_t n = cli.get_int("n", 1 << 16);
  const std::uint64_t seed = cli.get_int("seed", 1995);

  bench::Obs obs(cli, "Fig 17 (parallel hashing)",
                "Hash table build/lookup vs load factor; n = " +
                    std::to_string(n) + " keys, machine = " + cfg.name);

  const auto keys = workload::distinct_random(n, 1ULL << 40, seed);
  const auto queries = workload::uniform_random(n, 1ULL << 40, seed + 1);

  util::Table t({"slots/keys", "build cycles", "build/key", "rounds",
                 "max round k", "lookup cycles", "lookup/query"});
  for (const double density : {1.2, 1.5, 2.0, 4.0, 8.0}) {
    const auto slots = static_cast<std::uint64_t>(
        density * static_cast<double>(n));
    algos::Vm vm_b(cfg);
    algos::HashBuildStats stats;
    const algos::ParallelHashTable table(vm_b, keys, slots, seed, &stats);
    std::uint64_t max_k = 0;
    for (const auto& r : stats.rounds)
      max_k = std::max(max_k, r.max_probe_contention);

    algos::Vm vm_l(cfg);
    (void)table.lookup(vm_l, queries, 0);

    t.add_row(density, vm_b.cycles(),
              static_cast<double>(vm_b.cycles()) / n, table.rounds_used(),
              max_k, vm_l.cycles(),
              static_cast<double>(vm_l.cycles()) / queries.size());
  }
  bench::emit(cli, t);
  std::cout << "Sparser tables finish in fewer rounds (fewer collisions)\n"
               "but cost memory; per-round contention stays logarithmic\n"
               "at every density — the QRQW charge that makes hashing an\n"
               "efficient shared-memory implementation [KU86] survives the\n"
               "bank delay intact.\n";
  return obs.finish();
}
