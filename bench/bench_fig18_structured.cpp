// Structured kernels vs bank mappings (§4 meets [CS86]/[Soh93]):
// transpose, Walsh–Hadamard and a 5-point stencil under the interleaved
// and hashed mappings.
//
// All three kernels are QRQW-contention-free — every cell is touched a
// bounded number of times — so their whole cost story is the module
// map. The measured outcome is a *finding about expansion*: on a
// bank-rich machine the strided bursts these kernels emit (a column's
// worth of writes to one bank, a stage's worth of stride-2^s pairs)
// drain behind the issue pipeline, so interleaving costs percents, not
// the 50x of a whole-stream stride collision (bench_a2). Hashing removes
// even that residue. Machines with x near d/g (see --machine-spec
// sweeps) lose this protection and the same kernels serialize.

#include <iostream>

#include "algos/kernels.hpp"
#include "algos/vm.hpp"
#include "bench_common.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace dxbsp;
  const util::Cli cli(argc, argv);
  const auto cfg = bench::machine_from_cli(cli);
  const std::uint64_t seed = cli.get_int("seed", 1995);

  bench::Obs obs(cli, "Fig 18 (structured kernels)",
                "Transpose / Walsh-Hadamard / stencil under interleaved vs "
                "hashed mappings; machine = " + cfg.name +
                    " (" + std::to_string(cfg.banks()) + " banks)");

  auto vm_for = [&](bool hashed) {
    std::shared_ptr<const mem::BankMapping> mapping;
    if (hashed) {
      util::Xoshiro256 rng(util::substream(seed, 120));
      mapping = std::make_shared<mem::HashedMapping>(
          cfg.banks(), mem::HashDegree::kCubic, rng);
    }
    return algos::Vm(cfg, mapping);
  };

  util::Table t({"kernel", "interleaved", "hashed", "interleaved/hashed"});

  // Transpose with rows equal to the bank count: worst-case alignment.
  {
    const std::uint64_t rows = cfg.banks(), cols = 512;
    std::vector<std::uint64_t> cycles(2);
    for (int hashed = 0; hashed < 2; ++hashed) {
      auto vm = vm_for(hashed != 0);
      auto a = vm.make_array<double>(rows * cols);
      auto b = vm.make_array<double>(rows * cols);
      util::Xoshiro256 rng(seed);
      for (auto& v : a.data) v = rng.uniform();
      algos::transpose(vm, a, b, rows, cols);
      if (b.data != algos::reference_transpose(a.data, rows, cols)) {
        std::cerr << "transpose validation failed\n";
        return 1;
      }
      cycles[hashed] = vm.cycles();
    }
    t.add_row("transpose (rows = banks)", cycles[0], cycles[1],
              static_cast<double>(cycles[0]) / cycles[1]);
  }

  // Walsh–Hadamard over 2^17 elements: hits every power-of-two stride.
  {
    const std::uint64_t n = 1 << 17;
    std::vector<std::uint64_t> cycles(2);
    for (int hashed = 0; hashed < 2; ++hashed) {
      auto vm = vm_for(hashed != 0);
      auto data = vm.make_array<double>(n);
      util::Xoshiro256 rng(seed + 1);
      std::vector<double> input(n);
      for (auto& v : input) v = rng.uniform();
      data.data = input;
      algos::walsh_hadamard(vm, data);
      const auto expect = algos::reference_walsh_hadamard(input);
      for (std::uint64_t i = 0; i < n; i += n / 13 + 1) {
        if (std::abs(data.data[i] - expect[i]) > 1e-6) {
          std::cerr << "wht validation failed\n";
          return 1;
        }
      }
      cycles[hashed] = vm.cycles();
    }
    t.add_row("walsh-hadamard 2^17", cycles[0], cycles[1],
              static_cast<double>(cycles[0]) / cycles[1]);
  }

  // Stencil on a grid whose width equals the bank count.
  {
    const std::uint64_t w = cfg.banks(), h = 512;
    std::vector<std::uint64_t> cycles(2);
    for (int hashed = 0; hashed < 2; ++hashed) {
      auto vm = vm_for(hashed != 0);
      auto in = vm.make_array<double>(w * h);
      auto out = vm.make_array<double>(w * h);
      util::Xoshiro256 rng(seed + 2);
      for (auto& v : in.data) v = rng.uniform();
      algos::stencil5(vm, in, out, w, h);
      const auto expect = algos::reference_stencil5(in.data, w, h);
      for (std::uint64_t i = 0; i < w * h; i += (w * h) / 11 + 1) {
        if (std::abs(out.data[i] - expect[i]) > 1e-9) {
          std::cerr << "stencil validation failed\n";
          return 1;
        }
      }
      cycles[hashed] = vm.cycles();
    }
    t.add_row("stencil5 (w = banks)", cycles[0], cycles[1],
              static_cast<double>(cycles[0]) / cycles[1]);
  }

  bench::emit(cli, t);
  std::cout << "Interleaving pays only for *burst* serialization here (each\n"
               "transpose column is one bank's queue), a 0-20% tax on a\n"
               "bank-rich machine — unlike the 50x whole-stream stride\n"
               "collapse of bench_a2. That contrast is the expansion story:\n"
               "enough banks turn structured conflicts from catastrophic\n"
               "into marginal, and hashing mops up the rest.\n";
  return obs.finish();
}
