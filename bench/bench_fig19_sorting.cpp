// Sorting suite (NAS-IS spirit): every sorting-adjacent route in the
// library on one machine, across key widths.
//
// The paper leans on [ZB91]'s radix sort (the then-fastest NAS IS
// implementation) as its EREW workhorse. This bench lines up all the
// library's routes to a sorted order or permutation: radix sort at its
// best digit width, merge sort (comparison-based EREW), and — for the
// "generate a random order" use case the paper's Figure 11 studies —
// the QRQW dart thrower. Key width matters: radix pays per bit, merge
// pays per comparison level, darts pay neither.

#include <algorithm>
#include <iostream>

#include "algos/merge.hpp"
#include "algos/radix_sort.hpp"
#include "algos/random_permutation.hpp"
#include "algos/vm.hpp"
#include "bench_common.hpp"
#include "workload/patterns.hpp"

int main(int argc, char** argv) {
  using namespace dxbsp;
  const util::Cli cli(argc, argv);
  const auto cfg = bench::machine_from_cli(cli);
  const std::uint64_t n = cli.get_int("n", 1 << 15);
  const std::uint64_t seed = cli.get_int("seed", 1995);

  bench::Obs obs(cli, "Fig 19 (sorting suite)",
                "Radix vs merge sort across key widths, plus the dart-throw "
                "permutation; n = " + std::to_string(n) + ", machine = " +
                    cfg.name);

  util::Table t({"key bits", "radix cycles", "radix cyc/elt",
                 "merge cycles", "merge cyc/elt", "merge/radix"});
  for (const unsigned bits : {8u, 16u, 24u, 32u, 48u, 62u}) {
    const auto keys = workload::uniform_random(n, 1ULL << bits, seed + bits);
    algos::Vm vm_r(cfg);
    const auto rs = algos::radix_sort(vm_r, keys, bits);
    algos::Vm vm_m(cfg);
    const auto ms = algos::merge_sort(vm_m, keys);
    if (rs.sorted_keys != ms) {
      std::cerr << "sort mismatch at " << bits << " bits\n";
      return 1;
    }
    t.add_row(bits, vm_r.cycles(),
              static_cast<double>(vm_r.cycles()) / n, vm_m.cycles(),
              static_cast<double>(vm_m.cycles()) / n,
              static_cast<double>(vm_m.cycles()) / vm_r.cycles());
  }
  bench::emit(cli, t);

  algos::Vm vm_q(cfg);
  (void)algos::random_permutation_qrqw(vm_q, n, seed);
  std::cout << "for reference, generating a random *order* directly (the\n"
               "Figure-11 use case) costs "
            << vm_q.cycles() << " cycles ("
            << static_cast<double>(vm_q.cycles()) / n
            << "/elt) via QRQW dart throwing — cheaper than any sort,\n"
               "because ordering random keys was never required.\n";
  std::cout << "\nRadix cost grows stepwise with key width (one counting\n"
               "pass per digit); merge sort is width-oblivious but pays\n"
               "log2(n) full passes. The crossover sits where\n"
               "bits/8 ~ log2(n) passes of roughly equal cost.\n";
  return obs.finish();
}
