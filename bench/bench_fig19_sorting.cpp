// Sorting suite (NAS-IS spirit): every sorting-adjacent route in the
// library on one machine, across key widths.
//
// The paper leans on [ZB91]'s radix sort (the then-fastest NAS IS
// implementation) as its EREW workhorse. This bench lines up all the
// library's routes to a sorted order or permutation: radix sort at its
// best digit width, merge sort (comparison-based EREW), and — for the
// "generate a random order" use case the paper's Figure 11 studies —
// the QRQW dart thrower. Key width matters: radix pays per bit, merge
// pays per comparison level, darts pay neither.

// --stream adds an out-of-core bucket sort on the streaming subsystem
// (docs/streaming.md): keys are generated counter-style in slabs, range-
// partitioned by their top bits, staged in a budget-bound SlabPool that
// spills whole partitions to a SpillStore under back-pressure, then each
// partition (ascending = ascending key range) is restored and radix
// sorted. Sortedness, partition boundaries, element count and a
// content hash are all verified — the sort is the proof that the spill
// tier moves bytes faithfully, not just that it doesn't crash.

#include <algorithm>
#include <iostream>
#include <optional>

#include "algos/merge.hpp"
#include "algos/radix_sort.hpp"
#include "algos/random_permutation.hpp"
#include "algos/vm.hpp"
#include "bench_common.hpp"
#include "stream/slab_pool.hpp"
#include "stream/spill_store.hpp"
#include "util/rng.hpp"
#include "workload/patterns.hpp"

namespace {

// Out-of-core bucket sort; returns the process exit code.
int stream_sort(const dxbsp::util::Cli& cli, const dxbsp::sim::MachineConfig& cfg,
                std::uint64_t n, std::uint64_t seed, dxbsp::bench::Obs& obs) {
  using namespace dxbsp;
  constexpr unsigned kBits = 32;  // key width; partitions split the top bits
  const std::uint64_t space = std::uint64_t{1} << kBits;
  const std::uint64_t partitions = cli.get_uint("partitions", 16);
  const std::uint64_t slab_bytes =
      cli.get_uint("slab-bytes", std::uint64_t{64} << 10);
  const std::uint64_t budget = cli.get_uint("mem-budget", 0);
  const std::string spill_dir = cli.get("spill-dir", "");
  if (partitions == 0 || slab_bytes < 8 || slab_bytes % 8 != 0)
    raise(ErrorCode::kConfig, "--partitions >= 1 and --slab-bytes a positive "
                              "multiple of 8 required");
  const std::uint64_t slab_elems = slab_bytes / 8;

  stream::SlabPool pool(budget == 0 ? stream::kUnlimitedBudget : budget,
                        slab_bytes);
  std::optional<stream::SpillStore> store;
  if (!spill_dir.empty()) {
    stream::SpillOptions opt;
    opt.dir = spill_dir;
    opt.stream_id = seed ^ (n * 1099511628211ULL);
    store.emplace(std::move(opt));
  }

  // Ingest: generate counter-style, range-partition by top bits into
  // per-partition staging buffers (the TLA model's PARTITIONS*THREADS
  // working set — bounded by partitions * slab_bytes and outside the
  // pool's budget), admit full buffers as slabs, evict under pressure.
  std::vector<std::vector<std::uint64_t>> stage(partitions);
  std::vector<std::uint64_t> next_chunk(partitions, 0);
  std::uint64_t slab_seq = 0;
  std::uint64_t ingest_hash = 0;
  const auto flush_stage = [&](std::uint64_t p) {
    pool.admit(slab_seq++, p, std::move(stage[p]));
    stage[p] = {};
    while (pool.over_budget()) {
      if (!store.has_value())
        raise(ErrorCode::kConfig,
              "--mem-budget exceeded but no --spill-dir configured");
      const auto victim = pool.victim_partition();
      if (!victim) break;
      for (const std::size_t h : pool.resident_of(*victim)) {
        const std::uint64_t chunk = next_chunk[*victim]++;
        store->write(*victim, chunk, pool.slabs()[h].data);
        pool.mark_spilled(h, chunk);
      }
    }
  };
  for (std::uint64_t begin = 0; begin < n; begin += slab_elems) {
    const std::uint64_t count = std::min(slab_elems, n - begin);
    const auto keys =
        workload::stream_slab(seed, begin, count, space, /*hot_every=*/0);
    for (const std::uint64_t k : keys) {
      ingest_hash += util::mix64(k);
      const std::uint64_t p =
          static_cast<std::uint64_t>((static_cast<unsigned __int128>(k) *
                                      partitions) >> kBits);
      stage[p].push_back(k);
      if (stage[p].size() >= slab_elems) flush_stage(p);
    }
  }
  for (std::uint64_t p = 0; p < partitions; ++p)
    if (!stage[p].empty()) flush_stage(p);

  // Drain ascending: partition p holds exactly the keys in
  // [p*space/P, (p+1)*space/P) — restoring and sorting them in id order
  // yields the globally sorted stream without ever holding it whole.
  std::uint64_t total_cycles = 0;
  std::uint64_t total_elems = 0;
  std::uint64_t drain_hash = 0;
  std::uint64_t prev_max = 0;
  bool have_prev = false;
  for (std::uint64_t p = 0; p < partitions; ++p) {
    std::vector<std::uint64_t> bucket;
    for (std::size_t h = 0; h < pool.slabs().size(); ++h) {
      if (pool.slabs()[h].partition != p) continue;
      if (pool.slabs()[h].spilled) {
        const std::uint64_t chunk = pool.slabs()[h].chunk;
        auto restored = store->read(p, chunk);
        std::vector<std::uint64_t> data = std::move(restored).value();
        pool.charge_restored(data.size() * 8);
        bucket.insert(bucket.end(), data.begin(), data.end());
        pool.release_restored(data.size() * 8);
        store->remove(p, chunk);
      } else if (!pool.slabs()[h].data.empty()) {
        const auto data = pool.take(h);
        bucket.insert(bucket.end(), data.begin(), data.end());
      }
    }
    if (bucket.empty()) continue;
    algos::Vm vm(cfg);
    const auto rs = algos::radix_sort(vm, bucket, kBits);
    total_cycles += vm.cycles();
    for (std::size_t i = 0; i < rs.sorted_keys.size(); ++i) {
      if (i > 0 && rs.sorted_keys[i] < rs.sorted_keys[i - 1]) {
        std::cerr << "STREAM SORT FAILED: partition " << p
                  << " not sorted\n";
        return obs.finish(exit_code(ErrorCode::kInternal));
      }
      drain_hash += util::mix64(rs.sorted_keys[i]);
    }
    const std::uint64_t lo = rs.sorted_keys.front();
    if (have_prev && lo < prev_max) {
      std::cerr << "STREAM SORT FAILED: partition " << p
                << " overlaps its predecessor\n";
      return obs.finish(exit_code(ErrorCode::kInternal));
    }
    prev_max = rs.sorted_keys.back();
    have_prev = true;
    total_elems += rs.sorted_keys.size();
  }
  if (total_elems != n || drain_hash != ingest_hash) {
    std::cerr << "STREAM SORT FAILED: drained " << total_elems << "/" << n
              << " elements, hash " << (drain_hash == ingest_hash ? "ok"
                                                                  : "MISMATCH")
              << "\n";
    return obs.finish(exit_code(ErrorCode::kInternal));
  }
  std::cout << "STREAM SORT OK n=" << total_elems
            << " cycles=" << total_cycles << " hash=" << drain_hash
            << " peak_bytes=" << pool.peak_bytes()
            << " spilled_bytes=" << pool.spilled_bytes() << "\n";
  if (budget != 0 && pool.peak_bytes() > budget + slab_bytes)
    raise(ErrorCode::kInternal, "MemoryInvariant violated in stream sort");
  return obs.finish(0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dxbsp;
  const util::Cli cli(argc, argv);
  const auto cfg = bench::machine_from_cli(cli);
  const std::uint64_t n = cli.get_int("n", 1 << 15);
  const std::uint64_t seed = cli.get_int("seed", 1995);

  bench::Obs obs(cli, "Fig 19 (sorting suite)",
                "Radix vs merge sort across key widths, plus the dart-throw "
                "permutation; n = " + std::to_string(n) + ", machine = " +
                    cfg.name);

  if (cli.has("stream"))
    return bench::guarded([&] { return stream_sort(cli, cfg, n, seed, obs); });

  util::Table t({"key bits", "radix cycles", "radix cyc/elt",
                 "merge cycles", "merge cyc/elt", "merge/radix"});
  for (const unsigned bits : {8u, 16u, 24u, 32u, 48u, 62u}) {
    const auto keys = workload::uniform_random(n, 1ULL << bits, seed + bits);
    algos::Vm vm_r(cfg);
    const auto rs = algos::radix_sort(vm_r, keys, bits);
    algos::Vm vm_m(cfg);
    const auto ms = algos::merge_sort(vm_m, keys);
    if (rs.sorted_keys != ms) {
      std::cerr << "sort mismatch at " << bits << " bits\n";
      return 1;
    }
    t.add_row(bits, vm_r.cycles(),
              static_cast<double>(vm_r.cycles()) / n, vm_m.cycles(),
              static_cast<double>(vm_m.cycles()) / n,
              static_cast<double>(vm_m.cycles()) / vm_r.cycles());
  }
  bench::emit(cli, t);

  algos::Vm vm_q(cfg);
  (void)algos::random_permutation_qrqw(vm_q, n, seed);
  std::cout << "for reference, generating a random *order* directly (the\n"
               "Figure-11 use case) costs "
            << vm_q.cycles() << " cycles ("
            << static_cast<double>(vm_q.cycles()) / n
            << "/elt) via QRQW dart throwing — cheaper than any sort,\n"
               "because ordering random keys was never required.\n";
  std::cout << "\nRadix cost grows stepwise with key width (one counting\n"
               "pass per digit); merge sort is width-oblivious but pays\n"
               "log2(n) full passes. The crossover sits where\n"
               "bits/8 ~ log2(n) passes of roughly equal cost.\n";
  return obs.finish();
}
