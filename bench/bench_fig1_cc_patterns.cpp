// Figure 1: predicted vs measured time for memory access patterns
// extracted from a trace of the connected-components algorithm, as a
// function of the pattern's maximum contention.
//
// Methodology mirrors the paper: run the CC implementation over graphs
// spanning the skew spectrum (star forests with decreasing star counts
// drive hub contention up), record the label-gather address traces of
// each iteration, then replay every trace as a scatter on the J90-like
// machine and compare against the BSP and (d,x)-BSP predictions.

#include <algorithm>
#include <iostream>

#include "algos/connected_components.hpp"
#include "algos/vm.hpp"
#include "bench_common.hpp"
#include "core/predictor.hpp"
#include "mem/contention.hpp"
#include "sim/machine.hpp"
#include "stats/compare.hpp"
#include "workload/graphs.hpp"

int main(int argc, char** argv) {
  using namespace dxbsp;
  const util::Cli cli(argc, argv);
  const auto cfg = bench::machine_from_cli(cli);
  const std::uint64_t n = cli.get_int("n", 1 << 15);
  const std::uint64_t seed = cli.get_int("seed", 1995);

  bench::Obs obs(cli, "Fig 1 (CC access patterns)",
                "Measured vs predicted scatter time for access patterns "
                "extracted from connected-components traces; machine = " +
                    cfg.name);

  // Collect gather traces from CC runs over increasingly skewed graphs.
  struct Pattern {
    std::vector<std::uint64_t> addrs;
    std::uint64_t contention;
  };
  std::vector<Pattern> patterns;
  for (const std::uint64_t stars : {std::uint64_t{4096}, std::uint64_t{256},
                                    std::uint64_t{16}, std::uint64_t{2},
                                    std::uint64_t{1}}) {
    const auto g = stars == 1 ? workload::star(n)
                              : workload::star_forest(n, stars, seed);
    algos::Vm vm(cfg);
    algos::CcStats stats;
    (void)algos::connected_components(vm, g, &stats, {.keep_traces = true});
    for (auto& trace : stats.gather_traces) {
      Pattern p;
      p.contention = mem::analyze_locations(trace).max_contention;
      p.addrs = std::move(trace);
      patterns.push_back(std::move(p));
    }
  }
  std::sort(patterns.begin(), patterns.end(),
            [](const Pattern& a, const Pattern& b) {
              return a.contention < b.contention;
            });

  sim::Machine machine(cfg);
  obs.attach(machine);
  stats::Comparison cmp("contention", "CC traces");
  util::Table t({"contention k", "requests", "measured", "dxbsp", "bsp",
                 "dxbsp/meas", "bsp/meas"});
  std::uint64_t last_k = ~0ULL;
  for (const auto& p : patterns) {
    if (p.contention == last_k) continue;  // dedupe equal-k traces
    last_k = p.contention;
    const auto meas = machine.scatter(p.addrs);
    const auto pred = core::predict_scatter(p.addrs, cfg, &machine.mapping());
    cmp.add(static_cast<double>(p.contention),
            static_cast<double>(meas.cycles),
            static_cast<double>(pred.dxbsp_mapped),
            static_cast<double>(pred.bsp));
    t.add_row(p.contention, p.addrs.size(), meas.cycles, pred.dxbsp_mapped,
              pred.bsp, static_cast<double>(pred.dxbsp_mapped) / meas.cycles,
              static_cast<double>(pred.bsp) / meas.cycles);
  }
  bench::emit(cli, t);
  std::cout << "dxbsp rms rel err: " << cmp.dxbsp_rms_error()
            << "   bsp rms rel err: " << cmp.bsp_rms_error()
            << "   bsp max rel err: " << cmp.bsp_max_error() << "\n";
  return obs.finish();
}
