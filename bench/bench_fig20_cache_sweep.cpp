// Fig 20 (repo extension): the C x X x D trade-off surface of the
// per-processor cache tier (src/cache/, docs/cache.md).
//
// The paper's design question was "how many banks should a machine with
// bank delay d provide?" — expansion x was the only lever against bank
// contention. A cache tier of C lines in front of the banks adds a
// second lever: hits complete locally and never enter the bank/network
// pipeline, so growing C thins the very traffic x exists to spread.
// This bench sweeps C x x x d over four access patterns (uniform,
// hot-set, Zipf, streaming scan) and reports, per point, which memory
// resource the makespan-critical request spent its time in — the
// attribution breakdown's bank_service vs wire latency vs cache_hit
// (docs/observability.md §attribution). For cacheable working sets the
// binding term flips from bank_service at C = 0 to cache_hit once C
// covers the working set: past that point more banks buy nothing, the
// machine is locality-bound, not contention-bound.
//
// Runs under SweepRunner (keys encode the grid point; records hold the
// full telemetry) so --checkpoint/--resume/--threads work and a resumed
// run prints byte-identical output.

#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "obs/drift.hpp"
#include "sim/machine.hpp"
#include "workload/patterns.hpp"

namespace {

using namespace dxbsp;

constexpr const char* kPatterns[] = {"uniform", "hotset", "zipf", "scan"};
constexpr std::uint64_t kDelays[] = {4, 14};
constexpr std::uint64_t kExpansions[] = {4, 16};
constexpr std::uint64_t kCapacities[] = {0, 16, 64, 512};

std::vector<std::uint64_t> make_pattern(std::size_t pat, std::uint64_t n,
                                        std::uint64_t seed) {
  switch (pat) {
    case 0: return workload::uniform_random(n, 1ULL << 30, seed);
    case 1: return workload::cyclic(n, 512);  // 64-line hot working set
    case 2: return workload::zipf(n, 1ULL << 20, 1.1, seed);
    default: return workload::strided(n, 1);  // streaming scan
  }
}

/// Grid-point key: dense mixed radix so resume files are stable as long
/// as the grid tables above are.
std::uint64_t encode(std::size_t pat, std::size_t di, std::size_t xi,
                     std::size_t ci) {
  return ((pat * 2 + di) * 2 + xi) * 4 + ci;
}

/// The memory-side term the critical request is bound by: the largest of
/// bank service (incl. failover spares), wire latency, and local cache
/// service. Ties break toward the slower resource so C = 0 on an
/// uncontended machine reads "latency", never "cache_hit".
const char* binding_term(const obs::CostBreakdown& b) {
  const std::uint64_t bank = b.bank_service + b.failover;
  if (bank >= b.latency && bank >= b.cache_hit) return "bank_service";
  if (b.latency >= b.cache_hit) return "latency";
  return "cache_hit";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dxbsp;
  return bench::guarded([&] {
    const util::Cli cli(argc, argv);
    const auto base = bench::machine_from_cli(cli);
    const std::uint64_t n = cli.get_uint("n", 1 << 15);
    const std::uint64_t seed = cli.get_uint("seed", 1995);

    bench::Obs obs(cli, "Fig 20 / cache tier",
                   "Binding resource across C x x x d; n = " +
                       std::to_string(n) + ", base machine = " + base.name);

    std::vector<std::uint64_t> keys;
    for (std::size_t pat = 0; pat < 4; ++pat)
      for (std::size_t di = 0; di < 2; ++di)
        for (std::size_t xi = 0; xi < 2; ++xi)
          for (std::size_t ci = 0; ci < 4; ++ci)
            keys.push_back(encode(pat, di, xi, ci));

    const auto config_at = [&](std::uint64_t key) {
      sim::MachineConfig cfg = base;
      cfg.bank_delay = kDelays[(key / 8) % 2];
      cfg.expansion = kExpansions[(key / 4) % 2];
      cfg.cache.capacity = kCapacities[key % 4];
      cfg.cache.line_words = 8;
      cfg.cache.assoc = 8;
      // Write-back: dirty-eviction traffic is modelled, and the
      // hit-ratio-corrected predictor's in-band claim is write-back
      // scoped (docs/cache.md §prediction).
      cfg.cache.write = cfg.cache.enabled() ? cache::WritePolicy::kBack
                                            : cfg.cache.write;
      cfg.validate();
      return cfg;
    };

    svc::WorkerContext worker;
    auto opt = bench::sweep_options_from_cli(cli);
    const std::uint64_t id = bench::apply_sharding(
        worker, cli,
        resilience::sweep_id("fig20_cache",
                             {n, seed, base.processors, base.gap,
                              base.latency}),
        keys, opt, obs);
    resilience::SweepRunner runner(id, std::move(opt));
    worker.begin(runner.token());
    const auto report = runner.run(keys, [&](std::uint64_t key) {
      const auto cfg = config_at(key);
      const auto addrs = make_pattern((key / 16) % 4, n, seed);
      sim::Machine machine(cfg);
      machine.set_cancel(&runner.token());
      obs.attach(machine, key);
      resilience::SnapshotRecord rec;
      rec.key = key;
      rec.rng_state = seed;
      rec.result = machine.scatter(addrs);
      return rec;
    });
    if (worker.active())
      return obs.finish(worker.finish(report, obs.info()));
    if (!report.ok()) return obs.finish(bench::finish_sweep(report));

    util::Table t({"pattern", "d", "x", "C", "cycles", "hit%", "bank_svc",
                   "latency", "cache_hit", "binds", "predicted", "rel err"});
    std::uint64_t crossovers = 0;
    for (std::size_t pat = 0; pat < 4; ++pat) {
      for (std::size_t di = 0; di < 2; ++di) {
        for (std::size_t xi = 0; xi < 2; ++xi) {
          const char* first_binds = nullptr;
          const char* last_binds = nullptr;
          std::uint64_t flip_c = 0;
          for (std::size_t ci = 0; ci < 4; ++ci) {
            const auto& rec = runner.record(encode(pat, di, xi, ci));
            const auto& meas = rec.result;
            const auto cfg = config_at(rec.key);
            const obs::CacheObserved co{meas.cache_hits, meas.cache_misses,
                                        meas.max_proc_miss};
            const double predicted = obs::drift_prediction(
                cfg, nullptr, n, meas.max_proc_requests, meas.max_bank_load,
                meas.max_location_contention, &co);
            const double rel_err =
                predicted > 0.0
                    ? static_cast<double>(meas.cycles) / predicted - 1.0
                    : 0.0;
            const char* binds = binding_term(meas.breakdown);
            const double hit_pct =
                meas.n == 0 ? 0.0
                            : 100.0 * static_cast<double>(meas.cache_hits) /
                                  static_cast<double>(meas.n);
            t.add_row(kPatterns[pat], cfg.bank_delay, cfg.expansion,
                      cfg.cache.capacity, meas.cycles, hit_pct,
                      meas.breakdown.bank_service + meas.breakdown.failover,
                      meas.breakdown.latency, meas.breakdown.cache_hit,
                      binds, predicted, rel_err);
            if (ci == 0) first_binds = binds;
            if (std::string(binds) == "cache_hit" && flip_c == 0)
              flip_c = cfg.cache.capacity;
            last_binds = binds;
          }
          if (std::string(first_binds) == "bank_service" &&
              std::string(last_binds) == "cache_hit") {
            ++crossovers;
            std::cout << "crossover: pattern=" << kPatterns[pat]
                      << " d=" << kDelays[di] << " x=" << kExpansions[xi]
                      << " binding flips bank_service -> cache_hit at C="
                      << flip_c << "\n";
          }
        }
      }
    }
    std::cout << "\n";
    bench::emit(cli, t);
    std::cout << "crossovers: " << crossovers << " of 16 series\n"
              << "reading: past the flip the machine is locality-bound — "
                 "more banks (x) buy nothing,\nonly more cache (C) or "
                 "better placement does (docs/cache.md).\n";
    return obs.finish();
  });
}
