// Model exposition figure: the (d,x)-BSP superstep cost surface.
// For a fixed request volume, sweeps the bank load h_bank and shows the
// two regimes (processor-bound plateau, bank-bound ramp), for both the
// C90-like (d=6) and J90-like (d=14) delays, against the bank-blind BSP
// line. Pure model, no simulation.

#include <iostream>

#include "bench_common.hpp"
#include "core/cost.hpp"
#include "core/params.hpp"

int main(int argc, char** argv) {
  using namespace dxbsp;
  const util::Cli cli(argc, argv);
  const std::uint64_t n = cli.get_int("n", 1 << 20);
  bench::Obs obs(cli, "Fig 2 (model)",
                "Superstep cost vs max bank load h_bank, n = " +
                    std::to_string(n) + " requests, p = 8, g = 1");

  const core::DxBspParams c90{8, 1, 24, 6, 64};
  const core::DxBspParams j90{8, 1, 30, 14, 32};
  const std::uint64_t h_proc = n / 8;

  util::Table t({"h_bank", "T dxbsp d=6", "T dxbsp d=14", "T bsp",
                 "bank-bound d=6", "bank-bound d=14"});
  for (std::uint64_t h_bank = 64; h_bank <= n; h_bank *= 4) {
    const core::StepProfile s{h_proc, h_bank, n};
    t.add_row(h_bank, core::dxbsp_step_time(c90, s),
              core::dxbsp_step_time(j90, s), core::bsp_step_time(j90, s),
              core::bank_bound(c90, s) ? "yes" : "no",
              core::bank_bound(j90, s) ? "yes" : "no");
  }
  bench::emit(cli, t);

  std::cout << "knee (contention where the bank term starts to bind):\n"
            << "  d=6:  k = " << core::contention_knee(c90, n) << "\n"
            << "  d=14: k = " << core::contention_knee(j90, n) << "\n";
  return obs.finish();
}
