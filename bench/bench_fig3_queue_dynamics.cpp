// Queue dynamics inside the memory system (mechanism exposition).
//
// Per-request timing from the simulator shows *why* the (d,x)-BSP's
// d·h_bank term is the right charge: as contention k grows, the hot
// bank's queue-wait distribution develops a linear tail — the p99 wait
// approaches d·k while the median stays near zero (most requests still
// go to cold banks). The aggregate makespan is governed by that tail,
// which bank-blind models cannot see.

#include <iostream>

#include "bench_common.hpp"
#include "sim/machine.hpp"
#include "util/stats.hpp"
#include "workload/patterns.hpp"

int main(int argc, char** argv) {
  using namespace dxbsp;
  const util::Cli cli(argc, argv);
  const auto cfg = bench::machine_from_cli(cli);
  const std::uint64_t n = cli.get_int("n", 1 << 18);
  const std::uint64_t seed = cli.get_int("seed", 1995);

  bench::Obs obs(cli, "Fig 3 (queue dynamics)",
                "Per-request bank queue waits vs contention; n = " +
                    std::to_string(n) + ", machine = " + cfg.name);

  sim::Machine machine(cfg);
  obs.attach(machine);
  util::Table t({"k", "mean wait", "p50", "p95", "p99", "max wait",
                 "d*k", "makespan"});
  for (std::uint64_t k = 1; k <= n; k *= 16) {
    const auto addrs = workload::k_hot(n, k, 1ULL << 30, seed + k);
    sim::Machine::RequestTiming timing;
    const auto res = machine.scatter_detailed(addrs, timing);

    std::vector<double> waits(addrs.size());
    for (std::size_t i = 0; i < addrs.size(); ++i)
      waits[i] = static_cast<double>(timing.wait(i));
    const auto s = util::summarize(waits);
    t.add_row(k, s.mean, util::quantile(waits, 0.50),
              util::quantile(waits, 0.95), util::quantile(waits, 0.99),
              s.max, cfg.bank_delay * k, res.cycles);
  }
  bench::emit(cli, t);
  std::cout << "The max wait tracks d*k (the hot bank drains one request\n"
               "per d cycles) while the median stays near zero: the\n"
               "contended tail, not the typical request, sets the time.\n";
  return obs.finish();
}
