// Experiment 1 (Fig 4-style, and the backbone of Fig 1): scatter time
// versus single-location contention k.
//
// n requests, one hot location receiving k of them, the rest distinct
// random. Measured on the cycle-level simulator; predicted by the
// (d,x)-BSP (tracks the knee and the linear ramp) and by BSP (stays
// flat, wrong by up to d·k). Matches the paper: predictions are accurate
// across the whole contention range on both the J90- and C90-like
// machines.
//
// Runs under SweepRunner (keys are the contention values k; predictions
// ride in the record's aux words) so --checkpoint/--resume/--deadline
// work and a resumed run prints byte-identical output.

#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "core/predictor.hpp"
#include "sim/machine.hpp"
#include "stats/compare.hpp"
#include "workload/patterns.hpp"

int main(int argc, char** argv) {
  using namespace dxbsp;
  return bench::guarded([&] {
    const util::Cli cli(argc, argv);
    const auto cfg = bench::machine_from_cli(cli);
    const std::uint64_t n = cli.get_uint("n", 1 << 20);
    const std::uint64_t seed = cli.get_uint("seed", 1995);

    bench::Obs obs(cli, "Fig 4 / Experiment 1",
                  "Scatter time vs contention k; n = " + std::to_string(n) +
                      ", machine = " + cfg.name);

    std::vector<std::uint64_t> keys;
    for (std::uint64_t k = 1; k <= n; k *= 4) keys.push_back(k);

    svc::WorkerContext worker;
    auto opt = bench::sweep_options_from_cli(cli);
    const std::uint64_t id = bench::apply_sharding(
        worker, cli,
        resilience::sweep_id("fig4_contention",
                             {n, seed, cfg.processors, cfg.bank_delay,
                              cfg.expansion}),
        keys, opt, obs);
    resilience::SweepRunner runner(id, std::move(opt));
    worker.begin(runner.token());
    const auto report = runner.run(keys, [&](std::uint64_t k) {
      const auto addrs = workload::k_hot(n, k, 1ULL << 30, seed + k);
      sim::Machine machine(cfg);
      machine.set_cancel(&runner.token());
      obs.attach(machine, k);
      const auto pred = core::predict_scatter(addrs, cfg, &machine.mapping());
      resilience::SnapshotRecord rec;
      rec.key = k;
      rec.rng_state = seed + k;
      rec.result = machine.scatter(addrs);
      rec.aux[0] = pred.dxbsp_mapped;
      rec.aux[1] = pred.bsp;
      return rec;
    });
    if (worker.active())
      return obs.finish(worker.finish(report, obs.info()));
    if (!report.ok()) return obs.finish(bench::finish_sweep(report));

    stats::Comparison cmp("contention k", "measured vs predicted (cycles)");
    util::Table t({"k", "measured", "dxbsp", "bsp", "cyc/elt", "dxbsp/meas",
                   "bsp/meas"});
    for (const std::uint64_t k : keys) {
      const auto& rec = runner.record(k);
      const auto& meas = rec.result;
      const std::uint64_t dxbsp_mapped = rec.aux[0];
      const std::uint64_t bsp = rec.aux[1];
      cmp.add(static_cast<double>(k), static_cast<double>(meas.cycles),
              static_cast<double>(dxbsp_mapped), static_cast<double>(bsp));
      t.add_row(k, meas.cycles, dxbsp_mapped, bsp,
                meas.cycles_per_element(),
                static_cast<double>(dxbsp_mapped) / meas.cycles,
                static_cast<double>(bsp) / meas.cycles);
    }
    bench::emit(cli, t);
    std::cout << "dxbsp rms rel err: " << cmp.dxbsp_rms_error()
              << "   bsp rms rel err: " << cmp.bsp_rms_error()
              << "   bsp max rel err: " << cmp.bsp_max_error() << "\n";
    return obs.finish();
  });
}
