// Experiment 1 (Fig 4-style, and the backbone of Fig 1): scatter time
// versus single-location contention k.
//
// n requests, one hot location receiving k of them, the rest distinct
// random. Measured on the cycle-level simulator; predicted by the
// (d,x)-BSP (tracks the knee and the linear ramp) and by BSP (stays
// flat, wrong by up to d·k). Matches the paper: predictions are accurate
// across the whole contention range on both the J90- and C90-like
// machines.

#include <iostream>

#include "bench_common.hpp"
#include "core/predictor.hpp"
#include "sim/machine.hpp"
#include "stats/compare.hpp"
#include "workload/patterns.hpp"

int main(int argc, char** argv) {
  using namespace dxbsp;
  const util::Cli cli(argc, argv);
  const auto cfg = bench::machine_from_cli(cli);
  const std::uint64_t n = cli.get_int("n", 1 << 20);
  const std::uint64_t seed = cli.get_int("seed", 1995);

  bench::banner("Fig 4 / Experiment 1",
                "Scatter time vs contention k; n = " + std::to_string(n) +
                    ", machine = " + cfg.name);

  sim::Machine machine(cfg);
  stats::Comparison cmp("contention k", "measured vs predicted (cycles)");
  util::Table t({"k", "measured", "dxbsp", "bsp", "cyc/elt", "dxbsp/meas",
                 "bsp/meas"});
  for (std::uint64_t k = 1; k <= n; k *= 4) {
    const auto addrs = workload::k_hot(n, k, 1ULL << 30, seed + k);
    const auto meas = machine.scatter(addrs);
    const auto pred = core::predict_scatter(addrs, cfg, &machine.mapping());
    cmp.add(static_cast<double>(k), static_cast<double>(meas.cycles),
            static_cast<double>(pred.dxbsp_mapped),
            static_cast<double>(pred.bsp));
    t.add_row(k, meas.cycles, pred.dxbsp_mapped, pred.bsp,
              meas.cycles_per_element(),
              static_cast<double>(pred.dxbsp_mapped) / meas.cycles,
              static_cast<double>(pred.bsp) / meas.cycles);
  }
  bench::emit(cli, t);
  std::cout << "dxbsp rms rel err: " << cmp.dxbsp_rms_error()
            << "   bsp rms rel err: " << cmp.bsp_rms_error()
            << "   bsp max rel err: " << cmp.bsp_max_error() << "\n";
  return 0;
}
