// Experiment 2 (Fig 5-style): scatter time with multiple hot locations.
//
// Sweeps the number of hot locations m at fixed per-location contention
// k, and k at fixed m. When all hot locations land in distinct banks the
// time is governed by the hottest single location, so the (d,x)-BSP
// prediction (which charges max bank load) stays accurate as long as the
// combined hot traffic does not saturate the banks.

#include <iostream>

#include "bench_common.hpp"
#include "core/predictor.hpp"
#include "sim/machine.hpp"
#include "workload/patterns.hpp"

int main(int argc, char** argv) {
  using namespace dxbsp;
  const util::Cli cli(argc, argv);
  const auto cfg = bench::machine_from_cli(cli);
  const std::uint64_t n = cli.get_int("n", 1 << 20);
  const std::uint64_t seed = cli.get_int("seed", 1995);

  bench::Obs obs(cli, "Fig 5 / Experiment 2",
                "Scatter time vs number of hot locations; n = " +
                    std::to_string(n) + ", machine = " + cfg.name);
  sim::Machine machine(cfg);
  obs.attach(machine);

  {
    const std::uint64_t k = cli.get_int("k", 1 << 12);
    util::Table t({"hot locations (k=" + std::to_string(k) + " each)",
                   "measured", "dxbsp", "bsp", "max bank load"});
    for (std::uint64_t hot = 1; hot * k <= n / 2; hot *= 4) {
      const auto addrs = workload::multi_hot(n, hot, k, 1ULL << 30, seed + hot);
      const auto meas = machine.scatter(addrs);
      const auto pred = core::predict_scatter(addrs, cfg, &machine.mapping());
      t.add_row(hot, meas.cycles, pred.dxbsp_mapped, pred.bsp,
                meas.max_bank_load);
    }
    bench::emit(cli, t);
  }
  {
    const std::uint64_t hot = cli.get_int("hot", 64);
    util::Table t({"k (" + std::to_string(hot) + " hot locations)", "measured",
                   "dxbsp", "bsp", "max bank load"});
    for (std::uint64_t k = 4; hot * k <= n / 2; k *= 4) {
      const auto addrs = workload::multi_hot(n, hot, k, 1ULL << 30, seed + k);
      const auto meas = machine.scatter(addrs);
      const auto pred = core::predict_scatter(addrs, cfg, &machine.mapping());
      t.add_row(k, meas.cycles, pred.dxbsp_mapped, pred.bsp,
                meas.max_bank_load);
    }
    bench::emit(cli, t);
  }
  return obs.finish();
}
