// Experiment 3 (Fig 6-style): irregular distributions graded by entropy.
//
// The Thearling–Smith construction starts with uniform random keys and
// repeatedly ANDs each key with a randomly chosen partner; every round
// lowers the entropy and raises the contention until all keys collapse
// to zero. The paper verifies the (d,x)-BSP prediction tracks the
// measured scatter time across the whole family; so do we.

#include <iostream>

#include "bench_common.hpp"
#include "core/predictor.hpp"
#include "sim/machine.hpp"
#include "stats/compare.hpp"
#include "stats/histogram.hpp"
#include "workload/entropy.hpp"
#include "workload/patterns.hpp"

int main(int argc, char** argv) {
  using namespace dxbsp;
  const util::Cli cli(argc, argv);
  const auto cfg = bench::machine_from_cli(cli);
  const std::uint64_t n = cli.get_int("n", 1 << 20);
  const unsigned rounds = static_cast<unsigned>(cli.get_int("rounds", 12));
  const unsigned bits = static_cast<unsigned>(cli.get_int("bits", 26));
  const std::uint64_t seed = cli.get_int("seed", 1995);

  bench::Obs obs(cli, "Fig 6 / Experiment 3",
                "Scatter time vs key entropy (Thearling–Smith AND-folding); "
                "n = " + std::to_string(n) + ", machine = " + cfg.name);

  sim::Machine machine(cfg);
  obs.attach(machine);
  stats::Comparison cmp("entropy", "entropy family");
  util::Table t({"round", "entropy (bits)", "max k", "measured", "dxbsp",
                 "bsp", "dxbsp/meas"});
  for (const auto& trace :
       workload::entropy_family(n, rounds, bits, 0, seed)) {
    const auto meas = machine.scatter(trace.keys);
    const auto pred =
        core::predict_scatter(trace.keys, cfg, &machine.mapping());
    cmp.add(trace.entropy_bits, static_cast<double>(meas.cycles),
            static_cast<double>(pred.dxbsp_mapped),
            static_cast<double>(pred.bsp));
    t.add_row(trace.round, trace.entropy_bits, trace.max_contention,
              meas.cycles, pred.dxbsp_mapped, pred.bsp,
              static_cast<double>(pred.dxbsp_mapped) / meas.cycles);
  }
  bench::emit(cli, t);
  std::cout << "dxbsp rms rel err: " << cmp.dxbsp_rms_error()
            << "   bsp rms rel err: " << cmp.bsp_rms_error() << "\n\n";

  // A second skew family, Zipf-distributed accesses (the standard model
  // of irregular-application hot spots), graded by theta instead of AND
  // rounds — same conclusion, different generator.
  {
    const std::uint64_t zn = std::min<std::uint64_t>(n, 1 << 18);
    util::Table tz({"zipf theta", "entropy (bits)", "max k", "measured",
                    "dxbsp", "dxbsp/meas"});
    for (const double theta : {0.0, 0.5, 0.8, 1.0, 1.2, 1.5}) {
      const auto addrs = workload::zipf(zn, 1 << 20, theta, seed);
      const auto meas = machine.scatter(addrs);
      const auto pred =
          core::predict_scatter(addrs, cfg, &machine.mapping());
      tz.add_row(theta, stats::shannon_entropy(addrs),
                 pred.profile.max_contention, meas.cycles, pred.dxbsp_mapped,
                 static_cast<double>(pred.dxbsp_mapped) / meas.cycles);
    }
    bench::emit(cli, tz);
  }
  return obs.finish();
}
