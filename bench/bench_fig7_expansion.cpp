// Expansion figure: scatter time versus the expansion factor x.
//
// The paper's second headline result: for irregular (random) access
// patterns, adding banks keeps helping even past the "natural" x = d/g
// point, because extra banks thin the tail of the random max bank load.
// We sweep x for the J90-like delay (d=14) and the C90-like delay (d=6)
// and overlay the analytic balls-in-bins prediction.
//
// The sweep runs under SweepRunner: grid points are keyed (d << 32) | x,
// each point is a pure function of its key (its workload is regenerated
// from --seed), and tables are rendered from the stored records only
// after the sweep completes — so --checkpoint/--resume reproduce the
// uninterrupted output byte for byte.

#include <bit>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "core/balls_bins.hpp"
#include "sim/machine.hpp"
#include "workload/patterns.hpp"

int main(int argc, char** argv) {
  using namespace dxbsp;
  return bench::guarded([&] {
    const util::Cli cli(argc, argv);
    // Default sized so the per-bank load around x = d is a few hundred
    // requests: that is where the random max-load tail — the thing banks
    // beyond x = d shave off — is a visible fraction of the time. (With
    // much larger n the tail is relatively negligible and the curve
    // saturates at x = d, which the sweep also demonstrates via --n.)
    const std::uint64_t n = cli.get_uint("n", 1 << 15);
    const std::uint64_t p = cli.get_uint("p", 8);
    const std::uint64_t seed = cli.get_uint("seed", 1995);

    bench::Obs obs(cli, "Fig 7 (expansion)",
                  "Scatter time vs expansion x, random pattern, n = " +
                      std::to_string(n) + ", p = " + std::to_string(p));

    const std::vector<std::uint64_t> delays = {6, 14};
    std::vector<std::uint64_t> keys;
    for (const std::uint64_t d : delays)
      for (std::uint64_t x = 1; x <= 16 * d; x *= 2)
        keys.push_back((d << 32) | x);

    resilience::SweepRunner runner(
        resilience::sweep_id("fig7_expansion", {n, p, seed}),
        bench::sweep_options_from_cli(cli));
    const auto report = runner.run(keys, [&](std::uint64_t key) {
      const std::uint64_t d = key >> 32;
      const std::uint64_t x = key & 0xFFFFFFFFULL;
      const auto addrs = workload::uniform_random(n, 1ULL << 30, seed);
      sim::MachineConfig cfg;
      cfg.name = "sweep";
      cfg.processors = p;
      cfg.gap = 1;
      cfg.latency = 30;
      cfg.bank_delay = d;
      cfg.expansion = x;
      cfg.slackness = 64 * 1024;
      sim::Machine machine(cfg);
      machine.set_cancel(&runner.token());
      obs.attach(machine, key);
      resilience::SnapshotRecord rec;
      rec.key = key;
      rec.rng_state = seed;
      rec.result = machine.scatter(addrs);
      rec.aux[0] = std::bit_cast<std::uint64_t>(
          core::predicted_random_pattern_cycles(n, p, 1, 30, d, x));
      return rec;
    });
    if (!report.ok()) return obs.finish(bench::finish_sweep(report));

    for (const std::uint64_t d : delays) {
      util::Table t({"x (d=" + std::to_string(d) + ")", "measured cycles",
                     "analytic dxbsp", "cyc/elt", "speedup vs x=1",
                     "x = d marker"});
      std::uint64_t base = 0;
      for (std::uint64_t x = 1; x <= 16 * d; x *= 2) {
        const auto& rec = runner.record((d << 32) | x);
        const auto& meas = rec.result;
        if (base == 0) base = meas.cycles;
        t.add_row(x, meas.cycles, std::bit_cast<double>(rec.aux[0]),
                  meas.cycles_per_element(),
                  static_cast<double>(base) / meas.cycles,
                  x == d ? "<= natural x=d"
                         : (x == 2 * d ? "(beyond d)" : ""));
      }
      bench::emit(cli, t);
      std::cout
          << "expansion after which banks stop mattering (analytic): x = "
          << core::effective_expansion_limit(n, p, 1, d, 1024) << "\n\n";
    }
    return obs.finish();
  });
}
