// §4 figure: the cost of module-map contention under random mappings.
//
// Worst-case pattern for a module map: n requests to n *distinct*
// locations (no location contention at all, so any slowdown is pure
// mapping artifact). For each expansion x, we compare the measured time
// under a hashed mapping against the location-only ideal
// max(g·n/p, d·ceil(n/B)) and report the ratio — the paper's point is
// that this ratio decays toward 1 as the expansion grows, so pseudo-
// random mappings are safe on bank-rich machines.

#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "mem/bank_mapping.hpp"
#include "sim/machine.hpp"
#include "util/bits.hpp"
#include "util/rng.hpp"
#include "workload/patterns.hpp"

int main(int argc, char** argv) {
  using namespace dxbsp;
  const util::Cli cli(argc, argv);
  const std::uint64_t n = cli.get_int("n", 1 << 18);
  const std::uint64_t p = cli.get_int("p", 8);
  const std::uint64_t d = cli.get_int("d", 14);
  const std::uint64_t seed = cli.get_int("seed", 1995);
  const unsigned draws = static_cast<unsigned>(cli.get_int("draws", 5));

  bench::Obs obs(cli, "Fig 8 (module map, §4)",
                "Ratio of time with module-map contention to the location-"
                "only ideal, worst-case distinct pattern, cubic hashing; "
                "n = " + std::to_string(n));

  const auto addrs = workload::distinct_random(n, 1ULL << 34, seed);
  util::Table t({"x", "banks", "ideal cycles", "hashed cycles (mean)",
                 "hashed (max)", "ratio mean", "ratio max"});
  for (std::uint64_t x = 1; x <= 128; x *= 2) {
    sim::MachineConfig cfg;
    cfg.name = "sweep";
    cfg.processors = p;
    cfg.gap = 1;
    cfg.latency = 0;
    cfg.bank_delay = d;
    cfg.expansion = x;
    cfg.slackness = 64 * 1024;

    const double ideal = static_cast<double>(
        std::max(cfg.gap * util::ceil_div(n, p),
                 d * util::ceil_div(n, cfg.banks())));
    double sum = 0.0, worst = 0.0;
    for (unsigned i = 0; i < draws; ++i) {
      util::Xoshiro256 rng(util::substream(seed, 70 + i));
      sim::Machine machine(cfg, std::make_shared<mem::HashedMapping>(
                                    cfg.banks(), mem::HashDegree::kCubic, rng));
      obs.attach(machine, i);
      const double c = static_cast<double>(machine.scatter(addrs).cycles);
      sum += c;
      worst = std::max(worst, c);
    }
    const double mean = sum / draws;
    t.add_row(x, cfg.banks(), ideal, mean, worst, mean / ideal,
              worst / ideal);
  }
  bench::emit(cli, t);
  return obs.finish();
}
