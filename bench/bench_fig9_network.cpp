// Network-placement experiment (versions (a)/(b)/(c)).
//
// The paper times three variants of the same scatter differing only in
// how processors address the network's subsections: (a) spread evenly,
// (b) random, and (c) an adversarial placement that funnels everything
// through one subsection. Versions (a) and (b) match the model; version
// (c) is off by up to ~2.5x because the (d,x)-BSP does not model
// intra-network congestion. We reproduce all three against the sectioned
// network simulator and report the model/measured ratio.

#include <iostream>

#include "bench_common.hpp"
#include "core/predictor.hpp"
#include "sim/machine.hpp"
#include "workload/patterns.hpp"

int main(int argc, char** argv) {
  using namespace dxbsp;
  const util::Cli cli(argc, argv);
  const std::uint64_t n = cli.get_int("n", 1 << 18);
  const std::uint64_t seed = cli.get_int("seed", 1995);

  // Default to p sections at one request/cycle each: aggregate network
  // bandwidth matches aggregate processor issue bandwidth, so a spread
  // placement is not network-limited — only placement skew is.
  sim::MachineConfig cfg = sim::MachineConfig::cray_j90();
  cfg.network_sections = cli.get_int("sections", cfg.processors);
  cfg.section_period = cli.get_int("section-period", 1);

  bench::Obs obs(cli, "Fig 9 (network versions a/b/c)",
                "Same scatter volume, three processor-to-section placements; "
                "sections = " + std::to_string(cfg.network_sections) +
                    ", machine = " + cfg.name);

  sim::Machine machine(cfg);
  obs.attach(machine);
  const std::uint64_t B = cfg.banks();
  const std::uint64_t S = cfg.network_sections;

  // (a) spread: consecutive requests walk all sections round-robin.
  std::vector<std::uint64_t> spread(n);
  for (std::uint64_t i = 0; i < n; ++i) spread[i] = i % B;
  // (b) random banks.
  const auto random_banks = workload::uniform_random(n, B, seed);
  // (c) concentrated: banks drawn from 3 of the S sections only — the
  // paper's adversarial placement funnels most traffic through a few
  // subsection ports (it observed up to ~2.5x; 3-of-8 gives ~8/3 here).
  const std::uint64_t hot_sections = std::max<std::uint64_t>(1, (S * 3) / 8);
  std::vector<std::uint64_t> hot(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t sec = i % hot_sections;
    const std::uint64_t row = (i / hot_sections) % (B / S);
    hot[i] = row * S + sec;
  }

  util::Table t({"version", "measured", "dxbsp model", "meas/model",
                 "port conflicts"});
  const struct {
    const char* name;
    const std::vector<std::uint64_t>* banks;
  } versions[] = {{"(a) spread", &spread},
                  {"(b) random", &random_banks},
                  {"(c) concentrated", &hot}};
  for (const auto& v : versions) {
    const auto meas = machine.scatter_banks(*v.banks);
    // Model prediction from the bank loads alone (the (d,x)-BSP has no
    // network congestion term — that is the experiment's point).
    const core::DxBspParams m = core::DxBspParams::from_config(cfg);
    const std::uint64_t pred =
        core::dxbsp_step_time(m, {meas.max_proc_requests, meas.max_bank_load,
                                  n});
    t.add_row(v.name, meas.cycles, pred,
              static_cast<double>(meas.cycles) / static_cast<double>(pred),
              meas.port_conflicts);
  }
  bench::emit(cli, t);
  std::cout << "Versions (a)/(b) sit near ratio 1; version (c) exceeds the\n"
               "model because one section port serializes the traffic —\n"
               "the paper observed up to ~2.5x on the C90.\n\n";

  // The refined model the paper points to ([ST91]): a log2(B)-stage
  // butterfly where congestion (or its absence) emerges from shared
  // wires instead of being declared per section. Two wire speeds:
  // full-rate wires validate the paper's "high-bandwidth network"
  // premise (no placement hurts); quarter-rate wires make the network
  // the constraint, with the concentrated placement worst.
  for (const std::uint64_t period :
       {std::uint64_t{1}, static_cast<std::uint64_t>(
                              cli.get_int("slow-link-period", 4))}) {
    auto bcfg = sim::MachineConfig::cray_j90();
    bcfg.butterfly_network = true;
    bcfg.link_period = period;
    sim::Machine bm(bcfg);
    util::Table t2({"version (butterfly, link period " +
                        std::to_string(period) + ")",
                    "measured", "dxbsp model", "meas/model",
                    "wire conflicts"});
    for (const auto& v : versions) {
      const auto meas = bm.scatter_banks(*v.banks);
      const core::DxBspParams m = core::DxBspParams::from_config(bcfg);
      const std::uint64_t pred = core::dxbsp_step_time(
          m, {meas.max_proc_requests, meas.max_bank_load, n});
      t2.add_row(v.name, meas.cycles, pred,
                 static_cast<double>(meas.cycles) / static_cast<double>(pred),
                 meas.port_conflicts);
    }
    bench::emit(cli, t2);
  }
  std::cout << "Full-rate wires: every placement tracks the model — the\n"
               "high-bandwidth-network premise under which the (d,x)-BSP\n"
               "needs no network term. Quarter-rate wires: the network\n"
               "binds for all placements and the concentrated one worst —\n"
               "the regime where [ST91]-style modeling becomes necessary.\n";
  return obs.finish();
}
