// Perf 4: hot-path regression harness for the event engine.
//
// Runs the same workloads through all THREE engine modes in one
// invocation — the reference priority_queue loop, the pinned
// calendar-queue scheduler, and the adaptive selector (kAuto, the
// default; docs/performance.md §selector) — and reports simulator
// throughput as host metrics: events processed per wall-clock second
// and simulated cycles per second, per scenario and mode, plus the
// auto-vs-best-fixed speedup. Every run also cross-checks that all
// modes produced identical telemetry (the cheap always-on slice of
// tests/engine_equivalence_test.cpp), so the sanitizer CI job gets
// correctness value from the bench even though it skips the throughput
// gate.
//
// The scenario set covers the hot-path variants that take different
// code: the SoA batched kernel (headline: uniform random, p=64, x=4,
// d=8, 1M requests), the scheduled path (tight slackness window),
// combining, bank caching, and a faulty run (retry backoffs through the
// scheduler's overflow heap).
//
// Flags beyond the shared set (--seed, --csv, observability):
//   --n=N        headline request count        (default 1048576)
//   --reps=R     timed repetitions, best-of    (default 3)
//   --quick      CI smoke sizing: n/16, reps=2 (scripts/ci.sh)
//
// scripts/ci.sh runs `--quick --metrics=...` and compares each
// scenario's auto-vs-best-fixed speedup against the committed
// BENCH_9.json baseline (20% tolerance). Refresh the baseline with:
//   ./build/bench/bench_perf_hotpath --metrics=BENCH_9.json

#include <chrono>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "fault/fault_plan.hpp"
#include "obs/metrics.hpp"
#include "sim/machine.hpp"
#include "workload/patterns.hpp"

namespace {

using namespace dxbsp;

struct Scenario {
  std::string name;
  sim::MachineConfig cfg;
  std::vector<std::uint64_t> addrs;
  std::shared_ptr<const fault::FaultPlan> plan;
};

struct Measurement {
  double events_per_sec = 0.0;
  double cycles_per_sec = 0.0;
  sim::BulkResult bulk;
};

Measurement run_engine(const Scenario& sc, sim::Machine::Engine engine,
                       std::uint64_t reps) {
  sim::Machine m(sc.cfg);
  m.set_engine(engine);
  if (sc.plan) m.inject(sc.plan);

  Measurement best;
  for (std::uint64_t r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto out = m.scatter_faulty(sc.addrs);
    const auto t1 = std::chrono::steady_clock::now();
    const double sec =
        std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0)
            .count();
    // Scheduler events processed: one per fresh issue plus one per retry.
    const double events =
        static_cast<double>(out.bulk.n + out.bulk.retries);
    const double evps = sec > 0.0 ? events / sec : 0.0;
    if (evps > best.events_per_sec) {
      best.events_per_sec = evps;
      best.cycles_per_sec =
          sec > 0.0 ? static_cast<double>(out.bulk.cycles) / sec : 0.0;
      best.bulk = out.bulk;
    }
  }
  return best;
}

/// The engines must agree exactly; a mismatch is a correctness bug, not
/// a perf regression, and fails the bench loudly.
void check_agreement(const Scenario& sc, const char* mode,
                     const sim::BulkResult& got, const sim::BulkResult& ref) {
  if (got.cycles != ref.cycles || got.completed != ref.completed ||
      got.retries != ref.retries || got.stall_cycles != ref.stall_cycles ||
      got.max_bank_load != ref.max_bank_load ||
      got.combined != ref.combined || got.cache_hits != ref.cache_hits) {
    raise(ErrorCode::kInternal,
          "bench_perf_hotpath: engine mismatch in scenario '" + sc.name +
              "' (" + mode + " " + std::to_string(got.cycles) +
              " cycles vs reference " + std::to_string(ref.cycles) + ")");
  }
}

std::vector<Scenario> build_scenarios(std::uint64_t n_headline,
                                      std::uint64_t seed) {
  std::vector<Scenario> out;
  const std::uint64_t n_small = std::max<std::uint64_t>(n_headline / 4, 1024);

  {
    // Headline: the acceptance config — uniform random scatter on
    // p=64, x=4, d=8. No faults, default slackness: dense fast path.
    Scenario sc;
    sc.name = "uniform_p64_x4_d8";
    sc.cfg = sim::MachineConfig::parse("p=64,x=4,d=8,g=1,L=8");
    sc.addrs = workload::uniform_random(n_headline, 1ULL << 26, seed);
    out.push_back(std::move(sc));
  }
  {
    // Tight slackness: the completion-window gate binds, so the general
    // calendar path (and its stall bookkeeping) is what is timed.
    Scenario sc;
    sc.name = "hot_tight_window";
    sc.cfg = sim::MachineConfig::parse("p=16,x=4,d=4,g=1,L=8,S=64");
    sc.addrs = workload::k_hot(n_small, n_small / 8, 1ULL << 24, seed + 1);
    out.push_back(std::move(sc));
  }
  {
    Scenario sc;
    sc.name = "combining_multihot";
    sc.cfg = sim::MachineConfig::parse("p=16,x=4,d=4,g=1,L=8,combine=1");
    sc.addrs =
        workload::multi_hot(n_small, 32, n_small / 64, 1ULL << 24, seed + 2);
    out.push_back(std::move(sc));
  }
  {
    Scenario sc;
    sc.name = "cached_stride";
    sc.cfg = sim::MachineConfig::parse(
        "p=16,x=4,d=8,g=1,L=8,cache-lines=4,line-words=8,cached-delay=1");
    sc.addrs = workload::strided(n_small, 1, 0);
    out.push_back(std::move(sc));
  }
  {
    // Faulty: drops with a retry budget — backoffs land past the wheel
    // horizon, timing the scheduler's overflow heap and the fault path.
    Scenario sc;
    sc.name = "faulty_drop_retry";
    sc.cfg = sim::MachineConfig::parse("p=16,x=4,d=4,g=1,L=8");
    fault::FaultConfig fc;
    fc.seed = seed + 3;
    fc.drop_rate = 0.02;
    fc.slow_fraction = 0.25;
    fc.slow_multiplier = 4;
    sc.plan = std::make_shared<fault::FaultPlan>(fc, sc.cfg.banks());
    sc.addrs = workload::uniform_random(n_small, 1ULL << 24, seed + 4);
    out.push_back(std::move(sc));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dxbsp;
  return bench::guarded([&] {
    const util::Cli cli(argc, argv);
    const bool quick = cli.has("quick");
    const std::uint64_t n =
        cli.get_uint("n", quick ? (1u << 16) : (1u << 20));
    const std::uint64_t reps = cli.get_uint("reps", quick ? 2 : 3);
    const std::uint64_t seed = cli.get_uint("seed", 1995);

    bench::Obs obs(cli, "Perf 4 (hot path)",
                   "Event-engine throughput, auto vs calendar vs reference; "
                   "headline n = " + std::to_string(n) +
                       ", reps = " + std::to_string(reps));

    auto& reg = obs::MetricsRegistry::global();
    util::Table t({"scenario", "n", "ref Mev/s", "cal Mev/s", "auto Mev/s",
                   "speedup", "cycles"});
    double worst_speedup = 1e300;
    std::string worst_name = "none";

    for (const auto& sc : build_scenarios(n, seed)) {
      const auto ref = run_engine(sc, sim::Machine::Engine::kReference, reps);
      const auto cal = run_engine(sc, sim::Machine::Engine::kCalendar, reps);
      const auto aut = run_engine(sc, sim::Machine::Engine::kAuto, reps);
      check_agreement(sc, "calendar", cal.bulk, ref.bulk);
      check_agreement(sc, "auto", aut.bulk, ref.bulk);

      // The headline figure: does the adaptive selector beat the BETTER
      // of the two fixed engines on this workload class?
      const double best_fixed =
          std::max(ref.events_per_sec, cal.events_per_sec);
      const double speedup =
          best_fixed > 0.0 ? aut.events_per_sec / best_fixed : 0.0;
      if (speedup < worst_speedup) {
        worst_speedup = speedup;
        worst_name = sc.name;
      }
      t.add_row(sc.name, sc.addrs.size(), ref.events_per_sec / 1e6,
                cal.events_per_sec / 1e6, aut.events_per_sec / 1e6, speedup,
                aut.bulk.cycles);

      // Host metrics (wall-clock dependent, excluded from deterministic
      // run reports; BENCH_9.json is written via --metrics, which
      // includes them).
      const std::string pre = "perf." + sc.name;
      reg.gauge(pre + ".events_per_sec.reference", obs::Stability::kHost)
          .observe(static_cast<std::uint64_t>(ref.events_per_sec));
      reg.gauge(pre + ".events_per_sec.calendar", obs::Stability::kHost)
          .observe(static_cast<std::uint64_t>(cal.events_per_sec));
      reg.gauge(pre + ".events_per_sec.auto", obs::Stability::kHost)
          .observe(static_cast<std::uint64_t>(aut.events_per_sec));
      reg.gauge(pre + ".cycles_per_sec.reference", obs::Stability::kHost)
          .observe(static_cast<std::uint64_t>(ref.cycles_per_sec));
      reg.gauge(pre + ".cycles_per_sec.calendar", obs::Stability::kHost)
          .observe(static_cast<std::uint64_t>(cal.cycles_per_sec));
      reg.gauge(pre + ".cycles_per_sec.auto", obs::Stability::kHost)
          .observe(static_cast<std::uint64_t>(aut.cycles_per_sec));
      reg.gauge(pre + ".speedup_x100", obs::Stability::kHost)
          .observe(static_cast<std::uint64_t>(speedup * 100.0));
    }

    bench::emit(cli, t);
    std::cout << "worst auto-vs-best-fixed speedup: " << worst_speedup
              << "x (" << worst_name
              << "; acceptance target: >= 1x on every class)\n"
              << "Engine modes cross-checked: identical telemetry on every "
                 "scenario.\n";
    return obs.finish();
  });
}
