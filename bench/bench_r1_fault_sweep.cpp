// Robustness R1: degraded operation under injected memory-system faults.
//
// Sweeps transient bank slowness, dead-bank fractions (with spare-bank
// failover), and in-flight NACK/drop rates on a J90-like machine, and
// compares the simulated degraded time with the analytic companion
// model's effective-parameter prediction (d' = d/(1-f_slow),
// x' = x·(1-f_dead), additive retry tail; docs/faults.md). The telemetry
// columns show what the machine actually did: retries, NACKs, failovers,
// extra bank-busy cycles.

#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "fault/fault_plan.hpp"
#include "sim/machine.hpp"
#include "stats/degraded.hpp"
#include "workload/patterns.hpp"

int main(int argc, char** argv) {
  using namespace dxbsp;
  const util::Cli cli(argc, argv);
  const std::uint64_t n = cli.get_int("n", 1 << 17);
  const std::uint64_t seed = cli.get_int("seed", 1995);

  bench::banner("R1 (fault sweep)",
                "simulated vs predicted degraded time; n = " +
                    std::to_string(n));

  sim::MachineConfig cfg = sim::MachineConfig::cray_j90();
  const auto addrs = workload::uniform_random(n, 1ULL << 30, seed);

  auto run = [&](const std::string& label, const fault::FaultConfig& fc,
                 util::Table& t) {
    auto plan = std::make_shared<fault::FaultPlan>(fc, cfg.banks());
    sim::Machine machine(cfg);
    machine.inject(plan);
    const auto out = machine.scatter_faulty(addrs);
    const auto pred = stats::predict_degraded(cfg, *plan, n);
    const double sim_cycles = static_cast<double>(out.bulk.cycles);
    t.add_row(label, out.bulk.cycles,
              static_cast<std::uint64_t>(pred.cycles),
              pred.cycles / sim_cycles, out.bulk.retries, out.bulk.nacks,
              out.bulk.failovers, out.bulk.degraded_cycles,
              out.ok() ? "ok"
                       : ("DEGRADED: " + std::to_string(
                                             out.degraded->failed_requests) +
                          " failed"));
  };

  {
    util::Table t({"slow banks", "sim cycles", "predicted", "pred/sim",
                   "retries", "nacks", "failovers", "degr cycles", "status"});
    for (const double frac : {0.0, 0.125, 0.25, 0.5}) {
      for (const std::uint64_t mult : {2ULL, 4ULL}) {
        if (frac == 0.0 && mult != 2) continue;
        fault::FaultConfig fc;
        fc.seed = seed;
        fc.slow_fraction = frac;
        fc.slow_multiplier = mult;
        run("slow=" + std::to_string(frac) + " mult=" + std::to_string(mult),
            fc, t);
      }
    }
    bench::emit(cli, t);
  }

  {
    util::Table t({"dead banks", "sim cycles", "predicted", "pred/sim",
                   "retries", "nacks", "failovers", "degr cycles", "status"});
    for (const double frac : {0.0625, 0.125, 0.25, 0.5}) {
      fault::FaultConfig fc;
      fc.seed = seed;
      fc.dead_fraction = frac;
      run("dead=" + std::to_string(frac), fc, t);
    }
    bench::emit(cli, t);
  }

  {
    util::Table t({"drop rate", "sim cycles", "predicted", "pred/sim",
                   "retries", "nacks", "failovers", "degr cycles", "status"});
    for (const double q : {0.01, 0.05, 0.1, 0.2}) {
      fault::FaultConfig fc;
      fc.seed = seed;
      fc.drop_rate = q;
      fc.retry.max_retries = 16;
      run("drop=" + std::to_string(q), fc, t);
    }
    bench::emit(cli, t);
  }

  {
    // Compound incident: refresh storms + a dead section + lossy network,
    // and a deliberately exhausted retry budget to show the structured
    // degradation surface.
    util::Table t({"compound", "sim cycles", "predicted", "pred/sim",
                   "retries", "nacks", "failovers", "degr cycles", "status"});
    fault::FaultConfig fc;
    fc.seed = seed;
    fc.slow_fraction = 0.25;
    fc.slow_multiplier = 4;
    fc.dead_fraction = 0.125;
    fc.drop_rate = 0.02;
    fc.retry.max_retries = 16;
    run("storm+dead+lossy", fc, t);
    fault::FaultConfig tight = fc;
    tight.drop_rate = 0.5;
    tight.retry.max_retries = 2;
    run("lossy, tight budget", tight, t);
    bench::emit(cli, t);
  }

  std::cout << "Reading: pred/sim near 1.0 means the d'/x' correction "
               "stays predictive;\nthe tight-budget row demonstrates "
               "structured degradation (no hang, no\nsilent loss) when "
               "retries cannot save a request.\n";
  return 0;
}
