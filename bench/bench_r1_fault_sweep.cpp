// Robustness R1: degraded operation under injected memory-system faults.
//
// Sweeps transient bank slowness, dead-bank fractions (with spare-bank
// failover), and in-flight NACK/drop rates on a J90-like machine, and
// compares the simulated degraded time with the analytic companion
// model's effective-parameter prediction (d' = d/(1-f_slow),
// x' = x·(1-f_dead), additive retry tail; docs/faults.md). The telemetry
// columns show what the machine actually did: retries, NACKs, failovers,
// extra bank-busy cycles.
//
// The whole grid runs under SweepRunner: each scenario is one keyed
// point whose record carries the full fault telemetry plus the analytic
// prediction, so an interrupted sweep resumes from its checkpoint and
// prints byte-identical tables.

#include <bit>
#include <iostream>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "fault/fault_plan.hpp"
#include "sim/machine.hpp"
#include "stats/degraded.hpp"
#include "workload/patterns.hpp"

namespace {

struct Scenario {
  std::string label;
  dxbsp::fault::FaultConfig config;
  std::size_t table = 0;  // which output table the row belongs to
};

}  // namespace

int main(int argc, char** argv) {
  using namespace dxbsp;
  return bench::guarded([&] {
    const util::Cli cli(argc, argv);
    const std::uint64_t n = cli.get_uint("n", 1 << 17);
    const std::uint64_t seed = cli.get_uint("seed", 1995);

    bench::Obs obs(cli, "R1 (fault sweep)",
                  "simulated vs predicted degraded time; n = " +
                      std::to_string(n));

    const sim::MachineConfig cfg = sim::MachineConfig::cray_j90();

    // Enumerate the grid up front; a scenario's key is its index here,
    // so the grid shape is part of the sweep fingerprint below.
    std::vector<Scenario> grid;
    for (const double frac : {0.0, 0.125, 0.25, 0.5}) {
      for (const std::uint64_t mult : {2ULL, 4ULL}) {
        if (frac == 0.0 && mult != 2) continue;
        Scenario s;
        s.config.seed = seed;
        s.config.slow_fraction = frac;
        s.config.slow_multiplier = mult;
        s.label =
            "slow=" + std::to_string(frac) + " mult=" + std::to_string(mult);
        s.table = 0;
        grid.push_back(s);
      }
    }
    for (const double frac : {0.0625, 0.125, 0.25, 0.5}) {
      Scenario s;
      s.config.seed = seed;
      s.config.dead_fraction = frac;
      s.label = "dead=" + std::to_string(frac);
      s.table = 1;
      grid.push_back(s);
    }
    for (const double q : {0.01, 0.05, 0.1, 0.2}) {
      Scenario s;
      s.config.seed = seed;
      s.config.drop_rate = q;
      s.config.retry.max_retries = 16;
      s.label = "drop=" + std::to_string(q);
      s.table = 2;
      grid.push_back(s);
    }
    {
      // Compound incident: refresh storms + a dead section + lossy
      // network, and a deliberately exhausted retry budget to show the
      // structured degradation surface.
      Scenario s;
      s.config.seed = seed;
      s.config.slow_fraction = 0.25;
      s.config.slow_multiplier = 4;
      s.config.dead_fraction = 0.125;
      s.config.drop_rate = 0.02;
      s.config.retry.max_retries = 16;
      s.label = "storm+dead+lossy";
      s.table = 3;
      grid.push_back(s);
      Scenario tight = s;
      tight.config.drop_rate = 0.5;
      tight.config.retry.max_retries = 2;
      tight.label = "lossy, tight budget";
      grid.push_back(tight);
    }

    std::vector<std::uint64_t> keys(grid.size());
    for (std::size_t i = 0; i < grid.size(); ++i) keys[i] = i;

    svc::WorkerContext worker;
    auto opt = bench::sweep_options_from_cli(cli);
    const std::uint64_t id = bench::apply_sharding(
        worker, cli,
        resilience::sweep_id("r1_fault_sweep", {n, seed, grid.size()}),
        keys, opt, obs);
    resilience::SweepRunner runner(id, std::move(opt));
    worker.begin(runner.token());
    const auto report = runner.run(keys, [&](std::uint64_t key) {
      const Scenario& s = grid[key];
      const auto addrs = workload::uniform_random(n, 1ULL << 30, seed);
      auto plan = std::make_shared<fault::FaultPlan>(s.config, cfg.banks());
      sim::Machine machine(cfg);
      machine.set_cancel(&runner.token());
      obs.attach(machine, key);
      machine.inject(plan);
      const auto out = machine.scatter_faulty(addrs);
      resilience::SnapshotRecord rec;
      rec.key = key;
      rec.rng_state = seed;
      rec.result = out.bulk;
      rec.failed_requests = out.ok() ? 0 : out.degraded->failed_requests;
      rec.aux[0] = std::bit_cast<std::uint64_t>(
          stats::predict_degraded(cfg, *plan, n).cycles);
      return rec;
    });
    if (worker.active())
      return obs.finish(worker.finish(report, obs.info()));
    if (!report.ok()) return obs.finish(bench::finish_sweep(report));

    const std::vector<std::string> first_col = {"slow banks", "dead banks",
                                                "drop rate", "compound"};
    for (std::size_t table = 0; table < first_col.size(); ++table) {
      util::Table t({first_col[table], "sim cycles", "predicted", "pred/sim",
                     "retries", "nacks", "failovers", "degr cycles",
                     "status"});
      for (const std::uint64_t i : keys) {
        if (grid[i].table != table) continue;
        const auto& rec = runner.record(i);
        const auto& bulk = rec.result;
        const double pred_cycles = std::bit_cast<double>(rec.aux[0]);
        t.add_row(grid[i].label, bulk.cycles,
                  static_cast<std::uint64_t>(pred_cycles),
                  pred_cycles / static_cast<double>(bulk.cycles),
                  bulk.retries, bulk.nacks, bulk.failovers,
                  bulk.degraded_cycles,
                  rec.failed_requests == 0
                      ? "ok"
                      : ("DEGRADED: " +
                         std::to_string(rec.failed_requests) + " failed"));
      }
      bench::emit(cli, t);
    }

    std::cout << "Reading: pred/sim near 1.0 means the d'/x' correction "
                 "stays predictive;\nthe tight-budget row demonstrates "
                 "structured degradation (no hang, no\nsilent loss) when "
                 "retries cannot save a request.\n";
    return obs.finish();
  });
}
