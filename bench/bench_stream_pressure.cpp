// Streaming-executor pressure harness (docs/streaming.md).
//
// Two modes:
//
//   sweep (default)     — runs the same stream fully in RAM and then at
//                         budgets of 1/2, 1/4 and 1/8 of the data size,
//                         each in its own spill subdirectory, and checks
//                         the result checksum never moves: spilling is a
//                         memory regime, not a different computation.
//
//   single (--mem-budget=BYTES) — one run under the given budget,
//                         printing the per-partition table and a
//                         canonical "STREAM OK" line. --out=PATH writes
//                         just the canonical part (table + STREAM OK) to
//                         a file, which is what ci.sh `cmp`s between
//                         in-RAM / spilled / crash-resumed runs.
//
// Robustness flags: --faults (disk=... grammar injects spill-device
// misbehaviour; memory-system keys also degrade the machine), --chaos
// (phase=spill:K / point:K crash or hang scripts), --checkpoint /
// --resume (partition bank), --deadline, --stall-timeout (watchdog).
// A persistently failing spill tier ends the run with a structured
// "STREAM DEGRADED" line and exit 69; a revoked hang exits 75.
//
// The footer reports vm_peak_kb / peak_rss_kb (host memory, for the
// ulimit -v smoke stage) — host-varying, so never part of --out.

#include <sys/resource.h>

#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>

#include "bench_common.hpp"
#include "stream/executor.hpp"
#include "svc/chaos.hpp"

namespace {

using namespace dxbsp;

std::uint64_t vm_peak_kb() {
  std::ifstream f("/proc/self/status");
  std::string line;
  while (std::getline(f, line))
    if (line.rfind("VmPeak:", 0) == 0)
      return std::strtoull(line.c_str() + 7, nullptr, 10);
  return 0;
}

std::uint64_t peak_rss_kb() {
  rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<std::uint64_t>(ru.ru_maxrss);
}

/// The canonical, budget-invariant view of one run: the per-partition
/// table plus the totals line. Byte-identical for any budget / spill /
/// resume path of the same stream config.
std::string canonical(const stream::StreamResult& r) {
  std::ostringstream os;
  util::Table t({"partition", "slabs", "elements", "cycles", "max bank load",
                 "completed", "checksum"});
  for (const stream::PartitionResult& p : r.partitions)
    t.add_row(p.partition, p.slabs, p.elements, p.cycles, p.max_bank_load,
              p.completed, p.checksum);
  t.print(os);
  os << "STREAM OK elements=" << r.elements << " cycles=" << r.cycles
     << " max_bank_load=" << r.max_bank_load << " completed=" << r.completed
     << " checksum=" << r.checksum << "\n";
  return os.str();
}

void print_memory_line(const stream::StreamResult& r) {
  std::cout << "MEMORY budget=" << r.budget_bytes << " peak=" << r.peak_bytes
            << " spilled_bytes=" << r.spilled_bytes
            << " chunks=" << r.spill_chunks
            << " back_pressure=" << r.back_pressure_events
            << " resumed_partitions=" << r.partitions_resumed
            << " spilled=" << (r.spilled ? 1 : 0) << "\n";
}

void print_host_line() {
  std::cout << "HOST vm_peak_kb=" << vm_peak_kb()
            << " peak_rss_kb=" << peak_rss_kb() << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  return bench::guarded([&] {
    const util::Cli cli(argc, argv);
    const auto cfg = bench::machine_from_cli(cli);

    stream::StreamConfig scfg = stream::StreamConfig::from_cli(cli);
    if (scfg.n == 0) scfg.n = std::uint64_t{1} << 16;
    if (scfg.space == 0) scfg.space = cfg.banks() * 1024;
    if (!cli.has("slab-bytes")) scfg.slab_bytes = std::uint64_t{64} << 10;

    bench::Obs obs(cli, "stream pressure",
                   "Out-of-core streaming under a hard memory budget: "
                   "spill, back-pressure, disk faults; n = " +
                       std::to_string(scfg.n) + ", machine = " + cfg.name);

    // Fault plan: the disk grammar lands on the spill tier; any
    // memory-system keys in the same spec degrade the machine too.
    std::shared_ptr<fault::FaultPlan> plan;
    bool machine_faults = false;
    const std::string fault_spec = cli.get("faults", "");
    if (!fault_spec.empty()) {
      const fault::FaultConfig fc = fault::FaultConfig::parse(fault_spec);
      plan = std::make_shared<fault::FaultPlan>(fc, cfg.banks());
      machine_faults = fc.any();
    }
    const svc::ChaosPlan chaos = svc::ChaosPlan::parse(cli.get("chaos", ""));

    resilience::CancelToken token;
    resilience::ScopedSignalCancel on_signal(token);
    const double deadline = cli.get_double("deadline", 0.0);
    if (deadline > 0.0) token.set_deadline(resilience::Deadline(deadline));
    std::optional<resilience::Watchdog> watchdog;
    const double stall = cli.get_double("stall-timeout", 0.0);
    if (stall > 0.0)
      watchdog.emplace(token, std::chrono::milliseconds(
                                  static_cast<std::int64_t>(stall * 1000.0)));

    sim::Machine machine(cfg);
    obs.attach(machine, 0);
    machine.set_cancel(&token);
    if (plan && machine_faults) machine.inject(plan);

    stream::StreamHooks hooks;
    hooks.cancel = &token;
    hooks.trace = machine.tracer();
    hooks.faults = plan.get();
    hooks.chaos = chaos.empty() ? nullptr : &chaos;
    hooks.chaos_shard = cli.get_uint("chaos-shard", 0);
    hooks.chaos_attempt = cli.get_uint("chaos-attempt", 0);

    const auto run_one = [&](const stream::StreamConfig& c) {
      return stream::StreamExecutor(c, machine, hooks).run();
    };

    if (scfg.mem_budget != 0 || cli.get("spill-dir", "").empty()) {
      // ---- Single-run mode -------------------------------------------
      stream::StreamResult r;
      try {
        r = run_one(scfg);
      } catch (const Error& e) {
        if (e.code() == ErrorCode::kDegraded) {
          std::cout << "STREAM DEGRADED cause=\"" << e.what() << "\"\n";
          print_host_line();
          return obs.finish(exit_code(e.code()));
        }
        if (e.code() == ErrorCode::kInterrupted) {
          std::cout << "STREAM INTERRUPTED cause="
                    << resilience::cancel_cause_name(token.cause()) << "\n";
          print_host_line();
          return obs.finish(exit_code(e.code()));
        }
        throw;
      }
      const std::string canon = canonical(r);
      std::cout << canon;
      print_memory_line(r);
      print_host_line();
      const std::string out_path = cli.get("out", "");
      if (!out_path.empty()) {
        std::ofstream out(out_path);
        if (!out)
          raise(ErrorCode::kIo, "cannot open --out file " + out_path);
        out << canon;
      }
      return obs.finish(0);
    }

    // ---- Sweep mode: in-RAM baseline, then shrinking budgets ---------
    const std::uint64_t data_bytes = scfg.n * sizeof(std::uint64_t);
    stream::StreamConfig base = scfg;
    base.mem_budget = 0;
    base.spill_dir.clear();
    const stream::StreamResult baseline = run_one(base);

    util::Table t({"budget bytes", "peak bytes", "spilled bytes", "chunks",
                   "back-pressure", "cycles", "checksum", "match"});
    t.add_row(std::uint64_t{0}, baseline.peak_bytes, baseline.spilled_bytes,
              baseline.spill_chunks, baseline.back_pressure_events,
              baseline.cycles, baseline.checksum, "base");
    bool all_match = true;
    for (const std::uint64_t ratio : {2ULL, 4ULL, 8ULL}) {
      stream::StreamConfig c = scfg;
      c.mem_budget = std::max(c.slab_bytes, data_bytes / ratio);
      c.spill_dir = scfg.spill_dir + "/r" + std::to_string(ratio);
      const stream::StreamResult r = run_one(c);
      const bool match = r.checksum == baseline.checksum &&
                         r.elements == baseline.elements &&
                         r.cycles == baseline.cycles;
      all_match = all_match && match;
      t.add_row(c.mem_budget, r.peak_bytes, r.spilled_bytes, r.spill_chunks,
                r.back_pressure_events, r.cycles, r.checksum,
                match ? "yes" : "NO");
      if (r.peak_bytes > c.mem_budget + c.slab_bytes)
        raise(ErrorCode::kInternal,
              "MemoryInvariant violated: peak " + std::to_string(r.peak_bytes) +
                  " > budget " + std::to_string(c.mem_budget) + " + slab " +
                  std::to_string(c.slab_bytes));
    }
    bench::emit(cli, t);
    if (!all_match) {
      std::cout << "RESULT MISMATCH: a budgeted run diverged from the "
                   "in-RAM baseline\n";
      return obs.finish(exit_code(ErrorCode::kInternal));
    }
    std::cout << "all budgeted runs byte-equivalent to the in-RAM baseline;\n"
                 "peak tracked memory stayed within budget + one slab "
                 "(the TLA MemoryInvariant) at every budget.\n";
    print_host_line();
    return obs.finish(0);
  });
}
