// SVC scaling: does the fleet coordinator scale the way a master–worker
// system should?
//
// Sokolinsky's BSF model (arXiv:1704.05816) gives the cost of a
// master–worker bulk-synchronous program as per-unit master overhead
// plus the parallelised work:
//     T(K) = S·o + ceil(S/K)·w
// for S work units (shards), K workers, per-shard work time w and
// per-shard master overhead o (lease grant, heartbeat watching, result
// merge). This bench runs the SAME sharded sweep under the coordinator
// at K = 1, 2, 4 workers, fits w from the K=1 run's per-shard elapsed
// times and o from its residual, and checks the measured K>1 wall
// clocks land within --band of the model's prediction — the coordinator
// is allowed protocol overhead, but not overhead that *grows* with
// worker count (which would read as a fleet that cannot scale).
//
// The bench is its own worker: re-invoked with --svc-lease it runs one
// shard of a uniform-scatter sweep (each point a pure function of its
// key, like every SweepRunner grid).
//
// Wall-clock timing is host-dependent, so the model check only arms
// when the K=1 fleet ran longer than --min-measure seconds (default
// 0.2); below that, timing noise dominates and the bench reports the
// table without gating. A violation exits 70 (internal invariant).

#include <algorithm>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "svc/coordinator.hpp"
#include "workload/patterns.hpp"

int main(int argc, char** argv) {
  using namespace dxbsp;
  return bench::guarded([&] {
    const util::Cli cli(argc, argv);
    const auto cfg = bench::machine_from_cli(cli);
    const std::uint64_t points = cli.get_uint("points", 12);
    const std::uint64_t n = cli.get_uint("n", 1 << 18);
    const std::uint64_t seed = cli.get_uint("seed", 1995);

    bench::Obs obs(cli, "SVC scaling",
                   "fleet wall clock vs the BSF master-worker model; " +
                       std::to_string(points) + " points, n = " +
                       std::to_string(n) + ", machine = " + cfg.name);

    std::vector<std::uint64_t> keys;
    for (std::uint64_t k = 0; k < points; ++k) keys.push_back(k);

    // Worker mode: run (a shard of) the sweep and return through the
    // lease protocol. The coordinator mode below spawns these.
    if (cli.has("svc-lease") || cli.has("shard")) {
      svc::WorkerContext worker;
      auto opt = bench::sweep_options_from_cli(cli);
      const std::uint64_t id = bench::apply_sharding(
          worker, cli,
          resilience::sweep_id("svc_scaling",
                               {points, n, seed, cfg.processors,
                                cfg.bank_delay}),
          keys, opt, obs);
      resilience::SweepRunner runner(id, std::move(opt));
      worker.begin(runner.token());
      const auto report = runner.run(keys, [&](std::uint64_t key) {
        const auto addrs =
            workload::uniform_random(n, 1ULL << 30, seed + key);
        sim::Machine machine(cfg);
        machine.set_cancel(&runner.token());
        obs.attach(machine, key);
        resilience::SnapshotRecord rec;
        rec.key = key;
        rec.rng_state = seed + key;
        rec.result = machine.scatter(addrs);
        return rec;
      });
      if (worker.active())
        return obs.finish(worker.finish(report, obs.info()));
      return obs.finish(bench::finish_sweep(report));
    }

    // Coordinator mode: the same fleet at increasing worker counts.
    const std::uint64_t shards = cli.get_uint("shards", 4);
    const double band = cli.get_double("band", 0.5);
    const double min_measure = cli.get_double("min-measure", 0.2);
    const std::string dir = cli.get("dir", "svc-scaling");
    const std::uint64_t hw =
        std::max(1u, std::thread::hardware_concurrency());

    // Run K beyond the core count too: workers then timeshare, so the
    // model's effective parallelism is min(K, cores) — measured time
    // should stay FLAT, and a coordinator whose own overhead grew with
    // K would still blow the band.
    std::vector<std::uint64_t> worker_counts;
    for (const std::uint64_t k : {1ULL, 2ULL, 4ULL})
      if (k <= shards) worker_counts.push_back(k);

    std::vector<std::string> worker_argv = {
        cli.program(), "--points=" + std::to_string(points),
        "--n=" + std::to_string(n), "--seed=" + std::to_string(seed)};
    if (!cli.get("machine", "").empty())
      worker_argv.push_back("--machine=" + cli.get("machine", ""));

    std::vector<double> measured;
    double w_fit = 0;  // mean per-shard work time, from K=1
    for (const std::uint64_t k : worker_counts) {
      svc::CoordinatorOptions copt;
      copt.worker_argv = worker_argv;
      copt.dir = dir + "-w" + std::to_string(k);
      copt.workers = k;
      copt.shards = shards;
      copt.heartbeat_timeout_seconds = cli.get_double("hb-timeout", 10.0);
      const svc::FleetReport fleet = svc::Coordinator(std::move(copt)).run();
      if (!fleet.ok())
        raise(ErrorCode::kInternal,
              "svc_scaling: fleet at K=" + std::to_string(k) +
                  " did not complete cleanly");
      measured.push_back(fleet.elapsed_seconds);
      if (k == 1) {
        double sum = 0;
        for (const double e : fleet.shard_elapsed_seconds) sum += e;
        w_fit = sum / static_cast<double>(shards);
      }
    }

    // Fit o from the K=1 residual: T(1) = S·o + S·w.
    const double t1 = measured.front();
    const double o_fit = std::max(
        0.0, (t1 - static_cast<double>(shards) * w_fit) /
                 static_cast<double>(shards));

    const bool armed = t1 >= min_measure;
    std::size_t violations = 0;
    util::Table t({"workers", "shards", "measured s", "model s",
                   "meas/model", "speedup"});
    for (std::size_t i = 0; i < worker_counts.size(); ++i) {
      const std::uint64_t k = worker_counts[i];
      const std::uint64_t eff = std::min(worker_counts[i], hw);
      const std::uint64_t rounds = (shards + eff - 1) / eff;  // ceil(S/K_eff)
      const double model = static_cast<double>(shards) * o_fit +
                           static_cast<double>(rounds) * w_fit;
      const double ratio = model > 0 ? measured[i] / model : 1.0;
      if (armed && std::abs(ratio - 1.0) > band) ++violations;
      t.add_row(k, shards, measured[i], model, ratio, t1 / measured[i]);
    }
    bench::emit(cli, t);
    std::cout << "BSF fit: w = " << w_fit << "s/shard, o = " << o_fit
              << "s/shard; band = " << band
              << (armed ? "" : "  (below --min-measure: model check "
                               "disarmed, table informational)")
              << "\n";
    if (violations > 0)
      raise(ErrorCode::kInternal,
            "svc_scaling: " + std::to_string(violations) +
                " worker count(s) outside the BSF model band " +
                std::to_string(band));
    return obs.finish();
  });
}
