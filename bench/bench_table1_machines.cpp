// Table 1: high-bandwidth machines provide (many) more memory banks than
// processors. Prints the simulator presets standing in for the paper's
// machine survey, with the derived expansion factor and the "natural"
// balanced expansion d/g each machine would need just to match
// processor bandwidth.

#include <iostream>

#include "bench_common.hpp"
#include "core/params.hpp"

int main(int argc, char** argv) {
  using namespace dxbsp;
  const util::Cli cli(argc, argv);
  bench::Obs obs(cli, "Table 1",
                "Machines with more memory banks than processors "
                "(simulator presets approximating the paper's survey)");

  util::Table t({"machine", "processors", "banks", "expansion x",
                 "bank delay d", "gap g", "balanced x = d/g"});
  for (const auto& cfg : sim::MachineConfig::table1_presets()) {
    const auto m = core::DxBspParams::from_config(cfg);
    t.add_row(cfg.name, cfg.processors, cfg.banks(), cfg.expansion,
              cfg.bank_delay, cfg.gap, m.balanced_expansion());
  }
  bench::emit(cli, t);

  std::cout << "Every preset has x >= d/g: the hardware supplies at least\n"
               "enough banks to match processor bandwidth, and (per the\n"
               "paper and bench_fig7_expansion) exceeding that still helps.\n";
  return obs.finish();
}
