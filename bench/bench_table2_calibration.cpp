// Table 2 (methodology): recovering the model parameters by probing.
//
// Before the model can predict anything, its parameters must be
// measured — the paper's Table-1 numbers were machine specs, but d, g
// and L are only meaningful as observed behaviour. This bench runs the
// black-box calibration (core::calibrate) against each preset and
// reports recovered vs configured values; agreement certifies that the
// simulated mechanism is the one the model describes, and the same
// probes would calibrate a real machine.

#include <iostream>

#include "bench_common.hpp"
#include "core/calibrate.hpp"
#include "sim/machine.hpp"

int main(int argc, char** argv) {
  using namespace dxbsp;
  const util::Cli cli(argc, argv);
  const std::uint64_t probe = cli.get_int("probe", 1 << 16);

  bench::Obs obs(cli, "Table 2 (calibration)",
                "Model parameters recovered by black-box probing vs the "
                "configured truth, per machine preset");

  util::Table t({"machine", "g (true)", "g (probed)", "L (true)",
                 "L (probed)", "d (true)", "d (probed)", "banks (true)",
                 "banks (probed)"});
  for (const auto& cfg : sim::MachineConfig::table1_presets()) {
    sim::Machine machine(cfg);
    obs.attach(machine);
    const auto cal = core::calibrate(machine, probe);
    t.add_row(cfg.name, cfg.gap, cal.g, cfg.latency, cal.L, cfg.bank_delay,
              cal.d, cfg.banks(), cal.banks);
  }
  bench::emit(cli, t);
  std::cout << "The probes: d from the all-one-address slope, L from a\n"
               "single round trip, B from the smallest collapsing stride,\n"
               "g from the spread-traffic slope — the same experiments\n"
               "one would run on real hardware (and, per the paper's\n"
               "Figure 1 story, the ones whose results forced d into the\n"
               "model in the first place).\n";
  return obs.finish();
}
