// Table 3: evaluation cost of the universal hash functions.
//
// The paper reports clock cycles per element on a C90 CPU for the
// linear, quadratic and cubic polynomial hashes. We report (a) the
// per-element operation counts of our implementations (the analytic
// analogue of the paper's column) and (b) measured ns/element on the
// host via google-benchmark. The relative ordering and rough ratios —
// linear cheapest, cubic roughly 2-3x linear — are what carries over
// from the paper's machine.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "mem/hash.hpp"
#include "util/rng.hpp"

namespace {

using dxbsp::mem::HashDegree;
using dxbsp::mem::PolynomialHash;

void bm_hash(benchmark::State& state, HashDegree degree) {
  dxbsp::util::Xoshiro256 rng(42);
  const PolynomialHash h(degree, 32, rng);
  std::vector<std::uint64_t> xs(1 << 16);
  for (auto& x : xs) x = rng();
  for (auto _ : state) {
    std::uint64_t acc = 0;
    for (const auto x : xs) acc ^= h(x);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(xs.size()));
}

void register_all() {
  benchmark::RegisterBenchmark("hash/linear", bm_hash, HashDegree::kLinear);
  benchmark::RegisterBenchmark("hash/quadratic", bm_hash,
                               HashDegree::kQuadratic);
  benchmark::RegisterBenchmark("hash/cubic", bm_hash, HashDegree::kCubic);
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== Table 3 ===\n");
  std::printf(
      "Evaluation cost of pseudo-random mapping hash functions.\n"
      "Analytic per-element operation counts (mul/add/shift):\n");
  dxbsp::util::Xoshiro256 rng(1);
  for (const auto deg :
       {HashDegree::kLinear, HashDegree::kQuadratic, HashDegree::kCubic}) {
    const PolynomialHash h(deg, 32, rng);
    std::printf("  %-10s : %u ops/element\n",
                dxbsp::mem::to_string(deg).c_str(), h.op_count());
  }
  std::printf("\nMeasured host throughput (items/s; see items_per_second):\n");

  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
