file(REMOVE_RECURSE
  "CMakeFiles/bench_a10_vpu.dir/bench_a10_vpu.cpp.o"
  "CMakeFiles/bench_a10_vpu.dir/bench_a10_vpu.cpp.o.d"
  "bench_a10_vpu"
  "bench_a10_vpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a10_vpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
