# Empty compiler generated dependencies file for bench_a10_vpu.
# This may be replaced when dependencies are built.
