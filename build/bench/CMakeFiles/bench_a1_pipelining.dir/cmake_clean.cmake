file(REMOVE_RECURSE
  "CMakeFiles/bench_a1_pipelining.dir/bench_a1_pipelining.cpp.o"
  "CMakeFiles/bench_a1_pipelining.dir/bench_a1_pipelining.cpp.o.d"
  "bench_a1_pipelining"
  "bench_a1_pipelining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a1_pipelining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
