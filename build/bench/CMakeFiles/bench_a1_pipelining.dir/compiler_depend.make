# Empty compiler generated dependencies file for bench_a1_pipelining.
# This may be replaced when dependencies are built.
