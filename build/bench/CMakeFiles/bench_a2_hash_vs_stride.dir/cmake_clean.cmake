file(REMOVE_RECURSE
  "CMakeFiles/bench_a2_hash_vs_stride.dir/bench_a2_hash_vs_stride.cpp.o"
  "CMakeFiles/bench_a2_hash_vs_stride.dir/bench_a2_hash_vs_stride.cpp.o.d"
  "bench_a2_hash_vs_stride"
  "bench_a2_hash_vs_stride.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a2_hash_vs_stride.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
