# Empty compiler generated dependencies file for bench_a2_hash_vs_stride.
# This may be replaced when dependencies are built.
