file(REMOVE_RECURSE
  "CMakeFiles/bench_a3_slackness.dir/bench_a3_slackness.cpp.o"
  "CMakeFiles/bench_a3_slackness.dir/bench_a3_slackness.cpp.o.d"
  "bench_a3_slackness"
  "bench_a3_slackness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a3_slackness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
