file(REMOVE_RECURSE
  "CMakeFiles/bench_a4_models.dir/bench_a4_models.cpp.o"
  "CMakeFiles/bench_a4_models.dir/bench_a4_models.cpp.o.d"
  "bench_a4_models"
  "bench_a4_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a4_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
