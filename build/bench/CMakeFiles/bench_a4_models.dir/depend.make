# Empty dependencies file for bench_a4_models.
# This may be replaced when dependencies are built.
