file(REMOVE_RECURSE
  "CMakeFiles/bench_a5_refinements.dir/bench_a5_refinements.cpp.o"
  "CMakeFiles/bench_a5_refinements.dir/bench_a5_refinements.cpp.o.d"
  "bench_a5_refinements"
  "bench_a5_refinements.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a5_refinements.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
