# Empty dependencies file for bench_a5_refinements.
# This may be replaced when dependencies are built.
