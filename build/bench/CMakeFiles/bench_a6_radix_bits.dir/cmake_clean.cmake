file(REMOVE_RECURSE
  "CMakeFiles/bench_a6_radix_bits.dir/bench_a6_radix_bits.cpp.o"
  "CMakeFiles/bench_a6_radix_bits.dir/bench_a6_radix_bits.cpp.o.d"
  "bench_a6_radix_bits"
  "bench_a6_radix_bits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a6_radix_bits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
