# Empty dependencies file for bench_a6_radix_bits.
# This may be replaced when dependencies are built.
