file(REMOVE_RECURSE
  "CMakeFiles/bench_a7_distribution.dir/bench_a7_distribution.cpp.o"
  "CMakeFiles/bench_a7_distribution.dir/bench_a7_distribution.cpp.o.d"
  "bench_a7_distribution"
  "bench_a7_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a7_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
