file(REMOVE_RECURSE
  "CMakeFiles/bench_a8_algorithm_knobs.dir/bench_a8_algorithm_knobs.cpp.o"
  "CMakeFiles/bench_a8_algorithm_knobs.dir/bench_a8_algorithm_knobs.cpp.o.d"
  "bench_a8_algorithm_knobs"
  "bench_a8_algorithm_knobs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a8_algorithm_knobs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
