# Empty compiler generated dependencies file for bench_a8_algorithm_knobs.
# This may be replaced when dependencies are built.
