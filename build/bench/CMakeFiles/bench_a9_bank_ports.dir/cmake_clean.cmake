file(REMOVE_RECURSE
  "CMakeFiles/bench_a9_bank_ports.dir/bench_a9_bank_ports.cpp.o"
  "CMakeFiles/bench_a9_bank_ports.dir/bench_a9_bank_ports.cpp.o.d"
  "bench_a9_bank_ports"
  "bench_a9_bank_ports.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a9_bank_ports.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
