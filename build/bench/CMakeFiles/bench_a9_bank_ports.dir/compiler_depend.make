# Empty compiler generated dependencies file for bench_a9_bank_ports.
# This may be replaced when dependencies are built.
