file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_emulation.dir/bench_fig10_emulation.cpp.o"
  "CMakeFiles/bench_fig10_emulation.dir/bench_fig10_emulation.cpp.o.d"
  "bench_fig10_emulation"
  "bench_fig10_emulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_emulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
