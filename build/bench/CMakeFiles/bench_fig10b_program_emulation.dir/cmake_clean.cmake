file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10b_program_emulation.dir/bench_fig10b_program_emulation.cpp.o"
  "CMakeFiles/bench_fig10b_program_emulation.dir/bench_fig10b_program_emulation.cpp.o.d"
  "bench_fig10b_program_emulation"
  "bench_fig10b_program_emulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10b_program_emulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
