# Empty dependencies file for bench_fig10b_program_emulation.
# This may be replaced when dependencies are built.
