file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_random_perm.dir/bench_fig11_random_perm.cpp.o"
  "CMakeFiles/bench_fig11_random_perm.dir/bench_fig11_random_perm.cpp.o.d"
  "bench_fig11_random_perm"
  "bench_fig11_random_perm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_random_perm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
