# Empty compiler generated dependencies file for bench_fig11b_binary_search.
# This may be replaced when dependencies are built.
