file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_spmv.dir/bench_fig12_spmv.cpp.o"
  "CMakeFiles/bench_fig12_spmv.dir/bench_fig12_spmv.cpp.o.d"
  "bench_fig12_spmv"
  "bench_fig12_spmv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_spmv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
