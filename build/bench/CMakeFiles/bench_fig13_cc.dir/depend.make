# Empty dependencies file for bench_fig13_cc.
# This may be replaced when dependencies are built.
