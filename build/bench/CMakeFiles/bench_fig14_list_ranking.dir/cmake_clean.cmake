file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_list_ranking.dir/bench_fig14_list_ranking.cpp.o"
  "CMakeFiles/bench_fig14_list_ranking.dir/bench_fig14_list_ranking.cpp.o.d"
  "bench_fig14_list_ranking"
  "bench_fig14_list_ranking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_list_ranking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
