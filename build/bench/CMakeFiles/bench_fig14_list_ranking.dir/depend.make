# Empty dependencies file for bench_fig14_list_ranking.
# This may be replaced when dependencies are built.
