file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_multiprefix.dir/bench_fig15_multiprefix.cpp.o"
  "CMakeFiles/bench_fig15_multiprefix.dir/bench_fig15_multiprefix.cpp.o.d"
  "bench_fig15_multiprefix"
  "bench_fig15_multiprefix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_multiprefix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
