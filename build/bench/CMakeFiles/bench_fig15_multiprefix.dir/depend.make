# Empty dependencies file for bench_fig15_multiprefix.
# This may be replaced when dependencies are built.
