file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_collectives.dir/bench_fig16_collectives.cpp.o"
  "CMakeFiles/bench_fig16_collectives.dir/bench_fig16_collectives.cpp.o.d"
  "bench_fig16_collectives"
  "bench_fig16_collectives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_collectives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
