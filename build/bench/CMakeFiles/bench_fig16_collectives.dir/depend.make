# Empty dependencies file for bench_fig16_collectives.
# This may be replaced when dependencies are built.
