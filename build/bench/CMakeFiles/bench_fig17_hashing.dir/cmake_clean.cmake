file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_hashing.dir/bench_fig17_hashing.cpp.o"
  "CMakeFiles/bench_fig17_hashing.dir/bench_fig17_hashing.cpp.o.d"
  "bench_fig17_hashing"
  "bench_fig17_hashing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_hashing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
