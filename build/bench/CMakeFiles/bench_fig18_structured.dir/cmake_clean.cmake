file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_structured.dir/bench_fig18_structured.cpp.o"
  "CMakeFiles/bench_fig18_structured.dir/bench_fig18_structured.cpp.o.d"
  "bench_fig18_structured"
  "bench_fig18_structured.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_structured.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
