# Empty dependencies file for bench_fig18_structured.
# This may be replaced when dependencies are built.
