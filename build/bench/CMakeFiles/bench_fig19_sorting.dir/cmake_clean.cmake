file(REMOVE_RECURSE
  "CMakeFiles/bench_fig19_sorting.dir/bench_fig19_sorting.cpp.o"
  "CMakeFiles/bench_fig19_sorting.dir/bench_fig19_sorting.cpp.o.d"
  "bench_fig19_sorting"
  "bench_fig19_sorting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_sorting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
