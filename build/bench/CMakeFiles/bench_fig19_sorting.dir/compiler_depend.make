# Empty compiler generated dependencies file for bench_fig19_sorting.
# This may be replaced when dependencies are built.
