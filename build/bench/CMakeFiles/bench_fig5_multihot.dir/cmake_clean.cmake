file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_multihot.dir/bench_fig5_multihot.cpp.o"
  "CMakeFiles/bench_fig5_multihot.dir/bench_fig5_multihot.cpp.o.d"
  "bench_fig5_multihot"
  "bench_fig5_multihot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_multihot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
