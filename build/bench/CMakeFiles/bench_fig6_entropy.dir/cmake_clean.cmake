file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_entropy.dir/bench_fig6_entropy.cpp.o"
  "CMakeFiles/bench_fig6_entropy.dir/bench_fig6_entropy.cpp.o.d"
  "bench_fig6_entropy"
  "bench_fig6_entropy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_entropy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
