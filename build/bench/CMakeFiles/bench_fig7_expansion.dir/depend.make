# Empty dependencies file for bench_fig7_expansion.
# This may be replaced when dependencies are built.
