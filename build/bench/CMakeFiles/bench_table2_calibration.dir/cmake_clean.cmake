file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_calibration.dir/bench_table2_calibration.cpp.o"
  "CMakeFiles/bench_table2_calibration.dir/bench_table2_calibration.cpp.o.d"
  "bench_table2_calibration"
  "bench_table2_calibration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
