file(REMOVE_RECURSE
  "CMakeFiles/sorting_comparison.dir/sorting_comparison.cpp.o"
  "CMakeFiles/sorting_comparison.dir/sorting_comparison.cpp.o.d"
  "sorting_comparison"
  "sorting_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sorting_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
