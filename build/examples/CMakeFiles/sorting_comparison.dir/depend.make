# Empty dependencies file for sorting_comparison.
# This may be replaced when dependencies are built.
