file(REMOVE_RECURSE
  "CMakeFiles/spmv_analysis.dir/spmv_analysis.cpp.o"
  "CMakeFiles/spmv_analysis.dir/spmv_analysis.cpp.o.d"
  "spmv_analysis"
  "spmv_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spmv_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
