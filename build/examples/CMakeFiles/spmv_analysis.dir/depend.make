# Empty dependencies file for spmv_analysis.
# This may be replaced when dependencies are built.
