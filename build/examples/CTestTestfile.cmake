# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(paper_tour "/root/repo/build/examples/paper_tour" "--n=65536")
set_tests_properties(paper_tour PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
