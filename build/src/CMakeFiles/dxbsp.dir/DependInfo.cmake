
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algos/binary_search.cpp" "src/CMakeFiles/dxbsp.dir/algos/binary_search.cpp.o" "gcc" "src/CMakeFiles/dxbsp.dir/algos/binary_search.cpp.o.d"
  "/root/repo/src/algos/collectives.cpp" "src/CMakeFiles/dxbsp.dir/algos/collectives.cpp.o" "gcc" "src/CMakeFiles/dxbsp.dir/algos/collectives.cpp.o.d"
  "/root/repo/src/algos/connected_components.cpp" "src/CMakeFiles/dxbsp.dir/algos/connected_components.cpp.o" "gcc" "src/CMakeFiles/dxbsp.dir/algos/connected_components.cpp.o.d"
  "/root/repo/src/algos/kernels.cpp" "src/CMakeFiles/dxbsp.dir/algos/kernels.cpp.o" "gcc" "src/CMakeFiles/dxbsp.dir/algos/kernels.cpp.o.d"
  "/root/repo/src/algos/list_ranking.cpp" "src/CMakeFiles/dxbsp.dir/algos/list_ranking.cpp.o" "gcc" "src/CMakeFiles/dxbsp.dir/algos/list_ranking.cpp.o.d"
  "/root/repo/src/algos/merge.cpp" "src/CMakeFiles/dxbsp.dir/algos/merge.cpp.o" "gcc" "src/CMakeFiles/dxbsp.dir/algos/merge.cpp.o.d"
  "/root/repo/src/algos/multiprefix.cpp" "src/CMakeFiles/dxbsp.dir/algos/multiprefix.cpp.o" "gcc" "src/CMakeFiles/dxbsp.dir/algos/multiprefix.cpp.o.d"
  "/root/repo/src/algos/parallel_hashing.cpp" "src/CMakeFiles/dxbsp.dir/algos/parallel_hashing.cpp.o" "gcc" "src/CMakeFiles/dxbsp.dir/algos/parallel_hashing.cpp.o.d"
  "/root/repo/src/algos/primitives.cpp" "src/CMakeFiles/dxbsp.dir/algos/primitives.cpp.o" "gcc" "src/CMakeFiles/dxbsp.dir/algos/primitives.cpp.o.d"
  "/root/repo/src/algos/radix_sort.cpp" "src/CMakeFiles/dxbsp.dir/algos/radix_sort.cpp.o" "gcc" "src/CMakeFiles/dxbsp.dir/algos/radix_sort.cpp.o.d"
  "/root/repo/src/algos/random_permutation.cpp" "src/CMakeFiles/dxbsp.dir/algos/random_permutation.cpp.o" "gcc" "src/CMakeFiles/dxbsp.dir/algos/random_permutation.cpp.o.d"
  "/root/repo/src/algos/scan.cpp" "src/CMakeFiles/dxbsp.dir/algos/scan.cpp.o" "gcc" "src/CMakeFiles/dxbsp.dir/algos/scan.cpp.o.d"
  "/root/repo/src/algos/spmv.cpp" "src/CMakeFiles/dxbsp.dir/algos/spmv.cpp.o" "gcc" "src/CMakeFiles/dxbsp.dir/algos/spmv.cpp.o.d"
  "/root/repo/src/algos/vm.cpp" "src/CMakeFiles/dxbsp.dir/algos/vm.cpp.o" "gcc" "src/CMakeFiles/dxbsp.dir/algos/vm.cpp.o.d"
  "/root/repo/src/core/access_profile.cpp" "src/CMakeFiles/dxbsp.dir/core/access_profile.cpp.o" "gcc" "src/CMakeFiles/dxbsp.dir/core/access_profile.cpp.o.d"
  "/root/repo/src/core/balls_bins.cpp" "src/CMakeFiles/dxbsp.dir/core/balls_bins.cpp.o" "gcc" "src/CMakeFiles/dxbsp.dir/core/balls_bins.cpp.o.d"
  "/root/repo/src/core/calibrate.cpp" "src/CMakeFiles/dxbsp.dir/core/calibrate.cpp.o" "gcc" "src/CMakeFiles/dxbsp.dir/core/calibrate.cpp.o.d"
  "/root/repo/src/core/design.cpp" "src/CMakeFiles/dxbsp.dir/core/design.cpp.o" "gcc" "src/CMakeFiles/dxbsp.dir/core/design.cpp.o.d"
  "/root/repo/src/core/ledger.cpp" "src/CMakeFiles/dxbsp.dir/core/ledger.cpp.o" "gcc" "src/CMakeFiles/dxbsp.dir/core/ledger.cpp.o.d"
  "/root/repo/src/core/lightly_loaded.cpp" "src/CMakeFiles/dxbsp.dir/core/lightly_loaded.cpp.o" "gcc" "src/CMakeFiles/dxbsp.dir/core/lightly_loaded.cpp.o.d"
  "/root/repo/src/core/predictor.cpp" "src/CMakeFiles/dxbsp.dir/core/predictor.cpp.o" "gcc" "src/CMakeFiles/dxbsp.dir/core/predictor.cpp.o.d"
  "/root/repo/src/mem/bank_mapping.cpp" "src/CMakeFiles/dxbsp.dir/mem/bank_mapping.cpp.o" "gcc" "src/CMakeFiles/dxbsp.dir/mem/bank_mapping.cpp.o.d"
  "/root/repo/src/mem/contention.cpp" "src/CMakeFiles/dxbsp.dir/mem/contention.cpp.o" "gcc" "src/CMakeFiles/dxbsp.dir/mem/contention.cpp.o.d"
  "/root/repo/src/mem/hash.cpp" "src/CMakeFiles/dxbsp.dir/mem/hash.cpp.o" "gcc" "src/CMakeFiles/dxbsp.dir/mem/hash.cpp.o.d"
  "/root/repo/src/qrqw/emulation.cpp" "src/CMakeFiles/dxbsp.dir/qrqw/emulation.cpp.o" "gcc" "src/CMakeFiles/dxbsp.dir/qrqw/emulation.cpp.o.d"
  "/root/repo/src/qrqw/extract.cpp" "src/CMakeFiles/dxbsp.dir/qrqw/extract.cpp.o" "gcc" "src/CMakeFiles/dxbsp.dir/qrqw/extract.cpp.o.d"
  "/root/repo/src/qrqw/program.cpp" "src/CMakeFiles/dxbsp.dir/qrqw/program.cpp.o" "gcc" "src/CMakeFiles/dxbsp.dir/qrqw/program.cpp.o.d"
  "/root/repo/src/qrqw/step.cpp" "src/CMakeFiles/dxbsp.dir/qrqw/step.cpp.o" "gcc" "src/CMakeFiles/dxbsp.dir/qrqw/step.cpp.o.d"
  "/root/repo/src/qrqw/theory.cpp" "src/CMakeFiles/dxbsp.dir/qrqw/theory.cpp.o" "gcc" "src/CMakeFiles/dxbsp.dir/qrqw/theory.cpp.o.d"
  "/root/repo/src/sim/bank_array.cpp" "src/CMakeFiles/dxbsp.dir/sim/bank_array.cpp.o" "gcc" "src/CMakeFiles/dxbsp.dir/sim/bank_array.cpp.o.d"
  "/root/repo/src/sim/machine.cpp" "src/CMakeFiles/dxbsp.dir/sim/machine.cpp.o" "gcc" "src/CMakeFiles/dxbsp.dir/sim/machine.cpp.o.d"
  "/root/repo/src/sim/machine_config.cpp" "src/CMakeFiles/dxbsp.dir/sim/machine_config.cpp.o" "gcc" "src/CMakeFiles/dxbsp.dir/sim/machine_config.cpp.o.d"
  "/root/repo/src/sim/network.cpp" "src/CMakeFiles/dxbsp.dir/sim/network.cpp.o" "gcc" "src/CMakeFiles/dxbsp.dir/sim/network.cpp.o.d"
  "/root/repo/src/stats/compare.cpp" "src/CMakeFiles/dxbsp.dir/stats/compare.cpp.o" "gcc" "src/CMakeFiles/dxbsp.dir/stats/compare.cpp.o.d"
  "/root/repo/src/stats/histogram.cpp" "src/CMakeFiles/dxbsp.dir/stats/histogram.cpp.o" "gcc" "src/CMakeFiles/dxbsp.dir/stats/histogram.cpp.o.d"
  "/root/repo/src/util/cli.cpp" "src/CMakeFiles/dxbsp.dir/util/cli.cpp.o" "gcc" "src/CMakeFiles/dxbsp.dir/util/cli.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/dxbsp.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/dxbsp.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/dxbsp.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/dxbsp.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/dxbsp.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/dxbsp.dir/util/table.cpp.o.d"
  "/root/repo/src/util/thread_pool.cpp" "src/CMakeFiles/dxbsp.dir/util/thread_pool.cpp.o" "gcc" "src/CMakeFiles/dxbsp.dir/util/thread_pool.cpp.o.d"
  "/root/repo/src/vpu/core.cpp" "src/CMakeFiles/dxbsp.dir/vpu/core.cpp.o" "gcc" "src/CMakeFiles/dxbsp.dir/vpu/core.cpp.o.d"
  "/root/repo/src/workload/entropy.cpp" "src/CMakeFiles/dxbsp.dir/workload/entropy.cpp.o" "gcc" "src/CMakeFiles/dxbsp.dir/workload/entropy.cpp.o.d"
  "/root/repo/src/workload/graphs.cpp" "src/CMakeFiles/dxbsp.dir/workload/graphs.cpp.o" "gcc" "src/CMakeFiles/dxbsp.dir/workload/graphs.cpp.o.d"
  "/root/repo/src/workload/patterns.cpp" "src/CMakeFiles/dxbsp.dir/workload/patterns.cpp.o" "gcc" "src/CMakeFiles/dxbsp.dir/workload/patterns.cpp.o.d"
  "/root/repo/src/workload/sparse.cpp" "src/CMakeFiles/dxbsp.dir/workload/sparse.cpp.o" "gcc" "src/CMakeFiles/dxbsp.dir/workload/sparse.cpp.o.d"
  "/root/repo/src/workload/trace_io.cpp" "src/CMakeFiles/dxbsp.dir/workload/trace_io.cpp.o" "gcc" "src/CMakeFiles/dxbsp.dir/workload/trace_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
