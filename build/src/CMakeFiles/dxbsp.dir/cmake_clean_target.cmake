file(REMOVE_RECURSE
  "libdxbsp.a"
)
