# Empty compiler generated dependencies file for dxbsp.
# This may be replaced when dependencies are built.
