file(REMOVE_RECURSE
  "CMakeFiles/algos2_test.dir/algos2_test.cpp.o"
  "CMakeFiles/algos2_test.dir/algos2_test.cpp.o.d"
  "algos2_test"
  "algos2_test.pdb"
  "algos2_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algos2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
