# Empty compiler generated dependencies file for algos2_test.
# This may be replaced when dependencies are built.
