file(REMOVE_RECURSE
  "CMakeFiles/algos3_test.dir/algos3_test.cpp.o"
  "CMakeFiles/algos3_test.dir/algos3_test.cpp.o.d"
  "algos3_test"
  "algos3_test.pdb"
  "algos3_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algos3_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
