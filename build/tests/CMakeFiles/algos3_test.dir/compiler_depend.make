# Empty compiler generated dependencies file for algos3_test.
# This may be replaced when dependencies are built.
