# Empty dependencies file for core_ext_test.
# This may be replaced when dependencies are built.
