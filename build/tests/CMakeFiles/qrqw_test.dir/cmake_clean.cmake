file(REMOVE_RECURSE
  "CMakeFiles/qrqw_test.dir/qrqw_test.cpp.o"
  "CMakeFiles/qrqw_test.dir/qrqw_test.cpp.o.d"
  "qrqw_test"
  "qrqw_test.pdb"
  "qrqw_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qrqw_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
