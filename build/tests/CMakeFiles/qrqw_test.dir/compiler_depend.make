# Empty compiler generated dependencies file for qrqw_test.
# This may be replaced when dependencies are built.
