file(REMOVE_RECURSE
  "CMakeFiles/sim_features_test.dir/sim_features_test.cpp.o"
  "CMakeFiles/sim_features_test.dir/sim_features_test.cpp.o.d"
  "sim_features_test"
  "sim_features_test.pdb"
  "sim_features_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_features_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
