file(REMOVE_RECURSE
  "CMakeFiles/vpu_test.dir/vpu_test.cpp.o"
  "CMakeFiles/vpu_test.dir/vpu_test.cpp.o.d"
  "vpu_test"
  "vpu_test.pdb"
  "vpu_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
