# Empty compiler generated dependencies file for vpu_test.
# This may be replaced when dependencies are built.
