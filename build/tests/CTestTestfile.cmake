# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/mem_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/qrqw_test[1]_include.cmake")
include("/root/repo/build/tests/algos_test[1]_include.cmake")
include("/root/repo/build/tests/algos2_test[1]_include.cmake")
include("/root/repo/build/tests/algos3_test[1]_include.cmake")
include("/root/repo/build/tests/kernels_test[1]_include.cmake")
include("/root/repo/build/tests/vpu_test[1]_include.cmake")
include("/root/repo/build/tests/network_test[1]_include.cmake")
include("/root/repo/build/tests/merge_test[1]_include.cmake")
include("/root/repo/build/tests/calibrate_test[1]_include.cmake")
include("/root/repo/build/tests/sim_features_test[1]_include.cmake")
include("/root/repo/build/tests/core_ext_test[1]_include.cmake")
include("/root/repo/build/tests/scan_test[1]_include.cmake")
include("/root/repo/build/tests/extract_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
