// machine_explorer: find the expansion factor a workload actually needs.
//
// Sweeps the number of banks for a user-described workload (request
// volume + hottest-location contention) and reports where adding banks
// stops paying — the paper's design question ("how many banks should a
// machine with bank delay d provide?") answered per-workload. Uses both
// the analytic balls-in-bins model and the simulator.
//
//   ./machine_explorer [--n=1048576] [--k=1024] [--d=14] [--p=8]
//                      [--faults=slow=0.25,slow-mult=4,drop=0.01,...]
//                      [--cache=LINES] [--cache-line=WORDS]
//                      [--cache-write=through|back]
//                      [--explain] [--trace=PATH] [--trace-capacity=N]
//                      [--metrics=PATH]
//
// With --cache= every sweep point runs behind a per-processor cache
// tier of that many lines (docs/cache.md); the --explain table then
// shows the cache_hit term and scores each point against the
// hit-ratio-corrected predictor.
//
// With --faults= the sweep runs against a seeded fault plan
// (see fault::FaultConfig::parse for the key set) and reports the
// degraded telemetry next to the healthy prediction.
//
// --explain prints a second table decomposing each sweep point's
// makespan into the attribution terms (docs/observability.md
// §attribution) next to the model prediction it is scored against —
// the per-superstep view of where the cycles went.
//
// --trace writes a Chrome trace_event JSON of every simulated sweep
// point (one track per expansion x; open in Perfetto), --trace-capacity
// bounds the retained events per track (default 65536, must be > 0),
// and --metrics dumps the full metrics registry (docs/observability.md).

#include <iostream>
#include <memory>

#include "core/balls_bins.hpp"
#include "resilience/error.hpp"
#include "core/predictor.hpp"
#include "fault/fault_plan.hpp"
#include "obs/drift.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "sim/machine.hpp"
#include "stats/degraded.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/patterns.hpp"

static int run(int argc, char** argv);

int main(int argc, char** argv) {
  using namespace dxbsp;
  try {
    return run(argc, argv);
  } catch (const Error& e) {
    // Structured diagnostics: a bad flag, fault spec, or config exits
    // with the taxonomy's code instead of an unhandled-exception abort.
    std::cerr << "error: " << e.what() << "\n";
    return exit_code(e.code());
  }
}

static int run(int argc, char** argv) {
  using namespace dxbsp;
  const util::Cli cli(argc, argv);
  const std::uint64_t n = cli.get_int("n", 1 << 18);
  const std::uint64_t k = cli.get_int("k", 1 << 10);
  const std::uint64_t d = cli.get_int("d", 14);
  const std::uint64_t p = cli.get_int("p", 8);
  const std::string fault_spec = cli.get("faults", "");
  const bool faulty = !fault_spec.empty();
  fault::FaultConfig fc;
  if (faulty) fc = fault::FaultConfig::parse(fault_spec);
  const std::string trace_path = cli.get("trace", "");
  const std::string metrics_path = cli.get("metrics", "");
  const bool explain = cli.has("explain");
  // Strict parse (trailing garbage / negatives raise kParse naming the
  // flag); 0 would silently drop every event, so reject it loudly too.
  const std::uint64_t trace_capacity =
      cli.get_uint("trace-capacity", std::uint64_t{1} << 16);
  if (trace_capacity == 0)
    raise(ErrorCode::kConfig,
          "--trace-capacity must be > 0 (0 would retain no events)");
  std::unique_ptr<obs::Tracer> tracer;
  if (!trace_path.empty())
    tracer = std::make_unique<obs::Tracer>(
        static_cast<std::size_t>(trace_capacity));
  obs::MetricsRegistry::global().reset();

  std::cout << "Workload: n = " << n << " requests, hottest location k = "
            << k << "; machine: p = " << p << ", g = 1, d = " << d << "\n";
  if (faulty)
    std::cout << "Faults: " << fault_spec
              << " (seeded plan; see docs/faults.md)\n";
  std::cout << "\n";

  const auto addrs = workload::k_hot(n, k, 1ULL << 30, /*seed=*/21);
  util::Table t(
      faulty ? std::vector<std::string>{"x", "banks", "sim cycles",
                                        "degraded pred", "retries",
                                        "failovers", "marginal speedup",
                                        "verdict"}
             : std::vector<std::string>{"x", "banks", "sim cycles", "dxbsp",
                                        "marginal speedup", "verdict"});
  util::Table ex({"x", "cycles", "issue_gap", "window_stall", "latency",
                  "bank_service", "retry_backoff", "failover", "cache_hit",
                  "k", "bank p50", "bank p99", "bank max", "predicted",
                  "rel err"});
  std::uint64_t prev = 0;
  std::uint64_t chosen = 0;
  for (std::uint64_t x = 1; x <= 256; x *= 2) {
    sim::MachineConfig cfg;
    cfg.name = "explore";
    cfg.processors = p;
    cfg.gap = 1;
    cfg.latency = 30;
    cfg.bank_delay = d;
    cfg.expansion = x;
    cfg.slackness = 64 * 1024;
    cfg.cache.capacity = cli.get_uint("cache", 0);
    cfg.cache.line_words = cli.get_uint("cache-line", 8);
    if (cli.has("cache-write"))
      cfg.cache.write = cli.get("cache-write", "through") == "back"
                            ? cache::WritePolicy::kBack
                            : cache::WritePolicy::kThrough;
    cfg.validate();
    sim::Machine machine(cfg);
    if (tracer) machine.set_tracer(&tracer->track(x));
    sim::BulkResult meas;
    std::string status;
    std::uint64_t degraded_pred = 0;
    std::shared_ptr<fault::FaultPlan> plan;
    if (faulty) {
      plan = std::make_shared<fault::FaultPlan>(fc, cfg.banks());
      machine.inject(plan);
      auto out = machine.scatter_faulty(addrs);
      meas = out.bulk;
      status = out.ok() ? "" : " [DEGRADED]";
      degraded_pred = static_cast<std::uint64_t>(
          stats::predict_degraded(cfg, *plan, n).cycles);
    } else {
      meas = machine.scatter(addrs);
    }
    if (explain) {
      const obs::CacheObserved co{meas.cache_hits, meas.cache_misses,
                                  meas.max_proc_miss};
      const double predicted = obs::drift_prediction(
          cfg, plan.get(), n, meas.max_proc_requests, meas.max_bank_load,
          meas.max_location_contention, &co);
      const double rel_err =
          predicted > 0.0
              ? static_cast<double>(meas.cycles) / predicted - 1.0
              : 0.0;
      const obs::CostBreakdown& b = meas.breakdown;
      ex.add_row(x, meas.cycles, b.issue_gap, b.window_stall, b.latency,
                 b.bank_service, b.retry_backoff, b.failover, b.cache_hit,
                 meas.max_location_contention, meas.bank_sketch.p50(),
                 meas.bank_sketch.p99(), meas.bank_sketch.max, predicted,
                 rel_err);
    }
    const auto pred = core::predict_scatter(addrs, cfg, &machine.mapping());
    const double marginal =
        prev == 0 ? 1.0
                  : static_cast<double>(prev) /
                        static_cast<double>(meas.cycles);
    const bool worth = marginal > 1.02;
    if (!worth && chosen == 0 && prev != 0) chosen = x / 2;
    const std::string verdict =
        (prev == 0 ? std::string("-")
                   : (worth ? "still paying" : "diminishing")) +
        status;
    if (faulty) {
      t.add_row(x, cfg.banks(), meas.cycles, degraded_pred, meas.retries,
                meas.failovers, marginal, verdict);
    } else {
      t.add_row(x, cfg.banks(), meas.cycles, pred.dxbsp_mapped, marginal,
                verdict);
    }
    prev = meas.cycles;
  }
  t.print(std::cout);

  if (explain) {
    std::cout << "\nCost attribution per sweep point (cycles; terms sum to "
                 "the measured makespan,\nprediction per "
                 "docs/observability.md §drift):\n";
    ex.print(std::cout);
  }

  if (chosen == 0) chosen = 256;
  std::cout << "\nrecommended expansion for this workload: x ~ " << chosen
            << " (natural balance point would be x = d/g = " << d << ")\n"
            << "analytic limit for pure-random patterns: x = "
            << core::effective_expansion_limit(n, p, 1, d, 1024) << "\n"
            << "note: location contention k caps what banks can do — the "
               "d*k term\nis mapping-independent, so past the balance point "
               "the win comes only\nfrom thinning the random module-map "
               "tail.\n";

  if (tracer)
    obs::write_file(trace_path,
                    [&](std::ostream& os) { tracer->write_chrome_json(os); });
  if (!metrics_path.empty())
    obs::write_file(metrics_path, [&](std::ostream& os) {
      obs::MetricsRegistry::global().write_json(os, /*include_host=*/true);
    });
  return 0;
}
