// paper_tour: the whole paper in one run.
//
// Executes a miniature version of every headline claim — model validity,
// the contention knee, expansion beyond d, safe random mappings, the
// QRQW emulation regimes, and QRQW-beats-EREW — printing one PASS/FAIL
// verdict per claim. A smoke test of the reproduction and a guided tour
// of the library's API surface in ~150 lines. Exits nonzero if any
// claim fails.
//
//   ./paper_tour [--n=131072]

#include <iostream>

#include "algos/random_permutation.hpp"
#include "algos/vm.hpp"
#include "core/balls_bins.hpp"
#include "core/predictor.hpp"
#include "qrqw/emulation.hpp"
#include "qrqw/program.hpp"
#include "sim/machine.hpp"
#include "util/cli.hpp"
#include "workload/patterns.hpp"

namespace {
int failures = 0;
void verdict(const char* claim, bool ok, const std::string& detail) {
  std::cout << (ok ? "  PASS  " : "  FAIL  ") << claim << "  [" << detail
            << "]\n";
  if (!ok) ++failures;
}
}  // namespace

int main(int argc, char** argv) {
  using namespace dxbsp;
  const util::Cli cli(argc, argv);
  const std::uint64_t n = cli.get_int("n", 1 << 17);
  const std::uint64_t seed = cli.get_int("seed", 1995);
  const auto cfg = sim::MachineConfig::cray_j90();

  std::cout << "=== Accounting for Memory Bank Contention and Delay —\n"
               "    the paper's claims, re-run on " << cfg.name
            << " (n = " << n << ") ===\n\n";

  // Claim 1: the (d,x)-BSP predicts contended scatters; BSP does not.
  {
    sim::Machine machine(cfg);
    const auto addrs = workload::k_hot(n, n / 4, 1ULL << 30, seed);
    const auto meas = machine.scatter(addrs);
    const auto pred = core::predict_scatter(addrs, cfg, &machine.mapping());
    const double dx = static_cast<double>(pred.dxbsp_mapped) / meas.cycles;
    const double bsp = static_cast<double>(pred.bsp) / meas.cycles;
    verdict("(d,x)-BSP tracks the simulator at high contention",
            dx > 0.9 && dx < 1.1,
            "dxbsp/meas = " + std::to_string(dx));
    verdict("bank-blind BSP badly underpredicts the same run", bsp < 0.2,
            "bsp/meas = " + std::to_string(bsp));
  }

  // Claim 2: the knee sits at k* = g n/(p d).
  {
    sim::Machine machine(cfg);
    const auto m = core::DxBspParams::from_config(cfg);
    const double knee = core::contention_knee(m, n);
    const auto below = machine.scatter(workload::k_hot(
        n, static_cast<std::uint64_t>(knee / 4), 1ULL << 30, seed));
    const auto above = machine.scatter(workload::k_hot(
        n, static_cast<std::uint64_t>(knee * 4), 1ULL << 30, seed));
    verdict("contention knee at g*n/(p*d)",
            above.cycles > 3 * below.cycles &&
                below.cycles < static_cast<std::uint64_t>(
                                   1.2 * (m.g * n / m.p + 2.0 * m.L)),
            "T(k*/4) = " + std::to_string(below.cycles) + ", T(4k*) = " +
                std::to_string(above.cycles));
  }

  // Claim 3: banks keep helping beyond x = d.
  {
    const auto addrs = workload::uniform_random(n / 4, 1ULL << 30, seed);
    auto at = [&](std::uint64_t x) {
      auto c = cfg;
      c.expansion = x;
      sim::Machine m(c);
      return m.scatter(addrs).cycles;
    };
    const auto t_d = at(cfg.bank_delay);
    const auto t_4d = at(4 * cfg.bank_delay);
    verdict("expansion beyond x = d still speeds random patterns",
            t_4d < t_d, std::to_string(t_d) + " -> " + std::to_string(t_4d) +
                            " cycles");
  }

  // Claim 4: pseudo-random mapping fixes strides without hurting the
  // worst case by more than a few percent.
  {
    auto c = cfg;
    sim::Machine inter(c);
    util::Xoshiro256 rng(seed);
    sim::Machine hashed(c, std::make_shared<mem::HashedMapping>(
                               c.banks(), mem::HashDegree::kCubic, rng));
    const auto strided = workload::strided(n / 2, c.banks());
    const auto distinct = workload::distinct_random(n / 2, 1ULL << 34, seed);
    const double stride_fix =
        static_cast<double>(inter.scatter(strided).cycles) /
        static_cast<double>(hashed.scatter(strided).cycles);
    const double worst_penalty =
        static_cast<double>(hashed.scatter(distinct).cycles) /
        static_cast<double>(inter.scatter(distinct).cycles);
    verdict("hashing repairs stride pathologies", stride_fix > 10.0,
            "interleaved/hashed = " + std::to_string(stride_fix));
    verdict("hashing's worst-case penalty stays small", worst_penalty < 1.1,
            "hashed/interleaved = " + std::to_string(worst_penalty));
  }

  // Claim 5: QRQW emulation is work-preserving for x >= d and pays d/x
  // below (Thm 5.1/5.2).
  {
    const auto step = qrqw::synthetic_step(n / 4, 16, 1ULL << 30, n / 4, seed);
    auto slowdown_at = [&](std::uint64_t x) {
      auto c = cfg;
      c.expansion = x;
      qrqw::EmulationEngine eng(c, seed);
      const auto r = eng.emulate_step(step);
      return static_cast<double>(r.sim_cycles) /
             (static_cast<double>(step.ops()) / c.processors);
    };
    const double wide = slowdown_at(4 * cfg.bank_delay);
    const double narrow = slowdown_at(cfg.bank_delay / 7);  // x = 2
    verdict("emulation slowdown ~ 1 per op when x >> d", wide < 1.6,
            "cycles/op = " + std::to_string(wide));
    verdict("emulation slowdown ~ d/x when x << d",
            narrow > 0.6 * cfg.bank_delay / 2.0,
            "cycles/op = " + std::to_string(narrow));
  }

  // Claim 6: well-accounted contention beats contention avoidance.
  {
    algos::Vm vm_q(cfg);
    const auto pq = algos::random_permutation_qrqw(vm_q, n / 4, seed);
    algos::Vm vm_e(cfg);
    const auto pe = algos::random_permutation_erew(vm_e, n / 4, seed);
    verdict("QRQW random permutation beats the EREW sort route",
            algos::is_permutation_of_iota(pq) &&
                algos::is_permutation_of_iota(pe) &&
                vm_q.cycles() < vm_e.cycles(),
            "qrqw " + std::to_string(vm_q.cycles()) + " vs erew " +
                std::to_string(vm_e.cycles()) + " cycles");
  }

  std::cout << "\n" << (failures == 0 ? "All claims reproduced."
                                      : "SOME CLAIMS FAILED.")
            << "\n";
  return failures == 0 ? 0 : 1;
}
