// Quickstart: model a bulk scatter on a bank-delay machine.
//
// Builds a J90-like machine, runs a contended scatter through the
// cycle-level simulator, and compares the measurement against the
// (d,x)-BSP and BSP predictions — the library's core loop in ~40 lines.
//
//   ./quickstart [--n=1048576] [--k=32768] [--machine=j90|c90|tera]

#include <iostream>

#include "core/predictor.hpp"
#include "sim/machine.hpp"
#include "util/cli.hpp"
#include "workload/patterns.hpp"

int main(int argc, char** argv) {
  using namespace dxbsp;
  const util::Cli cli(argc, argv);

  // 1. Pick a machine: p processors, gap g, latency L, bank delay d,
  //    expansion x (banks = x*p). Presets approximate the paper's Table 1.
  sim::MachineConfig cfg = sim::MachineConfig::cray_j90();
  if (cli.get("machine", "j90") == "c90") cfg = sim::MachineConfig::cray_c90();
  if (cli.get("machine", "j90") == "tera") cfg = sim::MachineConfig::tera_like();
  sim::Machine machine(cfg);

  // 2. Build a workload: n requests with one location hit k times.
  const std::uint64_t n = cli.get_int("n", 1 << 20);
  const std::uint64_t k = cli.get_int("k", 1 << 15);
  const auto addrs = workload::k_hot(n, k, 1ULL << 30, /*seed=*/7);

  // 3. Measure on the simulator.
  const sim::BulkResult meas = machine.scatter(addrs);

  // 4. Predict with the models.
  const core::Prediction pred =
      core::predict_scatter(addrs, cfg, &machine.mapping());

  std::cout << "machine " << cfg.name << ": p=" << cfg.processors
            << " g=" << cfg.gap << " L=" << cfg.latency
            << " d=" << cfg.bank_delay << " x=" << cfg.expansion << " ("
            << cfg.banks() << " banks)\n"
            << "workload: n=" << n << " requests, max contention k=" << k
            << "\n\n"
            << "measured (simulator) : " << meas.cycles << " cycles ("
            << meas.cycles_per_element() << " per element)\n"
            << "(d,x)-BSP prediction : " << pred.dxbsp_mapped << " cycles ("
            << static_cast<double>(pred.dxbsp_mapped) / meas.cycles
            << "x measured)\n"
            << "BSP prediction       : " << pred.bsp << " cycles ("
            << static_cast<double>(pred.bsp) / meas.cycles
            << "x measured)\n\n"
            << "max bank load " << meas.max_bank_load << ", bank utilization "
            << meas.bank_utilization << "\n"
            << "bank-bound? "
            << (core::bank_bound(core::DxBspParams::from_config(cfg),
                                 pred.profile.location_step())
                    ? "yes — BSP cannot see this"
                    : "no — both models agree here")
            << "\n";
  return 0;
}
