// sorting_comparison: pick the right permutation/sorting strategy for a
// bank-delay machine.
//
// Compares the QRQW dart-throwing permutation against the EREW radix
// sort route across machines. Two lessons: (1) the dart thrower's
// contention is so low (max cell queue ~ 6) that even a DRAM bank delay
// never makes it the bottleneck — avoiding contention entirely was never
// worth the sort's extra memory passes; (2) the gap widens with the bank
// delay, because every one of the sort's permutation scatters pays
// module-map queueing that the model (and the ledger below) accounts.
//
//   ./sorting_comparison [--n=262144]

#include <iostream>

#include "algos/random_permutation.hpp"
#include "algos/vm.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dxbsp;
  const util::Cli cli(argc, argv);
  const std::uint64_t n = cli.get_int("n", 1 << 18);

  std::cout << "Random permutation of n = " << n
            << " elements: QRQW dart throwing vs EREW radix sort\n\n";

  util::Table t({"machine", "d", "qrqw cycles", "erew cycles", "erew/qrqw",
                 "winner"});
  auto add_machine = [&](sim::MachineConfig cfg) {
    algos::Vm vm_q(cfg);
    const auto pq = algos::random_permutation_qrqw(vm_q, n, /*seed=*/11);
    algos::Vm vm_e(cfg);
    const auto pe = algos::random_permutation_erew(vm_e, n, /*seed=*/11);
    if (!algos::is_permutation_of_iota(pq) ||
        !algos::is_permutation_of_iota(pe))
      throw std::logic_error("permutation validation failed");
    const double ratio =
        static_cast<double>(vm_e.cycles()) / static_cast<double>(vm_q.cycles());
    t.add_row(cfg.name, cfg.bank_delay, vm_q.cycles(), vm_e.cycles(), ratio,
              ratio > 1.0 ? "qrqw" : "erew");
  };

  add_machine(sim::MachineConfig::cray_c90());
  add_machine(sim::MachineConfig::cray_j90());
  add_machine(sim::MachineConfig::tera_like());
  // A hypothetical machine whose banks keep up with the processors:
  // the EREW sort's regular passes stop being a liability.
  sim::MachineConfig fast = sim::MachineConfig::cray_j90();
  fast.name = "fantasy-d1";
  fast.bank_delay = 1;
  add_machine(fast);

  t.print(std::cout);
  std::cout << "\nThe QRQW algorithm tolerates (and pays honestly for) "
               "logarithmic per-round contention; the EREW sort avoids all "
               "contention but multiplies the memory traffic — a tax that "
               "only grows as banks get slower. Well-accounted contention "
               "beats contention avoidance on every preset.\n";
  return 0;
}
