// spmv_analysis: contention analysis of a sparse matrix across machines.
//
// Takes a synthetic sparse matrix (optionally with a dense column — the
// irregular-application hazard the paper's Figure 12 studies), analyzes
// the gather pattern of A·x, and reports predicted and simulated time on
// each machine preset, with a per-phase cost ledger. This is the
// workflow a library user would follow to decide whether their matrix's
// structure will serialize on a bank-delay machine.
//
//   ./spmv_analysis [--rows=65536] [--nnz-per-row=4] [--dense=16384]

#include <iostream>

#include "algos/spmv.hpp"
#include "algos/vm.hpp"
#include "core/cost.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "workload/sparse.hpp"

int main(int argc, char** argv) {
  using namespace dxbsp;
  const util::Cli cli(argc, argv);
  const std::uint64_t rows = cli.get_int("rows", 1 << 16);
  const std::uint64_t nnz_per_row = cli.get_int("nnz-per-row", 4);
  const std::uint64_t dense = cli.get_int("dense", 1 << 14);

  const auto a =
      workload::dense_column_csr(rows, rows, nnz_per_row, dense, /*seed=*/3);
  std::vector<double> x(a.cols);
  util::Xoshiro256 rng(4);
  for (auto& v : x) v = rng.uniform();

  std::cout << "matrix: " << a.rows << " x " << a.cols << ", nnz = " << a.nnz()
            << ", dense column length = "
            << workload::column_frequency(a, 0) << "\n\n";

  util::Table t({"machine", "d", "x", "sim cycles", "dxbsp", "bsp",
                 "gather k", "bank-bound gather?"});
  for (const auto& cfg : sim::MachineConfig::table1_presets()) {
    algos::Vm vm(cfg);
    algos::SpmvStats stats;
    const auto y = algos::spmv(vm, a, x, &stats);
    (void)y;
    const auto m = core::DxBspParams::from_config(cfg);
    const bool bound = core::bank_bound(
        m, {a.nnz() / cfg.processors, stats.gather_contention, a.nnz()});
    t.add_row(cfg.name, cfg.bank_delay, cfg.expansion,
              vm.ledger().total_sim(), vm.ledger().total_dxbsp(),
              vm.ledger().total_bsp(), stats.gather_contention,
              bound ? "yes" : "no");
  }
  t.print(std::cout);

  std::cout << "\nper-phase ledger on "
            << sim::MachineConfig::cray_j90().name << ":\n";
  algos::Vm vm(sim::MachineConfig::cray_j90());
  (void)algos::spmv(vm, a, x);
  vm.ledger().print(std::cout);

  std::cout << "\nIf the gather is bank-bound, break the dense column: "
               "replicate x[0] across banks or reassociate the sum — the "
               "QRQW toolbox in this library (see bench_fig11b) shows the "
               "replication pattern.\n";
  return 0;
}
