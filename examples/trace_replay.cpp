// trace_replay: analyze and replay a recorded memory access trace.
//
// The paper's methodology in tool form: feed a trace (extracted from a
// real program, or produced by this library's workload generators) to
// the analyzer, get its contention profile, and see predicted and
// simulated time on any machine. With no --trace argument a
// demonstration trace is generated, saved, reloaded and replayed, so the
// example is self-contained.
//
//   ./trace_replay [--trace=path.bin|path.txt] [--machine-spec=j90,d=20]

#include <fstream>
#include <iostream>

#include "core/design.hpp"
#include "core/predictor.hpp"
#include "sim/machine.hpp"
#include "stats/histogram.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/patterns.hpp"
#include "workload/trace_io.hpp"

int main(int argc, char** argv) {
  using namespace dxbsp;
  const util::Cli cli(argc, argv);

  std::vector<std::uint64_t> trace;
  std::string source;
  if (cli.has("trace")) {
    const std::string path = cli.get("trace", "");
    if (path.size() > 4 && path.substr(path.size() - 4) == ".txt") {
      std::ifstream is(path);
      if (!is) {
        std::cerr << "cannot open " << path << "\n";
        return 1;
      }
      trace = workload::load_trace_text(is);
    } else {
      trace = workload::load_trace(path);
    }
    source = path;
  } else {
    // Self-contained demo: generate, save, reload.
    trace = workload::multi_hot(1 << 18, 4, 1 << 12, 1ULL << 30, 42);
    const std::string path = "/tmp/dxbsp_demo_trace.bin";
    workload::save_trace(path, trace);
    trace = workload::load_trace(path);
    source = path + " (generated demo trace)";
  }

  std::cout << "trace: " << source << " — " << trace.size()
            << " requests\n\n";

  // Contention profile.
  const auto spectrum = stats::contention_spectrum(trace);
  std::uint64_t k_max = 0, distinct = 0;
  for (const auto& [mult, count] : spectrum) {
    k_max = std::max(k_max, mult);
    distinct += count;
  }
  std::cout << "distinct locations: " << distinct
            << ", max contention k = " << k_max
            << ", entropy = " << stats::shannon_entropy(trace) << " bits\n\n";

  // Replay on the requested machine(s).
  const auto spec = cli.get("machine-spec", "");
  std::vector<sim::MachineConfig> machines;
  if (!spec.empty()) {
    machines.push_back(sim::MachineConfig::parse(spec));
  } else {
    machines = sim::MachineConfig::table1_presets();
  }

  util::Table t({"machine", "simulated", "dxbsp", "bsp", "dxbsp/sim",
                 "bsp/sim", "cyc/elt"});
  for (const auto& cfg : machines) {
    sim::Machine machine(cfg);
    const auto meas = machine.scatter(trace);
    const auto pred = core::predict_scatter(trace, cfg, &machine.mapping());
    t.add_row(cfg.name, meas.cycles, pred.dxbsp_mapped, pred.bsp,
              static_cast<double>(pred.dxbsp_mapped) / meas.cycles,
              static_cast<double>(pred.bsp) / meas.cycles,
              meas.cycles_per_element());
  }
  t.print(std::cout);

  // Design advice for this trace.
  const auto& cfg0 = machines.front();
  const auto rec = core::recommend_expansion(
      trace.size(), k_max, core::DxBspParams::from_config(cfg0));
  std::cout << "\ndesign advice on " << cfg0.name
            << " parameters: throughput needs x >= " << rec.x_throughput
            << ", tail flattens by x = " << rec.x_tail << " (recommend x = "
            << rec.x_recommended << ")";
  if (rec.contention_limited) {
    std::cout << "\nWARNING: this trace is contention-limited (d*k >= g*n/p)"
                 " — no bank count fixes it; restructure the hot location "
                 "(replication, combining, QRQW-style retry).";
  }
  std::cout << "\n";
  return 0;
}
