#!/usr/bin/env python3
"""Fold BENCH_*.json baselines into one metric trend table.

Usage:
    python3 scripts/bench_history.py FILE.json [FILE.json ...]

Each input is either a metrics dump (``--metrics``: a top-level
``metrics`` object whose entries carry kind/stability/value) or a
versioned run report (``--report``: ``metrics`` maps names straight to
numbers, histograms to ``{total, bounds, counts}``). Output is one row
per metric name, one column per file — the committed baselines read as
a trajectory. ``tools/bench_trend.cpp`` is the C++ twin.

After the metric table, any ``perf.<class>.speedup_x100`` metrics are
folded into a per-class speedup trend section: one line per workload
class charting the auto-vs-best-fixed-engine ratio across the committed
baselines in the order given, with the net change since the oldest
column that has the metric (older baselines that predate a class show
as ``-``).

Arguments may be glob patterns (``BENCH_*.json``), expanded here so the
script behaves the same when a shell passes the unmatched pattern
through verbatim. When nothing matches at all the script prints a clear
note and exits 0 — a repo without committed baselines has no trend to
lint, which is not an error. A literal path that is missing still
fails: naming one exact file is a claim that it exists.

Stdlib only (glob/json/sys); exits non-zero with a diagnostic on
malformed input, which is what lets scripts/ci.sh run it as a lint over
the committed BENCH_*.json files.
"""

import glob
import json
import sys


def load_metrics(path):
    """Return {metric name: value} for one dump or report file."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        raise ValueError(
            f"{path}: no \"metrics\" object (not a metrics dump or run report)"
        )
    out = {}
    for name, value in metrics.items():
        if isinstance(value, (int, float)):
            out[name] = value
        elif isinstance(value, dict):
            scalar = value.get("value", value.get("total"))
            if isinstance(scalar, (int, float)):
                out[name] = scalar
    return out


def format_cell(value):
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.6g}"
    return str(int(value)) if isinstance(value, float) else str(value)


SPEEDUP_PREFIX = "perf."
SPEEDUP_SUFFIX = ".speedup_x100"


def speedup_trends(paths, columns):
    """Per-class speedup trend lines across the baseline columns.

    Returns printable lines, or [] when no column carries a
    ``perf.<class>.speedup_x100`` metric.
    """
    classes = sorted({
        name[len(SPEEDUP_PREFIX):-len(SPEEDUP_SUFFIX)]
        for col in columns
        for name in col
        if name.startswith(SPEEDUP_PREFIX) and name.endswith(SPEEDUP_SUFFIX)
    })
    if not classes:
        return []
    lines = ["", "speedup trend (auto engine vs best fixed, x):"]
    width = max(len(c) for c in classes)
    for cls in classes:
        key = f"{SPEEDUP_PREFIX}{cls}{SPEEDUP_SUFFIX}"
        cells = [
            f"{col[key] / 100:.2f}" if key in col else "-" for col in columns
        ]
        have = [(p, col[key]) for p, col in zip(paths, columns) if key in col]
        if len(have) >= 2 and have[0][1] > 0:
            pct = 100.0 * (have[-1][1] - have[0][1]) / have[0][1]
            net = f"  ({pct:+.1f}% since {have[0][0]})"
        else:
            net = ""
        lines.append(f"  {cls.rjust(width)}  {' -> '.join(cells)}{net}")
    return lines


def expand_globs(args):
    """Expand glob-pattern arguments; literal paths pass through."""
    paths = []
    for arg in args:
        if not any(ch in arg for ch in "*?["):
            paths.append(arg)
            continue
        matches = sorted(glob.glob(arg))
        if matches:
            paths.extend(matches)
        else:
            print(f"bench_history: no baselines match '{arg}'",
                  file=sys.stderr)
    return paths


def main(argv):
    args = argv[1:]
    if not args:
        print("usage: bench_history.py FILE.json [FILE.json ...]",
              file=sys.stderr)
        return 64
    paths = expand_globs(args)
    if not paths:
        print("bench_history: no baselines to fold (nothing matched); "
              "run a bench with --metrics to create one")
        return 0
    try:
        columns = [load_metrics(p) for p in paths]
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 65

    names = sorted(set().union(*(c.keys() for c in columns)))
    header = ["metric"] + paths
    rows = [
        [name] + [
            format_cell(col[name]) if name in col else "-" for col in columns
        ]
        for name in names
    ]
    widths = [
        max(len(header[i]), *(len(r[i]) for r in rows)) if rows
        else len(header[i])
        for i in range(len(header))
    ]
    def emit(cells):
        print("  ".join(c.rjust(w) for c, w in zip(cells, widths)))
    emit(header)
    print("-" * (sum(widths) + 2 * (len(widths) - 1)))
    for row in rows:
        emit(row)
    for line in speedup_trends(paths, columns):
        print(line)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
