#!/usr/bin/env bash
# Tier-1 verification, plain and sanitized.
#
# 1. Configure + build + ctest with the default toolchain flags.
# 2. Configure + build + ctest a second tree with DXBSP_SANITIZE=ON
#    (-fsanitize=address,undefined), and run the chaos fault harness and
#    the snapshot corruption fuzz explicitly under the sanitizers (random
#    seeded fault plans and attacker-shaped snapshot bytes are the
#    likeliest places for a latent memory bug to hide).
# 3. Kill-and-resume smoke: SIGTERM a checkpointing sweep mid-flight,
#    resume it, and require the output to be byte-identical to a
#    straight-through run. Also checks that --deadline=0.000001 produces
#    the structured Interrupted outcome (exit 75) and a loadable
#    checkpoint.
# 4. Observability smoke: a traced fig4 run must produce JSON that
#    `python3 -m json.tool` accepts (Chrome trace + run report), and the
#    report/trace must be byte-identical between --threads=1 and
#    --threads=4 (docs/observability.md).
# 5. Attribution & drift smoke (docs/observability.md): the healthy
#    fig4 report from step 4 and a seeded faulty r1 sweep must both
#    carry schema-versioned "attribution"/"drift" sections whose cost
#    terms sum exactly to the attributed cycles, the faulty report must
#    be byte-identical across --threads=1/4, every drift sample must
#    stay inside the ±25% model band, the attribution identity and
#    drift-band tests rerun under the sanitizers, and
#    scripts/bench_history.py must lint the committed BENCH_*.json
#    baselines.
# 6. Cache smoke (docs/cache.md): a small bench_fig20_cache_sweep must
#    detect a bank_service -> cache_hit binding crossover, its report
#    must attribute every cycle across all seven terms and stay
#    byte-identical across --threads=1/4, a capacity=0 machine must
#    produce byte-identical output to one with no cache configured at
#    all, and the tier's state machinery reruns under the sanitizers.
# 7. Streaming smoke (docs/streaming.md): the out-of-core pressure
#    bench's budget sweep must stay byte-equivalent to its in-RAM
#    baseline; the same workload must complete under `ulimit -v` at
#    probed-peak + 25%; injected ENOSPC must exit 69 (degraded) and a
#    hung spill write must exit 75 (revoked by the stall watchdog), not
#    crash or wedge; SIGKILL at the worst spill instant must leave an
#    fsck-clean spill directory and resume byte-identically; the DXSPL1
#    corruption fuzz (every truncation, every bit flip) runs under the
#    sanitizers.
# 8. Perf smoke (docs/performance.md): bench_perf_hotpath --quick on the
#    plain (optimized) build must emit valid metrics JSON, and on every
#    one of the five headline workload classes the auto-engine
#    (EngineSelector) speedup over the better fixed engine must stay
#    within 20% of the committed BENCH_9.json baseline (capped, so a
#    fast dev host can't commit a baseline CI machines can't reach).
#    The sanitizer build runs the same bench for its engine cross-check
#    plus the full selector test suite, but skips the throughput gate —
#    sanitized timings measure the sanitizer.
# 9. Scalar build leg (DXBSP_SIMD=OFF): the vectorization toggle must be
#    a pure speed knob. A scalar build of the fig4 bench must produce a
#    byte-identical run report, and the hotpath bench's three-engine
#    cross-check must still pass.
# 10. Fleet-observability smoke (docs/observability.md §fleet): an
#     obs-on merged report strips back to the serial run's bytes, a
#     chaos-killed worker's flight ring surfaces as the post_mortem
#     section (last protocol phase + trace tail), the stitched fleet
#     timeline is valid Chrome JSON, sweep_top renders a live fleet,
#     and the trend readers degrade gracefully when no BENCH_*.json
#     baselines match.
#
# Usage: scripts/ci.sh [jobs]
set -euo pipefail
cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

echo "== tier-1 (plain) =="
cmake -B build-ci -S . >/dev/null
cmake --build build-ci -j"$JOBS"
ctest --test-dir build-ci -j"$JOBS" --output-on-failure

echo "== tier-1 (address+UB sanitizers) =="
cmake -B build-ci-san -S . -DDXBSP_SANITIZE=ON >/dev/null
cmake --build build-ci-san -j"$JOBS"
ctest --test-dir build-ci-san -j"$JOBS" --output-on-failure

echo "== chaos fault harness under sanitizers =="
./build-ci-san/tests/fault_test \
  --gtest_filter='Chaos.*:FaultDeterminism.*'

echo "== snapshot corruption fuzz under sanitizers =="
./build-ci-san/tests/resilience_test \
  --gtest_filter='Snapshot.*:Sweep.Resume*'

echo "== spill corruption fuzz under sanitizers =="
# Every truncation point and every single-bit flip of a DXSPL1 chunk,
# plus the pressure-model model check, on attacker-shaped bytes.
./build-ci-san/tests/stream_test \
  --gtest_filter='SpillFuzz.*:SpillStore.*:PressureModel.*'

echo "== kill-and-resume smoke =="
SMOKE=$(mktemp -d)
trap 'rm -rf "$SMOKE"' EXIT
BENCH=./build-ci/bench/bench_fig7_expansion
SMOKE_ARGS=(--n=32768 --seed=1995)

# Reference: one uninterrupted run.
"$BENCH" "${SMOKE_ARGS[@]}" > "$SMOKE/reference.txt"

# Interrupted run: SIGTERM it mid-flight. Exit 75 = interrupted with a
# checkpoint (the common case); exit 0 means the sweep finished before
# the signal landed, which is fine — resume is then a pure replay.
"$BENCH" "${SMOKE_ARGS[@]}" --checkpoint="$SMOKE/ck.snap" \
  > "$SMOKE/interrupted.txt" &
PID=$!
sleep 0.2
kill -TERM "$PID" 2>/dev/null || true
RC=0
wait "$PID" || RC=$?
if [[ "$RC" != 75 && "$RC" != 0 ]]; then
  echo "kill-and-resume: unexpected exit $RC from interrupted run" >&2
  exit 1
fi
echo "interrupted run exited $RC"

# Resume and require byte-identical output.
"$BENCH" "${SMOKE_ARGS[@]}" --resume="$SMOKE/ck.snap" > "$SMOKE/resumed.txt"
cmp "$SMOKE/reference.txt" "$SMOKE/resumed.txt"
echo "resumed output is byte-identical to the uninterrupted run"

# Deadline path: must exit 75 with the structured outcome and leave a
# loadable checkpoint behind (the resumed run proves loadability).
RC=0
"$BENCH" "${SMOKE_ARGS[@]}" --deadline=0.000001 \
  --checkpoint="$SMOKE/dl.snap" > "$SMOKE/deadline.txt" || RC=$?
if [[ "$RC" != 75 ]]; then
  echo "deadline smoke: expected exit 75, got $RC" >&2
  exit 1
fi
grep -q "INTERRUPTED cause=deadline" "$SMOKE/deadline.txt"
"$BENCH" "${SMOKE_ARGS[@]}" --resume="$SMOKE/dl.snap" > "$SMOKE/dl_resumed.txt"
cmp "$SMOKE/reference.txt" "$SMOKE/dl_resumed.txt"
echo "deadline interrupt is structured and resumable"

echo "== observability smoke =="
OBS_BENCH=./build-ci/bench/bench_fig4_contention_sweep
OBS_ARGS=(--n=16384 --seed=1995)

# Traced run: the Chrome trace, the run report, and the metrics dump
# must all be valid JSON.
"$OBS_BENCH" "${OBS_ARGS[@]}" --threads=1 \
  --trace="$SMOKE/t1.trace.json" --report="$SMOKE/report1.json" \
  --report-csv="$SMOKE/report1.csv" --metrics="$SMOKE/metrics1.json" \
  > /dev/null
python3 -m json.tool "$SMOKE/t1.trace.json" > /dev/null
python3 -m json.tool "$SMOKE/report1.json" > /dev/null
python3 -m json.tool "$SMOKE/metrics1.json" > /dev/null
echo "trace, report and metrics dumps are valid JSON"

# Determinism: reports and traces must not depend on --threads.
"$OBS_BENCH" "${OBS_ARGS[@]}" --threads=4 \
  --trace="$SMOKE/t4.trace.json" --report="$SMOKE/report4.json" \
  > /dev/null
cmp "$SMOKE/report1.json" "$SMOKE/report4.json"
cmp "$SMOKE/t1.trace.json" "$SMOKE/t4.trace.json"
echo "report and trace are byte-identical across --threads=1/4"

# Reconciliation + registry stress under the sanitizers.
./build-ci-san/tests/obs_test \
  --gtest_filter='Reconcile.*:Metrics.ConcurrentUpdatesAreExact'

echo "== attribution & drift smoke =="
ATTR_BENCH=./build-ci/bench/bench_r1_fault_sweep
# n=65536 keeps the deliberately pathological "lossy, tight budget"
# scenario's retry tail inside the ±25% band (at tiny n its relative
# error is dominated by per-attempt constants).
ATTR_ARGS=(--n=65536 --seed=1995)

"$ATTR_BENCH" "${ATTR_ARGS[@]}" --threads=1 --report="$SMOKE/attr1.json" \
  > /dev/null
python3 -m json.tool "$SMOKE/attr1.json" > /dev/null

# The healthy fig4 report from the observability smoke and the faulty
# r1 report must both decompose every attributed cycle (terms sum
# exactly to cycles) and keep every per-superstep drift sample inside
# the model band.
python3 - "$SMOKE/report1.json" "$SMOKE/attr1.json" <<'EOF'
import json, sys

for path in sys.argv[1:]:
    doc = json.load(open(path))
    attr = doc["attribution"]
    assert attr["schema_version"] == 2, (path, attr)
    assert attr["supersteps"] > 0, (path, attr)
    assert sum(attr["terms"].values()) == attr["cycles"], (path, attr)
    sketch = attr["bank_load"]
    assert len(sketch["counts"]) == 65, (path, len(sketch["counts"]))
    drift = doc["drift"]
    assert drift["schema_version"] == 2, (path, drift)
    assert drift["supersteps"] == attr["supersteps"], (path, drift)
    assert drift["out_of_band"] == 0, (path, drift)
    worst = drift["worst"]
    assert worst is None or abs(worst["rel_err"]) <= drift["band"], worst
    print(f"{path}: {attr['supersteps']} supersteps, "
          f"{attr['cycles']} cycles fully attributed; "
          f"max |rel err| {drift['max_abs_rel_err']:.4f} "
          f"within the {drift['band']:.2f} band")
EOF

# Faulty-path determinism: the attribution/drift sections must not
# depend on --threads any more than the rest of the report does.
"$ATTR_BENCH" "${ATTR_ARGS[@]}" --threads=4 --report="$SMOKE/attr4.json" \
  > /dev/null
cmp "$SMOKE/attr1.json" "$SMOKE/attr4.json"
echo "faulty-sweep report is byte-identical across --threads=1/4"

# Identity property matrix and the drift-band acceptance tests under
# the sanitizers (the attributor's origin maps and the sketch merge are
# fresh pointer-heavy code).
./build-ci-san/tests/attribution_test \
  --gtest_filter='AttributionIdentity.*:DriftBand.*:AttributionUnserved.*'

# Trend-reader lint over the committed baselines: malformed BENCH_*.json
# exits non-zero here instead of surprising the first person to chart it.
python3 scripts/bench_history.py BENCH_*.json > /dev/null
echo "bench_history.py lint passed on committed baselines"

echo "== cache smoke (two-level tier, docs/cache.md) =="
FIG20=./build-ci/bench/bench_fig20_cache_sweep
FIG20_ARGS=(--n=8192 --seed=1995)

# Small C x x x d sweep: the run must detect at least one binding-term
# crossover (bank_service -> cache_hit), and its report must decompose
# every attributed cycle across all SEVEN terms exactly.
"$FIG20" "${FIG20_ARGS[@]}" --threads=1 --report="$SMOKE/cache1.json" \
  > "$SMOKE/cache1.out"
grep -q "^crossover:" "$SMOKE/cache1.out"
python3 - "$SMOKE/cache1.json" <<'EOF'
import json, sys

doc = json.load(open(sys.argv[1]))
attr = doc["attribution"]
assert attr["schema_version"] == 2, attr
terms = attr["terms"]
assert len(terms) == 7 and "cache_hit" in terms, sorted(terms)
assert terms["cache_hit"] > 0, terms
assert sum(terms.values()) == attr["cycles"], attr
print(f"cache sweep: {attr['supersteps']} supersteps, {attr['cycles']} "
      f"cycles fully attributed across 7 terms "
      f"(cache_hit = {terms['cache_hit']})")
EOF

# Determinism: the cached-machine report must not depend on --threads.
"$FIG20" "${FIG20_ARGS[@]}" --threads=4 --report="$SMOKE/cache4.json" \
  > /dev/null
cmp "$SMOKE/cache1.json" "$SMOKE/cache4.json"
echo "cache sweep report is byte-identical across --threads=1/4"

# capacity=0 must be byte-identical to never configuring the tier at
# all: same explorer sweep, cache knobs present but capacity 0.
./build-ci/examples/machine_explorer --n=20000 --k=512 --explain \
  > "$SMOKE/cache_off.out"
./build-ci/examples/machine_explorer --n=20000 --k=512 --explain \
  --cache=0 --cache-line=16 --cache-write=through \
  > "$SMOKE/cache_zero.out"
cmp "$SMOKE/cache_off.out" "$SMOKE/cache_zero.out"
echo "cache capacity=0 output is byte-identical to cache-off"

# The tier's tag/state machinery and the cached engine-equivalence
# scenarios rerun under the sanitizers.
./build-ci-san/tests/cache_test
./build-ci-san/tests/engine_equivalence_test \
  --gtest_filter='EngineEquivalence.CacheTier*'
echo "cache tier is sanitizer-clean"

echo "== perf smoke (event-engine throughput) =="
PERF=./build-ci/bench/bench_perf_hotpath

# Engine cross-check plus the selector suite under the sanitizers
# (throughput numbers from a sanitized build are meaningless, so no
# gate — the bench itself fails on any reference/calendar/auto
# telemetry mismatch).
./build-ci-san/bench/bench_perf_hotpath --quick --reps=1 > /dev/null
./build-ci-san/tests/engine_select_test > /dev/null
echo "sanitized engine cross-check and selector suite passed"

# Throughput gate on the optimized build, against the committed
# baseline: on every headline class the auto engine's speedup over the
# better fixed engine must stay within 20% of BENCH_9.json. Baselines
# are capped at 2.5x before applying the tolerance: the gate catches
# "the selector stopped winning", not host-to-host variance above the
# acceptance bar.
"$PERF" --quick --metrics="$SMOKE/perf.json" > "$SMOKE/perf.txt"
python3 -m json.tool "$SMOKE/perf.json" > /dev/null
python3 - "$SMOKE/perf.json" BENCH_9.json <<'EOF'
import json, sys

CLASSES = ["uniform_p64_x4_d8", "hot_tight_window", "combining_multihot",
           "cached_stride", "faulty_drop_retry"]
current = json.load(open(sys.argv[1]))["metrics"]
baseline = json.load(open(sys.argv[2]))["metrics"]
failed = []
for cls in CLASSES:
    key = f"perf.{cls}.speedup_x100"
    cur = current[key]["value"]
    base = baseline[key]["value"]
    floor = 0.8 * min(base, 250)
    verdict = "ok" if cur >= floor else "FAIL"
    print(f"{cls:>20}: current {cur/100:.2f}x, baseline {base/100:.2f}x, "
          f"gate >= {floor/100:.2f}x [{verdict}]")
    if cur < floor:
        failed.append(cls)
if failed:
    sys.exit("perf smoke: auto-vs-best-fixed speedup regressed >20% vs the "
             f"committed baseline on: {', '.join(failed)}; if intended, "
             "refresh BENCH_9.json (docs/performance.md)")
EOF
echo "perf smoke passed (all five headline classes gated)"

echo "== scalar build leg (DXBSP_SIMD=OFF) =="
# The vectorized kernels must be a pure speed knob: a scalar build has
# to produce byte-identical reports and pass the same three-engine
# cross-check. Only the two targets this leg runs are built.
cmake -B build-ci-scalar -S . -DDXBSP_SIMD=OFF >/dev/null
cmake --build build-ci-scalar -j"$JOBS" \
  --target bench_fig4_contention_sweep bench_perf_hotpath
"$OBS_BENCH" "${OBS_ARGS[@]}" --report="$SMOKE/report_vec.json" > /dev/null
./build-ci-scalar/bench/bench_fig4_contention_sweep "${OBS_ARGS[@]}" \
  --report="$SMOKE/report_scalar.json" > /dev/null
cmp "$SMOKE/report_vec.json" "$SMOKE/report_scalar.json"
./build-ci-scalar/bench/bench_perf_hotpath --quick --reps=1 > /dev/null
echo "scalar build is byte-identical to the vectorized build"

echo "== coordinator smoke (fleet mode) =="
COORD=./build-ci/tools/sweep_coordinator

# Serial baseline with exactly the worker invocation (no --trace: a
# traced report carries a "timeline" section the untraced fleet merge
# never has, so report1.json from the observability smoke is not a
# valid baseline here).
"$OBS_BENCH" "${OBS_ARGS[@]}" --report="$SMOKE/serial.json" > /dev/null

# Healthy fleet: a 4-worker sharded fig4 sweep's merged report must be
# byte-identical to the serial run's. --no-obs keeps the strict cmp
# valid (observability adds the host-time fleet section by default; the
# fleet-observability smoke below covers the obs-on path).
"$COORD" --quiet --no-obs --workers=4 --shards=4 --dir="$SMOKE/fleet" \
  --report="$SMOKE/fleet.json" \
  -- "$OBS_BENCH" "${OBS_ARGS[@]}" > "$SMOKE/fleet.txt"
grep -q "FLEET completed" "$SMOKE/fleet.txt"
cmp "$SMOKE/serial.json" "$SMOKE/fleet.json"
echo "healthy 4-worker fleet report is byte-identical to the serial run"

# Crash recovery: SIGKILL one worker mid-shard (deterministically, via
# the chaos hook) and require the same bytes again.
"$COORD" --quiet --no-obs --workers=4 --shards=4 --dir="$SMOKE/fleet-kill" \
  --report="$SMOKE/fleet-kill.json" --backoff=0.05 \
  --chaos='shard=1,attempt=0,phase=point:1,action=kill' \
  -- "$OBS_BENCH" "${OBS_ARGS[@]}" > "$SMOKE/fleet-kill.txt"
grep -q "deaths=1" "$SMOKE/fleet-kill.txt"
cmp "$SMOKE/serial.json" "$SMOKE/fleet-kill.json"
echo "fleet survives a mid-shard SIGKILL with byte-identical output"

# Degraded path: a shard that dies at every lease grant must be
# quarantined (exit 69, poisoned range in the report), never hung.
RC=0
"$COORD" --quiet --workers=2 --shards=4 --dir="$SMOKE/fleet-poison" \
  --report="$SMOKE/fleet-poison.json" --max-strikes=2 --backoff=0.05 \
  --chaos='shard=2,phase=lease,action=kill' \
  -- "$OBS_BENCH" "${OBS_ARGS[@]}" > "$SMOKE/fleet-poison.txt" || RC=$?
if [[ "$RC" != 69 ]]; then
  echo "coordinator smoke: expected exit 69 (degraded), got $RC" >&2
  exit 1
fi
grep -q "POISONED shard=2/4" "$SMOKE/fleet-poison.txt"
python3 -m json.tool "$SMOKE/fleet-poison.json" > /dev/null
grep -q '"degraded"' "$SMOKE/fleet-poison.json"
echo "permanently-failing shard degrades the fleet (exit 69) with a repro"

# Scaling model check (docs/resilience.md §fleet mode): fleet wall
# clock vs the BSF master-worker prediction, generous CI band.
./build-ci/bench/bench_svc_scaling --n=131072 --points=8 --shards=4 \
  --dir="$SMOKE/svc-scaling" --band=1.0 > /dev/null
echo "coordinator scaling stays within the master-worker model band"

# The multi-process chaos harness under the sanitizers: protocol
# parsing, partial-aggregate banking and merge run asan/ubsan-clean.
./build-ci-san/tests/svc_chaos_test > /dev/null
./build-ci-san/tests/svc_test > /dev/null
echo "chaos harness is sanitizer-clean"

echo "== fleet observability smoke (docs/observability.md §fleet) =="
# Healthy obs-on fleet: the merged report gains the host-time "fleet"
# section, but stripping the fleet/post_mortem blocks line-wise must
# leave bytes identical to the serial report — observability may add,
# never perturb. A healthy fleet must carry no post_mortem at all.
"$COORD" --quiet --workers=4 --shards=4 --dir="$SMOKE/fleet-obs" \
  --report="$SMOKE/fleet-obs.json" \
  -- "$OBS_BENCH" "${OBS_ARGS[@]}" > "$SMOKE/fleet-obs.txt"
python3 -m json.tool "$SMOKE/fleet-obs.json" > /dev/null
python3 - "$SMOKE/fleet-obs.json" "$SMOKE/serial.json" <<'EOF'
import json, sys

def strip_host_sections(path):
    out, skip, depth = [], False, 0
    for line in open(path):
        if not skip and (line.startswith('  "fleet": {')
                         or line.startswith('  "post_mortem": {')):
            skip = True
            depth = line.count("{") - line.count("}")
            continue
        if skip:
            depth += line.count("{") - line.count("}")
            if depth <= 0:
                skip = False
            continue
        out.append(line)
    return "".join(out)

obs_report, serial = sys.argv[1], sys.argv[2]
doc = json.load(open(obs_report))
assert "fleet" in doc, "obs-on merged report lacks the fleet section"
assert doc["fleet"]["svc.leases_granted"] >= 4, doc["fleet"]
assert "post_mortem" not in doc, "healthy fleet grew a post_mortem"
assert strip_host_sections(obs_report) == strip_host_sections(serial), \
    "deterministic sections changed under observability"
print("fleet section present; stripped report is byte-identical to serial")
EOF

# Chaos kill with observability on: the coordinator must harvest the
# dead attempt's flight ring and embed it as post_mortem — naming the
# dying shard's last protocol phase and carrying trace-event tails.
"$COORD" --quiet --workers=4 --shards=4 --dir="$SMOKE/fleet-obskill" \
  --report="$SMOKE/fleet-obskill.json" --backoff=0.05 \
  --chaos='shard=1,attempt=0,phase=point:1,action=kill' \
  -- "$OBS_BENCH" "${OBS_ARGS[@]}" > "$SMOKE/fleet-obskill.txt"
grep -q "deaths=1" "$SMOKE/fleet-obskill.txt"
python3 - "$SMOKE/fleet-obskill.json" <<'EOF'
import json, sys

doc = json.load(open(sys.argv[1]))
pm = doc["post_mortem"]
assert pm["schema_version"] == 1, pm
deaths = [d for d in pm["deaths"] if d["shard"] == "1/4"]
assert deaths, f"no harvest for the killed shard: {pm}"
d = deaths[0]
assert d["last_phase"] == "point", d
assert any(e["kind"] == "trace" for e in d["events"]), \
    f"flight tail carries no trace events: {d['events']}"
print(f"post_mortem: shard 1/4 died at phase '{d['last_phase']}' with "
      f"{len(d['events'])} flight events ({d['records']} records, "
      f"{d['torn']} torn)")
EOF

# The standalone flight reader must decode the harvested ring, and the
# stitch manifest must merge coordinator + worker traces (the killed
# attempt rendered from its flight ring) into valid Chrome JSON.
./build-ci/tools/flight_reader "$SMOKE/fleet-obskill/shard-1.attempt-0.flight" \
  > "$SMOKE/flight.txt"
grep -q "phase point" "$SMOKE/flight.txt"
./build-ci/tools/trace_stitch "$SMOKE/fleet-obskill/stitch.json" \
  --out="$SMOKE/stitched.json"
python3 -m json.tool "$SMOKE/stitched.json" > /dev/null
python3 -m json.tool "$SMOKE/fleet-obskill/coordinator.trace.json" > /dev/null
echo "flight ring decodes standalone; stitched timeline is valid JSON"

# Live telemetry: sweep_top --once must render a running fleet and exit
# 0. The fleet runs in the background; fleet.status appears on the
# coordinator's first status publication.
"$COORD" --quiet --workers=2 --shards=4 --dir="$SMOKE/fleet-live" \
  -- "$OBS_BENCH" "${OBS_ARGS[@]}" > /dev/null &
FLEET_PID=$!
for _ in $(seq 1 100); do
  [[ -f "$SMOKE/fleet-live/fleet.status" ]] && break
  sleep 0.05
done
./build-ci/tools/sweep_top --once --dir="$SMOKE/fleet-live" \
  > "$SMOKE/sweep_top.txt"
grep -q "fleet:" "$SMOKE/sweep_top.txt"
wait "$FLEET_PID"
echo "sweep_top rendered the live fleet (and the fleet completed)"

# Trend readers degrade gracefully when no baselines match: a clear
# note and exit 0, not a stack trace — a fresh repo has no trend yet.
./build-ci/tools/bench_trend "$SMOKE/NO_SUCH_BENCH_*.json" \
  | grep -q "no baselines to fold"
python3 scripts/bench_history.py "$SMOKE/NO_SUCH_BENCH_*.json" \
  | grep -q "no baselines to fold"
echo "bench_trend and bench_history degrade gracefully with no baselines"

echo "== streaming smoke (out-of-core, docs/streaming.md) =="
STREAM=./build-ci/bench/bench_stream_pressure
STREAM_ARGS=(--n=65536 --slab-bytes=8192 --seed=1995)

# Budget sweep: the bench runs the same stream in RAM and at budgets of
# 1/2, 1/4 and 1/8 of the data size, and itself fails on any checksum
# divergence or MemoryInvariant violation.
"$STREAM" "${STREAM_ARGS[@]}" --spill-dir="$SMOKE/stream-sweep" \
  > "$SMOKE/stream-sweep.txt"
grep -q "byte-equivalent to the in-RAM baseline" "$SMOKE/stream-sweep.txt"
echo "budget sweep: spilled runs byte-equivalent, invariant held"

# Bounded footprint under a hard address-space cap: probe the spilled
# run's true VmPeak, then rerun the identical workload under
# `ulimit -v` at peak + 25% and require byte-identical canonical output.
"$STREAM" "${STREAM_ARGS[@]}" --mem-budget=65536 \
  --spill-dir="$SMOKE/stream-probe" --out="$SMOKE/stream-probe.out" \
  > "$SMOKE/stream-probe.txt"
PEAK_KB=$(sed -n 's/.*vm_peak_kb=\([0-9]*\).*/\1/p' "$SMOKE/stream-probe.txt")
CAP_KB=$(( PEAK_KB + PEAK_KB / 4 ))
( ulimit -v "$CAP_KB"
  exec "$STREAM" "${STREAM_ARGS[@]}" --mem-budget=65536 \
    --spill-dir="$SMOKE/stream-capped" --out="$SMOKE/stream-capped.out" \
    > /dev/null )
cmp "$SMOKE/stream-probe.out" "$SMOKE/stream-capped.out"
echo "streaming run completed under ulimit -v ${CAP_KB}kB (peak ${PEAK_KB}kB)"

# A disk that is full and stays full must end the run with the
# structured degraded outcome (exit 69), never a crash or a wedge.
RC=0
"$STREAM" "${STREAM_ARGS[@]}" --mem-budget=65536 \
  --spill-dir="$SMOKE/stream-enospc" --faults=disk=enospc:1 \
  --disk-retries=1 > "$SMOKE/stream-enospc.txt" || RC=$?
if [[ "$RC" != 69 ]]; then
  echo "streaming smoke: expected exit 69 on injected ENOSPC, got $RC" >&2
  exit 1
fi
grep -q "STREAM DEGRADED" "$SMOKE/stream-enospc.txt"
echo "injected ENOSPC degrades structurally (exit 69)"

# A spill write that hangs forever must be revoked by the stall
# watchdog: structured exit 75 with cause=stalled, not a wedged process.
RC=0
"$STREAM" "${STREAM_ARGS[@]}" --mem-budget=65536 \
  --spill-dir="$SMOKE/stream-hang" --stall-timeout=0.25 \
  --chaos='shard=0,attempt=0,phase=spill:1,action=hang' \
  > "$SMOKE/stream-hang.txt" || RC=$?
if [[ "$RC" != 75 ]]; then
  echo "streaming smoke: expected exit 75 on hung spill, got $RC" >&2
  exit 1
fi
grep -q "STREAM INTERRUPTED cause=stalled" "$SMOKE/stream-hang.txt"
echo "hung spill write is revoked by the watchdog (exit 75)"

# SIGKILL at the worst instant (spill tmp fsynced, rename pending),
# then resume from the partition bank: output must be byte-identical to
# the probe run above (same stream config, budgets don't matter).
RC=0
"$STREAM" "${STREAM_ARGS[@]}" --mem-budget=65536 \
  --spill-dir="$SMOKE/stream-kill" --checkpoint="$SMOKE/stream-kill.snap" \
  --chaos='shard=0,attempt=0,phase=spill:3,action=kill' \
  > /dev/null 2>&1 || RC=$?
if [[ "$RC" == 0 ]]; then
  echo "streaming smoke: chaos kill did not fire" >&2
  exit 1
fi

# The freshly-crashed spill directory must pass the offline integrity
# check: a crash leaves orphaned *.tmp at worst, never a torn .spl chunk.
./build-ci/tools/spill_fsck --dir="$SMOKE/stream-kill" \
  > "$SMOKE/stream-fsck.txt"
grep -q ", 0 bad," "$SMOKE/stream-fsck.txt"
echo "post-crash spill directory is fsck-clean (no torn chunks)"

"$STREAM" "${STREAM_ARGS[@]}" --mem-budget=65536 \
  --spill-dir="$SMOKE/stream-kill" --checkpoint="$SMOKE/stream-kill.snap" \
  --resume --out="$SMOKE/stream-resumed.out" > /dev/null
cmp "$SMOKE/stream-probe.out" "$SMOKE/stream-resumed.out"
echo "SIGKILL mid-spill resumes byte-identically from the partition bank"

echo "ci.sh: all green"
