#!/usr/bin/env bash
# Tier-1 verification, plain and sanitized.
#
# 1. Configure + build + ctest with the default toolchain flags.
# 2. Configure + build + ctest a second tree with DXBSP_SANITIZE=ON
#    (-fsanitize=address,undefined), and run the chaos fault harness
#    explicitly under the sanitizers (random seeded fault plans are the
#    likeliest place for a latent memory bug to hide).
#
# Usage: scripts/ci.sh [jobs]
set -euo pipefail
cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

echo "== tier-1 (plain) =="
cmake -B build-ci -S . >/dev/null
cmake --build build-ci -j"$JOBS"
ctest --test-dir build-ci -j"$JOBS" --output-on-failure

echo "== tier-1 (address+UB sanitizers) =="
cmake -B build-ci-san -S . -DDXBSP_SANITIZE=ON >/dev/null
cmake --build build-ci-san -j"$JOBS"
ctest --test-dir build-ci-san -j"$JOBS" --output-on-failure

echo "== chaos fault harness under sanitizers =="
./build-ci-san/tests/fault_test \
  --gtest_filter='Chaos.*:FaultDeterminism.*'

echo "ci.sh: all green"
