#!/usr/bin/env bash
# Rebuilds everything, runs the full test suite, regenerates every
# table/figure of the paper into results/, and runs the claim tour.
# Usage: scripts/reproduce.sh [build-dir]
set -euo pipefail
cd "$(dirname "$0")/.."
BUILD="${1:-build}"

cmake -B "$BUILD" -G Ninja
cmake --build "$BUILD"
ctest --test-dir "$BUILD" -j"$(nproc)" --output-on-failure

mkdir -p results
for b in "$BUILD"/bench/bench_*; do
  name="$(basename "$b")"
  echo "== $name"
  "$b" | tee "results/${name}.txt"
done

"$BUILD"/examples/paper_tour | tee results/paper_tour.txt
echo "All outputs in results/."
