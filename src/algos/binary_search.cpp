#include "algos/binary_search.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "algos/radix_sort.hpp"
#include "util/bits.hpp"
#include "util/rng.hpp"

namespace dxbsp::algos {

namespace {

/// Fills eytz[1..m] from the sorted keys and records each node's sorted
/// position in pos_of (recursion via explicit stack to survive deep m).
void build_eytzinger(std::span<const std::uint64_t> sorted,
                     std::vector<std::uint64_t>& eytz,
                     std::vector<std::uint64_t>& pos_of) {
  const std::uint64_t m = sorted.size();
  std::uint64_t next = 0;
  // In-order traversal of the implicit tree 1..m.
  struct Frame {
    std::uint64_t t;
    bool left_done;
  };
  std::vector<Frame> stack;
  stack.push_back({1, false});
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.t > m) {
      stack.pop_back();
      continue;
    }
    if (!f.left_done) {
      f.left_done = true;
      stack.push_back({2 * f.t, false});
    } else {
      eytz[f.t] = sorted[next];
      pos_of[f.t] = next;
      ++next;
      const std::uint64_t right = 2 * f.t + 1;
      stack.pop_back();
      stack.push_back({right, false});
    }
  }
}

}  // namespace

ReplicatedTree::ReplicatedTree(Vm& vm,
                               std::span<const std::uint64_t> sorted_keys,
                               std::uint64_t expected_queries,
                               std::uint64_t target_contention,
                               std::uint64_t max_replication)
    : vm_(&vm), m_(sorted_keys.size()) {
  if (m_ == 0)
    throw std::invalid_argument("ReplicatedTree: need at least one key");
  if (!std::is_sorted(sorted_keys.begin(), sorted_keys.end()))
    throw std::invalid_argument("ReplicatedTree: keys must be sorted");

  eytz_.assign(m_ + 1, 0);
  pos_of_.assign(m_ + 1, 0);
  build_eytzinger(sorted_keys, eytz_, pos_of_);

  const unsigned levels = util::log2_floor(m_) + 1;
  level_base_.resize(levels);
  level_copies_.resize(levels);

  // Lay out the replicated levels back to back and copy node keys in.
  std::uint64_t offset = 0;
  for (unsigned l = 0; l < levels; ++l) {
    const std::uint64_t first = 1ULL << l;
    const std::uint64_t width = std::min<std::uint64_t>(first, m_ - first + 1);
    std::uint64_t copies = 1;
    if (target_contention > 0) {
      copies = util::ceil_div(expected_queries, first * target_contention);
      copies = std::clamp<std::uint64_t>(copies, 1, max_replication);
    }
    level_base_[l] = offset;
    level_copies_[l] = copies;
    offset += copies * width;
  }
  footprint_ = offset;
  storage_ = vm.make_array<std::uint64_t>(footprint_);
  for (unsigned l = 0; l < levels; ++l) {
    const std::uint64_t first = 1ULL << l;
    const std::uint64_t width = std::min<std::uint64_t>(first, m_ - first + 1);
    for (std::uint64_t c = 0; c < level_copies_[l]; ++c)
      for (std::uint64_t j = 0; j < width; ++j)
        storage_.data[level_base_[l] + c * width + j] = eytz_[first + j];
  }
  // Building the replicas is a contiguous copy of the footprint.
  vm.contiguous(storage_.region, footprint_, 2.0, "search-build-tree");
}

std::vector<std::uint64_t> ReplicatedTree::lower_bound(
    Vm& vm, std::span<const std::uint64_t> queries, std::uint64_t seed) const {
  const std::uint64_t n = queries.size();
  std::vector<std::uint64_t> t(n, 1);
  util::Xoshiro256 rng(util::substream(seed, 50));

  const unsigned levels = this->levels();
  std::vector<std::uint64_t> addrs;
  for (unsigned l = 0; l < levels; ++l) {
    const std::uint64_t first = 1ULL << l;
    const std::uint64_t width = std::min<std::uint64_t>(first, m_ - first + 1);
    const std::uint64_t copies = level_copies_[l];
    addrs.clear();
    for (std::uint64_t i = 0; i < n; ++i) {
      if (t[i] > m_) continue;  // already past a leaf (non-full bottom level)
      const std::uint64_t copy = copies == 1 ? 0 : rng.below(copies);
      addrs.push_back(storage_.region.addr(level_base_[l] + copy * width +
                                           (t[i] - first)));
      const std::uint64_t node_key = eytz_[t[i]];
      t[i] = 2 * t[i] + (node_key < queries[i] ? 1 : 0);
    }
    if (!addrs.empty()) {
      // Register-resident descent: the node index and comparison result
      // live in vector registers, so the level costs one gather plus one
      // auxiliary stream (the query keys), not the generic two.
      vm.bulk(addrs, "search-level-gather", 1.0);
      vm.compute(addrs.size(), 3.0, "search-level-step");
    }
  }

  // Decode the descent path: strip trailing 1-bits plus one 0-bit; the
  // remaining value is the Eytzinger index of the first key >= query
  // (0 means the query exceeds every key).
  std::vector<std::uint64_t> result(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    const unsigned strip = static_cast<unsigned>(std::countr_one(t[i])) + 1;
    const std::uint64_t j = strip >= 64 ? 0 : (t[i] >> strip);
    result[i] = j == 0 ? m_ : pos_of_[j];
  }
  vm.compute(n, 2.0, "search-decode");
  return result;
}

std::vector<std::uint64_t> erew_lower_bound(
    Vm& vm, std::span<const std::uint64_t> sorted_keys,
    std::span<const std::uint64_t> queries) {
  const std::uint64_t n = queries.size();
  const std::uint64_t m = sorted_keys.size();
  if (n == 0) return {};

  // Sort the queries (EREW radix sort).
  std::uint64_t maxq = 0;
  for (const auto q : queries) maxq = std::max(maxq, q);
  const unsigned bits = maxq == 0 ? 1 : util::log2_floor(maxq) + 1;
  const RadixSortResult sorted = radix_sort(vm, queries, bits);

  // Co-merge the sorted queries with the sorted keys: one contiguous
  // sweep over both arrays.
  std::vector<std::uint64_t> merged(n);
  {
    std::uint64_t ki = 0;
    for (std::uint64_t qi = 0; qi < n; ++qi) {
      const std::uint64_t q = sorted.sorted_keys[qi];
      while (ki < m && sorted_keys[ki] < q) ++ki;
      merged[qi] = ki;
    }
    auto scratch = vm.reserve(n + m);
    vm.contiguous(scratch, n + m, 2.0, "search-merge");
  }

  // Send each answer back to its original query slot: a permutation
  // scatter (distinct destinations, no location contention).
  auto result = vm.make_array<std::uint64_t>(n);
  std::vector<std::uint64_t> dest(n);
  for (std::uint64_t qi = 0; qi < n; ++qi) dest[qi] = sorted.order[qi];
  vm.scatter(result, dest, merged, "search-unsort-scatter");
  return result.data;
}

FanoutTree::FanoutTree(Vm& vm, std::span<const std::uint64_t> sorted_keys,
                       std::uint64_t fanout)
    : fanout_(fanout),
      m_(sorted_keys.size()),
      keys_(sorted_keys.begin(), sorted_keys.end()) {
  if (fanout_ < 2) throw std::invalid_argument("FanoutTree: fanout must be >= 2");
  if (m_ == 0) throw std::invalid_argument("FanoutTree: need at least one key");
  if (!std::is_sorted(sorted_keys.begin(), sorted_keys.end()))
    throw std::invalid_argument("FanoutTree: keys must be sorted");

  // Levels: smallest L with fanout^L >= m (ranges shrink by f per level).
  std::uint64_t span = 1;
  unsigned levels = 0;
  while (span < m_) {
    span *= fanout_;
    ++levels;
  }
  // Lay out separator blocks: level l has ceil(m / span_l) nodes of
  // (f-1) separators, span_l = fanout^(levels-l).
  std::uint64_t offset = 0;
  std::uint64_t span_l = span;
  for (unsigned l = 0; l < levels; ++l) {
    const std::uint64_t nodes = util::ceil_div(m_, span_l);
    level_offset_.push_back(offset);
    level_nodes_.push_back(nodes);
    offset += nodes * (fanout_ - 1);
    span_l /= fanout_;
  }
  footprint_ = std::max<std::uint64_t>(offset, 1);
  storage_ = vm.make_array<std::uint64_t>(footprint_, ~0ULL);

  span_l = span;
  for (unsigned l = 0; l < levels; ++l) {
    const std::uint64_t child = span_l / fanout_;
    for (std::uint64_t j = 0; j < level_nodes_[l]; ++j) {
      for (std::uint64_t t = 1; t < fanout_; ++t) {
        const std::uint64_t pos = j * span_l + t * child;
        storage_.data[level_offset_[l] + j * (fanout_ - 1) + t - 1] =
            pos < m_ ? keys_[pos] : ~0ULL;  // +inf sentinel past the end
      }
    }
    span_l /= fanout_;
  }
  vm.contiguous(storage_.region, footprint_, 2.0, "fanout-build");
}

std::vector<std::uint64_t> FanoutTree::lower_bound(
    Vm& vm, std::span<const std::uint64_t> queries) const {
  const std::uint64_t n = queries.size();
  std::vector<std::uint64_t> pos(n, 0);  // range start, shrinking per level

  std::uint64_t span = 1;
  for (unsigned l = 0; l < levels(); ++l) span *= fanout_;

  std::vector<std::uint64_t> addrs;
  for (unsigned l = 0; l < levels(); ++l) {
    const std::uint64_t child = span / fanout_;
    addrs.clear();
    addrs.reserve(n * (fanout_ - 1));
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::uint64_t node = pos[i] / span;
      const std::uint64_t base = level_offset_[l] + node * (fanout_ - 1);
      std::uint64_t c = 0;
      for (std::uint64_t t = 0; t + 1 < fanout_; ++t) {
        addrs.push_back(storage_.region.addr(base + t));
        const std::uint64_t sep = storage_.data[base + t];
        if (sep != ~0ULL && sep < queries[i]) ++c;
      }
      pos[i] = node * span + c * child;
    }
    vm.bulk(addrs, "fanout-level-gather", 1.0);
    vm.compute(n, static_cast<double>(fanout_), "fanout-level-step");
    span = child;
  }

  std::vector<std::uint64_t> result(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t p = std::min(pos[i], m_ - 1);
    result[i] = p + ((keys_[p] < queries[i]) ? 1 : 0);
  }
  vm.compute(n, 2.0, "fanout-finish");
  return result;
}

std::vector<std::uint64_t> reference_lower_bound(
    std::span<const std::uint64_t> sorted_keys,
    std::span<const std::uint64_t> queries) {
  std::vector<std::uint64_t> out(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    out[i] = static_cast<std::uint64_t>(
        std::lower_bound(sorted_keys.begin(), sorted_keys.end(), queries[i]) -
        sorted_keys.begin());
  }
  return out;
}

}  // namespace dxbsp::algos
