#pragma once
// Parallel binary search of n keys in a balanced search tree of size m —
// the paper's first QRQW algorithm experiment ([GMR94a]).
//
// QRQW version: the tree (Eytzinger layout of the sorted keys) has its
// top levels replicated; each query descends root-to-leaf, reading a
// uniformly random replica of the node it visits at each level. A level
// at depth l has ~2^l distinct nodes, so replication r_l ~ n/(2^l·c)
// keeps the expected per-copy contention near the constant c; total
// extra memory is O((n/c)·log m). The QRQW cost of each level is the
// max number of queries landing on one replica cell.
//
// Naive version: the same search with no replication — the root is read
// by all n queries (contention n), showing what the QRQW accounting
// punishes.
//
// EREW version: radix-sort the queries, co-merge the sorted queries with
// the sorted keys (contiguous, contention-free), then send each result
// back with a permutation scatter. Sort-based and contention-free, but
// pays the full sorting passes.

#include <cstdint>
#include <span>
#include <vector>

#include "algos/vm.hpp"

namespace dxbsp::algos {

/// A search tree over sorted keys, with per-level replication, resident
/// in a Vm's simulated address space.
class ReplicatedTree {
 public:
  /// Builds the tree over `sorted_keys` (must be ascending). Replication
  /// is sized for about `expected_queries` concurrent queries with target
  /// per-replica contention `target_contention` (>= 1); max_replication
  /// caps the copies of any level. target_contention == 0 disables
  /// replication entirely (the "naive" configuration).
  ReplicatedTree(Vm& vm, std::span<const std::uint64_t> sorted_keys,
                 std::uint64_t expected_queries,
                 std::uint64_t target_contention,
                 std::uint64_t max_replication = 1ULL << 20);

  /// Number of levels (ceil(log2(m+1))).
  [[nodiscard]] unsigned levels() const noexcept {
    return static_cast<unsigned>(level_base_.size());
  }
  /// Replication factor of level l.
  [[nodiscard]] std::uint64_t replication(unsigned level) const {
    return level_copies_.at(level);
  }
  /// Total simulated words occupied by the replicated tree.
  [[nodiscard]] std::uint64_t footprint() const noexcept { return footprint_; }
  [[nodiscard]] std::uint64_t num_keys() const noexcept { return m_; }

  /// lower_bound of each query: the number of tree keys < query (i.e. the
  /// insertion position in the sorted key array). Executes level-
  /// synchronously on `vm`, accounting one gather per level. `seed`
  /// drives the replica choices.
  [[nodiscard]] std::vector<std::uint64_t> lower_bound(
      Vm& vm, std::span<const std::uint64_t> queries, std::uint64_t seed) const;

 private:
  Vm* vm_;
  std::uint64_t m_ = 0;
  // Eytzinger tree: eytz_[t] for t in [1, m]; children of t are 2t, 2t+1.
  std::vector<std::uint64_t> eytz_;
  std::vector<std::uint64_t> pos_of_;  // sorted position of eytz_ node t
  VArray<std::uint64_t> storage_;         // all replicated levels
  std::vector<std::uint64_t> level_base_;   // offset of level l in storage_
  std::vector<std::uint64_t> level_copies_; // replication of level l
  std::uint64_t footprint_ = 0;
};

/// EREW baseline: sort-and-merge lower_bound for all queries
/// (deterministic; no replica choices to seed).
[[nodiscard]] std::vector<std::uint64_t> erew_lower_bound(
    Vm& vm, std::span<const std::uint64_t> sorted_keys,
    std::span<const std::uint64_t> queries);

/// Wide-node (B-tree style) search: an implicit tree of fanout f over
/// the sorted keys — log_f(m) levels instead of log_2(m), each level
/// gathering f-1 separator keys per query. Trades tree depth (fewer
/// contended levels, fewer round trips) for per-level traffic; on a
/// bank-delay machine the optimum fanout balances d·(root contention)
/// against g·(f-1) per level (probed by bench_a8). No replication: the
/// root block's contention is n·(f-1)/f — this is the *unreplicated*
/// wide-tree point of the design space.
class FanoutTree {
 public:
  /// Builds over ascending `sorted_keys` with fanout f >= 2.
  FanoutTree(Vm& vm, std::span<const std::uint64_t> sorted_keys,
             std::uint64_t fanout);

  [[nodiscard]] unsigned levels() const noexcept {
    return static_cast<unsigned>(level_offset_.size());
  }
  [[nodiscard]] std::uint64_t fanout() const noexcept { return fanout_; }
  [[nodiscard]] std::uint64_t footprint() const noexcept { return footprint_; }

  /// lower_bound of each query (count of keys < query), level-synchronous
  /// with one gather of (f-1) separators per query per level.
  [[nodiscard]] std::vector<std::uint64_t> lower_bound(
      Vm& vm, std::span<const std::uint64_t> queries) const;

 private:
  std::uint64_t fanout_ = 0;
  std::uint64_t m_ = 0;
  std::vector<std::uint64_t> keys_;          // the sorted keys
  VArray<std::uint64_t> storage_;            // separator blocks per level
  std::vector<std::uint64_t> level_offset_;  // offset of level l in storage_
  std::vector<std::uint64_t> level_nodes_;   // node count at level l
  std::uint64_t footprint_ = 0;
};

/// Host reference for validation (std::lower_bound semantics: first
/// index whose key >= query... see note) — returns the count of keys
/// strictly less than each query.
[[nodiscard]] std::vector<std::uint64_t> reference_lower_bound(
    std::span<const std::uint64_t> sorted_keys,
    std::span<const std::uint64_t> queries);

}  // namespace dxbsp::algos
