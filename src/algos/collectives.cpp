#include "algos/collectives.hpp"

#include "mem/contention.hpp"
#include "util/bits.hpp"
#include "util/rng.hpp"

namespace dxbsp::algos {

std::vector<std::uint64_t> broadcast_naive(Vm& vm, std::uint64_t value,
                                           std::uint64_t n) {
  auto cell = vm.make_array<std::uint64_t>(1, value);
  std::vector<std::uint64_t> out(n, 0);
  const std::vector<std::uint64_t> addrs(n, cell.region.addr(0));
  for (auto& v : out) v = cell.data[0];
  vm.bulk(addrs, "bcast-naive-read");
  return out;
}

std::vector<std::uint64_t> broadcast_replicated(Vm& vm, std::uint64_t value,
                                                std::uint64_t n,
                                                std::uint64_t seed,
                                                std::uint64_t target_contention,
                                                BroadcastStats* stats) {
  if (target_contention == 0) target_contention = 1;
  const std::uint64_t want =
      std::min<std::uint64_t>(util::ceil_pow2(util::ceil_div(
                                  n, target_contention)),
                              util::ceil_pow2(std::max<std::uint64_t>(n, 1)));
  auto replicas = vm.make_array<std::uint64_t>(std::max<std::uint64_t>(want, 1));
  replicas.data[0] = value;

  // Doubling rounds: round r copies replicas [0, 2^r) to [2^r, 2^{r+1}).
  // Sources and destinations are all distinct cells: contention 1.
  std::uint64_t copies = 1, rounds = 0;
  while (copies < want) {
    std::vector<std::uint64_t> addrs;
    addrs.reserve(2 * copies);
    for (std::uint64_t c = 0; c < copies; ++c) {
      replicas.data[copies + c] = replicas.data[c];
      addrs.push_back(replicas.region.addr(c));           // read
      addrs.push_back(replicas.region.addr(copies + c));  // write
    }
    vm.bulk(addrs, "bcast-replicate");
    copies *= 2;
    ++rounds;
  }

  // Final read: each consumer picks a random replica.
  util::Xoshiro256 rng(util::substream(seed, 95));
  std::vector<std::uint64_t> out(n);
  std::vector<std::uint64_t> addrs(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t c = rng.below(copies);
    out[i] = replicas.data[c];
    addrs[i] = replicas.region.addr(c);
  }
  vm.bulk(addrs, "bcast-replicated-read");

  if (stats != nullptr) {
    stats->rounds = rounds;
    stats->copies = copies;
    stats->read_contention = mem::analyze_locations(addrs).max_contention;
  }
  return out;
}

std::uint64_t reduce_naive(Vm& vm, std::span<const std::uint64_t> xs) {
  auto root = vm.make_array<std::uint64_t>(1, 0);
  const std::vector<std::uint64_t> idx(xs.size(), 0);
  vm.scatter_add(root, idx, xs, "reduce-naive-fetch-add");
  return root.data[0];
}

std::uint64_t reduce_tree(Vm& vm, std::span<const std::uint64_t> xs) {
  const std::uint64_t p = vm.config().processors;
  // Per-processor partial sums: one contiguous read pass.
  auto scratch = vm.reserve(std::max<std::uint64_t>(xs.size(), 1));
  std::vector<std::uint64_t> partial(p, 0);
  for (std::uint64_t i = 0; i < xs.size(); ++i)
    partial[vm.proc_of(i, xs.size())] += xs[i];
  vm.contiguous(scratch, xs.size(), 1.0, "reduce-tree-partials");
  // log p combining rounds over p cells (tiny; charged as compute).
  std::uint64_t total = 0;
  for (const auto s : partial) total += s;
  vm.compute(p, static_cast<double>(util::log2_ceil(p + 1)),
             "reduce-tree-combine");
  return total;
}

}  // namespace dxbsp::algos
