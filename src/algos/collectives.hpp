#pragma once
// Broadcast and reduction on a bank-delay machine — the single-location
// contention story in its purest form.
//
// Broadcasting one value to n consumers by having everyone read the same
// word is free on a CRCW PRAM, Θ(d·n) on a bank-delay machine (the word
// lives in one bank). The QRQW-style fix is the paper's replication
// idea: double the number of copies each round (log n rounds of
// contention-free copying), then read with bounded per-copy contention.
// Reduction is the mirror image: a naive fetch-add tree of height 0
// costs d·n at the root cell; partial sums per processor plus a small
// combine are contention-free. These are the library's collective
// primitives, instrumented like everything else.

#include <cstdint>
#include <vector>

#include "algos/vm.hpp"

namespace dxbsp::algos {

/// Instrumentation of a broadcast.
struct BroadcastStats {
  std::uint64_t rounds = 0;       ///< replication doublings performed
  std::uint64_t copies = 0;       ///< replicas available at read time
  std::uint64_t read_contention = 0;  ///< hottest replica at the final read
};

/// Naive broadcast: all n consumers gather the same cell (contention n).
/// Returns the delivered values (all equal to `value`).
[[nodiscard]] std::vector<std::uint64_t> broadcast_naive(
    Vm& vm, std::uint64_t value, std::uint64_t n);

/// Replicating broadcast: doubles the replica count each round until
/// `copies` replicas exist (default: enough for per-copy contention
/// ~`target_contention`), then every consumer reads a random replica.
[[nodiscard]] std::vector<std::uint64_t> broadcast_replicated(
    Vm& vm, std::uint64_t value, std::uint64_t n, std::uint64_t seed,
    std::uint64_t target_contention = 4, BroadcastStats* stats = nullptr);

/// Naive reduction: every element fetch-adds one root cell (contention
/// n). Returns the sum.
[[nodiscard]] std::uint64_t reduce_naive(Vm& vm,
                                         std::span<const std::uint64_t> xs);

/// Tree reduction: per-processor partial sums (contiguous), then a
/// log p combine. Contention-free. Returns the sum.
[[nodiscard]] std::uint64_t reduce_tree(Vm& vm,
                                        std::span<const std::uint64_t> xs);

}  // namespace dxbsp::algos
