#include "algos/connected_components.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "mem/contention.hpp"
#include "util/bits.hpp"
#include "util/rng.hpp"

namespace dxbsp::algos {

std::vector<std::uint32_t> connected_components(Vm& vm,
                                                const workload::Graph& g,
                                                CcStats* stats,
                                                CcOptions options) {
  g.validate();
  const std::uint64_t n = g.n;
  if (n == 0) return {};

  auto parent = vm.make_array<std::uint64_t>(n);
  for (std::uint64_t v = 0; v < n; ++v) parent.data[v] = v;
  vm.contiguous(parent.region, n, 1.0, "cc-init");

  // Live edge list (contracted as components merge), with a simulated
  // region backing the packing sweeps.
  const Region edge_region = vm.reserve(std::max<std::uint64_t>(g.m(), 1));
  std::vector<std::uint64_t> eu, ev;
  eu.reserve(g.m());
  ev.reserve(g.m());
  for (const auto& [u, v] : g.edges) {
    eu.push_back(u);
    ev.push_back(v);
  }

  const std::uint64_t max_iters =
      (options.single_shortcut ? 12 : 4) * (util::log2_ceil(n + 1) + 2) + 32;
  std::uint64_t iter = 0;

  while (!eu.empty()) {
    if (++iter > max_iters)
      throw std::logic_error("connected_components: failed to converge");
    CcIteration it;
    it.live_edges = eu.size();

    // (1) Gather both endpoint labels. The forest is flat, so parent[u]
    // is u's component label.
    std::vector<std::uint64_t> pu, pv;
    vm.gather(pu, parent, eu, "cc-gather-labels");
    vm.gather(pv, parent, ev, "cc-gather-labels");
    if (options.keep_traces && stats != nullptr) {
      std::vector<std::uint64_t> trace;
      trace.reserve(eu.size() + ev.size());
      trace.insert(trace.end(), eu.begin(), eu.end());
      trace.insert(trace.end(), ev.begin(), ev.end());
      stats->gather_traces.push_back(std::move(trace));
    }
    {
      std::vector<std::uint64_t> both;
      both.reserve(pu.size() + pv.size());
      both.insert(both.end(), pu.begin(), pu.end());
      both.insert(both.end(), pv.begin(), pv.end());
      it.gather_contention = mem::analyze_locations(both).max_contention;
    }

    // (2) Hook: the larger label's root adopts the smaller label.
    // Arbitrary winner: later edges overwrite earlier ones.
    std::vector<std::uint64_t> hook_idx, hook_val;
    for (std::size_t e = 0; e < eu.size(); ++e) {
      if (pu[e] == pv[e]) continue;
      const std::uint64_t hi = std::max(pu[e], pv[e]);
      const std::uint64_t lo = std::min(pu[e], pv[e]);
      hook_idx.push_back(hi);
      hook_val.push_back(lo);
    }
    it.hooks = hook_idx.size();
    if (it.hooks == 0) {
      // Every remaining edge is internal; contract them away and finish.
      eu.clear();
      ev.clear();
      if (stats != nullptr) stats->iterations.push_back(it);
      break;
    }
    // Monotone hook: adopt the smaller label only if it improves the
    // slot (parent values strictly decrease, so the forest stays acyclic
    // and the single-shortcut variant provably terminates; on a flat
    // forest this is identical to the unconditional write).
    {
      std::vector<std::uint64_t> addrs(hook_idx.size());
      for (std::size_t h = 0; h < hook_idx.size(); ++h) {
        addrs[h] = parent.region.addr(hook_idx[h]);
        if (hook_val[h] < parent.data[hook_idx[h]])
          parent.data[hook_idx[h]] = hook_val[h];
      }
      vm.bulk(addrs, "cc-hook-scatter");
    }
    it.hook_contention = mem::analyze_locations(hook_idx).max_contention;

    // (3) Shortcut: pointer jumping until the forest is flat again, or
    // just one round in the single-shortcut variant.
    for (;;) {
      ++it.shortcut_rounds;
      std::vector<std::uint64_t> gp;
      vm.gather(gp, parent, parent.data, "cc-shortcut-gather");
      bool changed = false;
      for (std::uint64_t v = 0; v < n; ++v) {
        if (gp[v] != parent.data[v]) changed = true;
      }
      vm.contiguous(parent.region, n, 1.0, "cc-shortcut-write");
      parent.data = std::move(gp);
      if (!changed || options.single_shortcut) break;
    }

    // (4) Contract: keep only edges whose endpoints now differ. (We use
    // this iteration's pre-hook labels where still valid; a fresh pair of
    // gathers keeps it exact.)
    std::vector<std::uint64_t> nu, nv;
    vm.gather(pu, parent, eu, "cc-contract-gather");
    vm.gather(pv, parent, ev, "cc-contract-gather");
    for (std::size_t e = 0; e < eu.size(); ++e) {
      if (pu[e] != pv[e]) {
        nu.push_back(eu[e]);
        nv.push_back(ev[e]);
      }
    }
    vm.contiguous(edge_region, eu.size(), 2.0, "cc-contract-pack");
    eu.swap(nu);
    ev.swap(nv);

    if (stats != nullptr) {
      std::unordered_set<std::uint64_t> roots(parent.data.begin(),
                                              parent.data.end());
      it.components = roots.size();
      stats->iterations.push_back(it);
    }
  }

  // Final flatten (no-op unless the loop exited via the hooks==0 branch
  // before shortcutting).
  for (;;) {
    bool changed = false;
    for (std::uint64_t v = 0; v < n; ++v) {
      const std::uint64_t gp = parent.data[parent.data[v]];
      if (gp != parent.data[v]) {
        parent.data[v] = gp;
        changed = true;
      }
    }
    if (!changed) break;
  }

  std::vector<std::uint32_t> labels(n);
  for (std::uint64_t v = 0; v < n; ++v)
    labels[v] = static_cast<std::uint32_t>(parent.data[v]);
  return labels;
}

std::vector<std::uint32_t> connected_components_random_mate(
    Vm& vm, const workload::Graph& g, std::uint64_t seed, CcStats* stats) {
  g.validate();
  const std::uint64_t n = g.n;
  if (n == 0) return {};

  auto parent = vm.make_array<std::uint64_t>(n);
  for (std::uint64_t v = 0; v < n; ++v) parent.data[v] = v;
  vm.contiguous(parent.region, n, 1.0, "rm-init");

  const Region edge_region = vm.reserve(std::max<std::uint64_t>(g.m(), 1));
  std::vector<std::uint64_t> eu, ev;
  eu.reserve(g.m());
  ev.reserve(g.m());
  for (const auto& [u, v] : g.edges) {
    eu.push_back(u);
    ev.push_back(v);
  }

  util::Xoshiro256 rng(util::substream(seed, 90));
  // Random mate merges each live edge with probability 1/4 per round;
  // 8 log n + 64 rounds fail with negligible probability, and a failure
  // here is a logic error worth hearing about.
  const std::uint64_t max_iters = 8 * (util::log2_ceil(n + 1) + 2) + 64;
  std::uint64_t iter = 0;
  std::vector<std::uint8_t> coin(n);

  while (!eu.empty()) {
    if (++iter > max_iters)
      throw std::logic_error(
          "connected_components_random_mate: failed to converge");
    CcIteration it;
    it.live_edges = eu.size();

    // Coin flips for every vertex (only roots' coins matter).
    for (std::uint64_t v = 0; v < n; ++v)
      coin[v] = static_cast<std::uint8_t>(rng() & 1);
    vm.compute(n, 2.0, "rm-coins");

    std::vector<std::uint64_t> pu, pv;
    vm.gather(pu, parent, eu, "rm-gather-labels");
    vm.gather(pv, parent, ev, "rm-gather-labels");
    {
      std::vector<std::uint64_t> both;
      both.reserve(pu.size() + pv.size());
      both.insert(both.end(), pu.begin(), pu.end());
      both.insert(both.end(), pv.begin(), pv.end());
      it.gather_contention = mem::analyze_locations(both).max_contention;
    }

    // Hook tail roots under head roots (arbitrary winner).
    std::vector<std::uint64_t> hook_idx, hook_val;
    std::vector<std::uint64_t> nu, nv;
    for (std::size_t e = 0; e < eu.size(); ++e) {
      if (pu[e] == pv[e]) continue;  // contracted away below
      nu.push_back(eu[e]);
      nv.push_back(ev[e]);
      const bool hu = coin[pu[e]] != 0, hv = coin[pv[e]] != 0;
      if (hu && !hv) {
        hook_idx.push_back(pv[e]);
        hook_val.push_back(pu[e]);
      } else if (hv && !hu) {
        hook_idx.push_back(pu[e]);
        hook_val.push_back(pv[e]);
      }
    }
    it.hooks = hook_idx.size();
    vm.contiguous(edge_region, eu.size(), 2.0, "rm-contract-pack");
    eu.swap(nu);
    ev.swap(nv);
    if (!hook_idx.empty()) {
      vm.scatter(parent, hook_idx, hook_val, "rm-hook-scatter");
      it.hook_contention = mem::analyze_locations(hook_idx).max_contention;

      // Tails' children are now depth 2; one jump flattens the forest.
      std::vector<std::uint64_t> gp;
      vm.gather(gp, parent, parent.data, "rm-shortcut-gather");
      vm.contiguous(parent.region, n, 1.0, "rm-shortcut-write");
      parent.data = std::move(gp);
      it.shortcut_rounds = 1;
    }

    if (stats != nullptr) {
      std::unordered_set<std::uint64_t> roots(parent.data.begin(),
                                              parent.data.end());
      it.components = roots.size();
      stats->iterations.push_back(it);
    }
  }

  std::vector<std::uint32_t> labels(n);
  for (std::uint64_t v = 0; v < n; ++v)
    labels[v] = static_cast<std::uint32_t>(parent.data[v]);
  return labels;
}

bool same_partition(const std::vector<std::uint32_t>& a,
                    const std::vector<std::uint32_t>& b) {
  if (a.size() != b.size()) return false;
  std::unordered_map<std::uint32_t, std::uint32_t> a2b, b2a;
  for (std::size_t v = 0; v < a.size(); ++v) {
    const auto [ia, oka] = a2b.try_emplace(a[v], b[v]);
    if (!oka && ia->second != b[v]) return false;
    const auto [ib, okb] = b2a.try_emplace(b[v], a[v]);
    if (!okb && ib->second != a[v]) return false;
  }
  return true;
}

}  // namespace dxbsp::algos
