#pragma once
// Connected components by parallel hook-and-contract, in the style of
// Greiner's data-parallel algorithm [Gre94] (hooking, repeated
// shortcutting, contraction) — the paper's closing experiment and the
// source of the Figure-1 access patterns.
//
// Each iteration (the forest is kept flat, i.e. all trees are stars):
//   1. gather the component labels of both endpoints of every live edge
//      (contention = degree of popular components — the star graph drives
//      this to m);
//   2. hook: every edge with differing labels writes the smaller label
//      over the larger one's root (arbitrary winner scatter);
//   3. shortcut: pointer-jump until the forest is flat again;
//   4. contract: discard edges that became internal.
// Terminates because every iteration with a live edge removes at least
// one root.

#include <cstdint>
#include <vector>

#include "algos/vm.hpp"
#include "workload/graphs.hpp"

namespace dxbsp::algos {

/// Per-iteration instrumentation.
struct CcIteration {
  std::uint64_t live_edges = 0;
  std::uint64_t hooks = 0;                ///< edges that attempted a hook
  std::uint64_t gather_contention = 0;    ///< hottest label in the gathers
  std::uint64_t hook_contention = 0;      ///< hottest hook target
  std::uint64_t shortcut_rounds = 0;
  std::uint64_t components = 0;           ///< roots remaining afterwards
};

/// Whole-run instrumentation.
struct CcStats {
  std::vector<CcIteration> iterations;
  /// When requested, the label-gather address traces of each iteration
  /// (the "patterns extracted from a trace" of Figure 1).
  std::vector<std::vector<std::uint64_t>> gather_traces;
};

/// Options for the run.
struct CcOptions {
  bool keep_traces = false;  ///< record gather_traces in the stats
  /// When true, run only ONE pointer-jump round per iteration instead of
  /// flattening the forest completely (Greiner's design space: cheaper
  /// iterations, deeper trees, more of them). Correctness is preserved —
  /// parent pointers always decrease, so the forest stays acyclic.
  bool single_shortcut = false;
};

/// Computes per-vertex component labels on the simulated machine.
/// Labels equal the smallest vertex id reachable... more precisely, all
/// vertices of a component share one label (a vertex id in the
/// component); validate against workload::reference_components by
/// partition equivalence. Cost breakdown lands in vm.ledger().
[[nodiscard]] std::vector<std::uint32_t> connected_components(
    Vm& vm, const workload::Graph& g, CcStats* stats = nullptr,
    CcOptions options = {});

/// Random-mate variant (the coin-flipping alternative in Greiner's
/// comparison [Gre94]): every root flips a coin; each live edge whose
/// endpoints' roots drew head/tail hooks the tail root under the head
/// root. Trees stay depth <= 2, so a single shortcut per iteration
/// flattens — at the price of more iterations (each edge merges with
/// probability 1/4 per round) and therefore more full-size gathers.
/// Deterministic in `seed`.
[[nodiscard]] std::vector<std::uint32_t> connected_components_random_mate(
    Vm& vm, const workload::Graph& g, std::uint64_t seed,
    CcStats* stats = nullptr);

/// True iff two labelings induce the same partition of [0, n).
[[nodiscard]] bool same_partition(const std::vector<std::uint32_t>& a,
                                  const std::vector<std::uint32_t>& b);

}  // namespace dxbsp::algos
