#include "algos/kernels.hpp"

#include <stdexcept>

#include "util/bits.hpp"

namespace dxbsp::algos {

void transpose(Vm& vm, const VArray<double>& a, VArray<double>& b,
               std::uint64_t rows, std::uint64_t cols) {
  if (a.size() != rows * cols || b.size() != rows * cols)
    throw std::invalid_argument("transpose: dimension mismatch");
  // Reads are row-major contiguous; writes stride by `rows`.
  std::vector<std::uint64_t> write_addrs;
  write_addrs.reserve(rows * cols);
  for (std::uint64_t i = 0; i < rows; ++i) {
    for (std::uint64_t j = 0; j < cols; ++j) {
      b.data[j * rows + i] = a.data[i * cols + j];
      write_addrs.push_back(b.region.addr(j * rows + i));
    }
  }
  vm.contiguous(a.region, rows * cols, 1.0, "transpose-read");
  vm.bulk(write_addrs, "transpose-write", 1.0);
}

void walsh_hadamard(Vm& vm, VArray<double>& data) {
  const std::uint64_t n = data.size();
  if (!util::is_pow2(n))
    throw std::invalid_argument("walsh_hadamard: size must be a power of 2");
  for (std::uint64_t half = 1; half < n; half *= 2) {
    // One stage: butterflies on pairs (i, i + half); the memory system
    // sees two interleaved stride patterns plus the writes back.
    std::vector<std::uint64_t> addrs;
    addrs.reserve(2 * n);
    for (std::uint64_t base = 0; base < n; base += 2 * half) {
      for (std::uint64_t i = base; i < base + half; ++i) {
        const double x = data.data[i];
        const double y = data.data[i + half];
        data.data[i] = x + y;
        data.data[i + half] = x - y;
        addrs.push_back(data.region.addr(i));
        addrs.push_back(data.region.addr(i + half));
      }
    }
    vm.bulk(addrs, "wht-stage", 1.0);
    vm.compute(n, 1.0, "wht-stage-flops");
  }
}

void stencil5(Vm& vm, const VArray<double>& in, VArray<double>& out,
              std::uint64_t w, std::uint64_t h) {
  if (in.size() != w * h || out.size() != w * h)
    throw std::invalid_argument("stencil5: dimension mismatch");
  // E/W neighbours are contiguous streams; N/S stride by w.
  std::vector<std::uint64_t> ns_addrs;
  ns_addrs.reserve(2 * w * h);
  for (std::uint64_t y = 0; y < h; ++y) {
    for (std::uint64_t x = 0; x < w; ++x) {
      const auto at = [&](std::int64_t xx, std::int64_t yy) -> double {
        if (xx < 0 || yy < 0 || xx >= static_cast<std::int64_t>(w) ||
            yy >= static_cast<std::int64_t>(h))
          return 0.0;
        return in.data[static_cast<std::uint64_t>(yy) * w +
                       static_cast<std::uint64_t>(xx)];
      };
      const auto xi = static_cast<std::int64_t>(x);
      const auto yi = static_cast<std::int64_t>(y);
      out.data[y * w + x] = (at(xi, yi - 1) + at(xi, yi + 1) +
                             at(xi - 1, yi) + at(xi + 1, yi)) /
                            4.0;
      if (y > 0) ns_addrs.push_back(in.region.addr((y - 1) * w + x));
      if (y + 1 < h) ns_addrs.push_back(in.region.addr((y + 1) * w + x));
    }
  }
  vm.contiguous(in.region, w * h, 3.0, "stencil-ew-streams");
  vm.bulk(ns_addrs, "stencil-ns", 1.0);
  vm.contiguous(out.region, w * h, 1.0, "stencil-write");
  vm.compute(w * h, 4.0, "stencil-flops");
}

std::vector<double> reference_transpose(const std::vector<double>& a,
                                        std::uint64_t rows,
                                        std::uint64_t cols) {
  std::vector<double> b(rows * cols);
  for (std::uint64_t i = 0; i < rows; ++i)
    for (std::uint64_t j = 0; j < cols; ++j) b[j * rows + i] = a[i * cols + j];
  return b;
}

std::vector<double> reference_walsh_hadamard(std::vector<double> x) {
  for (std::size_t half = 1; half < x.size(); half *= 2) {
    for (std::size_t base = 0; base < x.size(); base += 2 * half) {
      for (std::size_t i = base; i < base + half; ++i) {
        const double a = x[i], b = x[i + half];
        x[i] = a + b;
        x[i + half] = a - b;
      }
    }
  }
  return x;
}

std::vector<double> reference_stencil5(const std::vector<double>& in,
                                       std::uint64_t w, std::uint64_t h) {
  std::vector<double> out(w * h, 0.0);
  for (std::uint64_t y = 0; y < h; ++y) {
    for (std::uint64_t x = 0; x < w; ++x) {
      double acc = 0.0;
      if (y > 0) acc += in[(y - 1) * w + x];
      if (y + 1 < h) acc += in[(y + 1) * w + x];
      if (x > 0) acc += in[y * w + x - 1];
      if (x + 1 < w) acc += in[y * w + x + 1];
      out[y * w + x] = acc / 4.0;
    }
  }
  return out;
}

}  // namespace dxbsp::algos
