#pragma once
// Structured-access kernels: the regular counterparts of the paper's
// irregular workloads.
//
// The related work the paper cites ([OL85], [CS86], [Soh93]) studies
// bank contention for *strided* access — transposes, FFT butterflies,
// stencils. These kernels complete the library's workload spectrum: all
// of them are contention-free in the QRQW sense (every location touched
// once per pass) yet can be catastrophic for an interleaved bank map
// when their stride shares factors with the bank count — the module-map
// problem §4 solves by hashing. Each kernel computes a real, testable
// result while its access trace runs through the machine.

#include <cstdint>
#include <vector>

#include "algos/vm.hpp"

namespace dxbsp::algos {

/// Out-of-place matrix transpose: b[j*rows + i] = a[i*cols + j].
/// The write side strides by `rows` — the canonical bank pathology when
/// rows is a multiple of the bank count.
void transpose(Vm& vm, const VArray<double>& a, VArray<double>& b,
               std::uint64_t rows, std::uint64_t cols);

/// In-place Walsh–Hadamard transform of data (size must be a power of
/// two). Stage s performs butterflies on pairs (i, i + 2^s): the classic
/// FFT-style stride ladder, hitting every power-of-two stride up to n/2.
/// Self-inverse up to scaling: wht(wht(x)) == n * x.
void walsh_hadamard(Vm& vm, VArray<double>& data);

/// One Jacobi sweep of the 5-point stencil on a w x h grid with zero
/// boundaries: out = (N + S + E + W) / 4. The N/S neighbours stride by
/// w. Returns nothing; out.data holds the result.
void stencil5(Vm& vm, const VArray<double>& in, VArray<double>& out,
              std::uint64_t w, std::uint64_t h);

/// Host references for the three kernels.
[[nodiscard]] std::vector<double> reference_transpose(
    const std::vector<double>& a, std::uint64_t rows, std::uint64_t cols);
[[nodiscard]] std::vector<double> reference_walsh_hadamard(
    std::vector<double> x);
[[nodiscard]] std::vector<double> reference_stencil5(
    const std::vector<double>& in, std::uint64_t w, std::uint64_t h);

}  // namespace dxbsp::algos
