#include "algos/list_ranking.hpp"

#include <stdexcept>

#include "mem/contention.hpp"
#include "util/bits.hpp"
#include "workload/patterns.hpp"

namespace dxbsp::algos {

std::vector<std::uint64_t> list_rank(Vm& vm,
                                     std::span<const std::uint64_t> next,
                                     ListRankStats* stats) {
  const std::uint64_t n = next.size();
  if (n == 0) return {};
  std::uint64_t tail = n;
  for (std::uint64_t i = 0; i < n; ++i) {
    if (next[i] >= n)
      throw std::invalid_argument("list_rank: successor out of range");
    if (next[i] == i) {
      if (tail != n)
        throw std::invalid_argument("list_rank: multiple tails");
      tail = i;
    }
  }
  if (tail == n) throw std::invalid_argument("list_rank: no tail");

  auto nxt = vm.make_array<std::uint64_t>(n);
  auto rank = vm.make_array<std::uint64_t>(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    nxt.data[i] = next[i];
    rank.data[i] = next[i] == i ? 0 : 1;
  }
  vm.contiguous(nxt.region, n, 2.0, "rank-init");

  const std::uint64_t max_rounds = util::log2_ceil(n + 1) + 2;
  std::uint64_t round = 0;
  for (;;) {
    if (++round > max_rounds)
      throw std::invalid_argument("list_rank: not a single-tail list");
    // Gather successor ranks and successors' successors.
    std::vector<std::uint64_t> srank, snext;
    vm.gather(srank, rank, nxt.data, "rank-gather-rank");
    vm.gather(snext, nxt, nxt.data, "rank-gather-next");

    if (stats != nullptr) {
      ListRankRound r;
      r.gather_contention =
          mem::analyze_locations(nxt.data).max_contention;
      for (std::uint64_t i = 0; i < n; ++i) r.active += (nxt.data[i] != i);
      stats->rounds.push_back(r);
    }

    bool changed = false;
    for (std::uint64_t i = 0; i < n; ++i) {
      if (nxt.data[i] == i) continue;
      rank.data[i] += srank[i];
      nxt.data[i] = snext[i];
      changed = true;
    }
    vm.contiguous(rank.region, n, 2.0, "rank-update");
    if (!changed) break;
    // Done once every pointer reaches the tail (next == next's next for
    // all, i.e. all point at the self-looped tail).
    bool flat = true;
    for (std::uint64_t i = 0; i < n && flat; ++i)
      flat = (nxt.data[i] == nxt.data[nxt.data[i]]);
    if (flat) break;
  }
  // Detached cycles can fold onto themselves (a cycle whose length
  // divides 2^rounds becomes a forest of fake self-loops) — only
  // convergence onto the *input* tail certifies a genuine list.
  for (std::uint64_t i = 0; i < n; ++i)
    if (nxt.data[i] != tail)
      throw std::invalid_argument("list_rank: input contains a cycle");
  return rank.data;
}

std::vector<std::uint64_t> random_list(std::uint64_t n, std::uint64_t seed) {
  // Visit order = seeded permutation; node order[j] precedes order[j+1].
  const auto order = workload::random_permutation(n, seed);
  std::vector<std::uint64_t> next(n);
  for (std::uint64_t j = 0; j + 1 < n; ++j) next[order[j]] = order[j + 1];
  if (n > 0) next[order[n - 1]] = order[n - 1];  // tail self-loop
  return next;
}

std::vector<std::uint64_t> reference_list_rank(
    std::span<const std::uint64_t> next) {
  const std::uint64_t n = next.size();
  std::vector<std::uint64_t> rank(n, 0);
  // Find the tail, then walk backwards by inverting the list.
  std::vector<std::uint64_t> prev(n, ~0ULL);
  std::uint64_t tail = ~0ULL;
  for (std::uint64_t i = 0; i < n; ++i) {
    if (next[i] == i) {
      tail = i;
    } else {
      prev[next[i]] = i;
    }
  }
  if (tail == ~0ULL) throw std::invalid_argument("reference: no tail");
  std::uint64_t node = tail, r = 0;
  while (true) {
    rank[node] = r++;
    if (prev[node] == ~0ULL) break;
    node = prev[node];
  }
  return rank;
}

}  // namespace dxbsp::algos
