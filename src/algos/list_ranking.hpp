#pragma once
// Parallel list ranking by pointer jumping (Wyllie), the [RM94] workload
// the paper names among the algorithms whose contention it wants
// analyzed.
//
// Each round every node gathers its successor's rank and successor
// (rank[i] += rank[next[i]]; next[i] = next[next[i]]). The interesting
// contention behaviour: as pointers collapse, more and more nodes point
// at the terminal, so the gather contention at the tail grows
// geometrically round by round — on a bank-delay machine the *late*
// rounds are the expensive ones even though every round moves the same
// n words. The instrumentation exposes exactly that profile.

#include <cstdint>
#include <span>
#include <vector>

#include "algos/vm.hpp"

namespace dxbsp::algos {

/// Per-round instrumentation of a list-ranking run.
struct ListRankRound {
  std::uint64_t gather_contention = 0;  ///< hottest successor this round
  std::uint64_t active = 0;             ///< nodes still jumping
};

struct ListRankStats {
  std::vector<ListRankRound> rounds;
};

/// Ranks a linked list given as a successor array: next[i] is the
/// successor of node i, and the tail points to itself. Returns rank[i] =
/// number of links from i to the tail (tail gets 0). Throws
/// std::invalid_argument if `next` is not a valid single-tail list
/// structure (out-of-range successor) — cycles are detected during the
/// run and reported the same way.
[[nodiscard]] std::vector<std::uint64_t> list_rank(
    Vm& vm, std::span<const std::uint64_t> next,
    ListRankStats* stats = nullptr);

/// A random list over n nodes: returns the successor array of a single
/// chain visiting all nodes in a seeded random order.
[[nodiscard]] std::vector<std::uint64_t> random_list(std::uint64_t n,
                                                     std::uint64_t seed);

/// Host reference (sequential walk).
[[nodiscard]] std::vector<std::uint64_t> reference_list_rank(
    std::span<const std::uint64_t> next);

}  // namespace dxbsp::algos
