#include "algos/merge.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/bits.hpp"

namespace dxbsp::algos {

std::pair<std::uint64_t, std::uint64_t> co_rank(
    std::uint64_t k, std::span<const std::uint64_t> a,
    std::span<const std::uint64_t> b) {
  if (k > a.size() + b.size())
    throw std::invalid_argument("co_rank: k exceeds total length");
  // Binary search over i in [max(0, k-|b|), min(k, |a|)] (inclusive) for
  // the split with a[i-1] <= b[j] and b[j-1] <= a[i] (ties taken from a,
  // matching std::merge's stability).
  std::uint64_t lo = k > b.size() ? k - b.size() : 0;
  std::uint64_t hi = std::min<std::uint64_t>(k, a.size());
  for (;;) {
    const std::uint64_t i = lo + (hi - lo) / 2;
    const std::uint64_t j = k - i;
    if (i < a.size() && j > 0 && b[j - 1] > a[i]) {
      lo = i + 1;  // need more of a
    } else if (i > 0 && j < b.size() && a[i - 1] > b[j]) {
      hi = i - 1;  // took too much of a
    } else {
      return {i, j};
    }
  }
}

std::vector<std::uint64_t> parallel_merge(Vm& vm,
                                          std::span<const std::uint64_t> a,
                                          std::span<const std::uint64_t> b) {
  const std::uint64_t n = a.size() + b.size();
  std::vector<std::uint64_t> out(n);
  if (n == 0) return out;
  const std::uint64_t p = vm.config().processors;
  const std::uint64_t chunk = util::ceil_div(n, p);

  // Each processor co-ranks its chunk boundary: ~log(n) probed elements
  // per boundary, gathered from the two inputs. We account the probe
  // addresses of every boundary search as one (tiny) irregular op.
  const Region ra = vm.reserve(std::max<std::uint64_t>(a.size(), 1));
  const Region rb = vm.reserve(std::max<std::uint64_t>(b.size(), 1));
  std::vector<std::uint64_t> probes;
  for (std::uint64_t c = 1; c < p && c * chunk < n; ++c) {
    const std::uint64_t k = c * chunk;
    // The binary search probes O(log) positions; approximating the probe
    // trace by the final split neighbourhood keeps accounting honest
    // without re-instrumenting the search loop.
    const auto [i, j] = co_rank(k, a, b);
    const unsigned depth = util::log2_ceil(n + 1);
    for (unsigned t = 0; t < depth; ++t) {
      probes.push_back(ra.addr(std::min<std::uint64_t>(
          i + t < a.size() ? i + t : (a.size() ? a.size() - 1 : 0),
          a.size() ? a.size() - 1 : 0)));
      if (!b.empty())
        probes.push_back(rb.addr(std::min<std::uint64_t>(j, b.size() - 1)));
    }
  }
  if (!probes.empty()) vm.bulk(probes, "merge-corank");

  // Sequential semantics (equivalent to each processor merging its
  // chunk); the traffic is three contiguous streams.
  std::merge(a.begin(), a.end(), b.begin(), b.end(), out.begin());
  const Region ro = vm.reserve(n);
  vm.contiguous(ro, n, 3.0, "merge-streams");
  return out;
}

std::vector<std::uint64_t> merge_sort(Vm& vm,
                                      std::span<const std::uint64_t> keys) {
  std::vector<std::uint64_t> cur(keys.begin(), keys.end());
  if (cur.size() <= 1) return cur;
  const std::uint64_t n = cur.size();
  // Bottom-up: runs double per pass. Every pass merges ALL pairs in one
  // sweep (the vectorized formulation), so the whole pass is charged as
  // three contiguous streams plus one co-rank batch — not per-pair
  // latencies, which would overcharge the small-run passes by orders of
  // magnitude.
  const Region pass_region = vm.reserve(n);
  const std::uint64_t p = vm.config().processors;
  std::vector<std::uint64_t> next(n);
  for (std::uint64_t run = 1; run < n; run *= 2) {
    for (std::uint64_t base = 0; base < n; base += 2 * run) {
      const std::uint64_t mid = std::min(base + run, n);
      const std::uint64_t end = std::min(base + 2 * run, n);
      std::merge(cur.begin() + static_cast<std::ptrdiff_t>(base),
                 cur.begin() + static_cast<std::ptrdiff_t>(mid),
                 cur.begin() + static_cast<std::ptrdiff_t>(mid),
                 cur.begin() + static_cast<std::ptrdiff_t>(end),
                 next.begin() + static_cast<std::ptrdiff_t>(base));
    }
    vm.contiguous(pass_region, n, 3.0, "msort-pass");
    // Boundary co-ranking for the pass: p-1 searches of log(n) probes.
    vm.compute((p - 1) * (util::log2_ceil(n + 1) + 1), 4.0, "msort-corank");
    cur.swap(next);
  }
  return cur;
}

}  // namespace dxbsp::algos
