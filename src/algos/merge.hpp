#pragma once
// Parallel merge by co-ranking — the "merging" substep the paper's
// binary-search discussion points at ([RV87] and the sort-and-merge
// EREW baselines).
//
// Merging two sorted sequences is the EREW-friendliest of primitives:
// each processor binary-searches the split points of its output range
// (O(p log(n+m)) scattered reads with contention <= p), then emits its
// chunk with purely contiguous traffic. On a bank-delay machine it is
// bandwidth-bound end to end — the counterpoint to the contention-
// carrying algorithms, and the building block of the EREW merge sort
// (also provided) that completes the sort-algorithm family next to
// radix_sort.

#include <cstdint>
#include <span>
#include <vector>

#include "algos/vm.hpp"

namespace dxbsp::algos {

/// Merges sorted sequences a and b into one sorted vector, charging the
/// co-ranking searches and the contiguous merge traffic to `vm`.
[[nodiscard]] std::vector<std::uint64_t> parallel_merge(
    Vm& vm, std::span<const std::uint64_t> a,
    std::span<const std::uint64_t> b);

/// EREW merge sort built on parallel_merge: log2(ceil(n/p)) ... standard
/// bottom-up passes, each a sweep of pairwise merges. Returns the sorted
/// keys. (radix_sort is the practical competitor; this exists to
/// complete the comparison family and for non-integer-width keys.)
[[nodiscard]] std::vector<std::uint64_t> merge_sort(
    Vm& vm, std::span<const std::uint64_t> keys);

/// Co-rank: the split position pair (i, j) with i + j = k such that
/// merging a[0..i) and b[0..j) yields the first k outputs. Exposed for
/// tests.
[[nodiscard]] std::pair<std::uint64_t, std::uint64_t> co_rank(
    std::uint64_t k, std::span<const std::uint64_t> a,
    std::span<const std::uint64_t> b);

}  // namespace dxbsp::algos
