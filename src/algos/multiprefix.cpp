#include "algos/multiprefix.hpp"

#include <stdexcept>

#include "algos/primitives.hpp"
#include "algos/radix_sort.hpp"
#include "util/bits.hpp"

namespace dxbsp::algos {

namespace {
void check_inputs(std::span<const std::uint64_t> keys,
                  std::span<const std::uint64_t> values,
                  std::uint64_t num_keys) {
  if (keys.size() != values.size())
    throw std::invalid_argument("multiprefix: keys/values size mismatch");
  if (num_keys == 0)
    throw std::invalid_argument("multiprefix: need at least one key slot");
  for (const auto k : keys)
    if (k >= num_keys)
      throw std::invalid_argument("multiprefix: key out of range");
}
}  // namespace

MultiprefixResult multiprefix_fetch_add(Vm& vm,
                                        std::span<const std::uint64_t> keys,
                                        std::span<const std::uint64_t> values,
                                        std::uint64_t num_keys) {
  check_inputs(keys, values, num_keys);
  const std::uint64_t n = keys.size();

  auto counters = vm.make_array<std::uint64_t>(num_keys, 0);
  vm.contiguous(counters.region, num_keys, 1.0, "mp-zero");

  MultiprefixResult r;
  r.prefix.resize(n);
  // Semantics: FIFO fetch-and-add in element order; the memory system
  // sees one scatter_add trace whose location contention is the largest
  // key multiplicity.
  for (std::uint64_t i = 0; i < n; ++i) {
    r.prefix[i] = counters.data[keys[i]];
    counters.data[keys[i]] += values[i];
  }
  {
    std::vector<std::uint64_t> addrs(n);
    for (std::uint64_t i = 0; i < n; ++i)
      addrs[i] = counters.region.addr(keys[i]);
    vm.bulk(addrs, "mp-fetch-add");
  }
  r.totals = counters.data;
  return r;
}

MultiprefixResult multiprefix_sorted(Vm& vm,
                                     std::span<const std::uint64_t> keys,
                                     std::span<const std::uint64_t> values,
                                     std::uint64_t num_keys,
                                     unsigned key_bits) {
  check_inputs(keys, values, num_keys);
  const std::uint64_t n = keys.size();
  if (key_bits == 0)
    key_bits = num_keys <= 1 ? 1 : util::log2_ceil(num_keys);

  MultiprefixResult r;
  r.prefix.assign(n, 0);
  r.totals.assign(num_keys, 0);
  if (n == 0) return r;

  // (1) Stable sort element ids by key: equal keys keep element order,
  // which is exactly the fetch-add serialization order.
  const RadixSortResult sorted = radix_sort(vm, keys, key_bits);

  // (2) Gather values into sorted order (a permutation gather).
  auto vals = vm.make_array<std::uint64_t>(n);
  for (std::uint64_t i = 0; i < n; ++i) vals.data[i] = values[i];
  std::vector<std::uint64_t> sorted_vals;
  vm.gather(sorted_vals, vals, sorted.order, "mp-sort-gather-values");

  // (3) Segmented exclusive scan within equal-key runs (one contiguous
  // sweep, [BHZ93] style).
  std::vector<std::uint64_t> sorted_prefix(n);
  std::vector<std::uint64_t> run_total_key;
  {
    std::uint64_t acc = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
      if (i > 0 && sorted.sorted_keys[i] != sorted.sorted_keys[i - 1]) {
        r.totals[sorted.sorted_keys[i - 1]] = acc;
        acc = 0;
      }
      sorted_prefix[i] = acc;
      acc += sorted_vals[i];
    }
    r.totals[sorted.sorted_keys[n - 1]] = acc;
    vm.contiguous(vals.region, n, 3.0, "mp-segscan");
  }

  // (4) Unsort: permutation scatter of the prefixes back to element order.
  auto out = vm.make_array<std::uint64_t>(n);
  vm.scatter(out, sorted.order, sorted_prefix, "mp-unsort-scatter");
  r.prefix = out.data;
  return r;
}

MultiprefixResult reference_multiprefix(std::span<const std::uint64_t> keys,
                                        std::span<const std::uint64_t> values,
                                        std::uint64_t num_keys) {
  check_inputs(keys, values, num_keys);
  MultiprefixResult r;
  r.prefix.resize(keys.size());
  r.totals.assign(num_keys, 0);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    r.prefix[i] = r.totals[keys[i]];
    r.totals[keys[i]] += values[i];
  }
  return r;
}

}  // namespace dxbsp::algos
