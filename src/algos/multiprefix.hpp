#pragma once
// Multiprefix ([She93], named by the paper as a contention study target):
// given keys and values, compute for every element the exclusive running
// sum of the values of earlier elements with the *same key* (and,
// as a byproduct, the per-key totals).
//
// Two implementations spanning the paper's design axis:
//  * fetch-add (QRQW style): every element performs an atomic
//    fetch-and-add on counter[key]. The memory system serializes the
//    per-key queues at one request per d cycles, so the time is
//    max(g·n/p, d·k) with k the largest key multiplicity — cheap when
//    keys are spread, expensive when one key dominates, and the model
//    charges exactly that.
//  * sort-based (EREW style): radix-sort by key, segmented scan within
//    key runs, unsort. Contention-free, cost independent of the key
//    distribution — the safe-but-slow route.
// The crossover between the two as the hottest key grows is the
// QRQW-vs-EREW story in miniature (bench_fig15_multiprefix).

#include <cstdint>
#include <span>
#include <vector>

#include "algos/vm.hpp"

namespace dxbsp::algos {

/// Result of a multiprefix: per-element exclusive prefix within its key
/// class, plus the final per-key totals (indexed by key).
struct MultiprefixResult {
  std::vector<std::uint64_t> prefix;  ///< size n
  std::vector<std::uint64_t> totals;  ///< size num_keys
};

/// Fetch-add multiprefix. Keys must be < num_keys. Element order defines
/// the serialization order (matching a FIFO memory system).
[[nodiscard]] MultiprefixResult multiprefix_fetch_add(
    Vm& vm, std::span<const std::uint64_t> keys,
    std::span<const std::uint64_t> values, std::uint64_t num_keys);

/// Sort-based multiprefix (same semantics, EREW mechanics). `key_bits`
/// must cover num_keys (0 = derive from num_keys).
[[nodiscard]] MultiprefixResult multiprefix_sorted(
    Vm& vm, std::span<const std::uint64_t> keys,
    std::span<const std::uint64_t> values, std::uint64_t num_keys,
    unsigned key_bits = 0);

/// Host reference.
[[nodiscard]] MultiprefixResult reference_multiprefix(
    std::span<const std::uint64_t> keys,
    std::span<const std::uint64_t> values, std::uint64_t num_keys);

}  // namespace dxbsp::algos
