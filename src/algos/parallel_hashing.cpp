#include "algos/parallel_hashing.hpp"

#include <stdexcept>
#include <unordered_set>

#include "mem/contention.hpp"
#include "mem/hash.hpp"
#include "util/rng.hpp"

namespace dxbsp::algos {

namespace {
/// Round-r probe cell for `key`: a fresh cubic universal hash per round,
/// multiply-shift reduced to the table size.
std::uint64_t probe_cell(std::uint64_t key, std::uint64_t hash_seed,
                         std::uint64_t slots) {
  util::Xoshiro256 rng(hash_seed);
  const mem::PolynomialHash h(mem::HashDegree::kCubic, 32, rng);
  return (h(key) * slots) >> 32;
}
}  // namespace

ParallelHashTable::ParallelHashTable(Vm& vm,
                                     std::span<const std::uint64_t> keys,
                                     std::uint64_t slots, std::uint64_t seed,
                                     HashBuildStats* stats)
    : slots_(slots), seed_(seed), keys_(keys.begin(), keys.end()) {
  if (slots_ < keys.size() + 1)
    throw std::invalid_argument("ParallelHashTable: table too small");
  {
    std::unordered_set<std::uint64_t> distinct(keys.begin(), keys.end());
    if (distinct.size() != keys.size())
      throw std::invalid_argument("ParallelHashTable: keys must be distinct");
  }

  table_ = vm.make_array<std::uint64_t>(slots_, kNotFound);
  vm.contiguous(table_.region, slots_, 1.0, "hash-init");
  round_of_.assign(keys.size(), 0);

  std::vector<std::uint64_t> live(keys.size());
  for (std::uint64_t i = 0; i < keys.size(); ++i) live[i] = i;

  std::uint64_t round = 0;
  const std::uint64_t max_rounds = 64 + 2 * keys.size();
  while (!live.empty()) {
    if (round >= max_rounds)
      throw std::logic_error("ParallelHashTable: build failed to converge");
    const std::uint64_t hash_seed = util::substream(seed_, 200 + round);
    hash_seeds_.push_back(hash_seed);

    // Probe-write: each live key claims its round-r cell if empty
    // (arbitrary winner among this round's claimants).
    std::vector<std::uint64_t> cells(live.size());
    std::vector<std::uint64_t> addrs(live.size());
    for (std::size_t i = 0; i < live.size(); ++i) {
      cells[i] = probe_cell(keys_[live[i]], hash_seed, slots_);
      addrs[i] = table_.region.addr(cells[i]);
      if (table_.data[cells[i]] == kNotFound ||
          round_of_[table_.data[cells[i]]] == round) {
        // Empty, or claimed only this round (later claimant wins).
        if (table_.data[cells[i]] == kNotFound) {
          table_.data[cells[i]] = live[i];
          round_of_[live[i]] = round;
        } else {
          // Overwrite a same-round claimant.
          round_of_[table_.data[cells[i]]] = 0;  // loser, reset marker
          table_.data[cells[i]] = live[i];
          round_of_[live[i]] = round;
        }
      }
    }
    vm.bulk(addrs, "hash-probe-write");

    // Read-back: winners see their own id.
    vm.bulk(addrs, "hash-probe-readback");
    std::vector<std::uint64_t> next_live;
    std::uint64_t placed = 0;
    for (std::size_t i = 0; i < live.size(); ++i) {
      if (table_.data[cells[i]] == live[i]) {
        ++placed;
      } else {
        next_live.push_back(live[i]);
      }
    }
    vm.compute(live.size(), 2.0, "hash-probe-check");

    if (stats != nullptr) {
      HashBuildRound r;
      r.live = live.size();
      r.placed = placed;
      r.max_probe_contention = mem::analyze_locations(cells).max_contention;
      stats->rounds.push_back(r);
    }
    live.swap(next_live);
    ++round;
  }
}

std::uint64_t ParallelHashTable::probe(std::uint64_t key,
                                       std::uint64_t round) const {
  return probe_cell(key, hash_seeds_[round], slots_);
}

std::vector<std::uint64_t> ParallelHashTable::lookup(
    Vm& vm, std::span<const std::uint64_t> queries, std::uint64_t) const {
  const std::uint64_t n = queries.size();
  std::vector<std::uint64_t> result(n, kNotFound);
  std::vector<std::uint64_t> active(n);
  for (std::uint64_t i = 0; i < n; ++i) active[i] = i;

  for (std::uint64_t round = 0; round < rounds_used() && !active.empty();
       ++round) {
    std::vector<std::uint64_t> addrs;
    addrs.reserve(active.size());
    std::vector<std::uint64_t> next_active;
    for (const auto q : active) {
      const std::uint64_t cell = probe(queries[q], round);
      addrs.push_back(table_.region.addr(cell));
      const std::uint64_t id = table_.data[cell];
      if (id != kNotFound && keys_[id] == queries[q]) {
        result[q] = id;  // found
      } else {
        next_active.push_back(q);  // try the next round's hash
      }
    }
    vm.bulk(addrs, "hash-lookup-probe");
    vm.compute(addrs.size(), 2.0, "hash-lookup-check");
    active.swap(next_active);
  }
  return result;
}

}  // namespace dxbsp::algos
