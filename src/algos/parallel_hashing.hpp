#pragma once
// Parallel hash table construction and lookup — the [KU86] workload
// ("Parallel hashing: an efficient implementation of shared memory")
// that underlies the random-mapping story of §4, run as an algorithm on
// the simulated machine.
//
// Build: n distinct keys are inserted into a table of size m > n by
// synchronous rounds. In round r, every still-unplaced key writes its id
// at cell h_r(key) (a fresh universal hash per round); a key wins its
// cell if it reads its own id back AND the cell was previously empty;
// losers move to round r+1. The QRQW charge per round is the maximum
// number of keys probing one cell — O(log n / log log n) w.h.p. — and
// the live set shrinks geometrically, so the build is contention-cheap
// on a bank-delay machine.
//
// Lookup replays the same probe sequence: round-r probes cost one gather
// each; a key inserted in round r is found after r+1 probes, so the
// expected lookup cost is a small constant of gathers.

#include <cstdint>
#include <span>
#include <vector>

#include "algos/vm.hpp"

namespace dxbsp::algos {

/// Per-round build instrumentation.
struct HashBuildRound {
  std::uint64_t live = 0;
  std::uint64_t placed = 0;
  std::uint64_t max_probe_contention = 0;
};

struct HashBuildStats {
  std::vector<HashBuildRound> rounds;
};

/// A hash table resident in a Vm's simulated memory.
class ParallelHashTable {
 public:
  /// Builds the table over `keys` (must be distinct) with `slots` cells
  /// (slots >= 2*keys.size() recommended). Deterministic in `seed`.
  ParallelHashTable(Vm& vm, std::span<const std::uint64_t> keys,
                    std::uint64_t slots, std::uint64_t seed,
                    HashBuildStats* stats = nullptr);

  /// Looks up each query key; out[i] is the index into the build key set
  /// (the key's id) or kNotFound. Accounts one gather per probe round.
  static constexpr std::uint64_t kNotFound = ~0ULL;
  [[nodiscard]] std::vector<std::uint64_t> lookup(
      Vm& vm, std::span<const std::uint64_t> queries,
      std::uint64_t) const;

  [[nodiscard]] std::uint64_t slots() const noexcept { return slots_; }
  [[nodiscard]] std::uint64_t rounds_used() const noexcept {
    return static_cast<std::uint64_t>(hash_seeds_.size());
  }

 private:
  [[nodiscard]] std::uint64_t probe(std::uint64_t key,
                                    std::uint64_t round) const;

  std::uint64_t slots_ = 0;
  std::uint64_t seed_ = 0;
  std::vector<std::uint64_t> hash_seeds_;   // one per round
  std::vector<std::uint64_t> keys_;         // build keys by id
  VArray<std::uint64_t> table_;             // cell -> key id or kNotFound
  std::vector<std::uint64_t> round_of_;     // id -> round it was placed
};

}  // namespace dxbsp::algos
