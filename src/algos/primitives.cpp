#include "algos/primitives.hpp"

#include <algorithm>
#include <stdexcept>

namespace dxbsp::algos {

std::uint64_t plus_scan(Vm& vm, VArray<std::uint64_t>& xs,
                        const std::string& label) {
  std::uint64_t acc = 0;
  for (auto& x : xs.data) {
    const std::uint64_t v = x;
    x = acc;
    acc += v;
  }
  vm.contiguous(xs.region, xs.size(), 2.0, label);
  return acc;
}

std::vector<std::uint64_t> pack_indices(Vm& vm,
                                        const VArray<std::uint64_t>& flags,
                                        const std::string& label) {
  std::vector<std::uint64_t> out;
  for (std::uint64_t i = 0; i < flags.size(); ++i)
    if (flags.data[i] != 0) out.push_back(i);
  // Scan of the flags (2 passes) + write of the survivors (1 pass over
  // the output length, charged on the input region for simplicity).
  vm.contiguous(flags.region, flags.size(), 2.0, label);
  if (!out.empty()) {
    vm.contiguous(flags.region, out.size(), 1.0, label);
  }
  return out;
}

namespace {
void check_seg_ptr(std::span<const std::uint64_t> seg_ptr, std::uint64_t n) {
  if (seg_ptr.empty() || seg_ptr.front() != 0 || seg_ptr.back() != n)
    throw std::invalid_argument("segmented op: bad segment pointers");
  for (std::size_t i = 1; i < seg_ptr.size(); ++i)
    if (seg_ptr[i - 1] > seg_ptr[i])
      throw std::invalid_argument("segmented op: seg_ptr not monotone");
}
}  // namespace

std::vector<double> segmented_sum(Vm& vm, const VArray<double>& values,
                                  std::span<const std::uint64_t> seg_ptr,
                                  const std::string& label) {
  check_seg_ptr(seg_ptr, values.size());
  std::vector<double> sums(seg_ptr.size() - 1, 0.0);
  for (std::size_t s = 0; s + 1 < seg_ptr.size(); ++s)
    for (std::uint64_t i = seg_ptr[s]; i < seg_ptr[s + 1]; ++i)
      sums[s] += values.data[i];
  vm.contiguous(values.region, values.size(), 3.0, label);
  return sums;
}

std::vector<std::uint64_t> segmented_max(Vm& vm,
                                         const VArray<std::uint64_t>& values,
                                         std::span<const std::uint64_t> seg_ptr,
                                         const std::string& label) {
  check_seg_ptr(seg_ptr, values.size());
  std::vector<std::uint64_t> maxes(seg_ptr.size() - 1, 0);
  for (std::size_t s = 0; s + 1 < seg_ptr.size(); ++s)
    for (std::uint64_t i = seg_ptr[s]; i < seg_ptr[s + 1]; ++i)
      maxes[s] = std::max(maxes[s], values.data[i]);
  vm.contiguous(values.region, values.size(), 3.0, label);
  return maxes;
}

std::uint64_t reduce_sum(Vm& vm, const VArray<std::uint64_t>& xs,
                         const std::string& label) {
  std::uint64_t acc = 0;
  for (const auto x : xs.data) acc += x;
  vm.contiguous(xs.region, xs.size(), 1.0, label);
  return acc;
}

}  // namespace dxbsp::algos
