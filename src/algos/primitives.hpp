#pragma once
// Data-parallel building blocks: scans, segmented sums, packing.
//
// These are the vectorizable primitives the paper's implementations are
// made of ([BHZ93] segmented operations, [ZB91] counting sort plumbing).
// Each executes its semantics on host data and charges the Vm the
// contiguous passes a pipelined vector machine needs for it — none of
// them performs irregular access, so none carries contention.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "algos/vm.hpp"

namespace dxbsp::algos {

/// Exclusive plus-scan of xs.data in place; returns the total.
/// Charges 2 contiguous passes (read + write) plus O(p) negligible
/// cross-processor combining.
std::uint64_t plus_scan(Vm& vm, VArray<std::uint64_t>& xs,
                        const std::string& label);

/// Indices of nonzero flags, in order ("pack" / stream compaction).
/// Charges a scan plus one contiguous write of the survivors.
[[nodiscard]] std::vector<std::uint64_t> pack_indices(
    Vm& vm, const VArray<std::uint64_t>& flags, const std::string& label);

/// Per-segment sums of values under CSR-style segment pointers
/// (seg_ptr.size() == segments+1, seg_ptr.back() == values.size()).
/// Charges 3 contiguous passes (the segmented-scan formulation of
/// [BHZ93], which hides latency regardless of segment structure).
[[nodiscard]] std::vector<double> segmented_sum(
    Vm& vm, const VArray<double>& values,
    std::span<const std::uint64_t> seg_ptr, const std::string& label);

/// Maximum over each segment, same accounting as segmented_sum.
[[nodiscard]] std::vector<std::uint64_t> segmented_max(
    Vm& vm, const VArray<std::uint64_t>& values,
    std::span<const std::uint64_t> seg_ptr, const std::string& label);

/// Sum-reduction of a whole array (2 passes worth 1: a single read pass).
[[nodiscard]] std::uint64_t reduce_sum(Vm& vm,
                                       const VArray<std::uint64_t>& xs,
                                       const std::string& label);

}  // namespace dxbsp::algos
