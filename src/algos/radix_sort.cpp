#include "algos/radix_sort.hpp"

#include <stdexcept>

#include "util/bits.hpp"

namespace dxbsp::algos {

RadixSortResult radix_sort(Vm& vm, std::span<const std::uint64_t> keys,
                           unsigned key_bits, unsigned radix_bits) {
  if (key_bits == 0 || key_bits > 64)
    throw std::invalid_argument("radix_sort: key_bits must be in [1,64]");
  if (radix_bits == 0 || radix_bits > 24)
    throw std::invalid_argument("radix_sort: radix_bits must be in [1,24]");

  const std::uint64_t n = keys.size();
  const std::uint64_t p = vm.config().processors;
  const std::uint64_t radix = 1ULL << radix_bits;
  const unsigned passes =
      static_cast<unsigned>(util::ceil_div(key_bits, radix_bits));

  RadixSortResult result;
  result.passes = passes;
  if (n == 0) return result;

  // Ping-pong key/id buffers in simulated memory.
  auto key_a = vm.make_array<std::uint64_t>(n);
  auto key_b = vm.make_array<std::uint64_t>(n);
  auto id_a = vm.make_array<std::uint64_t>(n);
  auto id_b = vm.make_array<std::uint64_t>(n);
  auto hist = vm.make_array<std::uint64_t>(p * radix);

  for (std::uint64_t i = 0; i < n; ++i) {
    key_a.data[i] = keys[i];
    id_a.data[i] = i;
  }

  VArray<std::uint64_t>* cur_key = &key_a;
  VArray<std::uint64_t>* cur_id = &id_a;
  VArray<std::uint64_t>* nxt_key = &key_b;
  VArray<std::uint64_t>* nxt_id = &id_b;

  std::vector<std::uint64_t> hist_addr(n);
  std::vector<std::uint64_t> ones(n, 1);
  std::vector<std::uint64_t> dest(n);

  for (unsigned pass = 0; pass < passes; ++pass) {
    const unsigned shift = pass * radix_bits;
    const std::uint64_t mask = radix - 1;

    // (0) digit extraction: one shift+mask per element.
    vm.compute(n, 2.0, "sort-digits");

    // (1) per-processor private histograms: element i increments
    // hist[proc(i)*radix + digit(i)]. Location contention is bounded by
    // the largest digit count within one processor's block.
    std::fill(hist.data.begin(), hist.data.end(), 0);
    vm.contiguous(hist.region, hist.size(), 1.0, "sort-hist-zero");
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::uint64_t digit = (cur_key->data[i] >> shift) & mask;
      hist_addr[i] = vm.proc_of(i, n) * radix + digit;
    }
    vm.scatter_add(hist, hist_addr, ones, "sort-hist-count");

    // (2) global exclusive scan in digit-major order (digit, then
    // processor), yielding the stable base offset of every (proc,digit)
    // bucket. The scan itself is a contiguous sweep.
    {
      std::uint64_t acc = 0;
      for (std::uint64_t digit = 0; digit < radix; ++digit) {
        for (std::uint64_t proc = 0; proc < p; ++proc) {
          std::uint64_t& slot = hist.data[proc * radix + digit];
          const std::uint64_t v = slot;
          slot = acc;
          acc += v;
        }
      }
      vm.contiguous(hist.region, hist.size(), 2.0, "sort-hist-scan");
    }

    // (3) rank: each processor walks its block in order, taking and
    // bumping its private bucket cursor. The memory system sees one
    // gather and one scatter of the same histogram addresses.
    std::vector<std::uint64_t> rank_out;
    vm.gather(rank_out, hist, hist_addr, "sort-rank-gather");
    for (std::uint64_t i = 0; i < n; ++i) {
      dest[i] = hist.data[hist_addr[i]]++;
    }
    vm.scatter_add(hist, hist_addr, ones, "sort-rank-bump");

    // (4) permutation scatter of keys and ids to their new positions.
    vm.scatter(*nxt_key, dest, cur_key->data, "sort-permute-keys");
    vm.scatter(*nxt_id, dest, cur_id->data, "sort-permute-ids");

    std::swap(cur_key, nxt_key);
    std::swap(cur_id, nxt_id);
  }

  result.sorted_keys = cur_key->data;
  result.order = cur_id->data;
  result.rank.assign(n, 0);
  for (std::uint64_t pos = 0; pos < n; ++pos)
    result.rank[result.order[pos]] = pos;
  return result;
}

}  // namespace dxbsp::algos
