#pragma once
// Vectorized LSD radix sort with processor-private histograms, after
// Zagha & Blelloch [ZB91] — the paper's EREW workhorse (it is the basis
// of the EREW random-permutation baseline in Figure 11 and was the
// fastest NAS sort of the time).
//
// Each pass: (1) per-processor digit histograms built with scatter-adds
// into private copies (bounded location contention by construction);
// (2) a global scan of the histograms; (3) a stable rank computation and
// permutation scatter. The permutation scatter has no location
// contention (all destinations distinct) but real module-map contention,
// which is why sorting is sensitive to d even though it is "EREW".

#include <cstdint>
#include <span>
#include <vector>

#include "algos/vm.hpp"

namespace dxbsp::algos {

/// Result of a radix sort.
struct RadixSortResult {
  std::vector<std::uint64_t> sorted_keys;
  /// order[i] = original index of the i-th smallest element.
  std::vector<std::uint64_t> order;
  /// rank[i] = final position of input element i (inverse of order).
  std::vector<std::uint64_t> rank;
  unsigned passes = 0;
};

/// Sorts `keys` (values < 2^key_bits) stably. radix_bits is the digit
/// width per pass (default 8, i.e. 256 buckets). All passes are executed
/// on `vm`, so vm.ledger() afterwards holds the full cost breakdown.
[[nodiscard]] RadixSortResult radix_sort(Vm& vm,
                                         std::span<const std::uint64_t> keys,
                                         unsigned key_bits,
                                         unsigned radix_bits = 8);

}  // namespace dxbsp::algos
