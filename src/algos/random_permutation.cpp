#include "algos/random_permutation.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "algos/primitives.hpp"
#include "algos/radix_sort.hpp"
#include "mem/contention.hpp"
#include "util/bits.hpp"
#include "util/rng.hpp"

namespace dxbsp::algos {

std::vector<std::uint64_t> random_permutation_qrqw(Vm& vm, std::uint64_t n,
                                                   std::uint64_t seed,
                                                   double rho,
                                                   DartStats* stats) {
  if (rho <= 1.0)
    throw std::invalid_argument("random_permutation_qrqw: rho must be > 1");
  if (n == 0) return {};

  const auto table_size = static_cast<std::uint64_t>(
      std::ceil(rho * static_cast<double>(n)));
  constexpr std::uint64_t kEmpty = ~0ULL;

  auto table = vm.make_array<std::uint64_t>(table_size, kEmpty);
  std::vector<std::uint64_t> slot_of(n, kEmpty);

  util::Xoshiro256 rng(util::substream(seed, 40));
  std::vector<std::uint64_t> live(n);
  for (std::uint64_t i = 0; i < n; ++i) live[i] = i;

  std::vector<std::uint64_t> targets, readback;
  while (!live.empty()) {
    // Draw targets (vectorized RNG: ~6 ops/element on the machine).
    targets.resize(live.size());
    for (auto& t : targets) t = rng.below(table_size);
    vm.compute(live.size(), 6.0, "perm-darts-rng");

    // Scatter ids at the targets (arbitrary winner); cells claimed in a
    // previous round must not be overwritten, so write only into empties
    // (a masked vector scatter — the memory system still sees every dart).
    {
      std::vector<std::uint64_t> addrs(targets.size());
      for (std::size_t i = 0; i < targets.size(); ++i) {
        addrs[i] = table.region.addr(targets[i]);
        if (table.data[targets[i]] == kEmpty ||
            slot_of[table.data[targets[i]]] != targets[i]) {
          // Cell is empty, or holds a loser's stale id: claim it.
          table.data[targets[i]] = live[i];
        }
      }
      vm.bulk(addrs, "perm-darts-scatter");
    }

    // Read back: an element whose id survived at its target cell wins.
    {
      std::vector<std::uint64_t> addrs(targets.size());
      for (std::size_t i = 0; i < targets.size(); ++i)
        addrs[i] = table.region.addr(targets[i]);
      vm.bulk(addrs, "perm-darts-readback");
    }

    std::vector<std::uint64_t> next_live;
    std::uint64_t winners = 0;
    for (std::size_t i = 0; i < targets.size(); ++i) {
      const std::uint64_t id = live[i];
      if (table.data[targets[i]] == id) {
        slot_of[id] = targets[i];
        ++winners;
      } else {
        next_live.push_back(id);
      }
    }
    vm.compute(live.size(), 2.0, "perm-darts-check");

    if (stats != nullptr) {
      DartRound r;
      r.live = live.size();
      r.winners = winners;
      r.max_contention = mem::analyze_locations(targets).max_contention;
      stats->rounds.push_back(r);
      stats->total_darts += live.size();
    }
    live.swap(next_live);
  }

  // Pack: rank of each occupied cell = exclusive scan of occupancy flags;
  // element i's permutation value is the rank of its cell.
  auto flags = vm.make_array<std::uint64_t>(table_size, 0);
  for (std::uint64_t c = 0; c < table_size; ++c)
    flags.data[c] = (table.data[c] != kEmpty &&
                     slot_of[table.data[c]] == c)
                        ? 1
                        : 0;
  vm.contiguous(table.region, table_size, 1.0, "perm-pack-flag");
  plus_scan(vm, flags, "perm-pack-scan");

  std::vector<std::uint64_t> perm(n);
  {
    std::vector<std::uint64_t> addrs(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      perm[i] = flags.data[slot_of[i]];
      addrs[i] = flags.region.addr(slot_of[i]);
    }
    vm.bulk(addrs, "perm-pack-gather");  // distinct cells: contention-free
  }
  return perm;
}

std::vector<std::uint64_t> random_permutation_erew(Vm& vm, std::uint64_t n,
                                                   std::uint64_t seed,
                                                   unsigned key_bits) {
  if (n == 0) return {};
  if (key_bits == 0)
    key_bits = std::min<unsigned>(2 * std::max(1u, util::log2_ceil(n)), 62);

  util::Xoshiro256 rng(util::substream(seed, 41));
  const std::uint64_t mask =
      key_bits >= 64 ? ~0ULL : ((1ULL << key_bits) - 1);
  std::vector<std::uint64_t> keys(n);
  for (auto& k : keys) k = rng() & mask;
  vm.compute(n, 4.0, "perm-keygen");

  const RadixSortResult sorted = radix_sort(vm, keys, key_bits);
  return sorted.rank;
}

bool is_permutation_of_iota(const std::vector<std::uint64_t>& perm) {
  std::vector<bool> seen(perm.size(), false);
  for (const auto v : perm) {
    if (v >= perm.size() || seen[v]) return false;
    seen[v] = true;
  }
  return true;
}

}  // namespace dxbsp::algos
