#pragma once
// Random permutation generation — the paper's head-to-head of a QRQW
// algorithm against its EREW counterpart (Figure 11).
//
// QRQW (dart throwing, [GMR94a]): each element repeatedly writes its id
// into a random cell of a destination array of size rho*n; an element
// whose write survives the round (read-back sees its own id) is done,
// the rest retry. Contention per round is the maximum number of darts on
// one cell — small with high probability, and the QRQW model charges
// exactly that. After all elements land, the occupied cells are packed
// by a prefix sum to give each element its rank. O(n/p + log n) time.
//
// EREW (sort-based, [ZB91]): draw random keys and radix-sort the element
// ids by key; an element's final position is its rank. Contention-free
// by construction but pays several full sorting passes — the paper's
// point is that the well-accounted contention of the QRQW version is
// cheaper than avoiding contention altogether.

#include <cstdint>
#include <vector>

#include "algos/vm.hpp"

namespace dxbsp::algos {

/// Per-round instrumentation of the dart-throwing permutation.
struct DartRound {
  std::uint64_t live = 0;            ///< elements still throwing
  std::uint64_t winners = 0;         ///< darts that survived this round
  std::uint64_t max_contention = 0;  ///< hottest cell this round
};

/// Statistics of one QRQW permutation run.
struct DartStats {
  std::vector<DartRound> rounds;
  std::uint64_t total_darts = 0;
};

/// Generates a permutation of [0, n) by dart throwing into a table of
/// size ceil(rho*n), rho > 1 (paper-style; 2.0 default). Returns
/// perm[i] = final position of element i. Deterministic in `seed`.
[[nodiscard]] std::vector<std::uint64_t> random_permutation_qrqw(
    Vm& vm, std::uint64_t n, std::uint64_t seed, double rho = 2.0,
    DartStats* stats = nullptr);

/// Generates a permutation of [0, n) by sorting random keys with the
/// EREW radix sort. `key_bits` defaults to 2*ceil(log2 n) so duplicate
/// keys are rare (ties are broken stably and still yield a permutation).
[[nodiscard]] std::vector<std::uint64_t> random_permutation_erew(
    Vm& vm, std::uint64_t n, std::uint64_t seed, unsigned key_bits = 0);

/// True iff `perm` is a permutation of [0, perm.size()).
[[nodiscard]] bool is_permutation_of_iota(
    const std::vector<std::uint64_t>& perm);

}  // namespace dxbsp::algos
