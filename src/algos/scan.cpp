#include "algos/scan.hpp"

namespace dxbsp::algos {

std::vector<std::uint8_t> seg_ptr_to_flags(
    std::span<const std::uint64_t> seg_ptr, std::uint64_t n) {
  if (seg_ptr.empty() || seg_ptr.front() != 0 || seg_ptr.back() != n)
    throw std::invalid_argument("seg_ptr_to_flags: bad segment pointers");
  std::vector<std::uint8_t> flags(n, 0);
  for (std::size_t s = 0; s + 1 < seg_ptr.size(); ++s) {
    if (seg_ptr[s] > seg_ptr[s + 1])
      throw std::invalid_argument("seg_ptr_to_flags: seg_ptr not monotone");
    if (seg_ptr[s] < n && seg_ptr[s] != seg_ptr[s + 1]) flags[seg_ptr[s]] = 1;
  }
  return flags;
}

std::vector<std::uint64_t> flags_to_seg_ptr(
    std::span<const std::uint8_t> flags) {
  std::vector<std::uint64_t> seg_ptr;
  seg_ptr.push_back(0);
  for (std::size_t i = 1; i < flags.size(); ++i)
    if (flags[i] != 0) seg_ptr.push_back(i);
  seg_ptr.push_back(flags.size());
  return seg_ptr;
}

}  // namespace dxbsp::algos
