#pragma once
// Generic and segmented scans — the [BHZ93] substrate.
//
// "Segmented operations for sparse matrix computation on vector
// multiprocessors" is the implementation technology behind the paper's
// SpMV experiment: scans and segmented scans vectorize with contiguous
// memory streams only, so their cost on a bank-delay machine is pure
// bandwidth — they are the contention-free glue between the contention-
// carrying gathers and scatters. This header provides them generically
// (any element type, any associative operator) with Vm cost accounting,
// plus conversions between the two segment representations (CSR-style
// pointers and head flags).

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "algos/vm.hpp"

namespace dxbsp::algos {

/// Built-in operator functors (any associative callable works).
struct OpAdd {
  template <typename T>
  T operator()(T a, T b) const {
    return a + b;
  }
};
struct OpMax {
  template <typename T>
  T operator()(T a, T b) const {
    return a > b ? a : b;
  }
};
struct OpMin {
  template <typename T>
  T operator()(T a, T b) const {
    return a < b ? a : b;
  }
};
struct OpOr {
  std::uint64_t operator()(std::uint64_t a, std::uint64_t b) const {
    return a | b;
  }
};

/// Exclusive scan of xs.data in place under `op` with the given
/// identity; returns the grand total. Charges 2 contiguous passes.
template <typename T, typename Op>
T exclusive_scan(Vm& vm, VArray<T>& xs, Op op, T identity,
                 const std::string& label) {
  T acc = identity;
  for (auto& x : xs.data) {
    const T v = x;
    x = acc;
    acc = op(acc, v);
  }
  vm.contiguous(xs.region, xs.size(), 2.0, label);
  return acc;
}

/// Inclusive scan in place; returns the grand total. Same accounting.
template <typename T, typename Op>
T inclusive_scan(Vm& vm, VArray<T>& xs, Op op, T identity,
                 const std::string& label) {
  T acc = identity;
  for (auto& x : xs.data) {
    acc = op(acc, x);
    x = acc;
  }
  vm.contiguous(xs.region, xs.size(), 2.0, label);
  return acc;
}

/// Segmented exclusive scan under head flags: flags[i] != 0 marks the
/// first element of a segment (flags[0] is implicitly a head). The scan
/// restarts at `identity` at every head. Charges 3 contiguous passes
/// (data read/write + flag stream), the [BHZ93] formulation that hides
/// latency regardless of segment structure.
template <typename T, typename Op>
void segmented_exclusive_scan(Vm& vm, VArray<T>& xs,
                              std::span<const std::uint8_t> flags, Op op,
                              T identity, const std::string& label) {
  if (flags.size() != xs.size())
    throw std::invalid_argument("segmented scan: flag size mismatch: " +
                                label);
  T acc = identity;
  for (std::uint64_t i = 0; i < xs.size(); ++i) {
    if (i == 0 || flags[i] != 0) acc = identity;
    const T v = xs.data[i];
    xs.data[i] = acc;
    acc = op(acc, v);
  }
  vm.contiguous(xs.region, xs.size(), 3.0, label);
}

/// Segmented inclusive scan under head flags (same conventions).
template <typename T, typename Op>
void segmented_inclusive_scan(Vm& vm, VArray<T>& xs,
                              std::span<const std::uint8_t> flags, Op op,
                              T identity, const std::string& label) {
  if (flags.size() != xs.size())
    throw std::invalid_argument("segmented scan: flag size mismatch: " +
                                label);
  T acc = identity;
  for (std::uint64_t i = 0; i < xs.size(); ++i) {
    if (i == 0 || flags[i] != 0) acc = identity;
    acc = op(acc, xs.data[i]);
    xs.data[i] = acc;
  }
  vm.contiguous(xs.region, xs.size(), 3.0, label);
}

/// Converts CSR-style segment pointers (size segments+1, monotone,
/// endpoints 0 and n) to head flags of length n. Empty segments are
/// representable in pointers but not in flags; they are dropped (their
/// zero-length extent marks no head), which matches how segmented sums
/// treat them.
[[nodiscard]] std::vector<std::uint8_t> seg_ptr_to_flags(
    std::span<const std::uint64_t> seg_ptr, std::uint64_t n);

/// Converts head flags to segment pointers. flags[0] is implicitly set.
[[nodiscard]] std::vector<std::uint64_t> flags_to_seg_ptr(
    std::span<const std::uint8_t> flags);

}  // namespace dxbsp::algos
