#include "algos/spmv.hpp"

#include <stdexcept>

#include "algos/primitives.hpp"
#include "mem/contention.hpp"

namespace dxbsp::algos {

std::vector<double> spmv(Vm& vm, const workload::CsrMatrix& a,
                         const std::vector<double>& x, SpmvStats* stats) {
  a.validate();
  if (x.size() != a.cols)
    throw std::invalid_argument("spmv: x dimension mismatch");

  const std::uint64_t nnz = a.nnz();

  // Simulated residency: the input vector, the value array, the product
  // array and the output vector.
  auto xv = vm.make_array<double>(a.cols);
  xv.data = x;
  auto values = vm.make_array<double>(nnz);
  values.data = a.values;
  auto products = vm.make_array<double>(nnz);
  auto yv = vm.make_array<double>(a.rows);

  // (1) Gather x[col] for every nonzero — the contention-carrying step.
  std::vector<double> xc;
  vm.gather(xc, xv, a.col_idx, "spmv-gather-x");

  // (2) Elementwise multiply (stream read of values, write of products).
  for (std::uint64_t i = 0; i < nnz; ++i)
    products.data[i] = a.values[i] * xc[i];
  vm.contiguous(values.region, nnz, 2.0, "spmv-multiply");
  vm.compute(nnz, 1.0, "spmv-multiply");

  // (3) Segmented sum per row ([BHZ93] segmented-scan formulation).
  std::vector<double> y = segmented_sum(vm, products, a.row_ptr, "spmv-segsum");

  // (4) Write y (contiguous).
  yv.data = y;
  vm.contiguous(yv.region, a.rows, 1.0, "spmv-write-y");

  if (stats != nullptr) {
    stats->nnz = nnz;
    stats->gather_contention =
        mem::analyze_locations(a.col_idx).max_contention;
  }
  return y;
}

}  // namespace dxbsp::algos
