#pragma once
// Sparse matrix–vector multiplication, the Figure-12 experiment.
//
// The implementation follows [BHZ93]: CSR storage, a gather of x[col]
// for every nonzero (the only irregular access — its location contention
// equals the hottest column's frequency, e.g. the dense-column length),
// an elementwise multiply, and a segmented sum per row. The (d,x)-BSP
// predicts the crossover where the dense column's bank serialization
// (d·c) overtakes the bandwidth term; plain BSP predicts a flat line.

#include <cstdint>
#include <vector>

#include "algos/vm.hpp"
#include "workload/sparse.hpp"

namespace dxbsp::algos {

/// Instrumentation of one SpMV run.
struct SpmvStats {
  std::uint64_t nnz = 0;
  std::uint64_t gather_contention = 0;  ///< hottest x element (column freq)
};

/// y = A·x on the simulated machine. Throws on dimension mismatch.
/// Cost breakdown lands in vm.ledger().
[[nodiscard]] std::vector<double> spmv(Vm& vm, const workload::CsrMatrix& a,
                                       const std::vector<double>& x,
                                       SpmvStats* stats = nullptr);

}  // namespace dxbsp::algos
