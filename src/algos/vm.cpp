#include "algos/vm.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/bits.hpp"

namespace dxbsp::algos {

namespace {
std::shared_ptr<const mem::BankMapping> mapping_or_default(
    const sim::MachineConfig& cfg,
    std::shared_ptr<const mem::BankMapping> mapping) {
  if (mapping) return mapping;
  return std::make_shared<mem::InterleavedMapping>(cfg.banks());
}
}  // namespace

Vm::Vm(sim::MachineConfig config,
       std::shared_ptr<const mem::BankMapping> mapping, VmOptions options)
    : machine_(config, mapping_or_default(config, std::move(mapping))),
      params_(core::DxBspParams::from_config(config)),
      options_(options) {}

Region Vm::reserve(std::uint64_t n) {
  const Region r{next_addr_, n};
  next_addr_ += std::max<std::uint64_t>(n, 1);
  return r;
}

std::uint64_t Vm::proc_of(std::uint64_t i, std::uint64_t n) const noexcept {
  const auto& cfg = machine_.config();
  if (cfg.distribution == sim::Distribution::kCyclic) return i % cfg.processors;
  const std::uint64_t per = util::ceil_div(n, cfg.processors);
  return i / per;
}

void Vm::account(std::span<const std::uint64_t> addrs,
                 const std::string& label, double streams) {
  if (addrs.empty()) return;
  if (streams < 0.0) streams = options_.aux_streams;
  if (trace_hook_) trace_hook_(label, addrs);
  const core::Prediction pred =
      core::predict_scatter(addrs, params_, &machine_.mapping());
  sim::BulkResult res;
  if (options_.simulate) {
    res = machine_.scatter(addrs);
  } else {
    res.n = addrs.size();
    res.cycles = pred.dxbsp_mapped;  // model-only mode
  }

  // The auxiliary contiguous streams (index read, result write) overlap
  // the irregular access; they bind only if they exceed it.
  const auto aux = static_cast<std::uint64_t>(
      std::ceil(streams *
                static_cast<double>(util::ceil_div(addrs.size(), params_.p)) *
                static_cast<double>(params_.g)));

  core::LedgerEntry e;
  e.label = label;
  e.n = addrs.size();
  e.max_contention = pred.profile.max_contention;
  e.sim_cycles = std::max(res.cycles, aux);
  e.pred_dxbsp = std::max(pred.dxbsp_mapped, aux + 2 * params_.L);
  e.pred_bsp = std::max(pred.bsp, aux + 2 * params_.L);
  ledger_.add(e);
}

void Vm::gather(std::vector<std::uint64_t>& out,
                const VArray<std::uint64_t>& src,
                std::span<const std::uint64_t> idx, const std::string& label) {
  out.resize(idx.size());
  std::vector<std::uint64_t> addrs(idx.size());
  for (std::size_t i = 0; i < idx.size(); ++i) {
    if (idx[i] >= src.size()) throw std::out_of_range("Vm::gather: " + label);
    out[i] = src.data[idx[i]];
    addrs[i] = src.region.addr(idx[i]);
  }
  account(addrs, label, -1.0);
}

void Vm::gather(std::vector<double>& out, const VArray<double>& src,
                std::span<const std::uint64_t> idx, const std::string& label) {
  out.resize(idx.size());
  std::vector<std::uint64_t> addrs(idx.size());
  for (std::size_t i = 0; i < idx.size(); ++i) {
    if (idx[i] >= src.size()) throw std::out_of_range("Vm::gather: " + label);
    out[i] = src.data[idx[i]];
    addrs[i] = src.region.addr(idx[i]);
  }
  account(addrs, label, -1.0);
}

void Vm::scatter(VArray<std::uint64_t>& dest,
                 std::span<const std::uint64_t> idx,
                 std::span<const std::uint64_t> vals, const std::string& label) {
  if (idx.size() != vals.size())
    throw std::invalid_argument("Vm::scatter: size mismatch: " + label);
  std::vector<std::uint64_t> addrs(idx.size());
  for (std::size_t i = 0; i < idx.size(); ++i) {
    if (idx[i] >= dest.size()) throw std::out_of_range("Vm::scatter: " + label);
    dest.data[idx[i]] = vals[i];
    addrs[i] = dest.region.addr(idx[i]);
  }
  account(addrs, label, -1.0);
}

void Vm::scatter_add(VArray<std::uint64_t>& dest,
                     std::span<const std::uint64_t> idx,
                     std::span<const std::uint64_t> vals,
                     const std::string& label) {
  if (idx.size() != vals.size())
    throw std::invalid_argument("Vm::scatter_add: size mismatch: " + label);
  std::vector<std::uint64_t> addrs(idx.size());
  for (std::size_t i = 0; i < idx.size(); ++i) {
    if (idx[i] >= dest.size())
      throw std::out_of_range("Vm::scatter_add: " + label);
    dest.data[idx[i]] += vals[i];
    addrs[i] = dest.region.addr(idx[i]);
  }
  account(addrs, label, -1.0);
}

void Vm::contiguous(const Region& r, std::uint64_t n, double passes,
                    const std::string& label) {
  if (n == 0 || passes <= 0.0) return;
  if (n > r.size) throw std::out_of_range("Vm::contiguous: " + label);
  // A contiguous stream hits banks round-robin; with B >= d it never
  // queues, so the time is the issue time plus wire latency. We charge it
  // analytically instead of simulating n·passes trivial events.
  const auto cyc = static_cast<std::uint64_t>(std::ceil(
      passes * static_cast<double>(util::ceil_div(n, params_.p)) *
          static_cast<double>(params_.g) +
      2.0 * static_cast<double>(params_.L)));
  core::LedgerEntry e;
  e.label = label;
  e.n = static_cast<std::uint64_t>(static_cast<double>(n) * passes);
  e.max_contention = 1;
  e.sim_cycles = cyc;
  e.pred_dxbsp = cyc;
  e.pred_bsp = cyc;
  ledger_.add(e);
}

void Vm::compute(std::uint64_t n, double ops_per_element,
                 const std::string& label) {
  if (n == 0 || ops_per_element <= 0.0) return;
  const std::uint64_t cyc = machine_.compute(n, ops_per_element);
  core::LedgerEntry e;
  e.label = label;
  e.n = n;
  e.max_contention = 0;
  e.sim_cycles = cyc;
  e.pred_dxbsp = cyc;
  e.pred_bsp = cyc;
  ledger_.add(e);
}

void Vm::bulk(std::span<const std::uint64_t> addrs, const std::string& label,
              double streams) {
  account(addrs, label, streams);
}

}  // namespace dxbsp::algos
