#pragma once
// Vm: a data-parallel "vector machine" facade over the simulator.
//
// Algorithms in this library are written the way the paper's Cray codes
// were: as sequences of bulk data-parallel primitives (gather, scatter,
// scan, ...) over arrays. The Vm executes each primitive's *semantics* on
// host memory and simultaneously *accounts its cost* by running the
// address trace through the cycle-level simulator and the (d,x)-BSP/BSP
// predictors. This mirrors the paper's methodology of extracting access
// patterns from real implementations and comparing measured time against
// model predictions, phase by phase.
//
// Memory layout: arrays are carved out of a single simulated address
// space by a bump allocator, so distinct arrays occupy distinct bank
// regions exactly as they would on the real machine.

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/ledger.hpp"
#include "core/params.hpp"
#include "core/predictor.hpp"
#include "sim/machine.hpp"

namespace dxbsp::algos {

/// A contiguous region of the simulated address space.
struct Region {
  std::uint64_t base = 0;
  std::uint64_t size = 0;

  /// Simulated word address of element i.
  [[nodiscard]] std::uint64_t addr(std::uint64_t i) const noexcept {
    return base + i;
  }
};

/// An array living both in host memory (data) and in the simulated
/// address space (region). T is the element payload for semantics; cost
/// accounting treats every element as one machine word.
template <typename T>
struct VArray {
  Region region;
  std::vector<T> data;

  [[nodiscard]] std::uint64_t size() const noexcept { return data.size(); }
  T& operator[](std::uint64_t i) { return data[i]; }
  const T& operator[](std::uint64_t i) const { return data[i]; }
};

/// Options controlling Vm cost accounting.
struct VmOptions {
  /// Extra contiguous word streams charged per element of an irregular
  /// op (index read + result write). They run at the processor gap and
  /// only matter when the irregular access is not the bottleneck.
  double aux_streams = 2.0;

  /// When false, skip the cycle-level simulation of every irregular op
  /// and use the mapped (d,x)-BSP prediction as the "sim" cycles — the
  /// model-only mode for very large sweeps. Validated against full
  /// simulation to a few percent across the test suite's patterns.
  bool simulate = true;
};

/// The vector-machine facade. One Vm per experiment run; its ledger
/// accumulates every primitive executed through it.
class Vm {
 public:
  /// Uses the machine's mapping for both simulation and prediction.
  Vm(sim::MachineConfig config,
     std::shared_ptr<const mem::BankMapping> mapping = nullptr,
     VmOptions options = {});

  /// Allocates an array of n words in the simulated address space.
  template <typename T>
  [[nodiscard]] VArray<T> make_array(std::uint64_t n, T init = T{}) {
    VArray<T> a;
    a.region = reserve(n);
    a.data.assign(n, init);
    return a;
  }

  /// Reserves n words of simulated address space without host storage.
  [[nodiscard]] Region reserve(std::uint64_t n);

  // ---- irregular primitives (semantics + accounting) ----

  /// out[i] = src.data[idx[i]]; accounts a gather of src addresses.
  void gather(std::vector<std::uint64_t>& out, const VArray<std::uint64_t>& src,
              std::span<const std::uint64_t> idx, const std::string& label);
  void gather(std::vector<double>& out, const VArray<double>& src,
              std::span<const std::uint64_t> idx, const std::string& label);

  /// dest.data[idx[i]] = vals[i], later i wins on collision (the
  /// arbitrary-winner semantics of a hardware vector scatter); accounts a
  /// scatter of dest addresses.
  void scatter(VArray<std::uint64_t>& dest, std::span<const std::uint64_t> idx,
               std::span<const std::uint64_t> vals, const std::string& label);

  /// dest.data[idx[i]] += vals[i]; accounts like scatter (the memory
  /// system sees the same request trace).
  void scatter_add(VArray<std::uint64_t>& dest,
                   std::span<const std::uint64_t> idx,
                   std::span<const std::uint64_t> vals,
                   const std::string& label);

  // ---- structured primitives ----

  /// Accounts `passes` contiguous sweeps over region[0, n) (stream reads/
  /// writes of scans, merges, elementwise ops). Semantics are up to the
  /// caller; this only charges time.
  void contiguous(const Region& r, std::uint64_t n, double passes,
                  const std::string& label);

  /// Accounts pure per-element computation (no memory traffic).
  void compute(std::uint64_t n, double ops_per_element,
               const std::string& label);

  /// Accounts an arbitrary address trace (for custom primitives).
  /// `streams` overrides the number of auxiliary contiguous word streams
  /// charged alongside the irregular access (default: options.aux_streams,
  /// the generic "read index vector, write result vector" case). Pass a
  /// smaller value for register-resident loops — e.g. a tree-descent
  /// gather whose index and result never leave vector registers.
  void bulk(std::span<const std::uint64_t> addrs, const std::string& label,
            double streams = -1.0);

  // ---- results ----

  [[nodiscard]] const core::CostLedger& ledger() const noexcept {
    return ledger_;
  }
  [[nodiscard]] core::CostLedger& ledger() noexcept { return ledger_; }
  [[nodiscard]] std::uint64_t cycles() const noexcept {
    return ledger_.total_sim();
  }
  [[nodiscard]] const sim::MachineConfig& config() const noexcept {
    return machine_.config();
  }
  [[nodiscard]] const core::DxBspParams& params() const noexcept {
    return params_;
  }
  [[nodiscard]] sim::Machine& machine() noexcept { return machine_; }

  /// Processor handling element i of an n-element bulk op (matches the
  /// machine's distribution); needed by algorithms that build
  /// processor-private data structures (e.g. radix-sort histograms).
  [[nodiscard]] std::uint64_t proc_of(std::uint64_t i,
                                      std::uint64_t n) const noexcept;

  /// Observer invoked with (label, address trace) for every irregular
  /// bulk operation executed through this Vm. Used to extract QRQW
  /// programs from real algorithm runs (qrqw/extract.hpp) and to dump
  /// traces for replay. Pass nullptr to clear.
  using TraceHook =
      std::function<void(const std::string&, std::span<const std::uint64_t>)>;
  void set_trace_hook(TraceHook hook) { trace_hook_ = std::move(hook); }

 private:
  void account(std::span<const std::uint64_t> addrs, const std::string& label,
               double streams);

  sim::Machine machine_;
  core::DxBspParams params_;
  core::CostLedger ledger_;
  VmOptions options_;
  TraceHook trace_hook_;
  std::uint64_t next_addr_ = 0;
};

}  // namespace dxbsp::algos
