#include "cache/config.hpp"

#include <string>

#include "resilience/error.hpp"
#include "util/bits.hpp"

namespace dxbsp::cache {

const char* policy_name(Policy p) noexcept {
  switch (p) {
    case Policy::kLru: return "lru";
    case Policy::kFifo: return "fifo";
  }
  return "?";
}

const char* write_policy_name(WritePolicy w) noexcept {
  switch (w) {
    case WritePolicy::kThrough: return "through";
    case WritePolicy::kBack: return "back";
  }
  return "?";
}

const char* mode_name(Mode m) noexcept {
  switch (m) {
    case Mode::kCache: return "cache";
    case Mode::kScratchpad: return "scratchpad";
  }
  return "?";
}

void CacheConfig::validate() const {
  // Zero periods/sizes are rejected even with the tier disabled — the
  // same "always a configuration error" rule MachineConfig applies to
  // section_period and friends.
  if (line_words == 0)
    raise(ErrorCode::kConfig, "MachineConfig: cache-line must be >= 1");
  if (hit_latency == 0)
    raise(ErrorCode::kConfig, "MachineConfig: cache-latency must be >= 1");
  if (capacity == 0) {
    // Disabled tier: a policy that only makes sense with capacity is an
    // explicit contradiction, not a silent no-op.
    if (write == WritePolicy::kBack)
      raise(ErrorCode::kConfig,
            "MachineConfig: cache-write=back requires cache capacity >= 1");
    if (mode == Mode::kScratchpad)
      raise(ErrorCode::kConfig,
            "MachineConfig: cache-mode=scratchpad requires cache capacity "
            ">= 1");
    return;
  }
  if (!util::is_pow2(capacity))
    raise(ErrorCode::kConfig,
          "MachineConfig: cache capacity must be a power of two (got " +
              std::to_string(capacity) + ")");
  if (assoc > capacity)
    raise(ErrorCode::kConfig,
          "MachineConfig: cache-assoc must not exceed cache capacity (" +
              std::to_string(assoc) + " > " + std::to_string(capacity) + ")");
  if (assoc != 0 && !util::is_pow2(assoc))
    raise(ErrorCode::kConfig,
          "MachineConfig: cache-assoc must be a power of two (got " +
              std::to_string(assoc) + ")");
}

}  // namespace dxbsp::cache
