#pragma once
// Configuration of the per-processor cache/local-memory tier that sits
// in front of the bank array (docs/cache.md).
//
// The (d,x)-BSP model treats memory as a flat array of delay-d banks —
// exactly the Cray-era machines the paper measured. This tier adds the
// two-level hierarchy those machines lacked: each processor owns a
// small, fast local store of `capacity` lines; a request that hits
// completes locally at `hit_latency` cycles and never enters the
// network/bank pipeline, while misses (and, under write-back, dirty
// evictions) generate the bank traffic the contention machinery already
// models. In red-blue pebbling terms (arXiv:2409.03898) a hit is a red
// access, a miss a blue one.
//
// This header is deliberately free of sim/ dependencies: cache/ is a
// layer *under* the machine, included by MachineConfig.

#include <cstdint>

namespace dxbsp::cache {

/// Replacement order within a set. kLru promotes on every hit; kFifo
/// evicts in fill order regardless of reuse.
enum class Policy : std::uint8_t { kLru, kFifo };

/// What a store does to the memory system. kThrough forwards every
/// write to the home bank (hits still complete locally, but the bank
/// sees the traffic); kBack dirties the cached line and writes it to
/// its bank only on eviction.
enum class WritePolicy : std::uint8_t { kThrough, kBack };

/// kCache replaces lines automatically; kScratchpad holds exactly the
/// manually pinned lines (red-blue-style placement, Machine::
/// pin_scratchpad) and never fills or evicts on its own.
enum class Mode : std::uint8_t { kCache, kScratchpad };

[[nodiscard]] const char* policy_name(Policy p) noexcept;
[[nodiscard]] const char* write_policy_name(WritePolicy w) noexcept;
[[nodiscard]] const char* mode_name(Mode m) noexcept;

/// Per-processor cache tier parameters (capacity 0 disables the tier
/// entirely: the machine is then bit-identical to the flat model).
struct CacheConfig {
  std::uint64_t capacity = 0;    ///< lines per processor (power of two)
  std::uint64_t line_words = 8;  ///< words per line
  /// Ways per set: 0 = fully associative (one set of `capacity` ways),
  /// 1 = direct-mapped. Must be a power of two dividing `capacity`.
  std::uint64_t assoc = 0;
  std::uint64_t hit_latency = 2;  ///< cycles to complete a hit locally
  Policy policy = Policy::kLru;
  WritePolicy write = WritePolicy::kThrough;
  Mode mode = Mode::kCache;

  [[nodiscard]] bool enabled() const noexcept { return capacity != 0; }
  [[nodiscard]] std::uint64_t ways() const noexcept {
    return assoc == 0 ? capacity : assoc;
  }
  [[nodiscard]] std::uint64_t sets() const noexcept {
    return capacity / ways();
  }
  [[nodiscard]] std::uint64_t line_of(std::uint64_t addr) const noexcept {
    return addr / line_words;
  }

  /// Throws Error{kConfig} with flag-named messages (the `cache-*` keys
  /// of MachineConfig::parse) on any out-of-range parameter.
  void validate() const;

  friend bool operator==(const CacheConfig&, const CacheConfig&) = default;
};

}  // namespace dxbsp::cache
