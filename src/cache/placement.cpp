#include "cache/placement.hpp"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "resilience/error.hpp"

namespace dxbsp::cache {

std::vector<std::uint64_t> hot_lines(std::span<const std::uint64_t> addrs,
                                     std::uint64_t line_words,
                                     std::uint64_t max_lines) {
  if (line_words == 0)
    raise(ErrorCode::kConfig, "hot_lines: line_words must be >= 1");
  std::unordered_map<std::uint64_t, std::uint64_t> counts;
  counts.reserve(addrs.size());
  for (const std::uint64_t addr : addrs) ++counts[addr / line_words];

  std::vector<std::pair<std::uint64_t, std::uint64_t>> by_heat(
      counts.begin(), counts.end());
  std::sort(by_heat.begin(), by_heat.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  if (by_heat.size() > max_lines) by_heat.resize(max_lines);

  std::vector<std::uint64_t> lines;
  lines.reserve(by_heat.size());
  for (const auto& [line, heat] : by_heat) lines.push_back(line);
  std::sort(lines.begin(), lines.end());
  return lines;
}

}  // namespace dxbsp::cache
