#pragma once
// Manual (red-blue-style) scratchpad placement: choose which lines live
// in the fast tier, offline, from knowledge of the access stream — the
// multiprocessor red-blue pebbling discipline of arXiv:2409.03898,
// where the algorithm (not a replacement policy) decides what is red.

#include <cstdint>
#include <span>
#include <vector>

namespace dxbsp::cache {

/// The up-to-`max_lines` hottest lines of an address stream, by touch
/// count. Deterministic: ties break toward the lower line id, so the
/// placement is a pure function of the stream.
[[nodiscard]] std::vector<std::uint64_t> hot_lines(
    std::span<const std::uint64_t> addrs, std::uint64_t line_words,
    std::uint64_t max_lines);

}  // namespace dxbsp::cache
