#include "cache/tier.hpp"

#include <algorithm>
#include <string>

#include "resilience/error.hpp"

namespace dxbsp::cache {

CacheTier::CacheTier(const CacheConfig& cfg, std::uint64_t processors)
    : cfg_(cfg),
      processors_(processors),
      sets_(cfg.sets()),
      ways_(cfg.ways()) {
  cfg_.validate();
  if (!cfg_.enabled())
    raise(ErrorCode::kConfig, "CacheTier: capacity must be >= 1");
  if (processors_ == 0)
    raise(ErrorCode::kConfig, "CacheTier: processors must be >= 1");
  tags_.assign(processors_ * cfg_.capacity, kEmpty);
  dirty_.assign(processors_ * cfg_.capacity, 0);
  proc_misses_.assign(processors_, 0);
}

CacheTier::Access CacheTier::access(std::uint64_t proc, std::uint64_t addr) {
  const std::uint64_t line = cfg_.line_of(addr);

  if (cfg_.mode == Mode::kScratchpad) {
    // Pure membership: placement decided the contents up front.
    const bool hit =
        std::binary_search(pinned_.begin(), pinned_.end(), line);
    if (hit) {
      ++hits_;
    } else {
      ++misses_;
      ++proc_misses_[proc];
    }
    return Access{hit, false, 0};
  }

  const std::uint64_t set = line & (sets_ - 1);
  const std::size_t base =
      static_cast<std::size_t>((proc * sets_ + set) * ways_);
  std::uint64_t* tags = tags_.data() + base;
  std::uint8_t* dirty = dirty_.data() + base;

  for (std::uint64_t w = 0; w < ways_; ++w) {
    if (tags[w] != line) continue;
    ++hits_;
    // Store-stream semantics: a write-back hit dirties the line.
    std::uint8_t d = dirty[w];
    if (cfg_.write == WritePolicy::kBack) d = 1;
    if (cfg_.policy == Policy::kLru && w != 0) {
      // Promote to most-recent: shift [0, w) down one way.
      std::copy_backward(tags, tags + w, tags + w + 1);
      std::copy_backward(dirty, dirty + w, dirty + w + 1);
      tags[0] = line;
    }
    // The promoted (or in-place) slot carries the updated dirty bit.
    dirty[cfg_.policy == Policy::kLru ? 0 : w] = d;
    return Access{true, false, 0};
  }

  // Miss: evict the last way, fill at way 0. A write-back fill is
  // allocated dirty (the store that missed lands in the line).
  ++misses_;
  ++proc_misses_[proc];
  const std::uint64_t victim = tags[ways_ - 1];
  const bool writeback = victim != kEmpty && dirty[ways_ - 1] != 0;
  if (writeback) ++writebacks_;
  std::copy_backward(tags, tags + ways_ - 1, tags + ways_);
  std::copy_backward(dirty, dirty + ways_ - 1, dirty + ways_);
  tags[0] = line;
  dirty[0] = cfg_.write == WritePolicy::kBack ? 1 : 0;
  return Access{false, writeback, victim * cfg_.line_words};
}

void CacheTier::pin(std::span<const std::uint64_t> line_ids) {
  std::vector<std::uint64_t> lines(line_ids.begin(), line_ids.end());
  std::sort(lines.begin(), lines.end());
  lines.erase(std::unique(lines.begin(), lines.end()), lines.end());
  if (lines.size() > cfg_.capacity)
    raise(ErrorCode::kConfig,
          "CacheTier::pin: scratchpad placement of " +
              std::to_string(lines.size()) + " lines exceeds cache capacity " +
              std::to_string(cfg_.capacity));
  pinned_ = std::move(lines);
}

void CacheTier::reset() {
  std::fill(tags_.begin(), tags_.end(), kEmpty);
  std::fill(dirty_.begin(), dirty_.end(), 0);
  std::fill(proc_misses_.begin(), proc_misses_.end(), 0);
  hits_ = 0;
  misses_ = 0;
  writebacks_ = 0;
}

std::uint64_t CacheTier::max_proc_misses() const noexcept {
  std::uint64_t m = 0;
  for (const std::uint64_t c : proc_misses_) m = std::max(m, c);
  return m;
}

}  // namespace dxbsp::cache
