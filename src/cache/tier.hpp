#pragma once
// The per-processor cache tier: deterministic set-associative tag state
// for p processors, consulted by both event engines at fresh-issue time
// (docs/cache.md).
//
// The tier models a *store-stream* cache, matching the simulator's
// scatter semantics (gather aliases scatter by the paper's symmetry
// argument): under write-back every access dirties its line, so every
// eviction of a valid line is a writeback; under write-through lines
// are never dirty and the machine forwards each hit's store to the home
// bank as fire-and-forget background traffic instead.
//
// Determinism: tag state is plain arrays updated in event pop order,
// which is identical across engines — so hit/miss outcomes, counters
// and eviction traffic are bit-identical between kCalendar and
// kReference (tests/engine_equivalence_test.cpp).

#include <cstdint>
#include <span>
#include <vector>

#include "cache/config.hpp"

namespace dxbsp::cache {

class CacheTier {
 public:
  /// `cfg` must be enabled() and validate()d; one tag array per
  /// processor is allocated up front.
  CacheTier(const CacheConfig& cfg, std::uint64_t processors);

  /// Outcome of one access, enough for the machine to generate the
  /// modelled traffic: a miss that displaced a dirty line carries the
  /// victim's representative word address (line id · line_words) so the
  /// writeback can be routed to the victim's home bank.
  struct Access {
    bool hit = false;
    bool writeback = false;
    std::uint64_t victim_addr = 0;
  };

  /// Looks up — and, in kCache mode, fills — the line of `addr` in
  /// processor `proc`'s cache. Called once per fresh issue (retries of
  /// a NACKed request never re-touch the tier).
  Access access(std::uint64_t proc, std::uint64_t addr);

  /// Scratchpad placement: the pinned line ids become the tier's
  /// contents (membership is the hit test; no fills, no evictions).
  /// Replaces any previous pin set; duplicates are collapsed. Throws
  /// Error{kConfig} if the deduplicated set exceeds `capacity`.
  /// Pins survive reset() — placement is configuration, not state.
  void pin(std::span<const std::uint64_t> line_ids);
  [[nodiscard]] const std::vector<std::uint64_t>& pinned() const noexcept {
    return pinned_;
  }

  /// Cold-starts the tags and zeroes the per-op counters (bulk
  /// operations are independent; pins persist).
  void reset();

  // Per-op counters, reset() to zero.
  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }
  [[nodiscard]] std::uint64_t writebacks() const noexcept {
    return writebacks_;
  }
  /// Max per-processor miss count — the h_proc of the miss traffic, the
  /// issue-side term of the hit-ratio-corrected predictor
  /// (core::dxbsp_step_time_cached).
  [[nodiscard]] std::uint64_t max_proc_misses() const noexcept;

  [[nodiscard]] const CacheConfig& config() const noexcept { return cfg_; }

 private:
  static constexpr std::uint64_t kEmpty = ~0ULL;

  CacheConfig cfg_;
  std::uint64_t processors_;
  std::uint64_t sets_;
  std::uint64_t ways_;
  // Way 0 is the most-recent (LRU) / newest (FIFO) slot of its set;
  // evictions take the last way. Flattened [proc][set][way].
  std::vector<std::uint64_t> tags_;
  std::vector<std::uint8_t> dirty_;
  std::vector<std::uint64_t> pinned_;  // sorted, deduplicated line ids
  std::vector<std::uint64_t> proc_misses_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t writebacks_ = 0;
};

}  // namespace dxbsp::cache
