#include "core/access_profile.hpp"

#include <algorithm>

#include "util/bits.hpp"

namespace dxbsp::core {

AccessProfile profile_access(std::span<const std::uint64_t> addrs,
                             const DxBspParams& m,
                             const mem::BankMapping* mapping) {
  AccessProfile ap;
  ap.n = addrs.size();
  ap.h_proc = util::ceil_div(ap.n, m.p);

  const mem::LocationContention lc = mem::analyze_locations(addrs);
  ap.max_contention = lc.max_contention;
  ap.distinct = lc.distinct;
  ap.h_bank_location = std::max<std::uint64_t>(
      lc.max_contention, util::ceil_div(ap.n, m.banks()));

  if (mapping != nullptr) {
    const mem::BankLoads bl = mem::analyze_banks(addrs, *mapping);
    ap.h_bank_mapped = bl.max_load;
  }
  return ap;
}

AccessProfile profile_aggregate(std::uint64_t n, std::uint64_t max_contention,
                                const DxBspParams& m) {
  AccessProfile ap;
  ap.n = n;
  ap.h_proc = util::ceil_div(n, m.p);
  ap.max_contention = max_contention;
  ap.distinct = max_contention == 0 ? 0 : n / std::max<std::uint64_t>(1, max_contention);
  ap.h_bank_location =
      std::max<std::uint64_t>(max_contention, util::ceil_div(n, m.banks()));
  ap.h_bank_mapped = 0;
  return ap;
}

}  // namespace dxbsp::core
