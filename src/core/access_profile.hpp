#pragma once
// Builds superstep request profiles (h_proc, h_bank) from address traces.
//
// This is the bridge from a concrete memory access pattern to the model's
// inputs. Two bank-load estimates are provided:
//   * the *location* estimate max(k, ceil(n/B)) — what an analyst knows
//     without fixing a mapping: the hottest location pins one bank, and
//     n requests cannot spread thinner than n/B (this is the estimate the
//     paper's predicted curves use);
//   * the *mapped* (oracle) load — the true per-bank max under a concrete
//     mapping, including module-map contention (§4).

#include <cstdint>
#include <span>

#include "core/cost.hpp"
#include "core/params.hpp"
#include "mem/bank_mapping.hpp"
#include "mem/contention.hpp"

namespace dxbsp::core {

/// Everything the model needs to know about one bulk operation.
struct AccessProfile {
  std::uint64_t n = 0;               ///< total requests
  std::uint64_t h_proc = 0;          ///< ceil(n/p) under even distribution
  std::uint64_t max_contention = 0;  ///< k: hottest location multiplicity
  std::uint64_t distinct = 0;        ///< distinct locations touched
  std::uint64_t h_bank_location = 0; ///< max(k, ceil(n/B))
  std::uint64_t h_bank_mapped = 0;   ///< true max bank load (0 if no mapping)

  /// Profile using the location estimate.
  [[nodiscard]] StepProfile location_step() const noexcept {
    return StepProfile{h_proc, h_bank_location, n};
  }
  /// Profile using the concrete mapped load.
  [[nodiscard]] StepProfile mapped_step() const noexcept {
    return StepProfile{h_proc, h_bank_mapped, n};
  }
};

/// Analyzes `addrs` for machine `m`. If `mapping` is non-null the true
/// bank loads under that mapping are computed as well (O(n + B) extra).
[[nodiscard]] AccessProfile profile_access(std::span<const std::uint64_t> addrs,
                                           const DxBspParams& m,
                                           const mem::BankMapping* mapping);

/// Profile for a bulk operation described only by aggregate numbers
/// (n requests, max location contention k) — the form used in analyses.
[[nodiscard]] AccessProfile profile_aggregate(std::uint64_t n,
                                              std::uint64_t max_contention,
                                              const DxBspParams& m);

}  // namespace dxbsp::core
