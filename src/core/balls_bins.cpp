#include "core/balls_bins.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "util/rng.hpp"

namespace dxbsp::core {

double approx_expected_max_load(double balls, double bins) {
  if (balls <= 0.0) return 0.0;
  if (bins < 1.0) throw std::invalid_argument("need at least one bin");
  if (bins == 1.0) return balls;
  const double mu = balls / bins;
  const double lnb = std::log(bins);
  if (mu >= lnb) {
    // Dense regime: Gaussian-tail max of b Poisson(mu) variables.
    return mu + std::sqrt(2.0 * mu * lnb);
  }
  // Sparse regime: max load ~ ln b / ln((b ln b)/m), at least 1.
  const double denom = std::log((bins / balls) * lnb);
  if (denom <= 0.0) return mu + std::sqrt(2.0 * mu * lnb);
  return std::max(1.0, lnb / denom);
}

double simulate_expected_max_load(std::uint64_t balls, std::uint64_t bins,
                                  unsigned trials, std::uint64_t seed) {
  if (bins == 0) throw std::invalid_argument("need at least one bin");
  if (trials == 0) throw std::invalid_argument("need at least one trial");
  util::Xoshiro256 rng(seed);
  std::vector<std::uint32_t> load(bins);
  double acc = 0.0;
  for (unsigned t = 0; t < trials; ++t) {
    std::fill(load.begin(), load.end(), 0);
    std::uint32_t maxload = 0;
    for (std::uint64_t i = 0; i < balls; ++i) {
      const std::uint32_t l = ++load[rng.below(bins)];
      maxload = std::max(maxload, l);
    }
    acc += maxload;
  }
  return acc / trials;
}

double chernoff_upper_tail(double mean, double delta) {
  if (mean <= 0.0 || delta <= 0.0) return 1.0;
  const double log_bound =
      mean * (delta - (1.0 + delta) * std::log1p(delta));
  return std::exp(std::min(0.0, log_bound));
}

double hoeffding_tail(double n, double t) {
  if (n <= 0.0 || t <= 0.0) return 1.0;
  return std::exp(-2.0 * n * t * t);
}

double predicted_random_pattern_cycles(std::uint64_t n, std::uint64_t p,
                                       std::uint64_t g, std::uint64_t L,
                                       std::uint64_t d, std::uint64_t x) {
  const double banks = static_cast<double>(x) * static_cast<double>(p);
  const double h_bank =
      approx_expected_max_load(static_cast<double>(n), banks);
  const double h_proc =
      std::ceil(static_cast<double>(n) / static_cast<double>(p));
  return std::max(static_cast<double>(g) * h_proc,
                  static_cast<double>(d) * h_bank) +
         2.0 * static_cast<double>(L);
}

std::uint64_t effective_expansion_limit(std::uint64_t n, std::uint64_t p,
                                        std::uint64_t g, std::uint64_t d,
                                        std::uint64_t x_max) {
  const double h_proc =
      static_cast<double>(g) *
      std::ceil(static_cast<double>(n) / static_cast<double>(p));
  for (std::uint64_t x = 1; x <= x_max; ++x) {
    const double banks = static_cast<double>(x) * static_cast<double>(p);
    const double bank_term =
        static_cast<double>(d) *
        approx_expected_max_load(static_cast<double>(n), banks);
    if (bank_term <= h_proc) return x;
  }
  return x_max;
}

}  // namespace dxbsp::core
