#pragma once
// Balls-in-bins estimates and tail bounds for random bank mappings.
//
// Under a (pseudo-)random mapping, n distinct locations land in B banks
// like balls in bins; the max bank load governs d·h_bank. These helpers
// provide the standard closed-form approximations, Chernoff/Hoeffding
// style tails (the Raghavan–Spencer inequality the paper's Theorem 5.2
// proof uses), and a Monte-Carlo reference estimator.

#include <cstdint>

namespace dxbsp::core {

/// Closed-form approximation of E[max load] for m balls in b bins.
/// Piecewise: the sparse regime (m <= b·ln b) uses the classical
/// ln b / ln((b/m)·ln b) form; the dense regime uses m/b + sqrt(2(m/b)ln b).
[[nodiscard]] double approx_expected_max_load(double balls, double bins);

/// Monte-Carlo estimate of E[max load] (trials independent draws).
[[nodiscard]] double simulate_expected_max_load(std::uint64_t balls,
                                                std::uint64_t bins,
                                                unsigned trials,
                                                std::uint64_t seed);

/// Multiplicative Chernoff upper tail for a sum with mean `mean`:
/// P[X > (1+delta)·mean] <= (e^delta / (1+delta)^(1+delta))^mean.
/// This is the Raghavan–Spencer bound used in the Theorem 5.2 analysis.
[[nodiscard]] double chernoff_upper_tail(double mean, double delta);

/// Hoeffding bound for n summands in [0,1]: P[X - E[X] >= t·n] <= exp(-2nt²).
[[nodiscard]] double hoeffding_tail(double n, double t);

/// Predicted (d,x)-BSP scatter time per element for a *random* pattern of
/// n requests on machine (p,g,L,d,x), using the expected-max-load
/// approximation for the bank term. Used by the expansion-sweep figure to
/// overlay the analytic curve on the simulated one.
[[nodiscard]] double predicted_random_pattern_cycles(std::uint64_t n,
                                                     std::uint64_t p,
                                                     std::uint64_t g,
                                                     std::uint64_t L,
                                                     std::uint64_t d,
                                                     std::uint64_t x);

/// The expansion x beyond which further banks stop helping for random
/// patterns of n requests (where the bank term, including the max-load
/// tail, drops below the processor term). Found by scanning x upward.
[[nodiscard]] std::uint64_t effective_expansion_limit(std::uint64_t n,
                                                      std::uint64_t p,
                                                      std::uint64_t g,
                                                      std::uint64_t d,
                                                      std::uint64_t x_max);

}  // namespace dxbsp::core
