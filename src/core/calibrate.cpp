#include "core/calibrate.hpp"

#include <vector>

#include "util/bits.hpp"
#include "workload/patterns.hpp"

namespace dxbsp::core {

CalibratedParams calibrate(sim::Machine& machine, std::uint64_t probe_size) {
  CalibratedParams cal;
  const std::uint64_t p = machine.config().processors;

  // Probe 1 — bank delay: all requests to one address serialize at one
  // per d. Two sizes difference out the latency constant.
  {
    const std::vector<std::uint64_t> big(probe_size, 0);
    const std::vector<std::uint64_t> half(probe_size / 2, 0);
    const auto tb = machine.scatter(big).cycles;
    const auto th = machine.scatter(half).cycles;
    cal.d = static_cast<double>(tb - th) /
            static_cast<double>(probe_size - probe_size / 2);
  }

  // Probe 2 — latency: a single request costs 2L + d.
  {
    const std::vector<std::uint64_t> one(1, 0);
    const auto t1 = static_cast<double>(machine.scatter(one).cycles);
    cal.L = (t1 - cal.d) / 2.0;
    if (cal.L < 0.0) cal.L = 0.0;
  }

  // Probe 3 — bank count: stride-s traces collapse onto one bank exactly
  // when s is a multiple of B (interleaved placement). Doubling the
  // probe stride, the first stride whose max bank load equals the trace
  // length is B. (For hashed machines this probe reports "no collapse".)
  {
    const std::uint64_t n = 1024;
    for (std::uint64_t s = 1; s <= (1ULL << 26); s *= 2) {
      const auto trace = workload::strided(n, s);
      const auto r = machine.scatter(trace);
      if (r.max_bank_load == n) {
        cal.banks = s;
        break;
      }
    }
    cal.x = cal.banks / std::max<std::uint64_t>(p, 1);
  }

  // Probe 4 — gap: spread requests over all banks so the banks never
  // bind; the slope of the time in requests-per-processor is g.
  {
    const std::uint64_t banks =
        cal.banks != 0 ? cal.banks : machine.config().banks();
    std::vector<std::uint64_t> big(probe_size), half(probe_size / 2);
    for (std::uint64_t i = 0; i < big.size(); ++i) big[i] = i % banks;
    for (std::uint64_t i = 0; i < half.size(); ++i) half[i] = i % banks;
    const auto tb = machine.scatter(big).cycles;
    const auto th = machine.scatter(half).cycles;
    cal.g = static_cast<double>(tb - th) /
            (static_cast<double>(probe_size - probe_size / 2) /
             static_cast<double>(p));
  }
  return cal;
}

}  // namespace dxbsp::core
