#pragma once
// Black-box parameter extraction: measure (g, L, d, B) from a machine by
// microbenchmark, the way LogP parameters were measured on real systems.
//
// On a real Cray the modeler does not get to read MachineConfig — the
// parameters come from probes: a single request's round trip bounds L,
// the slope of all-same-address scatters is d, the slope of
// distinct-bank scatters is g, and the bank count reveals itself as the
// smallest power-of-two stride that collapses onto one bank. Running the
// extraction against the simulator (whose true parameters we know)
// validates both the probes and the machine: if calibrate() cannot
// recover MachineConfig, the mechanism is not the one the model assumes.

#include <cstdint>

#include "sim/machine.hpp"

namespace dxbsp::core {

/// Parameters recovered by probing.
struct CalibratedParams {
  /// Effective per-processor request cost for spread traffic. Equals the
  /// issue gap g on bandwidth-balanced machines (x >= d/g); on
  /// bank-starved machines (x < d/g) the spread probe is bank-bound and
  /// this reports ~d/x instead — itself the number a programmer needs.
  double g = 0.0;
  double L = 0.0;          ///< one-way latency
  double d = 0.0;          ///< bank delay
  std::uint64_t banks = 0; ///< detected bank count
  std::uint64_t x = 0;     ///< banks / processors
};

/// Probes `machine` with microbenchmarks and returns the recovered
/// parameters. Non-destructive (bulk operations only). `probe_size`
/// trades accuracy for time (default 64K requests per probe).
[[nodiscard]] CalibratedParams calibrate(sim::Machine& machine,
                                         std::uint64_t probe_size = 1 << 16);

}  // namespace dxbsp::core
