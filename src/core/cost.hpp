#pragma once
// Superstep cost formulas of the BSP and (d,x)-BSP models.
//
// For a superstep in which some processor issues h_proc requests and some
// bank receives h_bank requests, the (d,x)-BSP charges
//
//     T = max( g · h_proc , d · h_bank ) + latency terms
//
// while plain BSP, blind to banks, charges only g·h_proc. We account the
// latency additively as 2L (request + response traversal), which matches
// the pipelined simulator: the issue/service pipelines overlap, the wire
// time does not.

#include <algorithm>
#include <cstdint>

#include "core/params.hpp"

namespace dxbsp::core {

/// The request profile of one superstep.
struct StepProfile {
  std::uint64_t h_proc = 0;  ///< max requests issued by any processor
  std::uint64_t h_bank = 0;  ///< max requests received by any bank
  std::uint64_t total = 0;   ///< total requests (for bookkeeping)
};

/// (d,x)-BSP superstep time.
[[nodiscard]] inline std::uint64_t dxbsp_step_time(
    const DxBspParams& m, const StepProfile& s) noexcept {
  return std::max(m.g * s.h_proc, m.d * s.h_bank) + 2 * m.L;
}

/// The request profile of one superstep through a per-processor cache
/// tier (sim::MachineConfig::cache, docs/cache.md). h_proc counts every
/// issue; h_proc_miss and h_bank only the misses, which are the sole
/// traffic the bank pipeline sees.
struct CachedStepProfile {
  std::uint64_t h_proc = 0;       ///< max requests issued by any processor
  std::uint64_t h_proc_miss = 0;  ///< max cache misses by any processor
  std::uint64_t h_bank = 0;       ///< max misses received by any bank
  std::uint64_t hits = 0;         ///< cache-tier hits, all processors
  std::uint64_t misses = 0;       ///< cache-tier misses, all processors
  std::uint64_t hit_latency = 2;  ///< local service time of a hit
  std::uint64_t total = 0;        ///< total requests (for bookkeeping)
};

/// Hit-ratio-corrected (d,x)-BSP superstep time. Two tails race: the
/// last *hit* completes one hit latency after the final issue slot
/// (g·(h_proc−1)), entirely locally; the *misses* form a (d,x)-BSP
/// superstep of their own — issue term g·h_proc_miss, bank term
/// d·h_bank, plus the 2L wire time only they pay. The superstep ends at
/// whichever tail is later. With no hits this reduces to the flat
/// dxbsp_step_time on the miss profile; with no misses the network terms
/// vanish entirely.
[[nodiscard]] inline std::uint64_t dxbsp_step_time_cached(
    const DxBspParams& m, const CachedStepProfile& s) noexcept {
  const std::uint64_t hit_tail =
      s.hits > 0 ? m.g * (s.h_proc - 1) + s.hit_latency : 0;
  const std::uint64_t miss_core =
      s.misses > 0 ? std::max(m.g * s.h_proc_miss, m.d * s.h_bank) + 2 * m.L
                   : 0;
  return std::max(hit_tail, miss_core);
}

/// Plain BSP superstep time (no bank term) — the baseline the paper shows
/// mispredicts under contention.
[[nodiscard]] inline std::uint64_t bsp_step_time(const DxBspParams& m,
                                                 const StepProfile& s) noexcept {
  return m.g * s.h_proc + 2 * m.L;
}

/// The bank-side component alone (d·h_bank): useful to see which side of
/// the max binds.
[[nodiscard]] inline std::uint64_t bank_time(const DxBspParams& m,
                                             const StepProfile& s) noexcept {
  return m.d * s.h_bank;
}

/// The processor-side component alone (g·h_proc).
[[nodiscard]] inline std::uint64_t proc_time(const DxBspParams& m,
                                             const StepProfile& s) noexcept {
  return m.g * s.h_proc;
}

/// True iff the bank term is the binding constraint of the superstep (the
/// regime where BSP and (d,x)-BSP predictions diverge).
[[nodiscard]] inline bool bank_bound(const DxBspParams& m,
                                     const StepProfile& s) noexcept {
  return bank_time(m, s) > proc_time(m, s);
}

/// The contention value k at which the bank term starts to dominate for a
/// balanced workload of n requests: d·k > g·n/p  =>  k > g·n/(p·d).
/// Points left of this knee look identical under BSP and (d,x)-BSP.
[[nodiscard]] inline double contention_knee(const DxBspParams& m,
                                            std::uint64_t n) noexcept {
  return static_cast<double>(m.g) * static_cast<double>(n) /
         (static_cast<double>(m.p) * static_cast<double>(m.d));
}

}  // namespace dxbsp::core
