#include "core/design.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/balls_bins.hpp"
#include "util/bits.hpp"

namespace dxbsp::core {

ExpansionRecommendation recommend_expansion(std::uint64_t n, std::uint64_t k,
                                            const DxBspParams& base,
                                            double eps, std::uint64_t x_max) {
  if (n == 0) throw std::invalid_argument("recommend_expansion: empty workload");
  if (k == 0 || k > n)
    throw std::invalid_argument("recommend_expansion: k must be in [1, n]");
  if (eps <= 0.0) throw std::invalid_argument("recommend_expansion: eps <= 0");

  ExpansionRecommendation rec;
  rec.x_throughput = util::ceil_div(base.d, base.g);

  const double proc_term =
      static_cast<double>(base.g) *
      std::ceil(static_cast<double>(n) / static_cast<double>(base.p));
  const double hot_term =
      static_cast<double>(base.d) * static_cast<double>(k);
  rec.contention_limited = hot_term >= proc_term;

  // The binding lower bound no expansion can beat: the issue pipeline or
  // the hot location, whichever is larger.
  const double floor_time = std::max(proc_term, hot_term);

  rec.x_tail = x_max;
  for (std::uint64_t x = 1; x <= x_max; x *= 2) {
    const double banks =
        static_cast<double>(x) * static_cast<double>(base.p);
    const double spread =
        approx_expected_max_load(static_cast<double>(n), banks);
    const double bank_term =
        static_cast<double>(base.d) *
        std::max(static_cast<double>(k), spread);
    if (std::max(bank_term, proc_term) <= (1.0 + eps) * floor_time) {
      rec.x_tail = x;
      break;
    }
  }
  rec.x_recommended = std::max(rec.x_throughput, rec.x_tail);
  return rec;
}

}  // namespace dxbsp::core
