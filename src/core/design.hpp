#pragma once
// Machine-design helpers: the paper's "how many banks?" question as an
// API. Given a workload profile (request volume, hottest-location
// contention) and the fixed machine parameters (p, g, L, d), recommend
// an expansion factor: enough banks for throughput balance plus the
// random max-load tail, and a flag for workloads whose location
// contention no number of banks can fix (the d·k term is
// mapping-independent — one location lives in one bank).

#include <cstdint>

#include "core/params.hpp"

namespace dxbsp::core {

/// Outcome of an expansion analysis.
struct ExpansionRecommendation {
  /// Bandwidth balance point ceil(d/g): below this the banks throttle
  /// even perfectly spread traffic.
  std::uint64_t x_throughput = 0;
  /// Smallest x at which the random-pattern bank term (mean + tail) sits
  /// within `eps` of the binding lower bound; where extra banks stop
  /// paying for this workload.
  std::uint64_t x_tail = 0;
  /// max(x_throughput, x_tail), the actionable answer.
  std::uint64_t x_recommended = 0;
  /// True when d·k >= g·n/p: the hot location saturates its bank no
  /// matter how many banks exist; fix the algorithm (replicate the hot
  /// data, QRQW-style), not the machine.
  bool contention_limited = false;
};

/// Analyzes a workload of n requests with hottest-location contention k
/// on a machine with the given (p, g, L, d) (the x in `base` is
/// ignored). `eps` is the acceptable slack over the lower bound; x_max
/// caps the search.
[[nodiscard]] ExpansionRecommendation recommend_expansion(
    std::uint64_t n, std::uint64_t k, const DxBspParams& base,
    double eps = 0.05, std::uint64_t x_max = 4096);

}  // namespace dxbsp::core
