#pragma once
// The (d,x)-DMM: Mehlhorn & Vishkin's Distributed Memory Machine [MV84]
// with the paper's two parameters.
//
// The DMM is the original module-granularity model: p processors access
// m memory modules, and a step in which some module receives H requests
// costs H (the module serves one request per step) — it is the ancestor
// of the h_bank term. The paper notes its d/x extension is as direct as
// the BSP's: give the machine x·p modules that serve one request every
// d cycles, and a step costs
//
//     T = max( ceil(n/p) , d·H )        (synchronous step, no g/L split)
//
// where the DMM's lockstep execution folds the issue gap into the step
// count (g = 1) and synchronization is implicit (no separate L). The
// value of carrying this model alongside the (d,x)-BSP is historical
// fidelity (the module-contention literature the paper builds on speaks
// DMM) and a cleaner lower bound: the DMM cost never exceeds the BSP
// cost, and the gap between them is exactly the latency/overhead terms.

#include <algorithm>
#include <cstdint>

#include "core/cost.hpp"
#include "core/params.hpp"

namespace dxbsp::core {

/// Parameters of the (d,x)-DMM.
struct DxDmmParams {
  std::uint64_t p = 8;  ///< processors
  std::uint64_t d = 6;  ///< module delay
  std::uint64_t x = 16; ///< modules per processor

  [[nodiscard]] std::uint64_t modules() const noexcept { return x * p; }

  [[nodiscard]] static DxDmmParams from_bsp(const DxBspParams& m) {
    return DxDmmParams{m.p, m.d, m.x};
  }
};

/// Synchronous-step time of the (d,x)-DMM.
[[nodiscard]] inline std::uint64_t dxdmm_step_time(
    const DxDmmParams& m, const StepProfile& s) noexcept {
  return std::max(s.h_proc, m.d * s.h_bank);
}

/// Classic DMM step time (d = 1 modules, module count = s's banks):
/// max(h_proc, h_bank).
[[nodiscard]] inline std::uint64_t dmm_step_time(
    const StepProfile& s) noexcept {
  return std::max(s.h_proc, s.h_bank);
}

/// The (d,x)-DMM is the latency-free core of the (d,x)-BSP: for any
/// step, dxdmm <= dxbsp, with equality up to the 2L term when g = 1.
/// (Checked by tests; exposed for model-comparison tables.)
[[nodiscard]] inline std::uint64_t dxbsp_minus_dxdmm(
    const DxBspParams& bsp, const StepProfile& s) noexcept {
  const std::uint64_t b = dxbsp_step_time(bsp, s);
  const std::uint64_t m = dxdmm_step_time(DxDmmParams::from_bsp(bsp), s);
  return b > m ? b - m : 0;
}

}  // namespace dxbsp::core
