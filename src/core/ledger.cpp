#include "core/ledger.hpp"

#include <algorithm>
#include <map>
#include <ostream>

#include "util/table.hpp"

namespace dxbsp::core {

void CostLedger::add(LedgerEntry entry) {
  sim_ += entry.sim_cycles;
  dxbsp_ += entry.pred_dxbsp;
  bsp_ += entry.pred_bsp;
  n_ += entry.n;
  k_ = std::max(k_, entry.max_contention);
  entries_.push_back(std::move(entry));
}

std::vector<LedgerEntry> CostLedger::by_label() const {
  std::map<std::string, LedgerEntry> agg;
  std::vector<std::string> order;
  for (const auto& e : entries_) {
    auto [it, inserted] = agg.try_emplace(e.label, LedgerEntry{e.label, 0, 0, 0, 0, 0});
    if (inserted) order.push_back(e.label);
    it->second.n += e.n;
    it->second.max_contention = std::max(it->second.max_contention, e.max_contention);
    it->second.sim_cycles += e.sim_cycles;
    it->second.pred_dxbsp += e.pred_dxbsp;
    it->second.pred_bsp += e.pred_bsp;
  }
  std::vector<LedgerEntry> out;
  out.reserve(order.size());
  for (const auto& label : order) out.push_back(agg.at(label));
  return out;
}

void CostLedger::print(std::ostream& os) const {
  util::Table t({"phase", "requests", "max k", "sim cycles", "dxbsp pred",
                 "bsp pred"});
  for (const auto& e : by_label()) {
    t.add_row(e.label, e.n, e.max_contention, e.sim_cycles, e.pred_dxbsp,
              e.pred_bsp);
  }
  t.add_row("TOTAL", n_, k_, sim_, dxbsp_, bsp_);
  t.print(os);
}

void CostLedger::print_csv(std::ostream& os) const {
  util::Table t({"phase", "requests", "max_k", "sim_cycles", "dxbsp_pred",
                 "bsp_pred"});
  for (const auto& e : by_label()) {
    t.add_row(e.label, e.n, e.max_contention, e.sim_cycles, e.pred_dxbsp,
              e.pred_bsp);
  }
  t.add_row("TOTAL", n_, k_, sim_, dxbsp_, bsp_);
  t.print_csv(os);
}

void CostLedger::clear() {
  entries_.clear();
  sim_ = dxbsp_ = bsp_ = n_ = k_ = 0;
}

}  // namespace dxbsp::core
