#pragma once
// Multi-superstep cost accounting for algorithm instrumentation.
//
// Algorithms built on the Vm facade record one entry per bulk operation
// (scatter, gather, scan phase, ...). The ledger accumulates simulated
// cycles alongside BSP and (d,x)-BSP predictions so a whole algorithm run
// can be compared against the model phase by phase — the methodology
// behind the paper's Figures 1 and 12 and the connected-components study.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace dxbsp::core {

/// One recorded bulk operation.
struct LedgerEntry {
  std::string label;                ///< e.g. "hook-scatter", "spmv-gather"
  std::uint64_t n = 0;              ///< requests in this operation
  std::uint64_t max_contention = 0; ///< hottest-location multiplicity
  std::uint64_t sim_cycles = 0;     ///< measured on the simulator
  std::uint64_t pred_dxbsp = 0;     ///< (d,x)-BSP prediction
  std::uint64_t pred_bsp = 0;       ///< BSP prediction
};

/// Accumulates entries over an algorithm run.
class CostLedger {
 public:
  void add(LedgerEntry entry);

  [[nodiscard]] const std::vector<LedgerEntry>& entries() const noexcept {
    return entries_;
  }
  [[nodiscard]] std::uint64_t total_sim() const noexcept { return sim_; }
  [[nodiscard]] std::uint64_t total_dxbsp() const noexcept { return dxbsp_; }
  [[nodiscard]] std::uint64_t total_bsp() const noexcept { return bsp_; }
  [[nodiscard]] std::uint64_t total_requests() const noexcept { return n_; }
  [[nodiscard]] std::uint64_t max_contention() const noexcept { return k_; }

  /// Collapses consecutive entries with the same label into per-label
  /// totals (useful for phase summaries of iterative algorithms).
  [[nodiscard]] std::vector<LedgerEntry> by_label() const;

  /// Prints an aligned per-entry breakdown plus totals.
  void print(std::ostream& os) const;

  /// Machine-readable per-label CSV (same aggregation as print()).
  void print_csv(std::ostream& os) const;

  void clear();

 private:
  std::vector<LedgerEntry> entries_;
  std::uint64_t sim_ = 0, dxbsp_ = 0, bsp_ = 0, n_ = 0, k_ = 0;
};

}  // namespace dxbsp::core
