#include "core/lightly_loaded.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dxbsp::core {

double lightly_loaded_conflict_probability(std::uint64_t requesters,
                                           std::uint64_t banks,
                                           std::uint64_t d) {
  if (banks == 0) throw std::invalid_argument("need at least one bank");
  if (requesters <= 1) return 0.0;
  // Each of the other requesters occupies its bank for d of every
  // (d + idle) cycles; with one outstanding request per processor the
  // occupancy fraction seen by a newcomer is d/banks per competitor.
  const double per = static_cast<double>(d) / static_cast<double>(banks);
  const double miss =
      std::pow(1.0 - std::min(1.0, per),
               static_cast<double>(requesters - 1));
  return 1.0 - miss;
}

double lightly_loaded_access_time(std::uint64_t requesters,
                                  std::uint64_t banks, std::uint64_t d,
                                  std::uint64_t base_latency) {
  const double p = lightly_loaded_conflict_probability(requesters, banks, d);
  // On conflict the request waits on average half the busy period.
  return static_cast<double>(base_latency) + static_cast<double>(d) +
         p * static_cast<double>(d) / 2.0;
}

std::uint64_t lightly_loaded_banks_needed(std::uint64_t requesters,
                                          std::uint64_t d, double target) {
  if (target <= 0.0 || target >= 1.0)
    throw std::invalid_argument("target must be in (0,1)");
  for (std::uint64_t banks = 1; banks <= (1ULL << 30); banks *= 2) {
    if (lightly_loaded_conflict_probability(requesters, banks, d) <= target)
      return banks;
  }
  return 1ULL << 30;
}

}  // namespace dxbsp::core
