#pragma once
// Bailey's lightly-loaded bank-conflict analysis [Bai87].
//
// The paper contrasts its heavily-loaded regime (every processor keeps S
// requests in flight) with Bailey's earlier analysis "in the context of
// a lightly-loaded system where a processor may have at most one request
// outstanding and at most one request is ever waiting at a bank", which
// asked how many banks compensate for a given bank delay. These helpers
// implement that classical analysis so the two regimes can be compared
// (see bench_a4_models): under light load the criterion is the
// *probability of a conflict* — driving it down needs ~(p-1)·d/target
// banks, more than the d·p that balances heavy-load throughput — whereas
// the heavily loaded machines the paper models tolerate routine queueing
// and only pay when a bank's queue outlasts the issue pipeline.

#include <cstdint>

namespace dxbsp::core {

/// Probability that a random single request finds its bank busy, given
/// `requesters` independent processors each holding one outstanding
/// random request among `banks` banks with delay d (steady state,
/// Poissonized): p_busy ~ 1 - (1 - d/(banks·(1+...)))^{requesters-1},
/// approximated to first order as (requesters-1)·d / banks, clamped.
[[nodiscard]] double lightly_loaded_conflict_probability(
    std::uint64_t requesters, std::uint64_t banks, std::uint64_t d);

/// Expected memory access time for one random request in the lightly
/// loaded regime: base latency plus half a bank period on conflict.
[[nodiscard]] double lightly_loaded_access_time(std::uint64_t requesters,
                                                std::uint64_t banks,
                                                std::uint64_t d,
                                                std::uint64_t base_latency);

/// Bailey's question inverted: banks needed so the lightly-loaded
/// conflict probability stays below `target` (e.g. 0.05) for the given
/// requesters and delay.
[[nodiscard]] std::uint64_t lightly_loaded_banks_needed(
    std::uint64_t requesters, std::uint64_t d, double target);

}  // namespace dxbsp::core
