#pragma once
// The (d,x)-LogP model.
//
// The paper notes that its two new parameters extend other bandwidth
// models directly: "Although we have chosen the bsp model to extend it
// should be straightforward to extend other related models, such as the
// logp or dmm models, with the d and x parameters. To extend the logp it
// is assumed that the banks are separate modules from the processors."
// This header carries that out for LogP [CKP+93]: latency L, per-message
// overhead o, message gap g, P processors — plus bank delay d and
// expansion x.
//
// For a bulk operation of h_proc requests per processor and h_bank
// requests at the hottest bank:
//
//   T = o + max( (o + g)·h_proc , d·h_bank ) + L    (one-way delivery)
//
// and a round-trip (gather-style) costs an extra L + o. The difference
// from the (d,x)-BSP is the explicit software overhead o, which binds on
// machines where injection is processor-limited rather than wire-limited.

#include <algorithm>
#include <cstdint>

#include "core/cost.hpp"
#include "core/params.hpp"

namespace dxbsp::core {

/// Parameters of the (d,x)-LogP model.
struct DxLogPParams {
  std::uint64_t L = 50;  ///< network latency
  std::uint64_t o = 2;   ///< per-message processor overhead (send or recv)
  std::uint64_t g = 1;   ///< minimum inter-message gap at a processor
  std::uint64_t P = 8;   ///< processors
  std::uint64_t d = 6;   ///< bank delay
  std::uint64_t x = 16;  ///< banks per processor

  [[nodiscard]] std::uint64_t banks() const noexcept { return x * P; }

  /// Builds from (d,x)-BSP parameters with an explicit overhead.
  [[nodiscard]] static DxLogPParams from_bsp(const DxBspParams& m,
                                             std::uint64_t overhead) {
    return DxLogPParams{m.L, overhead, m.g, m.p, m.d, m.x};
  }
};

/// One-way bulk-delivery time under (d,x)-LogP.
[[nodiscard]] inline std::uint64_t dxlogp_step_time(
    const DxLogPParams& m, const StepProfile& s) noexcept {
  const std::uint64_t inject = (m.o + m.g) * s.h_proc;
  return m.o + std::max(inject, m.d * s.h_bank) + m.L;
}

/// Round-trip (request/response) bulk time under (d,x)-LogP.
[[nodiscard]] inline std::uint64_t dxlogp_roundtrip_time(
    const DxLogPParams& m, const StepProfile& s) noexcept {
  return dxlogp_step_time(m, s) + m.L + m.o;
}

/// Plain LogP (bank-blind) one-way time, for comparison.
[[nodiscard]] inline std::uint64_t logp_step_time(
    const DxLogPParams& m, const StepProfile& s) noexcept {
  return m.o + (m.o + m.g) * s.h_proc + m.L;
}

/// The per-processor request count below which the overhead term (o+g)
/// rather than the banks governs: h_bank < (o+g)·h_proc/d.
[[nodiscard]] inline bool overhead_bound(const DxLogPParams& m,
                                         const StepProfile& s) noexcept {
  return (m.o + m.g) * s.h_proc >= m.d * s.h_bank;
}

}  // namespace dxbsp::core
