#pragma once
// The (d,x)-BSP parameter tuple.
//
// Valiant's BSP describes a machine by (p, g, L). The paper extends it
// with the bank delay d and the expansion factor x, giving the
// "(d,x)-BSP" (the paper nicknames it the deluxe BSP). This header is the
// model-side mirror of sim::MachineConfig: the simulator implements the
// mechanism, these parameters drive the analytic predictions.

#include <cstdint>

#include "sim/machine_config.hpp"

namespace dxbsp::core {

/// Parameters of the (d,x)-BSP model.
struct DxBspParams {
  std::uint64_t p = 8;   ///< processors
  std::uint64_t g = 1;   ///< gap: cycles per request at a processor
  std::uint64_t L = 50;  ///< latency/synchronization term (one-way)
  std::uint64_t d = 6;   ///< bank delay: cycles per request at a bank
  std::uint64_t x = 16;  ///< expansion: banks per processor

  [[nodiscard]] std::uint64_t banks() const noexcept { return x * p; }

  /// Extracts the model parameters from a simulator configuration.
  [[nodiscard]] static DxBspParams from_config(const sim::MachineConfig& c) {
    return DxBspParams{c.processors, c.gap, c.latency, c.bank_delay,
                       c.expansion};
  }

  /// The expansion at which aggregate bank bandwidth (x·p/d requests per
  /// cycle) equals aggregate processor bandwidth (p/g): x* = d/g. The
  /// paper's "natural choice" of d banks per processor (for g = 1); one of
  /// its results is that exceeding this still helps.
  [[nodiscard]] double balanced_expansion() const noexcept {
    return static_cast<double>(d) / static_cast<double>(g);
  }
};

}  // namespace dxbsp::core
