#include "core/predictor.hpp"

namespace dxbsp::core {

namespace {
Prediction predictions_from_profile(const AccessProfile& ap,
                                    const DxBspParams& m) {
  Prediction pr;
  pr.profile = ap;
  pr.bsp = bsp_step_time(m, ap.location_step());
  pr.dxbsp_location = dxbsp_step_time(m, ap.location_step());
  pr.dxbsp_mapped =
      ap.h_bank_mapped == 0 ? 0 : dxbsp_step_time(m, ap.mapped_step());
  return pr;
}
}  // namespace

Prediction predict_scatter(std::span<const std::uint64_t> addrs,
                           const DxBspParams& m,
                           const mem::BankMapping* mapping) {
  return predictions_from_profile(profile_access(addrs, m, mapping), m);
}

Prediction predict_scatter(std::span<const std::uint64_t> addrs,
                           const sim::MachineConfig& cfg,
                           const mem::BankMapping* mapping) {
  return predict_scatter(addrs, DxBspParams::from_config(cfg), mapping);
}

Prediction predict_aggregate(std::uint64_t n, std::uint64_t max_contention,
                             const DxBspParams& m) {
  return predictions_from_profile(profile_aggregate(n, max_contention, m), m);
}

}  // namespace dxbsp::core
