#pragma once
// One-call predictions for bulk scatter/gather operations: the
// measured-vs-predicted interface every experiment uses.

#include <cstdint>
#include <span>
#include <string>

#include "core/access_profile.hpp"
#include "core/params.hpp"
#include "sim/machine_config.hpp"

namespace dxbsp::core {

/// Predicted times (in cycles) for one bulk operation under the competing
/// models. `dxbsp_location` is the paper's headline prediction (knows only
/// n and the max location contention k); `dxbsp_mapped` additionally
/// accounts module-map contention under a concrete mapping; `bsp` is the
/// bank-blind baseline.
struct Prediction {
  std::uint64_t bsp = 0;
  std::uint64_t dxbsp_location = 0;
  std::uint64_t dxbsp_mapped = 0;  ///< 0 when no mapping was supplied
  AccessProfile profile;

  [[nodiscard]] double dxbsp_best() const noexcept {
    return static_cast<double>(dxbsp_mapped != 0 ? dxbsp_mapped
                                                 : dxbsp_location);
  }
};

/// Predicts the time of a scatter/gather of `addrs` on machine `m`.
/// If `mapping` is non-null the mapped (oracle) prediction is included.
[[nodiscard]] Prediction predict_scatter(std::span<const std::uint64_t> addrs,
                                         const DxBspParams& m,
                                         const mem::BankMapping* mapping = nullptr);

/// Same from a simulator configuration.
[[nodiscard]] Prediction predict_scatter(std::span<const std::uint64_t> addrs,
                                         const sim::MachineConfig& cfg,
                                         const mem::BankMapping* mapping = nullptr);

/// Predicts from aggregate quantities only (n requests, max contention k).
[[nodiscard]] Prediction predict_aggregate(std::uint64_t n,
                                           std::uint64_t max_contention,
                                           const DxBspParams& m);

}  // namespace dxbsp::core
