#include "fault/failover_mapping.hpp"

#include "resilience/error.hpp"
#include <utility>

namespace dxbsp::fault {

FailoverMapping::FailoverMapping(std::shared_ptr<const mem::BankMapping> base,
                                 std::shared_ptr<const FaultPlan> plan,
                                 std::uint64_t observe_time)
    : mem::BankMapping(base ? base->num_banks() : 0),
      base_(std::move(base)),
      plan_(std::move(plan)),
      time_(observe_time) {
  if (!base_ || !plan_) {
    raise(ErrorCode::kConfig,
        "FailoverMapping: base mapping and fault plan are required");
  }
  if (plan_->num_banks() != num_banks_) {
    raise(ErrorCode::kConfig,
        "FailoverMapping: plan has " + std::to_string(plan_->num_banks()) +
        " banks, mapping has " + std::to_string(num_banks_));
  }
}

std::uint64_t FailoverMapping::bank_of(std::uint64_t addr) const {
  const std::uint64_t bank = base_->bank_of(addr);
  const std::uint64_t spare = plan_->failover(bank, addr, time_);
  return spare == kNoBank ? bank : spare;
}

std::string FailoverMapping::name() const {
  return base_->name() + "+failover";
}

void FailoverMapping::map(std::span<const std::uint64_t> addrs,
                          std::span<std::uint64_t> banks) const {
  base_->bank_of_batch(addrs, banks);
  for (std::size_t i = 0; i < addrs.size(); ++i) {
    const std::uint64_t spare = plan_->failover(banks[i], addrs[i], time_);
    if (spare != kNoBank) banks[i] = spare;
  }
}

}  // namespace dxbsp::fault
