#pragma once
// Failover view of an address→bank mapping.
//
// The simulator re-homes a request whose bank is dead by hash-spreading
// it over the surviving banks (FaultPlan::failover). This decorator
// exposes the same re-homing as a mem::BankMapping observed at a fixed
// time, so the contention analyzer and the predictors can price the
// *surviving* placement with the exact spread the machine uses — which
// is what makes x' = x·(1 − f_dead) an honest correction rather than a
// modelling assumption.

#include <cstdint>
#include <memory>
#include <string>

#include "fault/fault_plan.hpp"
#include "mem/bank_mapping.hpp"

namespace dxbsp::fault {

/// Decorates a base mapping with the plan's dead-bank failover, observed
/// at `observe_time` (deaths with a later onset are still alive in this
/// view). If every bank is dead at the observation time, bank_of returns
/// the base bank unchanged — the mapping stays total; the simulator is
/// where an all-dead machine becomes a structured DegradedResult.
class FailoverMapping final : public mem::BankMapping {
 public:
  FailoverMapping(std::shared_ptr<const mem::BankMapping> base,
                  std::shared_ptr<const FaultPlan> plan,
                  std::uint64_t observe_time);

  [[nodiscard]] std::uint64_t bank_of(std::uint64_t addr) const override;
  [[nodiscard]] std::string name() const override;

  /// Batched override: one dispatch to the base mapping's batch loop,
  /// then the failover correction applied in place — so bulk routing
  /// through a failover view costs the same one virtual call per bulk op
  /// as the base mapping (mem::BankMapping::bank_of_batch).
  void map(std::span<const std::uint64_t> addrs,
           std::span<std::uint64_t> banks) const override;

 private:
  std::shared_ptr<const mem::BankMapping> base_;
  std::shared_ptr<const FaultPlan> plan_;
  std::uint64_t time_;
};

}  // namespace dxbsp::fault
