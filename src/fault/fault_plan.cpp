#include "fault/fault_plan.hpp"

#include "resilience/error.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <numeric>

#include "util/rng.hpp"

namespace dxbsp::fault {

namespace {

// Substream tags for the independent random decisions of a plan.
constexpr std::uint64_t kSlowStream = 0xfa01;
constexpr std::uint64_t kDeadStream = 0xfa02;
constexpr std::uint64_t kDropStream = 0xfa03;
constexpr std::uint64_t kJitterStream = 0xfa04;
constexpr std::uint64_t kSpreadStream = 0xfa05;

// Draws `count` distinct banks from [0, num_banks) by partial
// Fisher-Yates over the identity permutation.
std::vector<std::uint64_t> draw_banks(std::uint64_t count,
                                      std::uint64_t num_banks,
                                      std::uint64_t seed) {
  std::vector<std::uint64_t> ids(num_banks);
  std::iota(ids.begin(), ids.end(), 0);
  util::Xoshiro256 rng(seed);
  for (std::uint64_t i = 0; i < count && i + 1 < num_banks; ++i) {
    std::swap(ids[i], ids[i + rng.below(num_banks - i)]);
  }
  ids.resize(count);
  return ids;
}

std::uint64_t fraction_count(double fraction, std::uint64_t num_banks) {
  const auto count = static_cast<std::uint64_t>(
      std::llround(fraction * static_cast<double>(num_banks)));
  return std::min(count, num_banks);
}

// Uniform double in [0, 1) from a 64-bit hash.
double to_unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

const char* disk_fault_name(DiskFault f) noexcept {
  switch (f) {
    case DiskFault::kNone:
      return "none";
    case DiskFault::kSlow:
      return "slow";
    case DiskFault::kShortWrite:
      return "short_write";
    case DiskFault::kEnospc:
      return "enospc";
    case DiskFault::kCorrupt:
      return "corrupt";
  }
  return "?";
}

void FaultConfig::validate() const {
  if (slow_fraction < 0.0 || slow_fraction > 1.0)
    raise(ErrorCode::kConfig, "FaultConfig: slow_fraction must be in [0,1]");
  if (dead_fraction < 0.0 || dead_fraction > 1.0)
    raise(ErrorCode::kConfig, "FaultConfig: dead_fraction must be in [0,1]");
  if (drop_rate < 0.0 || drop_rate > 1.0)
    raise(ErrorCode::kConfig, "FaultConfig: drop_rate must be in [0,1]");
  if (slow_multiplier == 0)
    raise(ErrorCode::kConfig, "FaultConfig: slow_multiplier must be >= 1");
  if (slow_duration == 0)
    raise(ErrorCode::kConfig, "FaultConfig: slow_duration must be >= 1");
  if (retry.backoff_base == 0)
    raise(ErrorCode::kConfig, "FaultConfig: backoff_base must be >= 1");
  if (retry.backoff_cap < retry.backoff_base)
    raise(ErrorCode::kConfig,
        "FaultConfig: backoff_cap must be >= backoff_base");
  if (disk == DiskFault::kSlow && (disk_param == 0 || disk_param > 10000))
    raise(ErrorCode::kConfig,
          "FaultConfig: disk=slow:N needs N in [1, 10000] milliseconds");
  if (disk == DiskFault::kEnospc && disk_param == 0)
    raise(ErrorCode::kConfig,
          "FaultConfig: disk=enospc:K needs K >= 1 (fail from the K-th chunk)");
}

FaultConfig FaultConfig::parse(const std::string& spec) {
  FaultConfig cfg;
  std::size_t start = 0;
  while (start <= spec.size()) {
    const std::size_t comma = spec.find(',', start);
    const std::size_t end = comma == std::string::npos ? spec.size() : comma;
    if (end > start) {
      const std::string tok = spec.substr(start, end - start);
      const std::size_t eq = tok.find('=');
      if (eq == std::string::npos)
        raise(ErrorCode::kParse,
            "FaultConfig::parse: expected key=value, got '" + tok + "'");
      const std::string key = tok.substr(0, eq);
      const std::string value = tok.substr(eq + 1);
      auto as_int = [&]() -> std::uint64_t {
        try {
          return static_cast<std::uint64_t>(std::stoull(value));
        } catch (const std::exception&) {
          raise(ErrorCode::kParse, "FaultConfig::parse: bad value for '" +
                                      key + "': '" + value + "'");
        }
      };
      auto as_double = [&]() -> double {
        try {
          return std::stod(value);
        } catch (const std::exception&) {
          raise(ErrorCode::kParse, "FaultConfig::parse: bad value for '" +
                                      key + "': '" + value + "'");
        }
      };
      if (key == "seed") {
        cfg.seed = as_int();
      } else if (key == "slow") {
        cfg.slow_fraction = as_double();
      } else if (key == "slow-mult") {
        cfg.slow_multiplier = as_int();
      } else if (key == "slow-onset") {
        cfg.slow_onset = as_int();
      } else if (key == "slow-dur") {
        cfg.slow_duration = as_int();
      } else if (key == "dead") {
        cfg.dead_fraction = as_double();
      } else if (key == "dead-onset") {
        cfg.dead_onset = as_int();
      } else if (key == "drop") {
        cfg.drop_rate = as_double();
      } else if (key == "retries") {
        cfg.retry.max_retries = as_int();
      } else if (key == "backoff") {
        cfg.retry.backoff_base = as_int();
      } else if (key == "backoff-cap") {
        cfg.retry.backoff_cap = as_int();
      } else if (key == "jitter") {
        cfg.retry.jitter = as_int();
      } else if (key == "disk") {
        // disk=slow:N | short_write | enospc:K | corrupt
        const std::size_t colon = value.find(':');
        const std::string mode = value.substr(0, colon);
        const std::string param =
            colon == std::string::npos ? "" : value.substr(colon + 1);
        auto param_int = [&]() -> std::uint64_t {
          try {
            std::size_t used = 0;
            const std::uint64_t v = std::stoull(param, &used);
            if (used != param.size()) throw std::invalid_argument(param);
            return v;
          } catch (const std::exception&) {
            raise(ErrorCode::kParse,
                  "FaultConfig::parse: bad disk parameter '" + param +
                      "' in 'disk=" + value + "'");
          }
        };
        if (mode == "slow") {
          cfg.disk = DiskFault::kSlow;
          cfg.disk_param = param_int();
        } else if (mode == "short_write" && param.empty()) {
          cfg.disk = DiskFault::kShortWrite;
        } else if (mode == "enospc") {
          cfg.disk = DiskFault::kEnospc;
          cfg.disk_param = param_int();
        } else if (mode == "corrupt" && param.empty()) {
          cfg.disk = DiskFault::kCorrupt;
        } else {
          raise(ErrorCode::kParse,
                "FaultConfig::parse: unknown disk fault '" + value +
                    "' (want slow:N, short_write, enospc:K or corrupt)");
        }
      } else {
        raise(ErrorCode::kParse, "FaultConfig::parse: unknown key '" + key +
                                    "'");
      }
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  cfg.validate();
  return cfg;
}

FaultPlan::FaultPlan(const FaultConfig& cfg, std::uint64_t num_banks)
    : num_banks_(num_banks),
      seed_(cfg.seed),
      drop_rate_(cfg.drop_rate),
      retry_(cfg.retry),
      disk_(cfg.disk),
      disk_param_(cfg.disk_param) {
  cfg.validate();
  if (num_banks == 0)
    raise(ErrorCode::kConfig, "FaultPlan: need at least one bank");
  for (const std::uint64_t b :
       draw_banks(fraction_count(cfg.slow_fraction, num_banks), num_banks,
                  util::substream(cfg.seed, kSlowStream))) {
    slow_.push_back(SlowWindow{b, cfg.slow_onset, cfg.slow_duration,
                               cfg.slow_multiplier});
  }
  for (const std::uint64_t b :
       draw_banks(fraction_count(cfg.dead_fraction, num_banks), num_banks,
                  util::substream(cfg.seed, kDeadStream))) {
    deaths_.push_back(BankDeath{b, cfg.dead_onset});
  }
  index_faults();
}

FaultPlan::FaultPlan(std::uint64_t num_banks, std::vector<SlowWindow> slow,
                     std::vector<BankDeath> deaths, double drop_rate,
                     RetryPolicy retry, std::uint64_t seed)
    : num_banks_(num_banks),
      seed_(seed),
      drop_rate_(drop_rate),
      retry_(retry),
      slow_(std::move(slow)),
      deaths_(std::move(deaths)) {
  if (num_banks == 0)
    raise(ErrorCode::kConfig, "FaultPlan: need at least one bank");
  for (const auto& w : slow_) {
    if (w.bank >= num_banks_)
      raise(ErrorCode::kConfig, "FaultPlan: slow window bank out of range");
    if (w.multiplier == 0 || w.duration == 0)
      raise(ErrorCode::kConfig,
          "FaultPlan: slow multiplier and duration must be >= 1");
  }
  for (const auto& d : deaths_) {
    if (d.bank >= num_banks_)
      raise(ErrorCode::kConfig, "FaultPlan: death bank out of range");
  }
  if (drop_rate_ < 0.0 || drop_rate_ > 1.0)
    raise(ErrorCode::kConfig, "FaultPlan: drop_rate must be in [0,1]");
  index_faults();
}

void FaultPlan::index_faults() {
  std::sort(slow_.begin(), slow_.end(),
            [](const SlowWindow& a, const SlowWindow& b) {
              return a.bank != b.bank ? a.bank < b.bank : a.onset < b.onset;
            });
  std::sort(deaths_.begin(), deaths_.end(),
            [](const BankDeath& a, const BankDeath& b) {
              return a.bank != b.bank ? a.bank < b.bank : a.onset < b.onset;
            });
  // Multiple deaths of one bank collapse to the earliest.
  deaths_.erase(std::unique(deaths_.begin(), deaths_.end(),
                            [](const BankDeath& a, const BankDeath& b) {
                              return a.bank == b.bank;
                            }),
                deaths_.end());

  slow_begin_.assign(num_banks_ + 1, 0);
  for (const auto& w : slow_) ++slow_begin_[w.bank + 1];
  for (std::uint64_t b = 0; b < num_banks_; ++b)
    slow_begin_[b + 1] += slow_begin_[b];

  death_onset_.assign(num_banks_, kForever);
  for (const auto& d : deaths_) death_onset_[d.bank] = d.onset;

  drop_seed_ = util::substream(seed_, kDropStream);
  jitter_seed_ = util::substream(seed_, kJitterStream);
  spread_seed_ = util::substream(seed_, kSpreadStream);
}

std::uint64_t FaultPlan::busy_multiplier(std::uint64_t bank,
                                         std::uint64_t time) const {
  std::uint64_t mult = 1;
  for (std::uint32_t i = slow_begin_[bank]; i < slow_begin_[bank + 1]; ++i) {
    const SlowWindow& w = slow_[i];
    if (time >= w.onset && time - w.onset < w.duration)
      mult = std::max(mult, w.multiplier);
  }
  return mult;
}

bool FaultPlan::dead_at(std::uint64_t bank, std::uint64_t time) const {
  return time >= death_onset_[bank];
}

std::uint64_t FaultPlan::alive_at(std::uint64_t time) const {
  std::uint64_t dead = 0;
  for (const auto& d : deaths_)
    if (time >= d.onset) ++dead;
  return num_banks_ - dead;
}

std::uint64_t FaultPlan::failover(std::uint64_t bank, std::uint64_t key,
                                  std::uint64_t time) const {
  if (!dead_at(bank, time)) return bank;
  const std::uint64_t alive = alive_at(time);
  if (alive == 0) return kNoBank;
  // Deterministic hash-spread over the surviving banks: rank r among the
  // alive banks, converted to a bank id by skipping dead ids in order.
  std::uint64_t target =
      util::mix64(spread_seed_ ^ util::mix64(key)) % alive;
  for (const auto& d : deaths_) {
    if (time >= d.onset && d.bank <= target) ++target;
  }
  return target;
}

bool FaultPlan::drop(std::uint64_t request, std::uint64_t attempt) const {
  if (drop_rate_ <= 0.0) return false;
  if (drop_rate_ >= 1.0) return true;
  const std::uint64_t h =
      util::mix64(drop_seed_ ^ util::mix64(request * 0x100001b3ULL + attempt));
  return to_unit(h) < drop_rate_;
}

std::uint64_t FaultPlan::backoff_delay(std::uint64_t request,
                                       std::uint64_t attempt) const {
  const std::uint64_t shift = std::min<std::uint64_t>(attempt - 1, 32);
  std::uint64_t delay = retry_.backoff_base << shift;
  delay = std::min(delay, retry_.backoff_cap);
  if (retry_.jitter > 0) {
    const std::uint64_t h = util::mix64(
        jitter_seed_ ^ util::mix64(request * 0x01000193ULL + attempt));
    delay += h % (retry_.jitter + 1);
  }
  return delay;
}

double FaultPlan::dead_fraction() const noexcept {
  return static_cast<double>(deaths_.size()) /
         static_cast<double>(num_banks_);
}

double FaultPlan::slow_fraction() const noexcept {
  std::uint64_t banks = 0;
  for (std::uint64_t b = 0; b < num_banks_; ++b)
    if (slow_begin_[b + 1] > slow_begin_[b]) ++banks;
  return static_cast<double>(banks) / static_cast<double>(num_banks_);
}

double FaultPlan::max_stall_fraction() const noexcept {
  std::uint64_t mult = 1;
  for (const auto& w : slow_) mult = std::max(mult, w.multiplier);
  return 1.0 - 1.0 / static_cast<double>(mult);
}

std::uint64_t FaultPlan::fingerprint() const noexcept {
  // FNV-1a over every structural field, each word mixed so adjacent
  // fields cannot cancel. The indexes (slow_begin_, death_onset_) are
  // derived from slow_/deaths_, so hashing the source lists suffices.
  std::uint64_t h = 0xCBF29CE484222325ULL;
  auto word = [&h](std::uint64_t v) {
    h ^= util::mix64(v);
    h *= 0x100000001B3ULL;
  };
  word(num_banks_);
  word(seed_);
  word(std::bit_cast<std::uint64_t>(drop_rate_));
  word(retry_.max_retries);
  word(retry_.backoff_base);
  word(retry_.backoff_cap);
  word(retry_.jitter);
  word(static_cast<std::uint64_t>(disk_));
  word(disk_param_);
  for (const auto& w : slow_) {
    word(w.bank);
    word(w.onset);
    word(w.duration);
    word(w.multiplier);
  }
  for (const auto& d : deaths_) {
    word(d.bank);
    word(d.onset);
  }
  return h;
}

}  // namespace dxbsp::fault
