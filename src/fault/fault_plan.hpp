#pragma once
// Fault injection for the (d,x)-BSP simulator: seeded, fully
// deterministic plans of memory-system degradation.
//
// The cost model T = L + max(g·h_proc, d·h_bank) assumes every bank is
// healthy and serves a request every d cycles forever. The machines it
// models do not: DRAM sections suffer refresh conflicts (transiently
// slow banks), thermal stalls, and outright module failures. A FaultPlan
// describes such a scenario:
//   * slow windows  — bank b serves at multiplier·d cycles per request
//                     during [onset, onset+duration);
//   * bank deaths   — bank b stops serving at its onset; its traffic is
//                     re-spread deterministically over the surviving
//                     banks (spare-bank failover as a remapping layer on
//                     top of mem::BankMapping);
//   * request drops — an in-flight attempt is NACKed with probability
//                     drop_rate; the processor retries with exponential
//                     backoff plus deterministic jitter under a bounded
//                     retry budget. Budget exhaustion surfaces as a
//                     structured DegradedResult — never a hang, never a
//                     silently wrong count.
//
// Every decision (which banks, which attempts drop, each jitter draw) is
// a pure function of (seed, identifiers), so the same plan yields
// bit-identical simulation telemetry across runs and thread counts.
// docs/faults.md describes the model and its analytic companion.

#include <cstdint>
#include <string>
#include <vector>

#include "resilience/error.hpp"

namespace dxbsp::fault {

/// Sentinel: no bank available (all banks dead at the query time).
inline constexpr std::uint64_t kNoBank = ~0ULL;

/// Sentinel duration: the fault persists for the rest of the run.
inline constexpr std::uint64_t kForever = ~0ULL;

/// Recovery behaviour of processors whose requests are NACKed.
struct RetryPolicy {
  std::uint64_t max_retries = 8;     ///< retry budget per request
  std::uint64_t backoff_base = 16;   ///< cycles before the first retry
  std::uint64_t backoff_cap = 4096;  ///< ceiling on the exponential delay
  std::uint64_t jitter = 8;          ///< deterministic jitter in [0, jitter]
};

/// Injected failure mode of the spill device (stream::SpillStore). The
/// memory-system faults above degrade the simulated machine; disk faults
/// degrade the host-side spill tier the streaming executor leans on, and
/// must surface as bounded retries and structured Errors, never a crash
/// or a silently short file (docs/streaming.md §failure modes).
enum class DiskFault : std::uint8_t {
  kNone,
  kSlow,        ///< every write stalls for disk_param milliseconds
  kShortWrite,  ///< every write() syscall lands only part of its bytes
  kEnospc,      ///< writes fail as ENOSPC from the disk_param-th chunk on
  kCorrupt,     ///< every chunk's payload is bit-flipped after the CRC
};

[[nodiscard]] const char* disk_fault_name(DiskFault f) noexcept;

/// Scenario description; FaultPlan draws the affected banks from it.
struct FaultConfig {
  std::uint64_t seed = 1;

  double slow_fraction = 0.0;          ///< fraction of banks slowed
  std::uint64_t slow_multiplier = 4;   ///< busy-period multiplier while slow
  std::uint64_t slow_onset = 0;        ///< cycle the slow window opens
  std::uint64_t slow_duration = kForever;

  double dead_fraction = 0.0;  ///< fraction of banks killed
  std::uint64_t dead_onset = 0;

  double drop_rate = 0.0;  ///< per-attempt NACK probability
  RetryPolicy retry;

  DiskFault disk = DiskFault::kNone;  ///< spill-device failure mode
  std::uint64_t disk_param = 0;       ///< slow: ms per write; enospc: chunks

  /// True iff the config describes any memory-system fault (the modes
  /// Machine must run fault-aware for). Disk faults are deliberately not
  /// included: they live on the spill path, not the simulated machine.
  [[nodiscard]] bool any() const noexcept {
    return slow_fraction > 0.0 || dead_fraction > 0.0 || drop_rate > 0.0;
  }

  /// True iff the config injects a spill-device fault.
  [[nodiscard]] bool disk_any() const noexcept {
    return disk != DiskFault::kNone;
  }

  /// Throws Error{kConfig} if any parameter is out of range.
  void validate() const;

  /// Parses a fault spec string of comma-separated key=value pairs, e.g.
  /// "drop=0.01,slow=0.25,slow-mult=4,dead=0.125,seed=7". Keys: seed,
  /// slow, slow-mult, slow-onset, slow-dur, dead, dead-onset, drop,
  /// retries, backoff, backoff-cap, jitter, and the disk grammar
  /// disk=slow:N | short_write | enospc:K | corrupt. Throws Error{kParse}
  /// on unknown keys or bad values; the result is validate()d.
  [[nodiscard]] static FaultConfig parse(const std::string& spec);
};

/// One transient slowdown of one bank.
struct SlowWindow {
  std::uint64_t bank = 0;
  std::uint64_t onset = 0;
  std::uint64_t duration = kForever;
  std::uint64_t multiplier = 1;
};

/// One permanent bank failure.
struct BankDeath {
  std::uint64_t bank = 0;
  std::uint64_t onset = 0;
};

/// Structured report of a degraded bulk operation: how many requests
/// could not be completed and why. The simulator guarantees that
/// completed + failed_requests equals the request count (conservation).
struct DegradedResult {
  std::uint64_t failed_requests = 0;
  std::uint64_t first_failed_element = 0;  ///< element index (issue order)
  std::uint64_t attempts = 0;              ///< attempts spent on that element
  std::string reason;
};

/// Exception form of DegradedResult, thrown by Machine::scatter when a
/// fault plan is injected and the operation cannot fully complete.
/// Part of the dxbsp::Error taxonomy (code kDegraded), so generic
/// callers can route it by code while fault-aware ones keep catching
/// DegradedError for the structured result.
class DegradedError : public Error {
 public:
  explicit DegradedError(DegradedResult result)
      : Error(ErrorCode::kDegraded, "degraded operation: " + result.reason),
        result_(std::move(result)) {}
  [[nodiscard]] const DegradedResult& result() const noexcept {
    return result_;
  }

 private:
  DegradedResult result_;
};

/// A concrete, machine-sized fault scenario. Immutable and stateless
/// once built: all queries are const and pure, so one plan can drive
/// any number of concurrent simulations.
class FaultPlan {
 public:
  /// Draws the affected banks deterministically from cfg.seed.
  FaultPlan(const FaultConfig& cfg, std::uint64_t num_banks);

  /// Explicit scenario (tests, replaying known incidents).
  FaultPlan(std::uint64_t num_banks, std::vector<SlowWindow> slow,
            std::vector<BankDeath> deaths, double drop_rate = 0.0,
            RetryPolicy retry = {}, std::uint64_t seed = 1);

  [[nodiscard]] std::uint64_t num_banks() const noexcept { return num_banks_; }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
  [[nodiscard]] double drop_rate() const noexcept { return drop_rate_; }
  /// Spill-device failure mode (consumed by stream::SpillStore, which
  /// turns it into bounded retries / typed Errors; docs/streaming.md).
  [[nodiscard]] DiskFault disk_fault() const noexcept { return disk_; }
  [[nodiscard]] std::uint64_t disk_param() const noexcept {
    return disk_param_;
  }
  [[nodiscard]] const RetryPolicy& retry() const noexcept { return retry_; }
  [[nodiscard]] const std::vector<SlowWindow>& slow_windows() const noexcept {
    return slow_;
  }
  [[nodiscard]] const std::vector<BankDeath>& deaths() const noexcept {
    return deaths_;
  }

  /// Busy-period multiplier of `bank` for a request starting at `time`
  /// (1 when healthy; the max multiplier over overlapping windows).
  [[nodiscard]] std::uint64_t busy_multiplier(std::uint64_t bank,
                                              std::uint64_t time) const;

  [[nodiscard]] bool dead_at(std::uint64_t bank, std::uint64_t time) const;

  /// Number of banks still alive at `time`.
  [[nodiscard]] std::uint64_t alive_at(std::uint64_t time) const;

  /// Failover target for a request keyed `key` (its address) aimed at
  /// `bank` at `time`: the bank itself while alive, otherwise a
  /// deterministic hash-spread choice among the surviving banks (so dead
  /// traffic re-spreads uniformly instead of piling on one neighbour).
  /// Returns kNoBank when no bank is alive.
  [[nodiscard]] std::uint64_t failover(std::uint64_t bank, std::uint64_t key,
                                       std::uint64_t time) const;

  /// Whether attempt `attempt` (0 = first try) of request `request` is
  /// NACKed. Pure function of (seed, request, attempt).
  [[nodiscard]] bool drop(std::uint64_t request, std::uint64_t attempt) const;

  /// Backoff delay before retry `attempt` (>= 1) of `request`:
  /// min(cap, base·2^(attempt-1)) plus deterministic jitter.
  [[nodiscard]] std::uint64_t backoff_delay(std::uint64_t request,
                                            std::uint64_t attempt) const;

  /// Structural hash of the plan (banks, seed, drop rate, retry policy,
  /// every slow window and death): two plans hash equal iff they inject
  /// the same faults. Used by the drift detector to identify the fault
  /// context of a flagged superstep in run reports.
  [[nodiscard]] std::uint64_t fingerprint() const noexcept;

  // ---- Aggregates for the analytic degraded model (stats/degraded) ----

  /// Fraction of banks that die at some point.
  [[nodiscard]] double dead_fraction() const noexcept;
  /// Fraction of banks with at least one slow window.
  [[nodiscard]] double slow_fraction() const noexcept;
  /// Largest stall duty-cycle over slow banks: 1 - 1/multiplier. The
  /// effective delay of the slowest bank is d' = d / (1 - this).
  [[nodiscard]] double max_stall_fraction() const noexcept;

 private:
  void index_faults();

  std::uint64_t num_banks_ = 0;
  std::uint64_t seed_ = 1;
  double drop_rate_ = 0.0;
  RetryPolicy retry_;
  DiskFault disk_ = DiskFault::kNone;
  std::uint64_t disk_param_ = 0;
  std::vector<SlowWindow> slow_;    // sorted by bank
  std::vector<BankDeath> deaths_;   // sorted by bank
  std::vector<std::uint32_t> slow_begin_;  // per-bank offsets into slow_
  std::vector<std::uint64_t> death_onset_; // per-bank, kForever = alive
  std::uint64_t drop_seed_ = 0;
  std::uint64_t jitter_seed_ = 0;
  std::uint64_t spread_seed_ = 0;
};

}  // namespace dxbsp::fault
