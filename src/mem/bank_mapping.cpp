#include "mem/bank_mapping.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/bits.hpp"
#include "util/soa.hpp"

namespace dxbsp::mem {

BankMapping::BankMapping(std::uint64_t num_banks) : num_banks_(num_banks) {
  if (num_banks == 0)
    throw std::invalid_argument("BankMapping: need at least one bank");
}

void BankMapping::map(std::span<const std::uint64_t> addrs,
                      std::span<std::uint64_t> banks) const {
  if (addrs.size() != banks.size())
    throw std::invalid_argument("BankMapping::map: size mismatch");
  for (std::size_t i = 0; i < addrs.size(); ++i) banks[i] = bank_of(addrs[i]);
}

void InterleavedMapping::map(std::span<const std::uint64_t> addrs,
                             std::span<std::uint64_t> banks) const {
  if (addrs.size() != banks.size())
    throw std::invalid_argument("BankMapping::map: size mismatch");
  const std::uint64_t b = num_banks_;
  DXBSP_VEC_LOOP
  for (std::size_t i = 0; i < addrs.size(); ++i) banks[i] = addrs[i] % b;
}

void BitReversalMapping::map(std::span<const std::uint64_t> addrs,
                             std::span<std::uint64_t> banks) const {
  if (addrs.size() != banks.size())
    throw std::invalid_argument("BankMapping::map: size mismatch");
  // Hoist the per-call bit-width computation of bank_of out of the loop.
  const unsigned bits = util::log2_ceil(num_banks_);
  if (bits == 0) {
    std::fill(banks.begin(), banks.end(), 0);
    return;
  }
  const std::uint64_t mask = (1ULL << bits) - 1;
  const bool pow2 = util::is_pow2(num_banks_);
  DXBSP_VEC_LOOP
  for (std::size_t i = 0; i < addrs.size(); ++i) {
    const std::uint64_t rev = util::reverse_bits(addrs[i] & mask, bits);
    banks[i] = pow2 ? rev : (rev * num_banks_) >> bits;
  }
}

void HashedMapping::map(std::span<const std::uint64_t> addrs,
                        std::span<std::uint64_t> banks) const {
  if (addrs.size() != banks.size())
    throw std::invalid_argument("BankMapping::map: size mismatch");
  DXBSP_VEC_LOOP
  for (std::size_t i = 0; i < addrs.size(); ++i)
    banks[i] = (hash_(addrs[i]) * num_banks_) >> 32;
}

std::uint64_t BitReversalMapping::bank_of(std::uint64_t addr) const {
  // Classic bit-reversal interleave: reverse the low ceil(log2 B) bits of
  // the address, multiply-shift-reduced when B is not a power of two.
  // Consecutive addresses land on maximally separated banks; strides that
  // are multiples of B still collapse (like any deterministic mapping —
  // the reason §4 of the paper hashes instead).
  const unsigned bits = util::log2_ceil(num_banks_);
  if (bits == 0) return 0;
  const std::uint64_t rev =
      util::reverse_bits(addr & ((1ULL << bits) - 1), bits);
  return util::is_pow2(num_banks_) ? rev
                                   : (rev * num_banks_) >> bits;
}

HashedMapping::HashedMapping(std::uint64_t num_banks, HashDegree degree,
                             util::Xoshiro256& rng)
    : BankMapping(num_banks), hash_(degree, 32, rng) {
  if (num_banks > (1ULL << 32))
    throw std::invalid_argument("HashedMapping: too many banks");
}

HashedMapping::HashedMapping(std::uint64_t num_banks, PolynomialHash hash)
    : BankMapping(num_banks), hash_(hash) {
  if (hash_.out_bits() != 32)
    throw std::invalid_argument(
        "HashedMapping: hash must emit 32 bits for the multiply-shift "
        "reduction");
  if (num_banks > (1ULL << 32))
    throw std::invalid_argument("HashedMapping: too many banks");
}

std::unique_ptr<BankMapping> make_mapping(const std::string& name,
                                          std::uint64_t num_banks,
                                          util::Xoshiro256& rng) {
  if (name == "interleaved")
    return std::make_unique<InterleavedMapping>(num_banks);
  if (name == "bit-reversal")
    return std::make_unique<BitReversalMapping>(num_banks);
  if (name == "linear")
    return std::make_unique<HashedMapping>(num_banks, HashDegree::kLinear, rng);
  if (name == "quadratic")
    return std::make_unique<HashedMapping>(num_banks, HashDegree::kQuadratic,
                                           rng);
  if (name == "cubic")
    return std::make_unique<HashedMapping>(num_banks, HashDegree::kCubic, rng);
  throw std::invalid_argument("make_mapping: unknown mapping '" + name + "'");
}

}  // namespace dxbsp::mem
