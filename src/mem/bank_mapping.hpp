#pragma once
// Mappings from memory addresses (word indices) to memory banks.
//
// The machine has B = x·p banks. An address pattern interacts with the
// banks through one of these mappings:
//   * Interleaved  — bank = addr mod B (the classic vector-machine layout;
//                    pathological for strides sharing factors with B).
//   * BitReversal  — bank = reverse(addr) mod B; scrambles locality cheaply.
//   * Hashed       — bank = h(addr) mod B for a universal polynomial hash
//                    (the paper's pseudo-random mapping, §4).
//
// Mappings are value types behind a small interface so the simulator, the
// model and the contention analyzer all observe the same placement.

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "mem/hash.hpp"
#include "util/rng.hpp"

namespace dxbsp::mem {

/// Abstract address→bank mapping over a fixed number of banks.
class BankMapping {
 public:
  explicit BankMapping(std::uint64_t num_banks);
  virtual ~BankMapping() = default;

  [[nodiscard]] std::uint64_t num_banks() const noexcept { return num_banks_; }

  /// Bank holding word `addr`; result is in [0, num_banks()).
  [[nodiscard]] virtual std::uint64_t bank_of(std::uint64_t addr) const = 0;

  /// Human-readable name for tables.
  [[nodiscard]] virtual std::string name() const = 0;

  /// Maps a whole trace at once (banks.size() == addrs.size()); the default
  /// loops over bank_of, subclasses may vectorize.
  virtual void map(std::span<const std::uint64_t> addrs,
                   std::span<std::uint64_t> banks) const;

  /// Batched routing for hot paths: fills banks[i] = bank_of(addrs[i])
  /// with ONE virtual dispatch for the whole span instead of one per
  /// element. The simulator precomputes its address→bank route per bulk
  /// op through this; every concrete mapping overrides map() with a
  /// devirtualized inner loop (the classes are final, so the compiler
  /// inlines their bank_of). Throws std::invalid_argument on a size
  /// mismatch, like map().
  void bank_of_batch(std::span<const std::uint64_t> addrs,
                     std::span<std::uint64_t> banks) const {
    map(addrs, banks);
  }

 protected:
  std::uint64_t num_banks_;
};

/// bank = addr mod B. Matches Cray-style word interleaving.
class InterleavedMapping final : public BankMapping {
 public:
  explicit InterleavedMapping(std::uint64_t num_banks)
      : BankMapping(num_banks) {}
  [[nodiscard]] std::uint64_t bank_of(std::uint64_t addr) const override {
    return addr % num_banks_;
  }
  [[nodiscard]] std::string name() const override { return "interleaved"; }
  void map(std::span<const std::uint64_t> addrs,
           std::span<std::uint64_t> banks) const override;
};

/// bank = bit_reverse_64(addr) mod B. A deterministic scrambling that
/// breaks up small power-of-two strides without a hash draw.
class BitReversalMapping final : public BankMapping {
 public:
  explicit BitReversalMapping(std::uint64_t num_banks)
      : BankMapping(num_banks) {}
  [[nodiscard]] std::uint64_t bank_of(std::uint64_t addr) const override;
  [[nodiscard]] std::string name() const override { return "bit-reversal"; }
  void map(std::span<const std::uint64_t> addrs,
           std::span<std::uint64_t> banks) const override;
};

/// bank = floor(h(addr)·B / 2^32) for a universal polynomial hash h with
/// 32 output bits (paper §4). The multiply-shift reduction consumes the
/// hash's *top* bits — the well-mixed ones in multiplicative hashing —
/// where a plain "mod B" would consume the low bits and collapse strided
/// address patterns onto a handful of banks. A fresh draw of the
/// coefficients gives an independent mapping.
class HashedMapping final : public BankMapping {
 public:
  HashedMapping(std::uint64_t num_banks, HashDegree degree,
                util::Xoshiro256& rng);
  HashedMapping(std::uint64_t num_banks, PolynomialHash hash);

  [[nodiscard]] std::uint64_t bank_of(std::uint64_t addr) const override {
    return (hash_(addr) * num_banks_) >> 32;
  }
  [[nodiscard]] std::string name() const override {
    return "hashed-" + to_string(hash_.degree());
  }
  void map(std::span<const std::uint64_t> addrs,
           std::span<std::uint64_t> banks) const override;
  [[nodiscard]] const PolynomialHash& hash() const noexcept { return hash_; }

 private:
  PolynomialHash hash_;
};

/// Factory: builds a mapping by name ("interleaved", "bit-reversal",
/// "linear", "quadratic", "cubic"); hash draws consume `rng`.
[[nodiscard]] std::unique_ptr<BankMapping> make_mapping(
    const std::string& name, std::uint64_t num_banks, util::Xoshiro256& rng);

}  // namespace dxbsp::mem
