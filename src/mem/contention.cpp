#include "mem/contention.hpp"

#include <algorithm>

#include "util/bits.hpp"

namespace dxbsp::mem {

LocationContention analyze_locations(std::span<const std::uint64_t> addrs) {
  LocationContention lc;
  lc.total = addrs.size();
  if (addrs.empty()) return lc;
  std::vector<std::uint64_t> sorted(addrs.begin(), addrs.end());
  std::sort(sorted.begin(), sorted.end());
  std::uint64_t run = 1;
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    if (sorted[i] == sorted[i - 1]) {
      ++run;
    } else {
      lc.max_contention = std::max(lc.max_contention, run);
      ++lc.distinct;
      run = 1;
    }
  }
  lc.max_contention = std::max(lc.max_contention, run);
  ++lc.distinct;
  lc.mean_contention =
      static_cast<double>(lc.total) / static_cast<double>(lc.distinct);
  return lc;
}

BankLoads analyze_banks(std::span<const std::uint64_t> addrs,
                        const BankMapping& mapping) {
  BankLoads bl;
  bl.load.assign(mapping.num_banks(), 0);
  bl.total = addrs.size();
  for (const std::uint64_t a : addrs) ++bl.load[mapping.bank_of(a)];
  for (const std::uint64_t l : bl.load) {
    bl.max_load = std::max(bl.max_load, l);
    if (l != 0) ++bl.nonempty_banks;
  }
  bl.mean_load = mapping.num_banks() == 0
                     ? 0.0
                     : static_cast<double>(bl.total) /
                           static_cast<double>(mapping.num_banks());
  return bl;
}

std::uint64_t location_forced_max_load(std::span<const std::uint64_t> addrs,
                                       std::uint64_t num_banks) {
  const LocationContention lc = analyze_locations(addrs);
  // Even a perfect map cannot serve one bank faster than its hottest
  // location, nor spread `total` requests thinner than total/B.
  return std::max<std::uint64_t>(
      lc.max_contention, util::ceil_div(lc.total, num_banks));
}

}  // namespace dxbsp::mem
