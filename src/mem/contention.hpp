#pragma once
// Contention analysis of an address trace: per-location multiplicities
// (location contention, the quantity the QRQW model charges for) and
// per-bank loads under a mapping (module-map contention, paper §4).

#include <cstdint>
#include <span>
#include <vector>

#include "mem/bank_mapping.hpp"

namespace dxbsp::mem {

/// Location-contention statistics of one bulk operation's address trace.
struct LocationContention {
  std::uint64_t total = 0;          ///< number of requests
  std::uint64_t distinct = 0;       ///< number of distinct locations
  std::uint64_t max_contention = 0; ///< max requests to any one location (k)
  double mean_contention = 0.0;     ///< total / distinct
};

/// Computes location contention for a trace. O(n log n); the trace is
/// copied and sorted internally.
[[nodiscard]] LocationContention analyze_locations(
    std::span<const std::uint64_t> addrs);

/// Per-bank load statistics of a trace under a mapping.
struct BankLoads {
  std::vector<std::uint64_t> load;  ///< requests per bank (size = num banks)
  std::uint64_t total = 0;
  std::uint64_t max_load = 0;       ///< h_bank in the superstep cost
  double mean_load = 0.0;           ///< total / banks
  std::uint64_t nonempty_banks = 0;
};

/// Tallies requests per bank under `mapping`.
[[nodiscard]] BankLoads analyze_banks(std::span<const std::uint64_t> addrs,
                                      const BankMapping& mapping);

/// Max bank load if every distinct location sat in its own bank (i.e. the
/// load forced purely by *location* contention: the max multiplicity).
/// Comparing analyze_banks().max_load against this isolates the extra
/// contention introduced by the module map — the ratio studied in §4.
[[nodiscard]] std::uint64_t location_forced_max_load(
    std::span<const std::uint64_t> addrs, std::uint64_t num_banks);

}  // namespace dxbsp::mem
