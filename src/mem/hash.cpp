#include "mem/hash.hpp"

#include <stdexcept>

namespace dxbsp::mem {

std::string to_string(HashDegree d) {
  switch (d) {
    case HashDegree::kLinear:
      return "linear";
    case HashDegree::kQuadratic:
      return "quadratic";
    case HashDegree::kCubic:
      return "cubic";
  }
  return "unknown";
}

PolynomialHash::PolynomialHash(HashDegree degree, unsigned out_bits,
                               util::Xoshiro256& rng)
    : degree_(static_cast<int>(degree)),
      shift_(64u - out_bits),
      a_(rng.odd()),
      b_(rng.odd()),
      c_(rng.odd()) {
  if (out_bits == 0 || out_bits > 64)
    throw std::invalid_argument("PolynomialHash: out_bits must be in [1,64]");
}

PolynomialHash::PolynomialHash(HashDegree degree, unsigned out_bits,
                               std::uint64_t a, std::uint64_t b,
                               std::uint64_t c)
    : degree_(static_cast<int>(degree)), shift_(64u - out_bits), a_(a), b_(b), c_(c) {
  if (out_bits == 0 || out_bits > 64)
    throw std::invalid_argument("PolynomialHash: out_bits must be in [1,64]");
  if ((a & 1) == 0 || (b & 1) == 0 || (c & 1) == 0)
    throw std::invalid_argument("PolynomialHash: coefficients must be odd");
}

unsigned PolynomialHash::op_count() const noexcept {
  // Horner evaluation: degree multiplies by y, degree coefficient
  // multiplies, degree-1 adds, one shift.
  const unsigned deg = static_cast<unsigned>(degree_);
  return 2 * deg + (deg - 1) + 1;
}

}  // namespace dxbsp::mem
