#pragma once
// Universal hash families for pseudo-random memory-to-bank mappings.
//
// The paper (§4) evaluates polynomial hash functions over Z_{2^u} with
// randomly drawn odd coefficients, taking the top m bits of the result:
//
//   h^1_a(y)     = (a·y mod 2^u) >> (u - m)                  "linear"
//   h^2_{a,b}(y) = ((a·y + b·y²) mod 2^u) >> (u - m)         "quadratic"
//   h^3_{a,b,c}  = ((a·y + b·y² + c·y³) mod 2^u) >> (u - m)  "cubic"
//
// The linear (multiplicative) scheme is 2-universal in the Carter–Wegman
// sense [DHKP93]; higher degrees give stronger independence and better
// behaviour on structured (e.g. strided) address patterns, at higher
// evaluation cost (paper Table 3). We fix u = 64 so "mod 2^u" is free.

#include <cstdint>
#include <string>

#include "util/rng.hpp"

namespace dxbsp::mem {

/// Degree of the polynomial hash (paper Table 3 rows).
enum class HashDegree : int { kLinear = 1, kQuadratic = 2, kCubic = 3 };

[[nodiscard]] std::string to_string(HashDegree d);

/// A polynomial hash h : [0, 2^64) -> [0, 2^m) with odd random
/// coefficients, as in the paper. Instances are immutable once drawn.
class PolynomialHash {
 public:
  /// Draws coefficients for the given degree from `rng`; `out_bits` is m,
  /// the number of output bits (0 < m <= 64).
  PolynomialHash(HashDegree degree, unsigned out_bits, util::Xoshiro256& rng);

  /// Constructs with explicit coefficients (must be odd); used by tests.
  PolynomialHash(HashDegree degree, unsigned out_bits, std::uint64_t a,
                 std::uint64_t b, std::uint64_t c);

  /// Evaluates the hash. Branch-free in the degree thanks to coefficient
  /// zero-padding never being needed: unused coefficients are simply not
  /// multiplied (dispatch on degree).
  [[nodiscard]] std::uint64_t operator()(std::uint64_t y) const noexcept {
    std::uint64_t v = a_ * y;
    if (degree_ >= 2) {
      const std::uint64_t y2 = y * y;
      v += b_ * y2;
      if (degree_ >= 3) v += c_ * y2 * y;
    }
    return shift_ == 64 ? 0 : (v >> shift_);
  }

  [[nodiscard]] HashDegree degree() const noexcept {
    return static_cast<HashDegree>(degree_);
  }
  [[nodiscard]] unsigned out_bits() const noexcept { return 64u - shift_; }

  /// Per-element evaluation operation count (multiplies + adds + shift),
  /// used for the analytic column of Table 3.
  [[nodiscard]] unsigned op_count() const noexcept;

 private:
  int degree_;
  unsigned shift_;  // 64 - m
  std::uint64_t a_, b_, c_;
};

}  // namespace dxbsp::mem
