#include "obs/attribution.hpp"

namespace dxbsp::obs {

// Order matches the Eq. (1) reading of docs/observability.md: the issue
// pipeline (g·h_proc side), then the bank side (d·h_bank), then the wire
// and the fault-path extras.
const char* cost_term_name(std::size_t i) noexcept {
  switch (i) {
    case 0: return "issue_gap";
    case 1: return "window_stall";
    case 2: return "latency";
    case 3: return "bank_service";
    case 4: return "retry_backoff";
    case 5: return "failover";
    case 6: return "cache_hit";
    default: return "?";
  }
}

std::uint64_t cost_term_value(const CostBreakdown& c, std::size_t i) noexcept {
  switch (i) {
    case 0: return c.issue_gap;
    case 1: return c.window_stall;
    case 2: return c.latency;
    case 3: return c.bank_service;
    case 4: return c.retry_backoff;
    case 5: return c.failover;
    case 6: return c.cache_hit;
    default: return 0;
  }
}

}  // namespace dxbsp::obs
