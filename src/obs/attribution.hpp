#pragma once
// Per-bulk-op cost attribution for the (d,x)-BSP simulator
// (docs/observability.md §attribution).
//
// The paper's Eq. (1) decomposes a superstep as
//     T = 2L + max(g·h_proc, d·h_bank),
// but a measured makespan is one number. This layer recovers the
// decomposition exactly: the makespan of a bulk operation is the ack
// time of one critical request, and that request's lifetime splits into
//   issue_gap     j·g     — pipeline position of its j-th-issue slot
//   window_stall          — issue delay from the slackness window
//   retry_backoff         — failed round trips + backoff (fault plans)
//   latency               — wire time, request + response (≈ 2L)
//   bank_service          — queue wait + service at its bank (d·queue)
//   failover              — the same, when served by a failover spare
//   cache_hit             — local service in the processor's cache tier
//                           (docs/cache.md; replaces latency + bank time
//                           when the critical request hit locally)
// so the terms sum to the measured cycles by construction — an identity
// Machine::run enforces on every operation. Both engines latch the same
// critical event (pop order is identical), so the breakdown is
// bit-identical between kCalendar and kReference.
//
// The bank-load distribution of the operation is kept as a mergeable
// sketch: an exact histogram up to 64 requests per bank plus an
// overflow bucket and the max, from which nearest-rank tail quantiles
// (p50/p90/p99) are computed — exact whenever every bank saw at most 64
// requests, saturating to the max above that.
//
// Everything here is Stability::kDeterministic: pure functions of the
// workload, identical across engines, hosts and thread counts.

#include <algorithm>
#include <array>
#include <cstdint>
#include <mutex>

#include "util/flat_map.hpp"

namespace dxbsp::obs {

/// Exact decomposition of one bulk operation's makespan (all cycles).
struct CostBreakdown {
  std::uint64_t issue_gap = 0;      ///< j·g of the critical request
  std::uint64_t window_stall = 0;   ///< slackness-window issue delay
  std::uint64_t latency = 0;        ///< network traversal, both ways
  std::uint64_t bank_service = 0;   ///< queue wait + service at the bank
  std::uint64_t retry_backoff = 0;  ///< NACK round trips + backoff delays
  std::uint64_t failover = 0;       ///< bank_service spent on a spare bank
  std::uint64_t cache_hit = 0;      ///< local service in the cache tier

  [[nodiscard]] std::uint64_t total() const noexcept {
    return issue_gap + window_stall + latency + bank_service +
           retry_backoff + failover + cache_hit;
  }

  void add(const CostBreakdown& o) noexcept {
    issue_gap += o.issue_gap;
    window_stall += o.window_stall;
    latency += o.latency;
    bank_service += o.bank_service;
    retry_backoff += o.retry_backoff;
    failover += o.failover;
    cache_hit += o.cache_hit;
  }

  friend bool operator==(const CostBreakdown&, const CostBreakdown&) = default;
};

/// Number of terms in a CostBreakdown; with cost_term_name/_value this
/// lets report writers and tables iterate the decomposition without
/// hand-listing the fields at every call site.
inline constexpr std::size_t kCostTerms = 7;
[[nodiscard]] const char* cost_term_name(std::size_t i) noexcept;
[[nodiscard]] std::uint64_t cost_term_value(const CostBreakdown& c,
                                            std::size_t i) noexcept;

/// Mergeable sketch of one (or many) bulk operations' per-bank load
/// distribution: counts[v] = number of banks that served exactly v
/// requests (v <= kExact), one overflow bucket above, plus max and the
/// total served. Merging sketches adds the histograms; quantiles are
/// recomputed from the merged counts.
struct BankLoadSketch {
  static constexpr std::uint64_t kExact = 64;

  std::array<std::uint64_t, kExact + 1> counts{};  ///< exact loads 0..64
  std::uint64_t overflow = 0;  ///< banks with load > kExact
  std::uint64_t banks = 0;     ///< banks observed (including idle ones)
  std::uint64_t max = 0;       ///< largest per-bank load seen
  std::uint64_t served = 0;    ///< sum of loads (requests that held a bank)

  void observe(std::uint64_t load) noexcept {
    if (load <= kExact) {
      ++counts[static_cast<std::size_t>(load)];
    } else {
      ++overflow;
    }
    ++banks;
    max = std::max(max, load);
    served += load;
  }

  void merge(const BankLoadSketch& o) noexcept {
    for (std::size_t v = 0; v <= kExact; ++v) counts[v] += o.counts[v];
    overflow += o.overflow;
    banks += o.banks;
    max = std::max(max, o.max);
    served += o.served;
  }

  /// Nearest-rank quantile of the per-bank load, p in (0, 1]. Exact when
  /// the rank falls in the histogram; a rank landing in the overflow
  /// bucket reports max (the sketch's upper bound for that region).
  [[nodiscard]] std::uint64_t quantile(double p) const noexcept {
    if (banks == 0) return 0;
    const double raw = p * static_cast<double>(banks);
    std::uint64_t rank = static_cast<std::uint64_t>(raw);
    if (static_cast<double>(rank) < raw) ++rank;  // ceil
    rank = std::max<std::uint64_t>(rank, 1);
    std::uint64_t cum = 0;
    for (std::size_t v = 0; v <= kExact; ++v) {
      cum += counts[v];
      if (cum >= rank) return v;
    }
    return max;
  }

  [[nodiscard]] std::uint64_t p50() const noexcept { return quantile(0.50); }
  [[nodiscard]] std::uint64_t p90() const noexcept { return quantile(0.90); }
  [[nodiscard]] std::uint64_t p99() const noexcept { return quantile(0.99); }

  friend bool operator==(const BankLoadSketch&,
                         const BankLoadSketch&) = default;
};

/// Per-operation scratch that latches the critical (makespan-defining)
/// event and its cost decomposition. Owned by Machine, shared by both
/// engines; begin() is called once per bulk op.
///
/// Latch rule: the FIRST event in pop order whose ack strictly exceeds
/// every earlier ack. Pop order is identical across engines
/// ((depart, proc, attempt, elem) tiebreaks), so the latched breakdown
/// is bit-identical between kCalendar and kReference.
class CostAttributor {
 public:
  void begin() noexcept {
    origin_gap_.clear();
    origin_depart_.clear();
    best_ = CostBreakdown{};
    best_ack_ = 0;
    any_ = false;
  }

  /// Records the issue origin of element `elem` before its first retry:
  /// `gap` = j·g of its fresh issue, `depart` = its fresh departure
  /// (gap + accumulated window stall). Called on the NACK of a fresh
  /// attempt only; later retries of the element look the origin up.
  void note_origin(std::uint64_t elem, std::uint64_t gap,
                   std::uint64_t depart) {
    origin_gap_.insert_or_assign(elem, gap);
    origin_depart_.insert_or_assign(elem, depart);
  }

  /// Whether element `elem` has a recorded issue origin (i.e. the event
  /// being attributed is a retry of it). Returns the origin through the
  /// out-params when present.
  [[nodiscard]] bool origin(std::uint64_t elem, std::uint64_t& gap,
                            std::uint64_t& depart) const noexcept {
    const std::uint64_t* g = origin_gap_.find(elem);
    if (g == nullptr) return false;
    gap = *g;
    depart = *origin_depart_.find(elem);
    return true;
  }

  /// Attributes one served event. `fresh_gap` is j·g when the event is a
  /// fresh issue (attempt 0); retries recover their origin from
  /// note_origin. `redirected`: the request was served by a failover
  /// spare, so its bank time is charged to `failover` instead of
  /// `bank_service`.
  void observe_served(std::uint64_t ack, bool fresh, std::uint64_t elem,
                      std::uint64_t fresh_gap, std::uint64_t depart,
                      std::uint64_t arrival, std::uint64_t served,
                      std::uint64_t return_latency, bool redirected) noexcept {
    if (any_ && ack <= best_ack_) return;
    CostBreakdown c = front_terms(fresh, elem, fresh_gap, depart);
    c.latency = (arrival - depart) + return_latency;
    const std::uint64_t bank = served - arrival;
    if (redirected) {
      c.failover = bank;
    } else {
      c.bank_service = bank;
    }
    latch(ack, c);
  }

  /// Attributes a request completed locally by the processor's cache
  /// tier (docs/cache.md): no wire or bank time — the lifetime is issue
  /// position + window stall + the tier's hit latency. Hits only happen
  /// on fresh issues (a NACKed request already missed), so there is no
  /// retry front.
  void observe_cache_hit(std::uint64_t ack, std::uint64_t fresh_gap,
                         std::uint64_t depart) noexcept {
    if (any_ && ack <= best_ack_) return;
    CostBreakdown c;
    c.issue_gap = fresh_gap;
    c.window_stall = depart - fresh_gap;
    c.cache_hit = ack - depart;
    latch(ack, c);
  }

  /// Attributes one unserved event (NACK or terminal failure): the whole
  /// round trip is wire time; no bank term.
  void observe_unserved(std::uint64_t ack, bool fresh, std::uint64_t elem,
                        std::uint64_t fresh_gap,
                        std::uint64_t depart) noexcept {
    if (any_ && ack <= best_ack_) return;
    CostBreakdown c = front_terms(fresh, elem, fresh_gap, depart);
    c.latency = ack - depart;
    latch(ack, c);
  }

  /// The latched critical event's decomposition; terms sum to the
  /// operation's makespan (all zero for an empty operation).
  [[nodiscard]] const CostBreakdown& breakdown() const noexcept {
    return best_;
  }

 private:
  /// issue_gap / window_stall / retry_backoff of the event: a fresh
  /// issue departs at j·g + stall; a retry adds its backoff round trips
  /// on top of the fresh departure recorded by note_origin.
  [[nodiscard]] CostBreakdown front_terms(bool fresh, std::uint64_t elem,
                                          std::uint64_t fresh_gap,
                                          std::uint64_t depart) const noexcept {
    CostBreakdown c;
    if (fresh) {
      c.issue_gap = fresh_gap;
      c.window_stall = depart - fresh_gap;
    } else {
      std::uint64_t gap = 0;
      std::uint64_t fresh_depart = 0;
      if (origin(elem, gap, fresh_depart)) {
        c.issue_gap = gap;
        c.window_stall = fresh_depart - gap;
        c.retry_backoff = depart - fresh_depart;
      } else {
        // Unreachable by construction (every retry's fresh NACK calls
        // note_origin); charge the whole front to retry so the identity
        // still holds rather than silently under-counting.
        c.retry_backoff = depart;
      }
    }
    return c;
  }

  void latch(std::uint64_t ack, const CostBreakdown& c) noexcept {
    best_ = c;
    best_ack_ = ack;
    any_ = true;
  }

  util::FlatMap64 origin_gap_;
  util::FlatMap64 origin_depart_;
  CostBreakdown best_;
  std::uint64_t best_ack_ = 0;
  bool any_ = false;
};

/// Run-level aggregation of per-op attributions, merged commutatively so
/// the totals are bit-identical for any sweep-thread interleaving.
/// Written into the run report's "attribution" section (obs/report.cpp).
class AttributionAggregate {
 public:
  struct Snapshot {
    std::uint64_t supersteps = 0;
    std::uint64_t cycles = 0;  ///< sum of per-op makespans
    CostBreakdown terms;       ///< per-term sums over all operations
    BankLoadSketch sketch;     ///< merged bank-load distribution
    std::uint64_t max_location_contention = 0;
  };

  void record(const CostBreakdown& terms, const BankLoadSketch& sketch,
              std::uint64_t location_contention, std::uint64_t cycles) {
    const std::lock_guard<std::mutex> lock(mu_);
    ++snap_.supersteps;
    snap_.cycles += cycles;
    snap_.terms.add(terms);
    snap_.sketch.merge(sketch);
    snap_.max_location_contention =
        std::max(snap_.max_location_contention, location_contention);
  }

  [[nodiscard]] Snapshot snapshot() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return snap_;
  }

  /// Folds another aggregate's snapshot in (all fields commutative:
  /// sums, sketch merge, max). Merging every shard's snapshot of a
  /// partitioned sweep reproduces the single-process aggregate exactly —
  /// the path fleet coordinators use to assemble a merged report.
  void merge(const Snapshot& o) {
    const std::lock_guard<std::mutex> lock(mu_);
    snap_.supersteps += o.supersteps;
    snap_.cycles += o.cycles;
    snap_.terms.add(o.terms);
    snap_.sketch.merge(o.sketch);
    snap_.max_location_contention =
        std::max(snap_.max_location_contention, o.max_location_contention);
  }

 private:
  mutable std::mutex mu_;
  Snapshot snap_;
};

}  // namespace dxbsp::obs
