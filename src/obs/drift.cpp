#include "obs/drift.hpp"

#include <cmath>

#include "core/cost.hpp"
#include "core/params.hpp"
#include "fault/fault_plan.hpp"
#include "resilience/error.hpp"
#include "stats/degraded.hpp"

namespace dxbsp::obs {

double drift_prediction(const sim::MachineConfig& cfg,
                        const fault::FaultPlan* plan, std::uint64_t n,
                        std::uint64_t h_proc, std::uint64_t h_bank,
                        std::uint64_t location_contention,
                        const CacheObserved* cache) {
  if (cache != nullptr && cache->hits + cache->misses > 0) {
    // Hit-ratio correction: hits complete locally, so the issue stream's
    // tail ends one hit latency after the last issue; only misses enter
    // the bank/network core. A configured tier that saw no traffic (e.g.
    // a bank-id workload that bypasses it) falls through to the flat
    // predictors below.
    const auto params = core::DxBspParams::from_config(cfg);
    if (plan == nullptr) {
      return static_cast<double>(core::dxbsp_step_time_cached(
          params,
          core::CachedStepProfile{h_proc, cache->h_proc_miss, h_bank,
                                  cache->hits, cache->misses,
                                  cfg.cache.hit_latency, n}));
    }
    const std::uint64_t hit_tail =
        cache->hits > 0 ? params.g * (h_proc - 1) + cfg.cache.hit_latency
                        : 0;
    const double miss_core =
        cache->misses > 0
            ? stats::predict_degraded(cfg, *plan, cache->misses,
                                      std::max<std::uint64_t>(
                                          location_contention, 1))
                  .cycles
            : 0.0;
    return std::max(static_cast<double>(hit_tail), miss_core);
  }
  if (plan != nullptr) {
    return stats::predict_degraded(cfg, *plan, n,
                                   std::max<std::uint64_t>(
                                       location_contention, 1))
        .cycles;
  }
  const auto params = core::DxBspParams::from_config(cfg);
  return static_cast<double>(
      core::dxbsp_step_time(params, core::StepProfile{h_proc, h_bank, n}));
}

double DriftDetector::observe(const DriftSample& sample) {
  const CacheObserved cache{sample.cache_hits, sample.cache_misses,
                            sample.h_proc_miss};
  const double predicted =
      sample.config == nullptr
          ? 0.0
          : drift_prediction(*sample.config, sample.plan, sample.n,
                             sample.h_proc, sample.h_bank,
                             sample.location_contention, &cache);
  // An unpredictable superstep (empty op, or no config) scores 0 error
  // rather than dividing by zero.
  const double rel_err =
      predicted > 0.0
          ? static_cast<double>(sample.cycles) / predicted - 1.0
          : 0.0;
  const double abs_err = std::fabs(rel_err);

  const std::lock_guard<std::mutex> lock(mu_);
  ++snap_.supersteps;
  if (abs_err > cfg_.band) ++snap_.out_of_band;
  snap_.max_abs_rel_err = std::max(snap_.max_abs_rel_err, abs_err);

  // Worst-offender latch, interleaving-independent: strictly larger
  // |error| wins; exact ties go to the lower (track, step) identity so
  // concurrent sweep threads converge on the same offender.
  DriftWorst& w = snap_.worst;
  const bool better =
      !w.valid || abs_err > std::fabs(w.rel_err) ||
      (abs_err == std::fabs(w.rel_err) &&
       (sample.track < w.track ||
        (sample.track == w.track && sample.step < w.step)));
  if (better) {
    w.valid = true;
    w.track = sample.track;
    w.step = sample.step;
    w.measured = sample.cycles;
    w.predicted = predicted;
    w.rel_err = rel_err;
    w.n = sample.n;
    w.h_proc = sample.h_proc;
    w.h_bank = sample.h_bank;
    w.location_contention = sample.location_contention;
    w.breakdown = sample.breakdown;
    w.sketch_p50 = sample.sketch_p50;
    w.sketch_p99 = sample.sketch_p99;
    w.sketch_max = sample.sketch_max;
    w.mapping = sample.mapping;
    w.plan_fingerprint = sample.plan_fingerprint;
  }
  return predicted;
}

void DriftDetector::merge(const Snapshot& o) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (o.band != snap_.band)
    raise(ErrorCode::kConfig,
          "DriftDetector::merge: band mismatch (" + std::to_string(o.band) +
              " vs " + std::to_string(snap_.band) + ")");
  snap_.supersteps += o.supersteps;
  snap_.out_of_band += o.out_of_band;
  snap_.max_abs_rel_err = std::max(snap_.max_abs_rel_err, o.max_abs_rel_err);
  if (!o.worst.valid) return;
  DriftWorst& w = snap_.worst;
  const double abs_err = std::fabs(o.worst.rel_err);
  const bool better =
      !w.valid || abs_err > std::fabs(w.rel_err) ||
      (abs_err == std::fabs(w.rel_err) &&
       (o.worst.track < w.track ||
        (o.worst.track == w.track && o.worst.step < w.step)));
  if (better) w = o.worst;
}

}  // namespace dxbsp::obs
