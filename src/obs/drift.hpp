#pragma once
// Model-drift detection: measured superstep time vs the (d,x)-BSP
// prediction, per bulk operation (docs/observability.md §drift).
//
// Every observed superstep is compared against the model that should
// explain it: healthy runs against Eq. (1) with the measured h_proc /
// h_bank (core::dxbsp_step_time — the "dxbsp mapped" predictor of the
// figure benches), faulty runs against stats::predict_degraded with the
// measured location contention. The detector counts supersteps whose
// relative error leaves a configurable band (the paper's validation
// holds ±25%), and latches the worst offender with its full context —
// cost breakdown, bank-load distribution summary, mapping name, fault
// plan fingerprint — so one report pinpoints where the model stopped
// describing the machine.
//
// Determinism: each sample's prediction and error are pure functions of
// the workload, and the worst-offender latch breaks |error| ties by the
// deterministic (track, step) identity — never by arrival order — so
// the drift section of a run report is byte-identical across thread
// counts (Stability::kDeterministic).

#include <cstdint>
#include <mutex>
#include <string>

#include "obs/attribution.hpp"
#include "sim/machine_config.hpp"

namespace dxbsp::fault {
class FaultPlan;
}

namespace dxbsp::obs {

struct DriftConfig {
  /// Relative-error band: |measured/predicted - 1| above this flags the
  /// superstep. Default is the paper's validated ±25%.
  double band = 0.25;
};

/// One superstep observation, filled by sim::Machine at the end of a
/// bulk operation.
struct DriftSample {
  std::uint64_t track = 0;  ///< sweep-point id (bench::Obs::attach)
  std::uint64_t step = 0;   ///< superstep sequence number within the track
  std::uint64_t cycles = 0;
  std::uint64_t n = 0;
  std::uint64_t h_proc = 0;  ///< measured max per-processor requests
  std::uint64_t h_bank = 0;  ///< measured max per-bank load
  std::uint64_t location_contention = 0;  ///< measured k
  std::uint64_t cache_hits = 0;    ///< cache-tier hits (0 when no tier)
  std::uint64_t cache_misses = 0;  ///< cache-tier misses (0 when no tier)
  std::uint64_t h_proc_miss = 0;   ///< measured max per-processor misses
  CostBreakdown breakdown;
  std::uint64_t sketch_p50 = 0;
  std::uint64_t sketch_p99 = 0;
  std::uint64_t sketch_max = 0;
  std::string mapping;                  ///< mem::BankMapping::name()
  std::uint64_t plan_fingerprint = 0;   ///< fault::FaultPlan::fingerprint()
  const sim::MachineConfig* config = nullptr;  ///< required
  const fault::FaultPlan* plan = nullptr;      ///< null = healthy model
};

/// The latched worst offender, context included.
struct DriftWorst {
  bool valid = false;
  std::uint64_t track = 0;
  std::uint64_t step = 0;
  std::uint64_t measured = 0;
  double predicted = 0.0;
  double rel_err = 0.0;  ///< measured/predicted - 1
  std::uint64_t n = 0;
  std::uint64_t h_proc = 0;
  std::uint64_t h_bank = 0;
  std::uint64_t location_contention = 0;
  CostBreakdown breakdown;
  std::uint64_t sketch_p50 = 0;
  std::uint64_t sketch_p99 = 0;
  std::uint64_t sketch_max = 0;
  std::string mapping;
  std::uint64_t plan_fingerprint = 0;
};

class DriftDetector {
 public:
  explicit DriftDetector(DriftConfig cfg = {}) : cfg_(cfg) {
    snap_.band = cfg_.band;
  }

  /// Scores one superstep; returns the model prediction in cycles.
  double observe(const DriftSample& sample);

  struct Snapshot {
    double band = 0.25;
    std::uint64_t supersteps = 0;
    std::uint64_t out_of_band = 0;
    double max_abs_rel_err = 0.0;
    DriftWorst worst;
  };

  [[nodiscard]] Snapshot snapshot() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return snap_;
  }

  /// Folds another detector's snapshot in: counts add, max_abs_rel_err
  /// maxes, and the worst-offender latch applies the same total order as
  /// observe() (strictly larger |rel_err| wins, exact ties to the lower
  /// (track, step)), so merging per-shard snapshots of disjoint sample
  /// sets — in any order — latches the same worst offender a single
  /// detector scoring every sample would have. Bands must match; a
  /// mismatch is Error{kConfig} (shards of one sweep share the band).
  void merge(const Snapshot& o);

  [[nodiscard]] const DriftConfig& config() const noexcept { return cfg_; }

 private:
  DriftConfig cfg_;
  mutable std::mutex mu_;
  Snapshot snap_;
};

/// Cache-tier activity of the superstep being scored, when the machine
/// runs a processor-cache tier (sim::MachineConfig::cache). All zeros —
/// or a null pointer — means the flat predictors apply unchanged.
struct CacheObserved {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t h_proc_miss = 0;  ///< max cache misses by any processor
};

/// The prediction a DriftSample is scored against (exposed for tests and
/// machine_explorer --explain): dxbsp_step_time on the measured profile
/// when `plan` is null, stats::predict_degraded otherwise. With cache
/// activity observed, the hit-ratio-corrected core::dxbsp_step_time_cached
/// replaces the flat healthy model, and the degraded model is fed the
/// miss count instead of n (docs/cache.md §prediction).
[[nodiscard]] double drift_prediction(const sim::MachineConfig& cfg,
                                      const fault::FaultPlan* plan,
                                      std::uint64_t n, std::uint64_t h_proc,
                                      std::uint64_t h_bank,
                                      std::uint64_t location_contention,
                                      const CacheObserved* cache = nullptr);

}  // namespace dxbsp::obs
