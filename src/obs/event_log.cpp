#include "obs/event_log.hpp"

#include "obs/json.hpp"

namespace dxbsp::obs {

void EventLog::span(std::string name, std::uint64_t ts_us,
                    std::uint64_t dur_us, std::uint64_t tid, Args args) {
  Event ev;
  ev.ph = 'X';
  ev.name = std::move(name);
  ev.ts = ts_us;
  ev.dur = dur_us;
  ev.tid = tid;
  ev.args = std::move(args);
  std::lock_guard lock(mu_);
  events_.push_back(std::move(ev));
}

void EventLog::instant(std::string name, std::uint64_t ts_us,
                       std::uint64_t tid, Args args) {
  Event ev;
  ev.ph = 'i';
  ev.name = std::move(name);
  ev.ts = ts_us;
  ev.tid = tid;
  ev.args = std::move(args);
  std::lock_guard lock(mu_);
  events_.push_back(std::move(ev));
}

void EventLog::counter(std::string name, std::uint64_t ts_us,
                       std::uint64_t tid, std::uint64_t value) {
  Event ev;
  ev.ph = 'C';
  ev.name = std::move(name);
  ev.ts = ts_us;
  ev.tid = tid;
  ev.value = value;
  std::lock_guard lock(mu_);
  events_.push_back(std::move(ev));
}

std::size_t EventLog::size() const {
  std::lock_guard lock(mu_);
  return events_.size();
}

void EventLog::write_chrome_json(std::ostream& os) const {
  std::lock_guard lock(mu_);
  os << "{\n\"traceEvents\": [\n";
  os << R"({"ph":"M","name":"process_name","pid":0,"tid":0,"args":{"name":")"
     << json_escape(process_name_) << "\"}}";
  for (const Event& ev : events_) {
    os << ",\n{\"name\":\"" << json_escape(ev.name) << "\",\"ph\":\"" << ev.ph
       << "\",\"pid\":0,\"tid\":" << ev.tid << ",\"ts\":" << ev.ts;
    if (ev.ph == 'X') os << ",\"dur\":" << ev.dur;
    if (ev.ph == 'i') os << ",\"s\":\"t\"";
    if (ev.ph == 'C') {
      os << ",\"args\":{\"value\":" << ev.value << "}";
    } else if (!ev.args.empty()) {
      os << ",\"args\":{";
      bool first = true;
      for (const auto& [k, v] : ev.args) {
        if (!first) os << ',';
        first = false;
        os << '"' << json_escape(k) << "\":\"" << json_escape(v) << '"';
      }
      os << '}';
    }
    os << '}';
  }
  os << "\n],\n\"displayTimeUnit\": \"ms\",\n\"otherData\": "
        "{\"generator\": \"dxbsp\", \"time_unit\": \"us\", \"events\": "
     << events_.size() << "}\n}\n";
}

}  // namespace dxbsp::obs
