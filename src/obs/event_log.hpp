#pragma once
// Host-time Chrome-trace event log (docs/observability.md §fleet).
//
// The cycle-level Tracer (obs/trace.hpp) records *simulated* time and is
// deterministic by contract; fleet orchestration — lease grants,
// heartbeat lag, strikes, backoff, revocations, the merge — happens in
// *wall-clock* time and is host-dependent by nature. EventLog is the
// wall-clock twin: a tiny append-only log of spans/instants/counters
// stamped in µs since a caller-chosen monotonic epoch, written out as
// Chrome trace_event JSON (loadable in Perfetto, like the Tracer's).
//
// The coordinator keeps one (its own orchestration track) and each
// worker keeps one (per-point spans); tools/trace_stitch merges them
// onto one timeline by shifting every worker's µs timestamps with the
// clock offset estimated from heartbeat messages (obs/stitch.hpp).
//
// Thread-safety: appends take a mutex (the worker's heartbeat sampler
// and main thread may interleave); timestamps are caller-provided so a
// span's start can predate its append.

#include <chrono>
#include <cstdint>
#include <ostream>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace dxbsp::obs {

class EventLog {
 public:
  using Args = std::vector<std::pair<std::string, std::string>>;

  /// `process_name` labels the trace's single process (pid 0) via a
  /// Chrome "M" metadata event; `epoch` anchors every timestamp.
  explicit EventLog(
      std::string process_name,
      std::chrono::steady_clock::time_point epoch =
          std::chrono::steady_clock::now())
      : process_name_(std::move(process_name)), epoch_(epoch) {}

  /// µs since the epoch — the clock every record is stamped with.
  [[nodiscard]] std::uint64_t now_us() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  /// Complete span ("X"): [ts_us, ts_us + dur_us) on lane `tid`.
  void span(std::string name, std::uint64_t ts_us, std::uint64_t dur_us,
            std::uint64_t tid, Args args = {});

  /// Instant ("i", thread-scoped) on lane `tid`.
  void instant(std::string name, std::uint64_t ts_us, std::uint64_t tid,
               Args args = {});

  /// Counter sample ("C"): one numeric series per (name, tid).
  void counter(std::string name, std::uint64_t ts_us, std::uint64_t tid,
               std::uint64_t value);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] const std::string& process_name() const noexcept {
    return process_name_;
  }

  /// Chrome trace_event JSON (object form): the process_name metadata
  /// event, then every record in append order, all under pid 0.
  void write_chrome_json(std::ostream& os) const;

 private:
  struct Event {
    char ph = 'i';
    std::string name;
    std::uint64_t ts = 0;
    std::uint64_t dur = 0;
    std::uint64_t tid = 0;
    std::uint64_t value = 0;  // counters only
    Args args;
  };

  std::string process_name_;
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<Event> events_;
};

}  // namespace dxbsp::obs
