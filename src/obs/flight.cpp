#include "obs/flight.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <span>
#include <sstream>

#include "obs/selector.hpp"
#include "obs/trace.hpp"
#include "resilience/snapshot.hpp"

namespace dxbsp::obs {

namespace {

constexpr char kFlightMagic[8] = {'D', 'X', 'F', 'D', 'R', '1', 0, 0};

// On-disk geometry, assembled with memcpy (no struct punning): the
// format is defined by offsets, not by a compiler's layout choices.
//   header: magic[8] | u32 version | u32 record_bytes | u64 slots |
//           u64 pid | zero padding to 64
//   record: u32 crc | u8 kind | u8 sub | u16 zero | u64 seq | u64 t_us |
//           u64 a | u64 b | u64 c | u64 d | zero padding to 64
constexpr std::size_t kCrcOffset = 0;
constexpr std::size_t kBodyOffset = 4;  // crc covers [kBodyOffset, 64)

void put_u32(unsigned char* p, std::uint32_t v) noexcept {
  std::memcpy(p, &v, sizeof v);
}
void put_u64(unsigned char* p, std::uint64_t v) noexcept {
  std::memcpy(p, &v, sizeof v);
}
std::uint32_t get_u32(const unsigned char* p) noexcept {
  std::uint32_t v = 0;
  std::memcpy(&v, p, sizeof v);
  return v;
}
std::uint64_t get_u64(const unsigned char* p) noexcept {
  std::uint64_t v = 0;
  std::memcpy(&v, p, sizeof v);
  return v;
}

}  // namespace

const char* flight_kind_name(FlightKind k) noexcept {
  switch (k) {
    case FlightKind::kPhase: return "phase";
    case FlightKind::kTrace: return "trace";
    case FlightKind::kSelector: return "selector";
    case FlightKind::kNote: return "note";
  }
  return "?";
}

const char* flight_phase_name(FlightPhase p) noexcept {
  switch (p) {
    case FlightPhase::kLease: return "lease";
    case FlightPhase::kPoint: return "point";
    case FlightPhase::kResult: return "result";
    case FlightPhase::kChaos: return "chaos";
  }
  return "?";
}

FlightRecorder::FlightRecorder(const std::string& path,
                               std::chrono::steady_clock::time_point epoch,
                               std::size_t bytes)
    : path_(path), epoch_(epoch) {
  if (bytes < kFlightHeaderBytes + kFlightRecordBytes)
    raise(ErrorCode::kConfig,
          path + ": flight ring needs at least " +
              std::to_string(kFlightHeaderBytes + kFlightRecordBytes) +
              " bytes");
  slots_ = (bytes - kFlightHeaderBytes) / kFlightRecordBytes;
  map_bytes_ = kFlightHeaderBytes + slots_ * kFlightRecordBytes;

  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0)
    raise(ErrorCode::kIo,
          path + ": cannot create flight ring: " + std::strerror(errno));
  if (::ftruncate(fd, static_cast<off_t>(map_bytes_)) != 0) {
    const int err = errno;
    ::close(fd);
    raise(ErrorCode::kIo,
          path + ": cannot size flight ring: " + std::strerror(err));
  }
  void* m = ::mmap(nullptr, map_bytes_, PROT_READ | PROT_WRITE, MAP_SHARED,
                   fd, 0);
  ::close(fd);  // the mapping keeps the file alive
  if (m == MAP_FAILED)
    raise(ErrorCode::kIo,
          path + ": cannot map flight ring: " + std::strerror(errno));
  map_ = static_cast<unsigned char*>(m);

  std::memset(map_, 0, map_bytes_);
  std::memcpy(map_, kFlightMagic, sizeof kFlightMagic);
  put_u32(map_ + 8, kFlightVersion);
  put_u32(map_ + 12, static_cast<std::uint32_t>(kFlightRecordBytes));
  put_u64(map_ + 16, slots_);
  put_u64(map_ + 24, static_cast<std::uint64_t>(::getpid()));
}

FlightRecorder::~FlightRecorder() {
  if (map_ != nullptr) ::munmap(map_, map_bytes_);
}

void FlightRecorder::append(FlightKind kind, std::uint8_t sub,
                            std::uint64_t a, std::uint64_t b, std::uint64_t c,
                            std::uint64_t d) noexcept {
  if (map_ == nullptr || slots_ == 0) return;
  const std::uint64_t t_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());

  unsigned char rec[kFlightRecordBytes] = {};
  rec[kBodyOffset] = static_cast<unsigned char>(kind);
  rec[kBodyOffset + 1] = sub;
  put_u64(rec + 8, seq_);
  put_u64(rec + 16, t_us);
  put_u64(rec + 24, a);
  put_u64(rec + 32, b);
  put_u64(rec + 40, c);
  put_u64(rec + 48, d);
  const std::uint32_t crc = resilience::crc32(std::span<const unsigned char>(
      rec + kBodyOffset, kFlightRecordBytes - kBodyOffset));
  put_u32(rec + kCrcOffset, crc);

  unsigned char* slot =
      map_ + kFlightHeaderBytes + (seq_ % slots_) * kFlightRecordBytes;
  // Invalidate the slot's CRC first: if death lands mid-copy, the
  // reader sees a torn slot, never a chimera of two records.
  put_u32(slot + kCrcOffset, ~crc);
  std::memcpy(slot + kBodyOffset, rec + kBodyOffset,
              kFlightRecordBytes - kBodyOffset);
  put_u32(slot + kCrcOffset, crc);
  ++seq_;
}

Expected<FlightTail> flight_read(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is)
    return Error(ErrorCode::kIo, path + ": cannot open flight ring");
  std::ostringstream buf;
  buf << is.rdbuf();
  const std::string bytes = std::move(buf).str();
  if (bytes.size() < kFlightHeaderBytes)
    return Error(ErrorCode::kCorruptInput,
                 path + ": flight ring shorter than its header");
  const auto* p = reinterpret_cast<const unsigned char*>(bytes.data());
  if (std::memcmp(p, kFlightMagic, sizeof kFlightMagic) != 0)
    return Error(ErrorCode::kCorruptInput, path + ": bad flight magic");
  if (get_u32(p + 8) != kFlightVersion)
    return Error(ErrorCode::kCorruptInput,
                 path + ": unsupported flight version " +
                     std::to_string(get_u32(p + 8)));
  if (get_u32(p + 12) != kFlightRecordBytes)
    return Error(ErrorCode::kCorruptInput,
                 path + ": unexpected record size " +
                     std::to_string(get_u32(p + 12)));

  FlightTail tail;
  tail.slots = get_u64(p + 16);
  tail.pid = get_u64(p + 24);
  const std::uint64_t present = std::min<std::uint64_t>(
      tail.slots, (bytes.size() - kFlightHeaderBytes) / kFlightRecordBytes);
  if (tail.slots == 0 || present < tail.slots)
    return Error(ErrorCode::kCorruptInput,
                 path + ": header claims " + std::to_string(tail.slots) +
                     " slots but the file holds " + std::to_string(present));

  for (std::uint64_t i = 0; i < tail.slots; ++i) {
    const unsigned char* slot =
        p + kFlightHeaderBytes + i * kFlightRecordBytes;
    bool all_zero = true;
    for (std::size_t j = 0; j < kFlightRecordBytes; ++j)
      if (slot[j] != 0) {
        all_zero = false;
        break;
      }
    if (all_zero) continue;  // never written
    const std::uint32_t crc = resilience::crc32(std::span<const unsigned char>(
        slot + kBodyOffset, kFlightRecordBytes - kBodyOffset));
    if (get_u32(slot + kCrcOffset) != crc) {
      ++tail.torn;
      continue;
    }
    FlightRecord r;
    const unsigned char kind = slot[kBodyOffset];
    if (kind >= kFlightKinds) {
      ++tail.torn;
      continue;
    }
    r.kind = static_cast<FlightKind>(kind);
    r.sub = slot[kBodyOffset + 1];
    r.seq = get_u64(slot + 8);
    r.t_us = get_u64(slot + 16);
    r.a = get_u64(slot + 24);
    r.b = get_u64(slot + 32);
    r.c = get_u64(slot + 40);
    r.d = get_u64(slot + 48);
    tail.records.push_back(r);
    ++tail.valid;
  }
  std::sort(tail.records.begin(), tail.records.end(),
            [](const FlightRecord& x, const FlightRecord& y) {
              return x.seq < y.seq;
            });
  return tail;
}

std::string flight_record_name(const FlightRecord& r) {
  switch (r.kind) {
    case FlightKind::kPhase:
      return r.sub < kFlightPhases
                 ? flight_phase_name(static_cast<FlightPhase>(r.sub))
                 : "?";
    case FlightKind::kTrace:
      return r.sub < kTraceKinds
                 ? trace_kind_name(static_cast<TraceKind>(r.sub))
                 : "?";
    case FlightKind::kSelector:
      return r.sub < kEngineChoices
                 ? engine_choice_name(static_cast<EngineChoice>(r.sub))
                 : "?";
    case FlightKind::kNote: return "note";
  }
  return "?";
}

std::string flight_describe(const FlightRecord& r) {
  std::ostringstream os;
  os << flight_kind_name(r.kind) << ' ' << flight_record_name(r);
  switch (r.kind) {
    case FlightKind::kPhase:
      if (r.sub == static_cast<std::uint8_t>(FlightPhase::kPoint)) {
        os << " covered=" << r.a << " completed=" << r.b << "/" << r.c;
      } else if (r.sub == static_cast<std::uint8_t>(FlightPhase::kChaos)) {
        os << " at_phase=" << r.a << " point=" << r.b;
      } else if (r.sub == static_cast<std::uint8_t>(FlightPhase::kResult)) {
        os << " completed=" << r.a << " resumed=" << r.b << " total=" << r.c;
      } else {
        os << " resume_points=" << r.a << " total=" << r.c;
      }
      os << " attempt=" << r.d;
      break;
    case FlightKind::kTrace:
      os << " ts=" << r.a << " dur=" << r.b << " a=" << r.c << " b=" << r.d;
      break;
    case FlightKind::kSelector:
      os << " step=" << r.a << " n=" << r.b << " predicted=" << r.c
         << " measured=" << r.d;
      break;
    case FlightKind::kNote:
      os << " a=" << r.a << " b=" << r.b << " c=" << r.c << " d=" << r.d;
      break;
  }
  return std::move(os).str();
}

}  // namespace dxbsp::obs
