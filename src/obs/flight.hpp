#pragma once
// Crash-safe flight recorder (docs/observability.md §fleet): a
// fixed-size mmap'd ring file each fleet worker continuously writes with
// its most recent protocol-phase transitions, trace-event tails and
// engine-selector decisions, so a worker that dies by SIGKILL — the one
// failure mode that leaves no log line, no report and no result message
// — still leaves a forensically useful tail on disk.
//
// Why mmap: the writer never buffers. Every append lands in the page
// cache immediately, and dirty pages belong to the kernel, not the
// process — a SIGKILL (or any abnormal death) loses nothing that was
// already appended. Only a whole-machine crash can lose the tail, and
// that failure mode already loses the worker's checkpoint fsync
// ordering guarantees anyway.
//
// File layout (`DXFDR1`, little-endian, fixed geometry):
//
//   [64-byte header] magic "DXFDR1\0\0", u32 version, u32 record_bytes,
//                    u64 slots, u64 pid, zero padding
//   [slots x 64-byte records]  slot = seq % slots
//
// Each record is CRC-framed independently (resilience::crc32 over the
// 60 bytes after the crc field), so the reader tolerates torn slots — a
// record half-written at the instant of death fails its CRC and is
// skipped and counted, never trusted and never fatal. Records carry a
// monotone sequence number and a host-monotonic timestamp in µs since
// the worker's epoch (the same clock its heartbeat `mono_us` carries,
// so flight tails line up with the stitched fleet timeline).
//
// The reader (flight_read) is the harvesting side: the coordinator runs
// it after any revocation/SIGKILL/poison and embeds the decoded tail as
// the run report's "post_mortem" section; tools/flight_reader is the
// standalone CLI over the same decoder.

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "resilience/error.hpp"

namespace dxbsp::obs {

inline constexpr std::uint32_t kFlightVersion = 1;
inline constexpr std::size_t kFlightHeaderBytes = 64;
inline constexpr std::size_t kFlightRecordBytes = 64;
/// Default ring file size (header + slots); 64 KiB holds ~1000 records.
inline constexpr std::size_t kFlightDefaultBytes = 64 * 1024;

enum class FlightKind : std::uint8_t {
  kPhase = 0,     ///< protocol-phase transition; sub = FlightPhase
  kTrace = 1,     ///< trace-event tail entry; sub = obs::TraceKind
  kSelector = 2,  ///< engine decision; sub = obs::EngineChoice
  kNote = 3,      ///< free-form marker
};
inline constexpr std::size_t kFlightKinds = 4;

/// Worker protocol phases, mirroring svc::ChaosPhase plus the chaos
/// marker itself (recorded immediately before injected faults execute,
/// so a post-mortem can tell an injected kill from a real one).
enum class FlightPhase : std::uint8_t {
  kLease = 0,   ///< lease accepted; a = resume_points, c = total, d = attempt
  kPoint = 1,   ///< point completed; a = covered, b = completed, c = total
  kResult = 2,  ///< result published; a = completed, b = resumed, c = total
  kChaos = 3,   ///< injected fault firing; a = phase, b = point
};
inline constexpr std::size_t kFlightPhases = 4;

[[nodiscard]] const char* flight_kind_name(FlightKind k) noexcept;
[[nodiscard]] const char* flight_phase_name(FlightPhase p) noexcept;

/// One decoded ring record.
struct FlightRecord {
  FlightKind kind = FlightKind::kNote;
  std::uint8_t sub = 0;      ///< kind-specific subtype (see FlightKind)
  std::uint64_t seq = 0;     ///< monotone append index
  std::uint64_t t_us = 0;    ///< µs since the writer's epoch
  std::uint64_t a = 0, b = 0, c = 0, d = 0;  ///< kind-specific payload
};

/// Single-writer appender over the mmap'd ring. Opening truncates and
/// recreates the file (a ring holds exactly one attempt's tail); every
/// append is crash-durable against process death by construction.
class FlightRecorder {
 public:
  /// Throws Error{kIo} when the file cannot be created/mapped and
  /// Error{kConfig} for a size too small to hold one record.
  FlightRecorder(const std::string& path,
                 std::chrono::steady_clock::time_point epoch,
                 std::size_t bytes = kFlightDefaultBytes);
  ~FlightRecorder();
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Appends one CRC-framed record, stamping seq and t_us. Never throws:
  /// the ring is observability, not control flow.
  void append(FlightKind kind, std::uint8_t sub, std::uint64_t a = 0,
              std::uint64_t b = 0, std::uint64_t c = 0,
              std::uint64_t d = 0) noexcept;

  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] std::uint64_t slots() const noexcept { return slots_; }
  [[nodiscard]] std::uint64_t appended() const noexcept { return seq_; }

 private:
  std::string path_;
  std::chrono::steady_clock::time_point epoch_;
  std::uint64_t slots_ = 0;
  std::uint64_t seq_ = 0;
  unsigned char* map_ = nullptr;
  std::size_t map_bytes_ = 0;
};

/// A harvested ring: every valid record, oldest first (by seq).
struct FlightTail {
  std::uint64_t slots = 0;
  std::uint64_t pid = 0;       ///< writer pid from the header
  std::uint64_t valid = 0;     ///< records that passed their CRC
  std::uint64_t torn = 0;      ///< slots with data that failed the CRC
  std::vector<FlightRecord> records;
};

/// Decodes a flight-recorder file, tolerating torn slots (counted, not
/// fatal). Missing file = Error{kIo}; bad magic/version/geometry =
/// Error{kCorruptInput}. Never throws — the harvesting side must treat a
/// garbage file as evidence, not as a crash.
[[nodiscard]] Expected<FlightTail> flight_read(const std::string& path);

/// One-line human rendering of a record ("phase point completed=3/16
/// attempt=0", "trace bank_busy ts=120 dur=4 ..."), shared by
/// tools/flight_reader and the post-mortem harvester.
[[nodiscard]] std::string flight_describe(const FlightRecord& r);

/// The record's display name: the phase name for kPhase records, the
/// trace-kind name for kTrace, the engine name for kSelector.
[[nodiscard]] std::string flight_record_name(const FlightRecord& r);

}  // namespace dxbsp::obs
