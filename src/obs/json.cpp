#include "obs/json.hpp"

#include <cmath>
#include <cstdio>

namespace dxbsp::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    const auto u = static_cast<unsigned char>(c);
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (u < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", u);
          out += buf;
        } else {
          out += c;  // includes raw UTF-8 bytes >= 0x80
        }
    }
  }
  return out;
}

std::string csv_escape(std::string_view s) {
  const bool needs_quotes =
      s.find_first_of(",\"\r\n") != std::string_view::npos;
  if (!needs_quotes) return std::string(s);
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

void JsonWriter::newline_indent() {
  os_ << '\n';
  for (std::size_t i = 0; i < frames_.size(); ++i) os_ << "  ";
}

void JsonWriter::before_item() {
  if (pending_key_) {
    // The comma/indent was already emitted with the key.
    pending_key_ = false;
    return;
  }
  if (frames_.empty()) return;  // top-level value
  if (frames_.back()) os_ << ',';
  frames_.back() = true;
  newline_indent();
}

JsonWriter& JsonWriter::begin_object() {
  before_item();
  os_ << '{';
  frames_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  const bool had_items = frames_.back();
  frames_.pop_back();
  if (had_items) newline_indent();
  os_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_item();
  os_ << '[';
  frames_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  const bool had_items = frames_.back();
  frames_.pop_back();
  if (had_items) newline_indent();
  os_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  if (frames_.back()) os_ << ',';
  frames_.back() = true;
  newline_indent();
  os_ << '"' << json_escape(k) << "\": ";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  before_item();
  os_ << '"' << json_escape(v) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_item();
  os_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_item();
  os_ << json_number(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_item();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_item();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::null_value() {
  before_item();
  os_ << "null";
  return *this;
}

}  // namespace dxbsp::obs
