#pragma once
// Minimal streaming JSON emitter for the observability outputs (Chrome
// traces, metrics dumps, run reports).
//
// Escaping: '"', '\\' and all control characters below 0x20 are escaped
// (short forms \n \t \r \b \f where they exist, \u00XX otherwise).
// Bytes >= 0x80 pass through untouched: our strings are UTF-8 and JSON
// permits raw UTF-8 in string literals.
//
// Number policy: finite doubles are printed with max_digits10 precision
// so they round-trip; NaN and ±Inf have no JSON representation and are
// emitted as null. A report must stay loadable by every parser —
// consumers treat null as "value undefined", which is exactly what a
// NaN metric means.

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace dxbsp::obs {

/// Returns `s` with JSON string escaping applied (no surrounding quotes).
[[nodiscard]] std::string json_escape(std::string_view s);

/// RFC 4180 CSV field escaping: a field containing a comma, double
/// quote, CR or LF is wrapped in double quotes with inner quotes
/// doubled; anything else passes through unchanged. Metric names are
/// caller-chosen strings, so every CSV writer must route them here.
[[nodiscard]] std::string csv_escape(std::string_view s);

/// Formats a double per the NaN/Inf policy above ("null" when not finite).
[[nodiscard]] std::string json_number(double v);

/// Streaming writer with automatic comma/indent bookkeeping. Layout is
/// deterministic (2-space indent, '\n' line ends), so two writes of the
/// same logical document are byte-identical — the property the CI
/// thread-count diff relies on.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits the key of the next member (object context only).
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(bool v);
  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }

  /// Emits a JSON null ("value undefined", same meaning as NaN metrics).
  JsonWriter& null_value();

  /// key + value in one call, for the common case.
  template <typename T>
  JsonWriter& member(std::string_view k, const T& v) {
    key(k);
    return value(v);
  }

 private:
  void before_item();
  void newline_indent();

  std::ostream& os_;
  // One frame per open container: true once the first item was written
  // (so the next item needs a leading comma).
  std::vector<bool> frames_;
  bool pending_key_ = false;
};

}  // namespace dxbsp::obs
