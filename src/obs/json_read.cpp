#include "obs/json_read.hpp"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <optional>

namespace dxbsp::obs {

double JsonValue::as_double() const noexcept {
  if (kind_ != Kind::kNumber) return 0.0;
  return std::strtod(str_.c_str(), nullptr);
}

std::uint64_t JsonValue::as_u64() const noexcept {
  if (kind_ != Kind::kNumber) return 0;
  // Integer literals convert exactly; fractional/exponent forms (or
  // anything strtoull rejects) fall back through double.
  if (str_.find_first_of(".eE") == std::string::npos && !str_.empty() &&
      str_[0] != '-') {
    errno = 0;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(str_.c_str(), &end, 10);
    if (errno == 0 && end == str_.c_str() + str_.size())
      return static_cast<std::uint64_t>(v);
  }
  const double d = as_double();
  return d <= 0.0 ? 0 : static_cast<std::uint64_t>(d);
}

const JsonValue* JsonValue::find(std::string_view key) const noexcept {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members_)
    if (k == key) return &v;
  return nullptr;
}

/// Recursive-descent parser over the raw text. Depth is bounded so a
/// pathological "[[[[..." input fails cleanly instead of overflowing
/// the stack. Named (not anonymous-namespace) so JsonValue can friend it.
class JsonParser {
 public:
  JsonParser(std::string_view text, const std::string& origin)
      : text_(text), origin_(origin) {}

  Expected<JsonValue> run() {
    JsonValue v;
    if (Error* e = parse_value(v, 0)) return *e;
    skip_ws();
    if (pos_ != text_.size())
      return fail("trailing content after the top-level value");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Error fail(const std::string& why) {
    err_ = Error(ErrorCode::kParse, origin_ + ": offset " +
                                        std::to_string(pos_) + ": " + why);
    return *err_;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  // Returns nullptr on success, a pointer to the stored error otherwise.
  Error* parse_value(JsonValue& out, int depth) {
    if (depth > kMaxDepth) {
      fail("nesting deeper than " + std::to_string(kMaxDepth));
      return &*err_;
    }
    skip_ws();
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return &*err_;
    }
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return parse_object(out, depth);
      case '[':
        return parse_array(out, depth);
      case '"': {
        std::string s;
        if (Error* e = parse_string(s)) return e;
        out.kind_ = JsonValue::Kind::kString;
        out.str_ = std::move(s);
        return nullptr;
      }
      case 't':
        if (!literal("true")) break;
        out.kind_ = JsonValue::Kind::kBool;
        out.bool_ = true;
        return nullptr;
      case 'f':
        if (!literal("false")) break;
        out.kind_ = JsonValue::Kind::kBool;
        out.bool_ = false;
        return nullptr;
      case 'n':
        if (!literal("null")) break;
        out.kind_ = JsonValue::Kind::kNull;
        return nullptr;
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return parse_number(out);
        break;
    }
    fail(std::string("unexpected character '") + c + "'");
    return &*err_;
  }

  Error* parse_object(JsonValue& out, int depth) {
    ++pos_;  // '{'
    out.kind_ = JsonValue::Kind::kObject;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return nullptr;
    }
    while (true) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        fail("expected '\"' to start an object key");
        return &*err_;
      }
      std::string key;
      if (Error* e = parse_string(key)) return e;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        fail("expected ':' after object key");
        return &*err_;
      }
      ++pos_;
      JsonValue member;
      if (Error* e = parse_value(member, depth + 1)) return e;
      out.members_.emplace_back(std::move(key), std::move(member));
      skip_ws();
      if (pos_ >= text_.size()) {
        fail("unterminated object");
        return &*err_;
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return nullptr;
      }
      fail("expected ',' or '}' in object");
      return &*err_;
    }
  }

  Error* parse_array(JsonValue& out, int depth) {
    ++pos_;  // '['
    out.kind_ = JsonValue::Kind::kArray;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return nullptr;
    }
    while (true) {
      JsonValue item;
      if (Error* e = parse_value(item, depth + 1)) return e;
      out.items_.push_back(std::move(item));
      skip_ws();
      if (pos_ >= text_.size()) {
        fail("unterminated array");
        return &*err_;
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return nullptr;
      }
      fail("expected ',' or ']' in array");
      return &*err_;
    }
  }

  Error* parse_string(std::string& out) {
    ++pos_;  // opening '"'
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return nullptr;
      }
      if (c == '\\') {
        if (pos_ + 1 >= text_.size()) break;
        const char esc = text_[pos_ + 1];
        pos_ += 2;
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              fail("truncated \\u escape");
              return &*err_;
            }
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_ + static_cast<std::size_t>(i)];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f')
                code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F')
                code |= static_cast<unsigned>(h - 'A' + 10);
              else {
                fail("bad hex digit in \\u escape");
                return &*err_;
              }
            }
            pos_ += 4;
            // UTF-8 encode the code point. Surrogate pairs are not
            // recombined — the writer never emits \u above 0x1f, so
            // this path only sees escaped control characters in
            // practice; lone surrogates encode as-is.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            fail(std::string("unknown escape '\\") + esc + "'");
            return &*err_;
        }
        continue;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
        return &*err_;
      }
      out += c;
      ++pos_;
    }
    fail("unterminated string");
    return &*err_;
  }

  Error* parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    auto digits = [&] {
      const std::size_t before = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9')
        ++pos_;
      return pos_ > before;
    };
    if (!digits()) {
      fail("malformed number");
      return &*err_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (!digits()) {
        fail("malformed number (no digits after '.')");
        return &*err_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      if (!digits()) {
        fail("malformed number (no exponent digits)");
        return &*err_;
      }
    }
    out.kind_ = JsonValue::Kind::kNumber;
    out.str_ = std::string(text_.substr(start, pos_ - start));
    return nullptr;
  }

  std::string_view text_;
  const std::string& origin_;
  std::size_t pos_ = 0;
  std::optional<Error> err_;
};

Expected<JsonValue> JsonValue::parse(std::string_view text,
                                     const std::string& origin) {
  return JsonParser(text, origin).run();
}

}  // namespace dxbsp::obs
