#pragma once
// Minimal recursive-descent JSON reader, the inverse of obs/json.hpp.
//
// Scope: just enough to load the run reports and BENCH_*.json baselines
// this repo's own JsonWriter emits (tools/bench_trend.cpp,
// scripts/bench_history.py is the Python twin). It is a full parser for
// standard JSON values, but deliberately small: no streaming, no SAX,
// no comments/trailing-comma extensions.
//
// Number policy mirrors the writer: numbers keep their raw source text
// and convert on demand (as_u64 / as_double), so a u64 counter that
// does not fit a double survives a round-trip un-rounded.
//
// Errors are reported as Expected<JsonValue> with a byte offset in the
// message; the parser never throws on malformed input.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "resilience/error.hpp"

namespace dxbsp::obs {

/// One parsed JSON value. Object member order is preserved (reports are
/// written in a deterministic order; tools echo it back the same way).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_object() const noexcept {
    return kind_ == Kind::kObject;
  }
  [[nodiscard]] bool is_array() const noexcept { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_number() const noexcept {
    return kind_ == Kind::kNumber;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return kind_ == Kind::kString;
  }

  /// String value (string kind only; empty otherwise).
  [[nodiscard]] const std::string& as_string() const noexcept { return str_; }

  /// Bool value (bool kind only; false otherwise).
  [[nodiscard]] bool as_bool() const noexcept { return bool_; }

  /// Raw source text of a number ("17", "0.25", "1e9").
  [[nodiscard]] const std::string& raw_number() const noexcept { return str_; }

  /// Number as double (0.0 if not a number).
  [[nodiscard]] double as_double() const noexcept;

  /// Number as u64; exact for integer literals up to 2^64-1. Falls back
  /// to a double conversion for fractional/exponent forms.
  [[nodiscard]] std::uint64_t as_u64() const noexcept;

  [[nodiscard]] const std::vector<JsonValue>& items() const noexcept {
    return items_;
  }
  [[nodiscard]] const std::vector<std::pair<std::string, JsonValue>>& members()
      const noexcept {
    return members_;
  }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const noexcept;

  /// Parses a complete JSON document (leading/trailing whitespace ok).
  /// `origin` names the source (a path) in error messages.
  [[nodiscard]] static Expected<JsonValue> parse(std::string_view text,
                                                 const std::string& origin);

 private:
  friend class JsonParser;
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::string str_;  // string value or raw number text
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

}  // namespace dxbsp::obs
