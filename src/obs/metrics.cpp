#include "obs/metrics.hpp"

#include <algorithm>

#include "obs/json.hpp"
#include "resilience/error.hpp"

namespace dxbsp::obs {

const char* metric_kind_name(MetricKind k) noexcept {
  switch (k) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "?";
}

Histogram::Histogram(std::vector<std::uint64_t> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end()))
    raise(ErrorCode::kConfig, "Histogram: bounds must be sorted");
}

void Histogram::observe(std::uint64_t x) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  const auto i = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
}

void Histogram::add_counts(std::span<const std::uint64_t> counts) {
  if (counts.size() != buckets_.size())
    raise(ErrorCode::kConfig,
          "Histogram::add_counts: " + std::to_string(counts.size()) +
              " buckets, this histogram has " +
              std::to_string(buckets_.size()));
  for (std::size_t i = 0; i < buckets_.size(); ++i)
    buckets_[i].fetch_add(counts[i], std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::counts() const {
  std::vector<std::uint64_t> out(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i)
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  return out;
}

std::uint64_t Histogram::total() const noexcept {
  std::uint64_t t = 0;
  for (const auto& b : buckets_) t += b.load(std::memory_order_relaxed);
  return t;
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

std::span<const std::uint64_t> pow4_bounds() noexcept {
  static const std::uint64_t bounds[] = {
      1ULL,        4ULL,        16ULL,       64ULL,
      256ULL,      1024ULL,     4096ULL,     16384ULL,
      65536ULL,    262144ULL,   1048576ULL,  4194304ULL,
      16777216ULL, 67108864ULL, 268435456ULL, 1073741824ULL};
  return bounds;
}

struct MetricsRegistry::Slot {
  MetricKind kind;
  Stability stability;
  Counter counter;
  Gauge gauge;
  std::unique_ptr<Histogram> histogram;
};

MetricsRegistry::MetricsRegistry() = default;
MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry::Slot& MetricsRegistry::slot(
    const std::string& name, MetricKind kind, Stability s,
    std::span<const std::uint64_t> bounds) {
  std::lock_guard lock(mu_);
  auto it = slots_.find(name);
  if (it == slots_.end()) {
    auto sl = std::make_unique<Slot>();
    sl->kind = kind;
    sl->stability = s;
    if (kind == MetricKind::kHistogram)
      sl->histogram = std::make_unique<Histogram>(
          std::vector<std::uint64_t>(bounds.begin(), bounds.end()));
    it = slots_.emplace(name, std::move(sl)).first;
  } else if (it->second->kind != kind) {
    raise(ErrorCode::kConfig,
          "MetricsRegistry: metric '" + name + "' already registered as " +
              metric_kind_name(it->second->kind) + ", requested " +
              metric_kind_name(kind));
  } else if (kind == MetricKind::kHistogram &&
             !std::equal(bounds.begin(), bounds.end(),
                         it->second->histogram->bounds().begin(),
                         it->second->histogram->bounds().end())) {
    raise(ErrorCode::kConfig, "MetricsRegistry: histogram '" + name +
                                  "' re-registered with different bounds");
  }
  return *it->second;
}

Counter& MetricsRegistry::counter(const std::string& name, Stability s) {
  return slot(name, MetricKind::kCounter, s, {}).counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, Stability s) {
  return slot(name, MetricKind::kGauge, s, {}).gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::span<const std::uint64_t> bounds,
                                      Stability s) {
  return *slot(name, MetricKind::kHistogram, s, bounds).histogram;
}

std::vector<MetricsRegistry::Entry> MetricsRegistry::snapshot(
    bool include_host) const {
  std::lock_guard lock(mu_);
  std::vector<Entry> out;
  out.reserve(slots_.size());
  for (const auto& [name, sl] : slots_) {  // std::map: sorted by name
    if (sl->stability == Stability::kHost && !include_host) continue;
    Entry e;
    e.name = name;
    e.kind = sl->kind;
    e.stability = sl->stability;
    switch (sl->kind) {
      case MetricKind::kCounter:
        e.value = sl->counter.value();
        break;
      case MetricKind::kGauge:
        e.value = sl->gauge.value();
        break;
      case MetricKind::kHistogram:
        e.bounds = sl->histogram->bounds();
        e.bucket_counts = sl->histogram->counts();
        e.value = sl->histogram->total();
        break;
    }
    out.push_back(std::move(e));
  }
  return out;
}

void MetricsRegistry::merge(const Entry& e) {
  switch (e.kind) {
    case MetricKind::kCounter:
      counter(e.name, e.stability).add(e.value);
      break;
    case MetricKind::kGauge:
      gauge(e.name, e.stability).observe(e.value);
      break;
    case MetricKind::kHistogram:
      histogram(e.name, e.bounds, e.stability).add_counts(e.bucket_counts);
      break;
  }
}

void MetricsRegistry::write_json(std::ostream& os, bool include_host) const {
  JsonWriter w(os);
  w.begin_object();
  w.key("metrics").begin_object();
  for (const Entry& e : snapshot(include_host)) {
    w.key(e.name).begin_object();
    w.member("kind", metric_kind_name(e.kind));
    w.member("stability", e.stability == Stability::kHost ? "host"
                                                          : "deterministic");
    if (e.kind == MetricKind::kHistogram) {
      w.member("total", e.value);
      w.key("bounds").begin_array();
      for (const std::uint64_t b : e.bounds) w.value(b);
      w.end_array();
      w.key("counts").begin_array();
      for (const std::uint64_t c : e.bucket_counts) w.value(c);
      w.end_array();
    } else {
      w.member("value", e.value);
    }
    w.end_object();
  }
  w.end_object();
  w.end_object();
  os << '\n';
}

void MetricsRegistry::write_csv(std::ostream& os, bool include_host) const {
  os << "name,kind,stability,value\n";
  for (const Entry& e : snapshot(include_host)) {
    os << csv_escape(e.name) << ',' << metric_kind_name(e.kind) << ','
       << (e.stability == Stability::kHost ? "host" : "deterministic") << ','
       << e.value << '\n';
  }
}

void MetricsRegistry::reset() {
  std::lock_guard lock(mu_);
  for (auto& [name, sl] : slots_) {
    sl->counter.reset();
    sl->gauge.reset();
    if (sl->histogram) sl->histogram->reset();
  }
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard lock(mu_);
  return slots_.size();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry reg;
  return reg;
}

}  // namespace dxbsp::obs
