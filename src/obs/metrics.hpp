#pragma once
// Metrics registry: named counters, gauges and fixed-bucket histograms
// that the simulator layers (Machine, BankArray, Network, ThreadPool,
// SweepRunner, the fault path) publish into, and that the run-report
// writer dumps per bench invocation (docs/observability.md).
//
// Concurrency: metric updates are single atomic RMW operations and may
// come from any thread (sweep points run on a pool). Lookup/registration
// takes a mutex, so hot code should cache the returned reference —
// returned references are stable for the registry's lifetime.
//
// Determinism: all metric values are unsigned 64-bit and every update is
// commutative (add for counters, max for gauges, per-bucket add for
// histograms). A fixed workload therefore produces bit-identical metric
// values for ANY interleaving of threads — the property that lets run
// reports be byte-identical across --threads settings. Metrics whose
// value depends on execution shape rather than the workload (pool sizes,
// checkpoint flush cadence) must be registered as Stability::kHost;
// reports exclude them by default. Iteration order is by name
// (lexicographic), never insertion or hash order.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <span>
#include <string>
#include <vector>

namespace dxbsp::obs {

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };
enum class Stability : std::uint8_t {
  kDeterministic,  ///< pure function of the workload; safe in reports
  kHost,           ///< varies with threads/host; excluded from reports
};

[[nodiscard]] const char* metric_kind_name(MetricKind k) noexcept;

/// Monotone event count.
class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Max-gauge: records the largest observed value. Max (not last-write)
/// because last-write-wins depends on thread interleaving and would
/// break report determinism.
class Gauge {
 public:
  void observe(std::uint64_t x) noexcept {
    std::uint64_t cur = v_.load(std::memory_order_relaxed);
    while (x > cur &&
           !v_.compare_exchange_weak(cur, x, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Fixed-bucket histogram: bucket i counts observations x with
/// x <= bounds[i] (first matching bucket); one implicit overflow bucket
/// catches the rest. Bounds are fixed at registration — re-registering
/// the same name with different bounds is an error.
class Histogram {
 public:
  explicit Histogram(std::vector<std::uint64_t> bounds);

  void observe(std::uint64_t x) noexcept;
  /// Per-bucket merge: adds another histogram's counts (same bounds;
  /// counts.size() must be bounds().size() + 1). The commutative merge
  /// path fleet coordinators use to fold per-shard snapshots together.
  void add_counts(std::span<const std::uint64_t> counts);
  [[nodiscard]] const std::vector<std::uint64_t>& bounds() const noexcept {
    return bounds_;
  }
  /// Bucket counts, bounds().size() + 1 entries (last = overflow).
  [[nodiscard]] std::vector<std::uint64_t> counts() const;
  [[nodiscard]] std::uint64_t total() const noexcept;
  void reset() noexcept;

 private:
  std::vector<std::uint64_t> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;
};

/// Power-of-4 bounds {1, 4, 16, ..., 4^15}: 16 buckets spanning the
/// cycle-count ranges the simulator produces. The shared default for
/// duration-shaped histograms.
[[nodiscard]] std::span<const std::uint64_t> pow4_bounds() noexcept;

class MetricsRegistry {
 public:
  // Out of line: Slot is incomplete here, so the implicit special
  // members cannot be instantiated by users of the header.
  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Looks up or creates the named metric. Throws Error{kConfig} if the
  /// name exists with a different kind (or different histogram bounds).
  Counter& counter(const std::string& name,
                   Stability s = Stability::kDeterministic);
  Gauge& gauge(const std::string& name,
               Stability s = Stability::kDeterministic);
  Histogram& histogram(const std::string& name,
                       std::span<const std::uint64_t> bounds,
                       Stability s = Stability::kDeterministic);

  /// One metric's value snapshot, for deterministic (sorted) iteration.
  struct Entry {
    std::string name;
    MetricKind kind = MetricKind::kCounter;
    Stability stability = Stability::kDeterministic;
    std::uint64_t value = 0;                  // counter/gauge
    std::vector<std::uint64_t> bounds;        // histogram
    std::vector<std::uint64_t> bucket_counts; // histogram (incl. overflow)
  };

  /// Snapshot sorted by name. Host-stability metrics are included only
  /// when `include_host` (run reports pass false).
  [[nodiscard]] std::vector<Entry> snapshot(bool include_host) const;

  /// Merges one snapshot entry into this registry with the metric's own
  /// commutative update: counter add, gauge max, histogram per-bucket
  /// add. Registers the metric (kind, stability, bounds) when absent;
  /// throws Error{kConfig} on a kind or bounds mismatch — exactly the
  /// existing re-registration rules. Folding every shard's snapshot()
  /// into a fresh registry therefore reproduces the values a single
  /// process running all shards would have published.
  void merge(const Entry& e);

  /// Full JSON / CSV dumps (used by --metrics=PATH; include host metrics
  /// so they see everything).
  void write_json(std::ostream& os, bool include_host) const;
  void write_csv(std::ostream& os, bool include_host) const;

  /// Zeroes every metric value (registrations stay). Test/bench setup.
  void reset();

  [[nodiscard]] std::size_t size() const;

  /// The process-wide registry the simulator layers publish into.
  static MetricsRegistry& global();

 private:
  struct Slot;
  Slot& slot(const std::string& name, MetricKind kind, Stability s,
             std::span<const std::uint64_t> bounds);

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Slot>> slots_;
};

}  // namespace dxbsp::obs
