#include "obs/report.hpp"

#include <algorithm>
#include <fstream>

#include "obs/json.hpp"
#include "resilience/error.hpp"

#ifndef DXBSP_GIT_DESCRIBE
#define DXBSP_GIT_DESCRIBE "unknown"
#endif

namespace dxbsp::obs {

const char* build_git_describe() noexcept { return DXBSP_GIT_DESCRIBE; }

namespace {

/// Per-track timeline row: superstep makespan + event accounting. Only
/// deterministic quantities (the trace itself is deterministic).
struct TimelineRow {
  std::uint64_t track = 0;
  std::uint64_t superstep_cycles = 0;
  std::uint64_t recorded = 0;
  std::uint64_t dropped = 0;
  std::uint64_t counts[kTraceKinds] = {};
};

std::vector<TimelineRow> timeline_rows(const Tracer& tracer) {
  std::vector<TimelineRow> rows;
  for (const std::uint64_t id : tracer.track_ids()) {
    const TraceRing* ring = tracer.find(id);
    if (ring == nullptr) continue;
    TimelineRow row;
    row.track = id;
    row.recorded = ring->recorded();
    row.dropped = ring->dropped();
    for (std::size_t k = 0; k < kTraceKinds; ++k)
      row.counts[k] = ring->count(static_cast<TraceKind>(k));
    for (const TraceEvent& ev : ring->drain())
      if (ev.kind == TraceKind::kSuperstep)
        row.superstep_cycles = std::max(row.superstep_cycles, ev.ts + ev.dur);
    rows.push_back(row);
  }
  return rows;
}

}  // namespace

void write_report_json(std::ostream& os, const RunInfo& info,
                       const MetricsRegistry& metrics, const Tracer* tracer,
                       const AttributionAggregate* attribution,
                       const DriftDetector* drift, const SelectorLog* selector,
                       const DegradedInfo* degraded,
                       const PostMortemInfo* post_mortem,
                       const MetricsRegistry* fleet) {
  JsonWriter w(os);
  w.begin_object();
  w.member("report_version", kReportVersion);
  w.member("generator", "dxbsp");
  w.member("git", build_git_describe());
  w.member("bench", info.bench);
  w.member("description", info.description);
  w.member("machine", info.machine);
  w.member("seed", info.seed);

  w.key("flags").begin_object();
  for (const auto& [name, value] : info.flags) w.member(name, value);
  w.end_object();

  // Host-dependent fleet sections come BEFORE the deterministic ones so
  // stripping them line-wise leaves the byte-identical remainder intact
  // (ci compares an observability-enabled fleet report to a serial one).
  if (fleet != nullptr) {
    w.key("fleet").begin_object();
    w.member("schema_version", kFleetSchemaVersion);
    for (const auto& e : fleet->snapshot(/*include_host=*/true))
      w.member(e.name, e.value);
    w.end_object();
  }

  if (post_mortem != nullptr && !post_mortem->empty()) {
    w.key("post_mortem").begin_object();
    w.member("schema_version", kPostMortemSchemaVersion);
    w.member("harvests",
             static_cast<std::uint64_t>(post_mortem->harvests.size()));
    w.key("deaths").begin_array();
    for (const PostMortemInfo::Harvest& h : post_mortem->harvests) {
      w.begin_object();
      w.member("shard", h.shard);
      w.member("attempt", h.attempt);
      w.member("why", h.why);
      w.member("last_phase", h.last_phase);
      w.member("last_point", h.last_point);
      w.member("records", h.records);
      w.member("torn", h.torn);
      w.key("events").begin_array();
      for (const PostMortemInfo::Event& ev : h.events) {
        w.begin_object();
        w.member("kind", ev.kind);
        w.member("name", ev.name);
        w.member("seq", ev.seq);
        w.member("t_us", ev.t_us);
        w.member("a", ev.a);
        w.member("b", ev.b);
        w.member("c", ev.c);
        w.member("d", ev.d);
        w.end_object();
      }
      w.end_array();
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }

  w.key("metrics").begin_object();
  for (const auto& e : metrics.snapshot(/*include_host=*/false)) {
    if (e.kind == MetricKind::kHistogram) {
      w.key(e.name).begin_object();
      w.member("total", e.value);
      w.key("bounds").begin_array();
      for (const std::uint64_t b : e.bounds) w.value(b);
      w.end_array();
      w.key("counts").begin_array();
      for (const std::uint64_t c : e.bucket_counts) w.value(c);
      w.end_array();
      w.end_object();
    } else {
      w.member(e.name, e.value);
    }
  }
  w.end_object();

  if (attribution != nullptr) {
    const AttributionAggregate::Snapshot a = attribution->snapshot();
    w.key("attribution").begin_object();
    w.member("schema_version", kAttributionSchemaVersion);
    w.member("supersteps", a.supersteps);
    w.member("cycles", a.cycles);
    w.key("terms").begin_object();
    for (std::size_t i = 0; i < kCostTerms; ++i)
      w.member(cost_term_name(i), cost_term_value(a.terms, i));
    w.end_object();
    w.member("max_location_contention", a.max_location_contention);
    w.key("bank_load").begin_object();
    w.member("banks", a.sketch.banks);
    w.member("served", a.sketch.served);
    w.member("max", a.sketch.max);
    w.member("p50", a.sketch.p50());
    w.member("p90", a.sketch.p90());
    w.member("p99", a.sketch.p99());
    w.member("overflow", a.sketch.overflow);
    w.key("counts").begin_array();
    for (const std::uint64_t c : a.sketch.counts) w.value(c);
    w.end_array();
    w.end_object();
    w.end_object();
  }

  if (drift != nullptr) {
    const DriftDetector::Snapshot d = drift->snapshot();
    w.key("drift").begin_object();
    w.member("schema_version", kDriftSchemaVersion);
    w.member("band", d.band);
    w.member("supersteps", d.supersteps);
    w.member("out_of_band", d.out_of_band);
    w.member("max_abs_rel_err", d.max_abs_rel_err);
    if (d.worst.valid) {
      w.key("worst").begin_object();
      w.member("track", d.worst.track);
      w.member("step", d.worst.step);
      w.member("measured_cycles", d.worst.measured);
      w.member("predicted_cycles", d.worst.predicted);
      w.member("rel_err", d.worst.rel_err);
      w.member("n", d.worst.n);
      w.member("h_proc", d.worst.h_proc);
      w.member("h_bank", d.worst.h_bank);
      w.member("location_contention", d.worst.location_contention);
      w.key("breakdown").begin_object();
      for (std::size_t i = 0; i < kCostTerms; ++i)
        w.member(cost_term_name(i), cost_term_value(d.worst.breakdown, i));
      w.end_object();
      w.member("bank_load_p50", d.worst.sketch_p50);
      w.member("bank_load_p99", d.worst.sketch_p99);
      w.member("bank_load_max", d.worst.sketch_max);
      w.member("mapping", d.worst.mapping);
      w.member("fault_plan_fingerprint", d.worst.plan_fingerprint);
      w.end_object();
    } else {
      w.key("worst").null_value();
    }
    w.end_object();
  }

  if (selector != nullptr) {
    const SelectorLog::Snapshot s = selector->snapshot();
    if (!s.rows.empty()) {
      w.key("selector").begin_object();
      w.member("schema_version", kSelectorSchemaVersion);
      w.member("supersteps", static_cast<std::uint64_t>(s.rows.size()));
      w.key("rows").begin_array();
      for (const SelectorRow& r : s.rows) {
        w.begin_object();
        w.member("track", r.track);
        w.member("step", r.step);
        w.member("choice", engine_choice_name(r.choice));
        w.member("n", r.n);
        w.member("h_proc", r.h_proc);
        w.member("window", r.window);
        w.member("h_bank_est", r.h_bank_est);
        w.member("fault_plan_fingerprint", r.plan_fingerprint);
        if (r.last_binding == kNoBindingTerm)
          w.key("last_binding").null_value();
        else
          w.member("last_binding",
                   cost_term_name(static_cast<std::size_t>(r.last_binding)));
        w.member("eligible_dense", r.eligible_dense);
        w.member("eligible_soa", r.eligible_soa);
        w.member("forced", r.forced);
        w.member("fallback", r.fallback);
        w.member("predicted_cycles", r.predicted);
        w.member("measured_cycles", r.measured);
        w.end_object();
      }
      w.end_array();
      w.end_object();
    }
  }

  if (degraded != nullptr) {
    w.key("degraded").begin_object();
    w.member("schema_version", kDegradedSchemaVersion);
    w.member("poisoned_shards", degraded->poisoned_shards);
    w.member("retries", degraded->retries);
    w.member("worker_deaths", degraded->worker_deaths);
    w.key("shards").begin_array();
    for (const DegradedInfo::Shard& s : degraded->shards) {
      w.begin_object();
      w.member("shard", s.shard);
      w.member("strikes", s.strikes);
      w.member("completed", s.completed);
      w.member("total", s.total);
      w.member("last_error", s.last_error);
      w.member("repro", s.repro);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }

  if (tracer != nullptr) {
    w.key("timeline").begin_array();
    for (const TimelineRow& row : timeline_rows(*tracer)) {
      w.begin_object();
      w.member("track", row.track);
      w.member("superstep_cycles", row.superstep_cycles);
      w.member("events_recorded", row.recorded);
      w.member("events_dropped", row.dropped);
      w.key("counts").begin_object();
      for (std::size_t k = 0; k < kTraceKinds; ++k)
        w.member(trace_kind_name(static_cast<TraceKind>(k)), row.counts[k]);
      w.end_object();
      w.end_object();
    }
    w.end_array();
  }
  w.end_object();
  os << '\n';
}

void write_report_csv(std::ostream& os, const RunInfo& info,
                      const MetricsRegistry& metrics, const Tracer* tracer,
                      const AttributionAggregate* attribution,
                      const DriftDetector* drift, const SelectorLog* selector,
                      const DegradedInfo* degraded,
                      const PostMortemInfo* post_mortem,
                      const MetricsRegistry* fleet) {
  os << "section,key,value\n";
  os << "run,report_version," << kReportVersion << '\n';
  os << "run,git," << csv_escape(build_git_describe()) << '\n';
  os << "run,bench," << csv_escape(info.bench) << '\n';
  os << "run,machine," << csv_escape(info.machine) << '\n';
  os << "run,seed," << info.seed << '\n';
  for (const auto& [name, value] : info.flags)
    os << "flag," << csv_escape(name) << ',' << csv_escape(value) << '\n';
  if (fleet != nullptr) {
    os << "fleet,schema_version," << kFleetSchemaVersion << '\n';
    for (const auto& e : fleet->snapshot(/*include_host=*/true))
      os << "fleet," << csv_escape(e.name) << ',' << e.value << '\n';
  }
  if (post_mortem != nullptr && !post_mortem->empty()) {
    os << "post_mortem,schema_version," << kPostMortemSchemaVersion << '\n';
    os << "post_mortem,harvests," << post_mortem->harvests.size() << '\n';
    for (const PostMortemInfo::Harvest& h : post_mortem->harvests) {
      const std::string key = "shard_" + h.shard;
      os << "post_mortem," << csv_escape(key + ".attempt") << ',' << h.attempt
         << '\n';
      os << "post_mortem," << csv_escape(key + ".why") << ','
         << csv_escape(h.why) << '\n';
      os << "post_mortem," << csv_escape(key + ".last_phase") << ','
         << csv_escape(h.last_phase) << '\n';
      os << "post_mortem," << csv_escape(key + ".last_point") << ','
         << h.last_point << '\n';
      os << "post_mortem," << csv_escape(key + ".records") << ',' << h.records
         << '\n';
      os << "post_mortem," << csv_escape(key + ".torn") << ',' << h.torn
         << '\n';
      os << "post_mortem," << csv_escape(key + ".events") << ','
         << h.events.size() << '\n';
    }
  }
  for (const auto& e : metrics.snapshot(/*include_host=*/false))
    os << "metric," << csv_escape(e.name) << ',' << e.value << '\n';
  if (attribution != nullptr) {
    const AttributionAggregate::Snapshot a = attribution->snapshot();
    os << "attribution,schema_version," << kAttributionSchemaVersion << '\n';
    os << "attribution,supersteps," << a.supersteps << '\n';
    os << "attribution,cycles," << a.cycles << '\n';
    for (std::size_t i = 0; i < kCostTerms; ++i)
      os << "attribution,terms." << cost_term_name(i) << ','
         << cost_term_value(a.terms, i) << '\n';
    os << "attribution,max_location_contention," << a.max_location_contention
       << '\n';
    os << "attribution,bank_load.banks," << a.sketch.banks << '\n';
    os << "attribution,bank_load.served," << a.sketch.served << '\n';
    os << "attribution,bank_load.max," << a.sketch.max << '\n';
    os << "attribution,bank_load.p50," << a.sketch.p50() << '\n';
    os << "attribution,bank_load.p90," << a.sketch.p90() << '\n';
    os << "attribution,bank_load.p99," << a.sketch.p99() << '\n';
    os << "attribution,bank_load.overflow," << a.sketch.overflow << '\n';
  }
  if (drift != nullptr) {
    const DriftDetector::Snapshot d = drift->snapshot();
    os << "drift,schema_version," << kDriftSchemaVersion << '\n';
    os << "drift,band," << json_number(d.band) << '\n';
    os << "drift,supersteps," << d.supersteps << '\n';
    os << "drift,out_of_band," << d.out_of_band << '\n';
    os << "drift,max_abs_rel_err," << json_number(d.max_abs_rel_err) << '\n';
    if (d.worst.valid) {
      os << "drift,worst.track," << d.worst.track << '\n';
      os << "drift,worst.step," << d.worst.step << '\n';
      os << "drift,worst.measured_cycles," << d.worst.measured << '\n';
      os << "drift,worst.predicted_cycles," << json_number(d.worst.predicted)
         << '\n';
      os << "drift,worst.rel_err," << json_number(d.worst.rel_err) << '\n';
      os << "drift,worst.mapping," << csv_escape(d.worst.mapping) << '\n';
      os << "drift,worst.fault_plan_fingerprint," << d.worst.plan_fingerprint
         << '\n';
    }
  }
  if (selector != nullptr) {
    const SelectorLog::Snapshot s = selector->snapshot();
    if (!s.rows.empty()) {
      os << "selector,schema_version," << kSelectorSchemaVersion << '\n';
      os << "selector,supersteps," << s.rows.size() << '\n';
      for (const SelectorRow& r : s.rows) {
        const std::string key =
            "row_" + std::to_string(r.track) + "_" + std::to_string(r.step);
        os << "selector," << key << ".choice," << engine_choice_name(r.choice)
           << '\n';
        os << "selector," << key << ".n," << r.n << '\n';
        os << "selector," << key << ".h_proc," << r.h_proc << '\n';
        os << "selector," << key << ".window," << r.window << '\n';
        os << "selector," << key << ".h_bank_est," << r.h_bank_est << '\n';
        os << "selector," << key << ".fault_plan_fingerprint,"
           << r.plan_fingerprint << '\n';
        os << "selector," << key << ".last_binding,"
           << (r.last_binding == kNoBindingTerm
                   ? "none"
                   : cost_term_name(static_cast<std::size_t>(r.last_binding)))
           << '\n';
        os << "selector," << key << ".eligible_dense,"
           << (r.eligible_dense ? "true" : "false") << '\n';
        os << "selector," << key << ".eligible_soa,"
           << (r.eligible_soa ? "true" : "false") << '\n';
        os << "selector," << key << ".forced," << (r.forced ? "true" : "false")
           << '\n';
        os << "selector," << key << ".fallback,"
           << (r.fallback ? "true" : "false") << '\n';
        os << "selector," << key << ".predicted_cycles," << r.predicted
           << '\n';
        os << "selector," << key << ".measured_cycles," << r.measured << '\n';
      }
    }
  }
  if (degraded != nullptr) {
    os << "degraded,schema_version," << kDegradedSchemaVersion << '\n';
    os << "degraded,poisoned_shards," << degraded->poisoned_shards << '\n';
    os << "degraded,retries," << degraded->retries << '\n';
    os << "degraded,worker_deaths," << degraded->worker_deaths << '\n';
    for (const DegradedInfo::Shard& s : degraded->shards) {
      os << "degraded,shard_" << csv_escape(s.shard) << ".strikes,"
         << s.strikes << '\n';
      os << "degraded,shard_" << csv_escape(s.shard) << ".completed,"
         << s.completed << '\n';
      os << "degraded,shard_" << csv_escape(s.shard) << ".total," << s.total
         << '\n';
      os << "degraded,shard_" << csv_escape(s.shard) << ".last_error,"
         << csv_escape(s.last_error) << '\n';
    }
  }
  if (tracer != nullptr) {
    for (const TimelineRow& row : timeline_rows(*tracer)) {
      os << "timeline,track_" << row.track << ".superstep_cycles,"
         << row.superstep_cycles << '\n';
      os << "timeline,track_" << row.track << ".events_recorded,"
         << row.recorded << '\n';
      os << "timeline,track_" << row.track << ".events_dropped,"
         << row.dropped << '\n';
    }
  }
}

void write_file(const std::string& path,
                const std::function<void(std::ostream&)>& fn) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) raise(ErrorCode::kIo, "cannot open '" + path + "' for writing");
  fn(os);
  os.flush();
  if (!os) raise(ErrorCode::kIo, "failed writing '" + path + "'");
}

}  // namespace dxbsp::obs
