#include "obs/report.hpp"

#include <algorithm>
#include <fstream>

#include "obs/json.hpp"
#include "resilience/error.hpp"

#ifndef DXBSP_GIT_DESCRIBE
#define DXBSP_GIT_DESCRIBE "unknown"
#endif

namespace dxbsp::obs {

const char* build_git_describe() noexcept { return DXBSP_GIT_DESCRIBE; }

namespace {

/// Per-track timeline row: superstep makespan + event accounting. Only
/// deterministic quantities (the trace itself is deterministic).
struct TimelineRow {
  std::uint64_t track = 0;
  std::uint64_t superstep_cycles = 0;
  std::uint64_t recorded = 0;
  std::uint64_t dropped = 0;
  std::uint64_t counts[kTraceKinds] = {};
};

std::vector<TimelineRow> timeline_rows(const Tracer& tracer) {
  std::vector<TimelineRow> rows;
  for (const std::uint64_t id : tracer.track_ids()) {
    const TraceRing* ring = tracer.find(id);
    if (ring == nullptr) continue;
    TimelineRow row;
    row.track = id;
    row.recorded = ring->recorded();
    row.dropped = ring->dropped();
    for (std::size_t k = 0; k < kTraceKinds; ++k)
      row.counts[k] = ring->count(static_cast<TraceKind>(k));
    for (const TraceEvent& ev : ring->drain())
      if (ev.kind == TraceKind::kSuperstep)
        row.superstep_cycles = std::max(row.superstep_cycles, ev.ts + ev.dur);
    rows.push_back(row);
  }
  return rows;
}

}  // namespace

void write_report_json(std::ostream& os, const RunInfo& info,
                       const MetricsRegistry& metrics, const Tracer* tracer) {
  JsonWriter w(os);
  w.begin_object();
  w.member("report_version", kReportVersion);
  w.member("generator", "dxbsp");
  w.member("git", build_git_describe());
  w.member("bench", info.bench);
  w.member("description", info.description);
  w.member("machine", info.machine);
  w.member("seed", info.seed);

  w.key("flags").begin_object();
  for (const auto& [name, value] : info.flags) w.member(name, value);
  w.end_object();

  w.key("metrics").begin_object();
  for (const auto& e : metrics.snapshot(/*include_host=*/false)) {
    if (e.kind == MetricKind::kHistogram) {
      w.key(e.name).begin_object();
      w.member("total", e.value);
      w.key("bounds").begin_array();
      for (const std::uint64_t b : e.bounds) w.value(b);
      w.end_array();
      w.key("counts").begin_array();
      for (const std::uint64_t c : e.bucket_counts) w.value(c);
      w.end_array();
      w.end_object();
    } else {
      w.member(e.name, e.value);
    }
  }
  w.end_object();

  if (tracer != nullptr) {
    w.key("timeline").begin_array();
    for (const TimelineRow& row : timeline_rows(*tracer)) {
      w.begin_object();
      w.member("track", row.track);
      w.member("superstep_cycles", row.superstep_cycles);
      w.member("events_recorded", row.recorded);
      w.member("events_dropped", row.dropped);
      w.key("counts").begin_object();
      for (std::size_t k = 0; k < kTraceKinds; ++k)
        w.member(trace_kind_name(static_cast<TraceKind>(k)), row.counts[k]);
      w.end_object();
      w.end_object();
    }
    w.end_array();
  }
  w.end_object();
  os << '\n';
}

void write_report_csv(std::ostream& os, const RunInfo& info,
                      const MetricsRegistry& metrics, const Tracer* tracer) {
  os << "section,key,value\n";
  os << "run,report_version," << kReportVersion << '\n';
  os << "run,git," << build_git_describe() << '\n';
  os << "run,bench," << info.bench << '\n';
  os << "run,machine," << info.machine << '\n';
  os << "run,seed," << info.seed << '\n';
  for (const auto& [name, value] : info.flags)
    os << "flag," << name << ',' << value << '\n';
  for (const auto& e : metrics.snapshot(/*include_host=*/false))
    os << "metric," << e.name << ',' << e.value << '\n';
  if (tracer != nullptr) {
    for (const TimelineRow& row : timeline_rows(*tracer)) {
      os << "timeline,track_" << row.track << ".superstep_cycles,"
         << row.superstep_cycles << '\n';
      os << "timeline,track_" << row.track << ".events_recorded,"
         << row.recorded << '\n';
      os << "timeline,track_" << row.track << ".events_dropped,"
         << row.dropped << '\n';
    }
  }
}

void write_file(const std::string& path,
                const std::function<void(std::ostream&)>& fn) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) raise(ErrorCode::kIo, "cannot open '" + path + "' for writing");
  fn(os);
  os.flush();
  if (!os) raise(ErrorCode::kIo, "failed writing '" + path + "'");
}

}  // namespace dxbsp::obs
