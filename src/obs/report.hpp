#pragma once
// Structured run reports: one versioned JSON (or CSV) document per bench
// invocation, carrying everything needed to interpret a BENCH_*.json
// trajectory after the fact — experiment id, machine/workload flags,
// seed, build id, every deterministic metric, and (when tracing) a
// per-track timeline summary. See docs/observability.md for the schema.
//
// Reports deliberately exclude anything host- or execution-dependent
// (wall-clock time, thread counts, checkpoint cadence, host metrics):
// a report produced with --threads=4 is byte-identical to one produced
// with --threads=1, and CI diffs them to prove it.

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "obs/attribution.hpp"
#include "obs/drift.hpp"
#include "obs/metrics.hpp"
#include "obs/selector.hpp"
#include "obs/trace.hpp"

namespace dxbsp::obs {

/// Version 2 added the "attribution" and "drift" sections (each carrying
/// its own schema_version so consumers can evolve per-section). The
/// "degraded" section (fleet-mode partial results) carries its own
/// schema version too and only appears when a sweep actually degraded,
/// so healthy merged reports stay byte-identical to serial ones.
/// Attribution/drift schema 2 added the cache_hit term to every
/// breakdown ("terms", "worst.breakdown") for the processor-cache tier.
/// Version 3 added the fleet-observability sections: "fleet" (coordinator
/// lifecycle counters, host-stability) and "post_mortem" (flight-recorder
/// tails harvested from dead worker attempts). Both appear only when the
/// coordinator runs with observability on, and never in serial reports,
/// so the deterministic sections keep their byte-identity contract.
inline constexpr std::uint64_t kReportVersion = 3;
inline constexpr std::uint64_t kAttributionSchemaVersion = 2;
inline constexpr std::uint64_t kDriftSchemaVersion = 2;
inline constexpr std::uint64_t kDegradedSchemaVersion = 1;
/// "selector" section: one row per superstep from the adaptive execution
/// layer (obs/selector.hpp). Carries its own schema version, like
/// "degraded", so adding it did not bump kReportVersion.
inline constexpr std::uint64_t kSelectorSchemaVersion = 1;
/// "post_mortem" section: flight-recorder tails (obs/flight.hpp) from
/// worker attempts that died or were revoked, harvested by the
/// coordinator before the shard is re-queued.
inline constexpr std::uint64_t kPostMortemSchemaVersion = 1;
/// "fleet" section: coordinator lifecycle counters rendered from a
/// host-stability MetricsRegistry (leases, retries, revocations, ...).
inline constexpr std::uint64_t kFleetSchemaVersion = 1;

/// Build identifier baked in at configure time ("unknown" outside git).
[[nodiscard]] const char* build_git_describe() noexcept;

/// Invocation identity, filled by bench::Obs from the CLI.
struct RunInfo {
  std::string bench;        ///< experiment id (the banner id)
  std::string description;  ///< banner description line
  std::string machine;      ///< machine preset ("" when per-point/custom)
  std::uint64_t seed = 0;
  /// Workload-shaping flags, sorted by name. Execution flags (--threads,
  /// --checkpoint, ...) must not appear here — see report determinism.
  std::vector<std::pair<std::string, std::string>> flags;
};

/// Partial-result accounting for a sharded sweep that could not complete
/// every shard (docs/resilience.md §fleet mode). Only passed to the
/// report writers when at least one shard was quarantined: retry and
/// death counts are host-dependent, so a healthy fleet run omits the
/// section entirely and its report stays byte-identical to a serial run.
struct DegradedInfo {
  std::uint64_t poisoned_shards = 0;
  std::uint64_t retries = 0;        ///< lease re-grants across all shards
  std::uint64_t worker_deaths = 0;  ///< abnormal worker terminations
  struct Shard {
    std::string shard;       ///< "index/count"
    std::uint64_t strikes = 0;
    std::uint64_t completed = 0;  ///< last observed progress
    std::uint64_t total = 0;      ///< points in the shard (0 = never seen)
    std::string last_error;  ///< last failure observed for the shard
    std::string repro;       ///< standalone command reproducing the range
  };
  std::vector<Shard> shards;  ///< the quarantined shards, by index
};

/// Flight-recorder tails harvested from dead or revoked worker attempts
/// (docs/observability.md §fleet). Everything here is host-dependent —
/// timestamps, record counts, which attempt died — so the section is
/// only written by observability-enabled fleet runs.
struct PostMortemInfo {
  struct Event {
    std::string kind;   ///< flight_kind_name: phase/trace/selector/note
    std::string name;   ///< flight_record_name: e.g. "point", "arrive"
    std::uint64_t seq = 0;
    std::uint64_t t_us = 0;  ///< µs since the worker's epoch
    std::uint64_t a = 0, b = 0, c = 0, d = 0;
  };
  struct Harvest {
    std::string shard;       ///< "index/count"
    std::uint64_t attempt = 0;
    std::string why;         ///< what killed the attempt (reap/stall text)
    std::string last_phase;  ///< last protocol phase entered (not chaos)
    std::uint64_t last_point = 0;  ///< points covered at the last point phase
    std::uint64_t records = 0;     ///< valid flight records in the ring
    std::uint64_t torn = 0;        ///< CRC-failed slots (death mid-append)
    std::vector<Event> events;     ///< tail of the ring, oldest first
  };
  std::vector<Harvest> harvests;  ///< in death order

  [[nodiscard]] bool empty() const noexcept { return harvests.empty(); }
};

/// Writes the versioned JSON report. `tracer`, `attribution`, `drift`,
/// `selector` and `degraded` may each be null (their sections are
/// omitted); an empty selector log also omits its section.
/// Host-stability metrics are always excluded from "metrics"; `fleet`
/// (when non-null) renders its OWN snapshot including host metrics into
/// the "fleet" section, and `post_mortem` (when non-null and non-empty)
/// adds the "post_mortem" section. Both land right after "flags" so the
/// deterministic sections that follow keep a stable shape either way.
void write_report_json(std::ostream& os, const RunInfo& info,
                       const MetricsRegistry& metrics, const Tracer* tracer,
                       const AttributionAggregate* attribution = nullptr,
                       const DriftDetector* drift = nullptr,
                       const SelectorLog* selector = nullptr,
                       const DegradedInfo* degraded = nullptr,
                       const PostMortemInfo* post_mortem = nullptr,
                       const MetricsRegistry* fleet = nullptr);

/// CSV twin: `section,key,value` rows with the same content and the same
/// determinism contract. Fields are RFC 4180-escaped (csv_escape), so
/// caller-chosen names with commas/quotes cannot shear a row.
void write_report_csv(std::ostream& os, const RunInfo& info,
                      const MetricsRegistry& metrics, const Tracer* tracer,
                      const AttributionAggregate* attribution = nullptr,
                      const DriftDetector* drift = nullptr,
                      const SelectorLog* selector = nullptr,
                      const DegradedInfo* degraded = nullptr,
                      const PostMortemInfo* post_mortem = nullptr,
                      const MetricsRegistry* fleet = nullptr);

/// Opens `path` for writing and runs `fn(stream)`; any failure is
/// Error{kIo} naming the path.
void write_file(const std::string& path,
                const std::function<void(std::ostream&)>& fn);

}  // namespace dxbsp::obs
