#include "obs/selector.hpp"

#include <algorithm>
#include <tuple>

namespace dxbsp::obs {

const char* engine_choice_name(EngineChoice c) noexcept {
  switch (c) {
    case EngineChoice::kReference: return "reference";
    case EngineChoice::kCalendar: return "calendar";
    case EngineChoice::kDense: return "dense";
    case EngineChoice::kHeap: return "heap";
    case EngineChoice::kSoA: return "soa";
  }
  return "?";
}

bool selector_row_less(const SelectorRow& a, const SelectorRow& b) noexcept {
  const auto key = [](const SelectorRow& r) {
    return std::make_tuple(r.track, r.step, r.n, r.h_proc, r.window,
                           r.h_bank_est, r.plan_fingerprint, r.predicted,
                           r.measured, r.last_binding, r.eligible_dense,
                           r.eligible_soa, r.forced, r.fallback,
                           static_cast<std::uint8_t>(r.choice));
  };
  return key(a) < key(b);
}

SelectorLog::Snapshot SelectorLog::snapshot() const {
  Snapshot s;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    s.rows = rows_;
  }
  std::sort(s.rows.begin(), s.rows.end(), selector_row_less);
  return s;
}

}  // namespace dxbsp::obs
