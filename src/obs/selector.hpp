#pragma once
// Engine-selection log: one row per superstep recording the features the
// adaptive execution layer (sim/engine_select.hpp) saw before dispatch,
// the strategy it chose, and the predicted vs measured makespan
// (docs/performance.md §selector).
//
// Rows are identified by (track, step) — the same identity drift samples
// use — and snapshot() orders them by a total comparator over the entire
// row, so the "selector" report section is byte-identical across thread
// counts and across serial vs fleet execution (rows merge as a multiset,
// never by arrival order). Everything recorded is a pure function of the
// workload: Stability::kDeterministic by construction.

#include <cstdint>
#include <mutex>
#include <vector>

namespace dxbsp::obs {

/// Execution strategy a bulk operation was dispatched to. The first two
/// mirror the pinnable sim::Machine::Engine values; the rest are the
/// kAuto-only specializations.
enum class EngineChoice : std::uint8_t {
  kReference,  ///< original priority_queue loop (oracle)
  kCalendar,   ///< calendar-queue scheduler, general path
  kDense,      ///< dense fast path (window cannot bind, no faults)
  kHeap,       ///< binary-heap scheduler over the batched-route state
  kSoA,        ///< structure-of-arrays batched bank-service kernel
};

inline constexpr std::size_t kEngineChoices = 5;
[[nodiscard]] const char* engine_choice_name(EngineChoice c) noexcept;

/// Sentinel for "no previous superstep": the binding-term feature is the
/// cost-term index (obs::cost_term_name) that dominated the last
/// breakdown on this machine.
inline constexpr std::uint8_t kNoBindingTerm = 0xFF;

/// One superstep's selection record.
struct SelectorRow {
  std::uint64_t track = 0;  ///< sweep-point id (bench::Obs::attach)
  std::uint64_t step = 0;   ///< superstep sequence within the track
  std::uint64_t n = 0;      ///< requests in the bulk op
  std::uint64_t h_proc = 0;           ///< ceil(n/p): max per-proc requests
  std::uint64_t window = 0;           ///< min(slackness, h_proc)
  std::uint64_t h_bank_est = 0;       ///< pre-dispatch bank-load estimate
  std::uint64_t plan_fingerprint = 0; ///< fault plan id (0 = healthy)
  std::uint64_t predicted = 0;        ///< model cycles (engine_select)
  std::uint64_t measured = 0;         ///< measured makespan cycles
  std::uint8_t last_binding = kNoBindingTerm;  ///< prior binding term
  bool eligible_dense = false;
  bool eligible_soa = false;
  bool forced = false;    ///< engine pinned (--engine) or test-forced
  bool fallback = false;  ///< raw choice was ineligible; demoted safely
  EngineChoice choice = EngineChoice::kCalendar;  ///< what actually ran

  friend bool operator==(const SelectorRow&, const SelectorRow&) = default;
};

/// Total order over entire rows (not just the (track, step) key), so a
/// multiset of rows sorts identically regardless of insertion order —
/// the property that keeps reports byte-identical across --threads.
[[nodiscard]] bool selector_row_less(const SelectorRow& a,
                                     const SelectorRow& b) noexcept;

/// Run-level collection of selection rows, mirroring
/// AttributionAggregate: record() from any sweep thread, snapshot() for
/// the report writers, merge() for fleet coordinators folding per-shard
/// snapshots (rows concatenate; ordering is re-established at snapshot).
class SelectorLog {
 public:
  struct Snapshot {
    std::vector<SelectorRow> rows;  ///< sorted by selector_row_less
  };

  void record(const SelectorRow& row) {
    const std::lock_guard<std::mutex> lock(mu_);
    rows_.push_back(row);
  }

  [[nodiscard]] Snapshot snapshot() const;

  void merge(const Snapshot& o) {
    const std::lock_guard<std::mutex> lock(mu_);
    rows_.insert(rows_.end(), o.rows.begin(), o.rows.end());
  }

 private:
  mutable std::mutex mu_;
  std::vector<SelectorRow> rows_;
};

}  // namespace dxbsp::obs
