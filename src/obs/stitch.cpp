#include "obs/stitch.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <vector>

#include "obs/flight.hpp"
#include "obs/json.hpp"
#include "obs/json_read.hpp"

namespace dxbsp::obs {

namespace {

/// One merged event, args pre-rendered to raw JSON text so arbitrary
/// input args round-trip without a generic document writer.
struct OutEvent {
  std::uint64_t ts = 0;
  std::uint64_t dur = 0;
  std::uint64_t tid = 0;
  std::uint64_t pid = 0;
  bool has_dur = false;
  std::string name;
  std::string ph;
  std::string scope;      // "s" member for instants ("" = omit)
  std::string args_json;  // rendered args object ("" = omit)
};

std::string slurp(const std::string& path, bool& ok) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    ok = false;
    return {};
  }
  std::ostringstream buf;
  buf << is.rdbuf();
  ok = true;
  return std::move(buf).str();
}

std::string dir_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

std::string resolve(const std::string& base_dir, const std::string& path) {
  if (path.empty() || path.front() == '/' || base_dir.empty()) return path;
  return base_dir + "/" + path;
}

/// Re-renders a parsed JSON value as compact JSON text (args passthrough).
void render_json(const JsonValue& v, std::ostream& os) {
  switch (v.kind()) {
    case JsonValue::Kind::kNull: os << "null"; return;
    case JsonValue::Kind::kBool: os << (v.as_bool() ? "true" : "false");
      return;
    case JsonValue::Kind::kNumber: os << v.raw_number(); return;
    case JsonValue::Kind::kString:
      os << '"' << json_escape(v.as_string()) << '"';
      return;
    case JsonValue::Kind::kArray: {
      os << '[';
      bool first = true;
      for (const JsonValue& item : v.items()) {
        if (!first) os << ',';
        first = false;
        render_json(item, os);
      }
      os << ']';
      return;
    }
    case JsonValue::Kind::kObject: {
      os << '{';
      bool first = true;
      for (const auto& [k, m] : v.members()) {
        if (!first) os << ',';
        first = false;
        os << '"' << json_escape(k) << "\":";
        render_json(m, os);
      }
      os << '}';
      return;
    }
  }
}

std::uint64_t num_or(const JsonValue* v, std::uint64_t fallback) {
  return (v != nullptr && v->is_number()) ? v->as_u64() : fallback;
}

}  // namespace

StitchSummary stitch_traces(const std::string& manifest_path,
                            std::ostream& os) {
  bool ok = false;
  const std::string text = slurp(manifest_path, ok);
  if (!ok)
    raise(ErrorCode::kIo, manifest_path + ": cannot open stitch manifest");
  auto parsed = JsonValue::parse(text, manifest_path);
  if (!parsed.ok())
    raise(ErrorCode::kCorruptInput, parsed.error().what());
  const JsonValue doc = std::move(parsed).value();
  if (!doc.is_object())
    raise(ErrorCode::kCorruptInput, manifest_path + ": not a JSON object");
  if (num_or(doc.find("stitch_version"), 0) != kStitchVersion)
    raise(ErrorCode::kCorruptInput,
          manifest_path + ": unsupported stitch_version");
  const JsonValue* procs = doc.find("processes");
  if (procs == nullptr || !procs->is_array())
    raise(ErrorCode::kCorruptInput,
          manifest_path + ": missing \"processes\" array");

  const std::string base_dir = dir_of(manifest_path);
  StitchSummary summary;
  std::vector<std::string> labels;
  std::vector<OutEvent> events;

  for (const JsonValue& entry : procs->items()) {
    if (!entry.is_object())
      raise(ErrorCode::kCorruptInput,
            manifest_path + ": process entry is not an object");
    const std::uint64_t pid = labels.size();
    const JsonValue* label = entry.find("label");
    labels.push_back(label != nullptr && label->is_string()
                         ? label->as_string()
                         : "process " + std::to_string(pid));
    const std::uint64_t offset = num_or(entry.find("offset_us"), 0);

    const JsonValue* trace = entry.find("trace");
    bool have_trace = false;
    if (trace != nullptr && trace->is_string() &&
        !trace->as_string().empty()) {
      const std::string path = resolve(base_dir, trace->as_string());
      bool readable = false;
      const std::string body = slurp(path, readable);
      if (readable) {
        auto tdoc = JsonValue::parse(body, path);
        const JsonValue* tevents =
            tdoc.ok() ? tdoc.value().find("traceEvents") : nullptr;
        if (tevents != nullptr && tevents->is_array()) {
          have_trace = true;
          for (const JsonValue& ev : tevents->items()) {
            if (!ev.is_object()) continue;
            const JsonValue* ph = ev.find("ph");
            const std::string phase =
                ph != nullptr && ph->is_string() ? ph->as_string() : "X";
            if (phase == "M") continue;  // we emit our own metadata
            OutEvent out;
            out.pid = pid;
            out.ph = phase;
            const JsonValue* name = ev.find("name");
            out.name = name != nullptr && name->is_string()
                           ? name->as_string()
                           : "";
            out.ts = num_or(ev.find("ts"), 0) + offset;
            out.tid = num_or(ev.find("tid"), 0);
            if (const JsonValue* dur = ev.find("dur");
                dur != nullptr && dur->is_number()) {
              out.has_dur = true;
              out.dur = dur->as_u64();
            }
            if (const JsonValue* s = ev.find("s");
                s != nullptr && s->is_string())
              out.scope = s->as_string();
            if (const JsonValue* args = ev.find("args")) {
              std::ostringstream rendered;
              render_json(*args, rendered);
              out.args_json = std::move(rendered).str();
            }
            events.push_back(std::move(out));
            ++summary.events;
          }
        }
      }
    }

    if (!have_trace) {
      ++summary.skipped_traces;
      // Dead attempt: no trace was ever written, but the crash-safe
      // flight ring may still tell the story — render it as instants.
      const JsonValue* flight = entry.find("flight");
      if (flight != nullptr && flight->is_string() &&
          !flight->as_string().empty()) {
        auto tail = flight_read(resolve(base_dir, flight->as_string()));
        if (tail.ok()) {
          for (const FlightRecord& r : tail.value().records) {
            OutEvent out;
            out.pid = pid;
            out.ph = "i";
            out.scope = "t";
            out.name = std::string(flight_kind_name(r.kind)) + " " +
                       flight_record_name(r);
            out.ts = r.t_us + offset;
            out.tid = 0;
            std::ostringstream args;
            args << "{\"seq\":" << r.seq << ",\"detail\":\""
                 << json_escape(flight_describe(r)) << "\"}";
            out.args_json = std::move(args).str();
            events.push_back(std::move(out));
            ++summary.events;
            ++summary.flight_events;
          }
        }
      }
    }
  }
  summary.processes = labels.size();

  std::stable_sort(events.begin(), events.end(),
                   [](const OutEvent& x, const OutEvent& y) {
                     if (x.ts != y.ts) return x.ts < y.ts;
                     if (x.pid != y.pid) return x.pid < y.pid;
                     return x.tid < y.tid;
                   });

  os << "{\n\"traceEvents\": [\n";
  bool first = true;
  for (std::size_t pid = 0; pid < labels.size(); ++pid) {
    if (!first) os << ",\n";
    first = false;
    os << R"({"ph":"M","name":"process_name","pid":)" << pid
       << R"(,"tid":0,"args":{"name":")" << json_escape(labels[pid])
       << "\"}},\n";
    os << R"({"ph":"M","name":"process_sort_index","pid":)" << pid
       << R"(,"tid":0,"args":{"sort_index":)" << pid << "}}";
  }
  for (const OutEvent& ev : events) {
    if (!first) os << ",\n";
    first = false;
    os << "{\"name\":\"" << json_escape(ev.name) << "\",\"ph\":\""
       << json_escape(ev.ph) << "\",\"pid\":" << ev.pid
       << ",\"tid\":" << ev.tid << ",\"ts\":" << ev.ts;
    if (ev.has_dur) os << ",\"dur\":" << ev.dur;
    if (!ev.scope.empty()) os << ",\"s\":\"" << json_escape(ev.scope) << '"';
    if (!ev.args_json.empty()) os << ",\"args\":" << ev.args_json;
    os << '}';
  }
  os << "\n],\n\"displayTimeUnit\": \"ms\",\n\"otherData\": "
        "{\"generator\": \"dxbsp trace_stitch\", \"time_unit\": \"us\", "
        "\"processes\": "
     << summary.processes << ", \"events\": " << summary.events << "}\n}\n";
  return summary;
}

}  // namespace dxbsp::obs
