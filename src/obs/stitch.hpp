#pragma once
// Cross-process trace stitching (docs/observability.md §fleet): merges
// the coordinator's orchestration trace and every worker attempt's
// host-time trace (obs/event_log.hpp) into ONE Chrome trace_event
// timeline, mapped onto the coordinator's monotonic clock.
//
// The coordinator writes a `stitch.json` manifest naming each process's
// trace file and its clock offset in µs. Worker offsets are estimated
// from heartbeat messages: each heartbeat carries the worker's
// monotonic timestamp (`mono_us`, µs since its own epoch), and the
// coordinator keeps the MINIMUM of (receive time − mono_us) over every
// new beat. That minimum is an upper bound estimate of message latency
// away from — and never below — the true epoch offset, and since a
// worker's epoch necessarily postdates its lease grant, a stitched
// worker event can never precede the grant that spawned it. Attempts
// that died before their first heartbeat fall back to the grant
// timestamp itself, which preserves the same ordering invariant.
//
// Manifest schema (plain JSON, hand-writable for tests):
//
//   { "stitch_version": 1,
//     "processes": [
//       { "label": "coordinator", "trace": "coordinator.trace.json",
//         "offset_us": 0 },
//       { "label": "shard 1/4 attempt 0", "trace": "...",
//         "offset_us": 15321, "flight": "shard-1.flight" }, ... ] }
//
// Each entry becomes one output process (pid = entry index) with a
// process_name metadata event. `trace` may be missing on disk (the
// worker was SIGKILLed before writing it): the entry is then rendered
// from its `flight` ring instead — the dead attempt still appears on
// the stitched timeline as instants decoded from its flight recorder.

#include <cstdint>
#include <ostream>
#include <string>

#include "resilience/error.hpp"

namespace dxbsp::obs {

inline constexpr std::uint64_t kStitchVersion = 1;

struct StitchSummary {
  std::uint64_t processes = 0;      ///< manifest entries emitted
  std::uint64_t events = 0;         ///< merged trace events (metadata aside)
  std::uint64_t skipped_traces = 0; ///< entries whose trace file was absent
  std::uint64_t flight_events = 0;  ///< instants synthesized from flight rings
};

/// Reads `manifest_path`, merges every process's events shifted by its
/// offset, sorts by mapped timestamp and writes one Chrome trace JSON to
/// `os`. Relative paths resolve against the manifest's directory.
/// Throws Error{kIo} for a missing manifest and Error{kCorruptInput} for
/// a malformed one; a missing per-process trace is skipped, not fatal.
StitchSummary stitch_traces(const std::string& manifest_path,
                            std::ostream& os);

}  // namespace dxbsp::obs
