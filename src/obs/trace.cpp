#include "obs/trace.hpp"

#include "obs/json.hpp"
#include "resilience/error.hpp"

namespace dxbsp::obs {

const char* trace_kind_name(TraceKind k) noexcept {
  switch (k) {
    case TraceKind::kSuperstep:
      return "superstep";
    case TraceKind::kBankBusy:
      return "bank_busy";
    case TraceKind::kQueueDepth:
      return "queue_depth";
    case TraceKind::kStall:
      return "stall";
    case TraceKind::kNack:
      return "nack";
    case TraceKind::kRetry:
      return "retry";
    case TraceKind::kFailover:
      return "failover";
    case TraceKind::kSpill:
      return "spill";
    case TraceKind::kBackPressure:
      return "back_pressure";
    case TraceKind::kCacheHit:
      return "cache_hit";
    case TraceKind::kWriteback:
      return "writeback";
  }
  return "?";
}

TraceRing::TraceRing(std::size_t capacity) : capacity_(capacity) {
  if (capacity_ == 0)
    raise(ErrorCode::kConfig, "TraceRing: capacity must be positive");
  events_.reserve(capacity_);
}

std::vector<TraceEvent> TraceRing::drain() const {
  std::vector<TraceEvent> out;
  out.reserve(events_.size());
  for (std::size_t i = 0; i < events_.size(); ++i)
    out.push_back(events_[(head_ + i) % events_.size()]);
  return out;
}

std::uint64_t TraceRing::recorded() const noexcept {
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts_) total += c;
  return total;
}

Tracer::Tracer(std::size_t ring_capacity) : capacity_(ring_capacity) {
  if (capacity_ == 0)
    raise(ErrorCode::kConfig, "Tracer: ring capacity must be positive");
}

TraceRing& Tracer::track(std::uint64_t track_id) {
  std::lock_guard lock(mu_);
  auto it = tracks_.find(track_id);
  if (it == tracks_.end())
    it = tracks_.emplace(track_id, std::make_unique<TraceRing>(capacity_))
             .first;
  return *it->second;
}

std::vector<std::uint64_t> Tracer::track_ids() const {
  std::lock_guard lock(mu_);
  std::vector<std::uint64_t> out;
  out.reserve(tracks_.size());
  for (const auto& [id, ring] : tracks_) out.push_back(id);
  return out;
}

const TraceRing* Tracer::find(std::uint64_t track_id) const {
  std::lock_guard lock(mu_);
  const auto it = tracks_.find(track_id);
  return it == tracks_.end() ? nullptr : it->second.get();
}

std::uint64_t Tracer::total_recorded() const {
  std::lock_guard lock(mu_);
  std::uint64_t total = 0;
  for (const auto& [id, ring] : tracks_) total += ring->recorded();
  return total;
}

std::uint64_t Tracer::total_dropped() const {
  std::lock_guard lock(mu_);
  std::uint64_t total = 0;
  for (const auto& [id, ring] : tracks_) total += ring->dropped();
  return total;
}

std::uint64_t Tracer::total_count(TraceKind k) const {
  std::lock_guard lock(mu_);
  std::uint64_t total = 0;
  for (const auto& [id, ring] : tracks_) total += ring->count(k);
  return total;
}

namespace {

// tid lanes within a track: superstep + fault instants on 0, processor
// spans on 1 + proc, bank spans/counters on 10000 + bank.
constexpr std::uint64_t kBankLaneBase = 10000;

void write_event(JsonWriter& w, std::uint64_t pid, const TraceEvent& ev) {
  w.begin_object();
  w.member("name", trace_kind_name(ev.kind));
  w.member("cat", "sim");
  w.member("pid", pid);
  w.member("ts", ev.ts);
  switch (ev.kind) {
    case TraceKind::kSuperstep:
      w.member("ph", "X");
      w.member("tid", std::uint64_t{0});
      w.member("dur", ev.dur);
      w.key("args").begin_object();
      w.member("requests", ev.a);
      w.end_object();
      break;
    case TraceKind::kBankBusy:
      w.member("ph", "X");
      w.member("tid", kBankLaneBase + ev.a);
      w.member("dur", ev.dur);
      w.key("args").begin_object();
      w.member("bank", ev.a);
      w.end_object();
      break;
    case TraceKind::kQueueDepth:
      w.member("ph", "C");
      w.member("tid", kBankLaneBase + ev.a);
      w.key("args").begin_object();
      w.member("backlog_cycles", ev.b);
      w.end_object();
      break;
    case TraceKind::kStall:
      w.member("ph", "X");
      w.member("tid", 1 + ev.a);
      w.member("dur", ev.dur);
      w.key("args").begin_object();
      w.member("proc", ev.a);
      w.end_object();
      break;
    case TraceKind::kNack:
    case TraceKind::kRetry:
      w.member("ph", "i");
      w.member("tid", std::uint64_t{0});
      w.member("s", "p");
      w.key("args").begin_object();
      w.member("element", ev.a);
      w.member("attempt", ev.b);
      w.end_object();
      break;
    case TraceKind::kFailover:
      w.member("ph", "i");
      w.member("tid", std::uint64_t{0});
      w.member("s", "p");
      w.key("args").begin_object();
      w.member("bank", ev.a);
      w.member("spare", ev.b);
      w.end_object();
      break;
    case TraceKind::kSpill:
    case TraceKind::kBackPressure:
      // Streaming-executor spans: the "clock" is the slab sequence
      // number, one lane for the whole spill tier.
      w.member("ph", "X");
      w.member("tid", kBankLaneBase * 2);
      w.member("dur", ev.dur);
      w.key("args").begin_object();
      w.member("partition", ev.a);
      w.member("bytes", ev.b);
      w.end_object();
      break;
    case TraceKind::kCacheHit:
      // Local service in the cache tier, on the processor's lane.
      w.member("ph", "X");
      w.member("tid", 1 + ev.b);
      w.member("dur", ev.dur);
      w.key("args").begin_object();
      w.member("element", ev.a);
      w.end_object();
      break;
    case TraceKind::kWriteback:
      w.member("ph", "i");
      w.member("tid", kBankLaneBase + ev.b);
      w.member("s", "p");
      w.key("args").begin_object();
      w.member("line", ev.a);
      w.member("bank", ev.b);
      w.end_object();
      break;
  }
  w.end_object();
}

}  // namespace

void Tracer::write_chrome_json(std::ostream& os) const {
  std::lock_guard lock(mu_);
  JsonWriter w(os);
  w.begin_object();
  w.key("traceEvents").begin_array();
  for (const auto& [id, ring] : tracks_) {  // std::map: ascending track id
    for (const TraceEvent& ev : ring->drain()) write_event(w, id, ev);
  }
  w.end_array();
  w.member("displayTimeUnit", "ms");
  w.key("otherData").begin_object();
  w.member("generator", "dxbsp");
  w.member("time_unit", "simulated cycles (as trace microseconds)");
  {
    std::uint64_t recorded = 0;
    std::uint64_t dropped = 0;
    for (const auto& [id, ring] : tracks_) {
      recorded += ring->recorded();
      dropped += ring->dropped();
    }
    w.member("events_recorded", recorded);
    w.member("events_dropped", dropped);
  }
  w.end_object();
  w.end_object();
  os << '\n';
}

}  // namespace dxbsp::obs
