#pragma once
// Cycle-level event tracer for the simulator (docs/observability.md).
//
// A Tracer owns one TraceRing per *track*; a track corresponds to one
// simulated bulk operation / sweep point and is written by exactly one
// thread at a time (SweepRunner gives each point its own track), so the
// hot recording path is lock-free and allocation-free: a bounded ring
// that overwrites its oldest events when full and counts the drops.
// Buffers are drained post-run into Chrome trace_event JSON, loadable in
// Perfetto / chrome://tracing (one "process" lane per track; simulated
// cycles stand in for microseconds).
//
// Determinism: recording within a track follows the (deterministic)
// simulation; the writer emits tracks in ascending id order. The JSON is
// therefore byte-identical no matter how sweep points were interleaved
// across threads.
//
// Zero-cost when off: compile with -DDXBSP_OBS_TRACE=0 and every record
// site (guarded by `if constexpr (kTraceCompiledIn)`) compiles away.
// With tracing compiled in but not requested, the only cost is one
// null-pointer test per would-be event.

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <vector>

#ifndef DXBSP_OBS_TRACE
#define DXBSP_OBS_TRACE 1
#endif

namespace dxbsp::obs {

inline constexpr bool kTraceCompiledIn = DXBSP_OBS_TRACE != 0;

enum class TraceKind : std::uint8_t {
  kSuperstep,   ///< span [0, makespan] of one bulk op; a = requests
  kBankBusy,    ///< span: one bank service occupancy; a = bank
  kQueueDepth,  ///< counter sample: a = bank, b = backlog cycles at arrival
  kStall,       ///< span: processor issue window full; a = processor
  kNack,        ///< instant: attempt rejected; a = element, b = attempt
  kRetry,       ///< instant: re-issue scheduled; a = element, b = attempt
  kFailover,    ///< instant: redirected off a dead bank; a = bank, b = spare
  kSpill,       ///< span: one spill-chunk write (ts/dur in slab sequence
                ///< numbers, the streaming executor's clock); a = partition,
                ///< b = bytes
  kBackPressure,///< span: producer stalled over-budget while partitions
                ///< evicted (slab-sequence clock); a = victim partition,
                ///< b = bytes freed
  kCacheHit,    ///< span: request served in the processor's cache tier
                ///< (docs/cache.md); a = element, b = processor
  kWriteback,   ///< instant: fire-and-forget line write to a bank (dirty
                ///< eviction or write-through forward); a = line, b = bank
};
inline constexpr std::size_t kTraceKinds = 11;

[[nodiscard]] const char* trace_kind_name(TraceKind k) noexcept;

struct TraceEvent {
  std::uint64_t ts = 0;   ///< simulated cycle
  std::uint64_t dur = 0;  ///< span length (0 for instants/samples)
  std::uint64_t a = 0;    ///< kind-specific (see TraceKind)
  std::uint64_t b = 0;
  TraceKind kind = TraceKind::kSuperstep;
};

/// Bounded single-writer event buffer. Per-kind totals are counted
/// outside the ring, so aggregate counts survive even when old events
/// are overwritten — the reconciliation tests rely on that.
class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity);

  void record(const TraceEvent& ev) noexcept {
    ++counts_[static_cast<std::size_t>(ev.kind)];
    if (events_.size() < capacity_) {
      events_.push_back(ev);
    } else {
      events_[head_] = ev;
      head_ = (head_ + 1) % capacity_;
      ++dropped_;
    }
  }

  /// Retained events, oldest first.
  [[nodiscard]] std::vector<TraceEvent> drain() const;

  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }
  [[nodiscard]] std::uint64_t recorded() const noexcept;
  /// Total recorded events of `k` (including ones later overwritten).
  [[nodiscard]] std::uint64_t count(TraceKind k) const noexcept {
    return counts_[static_cast<std::size_t>(k)];
  }

 private:
  std::size_t capacity_;
  std::size_t head_ = 0;  // oldest event once the ring wrapped
  std::uint64_t dropped_ = 0;
  std::uint64_t counts_[kTraceKinds] = {};
  std::vector<TraceEvent> events_;
};

class Tracer {
 public:
  /// `ring_capacity` bounds the retained events per track.
  explicit Tracer(std::size_t ring_capacity = std::size_t{1} << 16);

  /// Looks up or creates the ring for `track_id`. Creation takes a
  /// mutex; the returned reference is stable for the Tracer's lifetime
  /// and must be written by one thread at a time.
  TraceRing& track(std::uint64_t track_id);

  [[nodiscard]] std::vector<std::uint64_t> track_ids() const;
  [[nodiscard]] const TraceRing* find(std::uint64_t track_id) const;

  [[nodiscard]] std::uint64_t total_recorded() const;
  [[nodiscard]] std::uint64_t total_dropped() const;
  /// Sum of count(k) over all tracks.
  [[nodiscard]] std::uint64_t total_count(TraceKind k) const;

  /// Chrome trace_event JSON (object form, "traceEvents" array): "X"
  /// complete events for spans, "C" counters for queue depth, "i"
  /// instants for fault events. pid = track id; tid lanes separate the
  /// superstep (0), processors (1 + proc) and banks (10000 + bank).
  void write_chrome_json(std::ostream& os) const;

 private:
  mutable std::mutex mu_;
  std::size_t capacity_;
  std::map<std::uint64_t, std::unique_ptr<TraceRing>> tracks_;
};

}  // namespace dxbsp::obs
