#include "qrqw/emulation.hpp"

#include "resilience/error.hpp"
#include <vector>

#include "qrqw/theory.hpp"
#include "util/rng.hpp"

namespace dxbsp::qrqw {

namespace {
std::shared_ptr<const mem::BankMapping> hashed_mapping(
    const sim::MachineConfig& cfg, std::uint64_t seed) {
  util::Xoshiro256 rng(util::substream(seed, 60));
  return std::make_shared<mem::HashedMapping>(cfg.banks(),
                                              mem::HashDegree::kCubic, rng);
}
}  // namespace

EmulationEngine::EmulationEngine(sim::MachineConfig config, std::uint64_t seed)
    : machine_(config, hashed_mapping(config, seed)),
      params_(core::DxBspParams::from_config(config)) {}

EmulationResult EmulationEngine::emulate_step(const QrqwStep& step) {
  EmulationResult r;
  r.qrqw_cost = step.cost();
  r.ops = step.ops();
  r.bound = step_time_bound(step.ops(), step.max_contention(), params_);
  if (step.ops() == 0) return r;

  // One superstep: reads and writes form a single bulk request trace
  // balanced across the physical processors (the machine's block
  // distribution of the concatenated trace).
  std::vector<std::uint64_t> trace;
  trace.reserve(step.ops());
  trace.insert(trace.end(), step.reads.begin(), step.reads.end());
  trace.insert(trace.end(), step.writes.begin(), step.writes.end());
  const sim::BulkResult res = machine_.scatter(trace);
  // Barrier synchronization at superstep end: one more latency term.
  r.sim_cycles = res.cycles + params_.L;
  return r;
}

EmulationResult EmulationEngine::emulate_program(const QrqwProgram& program) {
  EmulationResult total;
  for (const auto& step : program.steps()) {
    const EmulationResult r = emulate_step(step);
    total.qrqw_cost += r.qrqw_cost;
    total.sim_cycles += r.sim_cycles;
    total.bound += r.bound;
    total.ops += r.ops;
  }
  return total;
}

EmulationResult EmulationEngine::emulate_erew_step(const QrqwStep& step) {
  if (step.max_contention() > 1)
    raise(ErrorCode::kConfig,
        "emulate_erew_step: step has contention > 1; the EREW PRAM forbids "
        "concurrent access");
  return emulate_step(step);
}

}  // namespace dxbsp::qrqw
