#pragma once
// Emulation of QRQW (and EREW) PRAM programs on the (d,x)-BSP machine.
//
// The emulation follows §5 of the paper (generalizing the BSP emulation
// of [GMR94b]): shared PRAM memory is spread over the banks by a random
// (universal) hash; each QRQW step's operations are balanced over the p
// physical processors and executed as one bulk superstep. The step then
// costs max(g·n/p, d·h_bank) + sync on the machine, where h_bank
// reflects both the step's location contention and the module-map
// contention of the hash. The measured slowdown against the QRQW charge
// is what Theorems 5.1/5.2 bound.

#include <cstdint>
#include <memory>

#include "core/params.hpp"
#include "mem/bank_mapping.hpp"
#include "qrqw/program.hpp"
#include "sim/machine.hpp"

namespace dxbsp::qrqw {

/// Result of emulating one step (or a whole program).
struct EmulationResult {
  std::uint64_t qrqw_cost = 0;   ///< model charge on the QRQW PRAM
  std::uint64_t sim_cycles = 0;  ///< measured (d,x)-BSP machine cycles
  double bound = 0.0;            ///< theory upper bound (step_time_bound)
  std::uint64_t ops = 0;

  /// Emulation slowdown per QRQW time unit.
  [[nodiscard]] double slowdown() const noexcept {
    return qrqw_cost == 0
               ? 0.0
               : static_cast<double>(sim_cycles) /
                     static_cast<double>(qrqw_cost);
  }
  /// Work overhead: machine processor-cycles per QRQW work unit.
  [[nodiscard]] double work_overhead(std::uint64_t p,
                                     std::uint64_t vprocs) const noexcept {
    const double w = static_cast<double>(qrqw_cost) *
                     static_cast<double>(vprocs);
    return w == 0.0 ? 0.0
                    : static_cast<double>(sim_cycles) *
                          static_cast<double>(p) / w;
  }
};

/// Emulates QRQW programs on a simulated (d,x)-BSP machine with hashed
/// shared memory.
class EmulationEngine {
 public:
  /// Hashes PRAM memory across the banks with a fresh cubic universal
  /// hash drawn from `seed`.
  EmulationEngine(sim::MachineConfig config, std::uint64_t seed);

  /// Emulates one QRQW step as a single superstep.
  [[nodiscard]] EmulationResult emulate_step(const QrqwStep& step);

  /// Emulates a whole program (sums per-step results).
  [[nodiscard]] EmulationResult emulate_program(const QrqwProgram& program);

  /// Emulates a step under EREW discipline: throws std::invalid_argument
  /// if the step has contention > 1 (the EREW PRAM forbids it); otherwise
  /// identical mechanics.
  [[nodiscard]] EmulationResult emulate_erew_step(const QrqwStep& step);

  [[nodiscard]] const sim::MachineConfig& config() const noexcept {
    return machine_.config();
  }
  [[nodiscard]] const core::DxBspParams& params() const noexcept {
    return params_;
  }

 private:
  sim::Machine machine_;
  core::DxBspParams params_;
};

}  // namespace dxbsp::qrqw
