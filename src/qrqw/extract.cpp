#include "qrqw/extract.hpp"

#include "algos/connected_components.hpp"
#include "algos/list_ranking.hpp"
#include "algos/random_permutation.hpp"
#include "algos/spmv.hpp"
#include "algos/vm.hpp"

namespace dxbsp::qrqw {

namespace {

/// Runs `body` on a Vm whose every irregular op is recorded as one QRQW
/// step. The extraction machine itself is irrelevant (only the traces
/// are kept); a small test preset keeps it fast.
template <typename Body>
QrqwProgram record(Body&& body) {
  algos::Vm vm(sim::MachineConfig::test_machine());
  QrqwProgram program;
  vm.set_trace_hook([&program](const std::string& label,
                               std::span<const std::uint64_t> addrs) {
    (void)label;
    QrqwStep step;
    step.writes.assign(addrs.begin(), addrs.end());
    step.vprocs = addrs.size();
    step.compute = 1.0;
    program.add_step(std::move(step));
  });
  body(vm);
  return program;
}

}  // namespace

QrqwProgram extract_random_permutation(std::uint64_t n, std::uint64_t seed,
                                       double rho) {
  return record([&](algos::Vm& vm) {
    (void)algos::random_permutation_qrqw(vm, n, seed, rho);
  });
}

QrqwProgram extract_spmv(const workload::CsrMatrix& matrix) {
  return record([&](algos::Vm& vm) {
    std::vector<double> x(matrix.cols, 1.0);
    (void)algos::spmv(vm, matrix, x);
  });
}

QrqwProgram extract_connected_components(const workload::Graph& graph) {
  return record([&](algos::Vm& vm) {
    (void)algos::connected_components(vm, graph);
  });
}

QrqwProgram extract_list_ranking(std::uint64_t n, std::uint64_t seed) {
  return record([&](algos::Vm& vm) {
    (void)algos::list_rank(vm, algos::random_list(n, seed));
  });
}

}  // namespace dxbsp::qrqw
