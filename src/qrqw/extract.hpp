#pragma once
// Extraction of QRQW PRAM programs from real algorithm runs.
//
// §5's emulation theorems are stated for abstract QRQW programs; the
// algorithm experiments run concrete codes. This bridge runs a library
// algorithm on an instrumented Vm, records every irregular bulk
// operation as one QRQW step (its address trace becomes the step's
// writes, one virtual processor per operation), and returns the program.
// Emulating the extracted program on a (d,x)-BSP machine then connects
// the two halves of the paper: the emulation bound must cover — and the
// emulated time should resemble — the direct implementation's cost.

#include <cstdint>

#include "qrqw/program.hpp"
#include "sim/machine_config.hpp"
#include "workload/graphs.hpp"
#include "workload/sparse.hpp"

namespace dxbsp::qrqw {

/// Program of the dart-throwing random permutation (one step per dart
/// round scatter/read-back plus the pack).
[[nodiscard]] QrqwProgram extract_random_permutation(std::uint64_t n,
                                                     std::uint64_t seed,
                                                     double rho = 2.0);

/// Program of the CSR SpMV gather phase for the given matrix.
[[nodiscard]] QrqwProgram extract_spmv(const workload::CsrMatrix& matrix);

/// Program of hook-and-contract connected components on the given graph.
[[nodiscard]] QrqwProgram extract_connected_components(
    const workload::Graph& graph);

/// Program of Wyllie list ranking over a random list of n nodes.
[[nodiscard]] QrqwProgram extract_list_ranking(std::uint64_t n,
                                               std::uint64_t seed);

}  // namespace dxbsp::qrqw
