#include "qrqw/program.hpp"

#include <algorithm>

#include "workload/patterns.hpp"

namespace dxbsp::qrqw {

std::uint64_t QrqwProgram::time() const {
  std::uint64_t t = 0;
  for (const auto& s : steps_) t += s.cost();
  return t;
}

std::uint64_t QrqwProgram::work() const {
  std::uint64_t w = 0;
  for (const auto& s : steps_) w += s.work();
  return w;
}

std::uint64_t QrqwProgram::ops() const {
  std::uint64_t n = 0;
  for (const auto& s : steps_) n += s.ops();
  return n;
}

std::uint64_t QrqwProgram::max_contention() const {
  std::uint64_t k = 0;
  for (const auto& s : steps_) k = std::max(k, s.max_contention());
  return k;
}

QrqwStep synthetic_step(std::uint64_t n, std::uint64_t k, std::uint64_t space,
                        std::uint64_t vprocs, std::uint64_t seed) {
  QrqwStep s;
  // Half the ops read, half write; the hot location sits in the writes
  // (which side is irrelevant to both the QRQW charge and the banks).
  const std::uint64_t n_writes = std::max<std::uint64_t>(1, n / 2);
  const std::uint64_t n_reads = n - n_writes;
  s.writes = workload::k_hot(n_writes, std::min(k, n_writes), space, seed);
  if (n_reads > 0)
    s.reads = workload::uniform_random(n_reads, space, seed + 1);
  s.vprocs = vprocs;
  s.compute = 1.0;
  return s;
}

QrqwProgram synthetic_program(std::uint64_t steps, std::uint64_t n,
                              std::uint64_t space, std::uint64_t vprocs,
                              std::uint64_t seed) {
  QrqwProgram p;
  std::uint64_t k = 1;
  for (std::uint64_t i = 0; i < steps; ++i) {
    p.add_step(synthetic_step(n, std::min(k, n / 2 == 0 ? 1 : n / 2), space,
                              vprocs, seed + 1000 * i));
    k = std::min<std::uint64_t>(k * 2, n);
  }
  return p;
}

}  // namespace dxbsp::qrqw
