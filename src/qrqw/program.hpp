#pragma once
// QRQW PRAM programs: sequences of steps with aggregate cost accounting,
// plus generators for synthetic programs used by the emulation
// experiments and property tests.

#include <cstdint>
#include <vector>

#include "qrqw/step.hpp"

namespace dxbsp::qrqw {

/// A straight-line QRQW PRAM program.
class QrqwProgram {
 public:
  void add_step(QrqwStep step) { steps_.push_back(std::move(step)); }

  [[nodiscard]] const std::vector<QrqwStep>& steps() const noexcept {
    return steps_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return steps_.size(); }

  /// Total QRQW time (sum of step costs).
  [[nodiscard]] std::uint64_t time() const;
  /// Total QRQW work (sum of step works).
  [[nodiscard]] std::uint64_t work() const;
  /// Total shared-memory operations.
  [[nodiscard]] std::uint64_t ops() const;
  /// Largest contention over all steps.
  [[nodiscard]] std::uint64_t max_contention() const;

 private:
  std::vector<QrqwStep> steps_;
};

/// A synthetic QRQW step: `n` operations over an address space of
/// `space` words, with one hot location receiving `k` of them (k >= 1)
/// and `vprocs` virtual processors. Deterministic in `seed`.
[[nodiscard]] QrqwStep synthetic_step(std::uint64_t n, std::uint64_t k,
                                      std::uint64_t space,
                                      std::uint64_t vprocs,
                                      std::uint64_t seed);

/// A program of `steps` synthetic steps with geometrically varied
/// contention (k = 1, 2, 4, ... capped at n).
[[nodiscard]] QrqwProgram synthetic_program(std::uint64_t steps,
                                            std::uint64_t n,
                                            std::uint64_t space,
                                            std::uint64_t vprocs,
                                            std::uint64_t seed);

}  // namespace dxbsp::qrqw
