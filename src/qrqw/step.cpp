#include "qrqw/step.hpp"

#include <algorithm>
#include <cmath>

#include "mem/contention.hpp"
#include "util/bits.hpp"

namespace dxbsp::qrqw {

std::uint64_t QrqwStep::max_contention() const {
  std::vector<std::uint64_t> all;
  all.reserve(reads.size() + writes.size());
  all.insert(all.end(), reads.begin(), reads.end());
  all.insert(all.end(), writes.begin(), writes.end());
  return mem::analyze_locations(all).max_contention;
}

std::uint64_t QrqwStep::cost() const {
  if (ops() == 0 && vprocs == 0) return 0;  // the empty step is free
  const std::uint64_t per_vproc =
      vprocs == 0 ? 0 : util::ceil_div(ops(), vprocs);
  const auto comp = static_cast<std::uint64_t>(std::ceil(compute));
  return std::max({max_contention(), per_vproc, comp,
                   static_cast<std::uint64_t>(ops() > 0 ? 1 : 0)});
}

}  // namespace dxbsp::qrqw
