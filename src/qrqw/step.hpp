#pragma once
// The QRQW PRAM step abstraction [GMR94b].
//
// A queue-read queue-write PRAM allows concurrent reads/writes to a
// location but charges time proportional to the *queue length*: a step
// in which some location is accessed by k operations costs max(k, local
// compute) time. This sits between the forgiving CRCW (charge 1) and the
// prohibitive EREW (contention forbidden) and, per the paper, matches
// what bank-delay machines actually do — a bank serves its queue at one
// request per d cycles.

#include <cstdint>
#include <vector>

namespace dxbsp::qrqw {

/// One QRQW PRAM step: a batch of shared-memory operations plus local
/// computation, executed by `vprocs` virtual processors.
struct QrqwStep {
  std::vector<std::uint64_t> reads;   ///< addresses read this step
  std::vector<std::uint64_t> writes;  ///< addresses written this step
  std::uint64_t vprocs = 0;           ///< virtual processors participating
  double compute = 1.0;               ///< local compute time units per vproc

  [[nodiscard]] std::uint64_t ops() const noexcept {
    return reads.size() + writes.size();
  }

  /// Maximum location contention over the step's reads and writes
  /// combined (the k the QRQW model charges).
  [[nodiscard]] std::uint64_t max_contention() const;

  /// QRQW time of the step: max(contention, ops per vproc, compute).
  [[nodiscard]] std::uint64_t cost() const;

  /// QRQW work: vprocs * cost (the processor-time product the
  /// work-preserving emulation must not blow up).
  [[nodiscard]] std::uint64_t work() const { return vprocs * cost(); }
};

}  // namespace dxbsp::qrqw
