#include "qrqw/theory.hpp"

#include <algorithm>
#include <cmath>

namespace dxbsp::qrqw {

namespace {
/// Deviation term of the max random bank load around its mean mu over B
/// banks: sqrt(3·mu·ln B) + 3·ln B covers both the Gaussian and Poisson
/// regimes of the Raghavan–Spencer/Chernoff tail with failure
/// probability B^{-1}.
double max_load_tail(double mu, double banks) {
  const double lnb = std::log(std::max(2.0, banks));
  return std::sqrt(3.0 * mu * lnb) + 3.0 * lnb;
}
}  // namespace

double bank_term_bound(std::uint64_t n, std::uint64_t k,
                       const core::DxBspParams& m) {
  const double banks = static_cast<double>(m.banks());
  const double mu = static_cast<double>(n) / banks;
  return static_cast<double>(m.d) *
         (static_cast<double>(k) + mu + max_load_tail(mu, banks));
}

double step_time_bound(std::uint64_t n, std::uint64_t k,
                       const core::DxBspParams& m) {
  const double proc_term = static_cast<double>(m.g) *
                           std::ceil(static_cast<double>(n) /
                                     static_cast<double>(m.p));
  const double sync = 2.0 * static_cast<double>(m.L) *
                      std::max(1.0, std::log2(static_cast<double>(m.p)));
  // The 5% cushion plus the explicit drain terms (one bank period, one
  // extra wire traversal, two issue slots) cover pipeline end effects —
  // the theorem is an O(.) statement; these are its concrete constants.
  const double drain = static_cast<double>(m.d) +
                       static_cast<double>(m.L) +
                       2.0 * static_cast<double>(m.g);
  return 1.05 * std::max(proc_term, bank_term_bound(n, k, m)) + sync + drain;
}

double theorem51_bound(std::uint64_t n, std::uint64_t k,
                       const core::DxBspParams& m) {
  // c·((d/x)(n/p) + d·k + L log p); c = 3 is comfortably conservative for
  // the FIFO-bank mechanism.
  const double c = 3.0;
  const double dp = static_cast<double>(m.d) / static_cast<double>(m.x);
  const double np = static_cast<double>(n) / static_cast<double>(m.p);
  return c * (dp * np + static_cast<double>(m.d) * static_cast<double>(k) +
              static_cast<double>(m.L) *
                  std::max(1.0, std::log2(static_cast<double>(m.p))));
}

double theorem52_bound(std::uint64_t n, std::uint64_t k,
                       const core::DxBspParams& m) {
  // The x >= d regime keeps the full nonlinear tail.
  return 1.5 * step_time_bound(n, k, m);
}

double asymptotic_slowdown(const core::DxBspParams& m) {
  return std::max(static_cast<double>(m.g),
                  static_cast<double>(m.d) / static_cast<double>(m.x));
}

std::uint64_t required_slackness(const core::DxBspParams& m, double eps) {
  const double target = (1.0 + eps) * asymptotic_slowdown(m);
  // Smallest n/p such that step_time_bound(n, 1, m)/ (n/p) <= target.
  for (std::uint64_t np = 1; np <= (1ULL << 40); np *= 2) {
    const std::uint64_t n = np * m.p;
    const double per_op = step_time_bound(n, 1, m) /
                          (static_cast<double>(n) / static_cast<double>(m.p));
    if (per_op <= target) return np;
  }
  return 1ULL << 40;
}

}  // namespace dxbsp::qrqw
