#pragma once
// Quantitative content of the paper's emulation theorems (§5).
//
// Theorem 5.1 (x <= d): a QRQW PRAM step of n operations with contention
// k can be emulated on the (d,x)-BSP in time
//
//     O( (d/x)·(n/p) + d·k + L·log p )
//
// w.h.p. under random hashing. The (d/x) factor on the bandwidth term is
// inevitable — with x banks per processor serving one request every d
// cycles, aggregate memory bandwidth is x·p/d requests/cycle versus p/g
// issued — so the emulation is work-preserving with slowdown Θ(d/x)
// given slackness n/p = Ω(d·k + L log p).
//
// Theorem 5.2 (x >= d): the expansion absorbs part of the delay; the
// bank term becomes d·(n/(xp) + tail), where the tail is the deviation
// of the max random bank load from its mean, bounded via the
// Raghavan–Spencer inequality. The resulting slowdown is the nonlinear
// function of d and x the abstract advertises: for large slackness it
// approaches max(g, d/x)·(1 + o(1)), but for moderate slackness the
// sqrt((n/xp)·ln(xp)) tail and the d·k term dominate.
//
// The functions here return concrete upper bounds (with explicit,
// conservative constants) that the property tests verify dominate the
// simulated emulation times across sweeps of (n, k, d, x).

#include <cstdint>

#include "core/params.hpp"

namespace dxbsp::qrqw {

/// Upper bound on the (d,x)-BSP time to emulate one QRQW step of n ops
/// with contention k on machine `m` (random hashing of shared memory).
/// Valid for both regimes; the max-load tail term uses the Chernoff/
/// Raghavan–Spencer deviation.
[[nodiscard]] double step_time_bound(std::uint64_t n, std::uint64_t k,
                                     const core::DxBspParams& m);

/// The bound's bank component alone: d·(k + mean load + tail).
[[nodiscard]] double bank_term_bound(std::uint64_t n, std::uint64_t k,
                                     const core::DxBspParams& m);

/// Theorem 5.1 regime (x <= d): bound of the form
/// c·((d/x)·(n/p) + d·k + L·log2(p)).
[[nodiscard]] double theorem51_bound(std::uint64_t n, std::uint64_t k,
                                     const core::DxBspParams& m);

/// Theorem 5.2 regime (x >= d): bound with the nonlinear tail.
[[nodiscard]] double theorem52_bound(std::uint64_t n, std::uint64_t k,
                                     const core::DxBspParams& m);

/// Asymptotic slowdown of the work-preserving emulation for a step with
/// contention k = O(n/(xp)) and large slackness: max(g, d/x) modulo the
/// tail. Exposed for the Figure-10 bench to plot the theory curve.
[[nodiscard]] double asymptotic_slowdown(const core::DxBspParams& m);

/// Minimum slackness (ops per processor) for which the emulation is
/// work-preserving within factor `eps` of the asymptotic slowdown,
/// per the bound above (found numerically).
[[nodiscard]] std::uint64_t required_slackness(const core::DxBspParams& m,
                                               double eps = 0.5);

}  // namespace dxbsp::qrqw
