#include "resilience/cancel.hpp"

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <limits>

namespace dxbsp::resilience {

const char* cancel_cause_name(CancelCause cause) noexcept {
  switch (cause) {
    case CancelCause::kNone: return "none";
    case CancelCause::kCancelled: return "cancelled";
    case CancelCause::kSignal: return "signal";
    case CancelCause::kDeadline: return "deadline";
    case CancelCause::kStalled: return "stalled";
  }
  return "unknown";
}

Deadline::Deadline(double seconds) {
  if (seconds <= 0.0) return;
  active_ = true;
  at_ = std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(seconds));
}

bool Deadline::expired() const noexcept {
  return active_ && std::chrono::steady_clock::now() >= at_;
}

double Deadline::remaining_seconds() const noexcept {
  if (!active_) return std::numeric_limits<double>::infinity();
  const auto left = at_ - std::chrono::steady_clock::now();
  return std::max(0.0, std::chrono::duration<double>(left).count());
}

namespace {
// The signal handler can only touch lock-free atomics; it reaches the
// active token through this pointer (one ScopedSignalCancel at a time).
std::atomic<CancelToken*> g_signal_token{nullptr};

extern "C" void dxbsp_signal_handler(int) {
  CancelToken* token = g_signal_token.load(std::memory_order_acquire);
  if (token != nullptr) token->cancel(CancelCause::kSignal);
}
}  // namespace

ScopedSignalCancel::ScopedSignalCancel(CancelToken& token) {
  CancelToken* expected = nullptr;
  if (!g_signal_token.compare_exchange_strong(expected, &token,
                                              std::memory_order_acq_rel))
    raise(ErrorCode::kConfig,
          "ScopedSignalCancel: another instance is already installed");
  prev_int_ = std::signal(SIGINT, dxbsp_signal_handler);
  prev_term_ = std::signal(SIGTERM, dxbsp_signal_handler);
}

ScopedSignalCancel::~ScopedSignalCancel() {
  std::signal(SIGINT, prev_int_ == SIG_ERR ? SIG_DFL : prev_int_);
  std::signal(SIGTERM, prev_term_ == SIG_ERR ? SIG_DFL : prev_term_);
  g_signal_token.store(nullptr, std::memory_order_release);
}

Watchdog::Watchdog(CancelToken& token, std::chrono::milliseconds stall_after)
    : token_(token) {
  if (stall_after.count() <= 0)
    raise(ErrorCode::kConfig, "Watchdog: stall window must be positive");
  thread_ = std::thread([this, stall_after] { loop(stall_after); });
}

Watchdog::~Watchdog() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

void Watchdog::loop(std::chrono::milliseconds stall_after) {
  const auto poll = std::max(std::chrono::milliseconds(10), stall_after / 4);
  std::uint64_t last = token_.heartbeats();
  auto last_change = std::chrono::steady_clock::now();
  for (;;) {
    {
      // Interruptible sleep: the destructor must not have to wait out a
      // poll interval (a fleet coordinator tears one down per lease).
      std::unique_lock<std::mutex> lock(mu_);
      if (cv_.wait_for(lock, poll, [this] { return stop_; })) return;
    }
    if (token_.expired()) return;  // someone else already stopped the run
    const std::uint64_t now_beats = token_.heartbeats();
    const auto now = std::chrono::steady_clock::now();
    if (now_beats != last) {
      last = now_beats;
      last_change = now;
    } else if (now - last_change >= stall_after) {
      std::fprintf(stderr,
                   "[watchdog] no event-loop progress for %lld ms; "
                   "cancelling run\n",
                   static_cast<long long>(stall_after.count()));
      token_.cancel(CancelCause::kStalled);
      return;
    }
  }
}

}  // namespace dxbsp::resilience
