#pragma once
// Cooperative cancellation for long-running simulations.
//
// A CancelToken is a tiny shared flag that hot loops (Machine's event
// loop, BankArray service, ThreadPool::parallel_for, SweepRunner) poll
// at safe stopping points. It can trip three ways:
//   * cancel()            — explicit, or from a SIGINT/SIGTERM handler
//                           (ScopedSignalCancel); cause kSignal/kCancelled;
//   * an attached Deadline — wall-clock budget (--deadline=SECONDS)
//                           expires; cause kDeadline;
//   * a Watchdog           — the heartbeat counter stops advancing for a
//                           configured stall window (a wedged event loop);
//                           cause kStalled.
// Whichever fires first wins; the cause is latched so the structured
// Interrupted outcome can say why. All operations are lock-free atomics;
// cancel() is async-signal-safe.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

#include "resilience/error.hpp"

namespace dxbsp::resilience {

/// Why a token tripped.
enum class CancelCause : int {
  kNone = 0,
  kCancelled,  ///< explicit cancel() call
  kSignal,     ///< SIGINT/SIGTERM via ScopedSignalCancel
  kDeadline,   ///< wall-clock deadline expired
  kStalled,    ///< watchdog saw no heartbeat progress
};

[[nodiscard]] const char* cancel_cause_name(CancelCause cause) noexcept;

/// Wall-clock budget: expires `seconds` after construction.
/// A non-positive budget means "no deadline" (never expires).
class Deadline {
 public:
  Deadline() = default;
  explicit Deadline(double seconds);

  [[nodiscard]] bool active() const noexcept { return active_; }
  [[nodiscard]] bool expired() const noexcept;
  /// Seconds left (0 when expired; +inf when inactive).
  [[nodiscard]] double remaining_seconds() const noexcept;

 private:
  bool active_ = false;
  std::chrono::steady_clock::time_point at_{};
};

/// Shared cancellation flag. Copyable handles are not provided: share by
/// pointer/reference (SweepRunner owns one; Machine et al. observe it).
class CancelToken {
 public:
  CancelToken() = default;

  /// Trips the token (first cause wins). Async-signal-safe.
  void cancel(CancelCause cause = CancelCause::kCancelled) noexcept {
    int expected = static_cast<int>(CancelCause::kNone);
    state_.compare_exchange_strong(expected, static_cast<int>(cause),
                                   std::memory_order_acq_rel);
  }

  /// Attaches a wall-clock deadline; replaces any previous one.
  void set_deadline(const Deadline& deadline) noexcept { deadline_ = deadline; }
  [[nodiscard]] const Deadline& deadline() const noexcept { return deadline_; }

  /// True iff cancelled or past the deadline. The deadline check reads
  /// the clock, so hot loops should poll every ~2^k iterations, not
  /// every iteration.
  [[nodiscard]] bool expired() const noexcept {
    if (state_.load(std::memory_order_acquire) !=
        static_cast<int>(CancelCause::kNone))
      return true;
    if (deadline_.expired()) {
      // Latch so cause() reports kDeadline even if cancel() races later.
      const_cast<CancelToken*>(this)->cancel(CancelCause::kDeadline);
      return true;
    }
    return false;
  }

  [[nodiscard]] CancelCause cause() const noexcept {
    return static_cast<CancelCause>(state_.load(std::memory_order_acquire));
  }

  /// Re-arms a tripped token: clears the latched cause, the heartbeat
  /// counter and any attached deadline, returning the token to its
  /// freshly-constructed state. For reuse across *sequential* runs (a
  /// worker loop calling SweepRunner::run repeatedly); must not be
  /// called while any loop, Watchdog or signal handler can still observe
  /// the token — those would race the un-latch and see a phantom reset.
  void reset() noexcept {
    state_.store(static_cast<int>(CancelCause::kNone),
                 std::memory_order_release);
    progress_.store(0, std::memory_order_relaxed);
    deadline_ = Deadline{};
  }

  /// Throws Error{kInterrupted} when expired; `where` names the loop.
  void raise_if_expired(const char* where) const {
    if (expired())
      raise(ErrorCode::kInterrupted,
            std::string(where) + " interrupted (" +
                cancel_cause_name(cause()) + ")");
  }

  /// Progress beacon for the Watchdog: hot loops call this at the same
  /// cadence they poll expired().
  void heartbeat() const noexcept {
    progress_.fetch_add(1, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t heartbeats() const noexcept {
    return progress_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<int> state_{static_cast<int>(CancelCause::kNone)};
  mutable std::atomic<std::uint64_t> progress_{0};
  Deadline deadline_{};
};

/// Routes SIGINT/SIGTERM to token.cancel(kSignal) for its lifetime; the
/// previous handlers are restored on destruction. At most one instance
/// may be live at a time (enforced; second construction throws kConfig).
class ScopedSignalCancel {
 public:
  explicit ScopedSignalCancel(CancelToken& token);
  ~ScopedSignalCancel();

  ScopedSignalCancel(const ScopedSignalCancel&) = delete;
  ScopedSignalCancel& operator=(const ScopedSignalCancel&) = delete;

 private:
  void (*prev_int_)(int) = nullptr;
  void (*prev_term_)(int) = nullptr;
};

/// Background thread that trips `token` with kStalled when the token's
/// heartbeat counter makes no progress for `stall_after`. Poll interval
/// defaults to stall_after/4 (min 10ms) so tests can use short windows.
class Watchdog {
 public:
  Watchdog(CancelToken& token, std::chrono::milliseconds stall_after);
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

 private:
  void loop(std::chrono::milliseconds stall_after);

  CancelToken& token_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace dxbsp::resilience
