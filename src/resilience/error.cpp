#include "resilience/error.hpp"

namespace dxbsp {

const char* error_code_name(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kConfig: return "config";
    case ErrorCode::kParse: return "parse";
    case ErrorCode::kCorruptInput: return "corrupt-input";
    case ErrorCode::kCorruptSnapshot: return "corrupt-snapshot";
    case ErrorCode::kIo: return "io";
    case ErrorCode::kInterrupted: return "interrupted";
    case ErrorCode::kDegraded: return "degraded";
    case ErrorCode::kInternal: return "internal";
  }
  return "unknown";
}

int exit_code(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kConfig:
    case ErrorCode::kParse: return 64;           // EX_USAGE
    case ErrorCode::kCorruptInput:
    case ErrorCode::kCorruptSnapshot: return 65; // EX_DATAERR
    case ErrorCode::kIo: return 74;              // EX_IOERR
    case ErrorCode::kInterrupted: return 75;     // EX_TEMPFAIL: retryable
    case ErrorCode::kDegraded: return 69;        // EX_UNAVAILABLE
    case ErrorCode::kInternal: return 70;        // EX_SOFTWARE
  }
  return 70;
}

}  // namespace dxbsp
