#pragma once
// Error taxonomy for the library: one exception type carrying a machine-
// readable code, so callers (benches, machine_explorer, tests, resume
// logic) can distinguish "your flag is malformed" from "this snapshot is
// corrupt" from "the run was interrupted" without parsing message text.
//
// The codes double as process exit codes for the experiment binaries
// (exit_code(), loosely following BSD sysexits), which is what lets
// scripts/ci.sh tell an interrupted sweep (resumable, exit 75) from a
// genuine failure.
//
// Expected<T> is a minimal value-or-Error carrier for load/parse paths
// where a failure is an expected outcome (e.g. probing a checkpoint
// file) rather than a programming error; .value() rethrows the stored
// error for callers that do want the exception.

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace dxbsp {

/// What kind of failure an Error describes.
enum class ErrorCode {
  kConfig,           ///< invalid configuration or arguments (caller bug)
  kParse,            ///< malformed user input: flags, spec strings, text files
  kCorruptInput,     ///< binary input failed validation (traces, matrices)
  kCorruptSnapshot,  ///< checkpoint/snapshot failed validation
  kIo,               ///< filesystem-level failure (open/write/rename)
  kInterrupted,      ///< stopped by signal, deadline, or stall watchdog
  kDegraded,         ///< simulated operation could not fully complete
  kInternal,         ///< internal invariant violated (library bug)
};

/// Stable lower-case name of a code ("config", "corrupt-snapshot", ...).
[[nodiscard]] const char* error_code_name(ErrorCode code) noexcept;

/// Suggested process exit code (sysexits-flavoured): config/parse 64,
/// corrupt input/snapshot 65, io 74, interrupted 75, degraded 69,
/// internal 70.
[[nodiscard]] int exit_code(ErrorCode code) noexcept;

/// The library's exception type. Derives from std::runtime_error so
/// pre-taxonomy catch sites keep working; what() is
/// "<code-name>: <context>".
class Error : public std::runtime_error {
 public:
  Error(ErrorCode code, const std::string& context)
      : std::runtime_error(std::string(error_code_name(code)) + ": " +
                           context),
        code_(code) {}

  [[nodiscard]] ErrorCode code() const noexcept { return code_; }

 private:
  ErrorCode code_;
};

/// Throw helper; keeps call sites one line.
[[noreturn]] inline void raise(ErrorCode code, const std::string& context) {
  throw Error(code, context);
}

/// Value-or-Error result for load/parse paths.
template <typename T>
class Expected {
 public:
  Expected(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-*)
  Expected(Error error) : error_(std::move(error)) {}  // NOLINT

  [[nodiscard]] bool ok() const noexcept { return value_.has_value(); }
  explicit operator bool() const noexcept { return ok(); }

  /// The value; throws the stored Error when !ok().
  [[nodiscard]] const T& value() const& {
    if (!ok()) throw *error_;
    return *value_;
  }
  [[nodiscard]] T&& value() && {
    if (!ok()) throw *error_;
    return std::move(*value_);
  }

  /// The error; must not be called when ok().
  [[nodiscard]] const Error& error() const {
    if (ok()) throw Error(ErrorCode::kInternal, "Expected: no error stored");
    return *error_;
  }

 private:
  std::optional<T> value_;
  std::optional<Error> error_;
};

}  // namespace dxbsp
