#include "resilience/shard.hpp"

#include <algorithm>
#include <cstdlib>

#include "resilience/error.hpp"
#include "util/rng.hpp"

namespace dxbsp::resilience {

namespace {

std::uint64_t parse_u64(const std::string& text, const std::string& what) {
  if (text.empty() || text.find_first_not_of("0123456789") != std::string::npos)
    raise(ErrorCode::kParse, "ShardSpec: malformed " + what + " '" + text +
                                 "' (want \"index/count\", e.g. \"2/8\")");
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end != text.c_str() + text.size())
    raise(ErrorCode::kParse, "ShardSpec: " + what + " '" + text +
                                 "' out of range");
  return static_cast<std::uint64_t>(v);
}

}  // namespace

ShardSpec ShardSpec::parse(const std::string& text) {
  const auto slash = text.find('/');
  if (slash == std::string::npos)
    raise(ErrorCode::kParse, "ShardSpec: malformed '" + text +
                                 "' (want \"index/count\", e.g. \"2/8\")");
  ShardSpec spec;
  spec.index = parse_u64(text.substr(0, slash), "index");
  spec.count = parse_u64(text.substr(slash + 1), "count");
  if (spec.count == 0)
    raise(ErrorCode::kConfig, "ShardSpec: count must be positive");
  if (spec.index >= spec.count)
    raise(ErrorCode::kConfig, "ShardSpec: index " +
                                  std::to_string(spec.index) +
                                  " out of range for count " +
                                  std::to_string(spec.count));
  return spec;
}

std::string ShardSpec::str() const {
  return std::to_string(index) + "/" + std::to_string(count);
}

std::pair<std::size_t, std::size_t> ShardSpec::range(std::size_t n) const {
  if (count == 0 || index >= count)
    raise(ErrorCode::kConfig, "ShardSpec::range: invalid shard " + str());
  const std::size_t base = n / count;
  const std::size_t extra = n % count;
  // The first `extra` shards hold base+1 points each.
  const std::size_t begin =
      static_cast<std::size_t>(index) * base +
      std::min<std::size_t>(static_cast<std::size_t>(index), extra);
  const std::size_t len = base + (static_cast<std::size_t>(index) < extra);
  return {begin, begin + len};
}

std::vector<std::uint64_t> ShardSpec::slice(
    std::span<const std::uint64_t> keys) const {
  const auto [begin, end] = range(keys.size());
  return {keys.begin() + static_cast<std::ptrdiff_t>(begin),
          keys.begin() + static_cast<std::ptrdiff_t>(end)};
}

std::uint64_t shard_sweep_id(std::uint64_t base_id, const ShardSpec& shard) {
  if (!shard.sharded()) return base_id;
  // Same chained-mix64 construction as sweep_id(): the shard identity is
  // just two more grid-shaping parameters.
  std::uint64_t h = util::mix64(base_id ^ 0x7368617264'3031ULL);  // "shard01"
  h = util::mix64(h ^ shard.index);
  h = util::mix64(h ^ shard.count);
  return h;
}

}  // namespace dxbsp::resilience
