#pragma once
// Shard-range sweeps: deterministic partitioning of a sweep grid into
// contiguous key slices, plus shard-scoped sweep fingerprints so one
// shard's checkpoint can never resume another's (docs/resilience.md
// §fleet mode).
//
// A ShardSpec is "index/count" — shard 2/8 owns the third of eight
// contiguous slices of the key vector, balanced so slice sizes differ by
// at most one. Slicing is a pure function of (keys, spec): every worker
// of a fleet derives its own slice from the same grid, so the union over
// shards is exactly the serial grid and no keys are shared.

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace dxbsp::resilience {

/// One shard of a sweep grid: slice `index` of `count` contiguous
/// slices. The default (0/1) is the whole grid.
struct ShardSpec {
  std::uint64_t index = 0;
  std::uint64_t count = 1;

  /// True when this spec actually restricts the grid.
  [[nodiscard]] bool sharded() const noexcept { return count > 1; }

  /// Parses "index/count" (e.g. "2/8"). Throws Error{kParse} on
  /// malformed input and Error{kConfig} when index >= count or count
  /// is 0.
  [[nodiscard]] static ShardSpec parse(const std::string& text);

  /// "index/count", the inverse of parse().
  [[nodiscard]] std::string str() const;

  /// Half-open slot range [begin, end) of this shard in an n-point
  /// grid. Balanced: the first (n % count) shards get one extra point.
  [[nodiscard]] std::pair<std::size_t, std::size_t> range(
      std::size_t n) const;

  /// This shard's contiguous slice of `keys`.
  [[nodiscard]] std::vector<std::uint64_t> slice(
      std::span<const std::uint64_t> keys) const;

  friend bool operator==(const ShardSpec&, const ShardSpec&) = default;
};

/// Shard-scoped sweep fingerprint: mixes the shard identity into the
/// base grid id, so a foreign shard's checkpoint (same grid, different
/// slice) is refused by SweepRunner's resume check exactly like a
/// different grid's would be. The unsharded spec (0/1) maps to the base
/// id unchanged — a whole-grid checkpoint stays resumable by a
/// whole-grid run.
[[nodiscard]] std::uint64_t shard_sweep_id(std::uint64_t base_id,
                                           const ShardSpec& shard);

}  // namespace dxbsp::resilience
