#include "resilience/snapshot.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <unordered_set>

namespace dxbsp::resilience {

namespace {

constexpr std::array<unsigned char, 8> kMagic = {'D', 'X', 'S', 'N',
                                                 'A', 'P', '0', '1'};

// Little-endian scalar append/read. The simulator only targets
// little-endian hosts; static_assert keeps that assumption loud.
static_assert(std::endian::native == std::endian::little,
              "snapshot format assumes a little-endian host");

void put_u32(std::vector<unsigned char>& out, std::uint32_t v) {
  const auto* p = reinterpret_cast<const unsigned char*>(&v);
  out.insert(out.end(), p, p + sizeof(v));
}

void put_u64(std::vector<unsigned char>& out, std::uint64_t v) {
  const auto* p = reinterpret_cast<const unsigned char*>(&v);
  out.insert(out.end(), p, p + sizeof(v));
}

std::uint32_t read_u32(const unsigned char* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

std::uint64_t read_u64(const unsigned char* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

// Field order is the format contract: key, rng_state, failed_requests,
// aux[4], then the BulkResult fields in declaration order with
// bank_utilization bit-cast to u64 and the CostBreakdown flattened
// term-by-term (the BankLoadSketch is not persisted — see kRecordBytes).
// Changing this bumps kSnapshotVersion.
void put_record(std::vector<unsigned char>& out, const SnapshotRecord& r) {
  put_u64(out, r.key);
  put_u64(out, r.rng_state);
  put_u64(out, r.failed_requests);
  for (const std::uint64_t a : r.aux) put_u64(out, a);
  const sim::BulkResult& b = r.result;
  put_u64(out, b.cycles);
  put_u64(out, b.n);
  put_u64(out, b.max_bank_load);
  put_u64(out, b.max_proc_requests);
  put_u64(out, b.last_issue);
  put_u64(out, b.stall_cycles);
  put_u64(out, b.port_conflicts);
  put_u64(out, b.cache_hits);
  put_u64(out, b.cache_misses);
  put_u64(out, b.cache_evictions);
  put_u64(out, b.max_proc_miss);
  put_u64(out, b.combined);
  put_u64(out, b.completed);
  put_u64(out, b.retries);
  put_u64(out, b.nacks);
  put_u64(out, b.failovers);
  put_u64(out, b.degraded_cycles);
  put_u64(out, b.max_location_contention);
  put_u64(out, std::bit_cast<std::uint64_t>(b.bank_utilization));
  put_u64(out, b.breakdown.issue_gap);
  put_u64(out, b.breakdown.window_stall);
  put_u64(out, b.breakdown.latency);
  put_u64(out, b.breakdown.bank_service);
  put_u64(out, b.breakdown.retry_backoff);
  put_u64(out, b.breakdown.failover);
  put_u64(out, b.breakdown.cache_hit);
}

SnapshotRecord read_record(const unsigned char* p) {
  SnapshotRecord r;
  auto next = [&p] {
    const std::uint64_t v = read_u64(p);
    p += sizeof(v);
    return v;
  };
  r.key = next();
  r.rng_state = next();
  r.failed_requests = next();
  for (auto& a : r.aux) a = next();
  sim::BulkResult& b = r.result;
  b.cycles = next();
  b.n = next();
  b.max_bank_load = next();
  b.max_proc_requests = next();
  b.last_issue = next();
  b.stall_cycles = next();
  b.port_conflicts = next();
  b.cache_hits = next();
  b.cache_misses = next();
  b.cache_evictions = next();
  b.max_proc_miss = next();
  b.combined = next();
  b.completed = next();
  b.retries = next();
  b.nacks = next();
  b.failovers = next();
  b.degraded_cycles = next();
  b.max_location_contention = next();
  b.bank_utilization = std::bit_cast<double>(next());
  b.breakdown.issue_gap = next();
  b.breakdown.window_stall = next();
  b.breakdown.latency = next();
  b.breakdown.bank_service = next();
  b.breakdown.retry_backoff = next();
  b.breakdown.failover = next();
  b.breakdown.cache_hit = next();
  return r;
}

Error corrupt(const std::string& origin, const std::string& why) {
  return Error(ErrorCode::kCorruptSnapshot, origin + ": " + why);
}

}  // namespace

std::uint32_t crc32(std::span<const unsigned char> data,
                    std::uint32_t seed) noexcept {
  // Table-driven IEEE CRC-32; the table is built once, lazily.
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1U) ? 0xEDB88320U ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t c = seed ^ 0xFFFFFFFFU;
  for (const unsigned char byte : data)
    c = table[(c ^ byte) & 0xFFU] ^ (c >> 8);
  return c ^ 0xFFFFFFFFU;
}

std::vector<unsigned char> Snapshot::serialize() const {
  std::vector<unsigned char> out;
  out.reserve(kHeaderBytes + records.size() * kRecordBytes);
  out.insert(out.end(), kMagic.begin(), kMagic.end());
  put_u32(out, static_cast<std::uint32_t>(kSnapshotVersion));
  put_u32(out, 0);  // CRC placeholder, patched below
  put_u64(out, sweep_id);
  put_u64(out, records.size());
  put_u64(out, kRecordBytes);
  for (const auto& r : records) put_record(out, r);

  // CRC over everything after the CRC field itself, so a flip anywhere
  // in the ids, counts, or payload is caught.
  const std::size_t crc_at = kMagic.size() + sizeof(std::uint32_t);
  const std::size_t body = crc_at + sizeof(std::uint32_t);
  const std::uint32_t crc =
      crc32(std::span(out).subspan(body));
  std::memcpy(out.data() + crc_at, &crc, sizeof(crc));
  return out;
}

Expected<Snapshot> Snapshot::parse(std::span<const unsigned char> bytes,
                                   const std::string& origin) {
  if (bytes.size() < kHeaderBytes)
    return corrupt(origin, "file shorter than the snapshot header (" +
                               std::to_string(bytes.size()) + " bytes)");
  if (!std::equal(kMagic.begin(), kMagic.end(), bytes.begin()))
    return corrupt(origin, "bad magic (not a dxbsp snapshot)");
  const unsigned char* p = bytes.data() + kMagic.size();
  const std::uint32_t version = read_u32(p);
  const std::uint32_t stored_crc = read_u32(p + 4);
  const std::uint64_t sweep_id = read_u64(p + 8);
  const std::uint64_t count = read_u64(p + 16);
  const std::uint64_t record_bytes = read_u64(p + 24);
  if (version != kSnapshotVersion) {
    // A retired version is only believed when the record size agrees
    // with what that version actually wrote — a self-consistent old
    // header is a stale checkpoint (kConfig: restart the sweep), while
    // a version field flipped by bit rot disagrees with the current
    // record size and stays kCorruptSnapshot. The version field sits
    // outside the CRC span, so this cross-check is its only guard.
    struct Retired {
      std::uint32_t version;
      std::uint64_t record_bytes;
    };
    constexpr Retired kRetired[] = {{1, (3 + 4 + 14 + 1) * 8},
                                    {2, (3 + 4 + 15 + 1 + 6) * 8}};
    for (const Retired& old : kRetired)
      if (version == old.version && record_bytes == old.record_bytes)
        return Error(ErrorCode::kConfig,
                     origin + ": snapshot format version " +
                         std::to_string(version) +
                         " predates this build (current " +
                         std::to_string(kSnapshotVersion) +
                         "); restart the sweep from scratch");
    return corrupt(origin, "unsupported snapshot version " +
                               std::to_string(version) + " (expected " +
                               std::to_string(kSnapshotVersion) + ")");
  }
  if (record_bytes != kRecordBytes)
    return corrupt(origin, "record size " + std::to_string(record_bytes) +
                               " does not match this build's " +
                               std::to_string(kRecordBytes));

  // The header count is untrusted: bound it by the bytes actually
  // present before believing it (no allocation sized from the header).
  const std::uint64_t payload = bytes.size() - kHeaderBytes;
  if (count > payload / kRecordBytes || payload != count * kRecordBytes)
    return corrupt(origin, "header claims " + std::to_string(count) +
                               " records but file holds " +
                               std::to_string(payload) + " payload bytes");

  const std::uint32_t actual_crc =
      crc32(bytes.subspan(kMagic.size() + 2 * sizeof(std::uint32_t)));
  if (actual_crc != stored_crc)
    return corrupt(origin, "CRC mismatch (stored " +
                               std::to_string(stored_crc) + ", computed " +
                               std::to_string(actual_crc) + ")");

  Snapshot snap;
  snap.sweep_id = sweep_id;
  snap.records.reserve(count);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(count);
  const unsigned char* rec = bytes.data() + kHeaderBytes;
  for (std::uint64_t i = 0; i < count; ++i, rec += kRecordBytes) {
    SnapshotRecord r = read_record(rec);
    if (!seen.insert(r.key).second)
      return corrupt(origin,
                     "duplicate point key " + std::to_string(r.key));
    snap.records.push_back(std::move(r));
  }
  return snap;
}

Expected<Snapshot> Snapshot::load(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is)
    return Error(ErrorCode::kIo, "Snapshot::load: cannot open " + path);
  std::vector<unsigned char> bytes((std::istreambuf_iterator<char>(is)),
                                   std::istreambuf_iterator<char>());
  if (is.bad())
    return Error(ErrorCode::kIo, "Snapshot::load: read failed for " + path);
  return parse(bytes, path);
}

CheckpointWriter::CheckpointWriter(std::string path, std::uint64_t sweep_id)
    : path_(std::move(path)), sweep_id_(sweep_id) {
  if (path_.empty())
    raise(ErrorCode::kConfig, "CheckpointWriter: empty path");
}

void CheckpointWriter::flush(std::span<const SnapshotRecord> records) {
  Snapshot snap;
  snap.sweep_id = sweep_id_;
  snap.records.assign(records.begin(), records.end());
  const std::vector<unsigned char> bytes = snap.serialize();

  // tmp -> fsync -> rename: the checkpoint at path_ is always a
  // complete, validated snapshot even if the process dies mid-flush.
  const std::string tmp = path_ + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0)
    raise(ErrorCode::kIo, "CheckpointWriter: cannot open " + tmp + ": " +
                              std::strerror(errno));
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      raise(ErrorCode::kIo, "CheckpointWriter: write failed for " + tmp +
                                ": " + std::strerror(err));
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const int err = errno;
    ::close(fd);
    raise(ErrorCode::kIo,
          "CheckpointWriter: fsync failed for " + tmp + ": " +
              std::strerror(err));
  }
  if (::close(fd) != 0)
    raise(ErrorCode::kIo, "CheckpointWriter: close failed for " + tmp + ": " +
                              std::strerror(errno));
  if (std::rename(tmp.c_str(), path_.c_str()) != 0)
    raise(ErrorCode::kIo, "CheckpointWriter: rename " + tmp + " -> " + path_ +
                              " failed: " + std::strerror(errno));
}

}  // namespace dxbsp::resilience
