#pragma once
// Versioned, CRC-guarded binary snapshots of in-progress sweep state.
//
// A sweep (one bench binary's parameter grid) is a set of points, each
// identified by a caller-chosen 64-bit key. A Snapshot records, for
// every completed point, the key, the RNG substream seed the point was
// generated with, the full BulkResult telemetry, and a few bench-defined
// auxiliary words — everything needed to re-emit that point's output
// rows without re-simulating, so a resumed sweep is byte-identical to an
// uninterrupted one.
//
// On-disk layout (little-endian, fixed field order — see
// docs/resilience.md):
//
//   u8  magic[8]   "DXSNAP01"
//   u32 version    (currently 3)
//   u32 crc32      IEEE CRC-32 over every byte AFTER this field
//   u64 sweep_id   fingerprint of (bench id, grid parameters, seed)
//   u64 point_count
//   u64 record_bytes   serialized size of one record (format guard)
//   records[point_count], each kRecordBytes long
//
// Loading validates magic, version, record size, payload length against
// the actual file size (before any allocation sized from the header),
// the CRC, and key uniqueness; any mismatch is Error{kCorruptSnapshot}.
// One deliberate exception: a header whose version AND record size agree
// on a *retired* format (v1 or v2) is a well-formed old checkpoint, not
// damage, and is refused with Error{kConfig} so the caller knows to
// restart the sweep rather than hunt for disk corruption.
// CheckpointWriter::flush is crash-atomic: tmp file -> fsync -> rename,
// so a checkpoint on disk is always either the old or the new complete
// snapshot, never a torn one.

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "resilience/error.hpp"
#include "sim/machine.hpp"

namespace dxbsp::resilience {

/// IEEE CRC-32 (the zlib/PNG polynomial), for snapshot integrity.
[[nodiscard]] std::uint32_t crc32(std::span<const unsigned char> data,
                                  std::uint32_t seed = 0) noexcept;

/// One completed grid point.
struct SnapshotRecord {
  std::uint64_t key = 0;        ///< caller-chosen grid-point id (unique)
  std::uint64_t rng_state = 0;  ///< RNG substream seed the point used
  std::uint64_t failed_requests = 0;  ///< degraded-operation count (0 = ok)
  std::array<std::uint64_t, 4> aux{};  ///< bench-defined (bit-cast doubles ok)
  sim::BulkResult result;       ///< full simulator telemetry
};

/// Serialized size of one record; bumping the format bumps kVersion.
/// Version 2 extended the record with max_location_contention and the
/// six CostBreakdown terms (PR 5 attribution); version 3 with the cache
/// tier's cache_misses / cache_evictions / max_proc_miss counters and
/// the seventh (cache_hit) breakdown term (PR 8). The per-op
/// BankLoadSketch is report-side only and deliberately not persisted —
/// no bench prints it, so resumed sweeps stay byte-identical without it.
inline constexpr std::uint64_t kSnapshotVersion = 3;
inline constexpr std::uint64_t kRecordBytes = (3 + 4 + 18 + 1 + 7) * 8;
inline constexpr std::uint64_t kHeaderBytes = 8 + 4 + 4 + 8 + 8 + 8;

/// A loaded (or in-construction) snapshot.
struct Snapshot {
  std::uint64_t sweep_id = 0;
  std::vector<SnapshotRecord> records;

  /// Serializes to the on-disk byte layout (header + records + CRC).
  [[nodiscard]] std::vector<unsigned char> serialize() const;

  /// Parses bytes in the on-disk layout. Never trusts a length field
  /// without checking it against the bytes actually present.
  [[nodiscard]] static Expected<Snapshot> parse(
      std::span<const unsigned char> bytes, const std::string& origin);

  /// Reads and parses `path`. A missing file is Error{kIo}; any
  /// validation failure is Error{kCorruptSnapshot}.
  [[nodiscard]] static Expected<Snapshot> load(const std::string& path);
};

/// Crash-atomic checkpoint persistence: each flush writes the complete
/// snapshot to `path` + ".tmp", fsyncs, and renames over `path`.
class CheckpointWriter {
 public:
  CheckpointWriter(std::string path, std::uint64_t sweep_id);

  /// Persists the given records; throws Error{kIo} on any failure.
  void flush(std::span<const SnapshotRecord> records);

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
  std::uint64_t sweep_id_;
};

}  // namespace dxbsp::resilience
