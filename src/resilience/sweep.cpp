#include "resilience/sweep.hpp"

#include <optional>
#include <unordered_map>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace dxbsp::resilience {

const char* sweep_status_name(SweepStatus status) noexcept {
  switch (status) {
    case SweepStatus::kCompleted: return "completed";
    case SweepStatus::kInterrupted: return "interrupted";
  }
  return "unknown";
}

void SweepReport::write_json(obs::JsonWriter& w) const {
  w.begin_object();
  w.member("status", sweep_status_name(status));
  w.member("cause", cancel_cause_name(cause));
  w.member("total", static_cast<std::uint64_t>(total));
  w.member("completed", static_cast<std::uint64_t>(completed));
  w.member("resumed", static_cast<std::uint64_t>(resumed));
  w.member("checkpoint", checkpoint);
  w.end_object();
}

std::uint64_t sweep_id(const std::string& bench,
                       std::initializer_list<std::uint64_t> params) {
  // Order-sensitive chain of mix64 over the bench name and parameters:
  // any difference in grid shape or seed yields a different id.
  std::uint64_t h = 0x64787362'73703031ULL;  // "dxbsp01"
  for (const char c : bench)
    h = util::mix64(h ^ static_cast<std::uint64_t>(
                            static_cast<unsigned char>(c)));
  for (const std::uint64_t p : params) h = util::mix64(h ^ p);
  return h;
}

SweepRunner::SweepRunner(std::uint64_t id, SweepOptions options)
    : id_(id), options_(std::move(options)) {
  // --resume without --checkpoint keeps checkpointing to the resume
  // file, so a twice-interrupted sweep still loses no work.
  if (options_.checkpoint_path.empty() && !options_.resume_path.empty())
    options_.checkpoint_path = options_.resume_path;
  if (options_.checkpoint_every == 0) options_.checkpoint_every = 1;
}

bool SweepRunner::has_record(std::uint64_t key) const noexcept {
  for (std::size_t i = 0; i < keys_.size(); ++i)
    if (keys_[i] == key)
      return done_[i]->load(std::memory_order_acquire);
  return false;
}

const SnapshotRecord& SweepRunner::record(std::uint64_t key) const {
  for (std::size_t i = 0; i < keys_.size(); ++i)
    if (keys_[i] == key) {
      if (!done_[i]->load(std::memory_order_acquire))
        raise(ErrorCode::kInternal,
              "SweepRunner::record: point " + std::to_string(key) +
                  " was not completed");
      return records_[i];
    }
  raise(ErrorCode::kInternal,
        "SweepRunner::record: unknown point key " + std::to_string(key));
}

void SweepRunner::flush_completed() {
  if (!writer_) return;
  // Flush cadence depends on thread interleaving: host stability.
  obs::MetricsRegistry::global()
      .counter("sweep.checkpoint_flushes", obs::Stability::kHost)
      .add();
  std::lock_guard lock(flush_mu_);
  std::vector<SnapshotRecord> done;
  done.reserve(records_.size());
  for (std::size_t i = 0; i < records_.size(); ++i)
    if (done_[i]->load(std::memory_order_acquire)) done.push_back(records_[i]);
  writer_->flush(done);
}

SweepReport SweepRunner::run(
    std::span<const std::uint64_t> keys,
    const std::function<SnapshotRecord(std::uint64_t)>& fn) {
  // Re-arm the token: a previous run's trip (deadline, watchdog stall,
  // signal) must not leak into this one, or a worker loop could never
  // run a second sweep after its first was interrupted. Nothing else
  // observes the token between runs — the per-run Deadline, Watchdog and
  // signal routing below are all scoped to run().
  token_.reset();
  keys_.assign(keys.begin(), keys.end());
  records_.assign(keys_.size(), SnapshotRecord{});
  done_.clear();
  done_.reserve(keys_.size());
  std::unordered_map<std::uint64_t, std::size_t> slot;
  slot.reserve(keys_.size());
  for (std::size_t i = 0; i < keys_.size(); ++i) {
    done_.push_back(std::make_unique<std::atomic<bool>>(false));
    if (!slot.emplace(keys_[i], i).second)
      raise(ErrorCode::kConfig, "SweepRunner: duplicate point key " +
                                    std::to_string(keys_[i]));
  }

  SweepReport report;
  report.total = keys_.size();

  // Resume: replay completed points from the snapshot. A missing file is
  // a fresh start (first run of a sweep that will checkpoint there); a
  // corrupt file or one from a different sweep is a hard error — silently
  // recomputing would mask data loss.
  if (!options_.resume_path.empty()) {
    auto loaded = Snapshot::load(options_.resume_path);
    if (!loaded.ok() && loaded.error().code() != ErrorCode::kIo)
      throw loaded.error();
    if (loaded.ok()) {
      const Snapshot& snap = loaded.value();
      if (snap.sweep_id != id_)
        raise(ErrorCode::kConfig,
              "SweepRunner: snapshot " + options_.resume_path +
                  " belongs to a different sweep (grid or seed changed?)");
      for (const SnapshotRecord& r : snap.records) {
        const auto it = slot.find(r.key);
        if (it == slot.end())
          raise(ErrorCode::kCorruptSnapshot,
                options_.resume_path + ": snapshot point key " +
                    std::to_string(r.key) + " is not in this grid");
        records_[it->second] = r;
        done_[it->second]->store(true, std::memory_order_release);
        ++report.resumed;
      }
    }
  }

  if (!options_.checkpoint_path.empty())
    writer_ = std::make_unique<CheckpointWriter>(options_.checkpoint_path,
                                                 id_);

  token_.set_deadline(Deadline(options_.deadline_seconds));
  std::optional<ScopedSignalCancel> signals;
  if (options_.handle_signals) signals.emplace(token_);
  std::optional<Watchdog> watchdog;
  if (options_.stall_seconds > 0)
    watchdog.emplace(token_, std::chrono::milliseconds(static_cast<long>(
                                 options_.stall_seconds * 1000.0)));

  std::vector<std::size_t> pending;
  for (std::size_t i = 0; i < keys_.size(); ++i)
    if (!done_[i]->load(std::memory_order_acquire)) pending.push_back(i);

  // One point: compute, publish, heartbeat. Point functions are pure in
  // their key, so a point abandoned mid-simulation (token tripped inside
  // Machine::run) is simply recomputed — identically — on resume.
  std::atomic<std::uint64_t> since_flush{0};
  std::atomic<std::uint64_t> done_count{report.resumed};
  auto run_point = [&](std::size_t pi) {
    const std::size_t i = pending[pi];
    records_[i] = fn(keys_[i]);
    records_[i].key = keys_[i];
    done_[i]->store(true, std::memory_order_release);
    token_.heartbeat();
    if (writer_ &&
        since_flush.fetch_add(1, std::memory_order_acq_rel) + 1 >=
            options_.checkpoint_every) {
      since_flush.store(0, std::memory_order_release);
      flush_completed();
    }
    // After the flush, so a progress observer that persists state sees
    // the checkpoint at least as far along as itself.
    if (options_.on_progress)
      options_.on_progress(done_count.fetch_add(1, std::memory_order_acq_rel) +
                               1,
                           keys_.size());
  };

  try {
    if (options_.threads > 1) {
      util::ThreadPool pool(options_.threads);
      pool.parallel_for(pending.size(), run_point, &token_);
    } else {
      for (std::size_t pi = 0; pi < pending.size(); ++pi) {
        if (token_.expired()) break;
        run_point(pi);
      }
    }
  } catch (const Error& e) {
    if (e.code() != ErrorCode::kInterrupted) {
      if (writer_) flush_completed();  // keep finished points on disk
      throw;
    }
  }

  // The final checkpoint always happens: an interrupted run's promise is
  // "everything completed so far is on disk".
  if (writer_) flush_completed();

  for (std::size_t i = 0; i < keys_.size(); ++i)
    if (done_[i]->load(std::memory_order_acquire)) ++report.completed;
  report.checkpoint = writer_ ? writer_->path() : "";
  // A sweep that finished every point is complete even if the token
  // tripped during the final one: the full output is valid.
  if (report.completed < report.total) {
    report.status = SweepStatus::kInterrupted;
    report.cause = token_.cause() == CancelCause::kNone
                       ? CancelCause::kCancelled
                       : token_.cause();
  }
  // Progress accounting for the run report: which points ran is a pure
  // function of the grid and the resume snapshot, not of --threads.
  auto& reg = obs::MetricsRegistry::global();
  reg.counter("sweep.points_total").add(report.total);
  reg.counter("sweep.points_completed").add(report.completed);
  reg.counter("sweep.points_resumed").add(report.resumed);
  return report;
}

}  // namespace dxbsp::resilience
