#pragma once
// Resumable, deadline-bounded execution of a parameter-grid sweep.
//
// SweepRunner drives one bench binary's grid: each point is a pure
// function of its 64-bit key (construct workload + machine, simulate,
// return a SnapshotRecord). The runner
//   * skips points already present in a --resume snapshot (after
//     verifying the snapshot's sweep_id matches this grid + seed);
//   * checkpoints crash-atomically after every `checkpoint_every`
//     completed points (and always once at the end, completed or not);
//   * installs SIGINT/SIGTERM handlers, an optional wall-clock deadline,
//     and an optional stall watchdog on its CancelToken, and stops
//     cleanly at the next point boundary (or mid-point, via the token
//     threaded into Machine/BankArray/ThreadPool) when any of them trip;
//   * optionally fans points out over a ThreadPool — results are stored
//     per-key, so emitted output is identical for every pool size.
//
// Because every point is recomputed from its key alone and completed
// points are replayed from the snapshot verbatim, a resumed sweep's
// output is byte-identical to an uninterrupted run's.

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "resilience/cancel.hpp"
#include "resilience/snapshot.hpp"
#include "util/thread_pool.hpp"

namespace dxbsp::obs {
class JsonWriter;
}

namespace dxbsp::resilience {

/// Fingerprint of a sweep: bench id plus every parameter that shapes the
/// grid or its RNG streams. Resume refuses a snapshot whose id differs.
[[nodiscard]] std::uint64_t sweep_id(const std::string& bench,
                                     std::initializer_list<std::uint64_t>
                                         params);

struct SweepOptions {
  std::string checkpoint_path;  ///< empty = no checkpointing
  std::string resume_path;      ///< empty = fresh run
  double deadline_seconds = 0;  ///< <= 0 = no deadline
  double stall_seconds = 0;     ///< <= 0 = no watchdog
  std::uint64_t checkpoint_every = 1;  ///< flush cadence (completed points)
  std::uint64_t threads = 0;    ///< 0/1 = serial; else pool of this size
  bool handle_signals = true;   ///< route SIGINT/SIGTERM to the token
  /// Called after every completed point (and after its checkpoint flush,
  /// when checkpointing) with (points done so far, grid total). Fleet
  /// workers hang heartbeats and partial-result publication off this;
  /// it runs on whichever thread finished the point.
  std::function<void(std::uint64_t, std::uint64_t)> on_progress;
};

enum class SweepStatus { kCompleted, kInterrupted };

/// Stable lower-case name ("completed" / "interrupted").
[[nodiscard]] const char* sweep_status_name(SweepStatus status) noexcept;

/// What happened; the structured "Interrupted outcome" of docs/resilience.md.
struct SweepReport {
  SweepStatus status = SweepStatus::kCompleted;
  CancelCause cause = CancelCause::kNone;  ///< why, when interrupted
  std::size_t total = 0;      ///< grid points in the sweep
  std::size_t completed = 0;  ///< points done (resumed + newly computed)
  std::size_t resumed = 0;    ///< points replayed from the snapshot
  std::string checkpoint;     ///< path holding the final checkpoint ("" = none)

  [[nodiscard]] bool ok() const noexcept {
    return status == SweepStatus::kCompleted;
  }

  /// Machine-readable emission: one JSON object with status, cause and
  /// the progress counters, written through the deterministic JsonWriter
  /// (so coordinators parse worker outcomes instead of scraping the
  /// human-formatted INTERRUPTED line).
  void write_json(obs::JsonWriter& w) const;
};

class SweepRunner {
 public:
  SweepRunner(std::uint64_t id, SweepOptions options);

  /// Runs fn(key) for every key not already in the resume snapshot.
  /// Keys must be unique. fn must be a pure function of its key and is
  /// invoked concurrently when threads > 1. Returns the report; after a
  /// kCompleted report every key has a record(). The runner's token is
  /// re-armed (reset) at entry, so a runner whose previous run tripped
  /// (deadline, watchdog, cancel) can simply be run again — cancellation
  /// sources only count from the moment run() starts.
  SweepReport run(std::span<const std::uint64_t> keys,
                  const std::function<SnapshotRecord(std::uint64_t)>& fn);

  /// Record of a completed point (valid after run()).
  [[nodiscard]] const SnapshotRecord& record(std::uint64_t key) const;
  [[nodiscard]] bool has_record(std::uint64_t key) const noexcept;

  /// The token threaded through the sweep (expose to Machine::set_cancel
  /// inside point functions, or cancel() it from tests).
  [[nodiscard]] CancelToken& token() noexcept { return token_; }

 private:
  void flush_completed();

  std::uint64_t id_;
  SweepOptions options_;
  CancelToken token_;
  std::vector<std::uint64_t> keys_;
  std::vector<SnapshotRecord> records_;       // slot i <-> keys_[i]
  std::vector<std::unique_ptr<std::atomic<bool>>> done_;
  std::unique_ptr<CheckpointWriter> writer_;
  std::mutex flush_mu_;
};

}  // namespace dxbsp::resilience
