#include "sim/bank_array.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "resilience/error.hpp"

namespace dxbsp::sim {

BankArray::BankArray(std::uint64_t num_banks, std::uint64_t delay,
                     BankCacheConfig cache, bool combining,
                     std::uint64_t ports)
    : delay_(delay),
      cache_(cache),
      combining_(combining),
      ports_(ports),
      free_at_(num_banks * ports, 0),
      load_(num_banks, 0) {
  if (num_banks == 0)
    raise(ErrorCode::kConfig, "BankArray: need at least one bank");
  if (delay == 0) raise(ErrorCode::kConfig, "BankArray: delay must be >= 1");
  if (ports == 0) raise(ErrorCode::kConfig, "BankArray: ports must be >= 1");
  if (cache_.lines > 0) {
    if (cache_.line_words == 0)
      raise(ErrorCode::kConfig, "BankArray: cache line_words must be >= 1");
    if (cache_.cached_delay == 0 || cache_.cached_delay > delay_)
      raise(ErrorCode::kConfig,
            "BankArray: cached_delay must be in [1, delay]");
    mru_.assign(num_banks * cache_.lines, ~0ULL);
  }
}

void BankArray::poll_cancel() {
  if (cancel_ != nullptr && (total_ & 0xFFFFU) == 0) {
    cancel_->heartbeat();
    cancel_->raise_if_expired("BankArray::serve");
  }
}

std::uint64_t BankArray::occupy(std::uint64_t bank, std::uint64_t arrival,
                                std::uint64_t busy) {
  // Serve on the earliest-free port of the bank. Single-port banks (the
  // common case) skip the port scan and the base-offset multiply.
  std::uint64_t* slot;
  if (ports_ == 1) {
    slot = &free_at_[bank];
  } else {
    std::uint64_t* ports = &free_at_[bank * ports_];
    std::uint64_t best = 0;
    for (std::uint64_t q = 1; q < ports_; ++q)
      if (ports[q] < ports[best]) best = q;
    slot = &ports[best];
  }
  const std::uint64_t start = std::max(arrival, *slot);
  last_start_ = start;
  last_combined_ = false;
  *slot = start + busy;
  const std::uint64_t count = ++load_[bank];
  max_load_ = std::max(max_load_, count);
  return *slot;
}

std::uint64_t BankArray::serve(std::uint64_t bank, std::uint64_t arrival,
                               std::uint64_t busy_scale) {
  ++total_;
  poll_cancel();
  if (busy_scale > 1) degraded_cycles_ += delay_ * (busy_scale - 1);
  return occupy(bank, arrival, delay_ * busy_scale);
}

std::uint64_t BankArray::serve_addr(std::uint64_t bank, std::uint64_t arrival,
                                    std::uint64_t addr,
                                    std::uint64_t busy_scale) {
  ++total_;
  poll_cancel();

  if (combining_) {
    const std::uint64_t* pend = pending_.find(addr);
    if (pend != nullptr && *pend > arrival) {
      // A request for this word is still queued or in service: ride it.
      ++combined_;
      last_start_ = arrival;  // no bank slot consumed
      last_combined_ = true;
      return *pend;
    }
  }

  std::uint64_t busy = delay_;
  if (cache_.lines > 0) {
    const std::uint64_t line = addr / cache_.line_words;
    std::uint64_t* const slots = &mru_[bank * cache_.lines];
    std::uint64_t* const end = slots + cache_.lines;
    std::uint64_t* const hit = std::find(slots, end, line);
    if (hit != end) {
      busy = cache_.cached_delay;
      ++hits_;
      // Move-to-front: one rotate of [front, hit] instead of the old
      // element-by-element shift-down.
      std::rotate(slots, hit, hit + 1);
    } else {
      // Miss: evict the LRU tail and insert at the front.
      std::rotate(slots, end - 1, end);
      slots[0] = line;
    }
  }

  if (busy_scale > 1) degraded_cycles_ += busy * (busy_scale - 1);
  const std::uint64_t end = occupy(bank, arrival, busy * busy_scale);
  if (combining_) pending_.insert_or_assign(addr, end);
  return end;
}

std::uint64_t BankArray::serve_run(std::uint64_t bank,
                                   const std::uint64_t* arrival,
                                   std::uint64_t count) {
  // The whole FIFO queue of one bank in one pass: start_k =
  // max(arrival_k, free), free = start_k + d. The chain is a serial
  // recurrence, but each iteration is two ALU ops on registers plus one
  // sequential load — no event queue, no port scan, no per-request
  // counter traffic, no per-request store.
  const std::uint64_t d = delay_;
  std::uint64_t free = free_at_[bank];
  for (std::uint64_t k = 0; k < count; ++k) {
    const std::uint64_t start = std::max(arrival[k], free);
    free = start + d;
  }
  free_at_[bank] = free;
  last_start_ = free - d;
  last_combined_ = false;
  const std::uint64_t load = load_[bank] + count;
  load_[bank] = load;
  max_load_ = std::max(max_load_, load);
  total_ += count;
  if (cancel_ != nullptr) {
    cancel_->heartbeat();
    cancel_->raise_if_expired("BankArray::serve_run");
  }
  return free;
}

void BankArray::finish_chain(const std::uint64_t* counts, std::uint64_t total,
                             std::uint64_t final_start) {
  const std::uint64_t nb = num_banks();
  for (std::uint64_t b = 0; b < nb; ++b) {
    const std::uint64_t load = load_[b] + counts[b];
    load_[b] = load;
    max_load_ = std::max(max_load_, load);
  }
  total_ += total;
  last_start_ = final_start;
  last_combined_ = false;
  if (cancel_ != nullptr) {
    cancel_->heartbeat();
    cancel_->raise_if_expired("BankArray::finish_chain");
  }
}

void BankArray::publish(obs::MetricsRegistry& reg) const {
  reg.counter("bank.requests").add(total_);
  // A hit counter is only meaningful when some cache can produce hits;
  // an unconditional zero row on uncached machines reads as "cache
  // present, cold" (issue: retired misleading counter).
  if (cache_.lines > 0) reg.counter("bank.cache_hits").add(hits_);
  reg.counter("bank.combined").add(combined_);
  reg.counter("bank.degraded_cycles").add(degraded_cycles_);
  reg.gauge("bank.max_load").observe(max_load_);
}

void BankArray::reset(std::size_t expected_requests) {
  std::fill(free_at_.begin(), free_at_.end(), 0);
  std::fill(load_.begin(), load_.end(), 0);
  std::fill(mru_.begin(), mru_.end(), ~0ULL);
  pending_.clear();
  // Size the combining table for the whole bulk op up front (a no-op
  // once grown: reserve never shrinks), so serve_addr never rehashes.
  if (combining_ && expected_requests > 0) pending_.reserve(expected_requests);
  max_load_ = 0;
  total_ = 0;
  hits_ = 0;
  combined_ = 0;
  degraded_cycles_ = 0;
}

std::uint64_t BankArray::free_at(std::uint64_t bank) const {
  // Unchecked indexing, consistent with occupy(): this sits on the
  // per-event trace path and bank ids are validated at entry to the
  // bulk op, not per query. Single-port banks skip the scan.
  if (ports_ == 1) return free_at_[bank];
  const std::uint64_t* ports = &free_at_[bank * ports_];
  std::uint64_t best = ports[0];
  for (std::uint64_t q = 1; q < ports_; ++q) best = std::min(best, ports[q]);
  return best;
}

}  // namespace dxbsp::sim
