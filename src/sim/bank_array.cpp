#include "sim/bank_array.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "resilience/error.hpp"

namespace dxbsp::sim {

BankArray::BankArray(std::uint64_t num_banks, std::uint64_t delay,
                     BankCacheConfig cache, bool combining,
                     std::uint64_t ports)
    : delay_(delay),
      cache_(cache),
      combining_(combining),
      ports_(ports),
      free_at_(num_banks * ports, 0),
      load_(num_banks, 0) {
  if (num_banks == 0)
    raise(ErrorCode::kConfig, "BankArray: need at least one bank");
  if (delay == 0) raise(ErrorCode::kConfig, "BankArray: delay must be >= 1");
  if (ports == 0) raise(ErrorCode::kConfig, "BankArray: ports must be >= 1");
  if (cache_.lines > 0) {
    if (cache_.line_words == 0)
      raise(ErrorCode::kConfig, "BankArray: cache line_words must be >= 1");
    if (cache_.cached_delay == 0 || cache_.cached_delay > delay_)
      raise(ErrorCode::kConfig,
            "BankArray: cached_delay must be in [1, delay]");
    mru_.assign(num_banks * cache_.lines, ~0ULL);
  }
}

void BankArray::poll_cancel() {
  if (cancel_ != nullptr && (total_ & 0xFFFFU) == 0) {
    cancel_->heartbeat();
    cancel_->raise_if_expired("BankArray::serve");
  }
}

std::uint64_t BankArray::occupy(std::uint64_t bank, std::uint64_t arrival,
                                std::uint64_t busy) {
  // Serve on the earliest-free port of the bank.
  std::uint64_t* ports = &free_at_[bank * ports_];
  std::uint64_t best = 0;
  for (std::uint64_t q = 1; q < ports_; ++q)
    if (ports[q] < ports[best]) best = q;
  std::uint64_t& free_at = ports[best];
  const std::uint64_t start = std::max(arrival, free_at);
  last_start_ = start;
  last_combined_ = false;
  free_at = start + busy;
  const std::uint64_t count = ++load_[bank];
  max_load_ = std::max(max_load_, count);
  return free_at;
}

std::uint64_t BankArray::serve(std::uint64_t bank, std::uint64_t arrival,
                               std::uint64_t busy_scale) {
  ++total_;
  poll_cancel();
  if (busy_scale > 1) degraded_cycles_ += delay_ * (busy_scale - 1);
  return occupy(bank, arrival, delay_ * busy_scale);
}

std::uint64_t BankArray::serve_addr(std::uint64_t bank, std::uint64_t arrival,
                                    std::uint64_t addr,
                                    std::uint64_t busy_scale) {
  ++total_;
  poll_cancel();

  if (combining_) {
    const auto it = pending_.find(addr);
    if (it != pending_.end() && it->second > arrival) {
      // A request for this word is still queued or in service: ride it.
      ++combined_;
      last_start_ = arrival;  // no bank slot consumed
      last_combined_ = true;
      return it->second;
    }
  }

  std::uint64_t busy = delay_;
  if (cache_.lines > 0) {
    const std::uint64_t line = addr / cache_.line_words;
    std::uint64_t* slots = &mru_[bank * cache_.lines];
    std::uint64_t pos = cache_.lines;
    for (std::uint64_t i = 0; i < cache_.lines; ++i) {
      if (slots[i] == line) {
        pos = i;
        break;
      }
    }
    if (pos < cache_.lines) {
      busy = cache_.cached_delay;
      ++hits_;
    }
    // Move-to-front (insert on miss, refresh on hit).
    const std::uint64_t last = std::min(pos, cache_.lines - 1);
    for (std::uint64_t i = last; i > 0; --i) slots[i] = slots[i - 1];
    slots[0] = line;
  }

  if (busy_scale > 1) degraded_cycles_ += busy * (busy_scale - 1);
  const std::uint64_t end = occupy(bank, arrival, busy * busy_scale);
  if (combining_) pending_[addr] = end;
  return end;
}

void BankArray::publish(obs::MetricsRegistry& reg) const {
  reg.counter("bank.requests").add(total_);
  reg.counter("bank.cache_hits").add(hits_);
  reg.counter("bank.combined").add(combined_);
  reg.counter("bank.degraded_cycles").add(degraded_cycles_);
  reg.gauge("bank.max_load").observe(max_load_);
}

void BankArray::reset() {
  std::fill(free_at_.begin(), free_at_.end(), 0);
  std::fill(load_.begin(), load_.end(), 0);
  std::fill(mru_.begin(), mru_.end(), ~0ULL);
  pending_.clear();
  max_load_ = 0;
  total_ = 0;
  hits_ = 0;
  combined_ = 0;
  degraded_cycles_ = 0;
}

std::uint64_t BankArray::free_at(std::uint64_t bank) const {
  const std::uint64_t* ports = &free_at_.at(bank * ports_);
  std::uint64_t best = ports[0];
  for (std::uint64_t q = 1; q < ports_; ++q) best = std::min(best, ports[q]);
  return best;
}

}  // namespace dxbsp::sim
