#pragma once
// The bank array: per-bank FIFO service with a fixed busy period d,
// optionally refined with a per-bank line cache ([HS93]) and request
// combining (Ranade-style).
//
// A bank accepts a request only every d cycles ("bank delay"); a request
// arriving while the bank is busy queues (FIFO by arrival). With caching
// enabled, each bank keeps an MRU list of recently touched lines and
// serves hits in `cached_delay` cycles. With combining enabled, a
// request for a word that is already queued or in service at its bank is
// merged with the pending one and occupies no extra bank time.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "resilience/cancel.hpp"
#include "util/flat_map.hpp"

namespace dxbsp::obs {
class MetricsRegistry;
}

namespace dxbsp::sim {

/// Optional bank-cache parameters (0 lines disables caching).
struct BankCacheConfig {
  std::uint64_t lines = 0;        ///< MRU lines per bank
  std::uint64_t line_words = 8;   ///< words per line
  std::uint64_t cached_delay = 1; ///< busy period on a hit
};

/// Per-bank FIFO servers with service period `delay`.
class BankArray {
 public:
  BankArray(std::uint64_t num_banks, std::uint64_t delay,
            BankCacheConfig cache = {}, bool combining = false,
            std::uint64_t ports = 1);

  /// Serves a request arriving at bank `bank` at time `arrival`.
  /// Returns the completion time (service start + busy period). Arrivals
  /// at a given bank must be presented in nondecreasing arrival order
  /// (the machine's event loop guarantees this). This path never caches
  /// or combines (no address is known). `busy_scale` multiplies the busy
  /// period (fault injection: a transiently slow bank); the excess over
  /// the nominal period is accounted in degraded_cycles().
  std::uint64_t serve(std::uint64_t bank, std::uint64_t arrival,
                      std::uint64_t busy_scale = 1);

  /// Serves a request for word `addr`, applying caching and combining
  /// when configured. Must also be called in nondecreasing arrival order
  /// per bank.
  std::uint64_t serve_addr(std::uint64_t bank, std::uint64_t arrival,
                           std::uint64_t addr, std::uint64_t busy_scale = 1);

  /// Whether serve_run() may replace a sequence of unscaled serve (or,
  /// when `address_aware`, serve_addr) calls: single-port banks with —
  /// for the address-aware path — neither combining nor a bank cache,
  /// so service time is the unconditional FIFO free-chain recurrence.
  [[nodiscard]] bool batchable(bool address_aware) const noexcept {
    return ports_ == 1 &&
           (!address_aware || (!combining_ && cache_.lines == 0));
  }

  /// Batched FIFO service of one bank's pop-ordered arrival run (the
  /// SoA kernel's contiguous per-bank bucket, docs/performance.md
  /// §soa). Serves the `count` arrivals in `arrival[0..count)` in order
  /// and returns the completion time of the LAST one — with delay >= 1
  /// completions strictly increase along a run, so that is also the
  /// run's maximum. Arrivals must be nondecreasing, and batchable(...)
  /// must hold. Equivalent to `count` unscaled serve() calls: one
  /// branch-free chained recurrence over a sequential stream, with
  /// loads/totals updated once.
  std::uint64_t serve_run(std::uint64_t bank, const std::uint64_t* arrival,
                          std::uint64_t count);

  /// Fused-chain variant of the batched kernels (docs/performance.md
  /// §soa): exposes the raw per-bank free-time array so the SoA kernel
  /// can run the FIFO recurrence fin = max(arrival, chain[b]) + delay()
  /// inline in its pop-order loop — profitable while the array stays
  /// cache-resident, where it beats bucketing by skipping the bucket
  /// scatter entirely. batchable(...) must hold (single-port banks, and
  /// no caching/combining on the address-aware path). The caller MUST
  /// follow with exactly one finish_chain() to commit the counters the
  /// chained serves bypassed.
  [[nodiscard]] std::uint64_t* open_chain() noexcept { return free_at_.data(); }

  /// Commits a fused-chain pass: `counts[b]` requests were chained onto
  /// bank b (counts has num_banks() entries, summing to `total`), and
  /// the final request in pop order started service at `final_start`.
  /// Leaves every counter exactly as `total` serve() calls would have.
  void finish_chain(const std::uint64_t* counts, std::uint64_t total,
                    std::uint64_t final_start);

  [[nodiscard]] std::uint64_t num_banks() const noexcept {
    return static_cast<std::uint64_t>(load_.size());
  }
  [[nodiscard]] std::uint64_t ports() const noexcept { return ports_; }
  [[nodiscard]] std::uint64_t delay() const noexcept { return delay_; }

  /// Requests counted against the busiest bank so far (combined requests
  /// do not count — they consume no bank time).
  [[nodiscard]] std::uint64_t max_load() const noexcept { return max_load_; }

  /// Total requests presented (including combined ones).
  [[nodiscard]] std::uint64_t total_served() const noexcept { return total_; }

  /// Cache hits (0 unless caching is configured).
  [[nodiscard]] std::uint64_t cache_hits() const noexcept { return hits_; }

  /// Requests merged by combining (0 unless combining is configured).
  [[nodiscard]] std::uint64_t combined() const noexcept { return combined_; }

  /// Extra busy cycles incurred by scaled (degraded) service: the sum of
  /// busy·(scale-1) over all serves (0 without fault injection).
  [[nodiscard]] std::uint64_t degraded_cycles() const noexcept {
    return degraded_cycles_;
  }

  /// Per-bank request counts (serviced, i.e. excluding combined).
  [[nodiscard]] const std::vector<std::uint64_t>& loads() const noexcept {
    return load_;
  }

  /// Earliest time any port of the given bank becomes free.
  [[nodiscard]] std::uint64_t free_at(std::uint64_t bank) const;

  /// Service start time of the most recent serve/serve_addr call (for a
  /// combined request: the arrival time, since it occupied no bank slot).
  [[nodiscard]] std::uint64_t last_start() const noexcept {
    return last_start_;
  }
  /// Whether the most recent serve_addr call was merged by combining.
  [[nodiscard]] bool last_combined() const noexcept { return last_combined_; }

  /// Publishes this array's counters into `reg` under the "bank." prefix
  /// (requests served, cache hits, combined, degraded cycles; max load
  /// as a max-gauge). Called by Machine at the end of each bulk op.
  void publish(obs::MetricsRegistry& reg) const;

  /// Resets all banks to idle and clears statistics.
  /// `expected_requests` (the upcoming bulk op's size, 0 = unknown)
  /// pre-sizes the combining table so the hot loop never rehashes;
  /// capacity is kept across resets either way.
  void reset(std::size_t expected_requests = 0);

  /// Attaches a cancellation token (non-owning; nullptr detaches). The
  /// serve paths poll it every 64Ki requests and abort with
  /// Error{kInterrupted} once it trips, so even a bank-level hot loop
  /// driven outside Machine::run stops promptly.
  void set_cancel(const resilience::CancelToken* token) noexcept {
    cancel_ = token;
  }

 private:
  void poll_cancel();

  std::uint64_t occupy(std::uint64_t bank, std::uint64_t arrival,
                       std::uint64_t busy);

  std::uint64_t delay_;
  BankCacheConfig cache_;
  bool combining_;
  std::uint64_t ports_;

  // Port free times, flattened: bank b's ports occupy
  // free_at_[b*ports_ .. (b+1)*ports_).
  std::vector<std::uint64_t> free_at_;
  std::vector<std::uint64_t> load_;
  // Per-bank MRU line ids, flattened: bank b owns
  // mru_[b*cache_.lines .. (b+1)*cache_.lines). ~0 = empty slot.
  std::vector<std::uint64_t> mru_;
  // Combining: pending service completion per word (an address lives in
  // exactly one bank, so a single map is sound). Open-addressing flat
  // map, reserved to the bulk-op size by reset(); stale entries are
  // pruned lazily (the `> arrival` check ignores them).
  util::FlatMap64 pending_;

  const resilience::CancelToken* cancel_ = nullptr;
  std::uint64_t max_load_ = 0;
  std::uint64_t total_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t combined_ = 0;
  std::uint64_t degraded_cycles_ = 0;
  std::uint64_t last_start_ = 0;
  bool last_combined_ = false;
};

}  // namespace dxbsp::sim
