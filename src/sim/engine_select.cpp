#include "sim/engine_select.hpp"

#include <algorithm>

#include "util/bits.hpp"

namespace dxbsp::sim {

obs::EngineChoice EngineSelector::decide(const EngineFeatures& f) const {
  if (forced_) return *forced_;
  // The specialized fast paths, when exact, always beat a scheduler:
  // they skip the event queue entirely.
  if (f.eligible_soa) return obs::EngineChoice::kSoA;
  if (f.eligible_dense) return obs::EngineChoice::kDense;
  // General (scheduled) path: choose the queue by live-event
  // population. Tight windows keep at most p·window events in flight —
  // the binary heap's compact layout beats the wheel's bucket
  // bookkeeping at that scale. Large windows put thousands of
  // near-monotone events in flight, the regime the calendar wheel is
  // built for; that holds under fault plans too (retry backoffs pile
  // thousands of far-future events, which the wheel spreads across
  // buckets while a heap pays log(live) moves on every one).
  if (f.processors * f.window <= kHeapEventLimit)
    return obs::EngineChoice::kHeap;
  return obs::EngineChoice::kCalendar;
}

std::uint64_t EngineSelector::h_bank_estimate(const EngineFeatures& f) const {
  const std::uint64_t uniform =
      f.banks > 0 ? util::ceil_div(f.n, f.banks) : 0;
  if (last_n_ == 0) return uniform;
  // Scale last superstep's measured skew to this op's size. Integer
  // arithmetic only: the estimate must be bit-identical everywhere.
  const std::uint64_t scaled =
      last_n_ > 0 ? (last_h_bank_ * f.n) / last_n_ : 0;
  return std::max(uniform, scaled);
}

std::uint64_t EngineSelector::predict(const EngineFeatures& f) const {
  const std::uint64_t issue = f.gap * f.h_proc;
  const std::uint64_t bank = f.bank_delay * h_bank_estimate(f);
  return 2 * f.latency + std::max(issue, bank);
}

void EngineSelector::observe(const obs::CostBreakdown& breakdown,
                             std::uint64_t h_bank, std::uint64_t n) noexcept {
  std::uint8_t best = 0;
  std::uint64_t best_v = 0;
  for (std::size_t i = 0; i < obs::kCostTerms; ++i) {
    const std::uint64_t v = obs::cost_term_value(breakdown, i);
    if (v > best_v) {
      best_v = v;
      best = static_cast<std::uint8_t>(i);
    }
  }
  last_binding_ = best_v > 0 ? best : obs::kNoBindingTerm;
  last_h_bank_ = h_bank;
  last_n_ = n;
}

}  // namespace dxbsp::sim
