#pragma once
// Adaptive engine selection for Machine::run (docs/performance.md
// §selector): classify each bulk operation from cheap pre-dispatch
// features and dispatch it to the execution strategy the (d,x)-BSP cost
// shape says should win.
//
// Features (all O(1), computed before any per-element work):
//   * h_proc = ceil(n/p), the issue-pipeline depth, and the slackness
//     window min(S, h_proc) — whether the completion window can bind;
//   * the fault-plan fingerprint — whether retries/failover are possible;
//   * a bank-load estimate: ceil(n/B) uniform floor, sharpened by the
//     previous superstep's measured h_bank scaled to this op's n (the
//     hot-set skew persists across supersteps of one workload);
//   * the previous superstep's binding cost term (obs::CostBreakdown):
//     window-bound vs bank-bound vs retry-heavy, measured cycle-exactly.
//
// The decision is a pure function of the features (plus the per-machine
// memory of the previous superstep), so it is deterministic across
// hosts, thread counts and serial-vs-fleet execution. Machine verifies
// eligibility and demotes an infeasible choice (recorded as fallback in
// the selector log) instead of trusting the policy blindly.

#include <cstdint>
#include <optional>

#include "obs/attribution.hpp"
#include "obs/selector.hpp"

namespace dxbsp::sim {

/// Pre-dispatch description of one bulk operation.
struct EngineFeatures {
  std::uint64_t n = 0;
  std::uint64_t processors = 0;
  std::uint64_t banks = 0;
  std::uint64_t gap = 1;
  std::uint64_t bank_delay = 1;
  std::uint64_t latency = 0;
  std::uint64_t h_proc = 0;  ///< ceil(n/p) == max per-proc request count
  std::uint64_t window = 0;  ///< min(slackness, h_proc)
  std::uint64_t plan_fingerprint = 0;  ///< 0 = no fault plan
  bool has_plan = false;
  /// No plan and the window never binds: the dense fast path is exact.
  bool eligible_dense = false;
  /// Dense-eligible AND ideal network, no cache tier, no tracer, no
  /// per-request timing: the SoA batched kernel is exact.
  bool eligible_soa = false;
};

/// The policy plus its per-machine one-superstep memory. Stateless apart
/// from that memory and the test-only force hook; reset() restores the
/// initial state (bench::Obs re-attaches per sweep point, so serial,
/// threaded and fleet execution see identical decision sequences).
class EngineSelector {
 public:
  /// Scheduler-population threshold: below p·window live events the
  /// binary heap's cache footprint beats the calendar wheel's bucket
  /// scan; above it the wheel's O(1) amortized pop wins.
  static constexpr std::uint64_t kHeapEventLimit = 4096;

  [[nodiscard]] obs::EngineChoice decide(const EngineFeatures& f) const;

  /// Integer (d,x)-BSP prediction for the selector log:
  /// 2L + max(g·h_proc, d·h_bank_est).
  [[nodiscard]] std::uint64_t predict(const EngineFeatures& f) const;

  /// Bank-load estimate used by predict(): the uniform floor ceil(n/B),
  /// sharpened by the previous superstep's measured skew when available.
  [[nodiscard]] std::uint64_t h_bank_estimate(const EngineFeatures& f) const;

  /// Feeds back one completed superstep's measured shape.
  void observe(const obs::CostBreakdown& breakdown, std::uint64_t h_bank,
               std::uint64_t n) noexcept;

  /// Binding term of the previous superstep (index into
  /// obs::cost_term_name; obs::kNoBindingTerm before the first one).
  [[nodiscard]] std::uint8_t last_binding() const noexcept {
    return last_binding_;
  }

  void reset() noexcept {
    last_binding_ = obs::kNoBindingTerm;
    last_h_bank_ = 0;
    last_n_ = 0;
  }

  /// Test hook: pin the raw choice (Machine still demotes it when
  /// ineligible — the forced-misprediction fallback under test).
  void force(std::optional<obs::EngineChoice> choice) noexcept {
    forced_ = choice;
  }
  [[nodiscard]] std::optional<obs::EngineChoice> forced() const noexcept {
    return forced_;
  }

 private:
  std::uint8_t last_binding_ = obs::kNoBindingTerm;
  std::uint64_t last_h_bank_ = 0;
  std::uint64_t last_n_ = 0;
  std::optional<obs::EngineChoice> forced_;
};

}  // namespace dxbsp::sim
