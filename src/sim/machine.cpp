#include "sim/machine.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <string>
#include <type_traits>
#include <vector>

#include "obs/drift.hpp"
#include "obs/metrics.hpp"
#include "resilience/error.hpp"
#include "util/bits.hpp"
#include "util/calendar_queue.hpp"
#include "util/scratch.hpp"
#include "util/soa.hpp"

namespace dxbsp::sim {

namespace {

/// Trace-record helper: compiles to nothing with DXBSP_OBS_TRACE=0 and
/// to a single null test when tracing is compiled in but not attached.
inline void rec([[maybe_unused]] obs::TraceRing* ring,
                [[maybe_unused]] obs::TraceKind kind,
                [[maybe_unused]] std::uint64_t ts,
                [[maybe_unused]] std::uint64_t dur,
                [[maybe_unused]] std::uint64_t a,
                [[maybe_unused]] std::uint64_t b) noexcept {
  if constexpr (obs::kTraceCompiledIn) {
    if (ring != nullptr) ring->record({ts, dur, a, b, kind});
  }
}

/// Publishes one bulk operation's telemetry into the global metrics
/// registry. Every update is commutative (docs/observability.md), so
/// aggregate values are identical for any sweep-thread interleaving.
void publish_bulk(const BulkResult& res, std::uint64_t failed,
                  const BankArray& banks, const Network& net,
                  const cache::CacheTier* tier = nullptr) {
  auto& reg = obs::MetricsRegistry::global();
  reg.counter("sim.bulk_ops").add();
  reg.counter("sim.requests").add(res.n);
  reg.counter("sim.cycles").add(res.cycles);
  reg.counter("sim.completed").add(res.completed);
  reg.counter("sim.failed_requests").add(failed);
  reg.counter("sim.stall_cycles").add(res.stall_cycles);
  reg.gauge("sim.max_cycles").observe(res.cycles);
  reg.gauge("sim.max_bank_load").observe(res.max_bank_load);
  reg.gauge("sim.max_proc_requests").observe(res.max_proc_requests);
  reg.histogram("sim.bulk_cycles", obs::pow4_bounds()).observe(res.cycles);
  reg.counter("fault.retries").add(res.retries);
  reg.counter("fault.nacks").add(res.nacks);
  reg.counter("fault.failovers").add(res.failovers);
  reg.counter("fault.degraded_cycles").add(res.degraded_cycles);
  // Cost attribution (docs/observability.md §attribution): per-term
  // cycle totals of the critical-path decomposition, the hottest
  // location, and the per-op max bank load distribution.
  for (std::size_t i = 0; i < obs::kCostTerms; ++i)
    reg.counter(std::string("attr.") + obs::cost_term_name(i) + "_cycles")
        .add(obs::cost_term_value(res.breakdown, i));
  reg.counter("attr.supersteps").add();
  reg.gauge("attr.max_location_contention")
      .observe(res.max_location_contention);
  reg.histogram("attr.bank_load_max", obs::pow4_bounds())
      .observe(res.bank_sketch.max);
  banks.publish(reg);
  net.publish(reg);
  // Processor-cache tier (docs/cache.md). Published only when the tier
  // exists so uncached machines keep their exact pre-tier metric set
  // (byte-identical reports). bank.cache_hits folds together with the
  // bank-side MRU hits banks.publish() just added — both are "requests
  // some cache kept off a bank pipeline".
  if (tier != nullptr) {
    reg.counter("bank.cache_hits").add(tier->hits());
    reg.counter("bank.cache_misses").add(tier->misses());
    reg.counter("bank.cache_evictions").add(tier->writebacks());
  }
}

Network make_network(const MachineConfig& cfg) {
  if (cfg.butterfly_network) {
    return Network::butterfly(cfg.latency, cfg.link_period, cfg.banks(),
                              cfg.processors);
  }
  return Network(cfg.latency, cfg.network_sections, cfg.section_period,
                 cfg.banks());
}

}  // namespace

namespace {

/// Per-processor issue state during one bulk operation (reference
/// engine; the calendar engine uses the flattened ProcFlat).
struct ProcState {
  std::uint64_t begin = 0;       // first element index (block) / proc id (cyclic)
  std::uint64_t count = 0;       // elements owned
  std::uint64_t issued = 0;      // elements issued so far
  std::uint64_t last_issue = 0;  // issue time of the previous request
  std::uint64_t stall = 0;       // accumulated stall cycles
  // Ring of completion times for the last `window` requests (slackness).
  std::vector<std::uint64_t> completions;
};

/// Calendar-engine per-processor state: POD so the whole array lives in
/// one reusable scratch vector; the completion ring is a slice
/// [ring_off, ring_off + window) of one shared flat ring buffer.
struct ProcFlat {
  std::uint64_t count = 0;
  std::uint64_t issued = 0;
  std::uint64_t last_issue = 0;
  std::uint64_t stall = 0;
  std::uint64_t ring_off = 0;
  std::uint64_t window = 0;
};

struct Event {
  std::uint64_t depart;  // time the request enters the network
  std::uint64_t elem;    // element index (only meaningful for retries)
  std::uint32_t proc;
  std::uint32_t attempt;  // 0 = fresh issue; k >= 1 = k-th retry
  // Min-queue by (depart, proc, attempt, elem): the tiebreaks make the
  // simulation deterministic regardless of scheduler internals, and both
  // engines (heap and calendar queue) pop in exactly this order.
  friend bool operator>(const Event& a, const Event& b) {
    if (a.depart != b.depart) return a.depart > b.depart;
    if (a.proc != b.proc) return a.proc > b.proc;
    if (a.attempt != b.attempt) return a.attempt > b.attempt;
    return a.elem > b.elem;
  }
};

struct EventKey {
  std::uint64_t operator()(const Event& e) const noexcept { return e.depart; }
};

/// Binary-heap scheduler with the CalendarQueue's push/pop/reset shape,
/// so the general event loop is generic over the two. Storage persists
/// across bulk ops (reset() keeps capacity). Pop order is the total
/// Event order — identical to both the calendar wheel and the reference
/// engine's priority_queue.
struct EventHeap {
  std::vector<Event> events;
  void reset() noexcept { events.clear(); }
  [[nodiscard]] bool empty() const noexcept { return events.empty(); }
  void push(const Event& e) {
    events.push_back(e);
    std::push_heap(events.begin(), events.end(), std::greater<>{});
  }
  Event pop() {
    std::pop_heap(events.begin(), events.end(), std::greater<>{});
    const Event e = events.back();
    events.pop_back();
    return e;
  }
};

// Scratch-arena slot names (uint64 buffers).
constexpr std::size_t kRouteSlot = 0;  // addr → bank, one per element
constexpr std::size_t kRingSlot = 1;   // flattened completion rings
// SoA kernel planes (docs/performance.md §soa).
constexpr std::size_t kBktSlot = 2;   // bank-bucketed arrivals, pop order
constexpr std::size_t kCntSlot = 3;   // per-bank count / running offset
constexpr std::size_t kLastSlot = 4;  // per-bank last {pop, elem, arrival}

// SoA kernel split (docs/performance.md §soa): up to this many banks the
// per-bank free-time array (8 B per bank, 256 KiB at the limit) stays
// cache-resident and the fused pop-order chain wins; beyond it, bucket
// per bank first so each chain runs on contiguous state.
constexpr std::uint64_t kFusedChainBanks = 1ULL << 15;

}  // namespace

/// Reusable engine state: allocated on first bulk op, after which a
/// steady-state sweep performs no per-op allocations here
/// (docs/performance.md §scratch).
struct Machine::EngineState {
  util::ScratchArena arena;
  util::CalendarQueue<Event, EventKey> queue{4096};
  EventHeap heap;
};

Machine::Machine(MachineConfig config,
                 std::shared_ptr<const mem::BankMapping> mapping)
    : config_(std::move(config)),
      mapping_(std::move(mapping)),
      banks_(config_.banks(), config_.bank_delay,
             BankCacheConfig{config_.bank_cache_lines,
                             config_.cache_line_words, config_.cached_delay},
             config_.combine_requests, config_.bank_ports),
      network_(make_network(config_)) {
  config_.validate();
  if (!mapping_) raise(ErrorCode::kConfig, "Machine: null mapping");
  if (mapping_->num_banks() != config_.banks())
    raise(ErrorCode::kConfig,
          "Machine: mapping bank count does not match configuration");
  if (config_.cache.enabled())
    tier_ = std::make_unique<cache::CacheTier>(config_.cache,
                                               config_.processors);
}

void Machine::pin_scratchpad(std::span<const std::uint64_t> line_ids) {
  if (tier_ == nullptr || config_.cache.mode != cache::Mode::kScratchpad)
    raise(ErrorCode::kConfig,
          "Machine::pin_scratchpad: cache tier is not in scratchpad mode");
  tier_->pin(line_ids);
}

void Machine::line_writeback(std::uint64_t addr, std::uint64_t depart,
                             std::uint64_t proc, bool whole_line,
                             BulkResult& res) {
  // Whole-line transfers (dirty evictions) route by line index, not by
  // the line's base word address: line bases are multiples of cache-line
  // words, so under word-interleaved mapping every line would alias to
  // the few banks dividing the line size (B = 8 with 8-word lines sends
  // ALL eviction traffic to bank 0). Striding by line id spreads line
  // transfers the way lines themselves are spread. Write-through
  // forwards are single-word stores and keep the word's own bank.
  const std::uint64_t line = addr / config_.cache.line_words;
  std::uint64_t bank = mapping_->bank_of(whole_line ? line : addr);
  const std::uint64_t arrival = network_.traverse(bank, depart, proc);
  if (plan_ != nullptr && plan_->dead_at(bank, arrival)) {
    const std::uint64_t spare = plan_->failover(bank, addr, arrival);
    if (spare == fault::kNoBank) return;  // no requester to NACK
    rec(trace_, obs::TraceKind::kFailover, arrival, 0, bank, spare);
    bank = spare;
    ++res.failovers;
  }
  const std::uint64_t scale =
      plan_ != nullptr ? plan_->busy_multiplier(bank, arrival) : 1;
  // serve(), not serve_addr(): a whole-line transfer neither keys the
  // bank-side word cache nor combines with word requests.
  const std::uint64_t served = banks_.serve(bank, arrival, scale);
  rec(trace_, obs::TraceKind::kWriteback, arrival, 0, line, bank);
  rec(trace_, obs::TraceKind::kBankBusy, banks_.last_start(),
      served - banks_.last_start(), bank, 0);
}

namespace {
std::shared_ptr<const mem::BankMapping> default_mapping(
    const MachineConfig& c) {
  return std::make_shared<mem::InterleavedMapping>(c.banks());
}
}  // namespace

Machine::Machine(MachineConfig config)
    : Machine(config, default_mapping(config)) {}

Machine::~Machine() = default;

void Machine::inject(std::shared_ptr<const fault::FaultPlan> plan) {
  if (plan && plan->num_banks() != config_.banks())
    raise(ErrorCode::kConfig,
          "Machine::inject: plan bank count does not match configuration");
  plan_ = std::move(plan);
}

namespace {
BulkResult unwrap(FaultyBulk&& out) {
  if (out.degraded) throw fault::DegradedError(std::move(*out.degraded));
  return out.bulk;
}
}  // namespace

BulkResult Machine::scatter(std::span<const std::uint64_t> addrs) {
  return unwrap(run(addrs, /*ids_are_banks=*/false));
}

FaultyBulk Machine::scatter_faulty(std::span<const std::uint64_t> addrs) {
  return run(addrs, /*ids_are_banks=*/false);
}

BulkResult Machine::scatter_detailed(std::span<const std::uint64_t> addrs,
                                     RequestTiming& timing) {
  const std::size_t n = addrs.size();
  // Pre-fill with the unserved sentinel: a request the fault path fails
  // keeps kUnserved in all five slots instead of a zero that reads as
  // "completed at cycle 0". Served requests overwrite every slot.
  timing.issue.assign(n, RequestTiming::kUnserved);
  timing.arrival.assign(n, RequestTiming::kUnserved);
  timing.start.assign(n, RequestTiming::kUnserved);
  timing.completion.assign(n, RequestTiming::kUnserved);
  timing.bank.assign(n, RequestTiming::kUnserved);
  return unwrap(run(addrs, /*ids_are_banks=*/false, &timing));
}

BulkResult Machine::scatter_banks(std::span<const std::uint64_t> banks) {
  return unwrap(run(banks, /*ids_are_banks=*/true));
}

FaultyBulk Machine::run(std::span<const std::uint64_t> ids,
                        bool ids_are_banks, RequestTiming* timing) {
  banks_.reset(ids.size());
  network_.reset();
  if (tier_ != nullptr) tier_->reset();

  FaultyBulk out;
  BulkResult& res = out.bulk;
  res.n = ids.size();
  if (ids.empty()) {
    publish_bulk(res, 0, banks_, network_, tier_.get());
    return out;
  }

  FailTally tally;
  attr_.begin();

  // Adaptive dispatch (docs/performance.md §selector): classify the op
  // from O(1) pre-dispatch features, honor a pinned engine, and demote
  // an ineligible choice to the nearest exact strategy.
  EngineFeatures feat;
  feat.n = res.n;
  feat.processors = config_.processors;
  feat.banks = config_.banks();
  feat.gap = config_.gap;
  feat.bank_delay = config_.bank_delay;
  feat.latency = config_.latency;
  feat.h_proc = util::ceil_div(res.n, config_.processors);
  feat.window = std::min(config_.slackness, feat.h_proc);
  feat.has_plan = plan_ != nullptr;
  feat.plan_fingerprint = plan_ != nullptr ? plan_->fingerprint() : 0;
  feat.eligible_dense = plan_ == nullptr && config_.slackness >= feat.h_proc;
  // A passive tracer (flight recorder) never steers selection; only an
  // exact tracer forces the fully-traced engines.
  feat.eligible_soa = feat.eligible_dense &&
                      network_.model() == NetworkModel::kIdeal &&
                      tier_ == nullptr &&
                      (trace_ == nullptr || trace_passive_) &&
                      timing == nullptr;
  // Prediction is logged against the pre-dispatch memory; observe()
  // below overwrites it, so compute before running.
  const std::uint8_t binding_at_decide = selector_.last_binding();
  const std::uint64_t h_bank_est = selector_.h_bank_estimate(feat);
  const std::uint64_t predicted = selector_.predict(feat);

  obs::EngineChoice choice;
  if (engine_ == Engine::kReference) {
    choice = obs::EngineChoice::kReference;
  } else if (engine_ == Engine::kCalendar) {
    choice = feat.eligible_dense ? obs::EngineChoice::kDense
                                 : obs::EngineChoice::kCalendar;
  } else {
    choice = selector_.decide(feat);
  }
  const obs::EngineChoice raw_choice = choice;
  // The specialized paths are only exact under their eligibility
  // conditions; an infeasible (forced or mispredicted) choice falls back
  // to the nearest exact strategy instead of being trusted blindly.
  if (choice == obs::EngineChoice::kSoA && !feat.eligible_soa)
    choice = feat.eligible_dense ? obs::EngineChoice::kDense
                                 : obs::EngineChoice::kHeap;
  if (choice == obs::EngineChoice::kDense && !feat.eligible_dense)
    choice = obs::EngineChoice::kHeap;

  const std::uint64_t makespan =
      choice == obs::EngineChoice::kReference
          ? run_reference(ids, ids_are_banks, timing, res, tally)
          : run_calendar(ids, ids_are_banks, timing, res, tally, choice);

  if (res.completed + tally.failed != res.n)
    raise(ErrorCode::kInternal, "Machine: request conservation violated");
  if (tally.failed > 0) {
    out.degraded = fault::DegradedResult{
        tally.failed, tally.first_elem, tally.first_attempts,
        std::string(tally.first_reason) +
            (" (" + std::to_string(tally.failed) + " of " +
             std::to_string(res.n) + " requests failed)")};
  }

  res.cycles = makespan;
  res.max_bank_load = banks_.max_load();
  res.port_conflicts = network_.port_conflicts();
  res.cache_hits = banks_.cache_hits();
  if (tier_ != nullptr) {
    res.cache_hits += tier_->hits();
    res.cache_misses = tier_->misses();
    res.cache_evictions = tier_->writebacks();
    res.max_proc_miss = tier_->max_proc_misses();
  }
  res.combined = banks_.combined();
  res.degraded_cycles = banks_.degraded_cycles();
  res.bank_utilization = bank_utilization_of(config_.bank_delay, res.n,
                                             config_.banks(), res.cycles);

  // Attribution (docs/observability.md): location contention k over the
  // requested ids (addresses; bank ids for scatter_banks), the per-bank
  // load distribution (served requests only — loads() never counts a
  // NACK-failed or combined slot), and the critical-event cost
  // decomposition, whose terms must reproduce the makespan exactly.
  res.max_location_contention =
      std::max(res.max_location_contention, contention_.max_multiplicity(ids));
  for (const std::uint64_t load : banks_.loads())
    res.bank_sketch.observe(load);
  res.breakdown = attr_.breakdown();
  if (res.breakdown.total() != res.cycles)
    raise(ErrorCode::kInternal, "Machine: attribution identity violated");

  if (attr_agg_ != nullptr)
    attr_agg_->record(res.breakdown, res.bank_sketch,
                      res.max_location_contention, res.cycles);
  if (drift_ != nullptr) {
    obs::DriftSample s;
    s.track = drift_track_;
    s.step = superstep_seq_;
    s.cycles = res.cycles;
    s.n = res.n;
    s.h_proc = res.max_proc_requests;
    s.h_bank = res.max_bank_load;
    s.location_contention = res.max_location_contention;
    if (tier_ != nullptr) {
      s.cache_hits = tier_->hits();
      s.cache_misses = tier_->misses();
      s.h_proc_miss = tier_->max_proc_misses();
    }
    s.breakdown = res.breakdown;
    s.sketch_p50 = res.bank_sketch.p50();
    s.sketch_p99 = res.bank_sketch.p99();
    s.sketch_max = res.bank_sketch.max;
    s.mapping = ids_are_banks ? "(direct banks)" : mapping_->name();
    s.plan_fingerprint = plan_ != nullptr ? plan_->fingerprint() : 0;
    s.config = &config_;
    s.plan = plan_.get();
    drift_->observe(s);
  }
  if (selector_log_ != nullptr) {
    obs::SelectorRow row;
    row.track = selector_track_;
    row.step = superstep_seq_;
    row.n = res.n;
    row.h_proc = feat.h_proc;
    row.window = feat.window;
    row.h_bank_est = h_bank_est;
    row.plan_fingerprint = feat.plan_fingerprint;
    row.predicted = predicted;
    row.measured = res.cycles;
    row.last_binding = binding_at_decide;
    row.eligible_dense = feat.eligible_dense;
    row.eligible_soa = feat.eligible_soa;
    row.forced =
        engine_ != Engine::kAuto || selector_.forced().has_value();
    row.fallback = choice != raw_choice;
    row.choice = choice;
    selector_log_->record(row);
  }
  selector_.observe(res.breakdown, res.max_bank_load, res.n);
  ++superstep_seq_;

  rec(trace_, obs::TraceKind::kSuperstep, 0, makespan, res.n, 0);
  publish_bulk(res, tally.failed, banks_, network_, tier_.get());
  return out;
}

std::uint64_t Machine::run_reference(std::span<const std::uint64_t> ids,
                                     bool ids_are_banks,
                                     RequestTiming* timing, BulkResult& res,
                                     FailTally& tally) {
  const fault::FaultPlan* plan = plan_.get();
  const std::uint64_t p = config_.processors;
  const std::uint64_t n = ids.size();
  const std::uint64_t per = util::ceil_div(n, p);

  // Element index of request j of processor `proc` under the distribution.
  const bool block = config_.distribution == Distribution::kBlock;
  auto element_of = [&](std::uint64_t proc, std::uint64_t j) {
    return block ? proc * per + j : j * p + proc;
  };
  auto count_of = [&](std::uint64_t proc) -> std::uint64_t {
    if (block) {
      const std::uint64_t lo = proc * per;
      if (lo >= n) return 0;
      return std::min(per, n - lo);
    }
    return proc < n % p ? n / p + 1 : n / p;
  };

  // The cache tier is consulted on fresh issues only, and only when
  // requests carry addresses (scatter_banks has no address to cache).
  cache::CacheTier* const tier = ids_are_banks ? nullptr : tier_.get();
  const std::uint64_t hit_latency = config_.cache.hit_latency;
  const bool write_through =
      config_.cache.write == cache::WritePolicy::kThrough &&
      config_.cache.mode == cache::Mode::kCache;

  std::vector<ProcState> procs(p);
  std::priority_queue<Event, std::vector<Event>, std::greater<>> heap;
  for (std::uint64_t i = 0; i < p; ++i) {
    procs[i].count = count_of(i);
    res.max_proc_requests = std::max(res.max_proc_requests, procs[i].count);
    if (procs[i].count == 0) continue;
    const std::uint64_t window =
        std::min<std::uint64_t>(config_.slackness, procs[i].count);
    procs[i].completions.assign(window, 0);
    // First request of every processor departs at time 0.
    heap.push(Event{0, 0, static_cast<std::uint32_t>(i), 0});
  }

  std::uint64_t makespan = 0;
  std::uint64_t events = 0;
  while (!heap.empty()) {
    // Cancellation point: poll the token every 4096 events (the deadline
    // check reads a clock, so not every iteration) and heartbeat it so a
    // stall watchdog sees the loop moving. Abandoning mid-operation is
    // safe: bulk ops are pure, so a resume recomputes this one exactly.
    if (cancel_ != nullptr && (++events & 0xFFFU) == 0) {
      cancel_->heartbeat();
      cancel_->raise_if_expired("Machine::run");
    }
    const Event ev = heap.top();
    heap.pop();
    ProcState& ps = procs[ev.proc];
    const bool fresh = ev.attempt == 0;

    const std::uint64_t elem = fresh ? element_of(ev.proc, ps.issued) : ev.elem;
    const std::uint64_t addr = ids[elem];
    // j·g of a fresh issue: its position in the issue pipeline, the
    // issue_gap term of the cost attribution (retries recover theirs
    // from the origin recorded at their first NACK).
    const std::uint64_t fresh_gap = fresh ? ps.issued * config_.gap : 0;

    bool local_hit = false;
    std::uint64_t ack = 0;  // when the processor learns the outcome
    if (tier != nullptr && fresh) {
      const cache::CacheTier::Access acc = tier->access(ev.proc, addr);
      // Ordering contract: the victim's writeback enters the network
      // just ahead of the miss that displaced it (and a write-through
      // forward just ahead of nothing — the hit never leaves the CPU).
      if (acc.writeback)
        line_writeback(acc.victim_addr, ev.depart, ev.proc, true, res);
      if (acc.hit) {
        local_hit = true;
        if (write_through) line_writeback(addr, ev.depart, ev.proc, false, res);
        ack = ev.depart + hit_latency;
        ++res.completed;
        attr_.observe_cache_hit(ack, fresh_gap, ev.depart);
        rec(trace_, obs::TraceKind::kCacheHit, ev.depart, hit_latency, elem,
            ev.proc);
        if (timing != nullptr) {
          timing->issue[elem] = ev.depart;
          timing->arrival[elem] = ev.depart;
          timing->start[elem] = ev.depart;
          timing->completion[elem] = ack;
          timing->bank[elem] = RequestTiming::kUnserved;  // served locally
        }
      }
    }
    if (!local_hit) {
    std::uint64_t bank = ids_are_banks ? addr : mapping_->bank_of(addr);
    if (bank >= config_.banks())
      raise(ErrorCode::kConfig, "Machine: bank id out of range");

    const std::uint64_t arrival = network_.traverse(bank, ev.depart, ev.proc);

    // Fault handling at the memory system: a dead bank redirects to a
    // surviving spare (failover); an attempt may then be NACKed (drop),
    // which the processor recovers from by retry with backoff — or, once
    // the budget is spent, records as a failed request.
    bool served_ok = true;
    bool redirected = false;
    if (plan != nullptr) {
      const char* fail_reason = nullptr;
      if (plan->dead_at(bank, arrival)) {
        const std::uint64_t spare = plan->failover(bank, addr, arrival);
        if (spare == fault::kNoBank) {
          fail_reason = "no bank alive for failover";
        } else {
          rec(trace_, obs::TraceKind::kFailover, arrival, 0, bank, spare);
          bank = spare;
          ++res.failovers;
          redirected = true;
        }
      }
      if (fail_reason == nullptr && plan->drop(elem, ev.attempt)) {
        if (ev.attempt < plan->retry().max_retries) {
          // NACK travels back; the processor re-issues after backoff.
          ++res.nacks;
          rec(trace_, obs::TraceKind::kNack, arrival, 0, elem, ev.attempt);
          ack = network_.nack_return(arrival);
          if (fresh) attr_.note_origin(elem, fresh_gap, ev.depart);
          const std::uint64_t delay =
              plan->backoff_delay(elem, ev.attempt + 1);
          heap.push(Event{ack + delay, elem, ev.proc, ev.attempt + 1});
          ++res.retries;
          rec(trace_, obs::TraceKind::kRetry, ack + delay, 0, elem,
              ev.attempt + 1);
          served_ok = false;
        } else {
          fail_reason = "retry budget exhausted";
        }
      }
      if (fail_reason != nullptr) {
        ++res.nacks;
        rec(trace_, obs::TraceKind::kNack, arrival, 0, elem, ev.attempt);
        ack = network_.nack_return(arrival);
        if (tally.failed == 0) {
          tally.first_elem = elem;
          tally.first_attempts = ev.attempt + 1;
          tally.first_reason = fail_reason;
        }
        ++tally.failed;
        served_ok = false;
      }
    }

    if (served_ok) {
      if constexpr (obs::kTraceCompiledIn) {
        if (trace_ != nullptr) {
          // Backlog the request finds at its bank (cycles until a port
          // frees), sampled as a counter series per bank.
          const std::uint64_t free = banks_.free_at(bank);
          rec(trace_, obs::TraceKind::kQueueDepth, arrival, 0, bank,
              free > arrival ? free - arrival : 0);
        }
      }
      const std::uint64_t scale =
          plan != nullptr ? plan->busy_multiplier(bank, arrival) : 1;
      // Address-aware service applies bank caching/combining; the
      // banks-only path (scatter_banks) has no address to key them on.
      const std::uint64_t served =
          ids_are_banks ? banks_.serve(bank, arrival, scale)
                        : banks_.serve_addr(bank, arrival, addr, scale);
      ack = served + config_.latency;
      ++res.completed;
      attr_.observe_served(ack, fresh, elem, fresh_gap, ev.depart, arrival,
                           served, config_.latency, redirected);
      // A combined request occupies no bank slot, so no busy span.
      if (!banks_.last_combined())
        rec(trace_, obs::TraceKind::kBankBusy, banks_.last_start(),
            served - banks_.last_start(), bank, 0);

      if (timing != nullptr) {
        timing->issue[elem] = ev.depart;
        timing->arrival[elem] = arrival;
        timing->start[elem] = banks_.last_start();
        timing->completion[elem] = ack;
        timing->bank[elem] = bank;
      }
    } else {
      attr_.observe_unserved(ack, fresh, elem, fresh_gap, ev.depart);
    }
    }  // !local_hit
    makespan = std::max(makespan, ack);

    // Only fresh issues advance the processor's issue pipeline; retries
    // are re-injections of an already-issued request. A NACKed fresh
    // issue frees its outstanding-window slot when the NACK returns.
    if (fresh) {
      const std::uint64_t window = ps.completions.size();
      ps.completions[ps.issued % window] = ack;
      ps.last_issue = ev.depart;
      ++ps.issued;

      if (ps.issued < ps.count) {
        // Next issue waits for the gap and, if the outstanding window is
        // full, for the request `window` places back to complete.
        std::uint64_t next = ps.last_issue + config_.gap;
        if (ps.issued >= window) {
          const std::uint64_t gate = ps.completions[ps.issued % window];
          if (gate > next) {
            ps.stall += gate - next;
            rec(trace_, obs::TraceKind::kStall, next, gate - next, ev.proc,
                0);
            next = gate;
          }
        }
        heap.push(Event{next, 0, ev.proc, 0});
      }
    }
  }

  for (const auto& ps : procs) {
    res.stall_cycles += ps.stall;
    res.last_issue = std::max(res.last_issue, ps.last_issue);
  }
  return makespan;
}

std::uint64_t Machine::run_calendar(std::span<const std::uint64_t> ids,
                                    bool ids_are_banks,
                                    RequestTiming* timing, BulkResult& res,
                                    FailTally& tally,
                                    obs::EngineChoice choice) {
  const fault::FaultPlan* plan = plan_.get();
  const std::uint64_t p = config_.processors;
  const std::uint64_t n = ids.size();
  const std::uint64_t per = util::ceil_div(n, p);
  const std::uint64_t latency = config_.latency;
  const bool block = config_.distribution == Distribution::kBlock;

  auto element_of = [&](std::uint64_t proc, std::uint64_t j) {
    return block ? proc * per + j : j * p + proc;
  };
  auto count_of = [&](std::uint64_t proc) -> std::uint64_t {
    if (block) {
      const std::uint64_t lo = proc * per;
      if (lo >= n) return 0;
      return std::min(per, n - lo);
    }
    return proc < n % p ? n / p + 1 : n / p;
  };

  if (!state_) state_ = std::make_unique<EngineState>();
  EngineState& st = *state_;

  // Cache tier, mirroring run_reference: fresh issues only, addresses
  // only. Tag updates happen in pop order in both engines, so hit/miss
  // outcomes are bit-identical.
  cache::CacheTier* const tier = ids_are_banks ? nullptr : tier_.get();
  const std::uint64_t hit_latency = config_.cache.hit_latency;
  const bool write_through =
      config_.cache.write == cache::WritePolicy::kThrough &&
      config_.cache.mode == cache::Mode::kCache;

  // Batched bank routing: ONE virtual dispatch per bulk op fills the
  // whole addr→bank route, replacing the per-event mapping_->bank_of
  // call of the reference engine. scatter_banks traffic routes itself.
  const std::uint64_t* route = ids.data();
  if (!ids_are_banks) {
    auto& banks = st.arena.vec<std::uint64_t>(kRouteSlot);
    banks.resize(n);
    mapping_->bank_of_batch(ids, banks);
    route = banks.data();
  } else {
    // Caller-supplied bank ids are the only ones that can be out of
    // range (mappings are bank-count checked at construction); validate
    // once up front so the hot loop indexes unchecked.
    for (std::size_t i = 0; i < n; ++i)
      if (ids[i] >= config_.banks())
        raise(ErrorCode::kConfig, "Machine: bank id out of range");
  }

  auto& procs = st.arena.vec<ProcFlat>();
  procs.assign(p, ProcFlat{});
  auto& rings = st.arena.vec<std::uint64_t>(kRingSlot);
  std::uint64_t ring_total = 0;
  std::uint64_t max_count = 0;
  for (std::uint64_t i = 0; i < p; ++i) {
    const std::uint64_t cnt = count_of(i);
    procs[i].count = cnt;
    max_count = std::max(max_count, cnt);
    const std::uint64_t window = std::min(config_.slackness, cnt);
    procs[i].window = window;
    procs[i].ring_off = ring_total;
    ring_total += window;
  }
  res.max_proc_requests = max_count;

  // Specialization eligibility for the scheduled loop below (kAuto
  // only: the pinned engines are frozen baselines).
  const bool no_obs = engine_ == Engine::kAuto && tier == nullptr &&
                      (trace_ == nullptr || trace_passive_) &&
                      timing == nullptr;
  const bool no_ring = no_obs && config_.slackness >= max_count;

  // Ring slot j % window is written at issue j and first read at issue
  // j + window, so stale contents from the previous bulk op are never
  // observed — resize without zeroing. The kNoRing specialization never
  // touches the rings at all.
  if (!no_ring && rings.size() < ring_total)
    rings.resize(static_cast<std::size_t>(ring_total));

  std::uint64_t makespan = 0;
  std::uint64_t events = 0;
  const std::uint64_t g = config_.gap;

  if (choice == obs::EngineChoice::kSoA)
    return run_soa(ids, ids_are_banks, route, res, max_count);

  if (choice == obs::EngineChoice::kDense) {
    // Dense fast path. With no fault plan there are no retries, and with
    // the outstanding window never binding (S >= every per-proc count;
    // window = min(S, count) = count, and the gate index never reaches
    // it) every issue departs exactly `gap` after the previous one:
    // processor P's j-th request departs at j·g, unconditionally. The
    // scheduler's (depart, proc, attempt, elem) pop order is therefore
    // the nested (j, proc) loop below, so the scheduler itself — and the
    // completion rings — can be skipped. Bit-identical results, traces
    // and cancellation cadence to the general path.
    for (std::uint64_t j = 0; j < max_count; ++j) {
      const std::uint64_t depart = j * g;
      for (std::uint64_t proc = 0; proc < p; ++proc) {
        if (j >= procs[proc].count) continue;
        if (cancel_ != nullptr && (++events & 0xFFFU) == 0) {
          cancel_->heartbeat();
          cancel_->raise_if_expired("Machine::run");
        }
        const std::uint64_t elem =
            block ? proc * per + j : j * p + proc;
        if (tier != nullptr) {
          const cache::CacheTier::Access acc = tier->access(proc, ids[elem]);
          if (acc.writeback)
            line_writeback(acc.victim_addr, depart, proc, true, res);
          if (acc.hit) {
            if (write_through) line_writeback(ids[elem], depart, proc, false, res);
            const std::uint64_t ack = depart + hit_latency;
            rec(trace_, obs::TraceKind::kCacheHit, depart, hit_latency, elem,
                proc);
            if (timing != nullptr) {
              timing->issue[elem] = depart;
              timing->arrival[elem] = depart;
              timing->start[elem] = depart;
              timing->completion[elem] = ack;
              timing->bank[elem] = RequestTiming::kUnserved;
            }
            if (ack > makespan) {
              makespan = ack;
              attr_.observe_cache_hit(ack, depart, depart);
            }
            continue;
          }
        }
        const std::uint64_t bank = route[elem];
        const std::uint64_t arrival = network_.traverse(bank, depart, proc);
        if constexpr (obs::kTraceCompiledIn) {
          if (trace_ != nullptr) {
            const std::uint64_t free = banks_.free_at(bank);
            rec(trace_, obs::TraceKind::kQueueDepth, arrival, 0, bank,
                free > arrival ? free - arrival : 0);
          }
        }
        const std::uint64_t served =
            ids_are_banks ? banks_.serve(bank, arrival)
                          : banks_.serve_addr(bank, arrival, ids[elem]);
        const std::uint64_t ack = served + latency;
        if (!banks_.last_combined())
          rec(trace_, obs::TraceKind::kBankBusy, banks_.last_start(),
              served - banks_.last_start(), bank, 0);
        if (timing != nullptr) {
          timing->issue[elem] = depart;
          timing->arrival[elem] = arrival;
          timing->start[elem] = banks_.last_start();
          timing->completion[elem] = ack;
          timing->bank[elem] = bank;
        }
        if (ack > makespan) {
          makespan = ack;
          // Same latch rule as the scheduler path (first strict max in
          // pop order): depart == j·g exactly, so window_stall is 0 and
          // the fresh gap is the departure itself.
          attr_.observe_served(ack, /*fresh=*/true, elem, depart, depart,
                               arrival, served, latency,
                               /*redirected=*/false);
        }
      }
    }
    res.completed += n;
    res.last_issue = (max_count - 1) * g;
    return makespan;
  }

  // General path, scheduled by either the calendar wheel (kCalendar) or
  // the binary heap (kHeap): pop order is identical — the total Event
  // order — so the queue choice is pure performance
  // (util/calendar_queue.hpp; EventHeap above). Retry backoffs beyond
  // the wheel horizon take the calendar queue's internal heap fallback.
  //
  // Under kAuto two compile-time specializations shave the per-event
  // constant without touching pop order or results (the pinned engines
  // deliberately stay on the unspecialized loop — they are the frozen
  // A/B baselines; docs/performance.md §selector):
  //   kNoObs:  tier, tracer and timing are null for this op — fold the
  //            observability branches away entirely.
  //   kNoRing: S >= every per-processor count, so the outstanding
  //            window provably never gates an issue — skip the
  //            completion-ring writes (the only random-access store on
  //            the fresh-issue path).
  auto scheduled = [&](auto& q, auto no_obs_c, auto no_ring_c)
      -> std::uint64_t {
  constexpr bool kNoObs = decltype(no_obs_c)::value;
  constexpr bool kNoRing = decltype(no_ring_c)::value;
  obs::TraceRing* const tr = kNoObs ? nullptr : trace_;
  RequestTiming* const tm = kNoObs ? nullptr : timing;
  cache::CacheTier* const tierp = kNoObs ? nullptr : tier;
  q.reset();
  for (std::uint64_t i = 0; i < p; ++i)
    if (procs[i].count > 0)
      q.push(Event{0, 0, static_cast<std::uint32_t>(i), 0});

  while (!q.empty()) {
    if (cancel_ != nullptr && (++events & 0xFFFU) == 0) {
      cancel_->heartbeat();
      cancel_->raise_if_expired("Machine::run");
    }
    const Event ev = q.pop();
    ProcFlat& ps = procs[ev.proc];
    const bool fresh = ev.attempt == 0;

    const std::uint64_t elem = fresh ? element_of(ev.proc, ps.issued) : ev.elem;
    const std::uint64_t addr = ids[elem];
    const std::uint64_t fresh_gap = fresh ? ps.issued * g : 0;

    bool local_hit = false;
    std::uint64_t ack = 0;
    if (tierp != nullptr && fresh) {
      const cache::CacheTier::Access acc = tierp->access(ev.proc, addr);
      if (acc.writeback)
        line_writeback(acc.victim_addr, ev.depart, ev.proc, true, res);
      if (acc.hit) {
        local_hit = true;
        if (write_through) line_writeback(addr, ev.depart, ev.proc, false, res);
        ack = ev.depart + hit_latency;
        ++res.completed;
        attr_.observe_cache_hit(ack, fresh_gap, ev.depart);
        rec(tr, obs::TraceKind::kCacheHit, ev.depart, hit_latency, elem,
            ev.proc);
        if (tm != nullptr) {
          tm->issue[elem] = ev.depart;
          tm->arrival[elem] = ev.depart;
          tm->start[elem] = ev.depart;
          tm->completion[elem] = ack;
          tm->bank[elem] = RequestTiming::kUnserved;  // served locally
        }
      }
    }
    if (!local_hit) {
    std::uint64_t bank = route[elem];

    const std::uint64_t arrival = network_.traverse(bank, ev.depart, ev.proc);

    bool served_ok = true;
    bool redirected = false;
    if (plan != nullptr) {
      const char* fail_reason = nullptr;
      if (plan->dead_at(bank, arrival)) {
        const std::uint64_t spare = plan->failover(bank, addr, arrival);
        if (spare == fault::kNoBank) {
          fail_reason = "no bank alive for failover";
        } else {
          rec(tr, obs::TraceKind::kFailover, arrival, 0, bank, spare);
          bank = spare;
          ++res.failovers;
          redirected = true;
        }
      }
      if (fail_reason == nullptr && plan->drop(elem, ev.attempt)) {
        if (ev.attempt < plan->retry().max_retries) {
          ++res.nacks;
          rec(tr, obs::TraceKind::kNack, arrival, 0, elem, ev.attempt);
          ack = network_.nack_return(arrival);
          if (fresh) attr_.note_origin(elem, fresh_gap, ev.depart);
          const std::uint64_t delay =
              plan->backoff_delay(elem, ev.attempt + 1);
          q.push(Event{ack + delay, elem, ev.proc, ev.attempt + 1});
          ++res.retries;
          rec(tr, obs::TraceKind::kRetry, ack + delay, 0, elem,
              ev.attempt + 1);
          served_ok = false;
        } else {
          fail_reason = "retry budget exhausted";
        }
      }
      if (fail_reason != nullptr) {
        ++res.nacks;
        rec(tr, obs::TraceKind::kNack, arrival, 0, elem, ev.attempt);
        ack = network_.nack_return(arrival);
        if (tally.failed == 0) {
          tally.first_elem = elem;
          tally.first_attempts = ev.attempt + 1;
          tally.first_reason = fail_reason;
        }
        ++tally.failed;
        served_ok = false;
      }
    }

    if (served_ok) {
      if constexpr (obs::kTraceCompiledIn && !kNoObs) {
        if (tr != nullptr) {
          const std::uint64_t free = banks_.free_at(bank);
          rec(tr, obs::TraceKind::kQueueDepth, arrival, 0, bank,
              free > arrival ? free - arrival : 0);
        }
      }
      const std::uint64_t scale =
          plan != nullptr ? plan->busy_multiplier(bank, arrival) : 1;
      const std::uint64_t served =
          ids_are_banks ? banks_.serve(bank, arrival, scale)
                        : banks_.serve_addr(bank, arrival, addr, scale);
      ack = served + latency;
      ++res.completed;
      attr_.observe_served(ack, fresh, elem, fresh_gap, ev.depart, arrival,
                           served, latency, redirected);
      if (!banks_.last_combined())
        rec(tr, obs::TraceKind::kBankBusy, banks_.last_start(),
            served - banks_.last_start(), bank, 0);

      if (tm != nullptr) {
        tm->issue[elem] = ev.depart;
        tm->arrival[elem] = arrival;
        tm->start[elem] = banks_.last_start();
        tm->completion[elem] = ack;
        tm->bank[elem] = bank;
      }
    } else {
      attr_.observe_unserved(ack, fresh, elem, fresh_gap, ev.depart);
    }
    }  // !local_hit
    makespan = std::max(makespan, ack);

    if (fresh) {
      if constexpr (!kNoRing) {
        rings[ps.ring_off + ps.issued % ps.window] = ack;
      }
      ps.last_issue = ev.depart;
      ++ps.issued;

      if (ps.issued < ps.count) {
        std::uint64_t next = ps.last_issue + g;
        if constexpr (!kNoRing) {
          if (ps.issued >= ps.window) {
            const std::uint64_t gate =
                rings[ps.ring_off + ps.issued % ps.window];
            if (gate > next) {
              ps.stall += gate - next;
              rec(tr, obs::TraceKind::kStall, next, gate - next, ev.proc,
                  0);
              next = gate;
            }
          }
        }
        q.push(Event{next, 0, ev.proc, 0});
      }
    }
  }

  for (const auto& ps : procs) {
    res.stall_cycles += ps.stall;
    res.last_issue = std::max(res.last_issue, ps.last_issue);
  }
  return makespan;
  };  // scheduled

  const auto run_q = [&](auto no_obs_c, auto no_ring_c) {
    if (choice == obs::EngineChoice::kHeap)
      return scheduled(st.heap, no_obs_c, no_ring_c);
    return scheduled(st.queue, no_obs_c, no_ring_c);
  };
  if (no_ring) return run_q(std::true_type{}, std::true_type{});
  if (no_obs) return run_q(std::true_type{}, std::false_type{});
  return run_q(std::false_type{}, std::false_type{});
}

std::uint64_t Machine::run_soa(std::span<const std::uint64_t> ids,
                               bool ids_are_banks,
                               const std::uint64_t* route, BulkResult& res,
                               std::uint64_t max_count) {
  // SoA batched kernel (docs/performance.md §soa). Eligibility, checked
  // by run(): no fault plan, window never binds, ideal network, no cache
  // tier, no tracer, no per-request timing. Under those conditions
  // processor P's j-th request departs at exactly j·g and arrives at
  // j·g + L, so the whole op is a data-parallel pipeline over flat
  // planes: counting-sort arrivals into contiguous per-bank buckets
  // (stable, so each bank sees its arrivals in scheduler pop order),
  // run the branch-free free-chain over each bucket, then latch the
  // critical request from per-bank tail state. Bit-identical to the
  // dense fast path.
  const std::uint64_t n = ids.size();
  const std::uint64_t p = config_.processors;
  const std::uint64_t g = config_.gap;
  const std::uint64_t latency = config_.latency;
  const std::uint64_t nbanks = config_.banks();
  const bool block = config_.distribution == Distribution::kBlock;
  util::ScratchArena& arena = state_->arena;

  if (!banks_.batchable(/*address_aware=*/!ids_are_banks)) {
    // Combining, a bank-side MRU cache or multi-port banks: per-request
    // bank state transitions can't run as a free-chain, so the counting
    // sort buys nothing (measured: the permutation's random gathers cost
    // more than they save). Instead walk pop order directly — exactly
    // the dense fast path's loop, minus its dead generality: arrival is
    // inlined (ideal network by eligibility) and the tier/trace/timing
    // branches are gone (all null by eligibility).
    std::uint64_t makespan = 0;
    std::uint64_t events = 0;
    const auto serve_one = [&](std::uint64_t elem, std::uint64_t arrival) {
      if (cancel_ != nullptr && (++events & 0xFFFU) == 0) {
        cancel_->heartbeat();
        cancel_->raise_if_expired("Machine::run");
      }
      const std::uint64_t bank = route[elem];
      const std::uint64_t served =
          ids_are_banks ? banks_.serve(bank, arrival)
                        : banks_.serve_addr(bank, arrival, ids[elem]);
      const std::uint64_t ack = served + latency;
      if (ack > makespan) {
        // Same latch rule as the dense path: first strict max in pop
        // order, depart == j·g exactly, window stall provably zero.
        makespan = ack;
        attr_.observe_served(ack, /*fresh=*/true, elem, arrival - latency,
                             arrival - latency, arrival, served, latency,
                             /*redirected=*/false);
      }
    };
    if (block) {
      const std::uint64_t per = util::ceil_div(n, p);
      for (std::uint64_t j = 0; j < max_count; ++j) {
        const std::uint64_t arrival = j * g + latency;
        for (std::uint64_t proc = 0; proc < p; ++proc) {
          const std::uint64_t elem = proc * per + j;
          if (elem < n && j < per) serve_one(elem, arrival);
        }
      }
    } else {
      // Cyclic: pop order IS element order, p consecutive elements per
      // departure wave.
      std::uint64_t arrival = latency;
      for (std::uint64_t base = 0; base < n; base += p) {
        const std::uint64_t end = std::min(base + p, n);
        for (std::uint64_t i = base; i < end; ++i) serve_one(i, arrival);
        arrival += g;
      }
    }
    res.completed += n;
    res.last_issue = (max_count - 1) * g;
    return makespan;
  }

  // Batchable banks: per-bank counts first (order-independent, so plain
  // element order works for both distributions); they feed BankArray's
  // load counters on the fused path and the bucket offsets on the
  // bucketed one.
  std::uint64_t* cnt = util::soa_plane(arena, kCntSlot, nbanks);
  std::fill(cnt, cnt + nbanks, 0);
  for (std::size_t i = 0; i < n; ++i) ++cnt[route[i]];

  std::uint64_t best = 0;       // critical completion time
  std::uint64_t best_elem = 0;  // its element id
  std::uint64_t best_arr = 0;   // its bank arrival

  if (nbanks <= kFusedChainBanks) {
    // Fused free-chain kernel: the FIFO recurrence is bank-local, so
    // one pop-order pass with a cache-resident per-bank free-time array
    // computes exactly what bucketing would — minus the bucket scatter,
    // which measures ~5x the cost of the whole fused pass at headline
    // sizes. The strict-> latch keeps the FIRST pop-order max, the same
    // request every event engine latches.
    const std::uint64_t d = banks_.delay();
    std::uint64_t* chain = banks_.open_chain();
    std::uint64_t fin = 0;
    std::uint64_t events = 0;
    const auto chain_one = [&](std::uint64_t elem, std::uint64_t arrival) {
      if (cancel_ != nullptr && (++events & 0xFFFU) == 0) {
        cancel_->heartbeat();
        cancel_->raise_if_expired("Machine::run");
      }
      const std::uint64_t b = route[elem];
      const std::uint64_t f = chain[b];
      fin = (arrival > f ? arrival : f) + d;
      chain[b] = fin;
      if (fin > best) {
        best = fin;
        best_elem = elem;
        best_arr = arrival;
      }
    };
    if (block) {
      const std::uint64_t per = util::ceil_div(n, p);
      for (std::uint64_t j = 0; j < max_count; ++j) {
        const std::uint64_t arrival = j * g + latency;
        for (std::uint64_t proc = 0; proc < p; ++proc) {
          const std::uint64_t elem = proc * per + j;
          if (elem < n && j < per) chain_one(elem, arrival);
        }
      }
    } else {
      // Cyclic: pop order IS element order (element k is processor
      // k%p's (k/p)-th issue), p consecutive elements per wave.
      std::uint64_t arrival = latency;
      for (std::uint64_t base = 0; base < n; base += p) {
        const std::uint64_t end = std::min(base + p, n);
        for (std::uint64_t i = base; i < end; ++i) chain_one(i, arrival);
        arrival += g;
      }
    }
    banks_.finish_chain(cnt, n, fin - d);
  } else {
    // Bucketed kernel for bank arrays too large to chain in cache:
    // prefix the counts, scatter each pop-order arrival into its bank's
    // contiguous bucket, then run the branch-free serve_run() chain per
    // bank. With d >= 1 completions strictly increase along a bucket,
    // so each bank's critical candidate is its LAST request — tracked
    // in three per-bank arrays during the scatter; globally the critical
    // request is the max completion, ties broken by earliest pop index.
    std::uint64_t offset = 0;
    for (std::uint64_t b = 0; b < nbanks; ++b) {
      const std::uint64_t c = cnt[b];
      cnt[b] = offset;
      offset += c;
    }
    std::uint64_t* bkt = util::soa_plane(arena, kBktSlot, n);
    std::uint64_t* last = util::soa_plane(arena, kLastSlot, 3 * nbanks);
    std::uint64_t* last_pop = last;               // pop index of last request
    std::uint64_t* last_elem = last + nbanks;     // its element id
    std::uint64_t* last_arr = last + 2 * nbanks;  // its bank arrival
    if (block) {
      const std::uint64_t per = util::ceil_div(n, p);
      std::uint64_t out = 0;
      for (std::uint64_t j = 0; j < max_count; ++j) {
        const std::uint64_t arrival = j * g + latency;
        for (std::uint64_t proc = 0; proc < p; ++proc) {
          const std::uint64_t elem = proc * per + j;
          if (elem < n && j < per) {
            const std::uint64_t b = route[elem];
            bkt[cnt[b]++] = arrival;
            last_pop[b] = out++;
            last_elem[b] = elem;
            last_arr[b] = arrival;
          }
        }
      }
    } else {
      std::uint64_t arrival = latency;
      for (std::uint64_t base = 0; base < n; base += p) {
        const std::uint64_t end = std::min(base + p, n);
        for (std::uint64_t i = base; i < end; ++i) {
          const std::uint64_t b = route[i];
          bkt[cnt[b]++] = arrival;
          last_pop[b] = i;
          last_elem[b] = i;
          last_arr[b] = arrival;
        }
        arrival += g;
      }
    }
    // cnt[b] now holds the END of bank b's bucket (== start of b+1's).
    std::uint64_t best_bank = 0;
    std::uint64_t start = 0;
    for (std::uint64_t b = 0; b < nbanks; ++b) {
      const std::uint64_t stop = cnt[b];
      if (stop > start) {
        const std::uint64_t fin =
            banks_.serve_run(b, bkt + start, stop - start);
        if (fin > best ||
            (fin == best && last_pop[b] < last_pop[best_bank])) {
          best = fin;
          best_bank = b;
        }
      }
      start = stop;
    }
    best_elem = last_elem[best_bank];
    best_arr = last_arr[best_bank];
  }

  const std::uint64_t makespan = best + latency;
  attr_.observe_served(makespan, /*fresh=*/true, best_elem,
                       best_arr - latency, best_arr - latency, best_arr, best,
                       latency, /*redirected=*/false);
  res.completed += n;
  res.last_issue = (max_count - 1) * g;
  return makespan;
}

BulkResult Machine::scatter_bulk_delivery(
    std::span<const std::uint64_t> addrs) {
  banks_.reset(addrs.size());
  network_.reset();

  BulkResult res;
  res.n = addrs.size();
  if (addrs.empty()) {
    publish_bulk(res, 0, banks_, network_);
    return res;
  }

  // Every request materializes at its bank at time L, in index order;
  // there is no issue pipelining and no slackness limit. This models the
  // BSP assumption that an h-relation is simply "delivered".
  std::uint64_t makespan = 0;
  for (const std::uint64_t addr : addrs) {
    const std::uint64_t bank = mapping_->bank_of(addr);
    const std::uint64_t served = banks_.serve(bank, config_.latency);
    makespan = std::max(makespan, served + config_.latency);
  }

  const std::uint64_t per = util::ceil_div(res.n, config_.processors);
  res.cycles = makespan;
  res.completed = res.n;
  res.max_bank_load = banks_.max_load();
  res.max_proc_requests = per;
  res.bank_utilization = bank_utilization_of(config_.bank_delay, res.n,
                                             config_.banks(), res.cycles);
  // Attribution of the ablation: no issue pipeline, so the critical
  // request's lifetime is exactly wire-out + bank queue/service +
  // wire-back (makespan >= 2L holds because every request arrives at L).
  res.max_location_contention = std::max(res.max_location_contention,
                                         contention_.max_multiplicity(addrs));
  for (const std::uint64_t load : banks_.loads())
    res.bank_sketch.observe(load);
  res.breakdown.latency = 2 * config_.latency;
  res.breakdown.bank_service = makespan - 2 * config_.latency;
  rec(trace_, obs::TraceKind::kSuperstep, 0, makespan, res.n, 0);
  publish_bulk(res, 0, banks_, network_);
  return res;
}

std::uint64_t Machine::compute(std::uint64_t n_elements,
                               double ops_per_element) const {
  if (n_elements == 0 || ops_per_element <= 0.0) return 0;
  const std::uint64_t per = util::ceil_div(n_elements, config_.processors);
  return static_cast<std::uint64_t>(
      std::ceil(static_cast<double>(per) * ops_per_element));
}

}  // namespace dxbsp::sim
