#include "sim/machine.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>
#include <vector>

#include "util/bits.hpp"

namespace dxbsp::sim {

namespace {

Network make_network(const MachineConfig& cfg) {
  if (cfg.butterfly_network) {
    return Network::butterfly(cfg.latency, cfg.link_period, cfg.banks(),
                              cfg.processors);
  }
  return Network(cfg.latency, cfg.network_sections, cfg.section_period,
                 cfg.banks());
}

}  // namespace

namespace {

/// Per-processor issue state during one bulk operation.
struct ProcState {
  std::uint64_t begin = 0;       // first element index (block) / proc id (cyclic)
  std::uint64_t count = 0;       // elements owned
  std::uint64_t issued = 0;      // elements issued so far
  std::uint64_t last_issue = 0;  // issue time of the previous request
  std::uint64_t stall = 0;       // accumulated stall cycles
  // Ring of completion times for the last `window` requests (slackness).
  std::vector<std::uint64_t> completions;
};

struct Event {
  std::uint64_t depart;  // time the request enters the network
  std::uint32_t proc;
  // Min-heap by (depart, proc): the proc tiebreak makes simulation
  // deterministic regardless of heap internals.
  friend bool operator>(const Event& a, const Event& b) {
    return a.depart != b.depart ? a.depart > b.depart : a.proc > b.proc;
  }
};

}  // namespace

Machine::Machine(MachineConfig config,
                 std::shared_ptr<const mem::BankMapping> mapping)
    : config_(std::move(config)),
      mapping_(std::move(mapping)),
      banks_(config_.banks(), config_.bank_delay,
             BankCacheConfig{config_.bank_cache_lines,
                             config_.cache_line_words, config_.cached_delay},
             config_.combine_requests, config_.bank_ports),
      network_(make_network(config_)) {
  config_.validate();
  if (!mapping_) throw std::invalid_argument("Machine: null mapping");
  if (mapping_->num_banks() != config_.banks())
    throw std::invalid_argument(
        "Machine: mapping bank count does not match configuration");
}

namespace {
std::shared_ptr<const mem::BankMapping> default_mapping(
    const MachineConfig& c) {
  return std::make_shared<mem::InterleavedMapping>(c.banks());
}
}  // namespace

Machine::Machine(MachineConfig config)
    : Machine(config, default_mapping(config)) {}

BulkResult Machine::scatter(std::span<const std::uint64_t> addrs) {
  return run(addrs, /*ids_are_banks=*/false);
}

BulkResult Machine::scatter_detailed(std::span<const std::uint64_t> addrs,
                                     RequestTiming& timing) {
  const std::size_t n = addrs.size();
  timing.issue.assign(n, 0);
  timing.arrival.assign(n, 0);
  timing.start.assign(n, 0);
  timing.completion.assign(n, 0);
  timing.bank.assign(n, 0);
  return run(addrs, /*ids_are_banks=*/false, &timing);
}

BulkResult Machine::scatter_banks(std::span<const std::uint64_t> banks) {
  return run(banks, /*ids_are_banks=*/true);
}

BulkResult Machine::run(std::span<const std::uint64_t> ids,
                        bool ids_are_banks, RequestTiming* timing) {
  banks_.reset();
  network_.reset();

  BulkResult res;
  res.n = ids.size();
  if (ids.empty()) return res;

  const std::uint64_t p = config_.processors;
  const std::uint64_t n = ids.size();
  const std::uint64_t per = util::ceil_div(n, p);

  // Element index of request j of processor `proc` under the distribution.
  const bool block = config_.distribution == Distribution::kBlock;
  auto element_of = [&](std::uint64_t proc, std::uint64_t j) {
    return block ? proc * per + j : j * p + proc;
  };
  auto count_of = [&](std::uint64_t proc) -> std::uint64_t {
    if (block) {
      const std::uint64_t lo = proc * per;
      if (lo >= n) return 0;
      return std::min(per, n - lo);
    }
    return proc < n % p ? n / p + 1 : n / p;
  };

  std::vector<ProcState> procs(p);
  std::priority_queue<Event, std::vector<Event>, std::greater<>> heap;
  for (std::uint64_t i = 0; i < p; ++i) {
    procs[i].count = count_of(i);
    res.max_proc_requests = std::max(res.max_proc_requests, procs[i].count);
    if (procs[i].count == 0) continue;
    const std::uint64_t window =
        std::min<std::uint64_t>(config_.slackness, procs[i].count);
    procs[i].completions.assign(window, 0);
    // First request of every processor departs at time 0.
    heap.push(Event{0, static_cast<std::uint32_t>(i)});
  }

  std::uint64_t makespan = 0;
  while (!heap.empty()) {
    const Event ev = heap.top();
    heap.pop();
    ProcState& ps = procs[ev.proc];

    const std::uint64_t elem = element_of(ev.proc, ps.issued);
    const std::uint64_t bank =
        ids_are_banks ? ids[elem] : mapping_->bank_of(ids[elem]);
    if (bank >= config_.banks())
      throw std::out_of_range("Machine: bank id out of range");

    const std::uint64_t arrival = network_.traverse(bank, ev.depart, ev.proc);
    // Address-aware service applies bank caching/combining; the
    // banks-only path (scatter_banks) has no address to key them on.
    const std::uint64_t served =
        ids_are_banks ? banks_.serve(bank, arrival)
                      : banks_.serve_addr(bank, arrival, ids[elem]);
    const std::uint64_t completion = served + config_.latency;
    makespan = std::max(makespan, completion);

    if (timing != nullptr) {
      timing->issue[elem] = ev.depart;
      timing->arrival[elem] = arrival;
      timing->start[elem] = banks_.last_start();
      timing->completion[elem] = completion;
      timing->bank[elem] = bank;
    }

    const std::uint64_t window = ps.completions.size();
    ps.completions[ps.issued % window] = completion;
    ps.last_issue = ev.depart;
    ++ps.issued;

    if (ps.issued < ps.count) {
      // Next issue waits for the gap and, if the outstanding window is
      // full, for the request `window` places back to complete.
      std::uint64_t next = ps.last_issue + config_.gap;
      if (ps.issued >= window) {
        const std::uint64_t gate = ps.completions[ps.issued % window];
        if (gate > next) {
          ps.stall += gate - next;
          next = gate;
        }
      }
      heap.push(Event{next, ev.proc});
    }
  }

  res.cycles = makespan;
  res.max_bank_load = banks_.max_load();
  res.port_conflicts = network_.port_conflicts();
  res.cache_hits = banks_.cache_hits();
  res.combined = banks_.combined();
  for (const auto& ps : procs) {
    res.stall_cycles += ps.stall;
    res.last_issue = std::max(res.last_issue, ps.last_issue);
  }
  res.bank_utilization =
      static_cast<double>(config_.bank_delay) * static_cast<double>(n) /
      (static_cast<double>(config_.banks()) * static_cast<double>(res.cycles));
  return res;
}

BulkResult Machine::scatter_bulk_delivery(
    std::span<const std::uint64_t> addrs) {
  banks_.reset();
  network_.reset();

  BulkResult res;
  res.n = addrs.size();
  if (addrs.empty()) return res;

  // Every request materializes at its bank at time L, in index order;
  // there is no issue pipelining and no slackness limit. This models the
  // BSP assumption that an h-relation is simply "delivered".
  std::uint64_t makespan = 0;
  for (const std::uint64_t addr : addrs) {
    const std::uint64_t bank = mapping_->bank_of(addr);
    const std::uint64_t served = banks_.serve(bank, config_.latency);
    makespan = std::max(makespan, served + config_.latency);
  }

  const std::uint64_t per = util::ceil_div(res.n, config_.processors);
  res.cycles = makespan;
  res.max_bank_load = banks_.max_load();
  res.max_proc_requests = per;
  res.bank_utilization =
      static_cast<double>(config_.bank_delay) * static_cast<double>(res.n) /
      (static_cast<double>(config_.banks()) * static_cast<double>(res.cycles));
  return res;
}

std::uint64_t Machine::compute(std::uint64_t n_elements,
                               double ops_per_element) const {
  if (n_elements == 0 || ops_per_element <= 0.0) return 0;
  const std::uint64_t per = util::ceil_div(n_elements, config_.processors);
  return static_cast<std::uint64_t>(
      std::ceil(static_cast<double>(per) * ops_per_element));
}

}  // namespace dxbsp::sim
