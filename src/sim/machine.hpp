#pragma once
// Event-driven cycle-level simulator of a high-bandwidth shared-memory
// multiprocessor with slow memory banks — the substrate standing in for
// the paper's Cray C90/J90 testbed (DESIGN.md §3).
//
// Mechanisms simulated:
//   * p processors, each issuing one memory request every g cycles into
//     the network, with at most S requests outstanding (the latency-hiding
//     "slackness" window; issue stalls when the window is full);
//   * a network with one-way latency L, optionally divided into sections
//     with per-section injection bandwidth (Network);
//   * B = x·p banks, each busy for d cycles per request, FIFO queueing
//     (BankArray);
//   * an address→bank mapping (mem::BankMapping).
//
// A bulk scatter/gather of n addresses is simulated exactly under this
// mechanism; the result is a cycle count directly comparable with the
// (d,x)-BSP prediction T = L + max(g·h_proc, d·h_bank).

#include <cstdint>
#include <memory>
#include <optional>
#include <span>

#include "cache/tier.hpp"
#include "fault/fault_plan.hpp"
#include "mem/bank_mapping.hpp"
#include "obs/attribution.hpp"
#include "obs/selector.hpp"
#include "obs/trace.hpp"
#include "resilience/cancel.hpp"
#include "sim/bank_array.hpp"
#include "sim/engine_select.hpp"
#include "sim/machine_config.hpp"
#include "sim/network.hpp"
#include "sim/telemetry.hpp"
#include "util/multiplicity.hpp"

namespace dxbsp::obs {
class DriftDetector;
}

namespace dxbsp::sim {

/// Outcome of one simulated bulk memory operation.
struct BulkResult {
  std::uint64_t cycles = 0;         ///< makespan: last response back at a CPU
  std::uint64_t n = 0;              ///< total requests
  std::uint64_t max_bank_load = 0;  ///< most requests on any bank (h_bank)
  std::uint64_t max_proc_requests = 0;  ///< most requests from any CPU (h_proc)
  std::uint64_t last_issue = 0;     ///< cycle the final request was issued
  std::uint64_t stall_cycles = 0;   ///< total issue delay from the S window
  std::uint64_t port_conflicts = 0; ///< sectioned-network queueing events
  /// Requests served without bank traffic: processor-tier cache hits
  /// (docs/cache.md) plus bank-side [HS93] MRU hits. 0 when both caches
  /// are disabled.
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;    ///< processor-tier misses (0 when off)
  std::uint64_t cache_evictions = 0; ///< dirty-line writebacks to banks
  /// Most processor-tier misses charged to any one processor — the
  /// h_proc of the miss traffic (core::dxbsp_step_time_cached).
  std::uint64_t max_proc_miss = 0;
  std::uint64_t combined = 0;       ///< requests merged (if combining enabled)

  // Fault telemetry (all 0 without an injected plan).
  std::uint64_t completed = 0;       ///< requests that finished service
  std::uint64_t retries = 0;         ///< re-issues after a NACK
  std::uint64_t nacks = 0;           ///< attempts rejected by the memory system
  std::uint64_t failovers = 0;       ///< requests redirected off a dead bank
  std::uint64_t degraded_cycles = 0; ///< extra bank busy cycles from slowness

  /// Location contention k: requests aimed at the hottest single address
  /// (hottest bank for scatter_banks) — the paper's k in the d·k bound.
  std::uint64_t max_location_contention = 0;

  /// Fraction of bank service capacity used: d·n / (B · cycles).
  double bank_utilization = 0.0;

  /// Exact decomposition of `cycles` into issue-gap / window-stall /
  /// latency / bank-service / retry-backoff / failover. The terms sum to
  /// `cycles` — an identity Machine::run enforces on every operation and
  /// that holds bit-identically on both engines
  /// (docs/observability.md §attribution).
  obs::CostBreakdown breakdown;

  /// Per-bank load distribution of this operation: served requests only,
  /// so NACK-failed (RequestTiming::kUnserved) slots never count.
  obs::BankLoadSketch bank_sketch;

  /// Average cycles per completed element. Failed requests (their timing
  /// slots hold RequestTiming::kUnserved) are excluded: a lossy run's
  /// per-element cost reflects the work that happened, not a denominator
  /// padded with requests that never finished.
  [[nodiscard]] double cycles_per_element() const noexcept {
    return cycles_per_element_of(cycles, completed);
  }
};

/// Outcome of a fault-aware bulk operation: the telemetry plus, when the
/// retry budget was exhausted or no bank was left alive, a structured
/// degradation report. bulk.completed + degraded->failed_requests == n
/// always holds (request conservation).
struct FaultyBulk {
  BulkResult bulk;
  std::optional<fault::DegradedResult> degraded;

  [[nodiscard]] bool ok() const noexcept { return !degraded.has_value(); }
};

/// The simulated machine. Construct once per configuration; bulk
/// operations are independent (state is reset between them).
class Machine {
 public:
  /// Uses the given mapping (shared so model-side analyses can observe
  /// the identical placement).
  Machine(MachineConfig config, std::shared_ptr<const mem::BankMapping> mapping);

  /// Convenience: interleaved mapping (bank = addr mod B).
  explicit Machine(MachineConfig config);

  [[nodiscard]] const MachineConfig& config() const noexcept { return config_; }
  [[nodiscard]] const mem::BankMapping& mapping() const noexcept {
    return *mapping_;
  }
  [[nodiscard]] std::shared_ptr<const mem::BankMapping> mapping_ptr()
      const noexcept {
    return mapping_;
  }

  /// Per-request timing record of one bulk operation (scatter_detailed).
  /// All vectors have one entry per request, in element order.
  struct RequestTiming {
    /// Sentinel held in every slot of a request the fault path failed
    /// (retry budget exhausted / no bank alive): ~0 cannot be confused
    /// with a real cycle, unlike the 0 it used to read as. Served
    /// requests always overwrite all five slots; inspect `timing` after
    /// catching fault::DegradedError to see which requests never made it.
    static constexpr std::uint64_t kUnserved = ~0ULL;

    std::vector<std::uint64_t> issue;       ///< departure from the CPU
    std::vector<std::uint64_t> arrival;     ///< arrival at the bank
    std::vector<std::uint64_t> start;       ///< bank service start
    std::vector<std::uint64_t> completion;  ///< response back at the CPU
    /// Serving bank. A request served by the processor-tier cache never
    /// reached a bank: its bank slot stays kUnserved while its
    /// completion is real (arrival/start collapse to the issue time).
    std::vector<std::uint64_t> bank;

    /// Queue wait of request i (service start - bank arrival).
    [[nodiscard]] std::uint64_t wait(std::size_t i) const {
      return start[i] - arrival[i];
    }

    /// Whether request i completed (false: all its slots are kUnserved).
    [[nodiscard]] bool served(std::size_t i) const {
      return completion[i] != kUnserved;
    }
  };

  /// Event-engine selection (docs/performance.md). kAuto — the default —
  /// classifies each bulk op from cheap pre-dispatch features
  /// (EngineSelector) and dispatches it to the calendar wheel, the binary
  /// heap, the dense fast path or the SoA batched kernel; kCalendar pins
  /// the calendar-queue scheduler (with its dense fast path), kReference
  /// the original heap-based loop, kept for differential testing and
  /// before/after benchmarking. All strategies produce bit-identical
  /// BulkResult/RequestTiming/trace output
  /// (tests/engine_equivalence_test.cpp). Compiling with
  /// -DDXBSP_REFERENCE_ENGINE pins the default to kReference.
  enum class Engine { kCalendar, kReference, kAuto };
  void set_engine(Engine e) noexcept { engine_ = e; }
  [[nodiscard]] Engine engine() const noexcept { return engine_; }

  /// Attaches the selector log (non-owning; nullptr detaches): each bulk
  /// op appends one decision row under `track` (use the sweep-point key)
  /// — features, choice, predicted vs measured cycles. Resets the
  /// selector's one-superstep memory and the superstep sequence so
  /// decision sequences are reproducible per attach point.
  void set_selector(obs::SelectorLog* log, std::uint64_t track = 0) noexcept {
    selector_log_ = log;
    selector_track_ = track;
    selector_.reset();
    superstep_seq_ = 0;
  }

  /// The adaptive policy instance (test hook: selector().force(...)).
  [[nodiscard]] EngineSelector& selector() noexcept { return selector_; }

  /// Attaches a cancellation token (non-owning; may outlive bulk ops but
  /// must outlive the Machine's use of it). The event loop polls it
  /// every few thousand events and aborts the bulk operation with
  /// Error{kInterrupted} once it trips — and heartbeats it at the same
  /// cadence so a stall watchdog can tell "long run" from "wedged run".
  /// Pass nullptr to detach.
  void set_cancel(const resilience::CancelToken* token) noexcept {
    cancel_ = token;
    banks_.set_cancel(token);
  }

  /// Attaches a trace ring (non-owning; must outlive the Machine's use
  /// of it): subsequent bulk operations record superstep spans, bank
  /// busy intervals, queue-depth samples, issue-stall spans and fault
  /// events into it (docs/observability.md). One ring per concurrent
  /// Machine — rings are single-writer. Pass nullptr to detach. When
  /// tracing is compiled out (DXBSP_OBS_TRACE=0) this is accepted and
  /// ignored.
  ///
  /// An *exact* tracer (the default) needs every event, so it disables
  /// the batched engines that cannot emit them — the documented --trace
  /// observer effect. A `passive` tracer inverts that trade: engine
  /// selection is untouched (the run stays byte-identical to an
  /// untraced one, selector log included) and the ring receives only
  /// the events the chosen engine happens to emit — at minimum the
  /// per-op superstep span, everything under the unspecialized loop.
  /// The fleet flight recorder (svc/worker.hpp) uses passive mode.
  void set_tracer(obs::TraceRing* ring, bool passive = false) noexcept {
    trace_ = ring;
    trace_passive_ = passive && ring != nullptr;
  }
  [[nodiscard]] obs::TraceRing* tracer() const noexcept { return trace_; }

  /// Attaches run-level attribution aggregation (non-owning; nullptr
  /// detaches): each bulk op's CostBreakdown and BankLoadSketch are
  /// merged into `agg` (commutative, so sweep-thread interleaving never
  /// changes the totals). Per-op attribution itself is always on.
  void set_attribution(obs::AttributionAggregate* agg) noexcept {
    attr_agg_ = agg;
  }

  /// Attaches a drift detector (non-owning; nullptr detaches): each bulk
  /// op is scored against the model prediction under `track` (use the
  /// sweep-point key). Resets this machine's superstep sequence number.
  void set_drift(obs::DriftDetector* detector,
                 std::uint64_t track = 0) noexcept {
    drift_ = detector;
    drift_track_ = track;
    superstep_seq_ = 0;
  }

  /// Scratchpad placement (cache-mode=scratchpad, docs/cache.md): the
  /// given line ids (word address / cache-line words) become the pinned
  /// contents of every processor's local store — red-blue-style manual
  /// placement, typically from cache::hot_lines. Replaces the previous
  /// pin set; persists across bulk operations. Error{kConfig} unless
  /// the machine's cache tier is in scratchpad mode, or if the set
  /// exceeds its capacity.
  void pin_scratchpad(std::span<const std::uint64_t> line_ids);

  /// Attaches a fault plan: subsequent bulk operations run fault-aware
  /// (slow banks, failover off dead banks, NACK/retry). The plan must be
  /// sized to this machine's bank count. Pass nullptr to clear.
  void inject(std::shared_ptr<const fault::FaultPlan> plan);
  void clear_faults() noexcept { plan_.reset(); }
  [[nodiscard]] const fault::FaultPlan* fault_plan() const noexcept {
    return plan_.get();
  }

  /// Simulates a bulk scatter of the given word addresses. Element i is
  /// handled by the processor given by the configured distribution.
  /// With a fault plan injected, throws fault::DegradedError when the
  /// operation could not fully complete (use scatter_faulty to receive
  /// the structured result instead).
  [[nodiscard]] BulkResult scatter(std::span<const std::uint64_t> addrs);

  /// Fault-aware scatter that never throws on degradation: returns the
  /// telemetry plus an optional DegradedResult.
  [[nodiscard]] FaultyBulk scatter_faulty(std::span<const std::uint64_t> addrs);

  /// Like scatter, but additionally records per-request timing into
  /// `timing` (cleared and resized). Use for queue-dynamics studies; the
  /// cycle results are identical to scatter's.
  [[nodiscard]] BulkResult scatter_detailed(
      std::span<const std::uint64_t> addrs, RequestTiming& timing);

  /// Gather has identical timing to scatter on these machines (the paper
  /// reports "almost identical results"); provided for readable call sites.
  [[nodiscard]] BulkResult gather(std::span<const std::uint64_t> addrs) {
    return scatter(addrs);
  }

  /// Scatter where bank ids are supplied directly (mapping bypassed);
  /// used to study mapping effects in isolation.
  [[nodiscard]] BulkResult scatter_banks(std::span<const std::uint64_t> banks);

  /// Ablation: every request is available at the banks at time L with no
  /// issue pipelining (the bulk-synchronous delivery assumption of BSP).
  /// Requests are served in index order.
  [[nodiscard]] BulkResult scatter_bulk_delivery(
      std::span<const std::uint64_t> addrs);

  /// Cycles for an elementwise compute phase of `ops_per_element`
  /// operations over n elements spread across the processors (1 op/cycle,
  /// perfectly vectorized).
  [[nodiscard]] std::uint64_t compute(std::uint64_t n_elements,
                                      double ops_per_element) const;

  ~Machine();

 private:
  /// First-failure record the engines fill for the degraded epilogue.
  struct FailTally {
    std::uint64_t failed = 0;
    std::uint64_t first_elem = 0;
    std::uint64_t first_attempts = 0;
    const char* first_reason = nullptr;
  };

  FaultyBulk run(std::span<const std::uint64_t> ids, bool ids_are_banks,
                 RequestTiming* timing = nullptr);

  /// The original priority_queue event loop (pre-calendar hot path);
  /// returns the makespan.
  std::uint64_t run_reference(std::span<const std::uint64_t> ids,
                              bool ids_are_banks, RequestTiming* timing,
                              BulkResult& res, FailTally& tally);

  /// Batched-routing engine hosting the scheduled paths (calendar wheel
  /// or binary heap, per `choice`), the dense fast path and the SoA
  /// batched kernel.
  std::uint64_t run_calendar(std::span<const std::uint64_t> ids,
                             bool ids_are_banks, RequestTiming* timing,
                             BulkResult& res, FailTally& tally,
                             obs::EngineChoice choice);

  /// Structure-of-arrays batched kernel (docs/performance.md §soa);
  /// exact only under EngineFeatures::eligible_soa. `route` is the
  /// per-element bank plane already computed by run_calendar.
  std::uint64_t run_soa(std::span<const std::uint64_t> ids,
                        bool ids_are_banks, const std::uint64_t* route,
                        BulkResult& res, std::uint64_t max_count);

  /// Fire-and-forget write traffic from the cache tier: traverses the
  /// network and occupies a bank, acks to nobody. `whole_line` marks a
  /// dirty-eviction line transfer (routed by line id); a write-through
  /// forward is a single-word store routed by the word's own bank. A
  /// dead bank redirects to its failover spare (counted); with no spare
  /// the write is dropped — there is no requester to NACK.
  void line_writeback(std::uint64_t addr, std::uint64_t depart,
                      std::uint64_t proc, bool whole_line, BulkResult& res);

  MachineConfig config_;
  std::shared_ptr<const mem::BankMapping> mapping_;
  BankArray banks_;
  Network network_;
  // Processor-tier cache (docs/cache.md); null when disabled, so the
  // flat-memory hot paths carry a single pointer test.
  std::unique_ptr<cache::CacheTier> tier_;
  std::shared_ptr<const fault::FaultPlan> plan_;
  const resilience::CancelToken* cancel_ = nullptr;
  obs::TraceRing* trace_ = nullptr;
  bool trace_passive_ = false;  ///< tracer observes, never steers engines
  obs::AttributionAggregate* attr_agg_ = nullptr;
  obs::DriftDetector* drift_ = nullptr;
  std::uint64_t drift_track_ = 0;
  obs::SelectorLog* selector_log_ = nullptr;
  std::uint64_t selector_track_ = 0;
  EngineSelector selector_;
  std::uint64_t superstep_seq_ = 0;
  // Per-op attribution scratch (critical-event latch + retry origins)
  // and the location-contention counting table, reused across bulk ops.
  obs::CostAttributor attr_;
  util::MultiplicityCounter contention_;
#ifdef DXBSP_REFERENCE_ENGINE
  Engine engine_ = Engine::kReference;
#else
  Engine engine_ = Engine::kAuto;
#endif
  // Calendar-engine working state (scheduler buckets, route vector,
  // per-processor issue state, completion rings), allocated on first use
  // and reused across every bulk op of this Machine's lifetime.
  struct EngineState;
  std::unique_ptr<EngineState> state_;
};

}  // namespace dxbsp::sim
