#include "sim/machine_config.hpp"

#include "resilience/error.hpp"

namespace dxbsp::sim {

void MachineConfig::validate() const {
  if (processors == 0)
    raise(ErrorCode::kConfig, "MachineConfig: processors must be >= 1");
  if (gap == 0) raise(ErrorCode::kConfig, "MachineConfig: gap must be >= 1");
  if (bank_delay == 0)
    raise(ErrorCode::kConfig, "MachineConfig: bank_delay must be >= 1");
  if (expansion == 0)
    raise(ErrorCode::kConfig, "MachineConfig: expansion must be >= 1");
  if (slackness == 0)
    raise(ErrorCode::kConfig, "MachineConfig: slackness must be >= 1");
  if (network_sections > banks())
    raise(ErrorCode::kConfig,
        "MachineConfig: more network sections than banks");
  // Period/port parameters are rejected when zero even if their feature
  // is currently off: a zero value is always a configuration error and
  // would otherwise arm a divide-by-zero for whoever enables the feature.
  if (section_period == 0)
    raise(ErrorCode::kConfig, "MachineConfig: section_period must be >= 1");
  if (link_period == 0)
    raise(ErrorCode::kConfig, "MachineConfig: link_period must be >= 1");
  if (bank_ports == 0)
    raise(ErrorCode::kConfig, "MachineConfig: bank_ports must be >= 1");
  if (butterfly_network && network_sections != 0)
    raise(ErrorCode::kConfig,
        "MachineConfig: butterfly and sectioned networks are exclusive");
  if (bank_cache_lines != 0) {
    if (cache_line_words == 0)
      raise(ErrorCode::kConfig,
          "MachineConfig: cache_line_words must be >= 1");
    if (cached_delay == 0 || cached_delay > bank_delay)
      raise(ErrorCode::kConfig,
          "MachineConfig: cached_delay must be in [1, bank_delay]");
  }
  cache.validate();
}

MachineConfig MachineConfig::cray_c90() {
  MachineConfig c;
  c.name = "cray-c90";
  c.processors = 16;
  c.gap = 1;
  c.latency = 24;       // SRAM-era network round trip, in CPU cycles
  c.bank_delay = 6;     // paper: C90 SRAM bank delay of 6 clocks
  c.expansion = 64;     // 1024 banks / 16 CPUs
  c.slackness = 64 * 1024;
  return c;
}

MachineConfig MachineConfig::cray_j90() {
  MachineConfig c;
  c.name = "cray-j90";
  c.processors = 8;     // dedicated 8-processor system used in the paper
  c.gap = 1;
  c.latency = 30;
  c.bank_delay = 14;    // paper: J90 DRAM bank delay of 14 clocks
  c.expansion = 32;     // 256 banks for the 8-CPU configuration
  c.slackness = 64 * 1024;
  return c;
}

MachineConfig MachineConfig::tera_like() {
  MachineConfig c;
  c.name = "tera-like";
  c.processors = 256;
  c.gap = 1;
  c.latency = 128;      // long network, hidden by multithreading
  c.bank_delay = 8;
  c.expansion = 2;      // 512 DRAM banks / 256 processors
  c.slackness = 1024;   // 128 streams x 8 deep, roughly
  return c;
}

MachineConfig MachineConfig::test_machine() {
  MachineConfig c;
  c.name = "test";
  c.processors = 4;
  c.gap = 1;
  c.latency = 8;
  c.bank_delay = 4;
  c.expansion = 4;
  c.slackness = 64;
  return c;
}

std::vector<MachineConfig> MachineConfig::table1_presets() {
  return {cray_c90(), cray_j90(), tera_like()};
}

MachineConfig MachineConfig::parse(const std::string& spec) {
  MachineConfig cfg;  // defaults; replaced if the first token is a preset
  std::vector<std::string> tokens;
  std::size_t start = 0;
  while (start <= spec.size()) {
    const std::size_t comma = spec.find(',', start);
    const std::size_t end = comma == std::string::npos ? spec.size() : comma;
    if (end > start) tokens.push_back(spec.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }

  std::size_t first_kv = 0;
  if (!tokens.empty() && tokens[0].find('=') == std::string::npos) {
    const std::string& preset = tokens[0];
    if (preset == "j90" || preset == "cray-j90") {
      cfg = cray_j90();
    } else if (preset == "c90" || preset == "cray-c90") {
      cfg = cray_c90();
    } else if (preset == "tera" || preset == "tera-like") {
      cfg = tera_like();
    } else if (preset == "test") {
      cfg = test_machine();
    } else {
      raise(ErrorCode::kParse, "MachineConfig::parse: unknown preset '" +
                                  preset + "'");
    }
    first_kv = 1;
  }

  for (std::size_t i = first_kv; i < tokens.size(); ++i) {
    const std::string& tok = tokens[i];
    const std::size_t eq = tok.find('=');
    if (eq == std::string::npos)
      raise(ErrorCode::kParse,
          "MachineConfig::parse: expected key=value, got '" + tok + "'");
    const std::string key = tok.substr(0, eq);
    const std::string value = tok.substr(eq + 1);
    auto as_int = [&]() -> std::uint64_t {
      try {
        return static_cast<std::uint64_t>(std::stoull(value));
      } catch (const std::exception&) {
        raise(ErrorCode::kParse, "MachineConfig::parse: bad value for '" +
                                    key + "': '" + value + "'");
      }
    };
    if (key == "p") {
      cfg.processors = as_int();
    } else if (key == "g") {
      cfg.gap = as_int();
    } else if (key == "L") {
      cfg.latency = as_int();
    } else if (key == "d") {
      cfg.bank_delay = as_int();
    } else if (key == "x") {
      cfg.expansion = as_int();
    } else if (key == "S") {
      cfg.slackness = as_int();
    } else if (key == "sections") {
      cfg.network_sections = as_int();
    } else if (key == "section-period") {
      cfg.section_period = as_int();
    } else if (key == "ports") {
      cfg.bank_ports = as_int();
    } else if (key == "butterfly") {
      cfg.butterfly_network = (value != "0" && value != "false");
    } else if (key == "link-period") {
      cfg.link_period = as_int();
    } else if (key == "cache-lines") {
      cfg.bank_cache_lines = as_int();
    } else if (key == "line-words") {
      cfg.cache_line_words = as_int();
    } else if (key == "cached-delay") {
      cfg.cached_delay = as_int();
    } else if (key == "cache") {
      cfg.cache.capacity = as_int();
    } else if (key == "cache-line") {
      cfg.cache.line_words = as_int();
    } else if (key == "cache-assoc") {
      cfg.cache.assoc = as_int();
    } else if (key == "cache-latency") {
      cfg.cache.hit_latency = as_int();
    } else if (key == "cache-policy") {
      if (value == "lru") {
        cfg.cache.policy = cache::Policy::kLru;
      } else if (value == "fifo") {
        cfg.cache.policy = cache::Policy::kFifo;
      } else {
        raise(ErrorCode::kParse,
            "MachineConfig::parse: cache-policy must be lru or fifo");
      }
    } else if (key == "cache-write") {
      if (value == "through") {
        cfg.cache.write = cache::WritePolicy::kThrough;
      } else if (value == "back") {
        cfg.cache.write = cache::WritePolicy::kBack;
      } else {
        raise(ErrorCode::kParse,
            "MachineConfig::parse: cache-write must be through or back");
      }
    } else if (key == "cache-mode") {
      if (value == "cache") {
        cfg.cache.mode = cache::Mode::kCache;
      } else if (value == "scratchpad") {
        cfg.cache.mode = cache::Mode::kScratchpad;
      } else {
        raise(ErrorCode::kParse,
            "MachineConfig::parse: cache-mode must be cache or scratchpad");
      }
    } else if (key == "combine") {
      cfg.combine_requests = (value != "0" && value != "false");
    } else if (key == "dist") {
      if (value == "block") {
        cfg.distribution = Distribution::kBlock;
      } else if (value == "cyclic") {
        cfg.distribution = Distribution::kCyclic;
      } else {
        raise(ErrorCode::kParse,
            "MachineConfig::parse: dist must be block or cyclic");
      }
    } else {
      raise(ErrorCode::kParse, "MachineConfig::parse: unknown key '" +
                                  key + "'");
    }
  }
  cfg.name = spec.empty() ? cfg.name : spec;
  cfg.validate();
  return cfg;
}

}  // namespace dxbsp::sim
