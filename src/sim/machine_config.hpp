#pragma once
// Machine configuration for the pipelined-memory multiprocessor simulator.
//
// The parameters mirror the (d,x)-BSP model plus the few mechanism-level
// knobs the paper's experiments exercise (slackness window, network
// sections). Presets approximate the machines in the paper's Table 1;
// exact Cray part counts are approximated where the text does not pin
// them down (see DESIGN.md §3).

#include <cstdint>
#include <string>
#include <vector>

#include "cache/config.hpp"

namespace dxbsp::sim {

/// How consecutive elements of a bulk operation are assigned to
/// processors. Cray-style vectorized loops give each CPU a contiguous
/// block; cyclic assignment interleaves.
enum class Distribution { kBlock, kCyclic };

/// Full description of a simulated machine.
struct MachineConfig {
  std::string name = "base";

  std::uint64_t processors = 8;   ///< p
  std::uint64_t gap = 1;          ///< g: cycles between issues per processor
  std::uint64_t latency = 50;     ///< L: one-way network latency in cycles
  std::uint64_t bank_delay = 6;   ///< d: bank busy period per request
  std::uint64_t expansion = 16;   ///< x: banks per processor

  /// S: maximum outstanding requests per processor (latency-hiding window;
  /// the paper uses S = 64K for all experiments).
  std::uint64_t slackness = 64 * 1024;

  /// Network sectioning. 0 sections = ideal network (latency only).
  /// Otherwise banks are striped across `network_sections` sections and
  /// each section port accepts one request every `section_period` cycles.
  std::uint64_t network_sections = 0;
  std::uint64_t section_period = 1;

  /// Bank caching (Hsu & Smith [HS93]; the paper lists it as a memory-
  /// system refinement the (d,x)-BSP does not capture, available on the
  /// Tera). 0 disables. Otherwise each bank keeps `bank_cache_lines`
  /// most-recently-used lines of `cache_line_words` words; a request
  /// hitting a cached line occupies the bank for `cached_delay` cycles
  /// instead of `bank_delay`.
  std::uint64_t bank_cache_lines = 0;
  std::uint64_t cache_line_words = 8;
  std::uint64_t cached_delay = 1;

  /// Butterfly network ([ST91]-style refined model): when true, requests
  /// traverse log2(banks) stages of shared wires, each occupied
  /// `link_period` cycles per packet; congestion emerges from wire
  /// sharing instead of the coarse section model. Mutually exclusive
  /// with network_sections.
  bool butterfly_network = false;
  std::uint64_t link_period = 1;

  /// Ports per bank: a bank with b ports serves up to b overlapping
  /// requests, each still occupying its port for `bank_delay` cycles
  /// (the dual-pipe organization of C90-class memory sections). The
  /// (d,x)-BSP has no port parameter — a b-ported bank behaves like b
  /// banks of the plain kind for balanced traffic but NOT for a single
  /// hot location (the location still lives in one bank, but b ports
  /// drain its queue b-fold faster); ablation A9 probes the difference.
  std::uint64_t bank_ports = 1;

  /// Combining of concurrent requests to the same location inside the
  /// memory system (Ranade-style; the paper notes its analysis assumes
  /// combining is *absent* on Cray-like machines). When true, a request
  /// arriving at a bank while a request for the same word is queued or
  /// in service is merged with it (no extra bank occupancy) — location
  /// contention becomes nearly free, which is exactly the machine the
  /// CRCW PRAM assumes.
  bool combine_requests = false;

  /// Per-processor cache/local-memory tier in front of the banks
  /// (src/cache/, docs/cache.md). Disabled by default (capacity 0): the
  /// machine is then bit-identical to the flat (d,x)-BSP memory system.
  /// Distinct from the bank-side MRU cache above ([HS93]), which sits
  /// *inside* the banks and only shortens their busy period.
  cache::CacheConfig cache;

  Distribution distribution = Distribution::kBlock;

  [[nodiscard]] std::uint64_t banks() const noexcept {
    return expansion * processors;
  }

  /// Throws std::invalid_argument if any parameter is out of range.
  void validate() const;

  // ---- Presets approximating the paper's Table 1 machines ----

  /// Cray C90-like: 16 CPUs, 1024 SRAM banks (x = 64), bank delay 6.
  [[nodiscard]] static MachineConfig cray_c90();

  /// Cray J90-like: 8 CPUs (the paper's dedicated experiment system),
  /// DRAM banks with delay 14, x = 32.
  [[nodiscard]] static MachineConfig cray_j90();

  /// Tera MTA-like: many processors, modest expansion, long latency hidden
  /// by massive multithreading (large slackness).
  [[nodiscard]] static MachineConfig tera_like();

  /// Small deterministic machine for unit tests (p=4, x=4, d=4, L=8).
  [[nodiscard]] static MachineConfig test_machine();

  /// All presets, for Table 1 printing.
  [[nodiscard]] static std::vector<MachineConfig> table1_presets();

  /// Parses a machine spec string: an optional preset name followed by
  /// comma-separated overrides, e.g. "j90,p=16,d=20,combine=1" or
  /// "p=4,g=2,L=10,d=8,x=4". Keys: p, g, L, d, x, S (slackness),
  /// sections, section-period, ports, cache-lines, line-words,
  /// cached-delay, combine (0/1), dist (block|cyclic), and the
  /// processor-cache tier knobs cache (capacity in lines), cache-line
  /// (words), cache-assoc (0 = fully associative), cache-policy
  /// (lru|fifo), cache-write (through|back), cache-mode
  /// (cache|scratchpad), cache-latency. Throws std::invalid_argument on
  /// unknown keys or presets; the result is validate()d.
  [[nodiscard]] static MachineConfig parse(const std::string& spec);
};

}  // namespace dxbsp::sim
