#include "sim/network.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "resilience/error.hpp"
#include "util/bits.hpp"

namespace dxbsp::sim {

Network::Network(std::uint64_t latency, std::uint64_t sections,
                 std::uint64_t section_period, std::uint64_t num_banks)
    : model_(sections == 0 ? NetworkModel::kIdeal : NetworkModel::kSectioned),
      latency_(latency),
      sections_(sections),
      section_period_(section_period) {
  if (sections_ > num_banks)
    raise(ErrorCode::kConfig, "Network: more sections than banks");
  if (sections_ != 0 && section_period_ == 0)
    raise(ErrorCode::kConfig, "Network: section_period must be >= 1");
  port_free_.assign(std::max<std::uint64_t>(sections_, 1), 0);
}

Network Network::butterfly(std::uint64_t latency, std::uint64_t link_period,
                           std::uint64_t num_banks,
                           std::uint64_t num_sources) {
  if (num_banks == 0)
    raise(ErrorCode::kConfig, "Network::butterfly: need banks");
  if (link_period == 0)
    raise(ErrorCode::kConfig, "Network::butterfly: link_period must be >= 1");
  Network n;
  n.model_ = NetworkModel::kButterfly;
  n.latency_ = latency;
  n.width_ = util::ceil_pow2(std::max<std::uint64_t>(num_banks, 2));
  n.stages_ = util::log2_floor(n.width_);
  n.link_period_ = link_period;
  n.stage_hop_ = latency / std::max<std::uint64_t>(n.stages_, 1);
  n.exit_latency_ = latency - n.stage_hop_ * n.stages_;
  n.src_spread_ =
      std::max<std::uint64_t>(1, n.width_ / std::max<std::uint64_t>(
                                                num_sources, 1));
  n.wire_free_.assign(n.stages_ * n.width_, 0);
  return n;
}

std::uint64_t Network::traverse(std::uint64_t bank, std::uint64_t depart,
                                std::uint64_t src) {
  switch (model_) {
    case NetworkModel::kIdeal:
      return depart + latency_;

    case NetworkModel::kSectioned: {
      // Split the latency around the section port: half to reach the
      // port, service at the port, half to reach the bank.
      const std::uint64_t to_port = depart + latency_ / 2;
      std::uint64_t& free_at = port_free_[section_of(bank)];
      if (to_port < free_at) ++port_conflicts_;
      const std::uint64_t start = std::max(to_port, free_at);
      free_at = start + section_period_;
      return start + section_period_ + (latency_ - latency_ / 2);
    }

    case NetworkModel::kButterfly: {
      // Dimension-order route: after stage s the packet's position has
      // its low s+1 bits replaced by the destination's.
      const std::uint64_t input = (src * src_spread_) % width_;
      std::uint64_t t = depart;
      for (std::uint64_t s = 0; s < stages_; ++s) {
        const std::uint64_t mask = (2ULL << s) - 1;
        const std::uint64_t pos = (input & ~mask) | (bank & mask);
        std::uint64_t& free_at = wire_free_[s * width_ + pos];
        const std::uint64_t reach = t + stage_hop_;
        if (reach < free_at) ++port_conflicts_;
        const std::uint64_t start = std::max(reach, free_at);
        free_at = start + link_period_;
        t = start + link_period_;
      }
      return t + exit_latency_;
    }
  }
  return depart + latency_;
}

void Network::publish(obs::MetricsRegistry& reg) const {
  reg.counter("net.port_conflicts").add(port_conflicts_);
  reg.counter("net.nacks").add(nacks_);
}

void Network::reset() {
  std::fill(port_free_.begin(), port_free_.end(), 0);
  std::fill(wire_free_.begin(), wire_free_.end(), 0);
  port_conflicts_ = 0;
  nacks_ = 0;
}

}  // namespace dxbsp::sim
