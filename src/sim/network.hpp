#pragma once
// Network models between processors and banks.
//
// Three fidelities, selectable per machine:
//  * ideal       — constant one-way latency L (the paper's experiments
//                  report L as negligible next to bandwidth terms);
//  * sectioned   — banks striped over a few sections, each section port
//                  admitting one request every `section_period` cycles:
//                  the coarse model that reproduces the paper's version
//                  (a)/(b)/(c) placement experiment;
//  * butterfly   — a log2(B)-stage multistage network with per-wire
//                  occupancy (the refined model of [ST91] the paper says
//                  version (c) would need): congestion *emerges* from
//                  shared intermediate wires rather than being declared
//                  per section.

#include <cstdint>
#include <vector>

namespace dxbsp::obs {
class MetricsRegistry;
}

namespace dxbsp::sim {

enum class NetworkModel { kIdeal, kSectioned, kButterfly };

/// Latency plus optional contention structure.
class Network {
 public:
  /// Ideal or sectioned (sections == 0 means ideal): the legacy
  /// constructor used by MachineConfig's `network_sections` field.
  Network(std::uint64_t latency, std::uint64_t sections,
          std::uint64_t section_period, std::uint64_t num_banks);

  /// Butterfly factory: log2(ceil_pow2(num_banks)) stages of wires, each
  /// wire occupied `link_period` cycles per packet. The latency budget L
  /// is spread across the stages (plus any remainder at the exit).
  [[nodiscard]] static Network butterfly(std::uint64_t latency,
                                         std::uint64_t link_period,
                                         std::uint64_t num_banks,
                                         std::uint64_t num_sources);

  [[nodiscard]] NetworkModel model() const noexcept { return model_; }

  /// Section of bank `bank` (sectioned model; 0 otherwise).
  [[nodiscard]] std::uint64_t section_of(std::uint64_t bank) const noexcept {
    return sections_ == 0 ? 0 : bank % sections_;
  }

  /// A request from source processor `src` enters the network at
  /// `depart` heading for `bank`; returns its arrival time at the bank.
  /// Calls must be made in nondecreasing `depart` order (the machine's
  /// event loop guarantees this), so wire/port queues are FIFO.
  std::uint64_t traverse(std::uint64_t bank, std::uint64_t depart,
                         std::uint64_t src = 0);

  [[nodiscard]] std::uint64_t latency() const noexcept { return latency_; }
  [[nodiscard]] std::uint64_t sections() const noexcept { return sections_; }
  [[nodiscard]] std::uint64_t stages() const noexcept { return stages_; }

  /// Requests that found a port/wire busy (a congestion measure).
  [[nodiscard]] std::uint64_t port_conflicts() const noexcept {
    return port_conflicts_;
  }

  /// Response-path traversal of a NACK: a request rejected by the memory
  /// system at `arrival` reaches its processor again after the one-way
  /// latency (the return path is uncontended in all three models, like
  /// the response path of a served request).
  std::uint64_t nack_return(std::uint64_t arrival) noexcept {
    ++nacks_;
    return arrival + latency_;
  }

  /// NACKs carried back so far.
  [[nodiscard]] std::uint64_t nacks() const noexcept { return nacks_; }

  /// Publishes this network's counters into `reg` under the "net."
  /// prefix. Called by Machine at the end of each bulk op.
  void publish(obs::MetricsRegistry& reg) const;

  void reset();

 private:
  Network() = default;

  NetworkModel model_ = NetworkModel::kIdeal;
  std::uint64_t latency_ = 0;

  // Sectioned state.
  std::uint64_t sections_ = 0;
  std::uint64_t section_period_ = 1;
  std::vector<std::uint64_t> port_free_;

  // Butterfly state.
  std::uint64_t stages_ = 0;
  std::uint64_t width_ = 0;        // pow2 >= banks
  std::uint64_t link_period_ = 1;
  std::uint64_t stage_hop_ = 0;    // latency share per stage
  std::uint64_t exit_latency_ = 0; // leftover latency after the stages
  std::uint64_t src_spread_ = 1;   // input port spacing for sources
  std::vector<std::uint64_t> wire_free_;  // stages_ x width_

  std::uint64_t port_conflicts_ = 0;
  std::uint64_t nacks_ = 0;
};

}  // namespace dxbsp::sim
