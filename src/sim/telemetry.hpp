#pragma once
// The derived-telemetry formulas shared by every BulkResult producer.
//
// Centralized because the naive forms divide by quantities that are
// legitimately zero on an empty superstep (n == 0 => cycles == 0, and a
// zero-bank config would make B·cycles == 0): every caller used to
// open-code the division and most forgot the guard. Both helpers define
// the empty superstep's value as 0.0 — "no work" uses no bank capacity
// and costs nothing per element — and never divide by zero.

#include <cstdint>

namespace dxbsp::sim {

/// Fraction of bank service capacity used: d·n / (B·cycles); 0.0 when
/// the denominator would be 0 (empty superstep or degenerate config).
[[nodiscard]] constexpr double bank_utilization_of(
    std::uint64_t bank_delay, std::uint64_t n, std::uint64_t banks,
    std::uint64_t cycles) noexcept {
  if (banks == 0 || cycles == 0) return 0.0;
  return static_cast<double>(bank_delay) * static_cast<double>(n) /
         (static_cast<double>(banks) * static_cast<double>(cycles));
}

/// Average cycles per element: cycles / n; 0.0 for an empty superstep.
[[nodiscard]] constexpr double cycles_per_element_of(
    std::uint64_t cycles, std::uint64_t n) noexcept {
  if (n == 0) return 0.0;
  return static_cast<double>(cycles) / static_cast<double>(n);
}

}  // namespace dxbsp::sim
