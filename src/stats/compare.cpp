#include "stats/compare.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "util/stats.hpp"

namespace dxbsp::stats {

Comparison::Comparison(std::string x_label, std::string series_label)
    : x_label_(std::move(x_label)), series_label_(std::move(series_label)) {}

namespace {
std::pair<std::vector<double>, std::vector<double>> split(
    const std::vector<ComparisonPoint>& pts, bool dxbsp) {
  std::vector<double> pred, meas;
  pred.reserve(pts.size());
  meas.reserve(pts.size());
  for (const auto& p : pts) {
    pred.push_back(dxbsp ? p.dxbsp : p.bsp);
    meas.push_back(p.measured);
  }
  return {std::move(pred), std::move(meas)};
}
}  // namespace

double Comparison::dxbsp_rms_error() const {
  auto [pred, meas] = split(points_, true);
  return util::rms_relative_error(pred, meas);
}

double Comparison::bsp_rms_error() const {
  auto [pred, meas] = split(points_, false);
  return util::rms_relative_error(pred, meas);
}

double Comparison::max_error(bool dxbsp) const {
  double worst = 0.0;
  for (const auto& p : points_) {
    if (p.measured == 0.0) continue;
    const double pred = dxbsp ? p.dxbsp : p.bsp;
    worst = std::max(worst, std::abs(pred / p.measured - 1.0));
  }
  return worst;
}

double Comparison::dxbsp_max_error() const { return max_error(true); }
double Comparison::bsp_max_error() const { return max_error(false); }

util::Table Comparison::to_table() const {
  util::Table t({x_label_, "measured (cyc)", "dxbsp pred", "bsp pred",
                 "dxbsp/meas", "bsp/meas"});
  t.set_caption(series_label_);
  for (const auto& p : points_) {
    t.add_row(p.x, p.measured, p.dxbsp, p.bsp,
              p.measured == 0.0 ? 0.0 : p.dxbsp / p.measured,
              p.measured == 0.0 ? 0.0 : p.bsp / p.measured);
  }
  return t;
}

void Comparison::print(std::ostream& os) const {
  to_table().print(os);
  os << "  dxbsp: rms rel err = " << dxbsp_rms_error()
     << ", max rel err = " << dxbsp_max_error() << "\n";
  os << "  bsp:   rms rel err = " << bsp_rms_error()
     << ", max rel err = " << bsp_max_error() << "\n";
}

}  // namespace dxbsp::stats
