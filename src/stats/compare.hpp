#pragma once
// Measured-vs-predicted comparison series: the common shape of every
// validation figure (x-axis value, simulator measurement, (d,x)-BSP
// prediction, BSP prediction), with the summary error metrics reported in
// EXPERIMENTS.md.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/table.hpp"

namespace dxbsp::stats {

/// One point of a validation series.
struct ComparisonPoint {
  double x = 0.0;          ///< sweep variable (contention, entropy, ...)
  double measured = 0.0;   ///< simulator cycles
  double dxbsp = 0.0;      ///< (d,x)-BSP prediction
  double bsp = 0.0;        ///< BSP prediction
};

/// A named series of comparison points with error summaries.
class Comparison {
 public:
  Comparison(std::string x_label, std::string series_label);

  void add(ComparisonPoint p) { points_.push_back(p); }
  void add(double x, double measured, double dxbsp, double bsp) {
    points_.push_back(ComparisonPoint{x, measured, dxbsp, bsp});
  }

  [[nodiscard]] const std::vector<ComparisonPoint>& points() const noexcept {
    return points_;
  }

  /// RMS relative error of the (d,x)-BSP prediction against measurement.
  [[nodiscard]] double dxbsp_rms_error() const;
  /// RMS relative error of the BSP prediction against measurement.
  [[nodiscard]] double bsp_rms_error() const;
  /// Worst-case |pred/meas - 1| for the (d,x)-BSP prediction.
  [[nodiscard]] double dxbsp_max_error() const;
  /// Worst-case |pred/meas - 1| for the BSP prediction.
  [[nodiscard]] double bsp_max_error() const;

  /// Renders the series as a table (and error summary footer).
  [[nodiscard]] util::Table to_table() const;

  /// Prints to_table() plus the error summary.
  void print(std::ostream& os) const;

 private:
  [[nodiscard]] double max_error(bool dxbsp) const;

  std::string x_label_;
  std::string series_label_;
  std::vector<ComparisonPoint> points_;
};

}  // namespace dxbsp::stats
