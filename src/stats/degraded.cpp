#include "stats/degraded.hpp"

#include <algorithm>
#include <cmath>

#include "core/balls_bins.hpp"
#include "util/bits.hpp"

namespace dxbsp::stats {

DegradedPrediction predict_degraded(const sim::MachineConfig& cfg,
                                    const fault::FaultPlan& plan,
                                    std::uint64_t n,
                                    std::uint64_t max_contention) {
  DegradedPrediction out;
  const double d = static_cast<double>(cfg.bank_delay);
  const double g = static_cast<double>(cfg.gap);
  const double L = static_cast<double>(cfg.latency);
  const double banks = static_cast<double>(cfg.banks());
  const double nd = static_cast<double>(n);

  const double f_dead = plan.dead_fraction();
  out.x_eff = static_cast<double>(cfg.expansion) * (1.0 - f_dead);
  const double alive = std::max(1.0, banks * (1.0 - f_dead));

  const double f_slow = plan.max_stall_fraction();
  out.d_eff = d / std::max(1.0 - f_slow, 1e-9);

  // Processor term: retries re-enter the network outside the issue
  // pipeline, so the issue bandwidth term is the healthy one.
  const double h_proc =
      std::ceil(nd / static_cast<double>(cfg.processors));
  out.proc_term = g * h_proc;

  // Bank term. Surviving banks share the traffic like balls in bins;
  // the hottest location (k requests) pins one bank regardless. A slow
  // bank serves its expected share at d', so the binding bank is either
  // the most loaded healthy bank at d or a typically-loaded slow bank
  // at d'. Slow banks are an s-of-alive sample, so their expected max
  // load is that of their share of the traffic.
  const double k = static_cast<double>(std::max<std::uint64_t>(
      max_contention, 1));
  const double h_alive =
      std::max(k, core::approx_expected_max_load(nd, alive));
  double bank_term = d * h_alive;
  const double slow_banks =
      plan.slow_fraction() * static_cast<double>(plan.num_banks());
  if (slow_banks >= 1.0 && f_slow > 0.0) {
    const double share = nd * slow_banks / alive;
    const double h_slow =
        std::max(1.0, core::approx_expected_max_load(share, slow_banks));
    bank_term = std::max(bank_term, out.d_eff * h_slow);
  }
  out.bank_term = bank_term;

  // Retry tail: with per-attempt NACK probability q, the worst of n
  // requests needs ~ln(n)/ln(1/q) attempts (capped by the budget), each
  // costing a round trip plus its backoff delay (jitter averages to
  // jitter/2 per retry).
  const double q = plan.drop_rate();
  if (q > 0.0 && n > 0) {
    const auto& r = plan.retry();
    double attempts;
    if (q >= 1.0) {
      attempts = static_cast<double>(r.max_retries);
    } else {
      attempts = std::ceil(std::log(nd) / std::log(1.0 / q));
      attempts = std::clamp(attempts, 1.0,
                            static_cast<double>(r.max_retries));
    }
    double tail = 0.0;
    for (double a = 1.0; a <= attempts; a += 1.0) {
      const double backoff = std::min(
          static_cast<double>(r.backoff_cap),
          static_cast<double>(r.backoff_base) *
              std::pow(2.0, a - 1.0));
      tail += backoff + 2.0 * L +
              static_cast<double>(r.jitter) / 2.0;
    }
    out.retry_tail = tail;
  }

  out.cycles = 2.0 * L + std::max(out.proc_term, out.bank_term) +
               out.retry_tail;
  return out;
}

}  // namespace dxbsp::stats
