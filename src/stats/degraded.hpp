#pragma once
// Analytic companion of the fault subsystem: first-order (d,x)-BSP cost
// corrections for a degraded memory system (docs/faults.md).
//
// The healthy model charges T = 2L + max(g·h_proc, d·h_bank). Under a
// FaultPlan the correction uses effective parameters:
//   * a bank stalled a fraction f_slow of the time (busy multiplier m
//     gives f_slow = 1 - 1/m) has effective delay d' = d / (1 - f_slow);
//   * killing a fraction f_dead of the banks and re-spreading their
//     traffic leaves effective expansion x' = x·(1 - f_dead);
//   * a per-attempt NACK probability q adds a retry tail: the unluckiest
//     of n requests needs about ln(n)/ln(1/q) attempts, each costing a
//     round trip plus its backoff delay.
// The prediction is validated against the simulator by tests/fault_test
// and bench_r1_fault_sweep to the tolerance documented in docs/faults.md.

#include <cstdint>

#include "fault/fault_plan.hpp"
#include "sim/machine_config.hpp"

namespace dxbsp::stats {

/// Degraded-time prediction, with the pieces exposed for tables.
struct DegradedPrediction {
  double d_eff = 0.0;       ///< d' of the slowest affected bank
  double x_eff = 0.0;       ///< x·(1 - f_dead)
  double proc_term = 0.0;   ///< g·h_proc
  double bank_term = 0.0;   ///< max over healthy/slow bank estimates
  double retry_tail = 0.0;  ///< additive worst-request retry delay
  double cycles = 0.0;      ///< 2L + max(proc, bank) + retry_tail
};

/// Predicts the degraded time of a bulk operation of `n` random-ish
/// requests (hottest location touched `max_contention` times) on machine
/// `cfg` under `plan`. Bank loads use the balls-in-bins expected-max
/// estimate over the surviving banks.
[[nodiscard]] DegradedPrediction predict_degraded(
    const sim::MachineConfig& cfg, const fault::FaultPlan& plan,
    std::uint64_t n, std::uint64_t max_contention = 1);

}  // namespace dxbsp::stats
