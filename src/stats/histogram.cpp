#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>

#include "util/bits.hpp"

namespace dxbsp::stats {

std::map<std::uint64_t, std::uint64_t> multiplicities(
    std::span<const std::uint64_t> xs) {
  std::map<std::uint64_t, std::uint64_t> m;
  for (const auto x : xs) ++m[x];
  return m;
}

double shannon_entropy(std::span<const std::uint64_t> xs) {
  if (xs.empty()) return 0.0;
  const auto mult = multiplicities(xs);
  const double n = static_cast<double>(xs.size());
  double h = 0.0;
  for (const auto& [value, count] : mult) {
    (void)value;
    const double p = static_cast<double>(count) / n;
    h -= p * std::log2(p);
  }
  return h;
}

std::map<std::uint64_t, std::uint64_t> contention_spectrum(
    std::span<const std::uint64_t> xs) {
  std::map<std::uint64_t, std::uint64_t> spectrum;
  for (const auto& [value, count] : multiplicities(xs)) {
    (void)value;
    ++spectrum[count];
  }
  return spectrum;
}

std::vector<std::uint64_t> log2_buckets(std::span<const std::uint64_t> xs) {
  std::vector<std::uint64_t> buckets;
  for (const auto x : xs) {
    const unsigned b = x <= 1 ? 0 : util::log2_floor(x);
    if (buckets.size() <= b) buckets.resize(b + 1, 0);
    ++buckets[b];
  }
  return buckets;
}

}  // namespace dxbsp::stats
