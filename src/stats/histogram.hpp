#pragma once
// Histograms and distribution measures over address/key traces.

#include <cstdint>
#include <map>
#include <span>
#include <vector>

namespace dxbsp::stats {

/// Multiplicity histogram: for each distinct value, how many times it
/// occurs. Returned sorted by value.
[[nodiscard]] std::map<std::uint64_t, std::uint64_t> multiplicities(
    std::span<const std::uint64_t> xs);

/// Empirical Shannon entropy (bits) of the value distribution of `xs`:
/// H = -Σ p_v log2 p_v over distinct values v. A trace of n distinct
/// values has entropy log2(n); all-equal values have entropy 0. This is
/// the measure Thearling & Smith use to grade key distributions.
[[nodiscard]] double shannon_entropy(std::span<const std::uint64_t> xs);

/// Contention spectrum: counts[c] = number of distinct locations with
/// multiplicity exactly c (c >= 1). Useful for characterizing traces
/// beyond the max.
[[nodiscard]] std::map<std::uint64_t, std::uint64_t> contention_spectrum(
    std::span<const std::uint64_t> xs);

/// Log-2 bucketed histogram of sample values: bucket b holds values in
/// [2^b, 2^{b+1}); bucket 0 holds {0, 1}. Compact summaries for tables.
[[nodiscard]] std::vector<std::uint64_t> log2_buckets(
    std::span<const std::uint64_t> xs);

}  // namespace dxbsp::stats
