#include "stream/executor.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <map>
#include <utility>

#include "obs/metrics.hpp"
#include "resilience/snapshot.hpp"
#include "stream/slab_pool.hpp"
#include "stream/spill_store.hpp"
#include "workload/patterns.hpp"

namespace dxbsp::stream {

namespace {

// Chained CRC-32 over a handful of result words: seeds with the running
// checksum so order, loss and duplication all perturb the final value.
std::uint64_t chain_crc(std::uint64_t running,
                        std::array<std::uint64_t, 4> words) {
  std::array<unsigned char, sizeof(words)> bytes;
  std::memcpy(bytes.data(), words.data(), sizeof(words));
  return resilience::crc32(bytes, static_cast<std::uint32_t>(running));
}

// Strict uint flag with a flag-named zero rejection: get_uint already
// rejects garbage, sign and overflow; an explicit 0 for a flag that is
// semantically >= 1 gets the same treatment instead of a confusing
// downstream kConfig.
std::uint64_t get_positive(const util::Cli& cli, const std::string& name,
                           std::uint64_t def) {
  const std::uint64_t v = cli.get_uint(name, def);
  // flags().count, not has(): has() treats an explicit "0" as absent
  // (its boolean-flag convention), which is exactly the value that must
  // be rejected loudly here.
  if (cli.flags().count(name) != 0 && v == 0)
    raise(ErrorCode::kParse,
          "--" + name + " must be >= 1 (omit the flag for the default)");
  return v;
}

}  // namespace

void StreamConfig::validate() const {
  if (n == 0) raise(ErrorCode::kConfig, "StreamConfig: n must be >= 1");
  if (space == 0)
    raise(ErrorCode::kConfig, "StreamConfig: space must be >= 1");
  if (partitions == 0)
    raise(ErrorCode::kConfig, "StreamConfig: partitions must be >= 1");
  if (slab_bytes < sizeof(std::uint64_t) ||
      slab_bytes % sizeof(std::uint64_t) != 0)
    raise(ErrorCode::kConfig,
          "StreamConfig: slab_bytes must be a positive multiple of 8, got " +
              std::to_string(slab_bytes));
  if (mem_budget != 0 && mem_budget < slab_bytes)
    raise(ErrorCode::kConfig,
          "StreamConfig: mem_budget (" + std::to_string(mem_budget) +
              ") must hold at least one slab (" + std::to_string(slab_bytes) +
              " bytes)");
  if (mem_budget != 0 && n * sizeof(std::uint64_t) > mem_budget &&
      spill_dir.empty())
    raise(ErrorCode::kConfig,
          "StreamConfig: workload (" + std::to_string(n * 8) +
              " bytes) exceeds mem_budget (" + std::to_string(mem_budget) +
              ") — a spill_dir is required");
  if (resume && checkpoint.empty())
    raise(ErrorCode::kConfig,
          "StreamConfig: resume requires a checkpoint path");
}

StreamConfig StreamConfig::from_cli(const util::Cli& cli) {
  StreamConfig cfg;
  cfg.n = cli.get_uint("n", cfg.n);
  cfg.space = cli.get_uint("space", cfg.space);
  cfg.seed = cli.get_uint("seed", cfg.seed);
  cfg.hot_every = cli.get_uint("hot-every", cfg.hot_every);
  cfg.mem_budget = get_positive(cli, "mem-budget", 0);
  cfg.slab_bytes = get_positive(cli, "slab-bytes", cfg.slab_bytes);
  cfg.partitions = get_positive(cli, "partitions", cfg.partitions);
  cfg.spill_dir = cli.get("spill-dir", "");
  if (cli.has("spill-dir") && cfg.spill_dir.empty())
    raise(ErrorCode::kParse, "--spill-dir must not be empty");
  cfg.disk_retries = cli.get_uint("disk-retries", cfg.disk_retries);
  cfg.checkpoint = cli.get("checkpoint", "");
  cfg.resume = cli.has("resume");
  return cfg;
}

std::uint64_t StreamConfig::stream_id() const noexcept {
  // FNV-1a over the words that shape the element stream and its
  // partitioning (the budget deliberately excluded: any budget replays
  // the same stream, which is what makes cross-budget equivalence and
  // resume-under-a-different-budget sound).
  std::uint64_t h = 1469598103934665603ULL;
  const auto word = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xFFU;
      h *= 1099511628211ULL;
    }
  };
  word(n);
  word(space);
  word(seed);
  word(hot_every);
  word(slab_bytes);
  word(partitions);
  return h;
}

StreamExecutor::StreamExecutor(StreamConfig config, sim::Machine& machine,
                               StreamHooks hooks)
    : config_(std::move(config)), machine_(machine), hooks_(hooks) {
  config_.validate();
}

StreamResult StreamExecutor::run() {
  auto& reg = obs::MetricsRegistry::global();
  const std::uint64_t slab_elems = config_.slab_bytes / sizeof(std::uint64_t);
  const std::uint64_t n_slabs = (config_.n + slab_elems - 1) / slab_elems;
  const std::uint64_t budget =
      config_.mem_budget == 0 ? kUnlimitedBudget : config_.mem_budget;

  // ---- Resume: load the partition bank, if any -----------------------
  std::map<std::uint64_t, resilience::SnapshotRecord> banked;
  if (config_.resume) {
    Expected<resilience::Snapshot> loaded =
        resilience::Snapshot::load(config_.checkpoint);
    if (!loaded) {
      // A missing checkpoint is a fresh start; anything else (corrupt,
      // foreign) must not be silently ignored.
      if (loaded.error().code() != ErrorCode::kIo) throw loaded.error();
    } else {
      if (loaded.value().sweep_id != config_.stream_id())
        raise(ErrorCode::kConfig,
              "StreamExecutor: checkpoint " + config_.checkpoint +
                  " belongs to a different stream config");
      for (const resilience::SnapshotRecord& r : loaded.value().records) {
        if (r.key >= config_.partitions)
          raise(ErrorCode::kConfig,
                "StreamExecutor: checkpoint partition " +
                    std::to_string(r.key) + " out of range");
        banked.emplace(r.key, r);
      }
    }
  }

  std::optional<resilience::CheckpointWriter> writer;
  if (!config_.checkpoint.empty())
    writer.emplace(config_.checkpoint, config_.stream_id());

  SlabPool pool(budget, config_.slab_bytes);
  std::optional<SpillStore> store;
  if (!config_.spill_dir.empty()) {
    SpillOptions opt;
    opt.dir = config_.spill_dir;
    opt.stream_id = config_.stream_id();
    opt.write_retries = config_.disk_retries;
    opt.faults = hooks_.faults;
    opt.chaos = hooks_.chaos;
    opt.chaos_shard = hooks_.chaos_shard;
    opt.chaos_attempt = hooks_.chaos_attempt;
    opt.cancel = hooks_.cancel;
    store.emplace(std::move(opt));
  }

  StreamResult out;
  out.budget_bytes = budget;

  // ---- Phase 1: ingest (generate, stage, spill under pressure) -------
  std::vector<std::uint64_t> next_chunk(config_.partitions, 0);
  for (std::uint64_t s = 0; s < n_slabs; ++s) {
    if (hooks_.cancel != nullptr) {
      hooks_.cancel->heartbeat();
      hooks_.cancel->raise_if_expired("stream ingest");
    }
    const std::uint64_t p = s % config_.partitions;
    if (banked.count(p) != 0) continue;  // already simulated and banked
    const std::uint64_t begin = s * slab_elems;
    const std::uint64_t count = std::min(slab_elems, config_.n - begin);
    pool.admit(s, p,
               workload::stream_slab(config_.seed, begin, count,
                                     config_.space, config_.hot_every));
    reg.counter("stream.slabs_ingested").add(1);

    while (pool.over_budget()) {
      if (!store.has_value())
        raise(ErrorCode::kConfig,
              "StreamExecutor: memory budget exceeded but no spill_dir "
              "configured");
      const std::optional<std::uint64_t> victim = pool.victim_partition();
      if (!victim.has_value())
        raise(ErrorCode::kInternal,
              "StreamExecutor: over budget with nothing resident to evict");
      std::uint64_t freed = 0;
      for (const std::size_t h : pool.resident_of(*victim)) {
        const Slab& slab = pool.slabs()[h];
        const std::uint64_t chunk = next_chunk[*victim]++;
        try {
          store->write(*victim, chunk, slab.data);
        } catch (const Error& e) {
          if (e.code() == ErrorCode::kIo)
            raise(ErrorCode::kDegraded,
                  "spill tier failed while evicting partition " +
                      std::to_string(*victim) + ": " + e.what());
          throw;
        }
        freed += slab.bytes();
        pool.mark_spilled(h, chunk);
        ++out.spill_chunks;
        if (hooks_.trace != nullptr)
          hooks_.trace->record(
              {s, 1, *victim, slab.bytes(), obs::TraceKind::kSpill});
      }
      ++out.back_pressure_events;
      reg.counter("stream.back_pressure_events").add(1);
      if (hooks_.trace != nullptr)
        hooks_.trace->record(
            {s, 1, *victim, freed, obs::TraceKind::kBackPressure});
    }
  }

  // ---- Phase 2: drain (partitions ascending, slabs in replay order) --
  std::vector<resilience::SnapshotRecord> records;
  for (const auto& [key, rec] : banked) records.push_back(rec);
  std::uint64_t fresh_done = 0;  // chaos point:K ordinal (fresh partitions)

  for (std::uint64_t p = 0; p < config_.partitions; ++p) {
    if (hooks_.cancel != nullptr) {
      hooks_.cancel->heartbeat();
      hooks_.cancel->raise_if_expired("stream drain");
    }
    PartitionResult pr;
    pr.partition = p;

    const auto it = banked.find(p);
    if (it != banked.end()) {
      const resilience::SnapshotRecord& rec = it->second;
      pr.slabs = rec.aux[0];
      pr.elements = rec.aux[1];
      pr.checksum = rec.aux[2];
      pr.cycles = rec.result.cycles;
      pr.max_bank_load = rec.result.max_bank_load;
      pr.completed = rec.result.completed;
      pr.resumed = true;
      ++out.partitions_resumed;
    } else {
      for (std::size_t h = 0; h < pool.slabs().size(); ++h) {
        if (pool.slabs()[h].partition != p) continue;
        std::vector<std::uint64_t> data;
        const bool spilled = pool.slabs()[h].spilled;
        const std::uint64_t chunk = pool.slabs()[h].chunk;
        if (spilled) {
          Expected<std::vector<std::uint64_t>> restored =
              store->read(p, chunk);
          if (!restored)
            raise(ErrorCode::kDegraded,
                  "spill restore failed for partition " + std::to_string(p) +
                      ": " + restored.error().what());
          data = std::move(restored).value();
          pool.charge_restored(data.size() * sizeof(std::uint64_t));
        } else {
          data = pool.take(h);
        }
        const sim::BulkResult br = machine_.scatter(data);
        pr.cycles += br.cycles;
        pr.max_bank_load = std::max(pr.max_bank_load, br.max_bank_load);
        pr.completed += br.completed;
        pr.elements += br.n;
        ++pr.slabs;
        pr.checksum = chain_crc(
            pr.checksum, {br.cycles, br.max_bank_load, br.n, br.completed});
        if (spilled) {
          pool.release_restored(data.size() * sizeof(std::uint64_t));
          store->remove(p, chunk);
        }
      }
      reg.counter("stream.elements").add(pr.elements);
    }

    out.elements += pr.elements;
    out.cycles += pr.cycles;
    out.max_bank_load = std::max(out.max_bank_load, pr.max_bank_load);
    out.completed += pr.completed;
    out.checksum = chain_crc(out.checksum, {pr.partition, pr.checksum, 0, 0});
    out.partitions.push_back(pr);

    if (!pr.resumed) {
      if (writer.has_value()) {
        resilience::SnapshotRecord rec;
        rec.key = p;
        rec.rng_state = config_.seed;
        rec.aux = {pr.slabs, pr.elements, pr.checksum, 0};
        rec.result.cycles = pr.cycles;
        rec.result.n = pr.elements;
        rec.result.max_bank_load = pr.max_bank_load;
        rec.result.completed = pr.completed;
        records.push_back(rec);
        writer->flush(records);
      }
      ++fresh_done;
      // phase=point:K for the stream path: fires after the K-th freshly
      // completed partition is banked — the same "work durable, more to
      // do" instant the sweep workers use it for.
      if (hooks_.chaos != nullptr) {
        const svc::ChaosEvent* ev =
            hooks_.chaos->match(hooks_.chaos_shard, hooks_.chaos_attempt,
                                svc::ChaosPhase::kPoint, fresh_done);
        if (ev != nullptr) svc::chaos_execute(*ev);
      }
    }
  }

  out.peak_bytes = pool.peak_bytes();
  out.spilled_bytes = pool.spilled_bytes();
  out.spilled = out.spilled_bytes > 0;
  reg.gauge("stream.peak_bytes", obs::Stability::kHost)
      .observe(out.peak_bytes);
  if (out.partitions_resumed > 0)
    reg.counter("stream.partitions_resumed", obs::Stability::kHost)
        .add(out.partitions_resumed);
  return out;
}

}  // namespace dxbsp::stream
