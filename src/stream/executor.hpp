#pragma once
// Out-of-core streaming execution: drives a workload far larger than
// memory through Machine bulk operations in bounded-memory slabs
// (docs/streaming.md).
//
// The executor runs two phases:
//
//   ingest  — slabs are generated counter-style (workload::stream_slab:
//             element i is a pure function of (seed, i), so nothing ever
//             needs to be held to be re-read), hashed to a spill
//             partition and staged in a SlabPool. When the pool crosses
//             the byte budget the PressureModel latches spilling and
//             raises back-pressure: the producer stalls while whole
//             partitions (coldest-last: most resident bytes first, ties
//             to the lowest id) are evicted to the SpillStore until the
//             pressure clears. The TLA MemoryInvariant
//             (memory_used <= budget + one slab) is asserted after every
//             transition.
//
//   drain   — partitions are processed in ascending id order; each
//             partition's slabs replay in production order, restored
//             from disk when spilled (restores are charged against the
//             same budget) and fed through Machine::scatter. Because the
//             processing order is a pure function of the config, the
//             totals and the per-partition checksums are byte-identical
//             to a fully-in-RAM run of the same config — the property
//             the equivalence tests and ci.sh pin.
//
// Completed partitions are banked in a resilience::Snapshot (key =
// partition id, sweep_id = the config fingerprint) through the
// crash-atomic CheckpointWriter; a resumed run re-emits banked
// partitions from the checkpoint without regenerating or re-simulating
// them, which is what makes a SIGKILL mid-spill recoverable
// byte-identically.
//
// Failure mapping: the spill tier failing persistently (injected or real
// ENOSPC, unreadable or corrupt chunk) degrades the run —
// Error{kDegraded}, exit 69 — with the typed cause in the message;
// cancellation (signal, deadline, stall watchdog catching a hung spill)
// stays Error{kInterrupted}, exit 75. Config and flag errors stay
// kConfig/kParse. A budget too small for the workload with no
// --spill-dir is kConfig, not a crash.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "fault/fault_plan.hpp"
#include "obs/trace.hpp"
#include "resilience/cancel.hpp"
#include "sim/machine.hpp"
#include "svc/chaos.hpp"
#include "util/cli.hpp"

namespace dxbsp::stream {

/// What to stream and under what memory regime.
struct StreamConfig {
  std::uint64_t n = 0;          ///< total stream elements
  std::uint64_t space = 0;      ///< address space the elements index
  std::uint64_t seed = 1;       ///< generator seed (element i = f(seed, i))
  std::uint64_t hot_every = 0;  ///< every k-th element hits address 0
  std::uint64_t mem_budget = 0; ///< hard slab-memory budget; 0 = unlimited
  std::uint64_t slab_bytes = std::uint64_t{1} << 20;  ///< producer batch size
  std::uint64_t partitions = 8;
  std::string spill_dir;        ///< required once the budget can be exceeded
  std::uint64_t disk_retries = 3;
  std::string checkpoint;       ///< partition bank path ("" = no banking)
  bool resume = false;          ///< re-emit banked partitions

  /// Throws Error{kConfig} on an unrunnable config — including a budget
  /// the workload must exceed with no spill_dir to overflow into.
  void validate() const;

  /// Strict flag parsing (--n, --space, --seed, --hot-every,
  /// --mem-budget, --slab-bytes, --partitions, --spill-dir,
  /// --disk-retries, --checkpoint, --resume). Explicit zeros for
  /// --mem-budget / --slab-bytes / --partitions are rejected with
  /// Error{kParse} naming the flag, like every malformed value.
  [[nodiscard]] static StreamConfig from_cli(const util::Cli& cli);

  /// FNV-1a fingerprint of everything that shapes the element stream and
  /// its partitioning. Stamped into spill chunks and the checkpoint
  /// sweep_id, so files from a different config are rejected, never
  /// silently merged.
  [[nodiscard]] std::uint64_t stream_id() const noexcept;
};

/// Per-partition outcome (ascending partition order in StreamResult).
struct PartitionResult {
  std::uint64_t partition = 0;
  std::uint64_t slabs = 0;
  std::uint64_t elements = 0;
  std::uint64_t cycles = 0;         ///< summed over the partition's slabs
  std::uint64_t max_bank_load = 0;  ///< max over the partition's slabs
  std::uint64_t completed = 0;
  /// Chained CRC-32 over each slab's (cycles, max_bank_load, n,
  /// completed) in replay order: collapses the full result stream into
  /// one word that any reordering, loss or duplication perturbs.
  std::uint64_t checksum = 0;
  bool resumed = false;  ///< re-emitted from the checkpoint bank
};

struct StreamResult {
  std::vector<PartitionResult> partitions;
  std::uint64_t elements = 0;
  std::uint64_t cycles = 0;
  std::uint64_t max_bank_load = 0;
  std::uint64_t completed = 0;
  std::uint64_t checksum = 0;  ///< partition checksums chained in id order
  // Memory/spill accounting (PressureModel + SpillStore).
  std::uint64_t peak_bytes = 0;
  std::uint64_t budget_bytes = 0;
  std::uint64_t spilled_bytes = 0;
  std::uint64_t spill_chunks = 0;
  std::uint64_t back_pressure_events = 0;
  std::uint64_t partitions_resumed = 0;
  bool spilled = false;
};

/// Non-owning observer/injection hooks, all optional.
struct StreamHooks {
  const resilience::CancelToken* cancel = nullptr;
  obs::TraceRing* trace = nullptr;           ///< kSpill / kBackPressure spans
  const fault::FaultPlan* faults = nullptr;  ///< disk grammar consumed here
  const svc::ChaosPlan* chaos = nullptr;     ///< spill:K and point:K phases
  std::uint64_t chaos_shard = 0;
  std::uint64_t chaos_attempt = 0;
};

class StreamExecutor {
 public:
  /// The machine is borrowed; its configuration (banks, latency, engine)
  /// is the caller's business — the executor only feeds it slabs.
  StreamExecutor(StreamConfig config, sim::Machine& machine,
                 StreamHooks hooks = {});

  /// Runs ingest + drain to completion. See the header comment for the
  /// error mapping.
  [[nodiscard]] StreamResult run();

  [[nodiscard]] const StreamConfig& config() const noexcept { return config_; }

 private:
  StreamConfig config_;
  sim::Machine& machine_;
  StreamHooks hooks_;
};

}  // namespace dxbsp::stream
