#pragma once
// The spilling / back-pressure state machine of the streaming executor,
// ported from the `SpillingSimple.tla` model (SNIPPETS.md, Snippet 3).
//
// TLA variable -> field mapping:
//   memory_used   -> memory_used (bytes instead of abstract batches)
//   MAX_MEMORY    -> budget
//   spilling      -> spilling (sticky once set, exactly as in the model)
//   back_pressure -> back_pressure (recomputed as memory_used > budget
//                    after every transition — the CheckBackPressure macro)
//   InputReceived_Build/Probe -> admit() (a producer lands one batch)
//   the on-disk partition moves -> evict()
//   downstream consumption      -> release()
//
// The model's MemoryInvariant is
//   memory_used <= MAX_MEMORY + PARTITIONS * THREADS
// i.e. budget plus the largest amount producers can land between two
// back-pressure checks. Here a single producer admits one slab at a time,
// so the slack is one slab: memory_used <= budget + slack with
// slack = max admitted batch size. invariant() is asserted by the
// executor after every transition (Error{kInternal} on violation — a
// library bug, never workload-dependent) and exhaustively model-checked
// over every interleaving of build/probe arrivals at tiny budgets in
// tests/stream_test.cpp.
//
// The struct is deliberately pure (no I/O, no allocation): the executor
// embeds one as its accounting brain, and the property tests drive the
// very same code over every reachable state.

#include <cstdint>

#include "resilience/error.hpp"

namespace dxbsp::stream {

struct PressureModel {
  std::uint64_t budget = 0;  ///< MAX_MEMORY: the hard byte budget
  std::uint64_t slack = 0;   ///< largest single admit() the producer makes

  std::uint64_t memory_used = 0;
  bool spilling = false;       ///< latched on first over-budget admit
  bool back_pressure = false;  ///< producers must stall while set

  std::uint64_t peak = 0;           ///< high-water memory_used
  std::uint64_t spilled_bytes = 0;  ///< total evicted to disk

  /// MemoryInvariant of the TLA model.
  [[nodiscard]] bool invariant() const noexcept {
    return memory_used <= budget + slack;
  }

  /// A producer lands `bytes` (<= slack). Callers must not admit while
  /// back_pressure is set — the executor stalls the producer and evicts
  /// until the pressure clears; the property test checks that the
  /// invariant holds anyway on every legal interleaving.
  void admit(std::uint64_t bytes) {
    if (bytes > slack)
      raise(ErrorCode::kInternal,
            "PressureModel: admit larger than the declared slack");
    memory_used += bytes;
    if (memory_used > peak) peak = memory_used;
    if (memory_used > budget) {
      spilling = true;  // sticky, as in the TLA model
      back_pressure = true;
    }
    check_back_pressure();
  }

  /// `bytes` were spilled to disk and freed from memory.
  void evict(std::uint64_t bytes) {
    sub(bytes, "evict");
    spilled_bytes += bytes;
    check_back_pressure();
  }

  /// `bytes` were consumed downstream and freed from memory.
  void release(std::uint64_t bytes) {
    sub(bytes, "release");
    check_back_pressure();
  }

  /// The CheckBackPressure macro of the model.
  void check_back_pressure() noexcept {
    back_pressure = memory_used > budget;
  }

 private:
  void sub(std::uint64_t bytes, const char* what) {
    if (bytes > memory_used)
      raise(ErrorCode::kInternal,
            std::string("PressureModel: ") + what + " of more bytes than held");
    memory_used -= bytes;
  }
};

}  // namespace dxbsp::stream
