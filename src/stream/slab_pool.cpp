#include "stream/slab_pool.hpp"

#include <algorithm>

namespace dxbsp::stream {

SlabPool::SlabPool(std::uint64_t budget_bytes, std::uint64_t slab_bytes) {
  if (slab_bytes == 0)
    raise(ErrorCode::kConfig, "SlabPool: slab size must be >= 1 byte");
  model_.budget = budget_bytes;
  model_.slack = slab_bytes;
}

std::size_t SlabPool::admit(std::uint64_t slab_index, std::uint64_t partition,
                            std::vector<std::uint64_t> data) {
  Slab slab;
  slab.index = slab_index;
  slab.partition = partition;
  slab.count = data.size();
  slab.data = std::move(data);
  const std::uint64_t bytes = slab.bytes();
  if (partition >= resident_bytes_.size())
    resident_bytes_.resize(partition + 1, 0);
  resident_bytes_[partition] += bytes;
  slabs_.push_back(std::move(slab));
  model_.admit(bytes);
  assert_invariant("admit");
  return slabs_.size() - 1;
}

std::optional<std::uint64_t> SlabPool::victim_partition() const {
  std::optional<std::uint64_t> best;
  std::uint64_t best_bytes = 0;
  for (std::uint64_t p = 0; p < resident_bytes_.size(); ++p) {
    if (resident_bytes_[p] > best_bytes) {
      best_bytes = resident_bytes_[p];
      best = p;
    }
  }
  return best;
}

std::vector<std::size_t> SlabPool::resident_of(std::uint64_t partition) const {
  std::vector<std::size_t> out;
  for (std::size_t h = 0; h < slabs_.size(); ++h) {
    const Slab& s = slabs_[h];
    if (s.partition == partition && !s.spilled && !s.data.empty())
      out.push_back(h);
  }
  return out;
}

void SlabPool::mark_spilled(std::size_t handle, std::uint64_t chunk) {
  Slab& s = slabs_.at(handle);
  if (s.spilled || s.data.empty())
    raise(ErrorCode::kInternal, "SlabPool: spilling a non-resident slab");
  const std::uint64_t bytes = s.bytes();
  s.spilled = true;
  s.chunk = chunk;
  s.data.clear();
  s.data.shrink_to_fit();
  resident_bytes_[s.partition] -= bytes;
  model_.evict(bytes);
  assert_invariant("mark_spilled");
}

std::vector<std::uint64_t> SlabPool::take(std::size_t handle) {
  Slab& s = slabs_.at(handle);
  if (s.spilled || s.data.empty())
    raise(ErrorCode::kInternal, "SlabPool: taking a non-resident slab");
  std::vector<std::uint64_t> out = std::move(s.data);
  s.data.clear();
  s.data.shrink_to_fit();
  resident_bytes_[s.partition] -= s.bytes();
  model_.release(s.bytes());
  assert_invariant("take");
  return out;
}

void SlabPool::charge_restored(std::uint64_t bytes) {
  model_.admit(bytes);
  assert_invariant("charge_restored");
}

void SlabPool::release_restored(std::uint64_t bytes) {
  model_.release(bytes);
  assert_invariant("release_restored");
}

void SlabPool::assert_invariant(const char* where) const {
  if (!model_.invariant())
    raise(ErrorCode::kInternal,
          std::string("SlabPool: MemoryInvariant violated after ") + where +
              " (used " + std::to_string(model_.memory_used) + " > budget " +
              std::to_string(model_.budget) + " + slack " +
              std::to_string(model_.slack) + ")");
}

}  // namespace dxbsp::stream
