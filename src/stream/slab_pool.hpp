#pragma once
// Bounded-memory slab staging for the streaming executor.
//
// A slab is one producer batch: a contiguous run of stream elements,
// assigned to a spill partition. The pool owns every staged slab's
// buffer and a PressureModel doing the byte accounting against a hard
// budget; the MemoryInvariant (memory_used <= budget + slack, slack =
// one slab) is asserted after every mutation — a violation is
// Error{kInternal}, because it can only be a library bug, never a
// property of the workload.
//
// The pool itself never touches disk: the executor asks it which
// partition to evict (victim_partition: most resident bytes, ties to the
// lowest id — deterministic, so a crash-resume re-ingests into exactly
// the same spill layout) and tells it when a slab's bytes moved to the
// SpillStore (mark_spilled) or were consumed (take / release_restored).

#include <cstdint>
#include <optional>
#include <vector>

#include "stream/pressure.hpp"

namespace dxbsp::stream {

/// Sentinel for "no budget": the pool never spills.
inline constexpr std::uint64_t kUnlimitedBudget = ~0ULL / 4;

struct Slab {
  std::uint64_t index = 0;      ///< global production sequence number
  std::uint64_t partition = 0;  ///< spill partition this slab belongs to
  std::uint64_t count = 0;      ///< element count (survives eviction)
  std::uint64_t chunk = 0;      ///< spill chunk id once spilled
  bool spilled = false;
  std::vector<std::uint64_t> data;  ///< empty once spilled or taken

  [[nodiscard]] std::uint64_t bytes() const noexcept {
    return count * sizeof(std::uint64_t);
  }
};

class SlabPool {
 public:
  /// budget_bytes = kUnlimitedBudget disables spilling pressure;
  /// slab_bytes is the declared slack (largest single admit).
  SlabPool(std::uint64_t budget_bytes, std::uint64_t slab_bytes);

  /// Stages a produced slab (takes ownership of the buffer). Returns the
  /// pool-internal slab handle (an index into slabs()).
  std::size_t admit(std::uint64_t slab_index, std::uint64_t partition,
                    std::vector<std::uint64_t> data);

  /// True while memory_used > budget: producers must stall and the
  /// executor must evict until this clears.
  [[nodiscard]] bool over_budget() const noexcept {
    return model_.back_pressure;
  }

  /// The partition to evict next: most resident bytes, ties to the
  /// lowest id. Empty when nothing is resident.
  [[nodiscard]] std::optional<std::uint64_t> victim_partition() const;

  /// Handles of the resident (in-memory, un-taken) slabs of `partition`,
  /// in production order.
  [[nodiscard]] std::vector<std::size_t> resident_of(
      std::uint64_t partition) const;

  /// The slab's bytes were written to the spill store as `chunk`: frees
  /// the buffer and credits the model's evict path.
  void mark_spilled(std::size_t handle, std::uint64_t chunk);

  /// Moves a resident slab's buffer out for consumption, releasing its
  /// bytes from the accounting.
  [[nodiscard]] std::vector<std::uint64_t> take(std::size_t handle);

  /// A spilled chunk was restored into (executor-owned) memory — charge
  /// it while it is being processed, then release it. Restores go
  /// through the same invariant as admits.
  void charge_restored(std::uint64_t bytes);
  void release_restored(std::uint64_t bytes);

  [[nodiscard]] const std::vector<Slab>& slabs() const noexcept {
    return slabs_;
  }
  [[nodiscard]] const PressureModel& pressure() const noexcept {
    return model_;
  }
  [[nodiscard]] std::uint64_t peak_bytes() const noexcept {
    return model_.peak;
  }
  [[nodiscard]] std::uint64_t spilled_bytes() const noexcept {
    return model_.spilled_bytes;
  }

 private:
  void assert_invariant(const char* where) const;

  PressureModel model_;
  std::vector<Slab> slabs_;
  std::vector<std::uint64_t> resident_bytes_;  // per partition (grown lazily)
};

}  // namespace dxbsp::stream
