#include "stream/spill_store.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <thread>

#include "obs/metrics.hpp"
#include "resilience/snapshot.hpp"  // resilience::crc32

namespace dxbsp::stream {

namespace {

constexpr std::array<unsigned char, 6> kSpillMagic = {'D', 'X', 'S',
                                                      'P', 'L', '1'};
// CRC covers every byte after the CRC field itself.
constexpr std::size_t kCrcAt = kSpillMagic.size() + sizeof(std::uint16_t);
constexpr std::size_t kCrcBodyAt = kCrcAt + sizeof(std::uint32_t);

static_assert(std::endian::native == std::endian::little,
              "spill format assumes a little-endian host");

void put_u16(std::vector<unsigned char>& out, std::uint16_t v) {
  const auto* p = reinterpret_cast<const unsigned char*>(&v);
  out.insert(out.end(), p, p + sizeof(v));
}

void put_u32(std::vector<unsigned char>& out, std::uint32_t v) {
  const auto* p = reinterpret_cast<const unsigned char*>(&v);
  out.insert(out.end(), p, p + sizeof(v));
}

void put_u64(std::vector<unsigned char>& out, std::uint64_t v) {
  const auto* p = reinterpret_cast<const unsigned char*>(&v);
  out.insert(out.end(), p, p + sizeof(v));
}

std::uint16_t read_u16(const unsigned char* p) {
  std::uint16_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

std::uint32_t read_u32(const unsigned char* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

std::uint64_t read_u64(const unsigned char* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

Error corrupt(const std::string& origin, const std::string& why) {
  return Error(ErrorCode::kCorruptSnapshot, origin + ": " + why);
}

}  // namespace

SpillStore::SpillStore(SpillOptions opt) : opt_(std::move(opt)) {
  if (opt_.dir.empty())
    raise(ErrorCode::kConfig, "SpillStore: empty spill directory");
  std::error_code ec;
  std::filesystem::create_directories(opt_.dir, ec);
  if (ec)
    raise(ErrorCode::kIo, "SpillStore: cannot create " + opt_.dir + ": " +
                              ec.message());
  // A crash between fsync and rename leaves a *.tmp behind; it is by
  // construction redundant (its chunk is either fully renamed or will be
  // re-spilled after resume), so sweep them instead of guessing.
  for (const auto& entry : std::filesystem::directory_iterator(opt_.dir, ec)) {
    if (!entry.is_regular_file()) continue;
    if (entry.path().extension() == ".tmp") {
      std::filesystem::remove(entry.path(), ec);
      ++orphans_cleaned_;
    }
  }
  if (orphans_cleaned_ > 0)
    obs::MetricsRegistry::global()
        .counter("spill.orphans_cleaned", obs::Stability::kHost)
        .add(orphans_cleaned_);
}

std::string SpillStore::chunk_path(std::uint64_t partition,
                                   std::uint64_t chunk) const {
  return opt_.dir + "/p" + std::to_string(partition) + "-c" +
         std::to_string(chunk) + ".spl";
}

std::vector<unsigned char> SpillStore::encode(
    std::uint64_t stream_id, std::uint64_t partition, std::uint64_t chunk,
    std::span<const std::uint64_t> data) {
  std::vector<unsigned char> out;
  out.reserve(kSpillHeaderBytes + data.size() * sizeof(std::uint64_t));
  out.insert(out.end(), kSpillMagic.begin(), kSpillMagic.end());
  put_u16(out, static_cast<std::uint16_t>(kSpillVersion));
  put_u32(out, 0);  // CRC placeholder, patched below
  put_u64(out, stream_id);
  put_u64(out, partition);
  put_u64(out, chunk);
  put_u64(out, data.size());
  for (const std::uint64_t v : data) put_u64(out, v);
  const std::uint32_t crc =
      resilience::crc32(std::span(out).subspan(kCrcBodyAt));
  std::memcpy(out.data() + kCrcAt, &crc, sizeof(crc));
  return out;
}

Expected<SpillChunk> SpillStore::parse(std::span<const unsigned char> bytes,
                                       const std::string& origin) {
  if (bytes.size() < kSpillHeaderBytes)
    return corrupt(origin, "file shorter than the spill header (" +
                               std::to_string(bytes.size()) + " bytes)");
  if (!std::equal(kSpillMagic.begin(), kSpillMagic.end(), bytes.begin()))
    return corrupt(origin, "bad magic (not a dxbsp spill chunk)");
  const std::uint16_t version = read_u16(bytes.data() + kSpillMagic.size());
  if (version != kSpillVersion)
    return corrupt(origin, "unsupported spill version " +
                               std::to_string(version) + " (expected " +
                               std::to_string(kSpillVersion) + ")");
  const std::uint32_t stored_crc = read_u32(bytes.data() + kCrcAt);
  const unsigned char* p = bytes.data() + kCrcBodyAt;
  SpillChunk out;
  out.stream_id = read_u64(p);
  out.partition = read_u64(p + 8);
  out.chunk = read_u64(p + 16);
  const std::uint64_t count = read_u64(p + 24);

  // The header count is untrusted: bound it by the bytes actually
  // present before believing it (no allocation sized from the header).
  const std::uint64_t payload = bytes.size() - kSpillHeaderBytes;
  if (count > payload / sizeof(std::uint64_t) ||
      payload != count * sizeof(std::uint64_t))
    return corrupt(origin, "header claims " + std::to_string(count) +
                               " elements but file holds " +
                               std::to_string(payload) + " payload bytes");

  const std::uint32_t actual_crc =
      resilience::crc32(bytes.subspan(kCrcBodyAt));
  if (actual_crc != stored_crc)
    return corrupt(origin, "CRC mismatch (stored " +
                               std::to_string(stored_crc) + ", computed " +
                               std::to_string(actual_crc) + ")");

  out.data.reserve(count);
  const unsigned char* elem = bytes.data() + kSpillHeaderBytes;
  for (std::uint64_t i = 0; i < count; ++i, elem += sizeof(std::uint64_t))
    out.data.push_back(read_u64(elem));
  return out;
}

void SpillStore::write(std::uint64_t partition, std::uint64_t chunk,
                       std::span<const std::uint64_t> data) {
  const std::uint64_t ordinal = ++write_seq_;
  const fault::DiskFault fault = (opt_.faults != nullptr)
                                     ? opt_.faults->disk_fault()
                                     : fault::DiskFault::kNone;
  const std::uint64_t fault_param =
      (opt_.faults != nullptr) ? opt_.faults->disk_param() : 0;

  // disk=slow:N — the device answers, just late. Sleep in small steps
  // polling the cancel token so an attached Deadline/Watchdog can revoke
  // a pathologically slow spill instead of waiting it out.
  if (fault == fault::DiskFault::kSlow) {
    const auto until = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(fault_param);
    while (std::chrono::steady_clock::now() < until) {
      if (opt_.cancel != nullptr)
        opt_.cancel->raise_if_expired("spill write (slow disk)");
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  std::vector<unsigned char> bytes =
      encode(opt_.stream_id, partition, chunk, data);
  // disk=corrupt — the device acks bytes it did not store faithfully:
  // flip one payload bit after the CRC was computed, so the damage is
  // invisible to write() and caught by the first read-back validation.
  if (fault == fault::DiskFault::kCorrupt && !bytes.empty())
    bytes.back() ^= 0x01U;

  const std::string path = chunk_path(partition, chunk);
  const std::string tmp = path + ".tmp";
  const std::uint64_t attempts = opt_.write_retries + 1;
  std::string last_error;

  for (std::uint64_t attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      ++write_retries_used_;
      obs::MetricsRegistry::global().counter("spill.write_retries").add(1);
    }
    if (opt_.cancel != nullptr)
      opt_.cancel->raise_if_expired("spill write");

    // disk=enospc:K — writes succeed until the K-th chunk, then the
    // device is full forever: every attempt fails the same way and the
    // bounded retry loop converts it into a typed Error{kIo}.
    if (fault == fault::DiskFault::kEnospc && ordinal >= fault_param) {
      last_error = std::string("write failed for ") + tmp + ": " +
                   std::strerror(ENOSPC) + " (injected)";
      continue;
    }

    const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
      last_error = "cannot open " + tmp + ": " + std::strerror(errno);
      continue;
    }
    bool failed = false;
    std::size_t written = 0;
    while (written < bytes.size()) {
      std::size_t want = bytes.size() - written;
      // disk=short_write — every syscall stores only part of what was
      // asked (at least one byte, so the loop always makes progress and
      // always terminates); exercises the partial-write path constantly.
      if (fault == fault::DiskFault::kShortWrite)
        want = std::max<std::size_t>(1, want / 2);
      const ssize_t n = ::write(fd, bytes.data() + written, want);
      if (n < 0) {
        if (errno == EINTR) continue;
        last_error = "write failed for " + tmp + ": " + std::strerror(errno);
        failed = true;
        break;
      }
      written += static_cast<std::size_t>(n);
    }
    if (!failed && ::fsync(fd) != 0) {
      last_error = "fsync failed for " + tmp + ": " + std::strerror(errno);
      failed = true;
    }
    if (::close(fd) != 0 && !failed) {
      last_error = "close failed for " + tmp + ": " + std::strerror(errno);
      failed = true;
    }
    if (failed) {
      std::remove(tmp.c_str());  // best-effort: never leave a torn tmp
      continue;
    }

    // The worst crash point a spill tier has: tmp durable, rename
    // pending. phase=spill:K chaos fires here so crash tests land on
    // exactly this state every run.
    if (opt_.chaos != nullptr) {
      const svc::ChaosEvent* ev = opt_.chaos->match(
          opt_.chaos_shard, opt_.chaos_attempt, svc::ChaosPhase::kSpill,
          ordinal);
      if (ev != nullptr) {
        if (ev->action == svc::ChaosAction::kHang && opt_.cancel != nullptr) {
          // In-process hang: stop heartbeating and wait for the stall
          // watchdog to revoke us (kStalled -> Error{kInterrupted}).
          while (true) {
            opt_.cancel->raise_if_expired("spill write (chaos hang)");
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          }
        }
        svc::chaos_execute(*ev);  // kill / exit / detached hang
      }
    }

    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
      last_error =
          "rename " + tmp + " -> " + path + " failed: " + std::strerror(errno);
      std::remove(tmp.c_str());
      continue;
    }
    ++chunks_written_;
    bytes_written_ += bytes.size();
    auto& reg = obs::MetricsRegistry::global();
    reg.counter("spill.chunks_written").add(1);
    reg.counter("spill.bytes_written").add(bytes.size());
    return;
  }
  raise(ErrorCode::kIo, "SpillStore: giving up after " +
                            std::to_string(attempts) + " attempts: " +
                            last_error);
}

Expected<std::vector<std::uint64_t>> SpillStore::read(
    std::uint64_t partition, std::uint64_t chunk) const {
  const std::string path = chunk_path(partition, chunk);
  std::ifstream is(path, std::ios::binary);
  if (!is) return Error(ErrorCode::kIo, "SpillStore: cannot open " + path);
  std::vector<unsigned char> bytes((std::istreambuf_iterator<char>(is)),
                                   std::istreambuf_iterator<char>());
  if (is.bad())
    return Error(ErrorCode::kIo, "SpillStore: read failed for " + path);
  Expected<SpillChunk> parsed = parse(bytes, path);
  if (!parsed) return parsed.error();
  const SpillChunk& c = parsed.value();
  if (c.stream_id != opt_.stream_id)
    return corrupt(path, "chunk belongs to stream " +
                             std::to_string(c.stream_id) + ", expected " +
                             std::to_string(opt_.stream_id));
  if (c.partition != partition || c.chunk != chunk)
    return corrupt(path, "chunk labelled p" + std::to_string(c.partition) +
                             "-c" + std::to_string(c.chunk) +
                             " found under p" + std::to_string(partition) +
                             "-c" + std::to_string(chunk));
  auto* self = const_cast<SpillStore*>(this);
  ++self->chunks_read_;
  obs::MetricsRegistry::global().counter("spill.chunks_read").add(1);
  return std::move(parsed).value().data;
}

void SpillStore::remove(std::uint64_t partition, std::uint64_t chunk) noexcept {
  std::remove(chunk_path(partition, chunk).c_str());
}

}  // namespace dxbsp::stream
