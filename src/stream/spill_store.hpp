#pragma once
// Partitioned spill tier for the streaming executor: CRC-guarded chunk
// files written crash-atomically (tmp -> fsync -> rename, the same
// pattern as resilience::CheckpointWriter), validated byte-for-byte on
// the way back in. A spill file on disk is always either complete and
// self-checking or absent — never torn — and a chunk that fails any
// validation decodes to a typed Error, never a crash or silent bad data.
//
// On-disk layout of one chunk (little-endian, docs/resilience.md and
// docs/streaming.md):
//
//   u8  magic[6]  "DXSPL1"
//   u16 version   (currently 1)
//   u32 crc32     IEEE CRC-32 over every byte AFTER this field
//   u64 stream_id fingerprint of the stream config (foreign-file guard)
//   u64 partition
//   u64 chunk     per-partition spill sequence number
//   u64 count     payload element count
//   u64 payload[count]
//
// Files are named p<partition>-c<chunk>.spl inside the spill directory,
// which is created if missing and swept of orphaned *.tmp files (a crash
// mid-spill leaves at most one) on startup.
//
// The spill path is a first-class fault domain: a FaultPlan's disk
// grammar (disk=slow:N | short_write | enospc:K | corrupt) injects
// device misbehaviour at the write() layer, and a ChaosPlan
// phase=spill:K event fires at the worst crash point (tmp fsynced,
// rename pending). Injected or real transient failures surface as
// bounded retries and then Error{kIo}; a hang surfaces to the stall
// watchdog instead of wedging (docs/streaming.md §failure modes).

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "fault/fault_plan.hpp"
#include "resilience/cancel.hpp"
#include "resilience/error.hpp"
#include "svc/chaos.hpp"

namespace dxbsp::stream {

inline constexpr std::uint64_t kSpillVersion = 1;
inline constexpr std::uint64_t kSpillHeaderBytes = 6 + 2 + 4 + 8 + 8 + 8 + 8;

/// One decoded spill chunk.
struct SpillChunk {
  std::uint64_t stream_id = 0;
  std::uint64_t partition = 0;
  std::uint64_t chunk = 0;
  std::vector<std::uint64_t> data;
};

struct SpillOptions {
  std::string dir;
  std::uint64_t stream_id = 0;
  /// Bounded retry budget for transient write failures (attempts =
  /// retries + 1). Exhaustion is Error{kIo}.
  std::uint64_t write_retries = 3;
  /// Disk fault injection (nullptr / DiskFault::kNone = healthy device).
  const fault::FaultPlan* faults = nullptr;
  /// Chaos events (phase=spill:K) executed mid-write; nullptr = none.
  const svc::ChaosPlan* chaos = nullptr;
  std::uint64_t chaos_shard = 0;
  std::uint64_t chaos_attempt = 0;
  /// Polled during injected hangs/slow waits so a stall watchdog can
  /// revoke a wedged spill instead of waiting forever.
  const resilience::CancelToken* cancel = nullptr;
};

class SpillStore {
 public:
  /// Creates the directory if missing and removes orphaned *.tmp files.
  /// Throws Error{kIo} when the directory cannot be created, Error
  /// {kConfig} on an empty path.
  explicit SpillStore(SpillOptions opt);

  /// Writes one chunk crash-atomically with bounded retries; throws
  /// Error{kIo} when the device stays unusable (e.g. ENOSPC) and
  /// Error{kInterrupted} when a hang is revoked by the watchdog.
  void write(std::uint64_t partition, std::uint64_t chunk,
             std::span<const std::uint64_t> data);

  /// Reads one chunk back. Any validation failure (bad magic/version/
  /// CRC/length, or a chunk belonging to a different stream/partition)
  /// is Error{kCorruptSnapshot}; a missing file is Error{kIo}.
  [[nodiscard]] Expected<std::vector<std::uint64_t>> read(
      std::uint64_t partition, std::uint64_t chunk) const;

  /// Best-effort removal of a consumed chunk (keeps long runs' disk
  /// footprint proportional to what is still unprocessed).
  void remove(std::uint64_t partition, std::uint64_t chunk) noexcept;

  [[nodiscard]] const std::string& dir() const noexcept { return opt_.dir; }
  [[nodiscard]] std::string chunk_path(std::uint64_t partition,
                                       std::uint64_t chunk) const;

  // ---- Stats (also published as spill.* metrics) ----
  [[nodiscard]] std::uint64_t chunks_written() const noexcept {
    return chunks_written_;
  }
  [[nodiscard]] std::uint64_t bytes_written() const noexcept {
    return bytes_written_;
  }
  [[nodiscard]] std::uint64_t chunks_read() const noexcept {
    return chunks_read_;
  }
  [[nodiscard]] std::uint64_t write_retries_used() const noexcept {
    return write_retries_used_;
  }
  [[nodiscard]] std::uint64_t orphans_cleaned() const noexcept {
    return orphans_cleaned_;
  }

  // ---- Format (exposed for tests/stream_test.cpp and tools/spill_fsck)

  /// Serializes one chunk into the on-disk byte layout.
  [[nodiscard]] static std::vector<unsigned char> encode(
      std::uint64_t stream_id, std::uint64_t partition, std::uint64_t chunk,
      std::span<const std::uint64_t> data);

  /// Parses bytes in the on-disk layout; never trusts a length field
  /// without checking it against the bytes actually present.
  [[nodiscard]] static Expected<SpillChunk> parse(
      std::span<const unsigned char> bytes, const std::string& origin);

 private:
  SpillOptions opt_;
  std::uint64_t write_seq_ = 0;  ///< 1-based ordinal of write() calls
  std::uint64_t chunks_written_ = 0;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t chunks_read_ = 0;
  std::uint64_t write_retries_used_ = 0;
  std::uint64_t orphans_cleaned_ = 0;
};

}  // namespace dxbsp::stream
