#include "svc/chaos.hpp"

#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <thread>

#include "resilience/error.hpp"

namespace dxbsp::svc {

namespace {

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t end = text.find(sep, start);
    if (end == std::string::npos) {
      parts.push_back(text.substr(start));
      break;
    }
    parts.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return parts;
}

std::uint64_t parse_u64(const std::string& text, const std::string& what) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (text.empty() || errno != 0 || end != text.c_str() + text.size())
    raise(ErrorCode::kParse, "chaos: bad " + what + " '" + text + "'");
  return v;
}

}  // namespace

ChaosPlan ChaosPlan::parse(const std::string& spec) {
  ChaosPlan plan;
  if (spec.empty()) return plan;
  for (const std::string& group : split(spec, ';')) {
    if (group.empty()) continue;
    ChaosEvent ev;
    bool have_shard = false;
    bool have_phase = false;
    bool have_action = false;
    for (const std::string& field : split(group, ',')) {
      const std::size_t eq = field.find('=');
      if (eq == std::string::npos)
        raise(ErrorCode::kParse,
              "chaos: field '" + field + "' is not key=value");
      const std::string key = field.substr(0, eq);
      const std::string value = field.substr(eq + 1);
      if (key == "shard") {
        ev.shard = parse_u64(value, "shard");
        have_shard = true;
      } else if (key == "attempt") {
        ev.attempt = parse_u64(value, "attempt");
      } else if (key == "phase") {
        have_phase = true;
        if (value == "lease") {
          ev.phase = ChaosPhase::kLease;
        } else if (value == "result") {
          ev.phase = ChaosPhase::kResult;
        } else if (value.rfind("point:", 0) == 0) {
          ev.phase = ChaosPhase::kPoint;
          ev.point = parse_u64(value.substr(6), "point index");
          if (ev.point == 0)
            raise(ErrorCode::kParse, "chaos: point index must be >= 1");
        } else if (value.rfind("spill:", 0) == 0) {
          ev.phase = ChaosPhase::kSpill;
          ev.point = parse_u64(value.substr(6), "spill index");
          if (ev.point == 0)
            raise(ErrorCode::kParse, "chaos: spill index must be >= 1");
        } else {
          raise(ErrorCode::kParse, "chaos: unknown phase '" + value + "'");
        }
      } else if (key == "action") {
        have_action = true;
        if (value == "kill") {
          ev.action = ChaosAction::kKill;
        } else if (value == "hang") {
          ev.action = ChaosAction::kHang;
        } else if (value.rfind("exit:", 0) == 0) {
          ev.action = ChaosAction::kExit;
          ev.exit_code = static_cast<int>(parse_u64(value.substr(5),
                                                    "exit code"));
        } else {
          raise(ErrorCode::kParse, "chaos: unknown action '" + value + "'");
        }
      } else {
        raise(ErrorCode::kParse, "chaos: unknown field '" + key + "'");
      }
    }
    if (!have_shard || !have_phase || !have_action)
      raise(ErrorCode::kParse,
            "chaos: event '" + group + "' needs shard=, phase= and action=");
    plan.events_.push_back(ev);
  }
  return plan;
}

const ChaosEvent* ChaosPlan::match(std::uint64_t shard, std::uint64_t attempt,
                                   ChaosPhase phase,
                                   std::uint64_t point) const noexcept {
  for (const ChaosEvent& ev : events_) {
    if (ev.shard != shard) continue;
    if (ev.attempt && *ev.attempt != attempt) continue;
    if (ev.phase != phase) continue;
    if ((phase == ChaosPhase::kPoint || phase == ChaosPhase::kSpill) &&
        ev.point != point)
      continue;
    return &ev;
  }
  return nullptr;
}

void chaos_execute(const ChaosEvent& event) {
  switch (event.action) {
    case ChaosAction::kKill:
      std::raise(SIGKILL);
      break;
    case ChaosAction::kExit:
      ::_exit(event.exit_code);
    case ChaosAction::kHang:
      break;
  }
  // kHang (and the unreachable fallthrough after a failed raise): stop
  // making progress — no heartbeats, no exit — until the coordinator's
  // stall detection revokes the lease and kills us.
  for (;;) std::this_thread::sleep_for(std::chrono::seconds(1));
}

}  // namespace dxbsp::svc
