#pragma once
// Deterministic fault injection for the sweep-coordinator protocol: a
// ChaosPlan names exact points in a worker's lifetime — which shard,
// which lease attempt, which protocol phase — and what the worker does
// to itself when it reaches them. Workers execute their own chaos (the
// coordinator just forwards the spec inside the lease), so a "kill at
// point 2 of shard 1's first attempt" lands at exactly the same protocol
// state on every run: the property that lets tests assert byte-identical
// merged output after a crash, not just "it eventually finished".
//
// Spec grammar (one event per ';'-separated group, fields ','-separated):
//   shard=I         which shard the event applies to (required)
//   attempt=A       which lease attempt (default: every attempt —
//                   a permanently-failing shard, the quarantine path)
//   phase=lease | point:K | result | spill:K
//                   where in the protocol: right after the lease is
//                   validated, after the K-th point of this attempt
//                   completes (checkpoint + partials on disk), just
//                   before the result message is written, or — for the
//                   streaming executor — mid-way through the K-th spill
//                   chunk (tmp written and fsynced, rename still
//                   pending: the worst crash point a spill tier has)
//   action=kill | exit:N | hang
//                   SIGKILL yourself, exit with code N, or stop making
//                   progress until the coordinator's heartbeat timeout
//                   revokes the lease
// Example: "shard=1,attempt=0,phase=point:2,action=kill;shard=3,phase=lease,action=exit:70"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace dxbsp::svc {

enum class ChaosPhase : std::uint8_t { kLease, kPoint, kResult, kSpill };
enum class ChaosAction : std::uint8_t { kKill, kExit, kHang };

struct ChaosEvent {
  std::uint64_t shard = 0;
  std::optional<std::uint64_t> attempt;  ///< nullopt = every attempt
  ChaosPhase phase = ChaosPhase::kLease;
  std::uint64_t point = 0;  ///< for kPoint/kSpill: fire at this ordinal
  ChaosAction action = ChaosAction::kKill;
  int exit_code = 70;  ///< for kExit
};

class ChaosPlan {
 public:
  ChaosPlan() = default;

  /// Parses the spec grammar above; empty spec = empty plan. Throws
  /// Error{kParse} on malformed input.
  [[nodiscard]] static ChaosPlan parse(const std::string& spec);

  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }
  [[nodiscard]] const std::vector<ChaosEvent>& events() const noexcept {
    return events_;
  }

  /// The first event matching (shard, attempt, phase, point), or null.
  [[nodiscard]] const ChaosEvent* match(std::uint64_t shard,
                                        std::uint64_t attempt,
                                        ChaosPhase phase,
                                        std::uint64_t point = 0) const noexcept;

 private:
  std::vector<ChaosEvent> events_;
};

/// Executes the event's action in this process: kill raises SIGKILL,
/// exit calls _exit, hang sleeps without heartbeating until killed.
/// Never returns.
[[noreturn]] void chaos_execute(const ChaosEvent& event);

}  // namespace dxbsp::svc
