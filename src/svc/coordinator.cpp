#include "svc/coordinator.hpp"

#include <fcntl.h>
#include <signal.h>
#include <spawn.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <optional>
#include <thread>
#include <utility>

#include "obs/attribution.hpp"
#include "obs/drift.hpp"
#include "obs/flight.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/stitch.hpp"
#include "svc/wire.hpp"

extern char** environ;

namespace dxbsp::svc {

namespace {

std::string join_argv(const std::vector<std::string>& argv) {
  std::string out;
  for (const std::string& a : argv) {
    if (!out.empty()) out += ' ';
    out += a;
  }
  return out;
}

std::string basename_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

}  // namespace

int FleetReport::exit_code() const noexcept {
  switch (status) {
    case Status::kCompleted: return 0;
    case Status::kDegraded: return dxbsp::exit_code(ErrorCode::kDegraded);
    case Status::kInterrupted:
      return dxbsp::exit_code(ErrorCode::kInterrupted);
  }
  return dxbsp::exit_code(ErrorCode::kInternal);
}

/// Everything the coordinator knows about one shard's lease lifecycle.
struct Coordinator::ShardState {
  enum class Phase { kQueued, kRunning, kDone, kPoisoned };

  resilience::ShardSpec spec;
  Phase phase = Phase::kQueued;
  std::uint64_t attempt = 0;  ///< attempt index of the NEXT/current grant
  std::uint64_t grants = 0;   ///< total leases granted to this shard
  std::uint64_t strikes = 0;  ///< consecutive no-progress failures
  std::uint64_t banked = 0;   ///< points whose aggregates are captured
  std::uint64_t total = 0;    ///< slice size (0 until first observed)
  std::uint64_t resume_base = 0;  ///< banked at the current grant
  std::string last_error;
  double ready_at = 0;  ///< earliest next grant (coordinator seconds)

  // Live lease (kRunning only).
  pid_t pid = -1;
  std::unique_ptr<resilience::CancelToken> token;
  std::unique_ptr<resilience::Watchdog> watchdog;
  std::uint64_t last_beat = 0;
  bool saw_beat = false;

  // Captured partials, in banking order; disjoint point ranges.
  std::vector<AggregatesMsg> banked_aggs;
  std::optional<ResultMsg> result;
  double elapsed = 0;  ///< completing attempt's wall clock

  std::string lease_path, hb_path, agg_path, res_path, snap_path;

  // Observability bookkeeping (opt_.observability only). flight/trace
  // paths are per-attempt so a dead attempt's artifacts survive its
  // retry; telemetry is one live file per shard (latest attempt wins).
  std::string flight_path, trace_path, telem_path;
  std::uint64_t grant_us = 0;   ///< coordinator clock at the grant
  std::uint64_t offset_us = 0;  ///< min(rx − mono_us) over new beats
  bool saw_offset = false;
  std::uint64_t last_completed = 0;  ///< last heartbeat's progress
  std::uint64_t last_events = 0;     ///< last heartbeat's sim.requests
  std::uint64_t updated_us = 0;      ///< coordinator clock at last news
};

Coordinator::Coordinator(CoordinatorOptions opt) : opt_(std::move(opt)) {
  if (opt_.worker_argv.empty())
    raise(ErrorCode::kConfig, "coordinator: empty worker command");
  if (opt_.workers == 0)
    raise(ErrorCode::kConfig, "coordinator: need at least one worker");
  if (opt_.dir.empty())
    raise(ErrorCode::kConfig, "coordinator: working directory required");
  if (opt_.shards == 0) opt_.shards = 2 * opt_.workers;
  if (opt_.max_strikes == 0) opt_.max_strikes = 1;
}

Coordinator::~Coordinator() { kill_all(); }

double Coordinator::now() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

std::uint64_t Coordinator::now_us() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void Coordinator::log_line(const std::string& line) const {
  if (opt_.log != nullptr) *opt_.log << "[svc] " << line << std::endl;
}

void Coordinator::grant(ShardState& s) {
  // Stale messages from the previous attempt must not be mistaken for
  // this one's: remove them before the worker can possibly run.
  std::remove(s.hb_path.c_str());
  std::remove(s.agg_path.c_str());
  std::remove(s.res_path.c_str());

  LeaseMsg lease;
  lease.shard = s.spec.str();
  lease.attempt = s.attempt;
  lease.resume_points = s.banked;
  lease.checkpoint_path = s.snap_path;
  lease.heartbeat_path = s.hb_path;
  lease.aggregates_path = s.agg_path;
  lease.result_path = s.res_path;
  lease.deadline_seconds = opt_.attempt_deadline_seconds;
  lease.hb_interval_seconds = opt_.heartbeat_interval_seconds;
  lease.chaos = opt_.chaos;
  if (opt_.observability) {
    const std::string astem = opt_.dir + "/shard-" +
                              std::to_string(s.spec.index) + ".attempt-" +
                              std::to_string(s.attempt);
    lease.flight_path = astem + ".flight";
    lease.trace_path = astem + ".trace.json";
    lease.telemetry_path = s.telem_path;
    lease.flight_bytes = opt_.flight_bytes;
    s.flight_path = lease.flight_path;
    s.trace_path = lease.trace_path;
    std::remove(s.telem_path.c_str());
  }
  wire_write_file(s.lease_path, kMsgLease, encode_lease(lease));
  s.resume_base = s.banked;

  const std::string log_path = opt_.dir + "/shard-" +
                               std::to_string(s.spec.index) + ".attempt-" +
                               std::to_string(s.attempt) + ".log";
  std::vector<std::string> argv = opt_.worker_argv;
  argv.push_back("--svc-lease=" + s.lease_path);
  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (std::string& a : argv) cargv.push_back(a.data());
  cargv.push_back(nullptr);

  posix_spawn_file_actions_t fa;
  posix_spawn_file_actions_init(&fa);
  posix_spawn_file_actions_addopen(&fa, 1, log_path.c_str(),
                                   O_WRONLY | O_CREAT | O_TRUNC, 0644);
  posix_spawn_file_actions_adddup2(&fa, 1, 2);
  pid_t pid = -1;
  const int rc =
      posix_spawnp(&pid, cargv[0], &fa, nullptr, cargv.data(), environ);
  posix_spawn_file_actions_destroy(&fa);
  if (rc != 0)
    raise(ErrorCode::kIo, std::string("coordinator: cannot spawn '") +
                              opt_.worker_argv[0] +
                              "': " + std::strerror(rc));

  s.pid = pid;
  s.phase = ShardState::Phase::kRunning;
  s.token = std::make_unique<resilience::CancelToken>();
  s.saw_beat = false;
  s.last_beat = 0;
  // The same stall detector the simulator uses, fed by heartbeat-file
  // progress instead of event-loop progress. It also covers a worker
  // that dies before its first heartbeat in a way waitpid cannot see
  // (e.g. wedged before exec) — no beats, window expires, revoke.
  s.watchdog = std::make_unique<resilience::Watchdog>(
      *s.token, std::chrono::milliseconds(static_cast<long>(
                    opt_.heartbeat_timeout_seconds * 1000.0)));
  ++fleet_.leases_granted;
  ++s.grants;
  // The grant timestamp doubles as the stitch offset fallback for
  // attempts that die before their first heartbeat: a worker's epoch
  // necessarily postdates its grant, so stitched worker events mapped
  // with it can never precede the grant span (obs/stitch.hpp).
  s.grant_us = now_us();
  s.saw_offset = false;
  s.offset_us = s.grant_us;
  s.last_completed = s.banked;
  s.last_events = 0;
  s.updated_us = s.grant_us;
  if (elog_ != nullptr)
    elog_->instant("grant shard " + s.spec.str(), s.grant_us,
                   s.spec.index + 1,
                   {{"attempt", std::to_string(s.attempt)},
                    {"resume_points", std::to_string(s.banked)},
                    {"pid", std::to_string(pid)}});
  log_line("grant shard " + s.spec.str() + " attempt " +
           std::to_string(s.attempt) + " resume_points " +
           std::to_string(s.banked) + " pid " + std::to_string(pid));
}

void Coordinator::bank_partial(ShardState& s) {
  auto msg = wire_read_file(s.agg_path);
  if (!msg.ok() || msg.value().type != kMsgAggregates) return;
  auto agg = decode_aggregates(msg.value().payload);
  if (!agg.ok()) return;  // torn/corrupt partials: retry covers the gap
  const AggregatesMsg& a = agg.value();
  if (a.shard != s.spec.str() || a.attempt != s.attempt) return;
  if (a.covered == 0) return;
  s.banked = s.resume_base + a.covered;
  s.banked_aggs.push_back(std::move(agg).value());
  log_line("banked shard " + s.spec.str() + " attempt " +
           std::to_string(s.attempt) + ": " + std::to_string(a.covered) +
           " new points (" + std::to_string(s.banked) + " total)");
}

void Coordinator::fail_attempt(ShardState& s, const std::string& why) {
  s.watchdog.reset();
  s.token.reset();
  s.pid = -1;
  s.last_error = why;
  // Harvest BEFORE the retry machinery runs: the next grant uses fresh
  // per-attempt paths, but the post_mortem must name THIS attempt.
  harvest(s, why);
  end_lease_obs(s, "failed");

  const std::uint64_t before = s.banked;
  bank_partial(s);
  const bool progressed = s.banked > before;
  // A shard that keeps banking new points is converging — strikes only
  // count consecutive attempts that moved nothing, so "fails every N
  // points" completes while "fails at the same point forever" poisons.
  s.strikes = progressed ? 0 : s.strikes + 1;
  if (!progressed) ++fleet_.strikes;
  ++s.attempt;

  if (s.strikes >= opt_.max_strikes) {
    s.phase = ShardState::Phase::kPoisoned;
    obs::DegradedInfo::Shard rec;
    rec.shard = s.spec.str();
    rec.strikes = s.strikes;
    rec.completed = s.banked;
    rec.total = s.total;
    rec.last_error = why;
    rec.repro = join_argv(opt_.worker_argv) + " --shard=" + s.spec.str();
    fleet_.degraded.shards.push_back(std::move(rec));
    log_line("poisoned shard " + s.spec.str() + " after " +
             std::to_string(s.strikes) + " strikes: " + why);
    return;
  }

  const double backoff = std::min(
      opt_.backoff_cap_seconds,
      opt_.backoff_base_seconds *
          static_cast<double>(std::uint64_t{1} << std::min<std::uint64_t>(
                                  s.strikes > 0 ? s.strikes - 1 : 0, 20)));
  s.ready_at = now() + (s.strikes > 0 ? backoff : 0.0);
  s.phase = ShardState::Phase::kQueued;
  ++fleet_.retries;
  log_line("requeue shard " + s.spec.str() + " (attempt " +
           std::to_string(s.attempt) + ", strikes " +
           std::to_string(s.strikes) + ", backoff " +
           std::to_string(backoff) + "s): " + why);
}

void Coordinator::on_result(ShardState& s) {
  auto msg = wire_read_file(s.res_path);
  if (!msg.ok()) {
    fail_attempt(s, "exited 0 without a result message");
    return;
  }
  if (msg.value().type != kMsgResult) {
    fail_attempt(s, "result file holds a '" + msg.value().type +
                        "' message");
    return;
  }
  auto decoded = decode_result(msg.value().payload);
  if (!decoded.ok()) {
    fail_attempt(s, std::string("result decode: ") + decoded.error().what());
    return;
  }
  ResultMsg res = std::move(decoded).value();
  if (res.shard != s.spec.str() || res.attempt != s.attempt) {
    fail_attempt(s, "result identifies " + res.shard + " attempt " +
                        std::to_string(res.attempt) + ", expected " +
                        s.spec.str() + " attempt " +
                        std::to_string(s.attempt));
    return;
  }
  if (res.status != "completed") {
    fail_attempt(s, "exited 0 with status '" + res.status + "'");
    return;
  }

  s.watchdog.reset();
  s.token.reset();
  s.pid = -1;
  end_lease_obs(s, "completed");
  s.total = res.total;
  s.banked = res.total;
  s.elapsed = res.elapsed_seconds;
  if (res.aggregates.covered > 0 || s.banked_aggs.empty())
    s.banked_aggs.push_back(res.aggregates);
  s.result = std::move(res);
  s.phase = ShardState::Phase::kDone;
  ++fleet_.completed_shards;
  log_line("done shard " + s.spec.str() + " attempt " +
           std::to_string(s.attempt) + " (" + std::to_string(s.total) +
           " points)");
}

void Coordinator::reap() {
  for (auto& sp : states_) {
    ShardState& s = *sp;
    if (s.phase != ShardState::Phase::kRunning) continue;
    int status = 0;
    const pid_t r = ::waitpid(s.pid, &status, WNOHANG);
    if (r == 0) continue;
    if (r < 0) {
      // ECHILD etc.: the child is gone but unobservable; treat as death.
      ++fleet_.worker_deaths;
      fail_attempt(s, std::string("waitpid: ") + std::strerror(errno));
      continue;
    }
    if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
      on_result(s);
    } else if (WIFEXITED(status) &&
               WEXITSTATUS(status) ==
                   dxbsp::exit_code(ErrorCode::kInterrupted)) {
      // Clean self-interruption (per-attempt deadline): resumable, not a
      // death.
      fail_attempt(s, "attempt interrupted (exit 75)");
    } else if (WIFEXITED(status)) {
      ++fleet_.worker_deaths;
      fail_attempt(s,
                   "worker exited " + std::to_string(WEXITSTATUS(status)));
    } else {
      ++fleet_.worker_deaths;
      fail_attempt(s, std::string("worker killed by signal ") +
                          std::to_string(WTERMSIG(status)));
    }
  }
}

void Coordinator::check_stalls() {
  for (auto& sp : states_) {
    ShardState& s = *sp;
    if (s.phase != ShardState::Phase::kRunning) continue;
    auto msg = wire_read_file(s.hb_path);
    if (msg.ok() && msg.value().type == kMsgHeartbeat) {
      auto hb = decode_heartbeat(msg.value().payload);
      if (hb.ok() && hb.value().shard == s.spec.str() &&
          hb.value().attempt == s.attempt) {
        if (hb.value().total > 0) s.total = hb.value().total;
        if (!s.saw_beat || hb.value().beat != s.last_beat) {
          s.saw_beat = true;
          s.last_beat = hb.value().beat;
          s.token->heartbeat();  // feed the stall watchdog
          // Clock-offset estimate for trace stitching: (receive −
          // worker mono) is the true epoch offset plus message latency,
          // so the minimum over new beats tightens toward — and never
          // crosses below — the true offset (obs/stitch.hpp).
          const std::uint64_t rx = now_us();
          const std::uint64_t mono = hb.value().mono_us;
          if (opt_.observability && mono > 0 && rx > mono) {
            const std::uint64_t off = rx - mono;
            if (!s.saw_offset || off < s.offset_us) {
              s.saw_offset = true;
              s.offset_us = off;
            }
          }
          s.last_completed = hb.value().completed;
          s.last_events = hb.value().events;
          s.updated_us = rx;
          if (elog_ != nullptr)
            elog_->counter("shard " + s.spec.str() + " completed", rx,
                           s.spec.index + 1, hb.value().completed);
        }
      }
    }
    if (s.token->cause() == resilience::CancelCause::kStalled) {
      ++fleet_.stalls;
      revoke(s, "heartbeat stalled for " +
                    std::to_string(opt_.heartbeat_timeout_seconds) + "s",
             /*already_dead=*/false);
    }
  }
}

void Coordinator::revoke(ShardState& s, const std::string& why,
                         bool already_dead) {
  ++fleet_.revocations;
  if (elog_ != nullptr)
    elog_->instant("revoke shard " + s.spec.str(), now_us(),
                   s.spec.index + 1, {{"why", why}});
  if (!already_dead && s.pid > 0) {
    ::kill(s.pid, SIGKILL);
    int status = 0;
    ::waitpid(s.pid, &status, 0);
    ++fleet_.worker_deaths;
  }
  fail_attempt(s, why);
}

void Coordinator::harvest(ShardState& s, const std::string& why) {
  if (!opt_.observability || s.flight_path.empty()) return;
  obs::PostMortemInfo::Harvest h;
  h.shard = s.spec.str();
  h.attempt = s.attempt;
  h.why = why;
  auto tail = obs::flight_read(s.flight_path);
  if (!tail.ok()) {
    h.why += " (flight ring unreadable: " +
             std::string(tail.error().what()) + ")";
    fleet_.post_mortem.harvests.push_back(std::move(h));
    return;
  }
  const obs::FlightTail& t = tail.value();
  h.records = t.valid;
  h.torn = t.torn;
  for (const obs::FlightRecord& r : t.records) {
    // Chaos is bookkeeping about the injected fault, not a protocol
    // phase the worker reached on its own — the "where did it die"
    // answer skips it (a point-kill reads as dying at "point").
    if (r.kind == obs::FlightKind::kPhase &&
        r.sub != static_cast<std::uint8_t>(obs::FlightPhase::kChaos) &&
        r.sub < obs::kFlightPhases) {
      h.last_phase = obs::flight_phase_name(static_cast<obs::FlightPhase>(
          r.sub));
      if (r.sub == static_cast<std::uint8_t>(obs::FlightPhase::kPoint))
        h.last_point = r.a;
    }
  }
  constexpr std::size_t kTailEvents = 16;
  const std::size_t first =
      t.records.size() > kTailEvents ? t.records.size() - kTailEvents : 0;
  for (std::size_t i = first; i < t.records.size(); ++i) {
    const obs::FlightRecord& r = t.records[i];
    obs::PostMortemInfo::Event ev;
    ev.kind = obs::flight_kind_name(r.kind);
    ev.name = obs::flight_record_name(r);
    ev.seq = r.seq;
    ev.t_us = r.t_us;
    ev.a = r.a;
    ev.b = r.b;
    ev.c = r.c;
    ev.d = r.d;
    h.events.push_back(std::move(ev));
  }
  log_line("post-mortem shard " + s.spec.str() + " attempt " +
           std::to_string(s.attempt) + ": " + std::to_string(h.records) +
           " flight records, last phase '" + h.last_phase + "'");
  fleet_.post_mortem.harvests.push_back(std::move(h));
}

void Coordinator::end_lease_obs(ShardState& s, const char* outcome) {
  if (!opt_.observability || s.flight_path.empty()) return;
  const std::uint64_t offset =
      s.saw_offset ? s.offset_us : s.grant_us;
  stitch_.push_back(StitchEntry{
      "shard " + s.spec.str() + " attempt " + std::to_string(s.attempt),
      basename_of(s.trace_path), basename_of(s.flight_path), offset});
  if (elog_ != nullptr) {
    const std::uint64_t nowu = now_us();
    elog_->span("lease shard " + s.spec.str(), s.grant_us,
                nowu > s.grant_us ? nowu - s.grant_us : 0, s.spec.index + 1,
                {{"attempt", std::to_string(s.attempt)},
                 {"outcome", outcome}});
  }
  s.flight_path.clear();
  s.trace_path.clear();
}

void Coordinator::publish_fleet_status(bool force) {
  if (!opt_.observability) return;
  const double t = now();
  if (!force && last_status_pub_ >= 0 && t - last_status_pub_ < 0.25) return;
  last_status_pub_ = t;

  FleetStatusMsg m;
  m.mono_us = now_us();
  m.shards = fleet_.shards;
  m.completed_shards = fleet_.completed_shards;
  m.leases_granted = fleet_.leases_granted;
  m.retries = fleet_.retries;
  m.worker_deaths = fleet_.worker_deaths;
  m.stalls = fleet_.stalls;
  m.revocations = fleet_.revocations;
  for (const auto& sp : states_) {
    const ShardState& s = *sp;
    FleetStatusMsg::Shard row;
    row.shard = s.spec.str();
    switch (s.phase) {
      case ShardState::Phase::kQueued: row.phase = "queued"; break;
      case ShardState::Phase::kRunning: row.phase = "running"; break;
      case ShardState::Phase::kDone: row.phase = "done"; break;
      case ShardState::Phase::kPoisoned: row.phase = "poisoned"; break;
    }
    row.attempt = s.attempt;
    row.completed = s.phase == ShardState::Phase::kRunning
                        ? std::max(s.last_completed, s.banked)
                        : s.banked;
    row.total = s.total;
    row.events = s.last_events;
    row.updated_us = s.updated_us;
    m.points_total += row.total;
    m.points_completed += row.completed;
    m.rows.push_back(std::move(row));
  }
  try {
    wire_write_file(opt_.dir + "/fleet.status", kMsgFleetStatus,
                    encode_fleet_status(m));
  } catch (const Error&) {
    // Live telemetry only — never worth failing the fleet over.
  }
}

void Coordinator::write_observability_outputs() {
  if (!opt_.observability) return;
  publish_fleet_status(/*force=*/true);
  if (elog_ != nullptr) {
    try {
      obs::write_file(opt_.dir + "/coordinator.trace.json",
                      [this](std::ostream& os) {
                        elog_->write_chrome_json(os);
                      });
    } catch (const Error&) {
    }
  }
  try {
    obs::write_file(opt_.dir + "/stitch.json", [this](std::ostream& os) {
      obs::JsonWriter w(os);
      w.begin_object();
      w.member("stitch_version", obs::kStitchVersion);
      w.key("processes").begin_array();
      w.begin_object();
      w.member("label", "coordinator");
      w.member("trace", "coordinator.trace.json");
      w.member("offset_us", std::uint64_t{0});
      w.end_object();
      for (const StitchEntry& e : stitch_) {
        w.begin_object();
        w.member("label", e.label);
        w.member("trace", e.trace);
        w.member("offset_us", e.offset_us);
        w.member("flight", e.flight);
        w.end_object();
      }
      w.end_array();
      w.end_object();
      os << '\n';
    });
  } catch (const Error&) {
  }
}

void Coordinator::kill_all() {
  for (auto& sp : states_) {
    ShardState& s = *sp;
    if (s.phase != ShardState::Phase::kRunning) continue;
    if (s.pid > 0) {
      ::kill(s.pid, SIGKILL);
      int status = 0;
      ::waitpid(s.pid, &status, 0);
    }
    s.watchdog.reset();
    s.token.reset();
    s.pid = -1;
    s.phase = ShardState::Phase::kQueued;
  }
}

FleetReport Coordinator::run() {
  epoch_ = std::chrono::steady_clock::now();
  if (::mkdir(opt_.dir.c_str(), 0755) != 0 && errno != EEXIST)
    raise(ErrorCode::kIo, "coordinator: cannot create directory '" +
                              opt_.dir + "': " + std::strerror(errno));

  states_.clear();
  fleet_ = FleetReport{};
  fleet_.shards = opt_.shards;
  stitch_.clear();
  last_status_pub_ = -1;
  elog_ = opt_.observability
              ? std::make_unique<obs::EventLog>("coordinator", epoch_)
              : nullptr;
  for (std::uint64_t i = 0; i < opt_.shards; ++i) {
    auto s = std::make_unique<ShardState>();
    s->spec = resilience::ShardSpec{i, opt_.shards};
    const std::string stem = opt_.dir + "/shard-" + std::to_string(i);
    s->lease_path = stem + ".lease";
    s->hb_path = stem + ".hb";
    s->agg_path = stem + ".agg";
    s->res_path = stem + ".res";
    s->snap_path = stem + ".snap";
    s->telem_path = stem + ".telem";
    states_.push_back(std::move(s));
  }

  std::optional<resilience::ScopedSignalCancel> signals;
  if (opt_.handle_signals) signals.emplace(stop_);
  stop_.set_deadline(resilience::Deadline(opt_.deadline_seconds));

  const auto poll = std::chrono::duration<double>(
      opt_.poll_seconds > 0 ? opt_.poll_seconds : 0.02);
  for (;;) {
    if (stop_.expired()) {
      kill_all();
      fleet_.status = FleetReport::Status::kInterrupted;
      fleet_.elapsed_seconds = now();
      if (elog_ != nullptr)
        elog_->instant("interrupted", now_us(), 0,
                       {{"cause", resilience::cancel_cause_name(
                                      stop_.cause())}});
      write_observability_outputs();
      publish_host_metrics();
      log_line("interrupted (" +
               std::string(resilience::cancel_cause_name(stop_.cause())) +
               ")");
      return fleet_;
    }

    reap();
    check_stalls();
    publish_fleet_status(/*force=*/false);

    std::uint64_t running = 0;
    std::uint64_t settled = 0;
    for (const auto& sp : states_) {
      if (sp->phase == ShardState::Phase::kRunning) ++running;
      if (sp->phase == ShardState::Phase::kDone ||
          sp->phase == ShardState::Phase::kPoisoned)
        ++settled;
    }
    if (settled == states_.size()) break;

    for (auto& sp : states_) {
      if (running >= opt_.workers) break;
      ShardState& s = *sp;
      if (s.phase != ShardState::Phase::kQueued || s.ready_at > now())
        continue;
      grant(s);
      ++running;
    }

    std::this_thread::sleep_for(poll);
  }

  fleet_.elapsed_seconds = now();
  fleet_.shard_elapsed_seconds.assign(states_.size(), 0.0);
  for (std::size_t i = 0; i < states_.size(); ++i) {
    const ShardState& s = *states_[i];
    fleet_.shard_elapsed_seconds[i] = s.elapsed;
    fleet_.points_total += s.total;
    fleet_.points_completed += s.banked;
    if (s.phase == ShardState::Phase::kPoisoned)
      ++fleet_.degraded.poisoned_shards;
  }
  fleet_.degraded.retries = fleet_.retries;
  fleet_.degraded.worker_deaths = fleet_.worker_deaths;
  fleet_.status = fleet_.degraded.poisoned_shards > 0
                      ? FleetReport::Status::kDegraded
                      : FleetReport::Status::kCompleted;

  if (elog_ != nullptr)
    elog_->instant("merge", now_us(), 0,
                   {{"completed_shards",
                     std::to_string(fleet_.completed_shards)}});
  write_observability_outputs();
  write_merged_reports();
  publish_host_metrics();
  log_line("fleet " +
           std::string(fleet_.ok() ? "completed" : "degraded") + ": " +
           std::to_string(fleet_.completed_shards) + "/" +
           std::to_string(fleet_.shards) + " shards, " +
           std::to_string(fleet_.retries) + " retries, " +
           std::to_string(fleet_.worker_deaths) + " deaths, " +
           std::to_string(fleet_.stalls) + " stalls");
  return fleet_;
}

void Coordinator::write_merged_reports() {
  if (opt_.report_path.empty() && opt_.report_csv_path.empty()) return;
  if (fleet_.completed_shards == 0) {
    log_line("no completed shard: skipping merged report");
    return;
  }

  // Fold every banked aggregate — (shard, attempt) order, all merges
  // commutative — into fresh local instances, exactly reconstructing
  // what one process running the whole grid would have published.
  obs::MetricsRegistry merged;
  obs::AttributionAggregate attribution;
  std::optional<obs::DriftDetector> drift;
  obs::SelectorLog selector;
  obs::RunInfo info;
  bool have_info = false;
  for (const auto& sp : states_) {
    for (const AggregatesMsg& a : sp->banked_aggs) {
      for (const obs::MetricsRegistry::Entry& e : a.metrics) merged.merge(e);
      attribution.merge(a.attribution);
      if (a.has_drift) {
        if (!drift)
          drift.emplace(obs::DriftConfig{a.drift.band});
        drift->merge(a.drift);
      }
      selector.merge(obs::SelectorLog::Snapshot{a.selector});
    }
    if (!have_info && sp->result && sp->result->has_info) {
      info = sp->result->info;
      have_info = true;
    }
  }
  // The per-run() progress counters are synthesized fleet-wide (workers
  // keep theirs out of the aggregates): resumed is 0 because a fleet
  // run, like a fresh serial run, computed every point from scratch —
  // attempt-level resumes are an execution detail.
  merged.counter("sweep.points_total").add(fleet_.points_total);
  merged.counter("sweep.points_completed").add(fleet_.points_completed);
  merged.counter("sweep.points_resumed").add(0);

  const obs::DegradedInfo* degraded =
      fleet_.degraded.poisoned_shards > 0 ? &fleet_.degraded : nullptr;
  const obs::DriftDetector* drift_ptr = drift ? &*drift : nullptr;

  // Fleet lifecycle counters (ISSUE satellite: the coordinator's own
  // MetricsRegistry section). Host-stability by nature — how often
  // leases bounced depends on the machine, never on the workload.
  obs::MetricsRegistry fleet_metrics;
  const obs::MetricsRegistry* fleet_ptr = nullptr;
  const obs::PostMortemInfo* post_mortem = nullptr;
  if (opt_.observability) {
    auto& fm = fleet_metrics;
    const auto host = obs::Stability::kHost;
    fm.counter("svc.leases_granted", host).add(fleet_.leases_granted);
    fm.counter("svc.retries", host).add(fleet_.retries);
    fm.counter("svc.revocations", host).add(fleet_.revocations);
    fm.counter("svc.worker_deaths", host).add(fleet_.worker_deaths);
    fm.counter("svc.stalls", host).add(fleet_.stalls);
    fm.counter("svc.strikes", host).add(fleet_.strikes);
    fm.counter("svc.quarantined", host)
        .add(fleet_.degraded.poisoned_shards);
    fleet_ptr = &fleet_metrics;
    if (!fleet_.post_mortem.empty()) post_mortem = &fleet_.post_mortem;
  }

  if (!opt_.report_path.empty())
    obs::write_file(opt_.report_path, [&](std::ostream& os) {
      obs::write_report_json(os, info, merged, nullptr, &attribution,
                             drift_ptr, &selector, degraded, post_mortem,
                             fleet_ptr);
    });
  if (!opt_.report_csv_path.empty())
    obs::write_file(opt_.report_csv_path, [&](std::ostream& os) {
      obs::write_report_csv(os, info, merged, nullptr, &attribution,
                            drift_ptr, &selector, degraded, post_mortem,
                            fleet_ptr);
    });
}

void Coordinator::publish_host_metrics() const {
  // Fleet-shape accounting is host/execution-dependent by nature.
  auto& reg = obs::MetricsRegistry::global();
  reg.counter("svc.leases_granted", obs::Stability::kHost)
      .add(fleet_.leases_granted);
  reg.counter("svc.retries", obs::Stability::kHost).add(fleet_.retries);
  reg.counter("svc.worker_deaths", obs::Stability::kHost)
      .add(fleet_.worker_deaths);
  reg.counter("svc.stalls", obs::Stability::kHost).add(fleet_.stalls);
  reg.counter("svc.revocations", obs::Stability::kHost)
      .add(fleet_.revocations);
  reg.counter("svc.strikes", obs::Stability::kHost).add(fleet_.strikes);
  reg.counter("svc.poisoned_shards", obs::Stability::kHost)
      .add(fleet_.degraded.poisoned_shards);
}

}  // namespace dxbsp::svc
