#pragma once
// Fault-tolerant multi-process sweep coordinator (docs/resilience.md
// §fleet mode).
//
// The coordinator partitions a sweep grid into S shards and runs them
// across W worker subprocesses — each worker a normal bench binary
// started with --svc-lease=FILE (svc/worker.hpp). Every shard is
// governed by a *lease*: the coordinator grants it, watches the
// worker's heartbeat file, and revokes it — SIGKILL plus requeue — when
// the worker dies, wedges (no heartbeat progress inside the stall
// window, detected by the same resilience::Watchdog the simulator uses)
// or blows its per-attempt deadline.
//
// Partial results survive revocation: workers republish cumulative
// aggregates after every completed point (checkpoint first, aggregates
// second), so on revocation the coordinator banks whatever consistent
// prefix the attempt covered and re-leases only the remainder. A shard
// whose attempts repeatedly fail *without banking any new progress*
// accumulates strikes, with bounded exponential backoff between grants;
// at max_strikes it is quarantined as poisoned, with the exact repro
// command for its key range recorded. Attempts that do make progress
// clear the strike count — a shard that keeps moving is never poisoned,
// and a shard that never moves can never hang the fleet.
//
// When every shard is done the per-shard aggregates are folded — in
// deterministic (shard, attempt) order, through the commutative
// MetricsRegistry / AttributionAggregate / DriftDetector merge paths —
// into ONE schema-versioned run report. Because each point's
// contribution is banked exactly once (see worker.hpp's truncation
// contract), a fleet report with no poisoned shards is byte-identical
// to the report a serial run of the same bench would write; a degraded
// fleet adds the structured "degraded" section and exits 69 (EX_UNAVAILABLE).

#include <chrono>
#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "obs/event_log.hpp"
#include "obs/report.hpp"
#include "resilience/cancel.hpp"
#include "resilience/shard.hpp"
#include "svc/payload.hpp"

namespace dxbsp::svc {

struct CoordinatorOptions {
  /// The worker command: a bench binary plus its workload flags, exactly
  /// as the equivalent serial run would be invoked. The coordinator
  /// appends --svc-lease=FILE per grant.
  std::vector<std::string> worker_argv;
  std::string dir;  ///< working directory for protocol files (created)
  std::uint64_t workers = 2;  ///< concurrent leases
  std::uint64_t shards = 0;   ///< grid partitions (0 = 2 * workers)
  double heartbeat_interval_seconds = 0.05;  ///< worker publication cadence
  double heartbeat_timeout_seconds = 5.0;    ///< stall window per lease
  double poll_seconds = 0.02;        ///< coordinator event-loop cadence
  double attempt_deadline_seconds = 0;  ///< per-attempt budget (0 = none)
  double deadline_seconds = 0;       ///< whole-fleet budget (0 = none)
  std::uint64_t max_strikes = 3;     ///< no-progress failures before poison
  double backoff_base_seconds = 0.1;  ///< requeue delay, doubling per strike
  double backoff_cap_seconds = 2.0;   ///< backoff ceiling
  std::string chaos;        ///< fault-injection spec forwarded to workers
  std::string report_path;  ///< merged JSON run report ("" = none)
  std::string report_csv_path;  ///< merged CSV run report ("" = none)
  bool handle_signals = true;  ///< route SIGINT/SIGTERM to a clean stop
  std::ostream* log = nullptr;  ///< progress lines (null = quiet)
  /// Fleet observability (docs/observability.md §fleet): per-attempt
  /// flight rings + host-time traces, live telemetry/status files, a
  /// stitch manifest, and the "fleet"/"post_mortem" report sections.
  /// Off by default at the library level so existing byte-identity
  /// baselines hold; the sweep_coordinator CLI turns it on.
  bool observability = false;
  std::uint64_t flight_bytes = 64 * 1024;  ///< per-worker ring size
};

/// What the fleet did. Counters cover the whole run, all shards.
struct FleetReport {
  enum class Status { kCompleted, kDegraded, kInterrupted };
  Status status = Status::kCompleted;
  std::uint64_t shards = 0;
  std::uint64_t completed_shards = 0;
  std::uint64_t leases_granted = 0;
  std::uint64_t retries = 0;        ///< re-grants after a failed attempt
  std::uint64_t worker_deaths = 0;  ///< signals + exits other than 0/75
  std::uint64_t stalls = 0;         ///< heartbeat-timeout revocations
  std::uint64_t revocations = 0;    ///< leases the coordinator killed
  std::uint64_t strikes = 0;        ///< no-progress failures, all shards
  std::uint64_t points_total = 0;   ///< grid points across observed shards
  std::uint64_t points_completed = 0;  ///< points banked across all shards
  obs::DegradedInfo degraded;  ///< poisoned-shard record (when any)
  obs::PostMortemInfo post_mortem;  ///< harvested flight tails (obs mode)
  /// Per-shard wall-clock of the completing attempt, by shard index
  /// (0 when the shard never completed). Host-only; the scaling bench's
  /// raw material.
  std::vector<double> shard_elapsed_seconds;
  double elapsed_seconds = 0;  ///< whole-fleet wall clock (host-only)

  [[nodiscard]] bool ok() const noexcept {
    return status == Status::kCompleted;
  }
  /// 0 completed, 69 (EX_UNAVAILABLE) degraded, 75 (EX_TEMPFAIL)
  /// interrupted.
  [[nodiscard]] int exit_code() const noexcept;
};

class Coordinator {
 public:
  explicit Coordinator(CoordinatorOptions opt);
  ~Coordinator();
  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Runs the fleet to completion (or interruption) and writes the
  /// merged report(s). Throws Error{kConfig} for unusable options and
  /// Error{kIo} when the working directory cannot be created.
  FleetReport run();

 private:
  struct ShardState;

  void grant(ShardState& s);
  void reap();
  void check_stalls();
  void revoke(ShardState& s, const std::string& why, bool already_dead);
  void bank_partial(ShardState& s);
  void on_result(ShardState& s);
  void fail_attempt(ShardState& s, const std::string& why);
  void kill_all();
  void write_merged_reports();
  void publish_host_metrics() const;
  void harvest(ShardState& s, const std::string& why);
  void end_lease_obs(ShardState& s, const char* outcome);
  void publish_fleet_status(bool force);
  void write_observability_outputs();
  [[nodiscard]] double now() const;
  [[nodiscard]] std::uint64_t now_us() const;
  void log_line(const std::string& line) const;

  CoordinatorOptions opt_;
  std::vector<std::unique_ptr<ShardState>> states_;
  resilience::CancelToken stop_;  ///< fleet-level interrupt latch
  FleetReport fleet_;
  std::chrono::steady_clock::time_point epoch_{};

  // Fleet observability (opt_.observability only).
  struct StitchEntry {
    std::string label;
    std::string trace;   ///< file name relative to opt_.dir
    std::string flight;  ///< file name relative to opt_.dir
    std::uint64_t offset_us = 0;
  };
  std::unique_ptr<obs::EventLog> elog_;  ///< coordinator's own track
  std::vector<StitchEntry> stitch_;      ///< one entry per finished lease
  double last_status_pub_ = -1;          ///< fleet.status throttle
};

}  // namespace dxbsp::svc
