#include "svc/payload.hpp"

#include <sstream>
#include <utility>

#include "obs/json.hpp"

namespace dxbsp::svc {

namespace {

using obs::JsonValue;
using obs::JsonWriter;

// ---------------------------------------------------------------------------
// Decoding helper: accumulates the first structural error instead of
// throwing, so codecs stay Expected-returning (a corrupt payload from a
// dying worker must never take the coordinator down with it).
class Dec {
 public:
  Dec(const JsonValue& v, std::string origin)
      : v_(v), origin_(std::move(origin)) {
    if (!v_.is_object()) fail("not an object");
  }

  [[nodiscard]] std::uint64_t u64(const char* key) {
    const JsonValue* m = req(key);
    if (m == nullptr) return 0;
    if (!m->is_number()) {
      fail(std::string(key) + " is not a number");
      return 0;
    }
    return m->as_u64();
  }

  [[nodiscard]] double dbl(const char* key) {
    const JsonValue* m = req(key);
    if (m == nullptr) return 0;
    if (!m->is_number()) {
      fail(std::string(key) + " is not a number");
      return 0;
    }
    return m->as_double();
  }

  [[nodiscard]] std::string str(const char* key) {
    const JsonValue* m = req(key);
    if (m == nullptr) return {};
    if (!m->is_string()) {
      fail(std::string(key) + " is not a string");
      return {};
    }
    return m->as_string();
  }

  [[nodiscard]] bool boolean(const char* key) {
    const JsonValue* m = req(key);
    if (m == nullptr) return false;
    if (m->kind() != JsonValue::Kind::kBool) {
      fail(std::string(key) + " is not a bool");
      return false;
    }
    return m->as_bool();
  }

  [[nodiscard]] const JsonValue* object(const char* key) {
    const JsonValue* m = req(key);
    if (m == nullptr) return nullptr;
    if (!m->is_object()) {
      fail(std::string(key) + " is not an object");
      return nullptr;
    }
    return m;
  }

  [[nodiscard]] const JsonValue* array(const char* key) {
    const JsonValue* m = req(key);
    if (m == nullptr) return nullptr;
    if (!m->is_array()) {
      fail(std::string(key) + " is not an array");
      return nullptr;
    }
    return m;
  }

  /// Optional member: nullptr (without error) when absent or null.
  [[nodiscard]] const JsonValue* opt(const char* key) const {
    const JsonValue* m = v_.find(key);
    return (m == nullptr || m->is_null()) ? nullptr : m;
  }

  [[nodiscard]] bool ok() const noexcept { return !failed_; }
  [[nodiscard]] Error error() const {
    return Error(ErrorCode::kCorruptInput, origin_ + ": " + what_);
  }

  /// Propagates a nested decoder's failure into this one.
  void fail_from(const Dec& inner) {
    if (!inner.ok()) fail(inner.origin_ + ": " + inner.what_);
  }

  void fail(const std::string& what) {
    if (failed_) return;
    failed_ = true;
    what_ = what;
  }

 private:
  const JsonValue* req(const char* key) {
    const JsonValue* m = v_.find(key);
    if (m == nullptr) fail(std::string("missing member '") + key + "'");
    return m;
  }

  const JsonValue& v_;
  std::string origin_;
  bool failed_ = false;
  std::string what_;
};

std::vector<std::uint64_t> u64_array(const JsonValue& arr) {
  std::vector<std::uint64_t> out;
  out.reserve(arr.items().size());
  for (const JsonValue& item : arr.items()) out.push_back(item.as_u64());
  return out;
}

// ---------------------------------------------------------------------------
// Shared sub-schemas.

void write_breakdown(JsonWriter& w, const obs::CostBreakdown& c) {
  w.begin_object();
  w.member("issue_gap", c.issue_gap);
  w.member("window_stall", c.window_stall);
  w.member("latency", c.latency);
  w.member("bank_service", c.bank_service);
  w.member("retry_backoff", c.retry_backoff);
  w.member("failover", c.failover);
  w.member("cache_hit", c.cache_hit);
  w.end_object();
}

obs::CostBreakdown read_breakdown(const JsonValue& v,
                                  const std::string& origin, Dec& outer) {
  obs::CostBreakdown c;
  Dec d(v, origin);
  c.issue_gap = d.u64("issue_gap");
  c.window_stall = d.u64("window_stall");
  c.latency = d.u64("latency");
  c.bank_service = d.u64("bank_service");
  c.retry_backoff = d.u64("retry_backoff");
  c.failover = d.u64("failover");
  c.cache_hit = d.u64("cache_hit");
  outer.fail_from(d);
  return c;
}

void write_sketch(JsonWriter& w, const obs::BankLoadSketch& s) {
  w.begin_object();
  w.member("overflow", s.overflow);
  w.member("banks", s.banks);
  w.member("max", s.max);
  w.member("served", s.served);
  w.key("counts").begin_array();
  for (const std::uint64_t c : s.counts) w.value(c);
  w.end_array();
  w.end_object();
}

obs::BankLoadSketch read_sketch(const JsonValue& v, const std::string& origin,
                                Dec& outer) {
  obs::BankLoadSketch s;
  Dec d(v, origin);
  s.overflow = d.u64("overflow");
  s.banks = d.u64("banks");
  s.max = d.u64("max");
  s.served = d.u64("served");
  if (const JsonValue* arr = d.array("counts")) {
    if (arr->items().size() != s.counts.size()) {
      d.fail("sketch counts size mismatch");
      outer.fail_from(d);
      return s;
    }
    for (std::size_t i = 0; i < s.counts.size(); ++i)
      s.counts[i] = arr->items()[i].as_u64();
  }
  outer.fail_from(d);
  return s;
}

/// Metric entries travel identically in aggregates and telemetry.
void write_metric_entries(JsonWriter& w,
                          const std::vector<obs::MetricsRegistry::Entry>& v) {
  w.begin_array();
  for (const obs::MetricsRegistry::Entry& e : v) {
    w.begin_object();
    w.member("name", e.name);
    w.member("kind", obs::metric_kind_name(e.kind));
    w.member("host", e.stability == obs::Stability::kHost);
    w.member("value", e.value);
    if (e.kind == obs::MetricKind::kHistogram) {
      w.key("bounds").begin_array();
      for (const std::uint64_t b : e.bounds) w.value(b);
      w.end_array();
      w.key("counts").begin_array();
      for (const std::uint64_t c : e.bucket_counts) w.value(c);
      w.end_array();
    }
    w.end_object();
  }
  w.end_array();
}

Expected<std::vector<obs::MetricsRegistry::Entry>> read_metric_entries(
    const JsonValue& arr, const std::string& origin) {
  std::vector<obs::MetricsRegistry::Entry> out;
  for (const JsonValue& ev : arr.items()) {
    Dec ed(ev, origin);
    obs::MetricsRegistry::Entry e;
    e.name = ed.str("name");
    const std::string kind = ed.str("kind");
    e.stability = ed.boolean("host") ? obs::Stability::kHost
                                     : obs::Stability::kDeterministic;
    e.value = ed.u64("value");
    if (kind == "counter") {
      e.kind = obs::MetricKind::kCounter;
    } else if (kind == "gauge") {
      e.kind = obs::MetricKind::kGauge;
    } else if (kind == "histogram") {
      e.kind = obs::MetricKind::kHistogram;
      if (const JsonValue* bounds = ed.array("bounds"))
        e.bounds = u64_array(*bounds);
      if (const JsonValue* counts = ed.array("counts"))
        e.bucket_counts = u64_array(*counts);
    } else if (ed.ok()) {
      return Error(ErrorCode::kCorruptInput,
                   origin + ": unknown metric kind '" + kind + "'");
    }
    if (!ed.ok()) return ed.error();
    out.push_back(std::move(e));
  }
  return out;
}

void write_aggregates_body(JsonWriter& w, const AggregatesMsg& m) {
  w.member("shard", m.shard);
  w.member("attempt", m.attempt);
  w.member("covered", m.covered);

  w.key("metrics");
  write_metric_entries(w, m.metrics);

  w.key("attribution").begin_object();
  w.member("supersteps", m.attribution.supersteps);
  w.member("cycles", m.attribution.cycles);
  w.key("terms");
  write_breakdown(w, m.attribution.terms);
  w.member("max_location_contention",
           m.attribution.max_location_contention);
  w.key("sketch");
  write_sketch(w, m.attribution.sketch);
  w.end_object();

  if (m.has_drift) {
    const obs::DriftDetector::Snapshot& d = m.drift;
    w.key("drift").begin_object();
    w.member("band", d.band);
    w.member("supersteps", d.supersteps);
    w.member("out_of_band", d.out_of_band);
    w.member("max_abs_rel_err", d.max_abs_rel_err);
    if (d.worst.valid) {
      w.key("worst").begin_object();
      w.member("track", d.worst.track);
      w.member("step", d.worst.step);
      w.member("measured", d.worst.measured);
      w.member("predicted", d.worst.predicted);
      w.member("rel_err", d.worst.rel_err);
      w.member("n", d.worst.n);
      w.member("h_proc", d.worst.h_proc);
      w.member("h_bank", d.worst.h_bank);
      w.member("location_contention", d.worst.location_contention);
      w.key("breakdown");
      write_breakdown(w, d.worst.breakdown);
      w.member("sketch_p50", d.worst.sketch_p50);
      w.member("sketch_p99", d.worst.sketch_p99);
      w.member("sketch_max", d.worst.sketch_max);
      w.member("mapping", d.worst.mapping);
      w.member("plan_fingerprint", d.worst.plan_fingerprint);
      w.end_object();
    } else {
      w.key("worst").null_value();
    }
    w.end_object();
  } else {
    w.key("drift").null_value();
  }

  // Engine-selection rows (obs/selector.hpp): a compact fixed-width
  // tuple per row, in SelectorRow field order. last_binding travels as
  // the raw index (0xFF = none) — the report writer, not the wire,
  // renders names.
  w.key("selector").begin_array();
  for (const obs::SelectorRow& r : m.selector) {
    w.begin_object();
    w.member("track", r.track);
    w.member("step", r.step);
    w.member("n", r.n);
    w.member("h_proc", r.h_proc);
    w.member("window", r.window);
    w.member("h_bank_est", r.h_bank_est);
    w.member("plan_fingerprint", r.plan_fingerprint);
    w.member("predicted", r.predicted);
    w.member("measured", r.measured);
    w.member("last_binding", static_cast<std::uint64_t>(r.last_binding));
    w.member("eligible_dense", r.eligible_dense);
    w.member("eligible_soa", r.eligible_soa);
    w.member("forced", r.forced);
    w.member("fallback", r.fallback);
    w.member("choice", static_cast<std::uint64_t>(r.choice));
    w.end_object();
  }
  w.end_array();
}

Expected<AggregatesMsg> read_aggregates_body(const JsonValue& v,
                                             const std::string& origin) {
  AggregatesMsg m;
  Dec d(v, origin);
  m.shard = d.str("shard");
  m.attempt = d.u64("attempt");
  m.covered = d.u64("covered");

  if (const JsonValue* arr = d.array("metrics")) {
    auto entries = read_metric_entries(*arr, origin + ".metrics");
    if (!entries.ok()) return entries.error();
    m.metrics = std::move(entries).value();
  }

  if (const JsonValue* attr = d.object("attribution")) {
    Dec ad(*attr, origin + ".attribution");
    m.attribution.supersteps = ad.u64("supersteps");
    m.attribution.cycles = ad.u64("cycles");
    if (const JsonValue* terms = ad.object("terms"))
      m.attribution.terms = read_breakdown(*terms, origin + ".terms", ad);
    m.attribution.max_location_contention =
        ad.u64("max_location_contention");
    if (const JsonValue* sketch = ad.object("sketch"))
      m.attribution.sketch = read_sketch(*sketch, origin + ".sketch", ad);
    if (!ad.ok()) return ad.error();
  }

  if (const JsonValue* drift = d.opt("drift")) {
    m.has_drift = true;
    Dec dd(*drift, origin + ".drift");
    m.drift.band = dd.dbl("band");
    m.drift.supersteps = dd.u64("supersteps");
    m.drift.out_of_band = dd.u64("out_of_band");
    m.drift.max_abs_rel_err = dd.dbl("max_abs_rel_err");
    if (const JsonValue* worst = dd.opt("worst")) {
      obs::DriftWorst& ww = m.drift.worst;
      Dec wd(*worst, origin + ".drift.worst");
      ww.valid = true;
      ww.track = wd.u64("track");
      ww.step = wd.u64("step");
      ww.measured = wd.u64("measured");
      ww.predicted = wd.dbl("predicted");
      ww.rel_err = wd.dbl("rel_err");
      ww.n = wd.u64("n");
      ww.h_proc = wd.u64("h_proc");
      ww.h_bank = wd.u64("h_bank");
      ww.location_contention = wd.u64("location_contention");
      if (const JsonValue* bd = wd.object("breakdown"))
        ww.breakdown = read_breakdown(*bd, origin + ".breakdown", wd);
      ww.sketch_p50 = wd.u64("sketch_p50");
      ww.sketch_p99 = wd.u64("sketch_p99");
      ww.sketch_max = wd.u64("sketch_max");
      ww.mapping = wd.str("mapping");
      ww.plan_fingerprint = wd.u64("plan_fingerprint");
      if (!wd.ok()) return wd.error();
    }
    if (!dd.ok()) return dd.error();
  }

  // Tolerant: absent on payloads from before the selector existed.
  if (const JsonValue* sel = d.opt("selector")) {
    if (!sel->is_array())
      return Error(ErrorCode::kCorruptInput,
                   origin + ": selector is not an array");
    for (const JsonValue& rv : sel->items()) {
      Dec rd(rv, origin + ".selector");
      obs::SelectorRow r;
      r.track = rd.u64("track");
      r.step = rd.u64("step");
      r.n = rd.u64("n");
      r.h_proc = rd.u64("h_proc");
      r.window = rd.u64("window");
      r.h_bank_est = rd.u64("h_bank_est");
      r.plan_fingerprint = rd.u64("plan_fingerprint");
      r.predicted = rd.u64("predicted");
      r.measured = rd.u64("measured");
      r.last_binding = static_cast<std::uint8_t>(rd.u64("last_binding"));
      r.eligible_dense = rd.boolean("eligible_dense");
      r.eligible_soa = rd.boolean("eligible_soa");
      r.forced = rd.boolean("forced");
      r.fallback = rd.boolean("fallback");
      const std::uint64_t choice = rd.u64("choice");
      if (rd.ok() && choice >= obs::kEngineChoices)
        return Error(ErrorCode::kCorruptInput,
                     origin + ": selector choice out of range");
      r.choice = static_cast<obs::EngineChoice>(choice);
      if (!rd.ok()) return rd.error();
      m.selector.push_back(r);
    }
  }

  if (!d.ok()) return d.error();
  return m;
}

template <typename Fn>
std::string encode(const Fn& body) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  body(w);
  w.end_object();
  return std::move(os).str();
}

}  // namespace

std::string encode_lease(const LeaseMsg& m) {
  return encode([&](JsonWriter& w) {
    w.member("shard", m.shard);
    w.member("attempt", m.attempt);
    w.member("resume_points", m.resume_points);
    w.member("checkpoint_path", m.checkpoint_path);
    w.member("heartbeat_path", m.heartbeat_path);
    w.member("aggregates_path", m.aggregates_path);
    w.member("result_path", m.result_path);
    w.member("deadline_seconds", m.deadline_seconds);
    w.member("hb_interval_seconds", m.hb_interval_seconds);
    w.member("chaos", m.chaos);
    w.member("flight_path", m.flight_path);
    w.member("trace_path", m.trace_path);
    w.member("telemetry_path", m.telemetry_path);
    w.member("flight_bytes", m.flight_bytes);
  });
}

Expected<LeaseMsg> decode_lease(const obs::JsonValue& v) {
  LeaseMsg m;
  Dec d(v, "lease");
  m.shard = d.str("shard");
  m.attempt = d.u64("attempt");
  m.resume_points = d.u64("resume_points");
  m.checkpoint_path = d.str("checkpoint_path");
  m.heartbeat_path = d.str("heartbeat_path");
  m.aggregates_path = d.str("aggregates_path");
  m.result_path = d.str("result_path");
  m.deadline_seconds = d.dbl("deadline_seconds");
  m.hb_interval_seconds = d.dbl("hb_interval_seconds");
  m.chaos = d.str("chaos");
  // Observability fields arrived with report v3; read them tolerantly so
  // a lease written before they existed still decodes (feature off).
  if (const JsonValue* fp = d.opt("flight_path"))
    m.flight_path = fp->is_string() ? fp->as_string() : "";
  if (const JsonValue* tp = d.opt("trace_path"))
    m.trace_path = tp->is_string() ? tp->as_string() : "";
  if (const JsonValue* mp = d.opt("telemetry_path"))
    m.telemetry_path = mp->is_string() ? mp->as_string() : "";
  if (const JsonValue* fb = d.opt("flight_bytes"))
    m.flight_bytes = fb->is_number() ? fb->as_u64() : 0;
  if (!d.ok()) return d.error();
  return m;
}

std::string encode_heartbeat(const HeartbeatMsg& m) {
  return encode([&](JsonWriter& w) {
    w.member("shard", m.shard);
    w.member("attempt", m.attempt);
    w.member("beat", m.beat);
    w.member("completed", m.completed);
    w.member("total", m.total);
    w.member("mono_us", m.mono_us);
    w.member("events", m.events);
  });
}

Expected<HeartbeatMsg> decode_heartbeat(const obs::JsonValue& v) {
  HeartbeatMsg m;
  Dec d(v, "heartbeat");
  m.shard = d.str("shard");
  m.attempt = d.u64("attempt");
  m.beat = d.u64("beat");
  m.completed = d.u64("completed");
  m.total = d.u64("total");
  if (const JsonValue* mu = d.opt("mono_us"))
    m.mono_us = mu->is_number() ? mu->as_u64() : 0;
  if (const JsonValue* ev = d.opt("events"))
    m.events = ev->is_number() ? ev->as_u64() : 0;
  if (!d.ok()) return d.error();
  return m;
}

std::string encode_telemetry(const TelemetryMsg& m) {
  return encode([&](JsonWriter& w) {
    w.member("shard", m.shard);
    w.member("attempt", m.attempt);
    w.member("mono_us", m.mono_us);
    w.member("completed", m.completed);
    w.member("resumed", m.resumed);
    w.member("total", m.total);
    w.member("events", m.events);
    w.key("metrics");
    write_metric_entries(w, m.metrics);
  });
}

Expected<TelemetryMsg> decode_telemetry(const obs::JsonValue& v) {
  TelemetryMsg m;
  Dec d(v, "telemetry");
  m.shard = d.str("shard");
  m.attempt = d.u64("attempt");
  m.mono_us = d.u64("mono_us");
  m.completed = d.u64("completed");
  m.resumed = d.u64("resumed");
  m.total = d.u64("total");
  m.events = d.u64("events");
  if (const JsonValue* arr = d.array("metrics")) {
    auto entries = read_metric_entries(*arr, "telemetry.metrics");
    if (!entries.ok()) return entries.error();
    m.metrics = std::move(entries).value();
  }
  if (!d.ok()) return d.error();
  return m;
}

std::string encode_fleet_status(const FleetStatusMsg& m) {
  return encode([&](JsonWriter& w) {
    w.member("mono_us", m.mono_us);
    w.member("shards", m.shards);
    w.member("completed_shards", m.completed_shards);
    w.member("leases_granted", m.leases_granted);
    w.member("retries", m.retries);
    w.member("worker_deaths", m.worker_deaths);
    w.member("stalls", m.stalls);
    w.member("revocations", m.revocations);
    w.member("points_total", m.points_total);
    w.member("points_completed", m.points_completed);
    w.key("rows").begin_array();
    for (const FleetStatusMsg::Shard& s : m.rows) {
      w.begin_object();
      w.member("shard", s.shard);
      w.member("phase", s.phase);
      w.member("attempt", s.attempt);
      w.member("completed", s.completed);
      w.member("total", s.total);
      w.member("events", s.events);
      w.member("updated_us", s.updated_us);
      w.end_object();
    }
    w.end_array();
  });
}

Expected<FleetStatusMsg> decode_fleet_status(const obs::JsonValue& v) {
  FleetStatusMsg m;
  Dec d(v, "fleet_status");
  m.mono_us = d.u64("mono_us");
  m.shards = d.u64("shards");
  m.completed_shards = d.u64("completed_shards");
  m.leases_granted = d.u64("leases_granted");
  m.retries = d.u64("retries");
  m.worker_deaths = d.u64("worker_deaths");
  m.stalls = d.u64("stalls");
  m.revocations = d.u64("revocations");
  m.points_total = d.u64("points_total");
  m.points_completed = d.u64("points_completed");
  if (const JsonValue* rows = d.array("rows")) {
    for (const JsonValue& rv : rows->items()) {
      Dec rd(rv, "fleet_status.rows");
      FleetStatusMsg::Shard s;
      s.shard = rd.str("shard");
      s.phase = rd.str("phase");
      s.attempt = rd.u64("attempt");
      s.completed = rd.u64("completed");
      s.total = rd.u64("total");
      s.events = rd.u64("events");
      s.updated_us = rd.u64("updated_us");
      if (!rd.ok()) return rd.error();
      m.rows.push_back(std::move(s));
    }
  }
  if (!d.ok()) return d.error();
  return m;
}

std::string encode_aggregates(const AggregatesMsg& m) {
  return encode([&](JsonWriter& w) { write_aggregates_body(w, m); });
}

Expected<AggregatesMsg> decode_aggregates(const obs::JsonValue& v) {
  return read_aggregates_body(v, "aggregates");
}

std::string encode_result(const ResultMsg& m) {
  return encode([&](JsonWriter& w) {
    w.member("shard", m.shard);
    w.member("attempt", m.attempt);
    w.member("status", m.status);
    w.member("cause", m.cause);
    w.member("total", m.total);
    w.member("completed", m.completed);
    w.member("resumed", m.resumed);
    w.member("elapsed_seconds", m.elapsed_seconds);
    if (m.has_info) {
      w.key("info").begin_object();
      w.member("bench", m.info.bench);
      w.member("description", m.info.description);
      w.member("machine", m.info.machine);
      w.member("seed", m.info.seed);
      w.key("flags").begin_object();
      for (const auto& [name, value] : m.info.flags) w.member(name, value);
      w.end_object();
      w.end_object();
    } else {
      w.key("info").null_value();
    }
    w.key("aggregates").begin_object();
    write_aggregates_body(w, m.aggregates);
    w.end_object();
  });
}

Expected<ResultMsg> decode_result(const obs::JsonValue& v) {
  ResultMsg m;
  Dec d(v, "result");
  m.shard = d.str("shard");
  m.attempt = d.u64("attempt");
  m.status = d.str("status");
  m.cause = d.str("cause");
  m.total = d.u64("total");
  m.completed = d.u64("completed");
  m.resumed = d.u64("resumed");
  m.elapsed_seconds = d.dbl("elapsed_seconds");
  if (const JsonValue* info = d.opt("info")) {
    Dec id(*info, "result.info");
    m.has_info = true;
    m.info.bench = id.str("bench");
    m.info.description = id.str("description");
    m.info.machine = id.str("machine");
    m.info.seed = id.u64("seed");
    if (const JsonValue* flags = id.object("flags")) {
      for (const auto& [name, value] : flags->members()) {
        if (!value.is_string())
          return Error(ErrorCode::kCorruptInput,
                       "result.info.flags." + name + " is not a string");
        m.info.flags.emplace_back(name, value.as_string());
      }
    }
    if (!id.ok()) return id.error();
  }
  if (const JsonValue* agg = d.object("aggregates")) {
    auto parsed = read_aggregates_body(*agg, "result.aggregates");
    if (!parsed.ok()) return parsed.error();
    m.aggregates = std::move(parsed).value();
  }
  if (!d.ok()) return d.error();
  return m;
}

}  // namespace dxbsp::svc
