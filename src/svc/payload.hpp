#pragma once
// Typed payloads for the four sweep-coordinator protocol messages, with
// JSON codecs over the framed wire format (svc/wire.hpp):
//
//   lease       coordinator -> worker: your shard, attempt number, how
//               many points prior attempts already covered, where to put
//               checkpoint/heartbeat/aggregates/result, timing knobs and
//               the (test-only) chaos spec.
//   heartbeat   worker -> coordinator: liveness + progress. Republished
//               every interval; the coordinator only cares that `beat`
//               keeps changing.
//   aggregates  worker -> coordinator: cumulative partial results of the
//               CURRENT attempt — the metric/attribution/drift state for
//               every point this attempt has completed. Republished after
//               every point, atomically, so whatever the coordinator
//               captures after revoking a dead lease is a consistent
//               prefix it can bank before re-leasing the remainder.
//   result      worker -> coordinator: final outcome — the SweepReport,
//               the run identity (for the merged report header) and the
//               attempt's final aggregates.
//
// Metric entries travel with their kind and stability because the run
// report's JSON flattens counters and gauges to bare numbers: a merge
// must know whether to add or max, so the protocol cannot reuse the
// report schema. Decoders return Expected (never throw): a half-dead
// worker writing garbage must read as a strike, not a coordinator crash.

#include <cstdint>
#include <string>
#include <vector>

#include "obs/attribution.hpp"
#include "obs/drift.hpp"
#include "obs/json_read.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "resilience/error.hpp"

namespace dxbsp::svc {

inline constexpr const char* kMsgLease = "lease";
inline constexpr const char* kMsgHeartbeat = "heartbeat";
inline constexpr const char* kMsgAggregates = "aggregates";
inline constexpr const char* kMsgResult = "result";

struct LeaseMsg {
  std::string shard;  ///< "index/count" (resilience::ShardSpec::str)
  std::uint64_t attempt = 0;
  /// Points already covered by prior attempts' captured aggregates; the
  /// worker resumes from exactly this checkpoint prefix (truncating any
  /// uncaptured tail) so every point is aggregated exactly once.
  std::uint64_t resume_points = 0;
  std::string checkpoint_path;
  std::string heartbeat_path;
  std::string aggregates_path;
  std::string result_path;
  double deadline_seconds = 0;     ///< per-attempt budget (<= 0 = none)
  double hb_interval_seconds = 0;  ///< heartbeat publication cadence
  std::string chaos;               ///< forwarded ChaosPlan spec ("" = none)
};

struct HeartbeatMsg {
  std::string shard;
  std::uint64_t attempt = 0;
  std::uint64_t beat = 0;       ///< monotone while the worker is alive
  std::uint64_t completed = 0;  ///< points done (resumed + computed)
  std::uint64_t total = 0;      ///< points in the shard slice
};

struct AggregatesMsg {
  std::string shard;
  std::uint64_t attempt = 0;
  /// Points this attempt has newly covered (and whose contributions are
  /// fully contained in the snapshots below). Excludes resumed points —
  /// their contributions were banked from earlier attempts.
  std::uint64_t covered = 0;
  std::vector<obs::MetricsRegistry::Entry> metrics;
  obs::AttributionAggregate::Snapshot attribution;
  bool has_drift = false;
  obs::DriftDetector::Snapshot drift;
  /// Engine-selection rows for the covered points (obs/selector.hpp);
  /// empty when the attempt ran no supersteps. Decoded tolerantly: a
  /// payload without the field (older worker) reads as empty.
  std::vector<obs::SelectorRow> selector;
};

struct ResultMsg {
  std::string shard;
  std::uint64_t attempt = 0;
  std::string status;  ///< sweep_status_name: "completed"/"interrupted"
  std::string cause;   ///< cancel_cause_name when interrupted
  std::uint64_t total = 0;
  std::uint64_t completed = 0;
  std::uint64_t resumed = 0;
  double elapsed_seconds = 0;  ///< host-only; scaling bench input
  bool has_info = false;
  obs::RunInfo info;  ///< run identity for the merged report header
  AggregatesMsg aggregates;
};

[[nodiscard]] std::string encode_lease(const LeaseMsg& m);
[[nodiscard]] std::string encode_heartbeat(const HeartbeatMsg& m);
[[nodiscard]] std::string encode_aggregates(const AggregatesMsg& m);
[[nodiscard]] std::string encode_result(const ResultMsg& m);

[[nodiscard]] Expected<LeaseMsg> decode_lease(const obs::JsonValue& v);
[[nodiscard]] Expected<HeartbeatMsg> decode_heartbeat(const obs::JsonValue& v);
[[nodiscard]] Expected<AggregatesMsg> decode_aggregates(
    const obs::JsonValue& v);
[[nodiscard]] Expected<ResultMsg> decode_result(const obs::JsonValue& v);

}  // namespace dxbsp::svc
