#pragma once
// Typed payloads for the four sweep-coordinator protocol messages, with
// JSON codecs over the framed wire format (svc/wire.hpp):
//
//   lease       coordinator -> worker: your shard, attempt number, how
//               many points prior attempts already covered, where to put
//               checkpoint/heartbeat/aggregates/result, timing knobs and
//               the (test-only) chaos spec.
//   heartbeat   worker -> coordinator: liveness + progress. Republished
//               every interval; the coordinator only cares that `beat`
//               keeps changing.
//   aggregates  worker -> coordinator: cumulative partial results of the
//               CURRENT attempt — the metric/attribution/drift state for
//               every point this attempt has completed. Republished after
//               every point, atomically, so whatever the coordinator
//               captures after revoking a dead lease is a consistent
//               prefix it can bank before re-leasing the remainder.
//   result      worker -> coordinator: final outcome — the SweepReport,
//               the run identity (for the merged report header) and the
//               attempt's final aggregates.
//
// Metric entries travel with their kind and stability because the run
// report's JSON flattens counters and gauges to bare numbers: a merge
// must know whether to add or max, so the protocol cannot reuse the
// report schema. Decoders return Expected (never throw): a half-dead
// worker writing garbage must read as a strike, not a coordinator crash.

#include <cstdint>
#include <string>
#include <vector>

#include "obs/attribution.hpp"
#include "obs/drift.hpp"
#include "obs/json_read.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "resilience/error.hpp"

namespace dxbsp::svc {

inline constexpr const char* kMsgLease = "lease";
inline constexpr const char* kMsgHeartbeat = "heartbeat";
inline constexpr const char* kMsgAggregates = "aggregates";
inline constexpr const char* kMsgResult = "result";
/// Fleet observability (docs/observability.md §fleet): `telemetry` is
/// the worker's periodic metrics/progress snapshot for tools/sweep_top;
/// `fleet_status` is the coordinator's merged live view of every shard.
inline constexpr const char* kMsgTelemetry = "telemetry";
inline constexpr const char* kMsgFleetStatus = "fleet_status";

struct LeaseMsg {
  std::string shard;  ///< "index/count" (resilience::ShardSpec::str)
  std::uint64_t attempt = 0;
  /// Points already covered by prior attempts' captured aggregates; the
  /// worker resumes from exactly this checkpoint prefix (truncating any
  /// uncaptured tail) so every point is aggregated exactly once.
  std::uint64_t resume_points = 0;
  std::string checkpoint_path;
  std::string heartbeat_path;
  std::string aggregates_path;
  std::string result_path;
  double deadline_seconds = 0;     ///< per-attempt budget (<= 0 = none)
  double hb_interval_seconds = 0;  ///< heartbeat publication cadence
  std::string chaos;               ///< forwarded ChaosPlan spec ("" = none)
  // Observability outputs, all optional ("" / 0 = feature off). Decoded
  // tolerantly so a newer coordinator can lease to an older worker.
  std::string flight_path;     ///< crash-safe flight ring (obs/flight.hpp)
  std::string trace_path;      ///< host-time Chrome trace (obs/event_log.hpp)
  std::string telemetry_path;  ///< periodic telemetry snapshot target
  std::uint64_t flight_bytes = 0;  ///< ring size (0 = default)
};

struct HeartbeatMsg {
  std::string shard;
  std::uint64_t attempt = 0;
  std::uint64_t beat = 0;       ///< monotone while the worker is alive
  std::uint64_t completed = 0;  ///< points done (resumed + computed)
  std::uint64_t total = 0;      ///< points in the shard slice
  /// µs on the worker's monotonic clock when the beat was taken; the
  /// coordinator estimates clock offsets from it for trace stitching
  /// (obs/stitch.hpp). Tolerant: 0 from older workers.
  std::uint64_t mono_us = 0;
  /// Cumulative simulated events (sim.requests) this attempt — the
  /// events/sec numerator for live telemetry. Tolerant: 0 when absent.
  std::uint64_t events = 0;
};

/// Worker -> sweep_top: periodic progress + metrics snapshot, published
/// atomically alongside the heartbeat. Unlike aggregates it carries
/// host-stability metrics too: live telemetry is allowed to see
/// wall-clock truth that the deterministic report must not.
struct TelemetryMsg {
  std::string shard;
  std::uint64_t attempt = 0;
  std::uint64_t mono_us = 0;    ///< worker clock at the snapshot
  std::uint64_t completed = 0;  ///< points done (resumed + computed)
  std::uint64_t resumed = 0;    ///< of which resumed from prior attempts
  std::uint64_t total = 0;
  std::uint64_t events = 0;     ///< cumulative sim.requests this attempt
  std::vector<obs::MetricsRegistry::Entry> metrics;
};

/// Coordinator -> sweep_top: the merged live view, republished on a
/// throttle from the poll loop. One row per shard.
struct FleetStatusMsg {
  std::uint64_t mono_us = 0;  ///< coordinator clock at publication
  std::uint64_t shards = 0;
  std::uint64_t completed_shards = 0;
  std::uint64_t leases_granted = 0;
  std::uint64_t retries = 0;
  std::uint64_t worker_deaths = 0;
  std::uint64_t stalls = 0;
  std::uint64_t revocations = 0;
  std::uint64_t points_total = 0;
  std::uint64_t points_completed = 0;
  struct Shard {
    std::string shard;  ///< "index/count"
    std::string phase;  ///< queued/running/done/poisoned
    std::uint64_t attempt = 0;
    std::uint64_t completed = 0;
    std::uint64_t total = 0;
    std::uint64_t events = 0;      ///< last telemetry events count
    std::uint64_t updated_us = 0;  ///< coordinator clock at last news
  };
  std::vector<Shard> rows;  ///< by shard index
};

struct AggregatesMsg {
  std::string shard;
  std::uint64_t attempt = 0;
  /// Points this attempt has newly covered (and whose contributions are
  /// fully contained in the snapshots below). Excludes resumed points —
  /// their contributions were banked from earlier attempts.
  std::uint64_t covered = 0;
  std::vector<obs::MetricsRegistry::Entry> metrics;
  obs::AttributionAggregate::Snapshot attribution;
  bool has_drift = false;
  obs::DriftDetector::Snapshot drift;
  /// Engine-selection rows for the covered points (obs/selector.hpp);
  /// empty when the attempt ran no supersteps. Decoded tolerantly: a
  /// payload without the field (older worker) reads as empty.
  std::vector<obs::SelectorRow> selector;
};

struct ResultMsg {
  std::string shard;
  std::uint64_t attempt = 0;
  std::string status;  ///< sweep_status_name: "completed"/"interrupted"
  std::string cause;   ///< cancel_cause_name when interrupted
  std::uint64_t total = 0;
  std::uint64_t completed = 0;
  std::uint64_t resumed = 0;
  double elapsed_seconds = 0;  ///< host-only; scaling bench input
  bool has_info = false;
  obs::RunInfo info;  ///< run identity for the merged report header
  AggregatesMsg aggregates;
};

[[nodiscard]] std::string encode_lease(const LeaseMsg& m);
[[nodiscard]] std::string encode_heartbeat(const HeartbeatMsg& m);
[[nodiscard]] std::string encode_aggregates(const AggregatesMsg& m);
[[nodiscard]] std::string encode_result(const ResultMsg& m);
[[nodiscard]] std::string encode_telemetry(const TelemetryMsg& m);
[[nodiscard]] std::string encode_fleet_status(const FleetStatusMsg& m);

[[nodiscard]] Expected<LeaseMsg> decode_lease(const obs::JsonValue& v);
[[nodiscard]] Expected<HeartbeatMsg> decode_heartbeat(const obs::JsonValue& v);
[[nodiscard]] Expected<AggregatesMsg> decode_aggregates(
    const obs::JsonValue& v);
[[nodiscard]] Expected<ResultMsg> decode_result(const obs::JsonValue& v);
[[nodiscard]] Expected<TelemetryMsg> decode_telemetry(const obs::JsonValue& v);
[[nodiscard]] Expected<FleetStatusMsg> decode_fleet_status(
    const obs::JsonValue& v);

}  // namespace dxbsp::svc
