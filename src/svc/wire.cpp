#include "svc/wire.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "resilience/snapshot.hpp"

namespace dxbsp::svc {

namespace {

std::string crc_hex(std::uint32_t crc) {
  char buf[9];
  std::snprintf(buf, sizeof buf, "%08x", crc);
  return buf;
}

std::uint32_t payload_crc(std::string_view payload) {
  return resilience::crc32(
      {reinterpret_cast<const unsigned char*>(payload.data()),
       payload.size()});
}

Error corrupt(const std::string& origin, const std::string& what) {
  return Error(ErrorCode::kCorruptInput, origin + ": " + what);
}

}  // namespace

std::string wire_frame(const std::string& type,
                       const std::string& payload_json) {
  std::string out;
  out.reserve(payload_json.size() + 64);
  out += kWireMagic;
  out += ' ';
  out += type;
  out += ' ';
  out += std::to_string(payload_json.size());
  out += ' ';
  out += crc_hex(payload_crc(payload_json));
  out += '\n';
  out += payload_json;
  return out;
}

Expected<WireMessage> wire_parse(std::string_view bytes,
                                 const std::string& origin) {
  const std::size_t nl = bytes.find('\n');
  if (nl == std::string_view::npos)
    return corrupt(origin, "missing frame header line");
  const std::string_view header = bytes.substr(0, nl);
  const std::string_view payload = bytes.substr(nl + 1);

  // Header: magic SP type SP length SP crc — strict, no extra fields.
  std::istringstream hs{std::string(header)};
  std::string magic;
  std::string type;
  std::string len_text;
  std::string crc_text;
  std::string extra;
  hs >> magic >> type >> len_text >> crc_text;
  if (hs.fail() || (hs >> extra))
    return corrupt(origin, "malformed frame header '" + std::string(header) +
                               "'");
  if (magic != kWireMagic)
    return corrupt(origin, "bad magic/version '" + magic + "' (want " +
                               std::string(kWireMagic) + ")");
  errno = 0;
  char* end = nullptr;
  const unsigned long long len = std::strtoull(len_text.c_str(), &end, 10);
  if (errno != 0 || end != len_text.c_str() + len_text.size())
    return corrupt(origin, "bad payload length '" + len_text + "'");
  if (len != payload.size())
    return corrupt(origin, "payload length " + std::to_string(payload.size()) +
                               " does not match declared " + len_text);
  errno = 0;
  const unsigned long long crc = std::strtoull(crc_text.c_str(), &end, 16);
  if (errno != 0 || end != crc_text.c_str() + crc_text.size() ||
      crc_text.size() != 8)
    return corrupt(origin, "bad crc field '" + crc_text + "'");
  if (static_cast<std::uint32_t>(crc) != payload_crc(payload))
    return corrupt(origin, "payload CRC mismatch");

  auto parsed = obs::JsonValue::parse(payload, origin);
  if (!parsed.ok())
    return corrupt(origin, std::string("payload JSON invalid: ") +
                               parsed.error().what());
  WireMessage msg;
  msg.type = type;
  msg.payload = std::move(parsed).value();
  return msg;
}

void wire_write_file(const std::string& path, const std::string& type,
                     const std::string& payload_json) {
  const std::string bytes = wire_frame(type, payload_json);
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0)
    raise(ErrorCode::kIo,
          "wire: cannot open " + tmp + ": " + std::strerror(errno));
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      raise(ErrorCode::kIo,
            "wire: write failed for " + tmp + ": " + std::strerror(err));
    }
    written += static_cast<std::size_t>(n);
  }
  if (::close(fd) != 0)
    raise(ErrorCode::kIo,
          "wire: close failed for " + tmp + ": " + std::strerror(errno));
  if (std::rename(tmp.c_str(), path.c_str()) != 0)
    raise(ErrorCode::kIo, "wire: rename " + tmp + " -> " + path +
                              " failed: " + std::strerror(errno));
}

Expected<WireMessage> wire_read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is)
    return Error(ErrorCode::kIo, "wire: cannot open " + path);
  std::ostringstream buf;
  buf << is.rdbuf();
  if (is.bad())
    return Error(ErrorCode::kIo, "wire: read failed for " + path);
  return wire_parse(buf.str(), path);
}

}  // namespace dxbsp::svc
