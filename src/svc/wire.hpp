#pragma once
// Versioned, CRC-guarded wire format for the sweep-coordinator protocol
// (docs/resilience.md §fleet mode).
//
// Coordinator and workers exchange *files*, not sockets: every message
// is written to a temporary name and atomically renamed into place, so a
// reader sees either the previous complete message or the new complete
// message, never a torn one — the same crash-atomicity discipline as
// CheckpointWriter. A message is one framed payload:
//
//   DXSVCW1 <type> <payload-bytes> <crc32-hex8>\n
//   <payload>
//
// The header line pins the protocol version (the magic's trailing digit),
// the message type ("lease", "heartbeat", "aggregates", "result"), the
// payload length in bytes, and the IEEE CRC-32 of the payload — reusing
// resilience::crc32, the snapshot checksum. Payloads are JSON documents
// produced by obs::JsonWriter and parsed by obs::JsonValue; the CRC
// guards the half-written/half-copied file failure modes JSON parsing
// alone would misdiagnose.
//
// Validation failures are Error{kCorruptInput}; a missing file is
// Error{kIo} (callers poll for messages that may not exist yet).

#include <string>
#include <string_view>

#include "obs/json_read.hpp"
#include "resilience/error.hpp"

namespace dxbsp::svc {

/// The frame magic; the trailing digit is the protocol version.
inline constexpr std::string_view kWireMagic = "DXSVCW1";

/// One decoded message: its declared type and parsed JSON payload.
struct WireMessage {
  std::string type;
  obs::JsonValue payload;
};

/// Frames `payload_json` as a `type` message (header line + payload).
[[nodiscard]] std::string wire_frame(const std::string& type,
                                     const std::string& payload_json);

/// Parses framed bytes. `origin` names the source in error messages.
[[nodiscard]] Expected<WireMessage> wire_parse(std::string_view bytes,
                                               const std::string& origin);

/// Atomically publishes a framed message at `path` (tmp + rename).
/// Throws Error{kIo} on filesystem failure.
void wire_write_file(const std::string& path, const std::string& type,
                     const std::string& payload_json);

/// Reads and parses the message at `path`. Missing file = Error{kIo};
/// framing/CRC/JSON failure = Error{kCorruptInput}.
[[nodiscard]] Expected<WireMessage> wire_read_file(const std::string& path);

}  // namespace dxbsp::svc
