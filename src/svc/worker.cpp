#include "svc/worker.hpp"

#include <algorithm>
#include <cstdio>
#include <span>
#include <utility>

#include "obs/metrics.hpp"
#include "resilience/snapshot.hpp"
#include "svc/wire.hpp"

namespace dxbsp::svc {

namespace {

/// The per-run() progress counters are synthesized by the coordinator
/// (total = grid total, resumed = 0) so a retried shard's merged report
/// stays byte-identical to a serial run's; workers keep them out of
/// their aggregates.
bool coordinator_synthesized(const std::string& name) {
  return name == "sweep.points_total" || name == "sweep.points_completed" ||
         name == "sweep.points_resumed";
}

}  // namespace

WorkerContext::~WorkerContext() { stop_heartbeat(); }

void WorkerContext::init(const std::string& lease_path) {
  auto msg = wire_read_file(lease_path);
  if (!msg.ok()) throw msg.error();
  if (msg.value().type != kMsgLease)
    raise(ErrorCode::kCorruptInput, lease_path + ": expected a '" +
                                        kMsgLease + "' message, got '" +
                                        msg.value().type + "'");
  auto decoded = decode_lease(msg.value().payload);
  if (!decoded.ok()) throw decoded.error();
  lease_ = std::move(decoded).value();
  shard_ = resilience::ShardSpec::parse(lease_.shard);
  chaos_ = ChaosPlan::parse(lease_.chaos);
  started_ = std::chrono::steady_clock::now();
  active_ = true;

  // Observability sinks are best-effort: a worker that cannot open its
  // flight ring still computes its shard (the ring's absence is itself
  // visible to the coordinator's harvest).
  if (!lease_.flight_path.empty()) {
    try {
      flight_ = std::make_unique<obs::FlightRecorder>(
          lease_.flight_path, started_,
          lease_.flight_bytes > 0 ? lease_.flight_bytes
                                  : obs::kFlightDefaultBytes);
      // A small private tracer: the ring only ever keeps the last few
      // events per point, so a deep buffer would be wasted memory.
      flight_tracer_ = std::make_unique<obs::Tracer>(/*ring_capacity=*/64);
    } catch (const Error&) {
      flight_.reset();
      flight_tracer_.reset();
    }
  }
  if (!lease_.trace_path.empty())
    elog_ = std::make_unique<obs::EventLog>(
        "worker shard " + lease_.shard + " attempt " +
            std::to_string(lease_.attempt),
        started_);
}

std::uint64_t WorkerContext::now_us() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - started_)
          .count());
}

std::uint64_t WorkerContext::sim_events_now() {
  for (const auto& e :
       obs::MetricsRegistry::global().snapshot(/*include_host=*/false))
    if (e.name == "sim.requests") return e.value;
  return 0;
}

void WorkerContext::flight_trace_tail(std::size_t limit) {
  const obs::Tracer* src =
      trace_source_ != nullptr ? trace_source_ : flight_tracer_.get();
  if (flight_ == nullptr || src == nullptr) return;
  const std::vector<std::uint64_t> ids = src->track_ids();
  if (ids.empty()) return;
  // The newest track is the point that just ran; its freshest events are
  // the ones worth keeping when the process dies mid-shard.
  const obs::TraceRing* ring = src->find(ids.back());
  if (ring == nullptr) return;
  const std::vector<obs::TraceEvent> events = ring->drain();
  const std::size_t n = std::min(limit, events.size());
  for (std::size_t i = events.size() - n; i < events.size(); ++i) {
    const obs::TraceEvent& ev = events[i];
    flight_->append(obs::FlightKind::kTrace,
                    static_cast<std::uint8_t>(ev.kind), ev.ts, ev.dur, ev.a,
                    ev.b);
  }
}

std::uint64_t WorkerContext::prepare(std::uint64_t base_id,
                                     std::vector<std::uint64_t>& keys,
                                     resilience::SweepOptions& opt,
                                     const obs::AttributionAggregate*
                                         attribution,
                                     const obs::DriftDetector* drift,
                                     const obs::SelectorLog* selector) {
  if (!active_) return base_id;
  attribution_ = attribution;
  drift_ = drift;
  selector_ = selector;
  keys = shard_.slice(keys);
  keys_ = keys;
  const std::uint64_t id = resilience::shard_sweep_id(base_id, shard_);

  // Serial + per-point flushing is what makes the checkpoint a
  // key-ordered prefix of the slice — the shape the banked-prefix
  // accounting below depends on.
  opt.threads = 0;
  opt.checkpoint_every = 1;
  opt.checkpoint_path = lease_.checkpoint_path;
  opt.deadline_seconds = lease_.deadline_seconds;

  if (lease_.resume_points > 0) {
    // Prior attempts banked the aggregates of the first resume_points
    // points; the checkpoint must hold at least that prefix (it is
    // flushed before the aggregates are published). Anything beyond it
    // was computed but never banked — truncate so it is recomputed and
    // aggregated this attempt, keeping every point counted exactly once.
    auto loaded = resilience::Snapshot::load(lease_.checkpoint_path);
    if (!loaded.ok()) throw loaded.error();
    const resilience::Snapshot& snap = loaded.value();
    if (snap.sweep_id != id)
      raise(ErrorCode::kConfig,
            lease_.checkpoint_path +
                ": checkpoint belongs to a different sweep/shard");
    if (snap.records.size() < lease_.resume_points)
      raise(ErrorCode::kCorruptSnapshot,
            lease_.checkpoint_path + ": banked prefix of " +
                std::to_string(lease_.resume_points) + " points but only " +
                std::to_string(snap.records.size()) + " records");
    for (std::uint64_t i = 0; i < lease_.resume_points; ++i)
      if (snap.records[i].key != keys_[i])
        raise(ErrorCode::kCorruptSnapshot,
              lease_.checkpoint_path + ": record " + std::to_string(i) +
                  " key " + std::to_string(snap.records[i].key) +
                  " does not match slice key " + std::to_string(keys_[i]));
    if (snap.records.size() > lease_.resume_points) {
      resilience::CheckpointWriter writer(lease_.checkpoint_path, id);
      writer.flush(std::span<const resilience::SnapshotRecord>(snap.records)
                       .first(lease_.resume_points));
    }
    opt.resume_path = lease_.checkpoint_path;
  } else {
    // Nothing banked: any leftover checkpoint is an unbanked tail from a
    // crashed attempt — start clean.
    std::remove(lease_.checkpoint_path.c_str());
    opt.resume_path.clear();
  }

  completed_.store(lease_.resume_points, std::memory_order_relaxed);
  opt.on_progress = [this](std::uint64_t done, std::uint64_t total) {
    on_point(done, total);
  };

  if (flight_ != nullptr)
    flight_->append(obs::FlightKind::kPhase,
                    static_cast<std::uint8_t>(obs::FlightPhase::kLease),
                    lease_.resume_points, 0, keys_.size(), lease_.attempt);
  if (elog_ != nullptr) {
    last_point_us_ = now_us();
    elog_->instant("lease", last_point_us_, 0,
                   {{"shard", lease_.shard},
                    {"attempt", std::to_string(lease_.attempt)},
                    {"resume_points", std::to_string(lease_.resume_points)}});
  }

  maybe_chaos(ChaosPhase::kLease);
  return id;
}

void WorkerContext::begin(resilience::CancelToken& token) {
  if (!active_) return;
  token_ = &token;
  hb_stop_ = false;
  hb_thread_ = std::thread([this] { heartbeat_loop(); });
}

void WorkerContext::heartbeat_loop() {
  const double interval =
      lease_.hb_interval_seconds > 0 ? lease_.hb_interval_seconds : 0.05;
  const auto period =
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(interval));
  std::unique_lock lock(hb_mu_);
  for (;;) {
    HeartbeatMsg hb;
    hb.shard = lease_.shard;
    hb.attempt = lease_.attempt;
    hb.completed = completed_.load(std::memory_order_relaxed);
    hb.total = keys_.size();
    // The simulator pumps the token's heartbeat counter inside its event
    // loops, so `beat` advances even while one point runs for a long
    // time — a wedge *inside* a point still reads as a stall upstream.
    hb.beat = (token_ != nullptr ? token_->heartbeats() : 0) + hb.completed;
    hb.mono_us = now_us();
    hb.events = sim_events_now();
    lock.unlock();
    try {
      wire_write_file(lease_.heartbeat_path, kMsgHeartbeat,
                      encode_heartbeat(hb));
    } catch (const Error&) {
      // A failed heartbeat write must not kill the worker; if it keeps
      // failing the coordinator sees a stall and revokes the lease.
    }
    if (!lease_.telemetry_path.empty()) {
      TelemetryMsg tm;
      tm.shard = hb.shard;
      tm.attempt = hb.attempt;
      tm.mono_us = hb.mono_us;
      tm.completed = hb.completed;
      tm.resumed = lease_.resume_points;
      tm.total = hb.total;
      tm.events = hb.events;
      tm.metrics =
          obs::MetricsRegistry::global().snapshot(/*include_host=*/true);
      try {
        wire_write_file(lease_.telemetry_path, kMsgTelemetry,
                        encode_telemetry(tm));
      } catch (const Error&) {
        // Telemetry is for live dashboards only — same policy as above.
      }
    }
    lock.lock();
    if (hb_cv_.wait_for(lock, period, [this] { return hb_stop_; })) return;
  }
}

void WorkerContext::stop_heartbeat() {
  if (!hb_thread_.joinable()) return;
  {
    std::lock_guard lock(hb_mu_);
    hb_stop_ = true;
  }
  hb_cv_.notify_all();
  hb_thread_.join();
}

AggregatesMsg WorkerContext::aggregates_now(std::uint64_t covered) const {
  AggregatesMsg agg;
  agg.shard = lease_.shard;
  agg.attempt = lease_.attempt;
  agg.covered = covered;
  for (auto& e :
       obs::MetricsRegistry::global().snapshot(/*include_host=*/false))
    if (!coordinator_synthesized(e.name)) agg.metrics.push_back(std::move(e));
  if (attribution_ != nullptr) agg.attribution = attribution_->snapshot();
  if (drift_ != nullptr) {
    agg.has_drift = true;
    agg.drift = drift_->snapshot();
  }
  if (selector_ != nullptr) agg.selector = selector_->snapshot().rows;
  return agg;
}

void WorkerContext::on_point(std::uint64_t done, std::uint64_t /*total*/) {
  completed_.store(done, std::memory_order_relaxed);
  // The runner flushed the checkpoint before this hook ran, so the
  // invariant "checkpoint >= banked aggregates" holds at every kill
  // point in between the two writes.
  const std::uint64_t covered = done - lease_.resume_points;
  if (elog_ != nullptr) {
    const std::uint64_t now = now_us();
    elog_->span("point", last_point_us_,
                now > last_point_us_ ? now - last_point_us_ : 0, 0,
                {{"completed", std::to_string(done)},
                 {"covered", std::to_string(covered)}});
    last_point_us_ = now;
  }
  if (flight_ != nullptr) {
    flight_trace_tail(/*limit=*/4);
    if (selector_ != nullptr) {
      const std::vector<obs::SelectorRow> rows = selector_->snapshot().rows;
      if (!rows.empty()) {
        const obs::SelectorRow& r = rows.back();
        flight_->append(obs::FlightKind::kSelector,
                        static_cast<std::uint8_t>(r.choice), r.step, r.n,
                        r.predicted, r.measured);
      }
    }
    // The point phase record goes LAST so the harvester's "last protocol
    // phase" question reads straight off the final phase record.
    flight_->append(obs::FlightKind::kPhase,
                    static_cast<std::uint8_t>(obs::FlightPhase::kPoint),
                    covered, done, keys_.size(), lease_.attempt);
  }
  wire_write_file(lease_.aggregates_path, kMsgAggregates,
                  encode_aggregates(aggregates_now(covered)));
  maybe_chaos(ChaosPhase::kPoint, covered);
}

int WorkerContext::finish(const resilience::SweepReport& report,
                          const obs::RunInfo& info) {
  if (!active_) return report.ok() ? 0 : exit_code(ErrorCode::kInterrupted);
  stop_heartbeat();
  if (flight_ != nullptr)
    flight_->append(obs::FlightKind::kPhase,
                    static_cast<std::uint8_t>(obs::FlightPhase::kResult),
                    report.completed, report.resumed, report.total,
                    lease_.attempt);
  if (elog_ != nullptr) {
    elog_->instant("result", now_us(), 0,
                   {{"status", resilience::sweep_status_name(report.status)},
                    {"completed", std::to_string(report.completed)}});
    // Written before result-phase chaos: a worker killed at kResult
    // still leaves its trace for the stitched timeline.
    try {
      obs::write_file(lease_.trace_path, [this](std::ostream& os) {
        elog_->write_chrome_json(os);
      });
    } catch (const Error&) {
    }
  }
  maybe_chaos(ChaosPhase::kResult);

  ResultMsg res;
  res.shard = lease_.shard;
  res.attempt = lease_.attempt;
  res.status = resilience::sweep_status_name(report.status);
  res.cause = resilience::cancel_cause_name(report.cause);
  res.total = report.total;
  res.completed = report.completed;
  res.resumed = report.resumed;
  res.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started_)
          .count();
  res.has_info = true;
  res.info = info;
  res.aggregates =
      aggregates_now(report.completed > report.resumed
                         ? report.completed - report.resumed
                         : 0);
  wire_write_file(lease_.result_path, kMsgResult, encode_result(res));
  return report.ok() ? 0 : exit_code(ErrorCode::kInterrupted);
}

void WorkerContext::maybe_chaos(ChaosPhase phase, std::uint64_t point) {
  if (!active_ || chaos_.empty()) return;
  const ChaosEvent* ev =
      chaos_.match(shard_.index, lease_.attempt, phase, point);
  if (ev == nullptr) return;
  // Recorded as a distinct phase so the harvest can show that chaos
  // fired; the "last protocol phase" question skips it by design (a
  // point-kill should read as dying at "point", not at "chaos").
  if (flight_ != nullptr)
    flight_->append(obs::FlightKind::kPhase,
                    static_cast<std::uint8_t>(obs::FlightPhase::kChaos),
                    static_cast<std::uint64_t>(phase), point, 0,
                    lease_.attempt);
  // A hanging worker must hang *completely*: with the sampler still
  // running, heartbeats would keep advancing and the coordinator could
  // never tell this wedge from slow progress.
  stop_heartbeat();
  chaos_execute(*ev);
}

}  // namespace dxbsp::svc
