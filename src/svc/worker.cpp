#include "svc/worker.hpp"

#include <cstdio>
#include <span>
#include <utility>

#include "obs/metrics.hpp"
#include "resilience/snapshot.hpp"
#include "svc/wire.hpp"

namespace dxbsp::svc {

namespace {

/// The per-run() progress counters are synthesized by the coordinator
/// (total = grid total, resumed = 0) so a retried shard's merged report
/// stays byte-identical to a serial run's; workers keep them out of
/// their aggregates.
bool coordinator_synthesized(const std::string& name) {
  return name == "sweep.points_total" || name == "sweep.points_completed" ||
         name == "sweep.points_resumed";
}

}  // namespace

WorkerContext::~WorkerContext() { stop_heartbeat(); }

void WorkerContext::init(const std::string& lease_path) {
  auto msg = wire_read_file(lease_path);
  if (!msg.ok()) throw msg.error();
  if (msg.value().type != kMsgLease)
    raise(ErrorCode::kCorruptInput, lease_path + ": expected a '" +
                                        kMsgLease + "' message, got '" +
                                        msg.value().type + "'");
  auto decoded = decode_lease(msg.value().payload);
  if (!decoded.ok()) throw decoded.error();
  lease_ = std::move(decoded).value();
  shard_ = resilience::ShardSpec::parse(lease_.shard);
  chaos_ = ChaosPlan::parse(lease_.chaos);
  started_ = std::chrono::steady_clock::now();
  active_ = true;
}

std::uint64_t WorkerContext::prepare(std::uint64_t base_id,
                                     std::vector<std::uint64_t>& keys,
                                     resilience::SweepOptions& opt,
                                     const obs::AttributionAggregate*
                                         attribution,
                                     const obs::DriftDetector* drift,
                                     const obs::SelectorLog* selector) {
  if (!active_) return base_id;
  attribution_ = attribution;
  drift_ = drift;
  selector_ = selector;
  keys = shard_.slice(keys);
  keys_ = keys;
  const std::uint64_t id = resilience::shard_sweep_id(base_id, shard_);

  // Serial + per-point flushing is what makes the checkpoint a
  // key-ordered prefix of the slice — the shape the banked-prefix
  // accounting below depends on.
  opt.threads = 0;
  opt.checkpoint_every = 1;
  opt.checkpoint_path = lease_.checkpoint_path;
  opt.deadline_seconds = lease_.deadline_seconds;

  if (lease_.resume_points > 0) {
    // Prior attempts banked the aggregates of the first resume_points
    // points; the checkpoint must hold at least that prefix (it is
    // flushed before the aggregates are published). Anything beyond it
    // was computed but never banked — truncate so it is recomputed and
    // aggregated this attempt, keeping every point counted exactly once.
    auto loaded = resilience::Snapshot::load(lease_.checkpoint_path);
    if (!loaded.ok()) throw loaded.error();
    const resilience::Snapshot& snap = loaded.value();
    if (snap.sweep_id != id)
      raise(ErrorCode::kConfig,
            lease_.checkpoint_path +
                ": checkpoint belongs to a different sweep/shard");
    if (snap.records.size() < lease_.resume_points)
      raise(ErrorCode::kCorruptSnapshot,
            lease_.checkpoint_path + ": banked prefix of " +
                std::to_string(lease_.resume_points) + " points but only " +
                std::to_string(snap.records.size()) + " records");
    for (std::uint64_t i = 0; i < lease_.resume_points; ++i)
      if (snap.records[i].key != keys_[i])
        raise(ErrorCode::kCorruptSnapshot,
              lease_.checkpoint_path + ": record " + std::to_string(i) +
                  " key " + std::to_string(snap.records[i].key) +
                  " does not match slice key " + std::to_string(keys_[i]));
    if (snap.records.size() > lease_.resume_points) {
      resilience::CheckpointWriter writer(lease_.checkpoint_path, id);
      writer.flush(std::span<const resilience::SnapshotRecord>(snap.records)
                       .first(lease_.resume_points));
    }
    opt.resume_path = lease_.checkpoint_path;
  } else {
    // Nothing banked: any leftover checkpoint is an unbanked tail from a
    // crashed attempt — start clean.
    std::remove(lease_.checkpoint_path.c_str());
    opt.resume_path.clear();
  }

  completed_.store(lease_.resume_points, std::memory_order_relaxed);
  opt.on_progress = [this](std::uint64_t done, std::uint64_t total) {
    on_point(done, total);
  };

  maybe_chaos(ChaosPhase::kLease);
  return id;
}

void WorkerContext::begin(resilience::CancelToken& token) {
  if (!active_) return;
  token_ = &token;
  hb_stop_ = false;
  hb_thread_ = std::thread([this] { heartbeat_loop(); });
}

void WorkerContext::heartbeat_loop() {
  const double interval =
      lease_.hb_interval_seconds > 0 ? lease_.hb_interval_seconds : 0.05;
  const auto period =
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(interval));
  std::unique_lock lock(hb_mu_);
  for (;;) {
    HeartbeatMsg hb;
    hb.shard = lease_.shard;
    hb.attempt = lease_.attempt;
    hb.completed = completed_.load(std::memory_order_relaxed);
    hb.total = keys_.size();
    // The simulator pumps the token's heartbeat counter inside its event
    // loops, so `beat` advances even while one point runs for a long
    // time — a wedge *inside* a point still reads as a stall upstream.
    hb.beat = (token_ != nullptr ? token_->heartbeats() : 0) + hb.completed;
    lock.unlock();
    try {
      wire_write_file(lease_.heartbeat_path, kMsgHeartbeat,
                      encode_heartbeat(hb));
    } catch (const Error&) {
      // A failed heartbeat write must not kill the worker; if it keeps
      // failing the coordinator sees a stall and revokes the lease.
    }
    lock.lock();
    if (hb_cv_.wait_for(lock, period, [this] { return hb_stop_; })) return;
  }
}

void WorkerContext::stop_heartbeat() {
  if (!hb_thread_.joinable()) return;
  {
    std::lock_guard lock(hb_mu_);
    hb_stop_ = true;
  }
  hb_cv_.notify_all();
  hb_thread_.join();
}

AggregatesMsg WorkerContext::aggregates_now(std::uint64_t covered) const {
  AggregatesMsg agg;
  agg.shard = lease_.shard;
  agg.attempt = lease_.attempt;
  agg.covered = covered;
  for (auto& e :
       obs::MetricsRegistry::global().snapshot(/*include_host=*/false))
    if (!coordinator_synthesized(e.name)) agg.metrics.push_back(std::move(e));
  if (attribution_ != nullptr) agg.attribution = attribution_->snapshot();
  if (drift_ != nullptr) {
    agg.has_drift = true;
    agg.drift = drift_->snapshot();
  }
  if (selector_ != nullptr) agg.selector = selector_->snapshot().rows;
  return agg;
}

void WorkerContext::on_point(std::uint64_t done, std::uint64_t /*total*/) {
  completed_.store(done, std::memory_order_relaxed);
  // The runner flushed the checkpoint before this hook ran, so the
  // invariant "checkpoint >= banked aggregates" holds at every kill
  // point in between the two writes.
  const std::uint64_t covered = done - lease_.resume_points;
  wire_write_file(lease_.aggregates_path, kMsgAggregates,
                  encode_aggregates(aggregates_now(covered)));
  maybe_chaos(ChaosPhase::kPoint, covered);
}

int WorkerContext::finish(const resilience::SweepReport& report,
                          const obs::RunInfo& info) {
  if (!active_) return report.ok() ? 0 : exit_code(ErrorCode::kInterrupted);
  stop_heartbeat();
  maybe_chaos(ChaosPhase::kResult);

  ResultMsg res;
  res.shard = lease_.shard;
  res.attempt = lease_.attempt;
  res.status = resilience::sweep_status_name(report.status);
  res.cause = resilience::cancel_cause_name(report.cause);
  res.total = report.total;
  res.completed = report.completed;
  res.resumed = report.resumed;
  res.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started_)
          .count();
  res.has_info = true;
  res.info = info;
  res.aggregates =
      aggregates_now(report.completed > report.resumed
                         ? report.completed - report.resumed
                         : 0);
  wire_write_file(lease_.result_path, kMsgResult, encode_result(res));
  return report.ok() ? 0 : exit_code(ErrorCode::kInterrupted);
}

void WorkerContext::maybe_chaos(ChaosPhase phase, std::uint64_t point) {
  if (!active_ || chaos_.empty()) return;
  const ChaosEvent* ev =
      chaos_.match(shard_.index, lease_.attempt, phase, point);
  if (ev == nullptr) return;
  // A hanging worker must hang *completely*: with the sampler still
  // running, heartbeats would keep advancing and the coordinator could
  // never tell this wedge from slow progress.
  stop_heartbeat();
  chaos_execute(*ev);
}

}  // namespace dxbsp::svc
