#pragma once
// Worker side of the sweep-coordinator protocol (docs/resilience.md
// §fleet mode): turns any SweepRunner-based bench into a leased shard
// worker.
//
// A worker is a normal bench process started by the coordinator with
// --svc-lease=FILE. The lease tells it which shard of the grid it owns,
// which attempt this is, and how many points earlier attempts already
// banked. The WorkerContext then rewires the sweep:
//
//   * keys are sliced to the shard (resilience::ShardSpec), the sweep id
//     is shard-scoped (shard_sweep_id) so a foreign shard's checkpoint
//     can never be resumed by mistake;
//   * execution is forced serial with checkpoint_every=1, so the
//     checkpoint on disk is always a key-ordered prefix of the slice;
//   * the checkpoint is truncated to exactly the banked prefix before
//     resuming: a point whose aggregates the coordinator never captured
//     is recomputed (deterministically, so its record is identical) and
//     re-aggregated — every point contributes to the fleet totals
//     exactly once;
//   * after every completed point (checkpoint already flushed — the
//     runner's on_progress ordering guarantees it) the worker atomically
//     republishes cumulative partial aggregates, so at any kill point
//     the coordinator can bank a consistent prefix;
//   * a sampler thread republishes a heartbeat file; its `beat` advances
//     with the simulator's own CancelToken heartbeats, so a worker
//     wedged *inside* a point reads as stalled, not merely slow.
//
// Chaos events from the lease (svc/chaos.hpp) are executed at the exact
// protocol phases they name; the heartbeat sampler is stopped first so a
// "hang" looks like a real wedge to the coordinator.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/attribution.hpp"
#include "obs/drift.hpp"
#include "obs/event_log.hpp"
#include "obs/flight.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "resilience/cancel.hpp"
#include "resilience/shard.hpp"
#include "resilience/sweep.hpp"
#include "svc/chaos.hpp"
#include "svc/payload.hpp"

namespace dxbsp::svc {

class WorkerContext {
 public:
  WorkerContext() = default;
  ~WorkerContext();
  WorkerContext(const WorkerContext&) = delete;
  WorkerContext& operator=(const WorkerContext&) = delete;

  /// Loads and validates the lease file; the context becomes active.
  /// Throws Error{kIo/kCorruptInput/kParse/kConfig} on a missing or
  /// malformed lease.
  void init(const std::string& lease_path);

  /// False when init() was never called: every other method is then a
  /// no-op passthrough, so benches call the full sequence unconditionally.
  [[nodiscard]] bool active() const noexcept { return active_; }
  [[nodiscard]] const LeaseMsg& lease() const noexcept { return lease_; }
  [[nodiscard]] const resilience::ShardSpec& shard() const noexcept {
    return shard_;
  }

  /// Applies the lease to the sweep about to run: slices `keys` to the
  /// shard, rewrites `opt` (serial, per-point checkpoints, lease paths
  /// and deadline), truncates the checkpoint to the banked prefix,
  /// installs the partial-aggregates on_progress hook, and fires any
  /// lease-phase chaos. Returns the shard-scoped sweep id (or `base_id`
  /// unchanged when inactive). `attribution`/`drift`/`selector` are the
  /// run's aggregates (bench::Obs's); drift and selector may be null.
  [[nodiscard]] std::uint64_t prepare(std::uint64_t base_id,
                                      std::vector<std::uint64_t>& keys,
                                      resilience::SweepOptions& opt,
                                      const obs::AttributionAggregate*
                                          attribution,
                                      const obs::DriftDetector* drift,
                                      const obs::SelectorLog* selector =
                                          nullptr);

  /// Starts the heartbeat sampler against the runner's token. Call after
  /// constructing the SweepRunner, before run().
  void begin(resilience::CancelToken& token);

  /// Stops heartbeats, fires result-phase chaos, atomically publishes
  /// the result message and returns the process exit code (0 complete,
  /// EX_TEMPFAIL when interrupted).
  [[nodiscard]] int finish(const resilience::SweepReport& report,
                           const obs::RunInfo& info);

  /// Flight-recorder tracer: non-null when the lease enabled the flight
  /// ring and the run has no tracer of its own. bench::Obs attaches it
  /// to the machine so the ring captures recent trace events even
  /// without --trace; it never contributes a report timeline section.
  [[nodiscard]] obs::Tracer* flight_tracer() noexcept {
    return flight_tracer_.get();
  }

  /// When the run traces anyway (--trace), the flight tail reads from
  /// that tracer instead of the private one.
  void set_trace_source(const obs::Tracer* t) noexcept { trace_source_ = t; }

 private:
  void on_point(std::uint64_t done, std::uint64_t total);
  [[nodiscard]] AggregatesMsg aggregates_now(std::uint64_t covered) const;
  void maybe_chaos(ChaosPhase phase, std::uint64_t point = 0);
  void stop_heartbeat();
  void heartbeat_loop();
  void flight_trace_tail(std::size_t limit);
  [[nodiscard]] std::uint64_t now_us() const;
  [[nodiscard]] static std::uint64_t sim_events_now();

  bool active_ = false;
  LeaseMsg lease_;
  resilience::ShardSpec shard_;
  ChaosPlan chaos_;
  std::vector<std::uint64_t> keys_;  ///< this shard's slice
  const obs::AttributionAggregate* attribution_ = nullptr;
  const obs::DriftDetector* drift_ = nullptr;
  const obs::SelectorLog* selector_ = nullptr;
  std::chrono::steady_clock::time_point started_{};

  // Fleet observability (docs/observability.md §fleet), all optional.
  std::unique_ptr<obs::FlightRecorder> flight_;
  std::unique_ptr<obs::Tracer> flight_tracer_;
  const obs::Tracer* trace_source_ = nullptr;
  std::unique_ptr<obs::EventLog> elog_;
  std::uint64_t last_point_us_ = 0;

  // Heartbeat sampler state.
  resilience::CancelToken* token_ = nullptr;
  std::atomic<std::uint64_t> completed_{0};
  std::thread hb_thread_;
  std::mutex hb_mu_;
  std::condition_variable hb_cv_;
  bool hb_stop_ = false;
};

}  // namespace dxbsp::svc
