#pragma once
// Small bit-manipulation helpers shared across the library.

#include <bit>
#include <cassert>
#include <cstdint>

namespace dxbsp::util {

/// True iff v is a power of two (0 is not).
[[nodiscard]] constexpr bool is_pow2(std::uint64_t v) noexcept {
  return v != 0 && (v & (v - 1)) == 0;
}

/// Smallest power of two >= v (v must be >= 1 and representable).
[[nodiscard]] constexpr std::uint64_t ceil_pow2(std::uint64_t v) noexcept {
  return std::bit_ceil(v);
}

/// floor(log2(v)); v must be nonzero.
[[nodiscard]] constexpr unsigned log2_floor(std::uint64_t v) noexcept {
  return 63u - static_cast<unsigned>(std::countl_zero(v));
}

/// ceil(log2(v)); v must be nonzero.
[[nodiscard]] constexpr unsigned log2_ceil(std::uint64_t v) noexcept {
  return v <= 1 ? 0u : log2_floor(v - 1) + 1u;
}

/// ceil(a / b) for nonnegative integers, b > 0.
[[nodiscard]] constexpr std::uint64_t ceil_div(std::uint64_t a,
                                               std::uint64_t b) noexcept {
  return (a + b - 1) / b;
}

/// Reverses the low `bits` bits of v (classic bit-reversal permutation,
/// used by the bit-reversal bank mapping).
[[nodiscard]] constexpr std::uint64_t reverse_bits(std::uint64_t v,
                                                   unsigned bits) noexcept {
  std::uint64_t r = 0;
  for (unsigned i = 0; i < bits; ++i) {
    r = (r << 1) | (v & 1);
    v >>= 1;
  }
  return r;
}

}  // namespace dxbsp::util
